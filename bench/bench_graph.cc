// Graph-analytics-under-churn benchmark (paper §6, rebuilt in ISSUE
// 10): updater threads stream a power-law edge workload (with deletes)
// into the CRS-on-PMA DynamicGraph while analytics threads run BFS and
// PageRank continuously — over BOTH consistency contracts:
//
//   live      analytics scan the churning structure through the
//             optimistic read path (each scan individually consistent,
//             relaxed semantics across scans — the paper's contract);
//   snapshot  every Nth round captures an O(1) COW snapshot (ISSUE 9)
//             and runs the same algorithm over the frozen cut —
//             point-in-time-exact analytics with structurally zero
//             retries while ingestion never pauses.
//
// Reports edge-update throughput, rounds/s and per-round latency
// percentiles per (algorithm x view), and the tail attribution of the
// sampled edge updates (which mechanism owned the slow inserts).
//
// Usage: bench_graph [--edges=N] [--vertices=V] [--updaters=U]
//                    [--analytics=A] [--snap_every=K] [--pr_iters=I]
//                    [--json=F] [--jsonl=F]

#include <atomic>
#include <cinttypes>
#include <thread>
#include <vector>

#include "driver.h"
#include "graph/algorithms.h"
#include "graph/dynamic_graph.h"

int main(int argc, char** argv) {
  using namespace cpma;
  using namespace cpma::bench;
  Flags flags(argc, argv);
  const size_t edges = flags.GetInt("edges", 1 << 20);
  const uint64_t vertices = flags.GetInt("vertices", 1 << 16);
  const int updaters = static_cast<int>(flags.GetInt("updaters", 8));
  const int analytics = static_cast<int>(flags.GetInt("analytics", 4));
  // Every snap_every-th analytics round runs over a frozen snapshot
  // instead of the live view (0 = live only).
  const uint64_t snap_every = flags.GetInt("snap_every", 4);
  const int pr_iters = static_cast<int>(flags.GetInt("pr_iters", 3));

  std::printf("# bench_graph: edges=%zu vertices=%" PRIu64
              " updaters=%d analytics=%d snap_every=%" PRIu64 "\n",
              edges, vertices, updaters, analytics, snap_every);

  DynamicGraph g;
  // Backbone so BFS always reaches a core (and a power-law stream).
  for (VertexId v = 0; v + 1 < 1024; ++v) g.AddEdge(v, v + 1);
  g.Flush();

  TailEventRing& ring = TailEventRing::Global();
  ring.Reset();
  ring.Enable();

  // Analytics readers: rounds alternate BFS / PageRank per thread
  // parity; every snap_every-th round of each flavour runs over a
  // frozen snapshot. Per-round latency goes to separate histograms per
  // (algorithm x view) so the snapshot-vs-live cost is a record field,
  // not a guess.
  std::atomic<bool> stop{false};
  struct ReaderStats {
    LatencyHistogram bfs_live, bfs_snap, pr_live, pr_snap;
    uint64_t snap_retries = 0;  // must stay 0 (structural property)
    uint64_t snap_rounds = 0;
  };
  std::vector<ReaderStats> reader_stats(
      static_cast<size_t>(analytics > 0 ? analytics : 1));
  std::vector<std::thread> readers;
  for (int a = 0; a < analytics; ++a) {
    readers.emplace_back([&, a] {
      ReaderStats& st = reader_stats[static_cast<size_t>(a)];
      uint64_t round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++round;
        const bool use_snap = snap_every != 0 && round % snap_every == 0;
        const bool do_bfs = a % 2 == 0;
        const uint64_t t0 = NowNanos();
        if (use_snap) {
          auto snap = g.Snapshot();
          if (do_bfs) {
            volatile auto d = Bfs(*snap, 0).size();
            (void)d;
          } else {
            volatile auto r = PageRank(*snap, pr_iters).size();
            (void)r;
          }
          const uint64_t dt = NowNanos() - t0;
          (do_bfs ? st.bfs_snap : st.pr_snap).Record(dt);
          st.snap_retries += snap->snapshot().scan_retries();
          ++st.snap_rounds;
        } else {
          if (do_bfs) {
            volatile auto d = Bfs(g, 0).size();
            (void)d;
          } else {
            volatile auto r = PageRank(g, pr_iters).size();
            (void)r;
          }
          (do_bfs ? st.bfs_live : st.pr_live).Record(NowNanos() - t0);
        }
      }
    });
  }

  Timer timer;
  std::vector<std::thread> writers;
  std::vector<LatencyHistogram> upd_lat(
      static_cast<size_t>(updaters > 0 ? updaters : 1));
  std::vector<TailRecorder> upd_tail(
      static_cast<size_t>(updaters > 0 ? updaters : 1));
  for (int u = 0; u < updaters; ++u) {
    writers.emplace_back([&, u] {
      Random rng(7 + static_cast<uint64_t>(u));
      ZipfDistribution src_dist(vertices, 1.2);  // power-law sources
      LatencyHistogram& lat = upd_lat[static_cast<size_t>(u)];
      TailRecorder& tail = upd_tail[static_cast<size_t>(u)];
      const size_t n = edges / static_cast<size_t>(updaters);
      for (size_t i = 0; i < n; ++i) {
        const VertexId s = static_cast<VertexId>(src_dist.Sample(rng) - 1);
        const VertexId d =
            static_cast<VertexId>(rng.NextBounded(vertices));
        const bool sampled = (i & (kLatencySampleEvery - 1)) == 0;
        const uint64_t t0 = sampled ? NowNanos() : 0;
        if (i % 8 == 7) {
          g.RemoveEdge(s, d);  // some churn
        } else {
          g.AddEdge(s, d, i);
        }
        if (sampled) {
          const uint64_t t1 = NowNanos();
          lat.Record(t1 - t0);
          tail.Offer(t0, t1);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  g.Flush();
  const double secs = timer.ElapsedSeconds();
  stop.store(true);
  for (auto& t : readers) t.join();
  ring.Disable();

  LatencyHistogram update_lat;
  TailRecorder update_tail;
  for (const auto& h : upd_lat) update_lat.Merge(h);
  for (const auto& t : upd_tail) update_tail.Merge(t);
  ReaderStats agg;
  for (const ReaderStats& st : reader_stats) {
    agg.bfs_live.Merge(st.bfs_live);
    agg.bfs_snap.Merge(st.bfs_snap);
    agg.pr_live.Merge(st.pr_live);
    agg.pr_snap.Merge(st.pr_snap);
    agg.snap_retries += st.snap_retries;
    agg.snap_rounds += st.snap_rounds;
  }
  std::vector<TailEventRecord> events;
  ring.Drain(&events);
  const TailRecorder::Attribution attr = update_tail.Attribute(events);

  const uint64_t bfs_rounds = agg.bfs_live.count() + agg.bfs_snap.count();
  const uint64_t pr_rounds = agg.pr_live.count() + agg.pr_snap.count();
  std::printf("%-28s %12.3f M/s\n", "edge updates",
              static_cast<double>(edges) / secs / 1e6);
  std::printf("%-28s %12.2f rounds/s (%" PRIu64 " snap)\n",
              "BFS (concurrent)",
              static_cast<double>(bfs_rounds) / secs,
              agg.bfs_snap.count());
  std::printf("%-28s %12.2f rounds/s (%" PRIu64 " snap)\n",
              "PageRank (concurrent)",
              static_cast<double>(pr_rounds) / secs,
              agg.pr_snap.count());
  std::printf("%-28s %12" PRIu64 " (structurally 0)\n",
              "snapshot scan retries", agg.snap_retries);
  std::printf("%-28s %12zu\n", "final |E|", g.NumEdges());
  std::printf("%-28s %12" PRIu64 "\n", "PMA resizes",
              g.edges().num_resizes());
  std::printf("%-28s %12" PRIu64 "\n", "global rebalances",
              g.edges().num_global_rebalances());
  std::printf("update tail: stall=%" PRIu64 " resize=%" PRIu64
              " rebal=%" PRIu64 " flush=%" PRIu64 " fallbk=%" PRIu64
              " none=%" PRIu64 "\n",
              attr.stall, attr.resize, attr.rebalance, attr.flush,
              attr.fallback, attr.none);

  BenchJson json(flags, "graph");
  JsonRecord& rec = json.Add();
  rec.Int("edges", edges)
      .Int("vertices", vertices)
      .Int("updaters", static_cast<uint64_t>(updaters))
      .Int("analytics", static_cast<uint64_t>(analytics))
      .Int("snap_every", snap_every)
      .Int("pr_iters", static_cast<uint64_t>(pr_iters))
      .Num("update_mops", static_cast<double>(edges) / secs / 1e6)
      .Num("bfs_rounds_per_s", static_cast<double>(bfs_rounds) / secs)
      .Num("pagerank_rounds_per_s", static_cast<double>(pr_rounds) / secs)
      .Int("snap_rounds", agg.snap_rounds)
      .Int("snap_scan_retries", agg.snap_retries)
      .Int("final_edges", g.NumEdges())
      .Num("seconds", secs);
  AddLatencyFields(rec, "update", update_lat);
  AddLatencyFields(rec, "bfs_live", agg.bfs_live);
  AddLatencyFields(rec, "bfs_snap", agg.bfs_snap);
  AddLatencyFields(rec, "pr_live", agg.pr_live);
  AddLatencyFields(rec, "pr_snap", agg.pr_snap);
  AddTailFields(rec, attr, ring);
  AddPlacementFields(rec);
  return json.Write() ? 0 : 1;
}
