// Dynamic-graph benchmark (paper §6): a power-law edge stream is
// inserted by updater threads while analytics threads repeatedly run
// BFS / PageRank over the live CRS-on-PMA representation — the
// "analytics on a constantly changing graph" workload from the paper's
// introduction. Reports sustained edge-update throughput and analytics
// rounds per second.
//
// Usage: bench_graph [--edges=N] [--vertices=V] [--updaters=U]
//                    [--analytics=A]

#include <atomic>
#include <cinttypes>
#include <thread>
#include <vector>

#include "driver.h"
#include "graph/algorithms.h"
#include "graph/dynamic_graph.h"

int main(int argc, char** argv) {
  using namespace cpma;
  using namespace cpma::bench;
  Flags flags(argc, argv);
  const size_t edges = flags.GetInt("edges", 1 << 20);
  const uint64_t vertices = flags.GetInt("vertices", 1 << 16);
  const int updaters = static_cast<int>(flags.GetInt("updaters", 8));
  const int analytics = static_cast<int>(flags.GetInt("analytics", 4));

  std::printf("# bench_graph: edges=%zu vertices=%" PRIu64
              " updaters=%d analytics=%d\n",
              edges, vertices, updaters, analytics);

  DynamicGraph g;
  // Backbone so BFS always reaches a core (and a power-law stream).
  for (VertexId v = 0; v + 1 < 1024; ++v) g.AddEdge(v, v + 1);
  g.Flush();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bfs_rounds{0}, pr_rounds{0};
  std::vector<std::thread> readers;
  for (int a = 0; a < analytics; ++a) {
    readers.emplace_back([&, a] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (a % 2 == 0) {
          volatile auto d = Bfs(g, 0).size();
          (void)d;
          bfs_rounds.fetch_add(1, std::memory_order_relaxed);
        } else {
          volatile auto r = PageRank(g, 3).size();
          (void)r;
          pr_rounds.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  Timer timer;
  std::vector<std::thread> writers;
  for (int u = 0; u < updaters; ++u) {
    writers.emplace_back([&, u] {
      Random rng(7 + static_cast<uint64_t>(u));
      ZipfDistribution src_dist(vertices, 1.2);  // power-law sources
      const size_t n = edges / static_cast<size_t>(updaters);
      for (size_t i = 0; i < n; ++i) {
        const VertexId s = static_cast<VertexId>(src_dist.Sample(rng) - 1);
        const VertexId d =
            static_cast<VertexId>(rng.NextBounded(vertices));
        if (i % 8 == 7) {
          g.RemoveEdge(s, d);  // some churn
        } else {
          g.AddEdge(s, d, i);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  g.Flush();
  const double secs = timer.ElapsedSeconds();
  stop.store(true);
  for (auto& t : readers) t.join();

  std::printf("%-28s %12.3f M/s\n", "edge updates",
              static_cast<double>(edges) / secs / 1e6);
  std::printf("%-28s %12.2f rounds/s\n", "BFS (concurrent)",
              static_cast<double>(bfs_rounds.load()) / secs);
  std::printf("%-28s %12.2f rounds/s\n", "PageRank-3 (concurrent)",
              static_cast<double>(pr_rounds.load()) / secs);
  std::printf("%-28s %12zu\n", "final |E|", g.NumEdges());
  std::printf("%-28s %12" PRIu64 "\n", "PMA resizes",
              g.edges().num_resizes());
  std::printf("%-28s %12" PRIu64 "\n", "global rebalances",
              g.edges().num_global_rebalances());

  BenchJson json(flags, "graph");
  json.Add()
      .Int("edges", edges)
      .Int("vertices", vertices)
      .Int("updaters", static_cast<uint64_t>(updaters))
      .Int("analytics", static_cast<uint64_t>(analytics))
      .Num("update_mops", static_cast<double>(edges) / secs / 1e6)
      .Num("bfs_rounds_per_s",
           static_cast<double>(bfs_rounds.load()) / secs)
      .Num("pagerank_rounds_per_s",
           static_cast<double>(pr_rounds.load()) / secs)
      .Int("final_edges", g.NumEdges())
      .Num("seconds", secs);
  return json.Write() ? 0 : 1;
}
