// Benchmark driver reproducing the paper's evaluation methodology (§4):
// a pool of updater threads and a pool of scanner threads run against one
// OrderedMap; updaters draw keys from the uniform or Zipfian distribution
// over [1, 2^27]; scanners repeatedly fold the whole structure in sorted
// order. Reported numbers are elements/second, separately for updates
// and scans, exactly like Figure 3's paired panels.

#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/hotpath/cpu_dispatch.h"
#include "common/ordered_map.h"
#include "common/pin.h"
#include "common/random.h"
#include "common/timer.h"
#include "common/zipf.h"
#include "concurrent/event_ring.h"

// Git revision baked in by bench/CMakeLists.txt (git describe
// --always --dirty at configure time) so every emitted record names the
// build it measured; "unknown" outside a git checkout.
#ifndef CPMA_GIT_SHA
#define CPMA_GIT_SHA "unknown"
#endif

// Feature macro for grafted bench sources (relative bench gate): a
// driver.h with sampled latency histograms + placement fields defines
// it; bench_*.cc grafted onto older trees stub the API out.
#define CPMA_BENCH_LATENCY 1

namespace cpma::bench {

enum class Dist { kUniform, kZipf1, kZipf15, kZipf2 };

inline const char* DistName(Dist d) {
  switch (d) {
    case Dist::kUniform: return "uniform";
    case Dist::kZipf1: return "zipf-1.0";
    case Dist::kZipf15: return "zipf-1.5";
    case Dist::kZipf2: return "zipf-2.0";
  }
  return "?";
}

inline KeyDistribution MakeDist(Dist d, uint64_t range) {
  switch (d) {
    case Dist::kUniform: return KeyDistribution::Uniform(range);
    case Dist::kZipf1: return KeyDistribution::Zipf(range, 1.0);
    case Dist::kZipf15: return KeyDistribution::Zipf(range, 1.5);
    case Dist::kZipf2: return KeyDistribution::Zipf(range, 2.0);
  }
  return KeyDistribution::Uniform(range);
}

struct WorkloadConfig {
  size_t num_ops = 1 << 21;            // paper: 1G; scaled (see --ops)
  uint64_t key_range = 1ull << 27;     // beta in the paper
  Dist dist = Dist::kUniform;
  int update_threads = 16;
  int scan_threads = 0;
  bool mixed = false;                  // fig 3 d-f: insert/delete rounds
  size_t preload = 0;                  // elements before measuring
  uint64_t seed = 42;
};

// ------------------------------------------------------- latency (ISSUE 8)
//
// Throughput alone hides tail pathologies: a rebalance stall or a
// coalescing-buffer age flush shows up as a p99.9 spike long before it
// moves the mean. Every workload therefore samples per-op latency into
// a log-bucketed histogram (4 sub-buckets per power of two — <= 19%
// relative bucket width — 64 octaves, so the whole uint64 ns range fits
// in 256 counters) and the drivers report p50/p99/p999 per op type in
// their JSON records. Sampled (1 op in 32), not exhaustive: two clock
// reads per sampled op keeps the probe overhead ~3% of ops instead of
// doubling the cost of a 100ns upsert.

class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 256;

  void Record(uint64_t ns) {
    ++buckets_[BucketOf(ns)];
    ++count_;
  }

  void Merge(const LatencyHistogram& other) {
    for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
  }

  uint64_t count() const { return count_; }

  /// Upper bound (ns) of the bucket holding the p-quantile sample,
  /// p in [0, 1]. 0 when the histogram is empty.
  uint64_t PercentileNs(double p) const {
    if (count_ == 0) return 0;
    uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count_));
    if (rank >= count_) rank = count_ - 1;
    uint64_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      seen += buckets_[b];
      if (seen > rank) return BucketHighNs(b);
    }
    return BucketHighNs(kNumBuckets - 1);
  }

 private:
  static int BucketOf(uint64_t ns) {
    if (ns < 4) return static_cast<int>(ns);
    const int msb = 63 - __builtin_clzll(ns);
    return (msb << 2) |
           static_cast<int>((ns >> (msb - 2)) & 3);  // 2 mantissa bits
  }
  static uint64_t BucketHighNs(int b) {
    if (b < 4) return static_cast<uint64_t>(b);
    const int msb = b >> 2;
    const uint64_t low = (1ull << msb) |
                         (static_cast<uint64_t>(b & 3) << (msb - 2));
    return low + (1ull << (msb - 2)) - 1;
  }

  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
};

/// Sample 1 op in kLatencySampleEvery (power of two) for the histogram.
constexpr size_t kLatencySampleEvery = 32;

inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// -------------------------------------------------- tail attribution
//
// ISSUE 10: percentiles say HOW BAD the tail is, not WHY. TailRecorder
// keeps the K slowest sampled op windows of a run; after the run, each
// window is matched against the mechanism events the structure recorded
// into TailEventRing (read fallbacks, rebalance windows, resizes,
// coalescing flushes, watchdog stalls) by time overlap. Each tail op is
// attributed to the highest-priority overlapping mechanism — stall >
// resize > rebalance > flush > fallback — because the heavier mechanism
// subsumes the lighter one (a resize implies fallbacks under it).
// Best-effort by design: the ring is bounded (overwritten events blur
// attribution, never crash it) and overlap is correlation, not proof.

class TailRecorder {
 public:
  explicit TailRecorder(size_t k = 512) : k_(k) {}

  struct OpWindow {
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
    uint64_t dur_ns() const { return end_ns - start_ns; }
  };

  /// Offer one sampled op window; keeps the k slowest seen so far.
  void Offer(uint64_t start_ns, uint64_t end_ns) {
    const uint64_t dur = end_ns - start_ns;
    if (wins_.size() < k_) {
      wins_.push_back({start_ns, end_ns});
      if (wins_.size() == k_) BuildHeap();
      return;
    }
    if (dur <= wins_.front().dur_ns()) return;
    PopMin();
    wins_.back() = {start_ns, end_ns};
    PushLast();
  }

  void Merge(const TailRecorder& other) {
    for (const OpWindow& w : other.wins_) Offer(w.start_ns, w.end_ns);
  }

  struct Attribution {
    uint64_t stall = 0;      // overlapped a watchdog-stall trip
    uint64_t resize = 0;     // overlapped a resize span
    uint64_t rebalance = 0;  // overlapped a window-rebalance span
    uint64_t flush = 0;      // overlapped a coalescing-flush dispatch
    uint64_t fallback = 0;   // overlapped a seqlock read fallback
    uint64_t none = 0;       // no recorded mechanism overlapped
    uint64_t ops = 0;        // tail ops attributed (== sum of above)
    uint64_t threshold_ns = 0;  // fastest op that still made the tail set
  };

  /// Attribute the kept windows against drained ring events. O(K * E);
  /// both are bounded small (K <= 512, E <= ring capacity).
  Attribution Attribute(const std::vector<TailEventRecord>& events) const {
    Attribution a;
    a.ops = wins_.size();
    for (const OpWindow& w : wins_) {
      int best = -1;  // priority rank of the best overlapping event
      for (const TailEventRecord& e : events) {
        if (e.start_ns > w.end_ns || e.end_ns < w.start_ns) continue;
        best = std::max(best, Priority(e.type));
      }
      switch (best) {
        case 4: ++a.stall; break;
        case 3: ++a.resize; break;
        case 2: ++a.rebalance; break;
        case 1: ++a.flush; break;
        case 0: ++a.fallback; break;
        default: ++a.none; break;
      }
      a.threshold_ns = a.threshold_ns == 0
                           ? w.dur_ns()
                           : std::min(a.threshold_ns, w.dur_ns());
    }
    return a;
  }

  size_t size() const { return wins_.size(); }

 private:
  static int Priority(TailEvent t) {
    switch (t) {
      case TailEvent::kWatchdogStall: return 4;
      case TailEvent::kResize: return 3;
      case TailEvent::kRebalanceWindow: return 2;
      case TailEvent::kCoalesceFlush: return 1;
      case TailEvent::kReadFallback: return 0;
    }
    return -1;
  }

  // Min-heap on duration over wins_ (only once it reaches k_), so the
  // common case — a sampled op faster than the current floor — is one
  // comparison against wins_.front().
  void BuildHeap() {
    auto cmp = [](const OpWindow& a, const OpWindow& b) {
      return a.dur_ns() > b.dur_ns();
    };
    std::make_heap(wins_.begin(), wins_.end(), cmp);
  }
  void PopMin() {
    auto cmp = [](const OpWindow& a, const OpWindow& b) {
      return a.dur_ns() > b.dur_ns();
    };
    std::pop_heap(wins_.begin(), wins_.end(), cmp);
  }
  void PushLast() {
    auto cmp = [](const OpWindow& a, const OpWindow& b) {
      return a.dur_ns() > b.dur_ns();
    };
    std::push_heap(wins_.begin(), wins_.end(), cmp);
  }

  size_t k_;
  std::vector<OpWindow> wins_;
};

struct WorkloadResult {
  double update_mops = 0;   // updates per second, millions
  double scan_meps = 0;     // scanned elements per second, millions
  double seconds = 0;
  LatencyHistogram update_lat;  // sampled (1/32) per-update latency
  LatencyHistogram scan_lat;    // one sample per full scan pass
};

/// Run one cell of Figure 3: `update_threads` updaters apply num_ops
/// updates total (insert-only, or alternating insert/delete rounds when
/// mixed), while `scan_threads` scanners fold the structure continuously.
inline WorkloadResult RunWorkload(OrderedMap* map,
                                  const WorkloadConfig& cfg) {
  if (cfg.preload > 0) {
    // Parallel preload with uniform keys (paper: structure already
    // storing the data for the mixed runs).
    const int loaders = cfg.update_threads;
    std::vector<std::thread> pre;
    for (int t = 0; t < loaders; ++t) {
      pre.emplace_back([&, t] {
        Random rng(cfg.seed + 1000 + static_cast<uint64_t>(t));
        auto dist = MakeDist(cfg.dist, cfg.key_range);
        const size_t n = cfg.preload / loaders;
        for (size_t i = 0; i < n; ++i) {
          map->Insert(dist.Sample(rng), i);
        }
      });
    }
    for (auto& t : pre) t.join();
    map->Flush();
  }

  std::atomic<bool> stop_scanners{false};
  std::atomic<uint64_t> scanned{0};
  std::atomic<uint64_t> update_count{0};
  std::vector<std::thread> threads;

  WorkloadResult r;
  std::mutex lat_mu;  // serializes per-thread histogram merges at exit

  Timer timer;
  for (int t = 0; t < cfg.update_threads; ++t) {
    threads.emplace_back([&, t] {
      PinThisThread(static_cast<unsigned>(t));
      Random rng(cfg.seed + static_cast<uint64_t>(t));
      auto dist = MakeDist(cfg.dist, cfg.key_range);
      LatencyHistogram lat;
      auto insert_sampled = [&](size_t i, Key key, Value value) {
        if ((i & (kLatencySampleEvery - 1)) == 0) {
          const uint64_t t0 = NowNanos();
          map->Insert(key, value);
          lat.Record(NowNanos() - t0);
        } else {
          map->Insert(key, value);
        }
      };
      const size_t n = cfg.num_ops / static_cast<size_t>(cfg.update_threads);
      if (!cfg.mixed) {
        for (size_t i = 0; i < n; ++i) {
          insert_sampled(i, dist.Sample(rng), i);
        }
        update_count.fetch_add(n, std::memory_order_relaxed);
      } else {
        // Rounds of insertions followed by the same deletions (paper:
        // 16M inserts then 16M deletes, ~1.5% of the initial size).
        const size_t round = std::max<size_t>(n / 8, 1);
        size_t done = 0;
        std::vector<Key> keys(round);
        while (done < n) {
          const size_t batch = std::min(round, (n - done) / 2 + 1);
          for (size_t i = 0; i < batch; ++i) {
            keys[i] = dist.Sample(rng);
            insert_sampled(i, keys[i], i);
          }
          for (size_t i = 0; i < batch; ++i) {
            if ((i & (kLatencySampleEvery - 1)) == 0) {
              const uint64_t t0 = NowNanos();
              map->Remove(keys[i]);
              lat.Record(NowNanos() - t0);
            } else {
              map->Remove(keys[i]);
            }
          }
          done += 2 * batch;
        }
        update_count.fetch_add(done, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> lk(lat_mu);
      r.update_lat.Merge(lat);
    });
  }
  std::vector<std::thread> scanners;
  for (int t = 0; t < cfg.scan_threads; ++t) {
    scanners.emplace_back([&, t] {
      PinThisThread(static_cast<unsigned>(cfg.update_threads + t));
      uint64_t local = 0;
      LatencyHistogram lat;
      while (!stop_scanners.load(std::memory_order_relaxed)) {
        const size_t size_now = map->Size();
        const uint64_t t0 = NowNanos();
        volatile uint64_t sink = map->SumAll();
        lat.Record(NowNanos() - t0);
        (void)sink;
        local += size_now;
      }
      scanned.fetch_add(local, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lk(lat_mu);
      r.scan_lat.Merge(lat);
    });
  }
  for (auto& t : threads) t.join();
  map->Flush();
  const double secs = timer.ElapsedSeconds();
  stop_scanners.store(true);
  for (auto& t : scanners) t.join();

  r.seconds = secs;
  r.update_mops =
      static_cast<double>(update_count.load()) / secs / 1e6;
  r.scan_meps = static_cast<double>(scanned.load()) / secs / 1e6;
  return r;
}

/// Minimal --flag=value parser for the bench binaries.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      auto eq = arg.find('=');
      if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
        kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }
  std::string Get(const std::string& k, const std::string& def) const {
    auto it = kv_.find(k);
    return it == kv_.end() ? def : it->second;
  }
  uint64_t GetInt(const std::string& k, uint64_t def) const {
    auto it = kv_.find(k);
    return it == kv_.end() ? def : std::stoull(it->second);
  }

 private:
  std::map<std::string, std::string> kv_;
};

// ------------------------------------------------------------- JSON out
//
// `--json=<path>` on any figure/ablation driver emits one flat record
// per measured workload — the knobs that produced the number next to the
// number itself, plus the git sha and the hot-path dispatch — so
// BENCH_*.json trajectories can be tracked across PRs (ROADMAP).
// Concurrent-PMA drivers also attach observability counters (storage
// publish mechanism, optimistic read path, and — since ISSUE 6 — the
// ebr_* epoch-reclamation stats); every such field is VOLATILE for
// scripts/bench_diff.py, never part of a record's identity.
// bench_micro routes the same flag through google-benchmark's native
// JSON reporter instead (see bench_micro.cc).

/// One record: ordered key/value pairs, values pre-serialized as JSON.
class JsonRecord {
 public:
  JsonRecord& Str(const std::string& k, const std::string& v) {
    std::string out = "\"";
    for (char c : v) {  // controlled identifiers; escape just in case
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    fields_.emplace_back(k, std::move(out));
    return *this;
  }
  JsonRecord& Num(const std::string& k, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    fields_.emplace_back(k, buf);
    return *this;
  }
  JsonRecord& Int(const std::string& k, uint64_t v) {
    fields_.emplace_back(k, std::to_string(v));
    return *this;
  }
  JsonRecord& Bool(const std::string& k, bool v) {
    fields_.emplace_back(k, v ? "true" : "false");
    return *this;
  }

 private:
  friend class BenchJson;
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Attach a workload's sampled latency percentiles under `prefix`
/// (e.g. "update" -> update_p50_ns/update_p99_ns/update_p999_ns and
/// update_lat_samples). The `_ns`/`_lat_samples` suffixes are VOLATILE
/// in scripts/bench_diff.py — measurements, never record identity.
inline JsonRecord& AddLatencyFields(JsonRecord& rec,
                                    const std::string& prefix,
                                    const LatencyHistogram& lat) {
  if (lat.count() == 0) return rec;
  return rec.Int(prefix + "_p50_ns", lat.PercentileNs(0.50))
      .Int(prefix + "_p99_ns", lat.PercentileNs(0.99))
      .Int(prefix + "_p999_ns", lat.PercentileNs(0.999))
      .Int(prefix + "_lat_samples", lat.count());
}

/// Attach a tail-attribution breakdown (ISSUE 10) under the `tail_`
/// prefix, plus the per-mechanism event counts the ring saw during the
/// run under `ev_`. Both prefixes are VOLATILE in scripts/bench_diff.py
/// — measurements of what the structure did, never record identity.
inline JsonRecord& AddTailFields(JsonRecord& rec,
                                 const TailRecorder::Attribution& a,
                                 const TailEventRing& ring) {
  rec.Int("tail_ops", a.ops)
      .Int("tail_thresh_ns", a.threshold_ns)
      .Int("tail_attr_stall", a.stall)
      .Int("tail_attr_resize", a.resize)
      .Int("tail_attr_rebalance", a.rebalance)
      .Int("tail_attr_flush", a.flush)
      .Int("tail_attr_fallback", a.fallback)
      .Int("tail_attr_none", a.none);
  return rec.Int("ev_read_fallbacks", ring.count(TailEvent::kReadFallback))
      .Int("ev_rebalances", ring.count(TailEvent::kRebalanceWindow))
      .Int("ev_resizes", ring.count(TailEvent::kResize))
      .Int("ev_flushes", ring.count(TailEvent::kCoalesceFlush))
      .Int("ev_stalls", ring.count(TailEvent::kWatchdogStall));
}

/// Attach where the workload's threads actually ran (ISSUE 8): the
/// allowed-CPU/topology summary from common/pin.h. A scaling curve from
/// a 1-core container and one from a 32-core box must not be comparable
/// records without this evidence attached. All VOLATILE in
/// scripts/bench_diff.py.
inline JsonRecord& AddPlacementFields(JsonRecord& rec) {
  const CpuTopology& topo = Topology();
  return rec.Int("host_cpus", static_cast<uint64_t>(topo.num_cpus))
      .Int("host_cores", static_cast<uint64_t>(topo.num_cores))
      .Bool("smt", topo.smt)
      .Str("pin_order", TopologySummary());
}

/// Collects records and writes them as a JSON array on Write(). With no
/// --json flag the collection is kept but never written (negligible
/// cost, keeps call sites unconditional).
class BenchJson {
 public:
  BenchJson(const Flags& flags, std::string bench)
      : path_(flags.Get("json", "")),
        jsonl_path_(flags.Get("jsonl", "")),
        bench_(std::move(bench)) {}

  bool enabled() const { return !path_.empty() || !jsonl_path_.empty(); }

  /// New record pre-filled with the bench name, git sha and dispatch.
  JsonRecord& Add() {
    records_.emplace_back();
    return records_.back()
        .Str("bench", bench_)
        .Str("git_sha", CPMA_GIT_SHA)
        .Str("dispatch", hotpath::ActiveDispatchName());
  }

  /// Write the array (--json) and/or append one record per line
  /// (--jsonl, the nightly-artifact shape — appends across invocations
  /// so a soak accumulates a trend file). Returns false on I/O failure.
  bool Write() const {
    if (!path_.empty()) {
      std::FILE* f = std::fopen(path_.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "bench: cannot open --json path %s\n",
                     path_.c_str());
        return false;
      }
      std::fputs("[\n", f);
      for (size_t r = 0; r < records_.size(); ++r) {
        std::fputs("  {", f);
        WriteFields(f, records_[r]);
        std::fprintf(f, "}%s\n", r + 1 == records_.size() ? "" : ",");
      }
      std::fputs("]\n", f);
      std::fclose(f);
      std::printf("# wrote %zu record(s) to %s\n", records_.size(),
                  path_.c_str());
    }
    if (!jsonl_path_.empty()) {
      std::FILE* f = std::fopen(jsonl_path_.c_str(), "a");
      if (f == nullptr) {
        std::fprintf(stderr, "bench: cannot open --jsonl path %s\n",
                     jsonl_path_.c_str());
        return false;
      }
      for (const JsonRecord& rec : records_) {
        std::fputs("{", f);
        WriteFields(f, rec);
        std::fputs("}\n", f);
      }
      std::fclose(f);
      std::printf("# appended %zu record(s) to %s\n", records_.size(),
                  jsonl_path_.c_str());
    }
    return true;
  }

 private:
  static void WriteFields(std::FILE* f, const JsonRecord& rec) {
    for (size_t i = 0; i < rec.fields_.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                   rec.fields_[i].first.c_str(),
                   rec.fields_[i].second.c_str());
    }
  }

  std::string path_;
  std::string jsonl_path_;
  std::string bench_;
  std::vector<JsonRecord> records_;
};

}  // namespace cpma::bench
