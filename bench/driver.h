// Benchmark driver reproducing the paper's evaluation methodology (§4):
// a pool of updater threads and a pool of scanner threads run against one
// OrderedMap; updaters draw keys from the uniform or Zipfian distribution
// over [1, 2^27]; scanners repeatedly fold the whole structure in sorted
// order. Reported numbers are elements/second, separately for updates
// and scans, exactly like Figure 3's paired panels.

#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/hotpath/cpu_dispatch.h"
#include "common/ordered_map.h"
#include "common/pin.h"
#include "common/random.h"
#include "common/timer.h"
#include "common/zipf.h"

// Git revision baked in by bench/CMakeLists.txt (git describe
// --always --dirty at configure time) so every emitted record names the
// build it measured; "unknown" outside a git checkout.
#ifndef CPMA_GIT_SHA
#define CPMA_GIT_SHA "unknown"
#endif

namespace cpma::bench {

enum class Dist { kUniform, kZipf1, kZipf15, kZipf2 };

inline const char* DistName(Dist d) {
  switch (d) {
    case Dist::kUniform: return "uniform";
    case Dist::kZipf1: return "zipf-1.0";
    case Dist::kZipf15: return "zipf-1.5";
    case Dist::kZipf2: return "zipf-2.0";
  }
  return "?";
}

inline KeyDistribution MakeDist(Dist d, uint64_t range) {
  switch (d) {
    case Dist::kUniform: return KeyDistribution::Uniform(range);
    case Dist::kZipf1: return KeyDistribution::Zipf(range, 1.0);
    case Dist::kZipf15: return KeyDistribution::Zipf(range, 1.5);
    case Dist::kZipf2: return KeyDistribution::Zipf(range, 2.0);
  }
  return KeyDistribution::Uniform(range);
}

struct WorkloadConfig {
  size_t num_ops = 1 << 21;            // paper: 1G; scaled (see --ops)
  uint64_t key_range = 1ull << 27;     // beta in the paper
  Dist dist = Dist::kUniform;
  int update_threads = 16;
  int scan_threads = 0;
  bool mixed = false;                  // fig 3 d-f: insert/delete rounds
  size_t preload = 0;                  // elements before measuring
  uint64_t seed = 42;
};

struct WorkloadResult {
  double update_mops = 0;   // updates per second, millions
  double scan_meps = 0;     // scanned elements per second, millions
  double seconds = 0;
};

/// Run one cell of Figure 3: `update_threads` updaters apply num_ops
/// updates total (insert-only, or alternating insert/delete rounds when
/// mixed), while `scan_threads` scanners fold the structure continuously.
inline WorkloadResult RunWorkload(OrderedMap* map,
                                  const WorkloadConfig& cfg) {
  if (cfg.preload > 0) {
    // Parallel preload with uniform keys (paper: structure already
    // storing the data for the mixed runs).
    const int loaders = cfg.update_threads;
    std::vector<std::thread> pre;
    for (int t = 0; t < loaders; ++t) {
      pre.emplace_back([&, t] {
        Random rng(cfg.seed + 1000 + static_cast<uint64_t>(t));
        auto dist = MakeDist(cfg.dist, cfg.key_range);
        const size_t n = cfg.preload / loaders;
        for (size_t i = 0; i < n; ++i) {
          map->Insert(dist.Sample(rng), i);
        }
      });
    }
    for (auto& t : pre) t.join();
    map->Flush();
  }

  std::atomic<bool> stop_scanners{false};
  std::atomic<uint64_t> scanned{0};
  std::atomic<uint64_t> update_count{0};
  std::vector<std::thread> threads;

  Timer timer;
  for (int t = 0; t < cfg.update_threads; ++t) {
    threads.emplace_back([&, t] {
      PinThisThread(static_cast<unsigned>(t));
      Random rng(cfg.seed + static_cast<uint64_t>(t));
      auto dist = MakeDist(cfg.dist, cfg.key_range);
      const size_t n = cfg.num_ops / static_cast<size_t>(cfg.update_threads);
      if (!cfg.mixed) {
        for (size_t i = 0; i < n; ++i) {
          map->Insert(dist.Sample(rng), i);
        }
        update_count.fetch_add(n, std::memory_order_relaxed);
      } else {
        // Rounds of insertions followed by the same deletions (paper:
        // 16M inserts then 16M deletes, ~1.5% of the initial size).
        const size_t round = std::max<size_t>(n / 8, 1);
        size_t done = 0;
        std::vector<Key> keys(round);
        while (done < n) {
          const size_t batch = std::min(round, (n - done) / 2 + 1);
          for (size_t i = 0; i < batch; ++i) {
            keys[i] = dist.Sample(rng);
            map->Insert(keys[i], i);
          }
          for (size_t i = 0; i < batch; ++i) map->Remove(keys[i]);
          done += 2 * batch;
        }
        update_count.fetch_add(done, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> scanners;
  for (int t = 0; t < cfg.scan_threads; ++t) {
    scanners.emplace_back([&, t] {
      PinThisThread(static_cast<unsigned>(cfg.update_threads + t));
      uint64_t local = 0;
      while (!stop_scanners.load(std::memory_order_relaxed)) {
        const size_t size_now = map->Size();
        volatile uint64_t sink = map->SumAll();
        (void)sink;
        local += size_now;
      }
      scanned.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  map->Flush();
  const double secs = timer.ElapsedSeconds();
  stop_scanners.store(true);
  for (auto& t : scanners) t.join();

  WorkloadResult r;
  r.seconds = secs;
  r.update_mops =
      static_cast<double>(update_count.load()) / secs / 1e6;
  r.scan_meps = static_cast<double>(scanned.load()) / secs / 1e6;
  return r;
}

/// Minimal --flag=value parser for the bench binaries.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      auto eq = arg.find('=');
      if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
        kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }
  std::string Get(const std::string& k, const std::string& def) const {
    auto it = kv_.find(k);
    return it == kv_.end() ? def : it->second;
  }
  uint64_t GetInt(const std::string& k, uint64_t def) const {
    auto it = kv_.find(k);
    return it == kv_.end() ? def : std::stoull(it->second);
  }

 private:
  std::map<std::string, std::string> kv_;
};

// ------------------------------------------------------------- JSON out
//
// `--json=<path>` on any figure/ablation driver emits one flat record
// per measured workload — the knobs that produced the number next to the
// number itself, plus the git sha and the hot-path dispatch — so
// BENCH_*.json trajectories can be tracked across PRs (ROADMAP).
// Concurrent-PMA drivers also attach observability counters (storage
// publish mechanism, optimistic read path, and — since ISSUE 6 — the
// ebr_* epoch-reclamation stats); every such field is VOLATILE for
// scripts/bench_diff.py, never part of a record's identity.
// bench_micro routes the same flag through google-benchmark's native
// JSON reporter instead (see bench_micro.cc).

/// One record: ordered key/value pairs, values pre-serialized as JSON.
class JsonRecord {
 public:
  JsonRecord& Str(const std::string& k, const std::string& v) {
    std::string out = "\"";
    for (char c : v) {  // controlled identifiers; escape just in case
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    fields_.emplace_back(k, std::move(out));
    return *this;
  }
  JsonRecord& Num(const std::string& k, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    fields_.emplace_back(k, buf);
    return *this;
  }
  JsonRecord& Int(const std::string& k, uint64_t v) {
    fields_.emplace_back(k, std::to_string(v));
    return *this;
  }
  JsonRecord& Bool(const std::string& k, bool v) {
    fields_.emplace_back(k, v ? "true" : "false");
    return *this;
  }

 private:
  friend class BenchJson;
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Collects records and writes them as a JSON array on Write(). With no
/// --json flag the collection is kept but never written (negligible
/// cost, keeps call sites unconditional).
class BenchJson {
 public:
  BenchJson(const Flags& flags, std::string bench)
      : path_(flags.Get("json", "")), bench_(std::move(bench)) {}

  bool enabled() const { return !path_.empty(); }

  /// New record pre-filled with the bench name, git sha and dispatch.
  JsonRecord& Add() {
    records_.emplace_back();
    return records_.back()
        .Str("bench", bench_)
        .Str("git_sha", CPMA_GIT_SHA)
        .Str("dispatch", hotpath::ActiveDispatchName());
  }

  /// Write the array; returns false (with a message) on I/O failure.
  bool Write() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open --json path %s\n",
                   path_.c_str());
      return false;
    }
    std::fputs("[\n", f);
    for (size_t r = 0; r < records_.size(); ++r) {
      std::fputs("  {", f);
      const auto& fields = records_[r].fields_;
      for (size_t i = 0; i < fields.size(); ++i) {
        std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                     fields[i].first.c_str(), fields[i].second.c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 == records_.size() ? "" : ",");
    }
    std::fputs("]\n", f);
    std::fclose(f);
    std::printf("# wrote %zu record(s) to %s\n", records_.size(),
                path_.c_str());
    return true;
  }

 private:
  std::string path_;
  std::string bench_;
  std::vector<JsonRecord> records_;
};

}  // namespace cpma::bench
