// YCSB-style standard workload suite (ISSUE 10): one binary sweeps the
// six core mixes A-F (bench/workloads.h) across every backend — the
// concurrent PMA, the sharded front end, and the four baselines —
// through the common OrderedMap interface, and emits one bench-JSON
// record per (mix, backend) cell with overall + per-op-type latency
// percentiles AND a tail-attribution breakdown: the K slowest sampled
// ops of the run correlated against the mechanism events (read
// fallbacks, rebalance windows, resizes, coalescing flushes, watchdog
// stalls) the structure recorded into the TailEventRing while the run
// was measuring. "There is a p999 spike" becomes "the p999 belongs to
// resize windows".
//
// Usage: bench_ycsb [--mixes=A,B,C,D,E,F] [--backends=pma,sharded,
//        masstree,bwtree,art,btree] [--records=N] [--ops=N]
//        [--threads=T] [--seed=S] [--tail_k=K] [--json=F] [--jsonl=F]
//
// Defaults are CI-scale (seconds on a laptop); the nightly soak slot
// scales --records/--ops up and appends to a ycsb.jsonl artifact.

#include <cinttypes>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "baselines/art/art.h"
#include "baselines/btree/btree.h"
#include "baselines/bwtree/bwtree.h"
#include "baselines/masstree/masstree.h"
#include "concurrent/concurrent_pma.h"
#include "driver.h"
#include "sharded/sharded_pma.h"
#include "workloads.h"

namespace cpma::bench {
namespace {

std::vector<std::string> ParseList(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

std::unique_ptr<OrderedMap> MakeBackend(const std::string& which) {
  if (which == "masstree") return std::make_unique<Masstree>();
  if (which == "bwtree") return std::make_unique<BwTree>();
  if (which == "art") return std::make_unique<ArtBTree>(4096);
  if (which == "btree") return std::make_unique<BTree>();
  if (which == "sharded") {
    // Coalescing front door ON so mix traffic exercises the flush
    // mechanism (and its tail events); shard count from the config
    // default / CPMA_SHARDS env like every other ShardedPMA.
    ShardedConfig cfg;
    cfg.coalesce_ops = 32;
    cfg.coalesce_age_ms = 5;
    return std::make_unique<ShardedPMA>(cfg);
  }
  if (which == "pma") {
    // Paper configuration, synchronous mode: YCSB's point ops assume
    // read-your-writes, so updates apply inline; rebalances/resizes
    // still run on the master/worker machinery (and get attributed).
    ConcurrentConfig cfg;
    cfg.pma.segment_capacity = 128;
    cfg.segments_per_gate = 8;
    cfg.rebalancer_workers = 8;
    cfg.async_mode = ConcurrentConfig::AsyncMode::kSync;
    return std::make_unique<ConcurrentPMA>(cfg);
  }
  return nullptr;
}

struct ThreadStats {
  LatencyHistogram all;
  LatencyHistogram per_op[5];  // indexed by YcsbOp
  TailRecorder tail;
  uint64_t ops = 0;

  explicit ThreadStats(size_t tail_k) : tail(tail_k) {}
};

struct CellResult {
  double secs = 0;
  uint64_t total_ops = 0;
  LatencyHistogram all;
  LatencyHistogram per_op[5];
  TailRecorder::Attribution attr;
};

void ExecuteOp(OrderedMap* map, const YcsbOpSpec& spec, uint64_t stamp) {
  Value v = 0;
  switch (spec.op) {
    case YcsbOp::kRead:
      map->Find(spec.key, &v);
      break;
    case YcsbOp::kUpdate:
      map->Insert(spec.key, stamp);
      break;
    case YcsbOp::kInsert:
      map->Insert(spec.key, spec.key);
      break;
    case YcsbOp::kScan: {
      uint32_t seen = 0;
      map->Scan(spec.key, kKeyMax, [&](Key, Value val) {
        v += val;
        return ++seen < spec.scan_len;
      });
      break;
    }
    case YcsbOp::kRmw:
      map->Find(spec.key, &v);
      map->Insert(spec.key, v + 1);
      break;
  }
}

CellResult RunCell(OrderedMap* map, const MixSpec& mix, uint64_t records,
                   uint64_t ops, int threads, uint64_t seed,
                   size_t tail_k) {
  // Preload [1, records] in parallel so reads always have a target;
  // outside the measured window and outside the event ring's view.
  {
    std::vector<std::thread> pre;
    for (int t = 0; t < threads; ++t) {
      pre.emplace_back([&, t] {
        for (uint64_t k = 1 + static_cast<uint64_t>(t); k <= records;
             k += static_cast<uint64_t>(threads)) {
          map->Insert(k, k);
        }
      });
    }
    for (auto& th : pre) th.join();
    map->Flush();
  }

  TailEventRing& ring = TailEventRing::Global();
  ring.Reset();
  ring.Enable();

  std::vector<ThreadStats> stats;
  stats.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) stats.emplace_back(tail_k);

  Timer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      PinThisThread(static_cast<unsigned>(t));
      ThreadStats& st = stats[static_cast<size_t>(t)];
      WorkloadGenerator gen(mix, records, t, threads, seed);
      const uint64_t n = ops / static_cast<uint64_t>(threads);
      for (uint64_t i = 0; i < n; ++i) {
        const YcsbOpSpec spec = gen.Next();
        if ((i & (kLatencySampleEvery - 1)) == 0) {
          const uint64_t t0 = NowNanos();
          ExecuteOp(map, spec, i);
          const uint64_t t1 = NowNanos();
          st.all.Record(t1 - t0);
          st.per_op[static_cast<size_t>(spec.op)].Record(t1 - t0);
          st.tail.Offer(t0, t1);
        } else {
          ExecuteOp(map, spec, i);
        }
      }
      st.ops = n;
    });
  }
  for (auto& th : workers) th.join();
  map->Flush();
  const double secs = timer.ElapsedSeconds();
  ring.Disable();

  CellResult r;
  r.secs = secs;
  TailRecorder tail(tail_k);
  for (const ThreadStats& st : stats) {
    r.total_ops += st.ops;
    r.all.Merge(st.all);
    for (int o = 0; o < 5; ++o) r.per_op[o].Merge(st.per_op[o]);
    tail.Merge(st.tail);
  }
  std::vector<TailEventRecord> events;
  ring.Drain(&events);
  r.attr = tail.Attribute(events);
  return r;
}

}  // namespace
}  // namespace cpma::bench

int main(int argc, char** argv) {
  using namespace cpma;
  using namespace cpma::bench;
  Flags flags(argc, argv);
  const uint64_t records = flags.GetInt("records", 100000);
  const uint64_t ops = flags.GetInt("ops", 200000);
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const uint64_t seed = flags.GetInt("seed", 42);
  const size_t tail_k = flags.GetInt("tail_k", 512);
  const std::string mixes = flags.Get("mixes", "A,B,C,D,E,F");
  const std::string backends =
      flags.Get("backends", "pma,sharded,masstree,bwtree,art,btree");

  std::printf("# bench_ycsb: records=%" PRIu64 " ops=%" PRIu64
              " threads=%d seed=%" PRIu64 "\n",
              records, ops, threads, seed);
  std::printf("%-4s %-10s %12s %10s %10s %10s  %s\n", "mix", "backend",
              "ops[M/s]", "p50[ns]", "p99[ns]", "p999[ns]",
              "tail attribution");

  BenchJson json(flags, "ycsb");
  int status = 0;
  for (const std::string& mix_name : ParseList(mixes)) {
    const MixSpec* mix = FindMix(mix_name[0]);
    if (mix == nullptr) {
      std::fprintf(stderr, "bench_ycsb: unknown mix '%s'\n",
                   mix_name.c_str());
      status = 1;
      continue;
    }
    for (const std::string& backend : ParseList(backends)) {
      auto map = MakeBackend(backend);
      if (map == nullptr) {
        std::fprintf(stderr, "bench_ycsb: unknown backend '%s'\n",
                     backend.c_str());
        status = 1;
        continue;
      }
      CellResult r = RunCell(map.get(), *mix, records, ops, threads, seed,
                             tail_k);
      const double mops =
          static_cast<double>(r.total_ops) / r.secs / 1e6;
      const TailRecorder::Attribution& a = r.attr;
      std::printf("%-4c %-10s %12.3f %10" PRIu64 " %10" PRIu64
                  " %10" PRIu64
                  "  stall=%" PRIu64 " resize=%" PRIu64 " rebal=%" PRIu64
                  " flush=%" PRIu64 " fallbk=%" PRIu64 " none=%" PRIu64
                  "\n",
                  mix->name, backend.c_str(), mops, r.all.PercentileNs(0.5),
                  r.all.PercentileNs(0.99), r.all.PercentileNs(0.999),
                  a.stall, a.resize, a.rebalance, a.flush, a.fallback,
                  a.none);
      std::fflush(stdout);

      JsonRecord& rec = json.Add();
      rec.Str("mix", std::string(1, mix->name))
          .Str("backend", backend)
          .Int("records", records)
          .Int("ops", ops)
          .Int("threads", static_cast<uint64_t>(threads))
          .Int("seed", seed)
          .Num("ops_mops", mops)
          .Num("seconds", r.secs);
      AddLatencyFields(rec, "op", r.all);
      AddLatencyFields(rec, "read", r.per_op[0]);
      AddLatencyFields(rec, "update", r.per_op[1]);
      AddLatencyFields(rec, "insert", r.per_op[2]);
      AddLatencyFields(rec, "scan", r.per_op[3]);
      AddLatencyFields(rec, "rmw", r.per_op[4]);
      AddTailFields(rec, r.attr, TailEventRing::Global());
      AddPlacementFields(rec);
    }
  }
  if (!json.Write()) status = 1;
  return status;
}
