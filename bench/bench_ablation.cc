// Reproduces the two textual ablations in §4.1 of the paper:
//
//  --what=leaf     ART/B+tree leaf capacity 4 KiB -> 8 KiB: trades update
//                  throughput for scan throughput (paper: the PMA's scan
//                  lead shrinks to 10-20%, while its update throughput
//                  becomes superior under uniform keys).
//  --what=segment  PMA segment capacity 128 -> 256: ~15% faster scans,
//                  ~15% slower uniform updates, faster skewed updates
//                  (fewer rebalances with larger segments).
//  --what=rewire   extra ablation from DESIGN.md: rebalances with memory
//                  rewiring vs the two-copy fallback.
//  --what=adaptive extra ablation: adaptive vs traditional rebalancing
//                  under skewed insertions (sequential PMA counters).

#include <cinttypes>
#include <memory>

#include "baselines/art/art.h"
#include "concurrent/concurrent_pma.h"
#include "driver.h"
#include "pma/sequential_pma.h"

namespace cpma::bench {
namespace {

WorkloadConfig BaseConfig(size_t ops, uint64_t range, Dist dist) {
  WorkloadConfig w;
  w.num_ops = ops;
  w.key_range = range;
  w.dist = dist;
  w.update_threads = 8;
  w.scan_threads = 8;
  return w;
}

std::unique_ptr<ConcurrentPMA> MakePma(size_t segment_capacity,
                                       bool use_rewiring = true) {
  ConcurrentConfig cfg;
  cfg.pma.segment_capacity = segment_capacity;
  cfg.pma.use_rewiring = use_rewiring;
  cfg.segments_per_gate = 8;
  cfg.rebalancer_workers = 8;
  cfg.async_mode = ConcurrentConfig::AsyncMode::kBatch;
  cfg.t_delay_ms = 100;
  return std::make_unique<ConcurrentPMA>(cfg);
}

void Row(const char* what, const char* label, OrderedMap* m,
         const WorkloadConfig& w, BenchJson* json) {
  WorkloadResult r = RunWorkload(m, w);
  std::printf("%-22s %-10s %14.3f %14.3f\n", label, DistName(w.dist),
              r.update_mops, r.scan_meps);
  std::fflush(stdout);
  JsonRecord& rec =
      json->Add()
          .Str("what", what)
          .Str("structure", label)
          .Str("dist", DistName(w.dist))
          .Int("update_threads", static_cast<uint64_t>(w.update_threads))
          .Int("scan_threads", static_cast<uint64_t>(w.scan_threads))
          .Int("ops", w.num_ops)
          .Int("range", w.key_range)
          .Num("update_mops", r.update_mops)
          .Num("scan_meps", r.scan_meps)
          .Num("seconds", r.seconds);
  AddLatencyFields(rec, "update", r.update_lat);
  AddLatencyFields(rec, "scan", r.scan_lat);
  AddPlacementFields(rec);
}

void LeafAblation(size_t ops, uint64_t range, BenchJson* json) {
  std::printf("\n=== Ablation: ART/B+tree leaf size (paper §4.1) ===\n");
  std::printf("%-22s %-10s %14s %14s\n", "structure", "dist",
              "updates[M/s]", "scans[Melt/s]");
  for (Dist d : {Dist::kUniform, Dist::kZipf15}) {
    for (size_t leaf : {4096u, 8192u}) {
      ArtBTree art(leaf);
      Row("leaf", leaf == 4096 ? "ART(4KiB leaves)" : "ART(8KiB leaves)",
          &art, BaseConfig(ops, range, d), json);
    }
    auto pma = MakePma(128);
    Row("leaf", "PMA(B=128)", pma.get(), BaseConfig(ops, range, d), json);
  }
}

void SegmentAblation(size_t ops, uint64_t range, BenchJson* json) {
  std::printf("\n=== Ablation: PMA segment capacity (paper §4.1) ===\n");
  std::printf("%-22s %-10s %14s %14s\n", "structure", "dist",
              "updates[M/s]", "scans[Melt/s]");
  for (Dist d : {Dist::kUniform, Dist::kZipf15}) {
    for (size_t seg : {128u, 256u}) {
      auto pma = MakePma(seg);
      Row("segment", seg == 128 ? "PMA(B=128)" : "PMA(B=256)", pma.get(),
          BaseConfig(ops, range, d), json);
    }
  }
}

void RewireAblation(size_t ops, uint64_t range, BenchJson* json) {
  std::printf("\n=== Ablation: memory rewiring vs copy rebalances ===\n");
  std::printf("%-22s %-10s %14s %14s\n", "structure", "dist",
              "updates[M/s]", "scans[Melt/s]");
  for (Dist d : {Dist::kUniform, Dist::kZipf15}) {
    for (bool rewire : {true, false}) {
      auto pma = MakePma(128, rewire);
      Row("rewire", rewire ? "PMA(rewired)" : "PMA(two-copy)", pma.get(),
          BaseConfig(ops, range, d), json);
    }
  }
}

void AdaptiveAblation(size_t ops, uint64_t range, BenchJson* json) {
  std::printf(
      "\n=== Ablation: adaptive vs traditional rebalancing (sequential) "
      "===\n");
  std::printf("%-22s %-10s %14s %16s\n", "policy", "pattern",
              "updates[M/s]", "rebalances");
  for (bool adaptive : {true, false}) {
    PmaConfig cfg;
    cfg.segment_capacity = 128;
    cfg.adaptive = adaptive;
    SequentialPMA pma(cfg);
    // Skewed pattern: ascending run inserted into a pre-populated array.
    for (Key k = 0; k < ops / 4; ++k) pma.Insert(k * 997, k);
    Timer t;
    for (Key k = 0; k < ops; ++k) pma.Insert((1ull << 40) + k, k);
    const double secs = t.ElapsedSeconds();
    std::printf("%-22s %-10s %14.3f %16" PRIu64 "\n",
                adaptive ? "adaptive" : "traditional", "asc-run",
                static_cast<double>(ops) / secs / 1e6, pma.num_rebalances());
    json->Add()
        .Str("what", "adaptive")
        .Str("structure", adaptive ? "adaptive" : "traditional")
        .Str("dist", "asc-run")
        .Int("ops", ops)
        .Num("update_mops", static_cast<double>(ops) / secs / 1e6)
        .Int("rebalances", pma.num_rebalances())
        .Num("seconds", secs);
  }
  (void)range;
}

}  // namespace
}  // namespace cpma::bench

int main(int argc, char** argv) {
  using namespace cpma::bench;
  Flags flags(argc, argv);
  const size_t ops = flags.GetInt("ops", 1 << 20);
  const uint64_t range = flags.GetInt("range", 1ull << 27);
  const std::string what = flags.Get("what", "all");
  std::printf("# bench_ablation: ops=%zu range=%" PRIu64 "\n", ops, range);
  BenchJson json(flags, "ablation");
  if (what == "leaf" || what == "all") LeafAblation(ops, range, &json);
  if (what == "segment" || what == "all") SegmentAblation(ops, range, &json);
  if (what == "rewire" || what == "all") RewireAblation(ops, range, &json);
  if (what == "adaptive" || what == "all") AdaptiveAblation(ops, range, &json);
  return json.Write() ? 0 : 1;
}
