// YCSB-style standard workload vocabulary (ISSUE 10), after Cooper et
// al., "Benchmarking Cloud Serving Systems with YCSB" (SoCC'10): the
// six core mixes A-F as deterministic, seeded per-thread op-stream
// generators over the OrderedMap key/value model.
//
//   mix  ops                          chooser   nickname
//   A    50% read / 50% update        zipfian   update heavy
//   B    95% read /  5% update        zipfian   read mostly
//   C    100% read                    zipfian   read only
//   D    95% read /  5% insert        latest    read latest
//   E    95% scan /  5% insert        zipfian   short ranges
//   F    50% read / 50% read-mod-wr   zipfian   read-modify-write
//
// Zipfian uses the YCSB constant 0.99 over the preloaded keyspace
// [1, record_count]. "Latest" skews toward the most recently inserted
// key (frontier - zipf draw). Scan lengths are uniform in
// [1, max_scan_len] (YCSB default). Inserts partition the key space
// above the preload by thread (key = base + 1 + thread + i * threads),
// so concurrent generators never collide and every generator is a pure
// function of (mix, record_count, thread, num_threads, seed) — the
// determinism the tests pin down.

#pragma once

#include <cstdint>
#include <string>

#include "common/ordered_map.h"
#include "common/random.h"
#include "common/zipf.h"

namespace cpma::bench {

enum class YcsbOp : uint8_t { kRead, kUpdate, kInsert, kScan, kRmw };
constexpr size_t kNumYcsbOps = 5;

inline const char* YcsbOpName(YcsbOp op) {
  switch (op) {
    case YcsbOp::kRead: return "read";
    case YcsbOp::kUpdate: return "update";
    case YcsbOp::kInsert: return "insert";
    case YcsbOp::kScan: return "scan";
    case YcsbOp::kRmw: return "rmw";
  }
  return "?";
}

enum class Chooser : uint8_t { kZipfian, kUniform, kLatest };

/// One generated operation: the op type, its key, and (for scans) how
/// many consecutive elements to visit.
struct YcsbOpSpec {
  YcsbOp op = YcsbOp::kRead;
  Key key = 1;
  uint32_t scan_len = 0;
};

/// Proportions of one mix (sum to 1.0) plus its key chooser.
struct MixSpec {
  char name = '?';
  double read = 0, update = 0, insert = 0, scan = 0, rmw = 0;
  Chooser chooser = Chooser::kZipfian;
  uint32_t max_scan_len = 0;
};

/// YCSB zipfian constant (theta in the original harness).
constexpr double kYcsbZipfAlpha = 0.99;

/// The six core mixes. Returns nullptr for an unknown letter.
inline const MixSpec* FindMix(char m) {
  static const MixSpec kMixes[] = {
      {'A', 0.50, 0.50, 0.00, 0.00, 0.00, Chooser::kZipfian, 0},
      {'B', 0.95, 0.05, 0.00, 0.00, 0.00, Chooser::kZipfian, 0},
      {'C', 1.00, 0.00, 0.00, 0.00, 0.00, Chooser::kZipfian, 0},
      {'D', 0.95, 0.00, 0.05, 0.00, 0.00, Chooser::kLatest, 0},
      {'E', 0.00, 0.00, 0.05, 0.95, 0.00, Chooser::kZipfian, 100},
      {'F', 0.50, 0.00, 0.00, 0.00, 0.50, Chooser::kZipfian, 0},
  };
  for (const MixSpec& s : kMixes) {
    if (s.name == m) return &s;
  }
  return nullptr;
}

/// Deterministic per-thread op-stream generator for one mix. Two
/// generators constructed with identical arguments emit identical
/// sequences; generators with different thread indices draw disjoint
/// insert keys and independent random streams.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const MixSpec& mix, uint64_t record_count,
                    int thread_index, int num_threads, uint64_t seed)
      : mix_(mix),
        records_(record_count < 1 ? 1 : record_count),
        thread_(static_cast<uint64_t>(thread_index)),
        threads_(static_cast<uint64_t>(num_threads < 1 ? 1 : num_threads)),
        rng_(MixSeed(seed, thread_)),
        zipf_(records_, kYcsbZipfAlpha),
        // Latest chooser: the skew-toward-the-front draw reuses the
        // zipfian shape over the keyspace size (YCSB's
        // SkewedLatestGenerator composes exactly so).
        latest_zipf_(records_, kYcsbZipfAlpha) {}

  /// Next operation in this thread's stream.
  YcsbOpSpec Next() {
    YcsbOpSpec spec;
    const double u = rng_.NextDouble();
    double acc = mix_.read;
    if (u < acc) {
      spec.op = YcsbOp::kRead;
      spec.key = ChooseKey();
      return spec;
    }
    acc += mix_.update;
    if (u < acc) {
      spec.op = YcsbOp::kUpdate;
      spec.key = ChooseKey();
      return spec;
    }
    acc += mix_.insert;
    if (u < acc) {
      spec.op = YcsbOp::kInsert;
      spec.key = NextInsertKey();
      return spec;
    }
    acc += mix_.scan;
    if (u < acc) {
      spec.op = YcsbOp::kScan;
      spec.key = ChooseKey();
      spec.scan_len = 1 + static_cast<uint32_t>(rng_.NextBounded(
                              mix_.max_scan_len ? mix_.max_scan_len : 1));
      return spec;
    }
    spec.op = YcsbOp::kRmw;
    spec.key = ChooseKey();
    return spec;
  }

  /// Keys this thread inserted so far (its insert stream position).
  uint64_t inserted() const { return inserted_; }

  /// This thread's estimate of the global insert frontier: the highest
  /// key guaranteed inserted if all threads progress evenly. Exact
  /// under single-threaded use; an approximation (never above the
  /// preload ceiling + own contribution) under concurrency — "latest"
  /// is a skew target, not a consistency contract.
  uint64_t frontier() const {
    return records_ + inserted_ * threads_;
  }

 private:
  static uint64_t MixSeed(uint64_t seed, uint64_t thread) {
    uint64_t s = seed ^ (0x9e3779b97f4a7c15ull * (thread + 1));
    return SplitMix64(s);
  }

  Key ChooseKey() {
    switch (mix_.chooser) {
      case Chooser::kUniform:
        return 1 + rng_.NextBounded(records_);
      case Chooser::kZipfian: {
        // Scramble the zipf rank over the keyspace (YCSB hashes the
        // rank too): without this the hottest keys are all clustered at
        // the low end of the PMA, which measures one gate, not skew.
        uint64_t rank = zipf_.Sample(rng_) - 1;
        return 1 + SplitMix64(rank) % records_;
      }
      case Chooser::kLatest: {
        const uint64_t f = frontier();
        const uint64_t back = latest_zipf_.Sample(rng_) - 1;  // 0-based
        return back >= f ? 1 : f - back;
      }
    }
    return 1;
  }

  Key NextInsertKey() {
    // Round-robin partition of the space above the preload: thread t
    // takes base+1+t, base+1+t+threads, ... — disjoint across threads,
    // and the aggregate frontier stays dense (no holes), which keeps
    // the latest chooser's targets mostly-present.
    const Key k = records_ + 1 + thread_ + inserted_ * threads_;
    ++inserted_;
    return k;
  }

  MixSpec mix_;
  uint64_t records_;
  uint64_t thread_;
  uint64_t threads_;
  Random rng_;
  ZipfDistribution zipf_;
  ZipfDistribution latest_zipf_;
  uint64_t inserted_ = 0;
};

}  // namespace cpma::bench
