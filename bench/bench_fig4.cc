// Reproduces Figure 4 of the paper: speed-up of the asynchronous update
// schemes (one-by-one and batch processing with t_delay in {0, 100, 200,
// 400, 800} ms) over the synchronous baseline PMA, for 16 / 12 / 8
// updater threads (the remaining threads scan), under the uniform and
// Zipfian distributions. Insert-only, like the paper's experiment.
//
// Usage: bench_fig4 [--threads=16|12|8|all] [--ops=N] [--range=R]

#include <cinttypes>
#include <memory>
#include <vector>

#include "concurrent/concurrent_pma.h"
#include "driver.h"

namespace cpma::bench {
namespace {

struct ModeSpec {
  const char* label;
  ConcurrentConfig::AsyncMode mode;
  int64_t t_delay_ms;
};

const ModeSpec kModes[] = {
    {"baseline(sync)", ConcurrentConfig::AsyncMode::kSync, 0},
    {"one-by-one", ConcurrentConfig::AsyncMode::kOneByOne, 0},
    {"batch-0ms", ConcurrentConfig::AsyncMode::kBatch, 0},
    {"batch-100ms", ConcurrentConfig::AsyncMode::kBatch, 100},
    {"batch-200ms", ConcurrentConfig::AsyncMode::kBatch, 200},
    {"batch-400ms", ConcurrentConfig::AsyncMode::kBatch, 400},
    {"batch-800ms", ConcurrentConfig::AsyncMode::kBatch, 800},
};

void RunPanel(int upd_threads, size_t ops, uint64_t range, BenchJson* json) {
  const int scan_threads = 16 - upd_threads;
  std::printf("\n=== Figure 4 (%d updaters, %d scanners) ===\n", upd_threads,
              scan_threads);
  std::printf("%-16s %-10s %14s %10s\n", "scheme", "dist", "updates[M/s]",
              "speedup");
  for (Dist dist : {Dist::kUniform, Dist::kZipf1, Dist::kZipf15,
                    Dist::kZipf2}) {
    double baseline = 0;
    for (const ModeSpec& spec : kModes) {
      ConcurrentConfig cfg;
      cfg.pma.segment_capacity = 128;
      cfg.segments_per_gate = 8;
      cfg.rebalancer_workers = 8;
      cfg.async_mode = spec.mode;
      cfg.t_delay_ms = spec.t_delay_ms;
      ConcurrentPMA pma(cfg);
      WorkloadConfig w;
      w.num_ops = ops;
      w.key_range = range;
      w.dist = dist;
      w.update_threads = upd_threads;
      w.scan_threads = scan_threads;
      WorkloadResult r = RunWorkload(&pma, w);
      if (baseline == 0) baseline = r.update_mops;
      std::printf("%-16s %-10s %14.3f %9.2fx\n", spec.label, DistName(dist),
                  r.update_mops, r.update_mops / baseline);
      std::fflush(stdout);
      JsonRecord& rec =
          json->Add()
              .Str("scheme", spec.label)
              .Str("dist", DistName(dist))
              .Int("update_threads", static_cast<uint64_t>(upd_threads))
              .Int("scan_threads", static_cast<uint64_t>(scan_threads))
              .Int("t_delay_ms", static_cast<uint64_t>(spec.t_delay_ms))
              .Int("ops", ops)
              .Int("range", range)
              .Num("update_mops", r.update_mops)
              .Num("scan_meps", r.scan_meps)
              .Num("speedup", r.update_mops / baseline)
              .Num("seconds", r.seconds);
      AddLatencyFields(rec, "update", r.update_lat);
      AddLatencyFields(rec, "scan", r.scan_lat);
      AddPlacementFields(rec);
    }
  }
}

}  // namespace
}  // namespace cpma::bench

int main(int argc, char** argv) {
  using namespace cpma::bench;
  Flags flags(argc, argv);
  const size_t ops = flags.GetInt("ops", 1 << 20);
  const uint64_t range = flags.GetInt("range", 1ull << 27);
  const std::string threads = flags.Get("threads", "all");
  std::printf("# bench_fig4: ops=%zu range=%" PRIu64
              " (paper: 1G inserts, range 2^27)\n",
              ops, range);
  BenchJson json(flags, "fig4");
  if (threads == "all") {
    for (int t : {16, 12, 8}) RunPanel(t, ops, range, &json);
  } else {
    RunPanel(static_cast<int>(std::stoi(threads)), ops, range, &json);
  }
  return json.Write() ? 0 : 1;
}
