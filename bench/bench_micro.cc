// Micro-benchmarks (google-benchmark) for the substrates: sequential PMA
// operations, rewired vs copy-based spreads, static index lookups, gate
// latch acquisition, epoch enter/exit and Zipf sampling. These back the
// per-component claims in DESIGN.md.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/epoch_gc.h"
#include "common/hotpath/cpu_dispatch.h"
#include "common/hotpath/search.h"
#include "common/hotpath/search_avx2.h"
#include "common/random.h"
#include "common/zipf.h"
#include "concurrent/concurrent_pma.h"
#include "concurrent/gate.h"
#include "concurrent/static_index.h"
#include "pma/sequential_pma.h"
#include "pma/spread.h"
#include "rewiring/rewiring.h"

namespace cpma {
namespace {

// ------------------------------------------------- hot-path kernels
// Direct comparison of the segment lower-bound kernels on a full
// (card = B = 128) segment with uniform random probes — the access
// pattern of every Find/Insert (ISSUE 2).

std::vector<Item> MakeSegment(size_t card) {
  std::vector<Item> seg(card);
  Key k = 17;
  for (size_t i = 0; i < card; ++i) {
    seg[i] = {k, i};
    k += 1 + (i * 2654435761u) % 1024;
  }
  return seg;
}

void BM_SegmentLowerBoundScalar(benchmark::State& state) {
  const auto seg = MakeSegment(static_cast<size_t>(state.range(0)));
  const Key max = seg.back().key + 512;
  Random rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hotpath::ScalarItemLowerBound(
        seg.data(), seg.size(), rng.NextBounded(max)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SegmentLowerBoundScalar)->Arg(16)->Arg(128)->Arg(256);

#if CPMA_HAVE_AVX2_IMPL
void BM_SegmentLowerBoundAvx2(benchmark::State& state) {
  if (!hotpath::Avx2Supported()) {
    state.SkipWithError("CPU lacks AVX2");
    return;
  }
  const auto seg = MakeSegment(static_cast<size_t>(state.range(0)));
  const Key max = seg.back().key + 512;
  Random rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hotpath::Avx2ItemLowerBound(
        seg.data(), seg.size(), rng.NextBounded(max)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SegmentLowerBoundAvx2)->Arg(16)->Arg(128)->Arg(256);
#endif

void BM_SequentialPmaInsertUniform(benchmark::State& state) {
  SequentialPMA pma;
  Random rng(1);
  for (auto _ : state) {
    pma.Insert(rng.NextBounded(1 << 27), 1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SequentialPmaInsertUniform);

void BM_SequentialPmaInsertSequential(benchmark::State& state) {
  SequentialPMA pma;
  Key k = 0;
  for (auto _ : state) {
    pma.Insert(k++, 1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SequentialPmaInsertSequential);

void BM_SequentialPmaFind(benchmark::State& state) {
  SequentialPMA pma;
  Random rng(2);
  for (int i = 0; i < 1 << 20; ++i) pma.Insert(rng.NextBounded(1 << 27), i);
  for (auto _ : state) {
    Value v;
    benchmark::DoNotOptimize(pma.Find(rng.NextBounded(1 << 27), &v));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SequentialPmaFind);

void BM_SequentialPmaScan(benchmark::State& state) {
  SequentialPMA pma;
  Random rng(3);
  for (int i = 0; i < 1 << 20; ++i) pma.Insert(rng.NextBounded(1 << 27), i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pma.SumAll());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pma.Size()));
}
BENCHMARK(BM_SequentialPmaScan);

void BM_RewiredSwap(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  auto region = RewiredRegion::Create(bytes, bytes);
  for (auto _ : state) {
    region->SwapPages(0, 0, bytes);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
  state.SetLabel(region->rewiring_enabled() ? "mmap-rewiring"
                                            : "memcpy-fallback");
}
BENCHMARK(BM_RewiredSwap)->Range(1 << 14, 1 << 22);

void BM_SpreadRewiredVsCopy(benchmark::State& state) {
  const bool rewire = state.range(0) != 0;
  Storage st(1024, 128, rewire);
  // Fill half full.
  Key k = 1;
  for (size_t s = 0; s < 1024; ++s) {
    for (uint32_t i = 0; i < 64; ++i) st.segment(s)[i] = {k++, 1};
    st.set_card(s, 64);
  }
  st.RebuildRoutes(0, 1024);
  for (auto _ : state) {
    WindowPlan plan = PlanSpread(st, 0, 1024, false, SIZE_MAX);
    CopyPartitionToBuffer(&st, plan, 0, 1024);
    FinishSpread(&st, plan);
  }
  state.SetLabel(rewire ? "rewired" : "copy");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64 *
                          1024);
}
BENCHMARK(BM_SpreadRewiredVsCopy)->Arg(1)->Arg(0);

void BM_StaticIndexLookup(benchmark::State& state) {
  const size_t gates = static_cast<size_t>(state.range(0));
  StaticIndex idx(gates, 16);
  for (size_t g = 0; g < gates; ++g) {
    idx.SetSeparator(g, g == 0 ? kKeyMin : g * 1000);
  }
  Random rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.Lookup(rng.NextBounded(gates * 1000)));
  }
}
BENCHMARK(BM_StaticIndexLookup)->Arg(64)->Arg(1024)->Arg(16384);

void BM_GateAcquireRelease(benchmark::State& state) {
  Gate gate(0, 0, 8);
  Key key = 1;
  for (auto _ : state) {
    gate.ReaderAccess(&key);
    gate.ReaderRelease();
  }
}
BENCHMARK(BM_GateAcquireRelease);

void BM_EpochEnterExit(benchmark::State& state) {
  static EpochGC gc;
  for (auto _ : state) {
    EpochGuard guard(gc);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_EpochEnterExit);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(1ull << 27, 1.5);
  Random rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_ConcurrentPmaInsertMT(benchmark::State& state) {
  static ConcurrentPMA* pma = nullptr;
  if (state.thread_index() == 0) {
    ConcurrentConfig cfg;
    cfg.async_mode = ConcurrentConfig::AsyncMode::kBatch;
    cfg.t_delay_ms = 100;
    pma = new ConcurrentPMA(cfg);
  }
  Random rng(100 + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    pma->Insert(rng.NextBounded(1 << 27), 1);
  }
  if (state.thread_index() == 0) {
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            state.threads());
    delete pma;
    pma = nullptr;
  }
}
BENCHMARK(BM_ConcurrentPmaInsertMT)->Threads(1)->Threads(4)->Threads(8);

}  // namespace
}  // namespace cpma

// Custom main instead of BENCHMARK_MAIN(): announce the hot-path
// dispatch, and translate the repo-wide --json=<path> flag into
// google-benchmark's native JSON reporter so all five bench binaries
// share one flag for BENCH_*.json trajectories.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  for (auto it = args.begin(); it != args.end(); ++it) {
    const char* a = *it;
    if (std::strncmp(a, "--json=", 7) == 0) {
      out_flag = std::string("--benchmark_out=") + (a + 7);
      args.erase(it);
      break;
    }
  }
  if (!out_flag.empty()) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  std::printf("# hotpath dispatch: %s\n",
              cpma::hotpath::ActiveDispatchName());
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
