// Read-path benchmarks (ISSUE 4): the workloads the optimistic
// versioned-gate read path is for — multi-threaded point lookups (pure
// and 95/5 read-mostly, per-thread Zipf key streams) and full scans
// running against concurrent writers. The latched baseline serializes
// every reader on the gate mutex; the optimistic path turns a stable
// gate visit into two version loads around the existing SIMD search.
//
// Reported numbers are millions of operations (or scanned elements) per
// second, best of --reps repetitions per workload (max throughput ==
// least steal on shared/noisy hosts; same methodology as
// BENCH_PR2/PR3.json).
//
//   build/bench/bench_readpath --ops=2000000 --threads=4 --json=out.json
//   build/bench/bench_readpath --what=find,mixed --alpha=1.0
//
// The source also compiles against pre-ISSUE-4 trees (the interleaved
// pre/post methodology grafts it onto the previous commit), so the
// optimistic-path observability fields are feature-gated.

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "concurrent/concurrent_pma.h"
#include "driver.h"

// Feature macro lives in concurrent_pma.h; on pre-ISSUE-7 trees (the
// relative bench gate grafts this driver onto the previous commit)
// neither the macro nor the failpoint header exists.
#if defined(CPMA_FAULT_TOLERANCE)
#include "common/failpoint.h"
#include "persist/checkpoint.h"
#endif

#if !defined(CPMA_BENCH_LATENCY)
// Grafted onto a pre-ISSUE-8 tree whose driver.h has no latency
// histograms / placement fields: stub the API so the sampled loops
// below compile into the plain ones (Record/Add* become no-ops).
namespace cpma::bench {
struct LatencyHistogram {
  void Record(uint64_t) {}
  void Merge(const LatencyHistogram&) {}
  uint64_t count() const { return 0; }
};
constexpr size_t kLatencySampleEvery = 32;
inline uint64_t NowNanos() { return 0; }
inline JsonRecord& AddLatencyFields(JsonRecord& rec, const std::string&,
                                    const LatencyHistogram&) {
  return rec;
}
inline JsonRecord& AddPlacementFields(JsonRecord& rec) { return rec; }
}  // namespace cpma::bench
#endif

namespace cpma {
namespace {

using bench::BenchJson;
using bench::Flags;
using bench::JsonRecord;

struct Best {
  double mops = 0;
  double seconds = 0;
};

template <typename Fn>
Best BestOf(uint64_t reps, uint64_t items_per_rep, Fn&& fn) {
  Best best;
  for (uint64_t r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    const double secs = timer.ElapsedSeconds();
    const double mops = static_cast<double>(items_per_rep) / secs / 1e6;
    if (mops > best.mops) {
      best.mops = mops;
      best.seconds = secs;
    }
  }
  return best;
}

struct Knobs {
  uint64_t ops;
  uint64_t preload;
  uint64_t range;
  double alpha;  // 0 => uniform
  int threads;
  uint64_t reps;
  uint64_t seed;
  std::string mode;  // sync | 1by1 | batch
  bool strict;       // --strict=0: relaxed async ordering (A/B)
};

ConcurrentConfig MakeConfig(const Knobs& k) {
  ConcurrentConfig cfg;
  // Read-mostly workloads want their sparse writes applied inline:
  // sync mode avoids paying a rebalancer-thread handoff per insert,
  // which would swamp the read path this bench isolates.
  cfg.async_mode = ConcurrentConfig::AsyncMode::kSync;
  if (k.mode == "1by1") cfg.async_mode = ConcurrentConfig::AsyncMode::kOneByOne;
  if (k.mode == "batch") cfg.async_mode = ConcurrentConfig::AsyncMode::kBatch;
#if defined(CPMA_STRICT_ASYNC_ORDER)
  // Feature-gated like the observability fields: the driver also
  // compiles against pre-ISSUE-5 trees for the grafted-baseline
  // methodology, where the knob does not exist (those trees ARE the
  // relaxed contract).
  cfg.strict_async_order = k.strict;
#endif
  return cfg;
}

KeyDistribution MakeKeys(const Knobs& k) {
  return k.alpha > 0 ? KeyDistribution::Zipf(k.range, k.alpha)
                     : KeyDistribution::Uniform(k.range);
}

void Preload(ConcurrentPMA* pma, const Knobs& k) {
  std::vector<std::thread> loaders;
  for (int t = 0; t < k.threads; ++t) {
    loaders.emplace_back([&, t] {
      Random rng(k.seed + 1000 + static_cast<uint64_t>(t));
      auto dist = KeyDistribution::Uniform(k.range);
      const uint64_t n = k.preload / static_cast<uint64_t>(k.threads);
      for (uint64_t i = 0; i < n; ++i) pma->Insert(dist.Sample(rng), i);
    });
  }
  for (auto& t : loaders) t.join();
  pma->Flush();
}

void Report(BenchJson* json, const ConcurrentPMA& pma, const Knobs& k,
            const char* workload, const Best& best, const char* metric,
            const bench::LatencyHistogram* lat = nullptr,
            const char* lat_prefix = "op") {
  std::printf("%-20s %3d thr  a=%.1f  %10.3f M%s/s  (best rep %.4fs)\n",
              workload, k.threads, k.alpha, best.mops, metric, best.seconds);
  JsonRecord& rec = json->Add()
                        .Str("workload", workload)
                        .Str("mode", k.mode)
                        .Int("threads", static_cast<uint64_t>(k.threads))
                        .Num("alpha", k.alpha)
                        .Int("range", k.range)
                        .Int("preload", k.preload)
                        .Int("ops", k.ops)
                        .Num("seconds", best.seconds);
  if (std::string(metric) == "el") {
    rec.Num("scan_meps", best.mops);
  } else {
    rec.Num("update_mops", best.mops);
  }
  // Sampled per-op tail latency (ISSUE 8; accumulated over ALL reps,
  // not just the best one — tails from a slow rep are signal, not
  // noise) and the host placement the numbers were measured on. All
  // VOLATILE for bench_diff matching.
  if (lat != nullptr) bench::AddLatencyFields(rec, lat_prefix, *lat);
  bench::AddPlacementFields(rec);
  // Observability: which publish mechanism / page size / read path this
  // run actually measured (all VOLATILE for bench_diff matching).
  rec.Bool("rewired", pma.config().pma.use_rewiring);
#if defined(CPMA_OPTIMISTIC_READ_PATH)
  rec.Bool("rewiring_active", pma.storage_rewiring_enabled())
      .Int("page_bytes", pma.storage_page_bytes())
      .Int("backing_page_bytes", pma.storage_backing_page_bytes())
      .Int("num_remaps", pma.storage_num_remaps())
      .Int("fallback_copies", pma.storage_num_fallback_copies())
      .Int("read_fallbacks", pma.num_read_fallbacks())
      .Int("optimistic_gate_reads", pma.num_optimistic_gate_reads())
      .Int("optimistic_retries",
           static_cast<uint64_t>(pma.optimistic_retries()));
#endif
#if defined(CPMA_STRICT_ASYNC_ORDER)
  // Identity knob only when off the default, so default-strict records
  // keep matching pre-ISSUE-5 baselines (bench_diff identity is
  // field-exact) while --strict=0 A/B records split into their own.
  if (!k.strict) rec.Bool("strict_async_order", false);
  rec.Int("reroutes", pma.num_reroutes());
#endif
#if defined(CPMA_EBR_STATS)
  // Epoch-reclamation observability (ISSUE 6, all VOLATILE): garbage
  // still pending, the retired-bytes high-water mark, and how often the
  // epoch advanced / the collector ran during the measured reps.
  {
    const EpochGCStats ebr = pma.ebr_stats();
    rec.Int("ebr_pending", ebr.pending_count)
        .Int("ebr_pending_bytes", ebr.pending_bytes)
        .Int("ebr_retired_bytes_hwm", ebr.retired_bytes_hwm)
        .Int("ebr_epoch_advances", ebr.epoch_advances)
        .Int("ebr_collections", ebr.collections);
  }
#endif
#if defined(CPMA_FAULT_TOLERANCE)
  // Fault-tolerance observability (ISSUE 7, all VOLATILE): whether the
  // run measured the copy-publish fallback backend, and the degradation
  // counters — a healthy fault-free bench run must report zeros here,
  // which is exactly what makes a nonzero in a perf regression report
  // diagnostic (the "regression" was a degraded run, not a slower tree).
  rec.Bool("fallback_backend_active", pma.fallback_backend_active())
      .Int("failpoint_fires", failpoint::TotalFires())
      .Int("rebalance_retries", pma.num_rebalance_retries())
      .Int("watchdog_trips", pma.num_watchdog_trips());
#endif
#if defined(CPMA_SNAPSHOTS)
  // Durability-tier observability (ISSUE 9, all VOLATILE): open COW
  // snapshots and the file-page bytes they retain (a fault-free bench
  // run takes no snapshots, so nonzero retention flags a run whose
  // readers measured COW pressure), plus the process-global checkpoint
  // counters — restore_verify_failures nonzero means the run loaded a
  // damaged checkpoint, which disqualifies it as a perf sample.
  {
    const persist::PersistCounters& pc = persist::Counters();
    rec.Int("snapshots_open", pma.snapshots_open())
        .Int("snapshots_taken", pma.num_snapshots_taken())
        .Int("cow_retained_bytes", pma.cow_pages_retained_bytes())
        .Int("checkpoint_bytes",
             pc.checkpoint_bytes.load(std::memory_order_relaxed))
        .Int("restore_verify_failures",
             pc.restore_verify_failures.load(std::memory_order_relaxed));
  }
#endif
}

/// Per-thread key streams, generated OUTSIDE the timed region: Zipf
/// rejection-inversion costs several pow/log calls per sample, which
/// would otherwise be the largest constant in every measured op and
/// dilute the structure's delta into RNG time.
std::vector<std::vector<Key>> PregenKeys(const Knobs& k, uint64_t salt) {
  std::vector<std::vector<Key>> keys(static_cast<size_t>(k.threads));
  const uint64_t n = k.ops / static_cast<uint64_t>(k.threads);
  for (int t = 0; t < k.threads; ++t) {
    Random rng(k.seed + salt + static_cast<uint64_t>(t));
    auto dist = MakeKeys(k);
    auto& v = keys[static_cast<size_t>(t)];
    v.reserve(n);
    for (uint64_t i = 0; i < n; ++i) v.push_back(dist.Sample(rng));
  }
  return keys;
}

/// Pure point lookups: every thread streams its own Zipf keys.
void BenchFind(BenchJson* json, const Knobs& k) {
  ConcurrentPMA pma(MakeConfig(k));
  Preload(&pma, k);
  const auto keys = PregenKeys(k, /*salt=*/0);
  std::atomic<uint64_t> found{0};  // defeats DCE, sanity-checked below
  bench::LatencyHistogram lat;
  std::mutex lat_mu;
  const Best best = BestOf(k.reps, k.ops, [&] {
    std::vector<std::thread> threads;
    for (int t = 0; t < k.threads; ++t) {
      threads.emplace_back([&, t] {
        PinThisThread(static_cast<unsigned>(t));
        uint64_t local = 0;
        uint64_t i = 0;
        bench::LatencyHistogram tl;
        for (Key key : keys[static_cast<size_t>(t)]) {
          Value v;
          if ((i++ & (bench::kLatencySampleEvery - 1)) == 0) {
            const uint64_t t0 = bench::NowNanos();
            local += pma.Find(key, &v) ? 1 : 0;
            tl.Record(bench::NowNanos() - t0);
          } else {
            local += pma.Find(key, &v) ? 1 : 0;
          }
        }
        found.fetch_add(local, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(lat_mu);
        lat.Merge(tl);
      });
    }
    for (auto& t : threads) t.join();
  });
  CPMA_CHECK(found.load() > 0);
  Report(json, pma, k, k.alpha > 0 ? "find_zipf" : "find_uniform", best,
         "op", &lat);
}

/// Read-mostly 95/5: 1 insert per 19 lookups, per-thread Zipf streams
/// (pregenerated, see PregenKeys).
void BenchMixed(BenchJson* json, const Knobs& k) {
  ConcurrentPMA pma(MakeConfig(k));
  Preload(&pma, k);
  const auto keys = PregenKeys(k, /*salt=*/77);
  bench::LatencyHistogram lat;
  std::mutex lat_mu;
  const Best best = BestOf(k.reps, k.ops, [&] {
    std::vector<std::thread> threads;
    for (int t = 0; t < k.threads; ++t) {
      threads.emplace_back([&, t] {
        PinThisThread(static_cast<unsigned>(t));
        uint64_t sink = 0;
        uint64_t i = 0;
        bench::LatencyHistogram tl;
        for (Key key : keys[static_cast<size_t>(t)]) {
          const bool sampled =
              (i & (bench::kLatencySampleEvery - 1)) == 0;
          const uint64_t t0 = sampled ? bench::NowNanos() : 0;
          if (++i % 20 == 0) {
            pma.Insert(key, i);
          } else {
            Value v;
            sink += pma.Find(key, &v) ? 1 : 0;
          }
          if (sampled) tl.Record(bench::NowNanos() - t0);
        }
        volatile uint64_t keep = sink;
        (void)keep;
        std::lock_guard<std::mutex> lk(lat_mu);
        lat.Merge(tl);
      });
    }
    for (auto& t : threads) t.join();
    pma.Flush();
  });
  Report(json, pma, k, "mixed_95_5", best, "op", &lat);
}

/// Full scans against concurrent writers: each scanner folds the whole
/// array --scan_passes times while one writer keeps gates mutating; the
/// optimistic path validates per segment copy instead of latching every
/// gate on the way. Both sides are reported — scan_meps for the
/// scanners and update_mops for the writer's concurrent progress: with
/// READ latches a continuous scan stream starves the writer (the latch
/// is writer-preferring per gate, but scans re-enter immediately), so
/// part of the latch-free win shows up as writer throughput, not scan
/// throughput, especially on boxes where CPU is the shared resource.
void BenchScanUnderWrites(BenchJson* json, const Knobs& k,
                          uint64_t scan_passes) {
  ConcurrentPMA pma(MakeConfig(k));
  Preload(&pma, k);
  const int scan_threads = std::max(1, k.threads - 1);
  const uint64_t elements =
      static_cast<uint64_t>(pma.Size()) * scan_passes *
      static_cast<uint64_t>(scan_threads);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writer_ops{0};
  // One background writer updates Zipf keys for the whole workload
  // (started outside the timed region; it outlives every repetition).
  std::thread writer([&] {
    Random rng(k.seed + 999);
    auto dist = MakeKeys(k);
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      pma.Insert(dist.Sample(rng), i++);
      writer_ops.store(i, std::memory_order_relaxed);
      if (i % 4096 == 0) std::this_thread::yield();
    }
  });
  Best best;
  double best_writer_mops = 0;
  bench::LatencyHistogram lat;  // one sample per full scan pass
  std::mutex lat_mu;
  for (uint64_t r = 0; r < k.reps; ++r) {
    const uint64_t w0 = writer_ops.load(std::memory_order_relaxed);
    Timer timer;
    std::vector<std::thread> scanners;
    for (int t = 0; t < scan_threads; ++t) {
      scanners.emplace_back([&, t] {
        PinThisThread(static_cast<unsigned>(t));
        bench::LatencyHistogram tl;
        for (uint64_t p = 0; p < scan_passes; ++p) {
          const uint64_t t0 = bench::NowNanos();
          volatile uint64_t sink = pma.SumAll();
          tl.Record(bench::NowNanos() - t0);
          (void)sink;
        }
        std::lock_guard<std::mutex> lk(lat_mu);
        lat.Merge(tl);
      });
    }
    for (auto& t : scanners) t.join();
    const double secs = timer.ElapsedSeconds();
    const double meps = static_cast<double>(elements) / secs / 1e6;
    if (meps > best.mops) {
      best.mops = meps;
      best.seconds = secs;
      best_writer_mops = static_cast<double>(
                             writer_ops.load(std::memory_order_relaxed) - w0) /
                         secs / 1e6;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  pma.Flush();
  std::printf("%-20s %3d thr  writer %8.3f Mop/s concurrent\n",
              "  (scan writer)", 1, best_writer_mops);
  Report(json, pma, k, "scan_under_writes", best, "el", &lat, "scan");
  // Same identity knobs, separate record: the writer's concurrent
  // progress during the best scan repetition. Deliberately emitted as
  // `writer_mops` — a field bench_diff does NOT gate on: one unpinned
  // writer time-sharing with the scanners is the most
  // scheduler-dependent number in the suite, so it documents the
  // fairness trade without flapping the regression gate.
  json->Add()
      .Str("workload", "scan_under_writes_writer")
      .Str("mode", k.mode)
      .Int("threads", static_cast<uint64_t>(k.threads))
      .Num("alpha", k.alpha)
      .Int("range", k.range)
      .Int("preload", k.preload)
      .Int("ops", k.ops)
      .Num("writer_mops", best_writer_mops);
}

}  // namespace
}  // namespace cpma

int main(int argc, char** argv) {
  using namespace cpma;
  bench::Flags flags(argc, argv);
  bench::BenchJson json(flags, "readpath");

  Knobs k;
  k.ops = flags.GetInt("ops", 2000000);
  k.preload = flags.GetInt("preload", 1000000);
  k.range = flags.GetInt("range", 1ull << 21);
  k.alpha = std::stod(flags.Get("alpha", "1.0"));
  k.threads = static_cast<int>(flags.GetInt("threads", 4));
  k.reps = flags.GetInt("reps", 3);
  k.seed = flags.GetInt("seed", 42);
  k.mode = flags.Get("mode", "sync");
  k.strict = flags.GetInt("strict", 1) != 0;
  const uint64_t scan_passes = flags.GetInt("scan_passes", 4);
  const std::string what = flags.Get("what", "find,find_uniform,mixed,scan");

  std::printf("# bench_readpath ops=%llu preload=%llu range=%llu "
              "threads=%d alpha=%.2f reps=%llu dispatch=%s\n",
              static_cast<unsigned long long>(k.ops),
              static_cast<unsigned long long>(k.preload),
              static_cast<unsigned long long>(k.range), k.threads, k.alpha,
              static_cast<unsigned long long>(k.reps),
              hotpath::ActiveDispatchName());

  // Exact comma-separated tokens: substring matching would make
  // --what=find_uniform also run the zipf find workload.
  auto want = [&](const std::string& name) {
    size_t pos = 0;
    while (pos <= what.size()) {
      const size_t comma = what.find(',', pos);
      const size_t end = comma == std::string::npos ? what.size() : comma;
      if (what.compare(pos, end - pos, name) == 0) return true;
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    return false;
  };
  if (want("find") && k.alpha > 0) BenchFind(&json, k);
  if (want("find_uniform")) {
    Knobs uk = k;
    uk.alpha = 0;
    BenchFind(&json, uk);
  }
  if (want("mixed")) BenchMixed(&json, k);
  if (want("scan")) BenchScanUnderWrites(&json, k, scan_passes);

  return json.Write() ? 0 : 1;
}
