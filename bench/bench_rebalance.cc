// Rebalance-engine benchmarks (ISSUE 3): isolates the cost of the spread
// pipeline (plan + copy + publish), the merged spread (batch folded in
// during the rebalance), and the resize stream — the write-amplification
// half of the paper that PR 2's search work did not touch — plus two
// end-to-end rebalance-heavy workloads (dense sequential inserts and
// async-batch inserts) and a scan guard.
//
// Reported numbers are millions of elements moved (or operations
// applied) per second, best of --reps repetitions per workload: on
// shared/noisy hosts the max-throughput repetition is the one with the
// least steal, mirroring the min-CPU-time methodology of BENCH_PR2.json.
//
//   build/bench/bench_rebalance --ops=2000000 --reps=5 --json=out.json
//   build/bench/bench_rebalance --what=spread,merged   # subset

#include <cstdio>
#include <string>
#include <vector>

#include "concurrent/concurrent_pma.h"
#include "driver.h"

// Feature macro lives in concurrent_pma.h; on pre-ISSUE-7 trees (the
// relative bench gate grafts this driver onto the previous commit)
// neither the macro nor the failpoint header exists.
#if defined(CPMA_FAULT_TOLERANCE)
#include "common/failpoint.h"
#endif
#include "pma/sequential_pma.h"
#include "pma/spread.h"
#include "pma/storage.h"

namespace cpma {
namespace {

using bench::BenchJson;
using bench::Flags;

struct Best {
  double mops = 0;      // millions of elements (or ops) per second
  double seconds = 0;   // duration of the best repetition
#if defined(CPMA_EBR_STATS)
  EpochGCStats ebr;     // reclamation counters of the best rep's PMA
#endif
#if defined(CPMA_FAULT_TOLERANCE)
  // Degradation counters of the best rep's PMA (the PMA is per-rep, so
  // they are captured alongside the throughput they would explain).
  bool fallback_backend_active = false;
  uint64_t rebalance_retries = 0;
  uint64_t watchdog_trips = 0;
#endif
};

template <typename Fn>
Best BestOf(uint64_t reps, uint64_t items_per_rep, Fn&& fn) {
  Best best;
  for (uint64_t r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    const double secs = timer.ElapsedSeconds();
    const double mops = static_cast<double>(items_per_rep) / secs / 1e6;
    if (mops > best.mops) {
      best.mops = mops;
      best.seconds = secs;
    }
  }
  return best;
}

bench::JsonRecord& Report(BenchJson* json, const char* workload,
                          const Best& best, const char* metric,
                          uint64_t items) {
  std::printf("%-24s %10.3f M%s/s  (best rep %.4fs, %llu items)\n", workload,
              best.mops, metric, best.seconds,
              static_cast<unsigned long long>(items));
  return json->Add()
      .Str("workload", workload)
      .Int("items_per_rep", items)
      .Num("update_mops", best.mops)
      .Num("seconds", best.seconds);
}

/// Storage filled to `card` elements per segment with increasing keys.
void FillEven(Storage* st, uint32_t card) {
  Key k = 1;
  for (size_t s = 0; s < st->num_segments(); ++s) {
    for (uint32_t i = 0; i < card; ++i) st->segment(s)[i] = {k++, 1};
    st->set_card(s, card);
  }
  st->RebuildRoutes(0, st->num_segments());
}

/// Skewed fill: alternating nearly-full / nearly-empty segments — the
/// shape a hot append gate leaves behind, and the worst case for
/// gate-count partitioning.
void FillSkewed(Storage* st) {
  Key k = 1;
  const uint32_t B = static_cast<uint32_t>(st->segment_capacity());
  for (size_t s = 0; s < st->num_segments(); ++s) {
    const uint32_t c = (s % 2 == 0) ? B - 4 : 4;
    for (uint32_t i = 0; i < c; ++i) st->segment(s)[i] = {k++, 1};
    st->set_card(s, c);
  }
  st->RebuildRoutes(0, st->num_segments());
}

size_t LiveCount(const Storage& st) {
  size_t m = 0;
  for (size_t s = 0; s < st.num_segments(); ++s) m += st.card(s);
  return m;
}

void BenchSpread(BenchJson* json, uint64_t segments, uint64_t reps,
                 bool skewed) {
  Storage st(segments, 128, /*use_rewiring=*/true);
  if (skewed) {
    FillSkewed(&st);
  } else {
    FillEven(&st, 64);
  }
  const size_t m = LiveCount(st);
  // Plan + copy only: publishing would install the even layout and turn
  // every repetition after the first into a uniform spread, so the
  // skewed shape would never be re-measured. The publish (SwapWindow)
  // is covered by BM_SpreadRewiredVsCopy in bench_micro.
  const Best best = BestOf(reps, m, [&] {
    WindowPlan plan = PlanSpread(st, 0, st.num_segments(), false, SIZE_MAX);
    CopyPartitionToBuffer(&st, plan, 0, st.num_segments());
  });
  Report(json, skewed ? "spread_skewed" : "spread_uniform", best, "el", m);
}

void BenchMergedSpread(BenchJson* json, uint64_t segments, uint64_t batch,
                       uint64_t reps) {
  Storage st(segments, 128, /*use_rewiring=*/true);
  FillEven(&st, 64);  // keys 1..m
  const size_t m = LiveCount(st);
  // Batch: 50% new inserts (odd gaps above m), 25% upserts, 25% deletes.
  Random rng(17);
  std::map<Key, BatchEntry> batch_map;
  while (batch_map.size() < batch) {
    const uint64_t pick = rng.NextBounded(4);
    if (pick < 2) {
      const Key k = m + 1 + rng.NextBounded(m);
      batch_map[k] = {k, 5, false};
    } else {
      const Key k = 1 + rng.NextBounded(m);
      batch_map[k] = {k, 6, pick == 3};
    }
  }
  std::vector<BatchEntry> ops;
  ops.reserve(batch_map.size());
  for (auto& [k, e] : batch_map) ops.push_back(e);

  // Each repetition counts + plans + merges the same batch into the
  // buffer; the publish is skipped so the input stays identical across
  // reps (FinishSpread would apply the deletions for good).
  const Best best = BestOf(reps, m + batch, [&] {
    size_t ins = 0, del = 0;
    const size_t total =
        CountMerged(st, 0, st.num_segments(), ops, &ins, &del);
    WindowPlan plan = PlanMergedSpread(st, 0, st.num_segments(), total);
    MergedCopyToBuffer(&st, plan, ops);
  });
  Report(json, "merged_spread", best, "el", m + batch);
}

void BenchResizeStream(BenchJson* json, uint64_t segments, uint64_t reps) {
  Storage st(segments, 128, /*use_rewiring=*/true);
  FillEven(&st, 77);
  const size_t m = LiveCount(st);
  const std::vector<BatchEntry> no_ops;
  const Best best = BestOf(reps, m, [&] {
    Storage fresh(segments * 2, 128, /*use_rewiring=*/true);
    MergedStreamInto(st, no_ops, m, &fresh);
  });
  Report(json, "resize_stream", best, "el", m);
}

void BenchDenseSequentialInsert(BenchJson* json, uint64_t ops,
                                uint64_t reps) {
  const Best best = BestOf(reps, ops, [&] {
    SequentialPMA pma;
    for (Key k = 0; k < ops; ++k) pma.Insert(k, 1);
  });
  Report(json, "dense_seq_insert", best, "op", ops);
}

void BenchAsyncBatchInsert(BenchJson* json, uint64_t ops, uint64_t threads,
                           uint64_t reps, bool strict) {
  Best best;
  for (uint64_t r = 0; r < reps; ++r) {
    ConcurrentConfig cfg;
    cfg.async_mode = ConcurrentConfig::AsyncMode::kBatch;
    cfg.t_delay_ms = 5;
#if defined(CPMA_STRICT_ASYNC_ORDER)
    // Feature-gated: this driver is grafted onto pre-ISSUE-5 trees by
    // the relative bench gate, where the knob does not exist (those
    // trees ARE the relaxed contract).
    cfg.strict_async_order = strict;
#endif
    ConcurrentPMA pma(cfg);
    bench::WorkloadConfig wl;
    wl.num_ops = ops;
    wl.update_threads = static_cast<int>(threads);
    wl.dist = bench::Dist::kUniform;
    const bench::WorkloadResult res = bench::RunWorkload(&pma, wl);
    if (res.update_mops > best.mops) {
      best.mops = res.update_mops;
      best.seconds = res.seconds;
#if defined(CPMA_EBR_STATS)
      best.ebr = pma.ebr_stats();
#endif
#if defined(CPMA_FAULT_TOLERANCE)
      best.fallback_backend_active = pma.fallback_backend_active();
      best.rebalance_retries = pma.num_rebalance_retries();
      best.watchdog_trips = pma.num_watchdog_trips();
#endif
    }
  }
  bench::JsonRecord& rec =
      Report(json, "async_batch_insert", best, "op", ops);
  // Identity knob only when off the default: default-strict records keep
  // matching pre-ISSUE-5 baselines (bench_diff identity is field-exact),
  // while --strict=0 A/B records get their own identity.
  if (!strict) rec.Bool("strict_async_order", false);
#if defined(CPMA_EBR_STATS)
  // Epoch-reclamation observability for the best rep (ISSUE 6, all
  // VOLATILE): resize-path snapshot retirement is the big-ticket
  // byte-accounted garbage this workload produces.
  rec.Int("ebr_pending", best.ebr.pending_count)
      .Int("ebr_pending_bytes", best.ebr.pending_bytes)
      .Int("ebr_retired_bytes_hwm", best.ebr.retired_bytes_hwm)
      .Int("ebr_epoch_advances", best.ebr.epoch_advances)
      .Int("ebr_collections", best.ebr.collections);
#endif
#if defined(CPMA_FAULT_TOLERANCE)
  // Fault-tolerance observability (ISSUE 7, all VOLATILE): a fault-free
  // bench run reports zeros; a nonzero flags a degraded run so a perf
  // delta can be attributed before anyone chases a phantom regression.
  rec.Bool("fallback_backend_active", best.fallback_backend_active)
      .Int("failpoint_fires", failpoint::TotalFires())
      .Int("rebalance_retries", best.rebalance_retries)
      .Int("watchdog_trips", best.watchdog_trips);
#endif
}

void BenchScanGuard(BenchJson* json, uint64_t reps) {
  SequentialPMA pma;
  Random rng(3);
  for (int i = 0; i < 1 << 20; ++i) pma.Insert(rng.NextBounded(1 << 27), i);
  const size_t n = pma.Size();
  volatile uint64_t sink = 0;
  const Best best = BestOf(reps * 4, n, [&] { sink = pma.SumAll(); });
  (void)sink;
  std::printf("%-24s %10.3f Mel/s  (best rep %.4fs)\n", "scan_guard",
              best.mops, best.seconds);
  json->Add()
      .Str("workload", "scan_guard")
      .Int("items_per_rep", n)
      .Num("scan_meps", best.mops)
      .Num("seconds", best.seconds);
}

}  // namespace
}  // namespace cpma

int main(int argc, char** argv) {
  using namespace cpma;
  bench::Flags flags(argc, argv);
  const uint64_t ops = flags.GetInt("ops", 1 << 21);
  const uint64_t segments = flags.GetInt("segments", 2048);
  const uint64_t batch = flags.GetInt("batch", 4096);
  const uint64_t reps = flags.GetInt("reps", 5);
  const uint64_t threads = flags.GetInt("threads", 4);
  // --strict=0: relaxed async ordering (pre-ISSUE-5 contract) for the
  // strict-vs-relaxed A/B on the async insert path (BENCH_PR5.json).
  const bool strict = flags.GetInt("strict", 1) != 0;
  const std::string what = flags.Get("what", "all");
  auto want = [&](const char* w) {
    return what == "all" || what.find(w) != std::string::npos;
  };
  bench::BenchJson json(flags, "rebalance");
  std::printf("# bench_rebalance segments=%llu batch=%llu ops=%llu "
              "reps=%llu dispatch=%s\n",
              static_cast<unsigned long long>(segments),
              static_cast<unsigned long long>(batch),
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(reps),
              hotpath::ActiveDispatchName());
  if (want("spread")) {
    BenchSpread(&json, segments, reps, /*skewed=*/false);
    BenchSpread(&json, segments, reps, /*skewed=*/true);
  }
  if (want("merged")) BenchMergedSpread(&json, segments, batch, reps);
  if (want("resize")) BenchResizeStream(&json, segments, reps);
  if (want("dense")) BenchDenseSequentialInsert(&json, ops, reps);
  if (want("batch_insert") || what == "all") {
    BenchAsyncBatchInsert(&json, ops, threads, reps, strict);
  }
  if (want("scan")) BenchScanGuard(&json, reps);
  return json.Write() ? 0 : 1;
}
