// Reproduces Figure 3 of the paper: average throughput to insert (and,
// for plots d-f, to mix insertions/deletions) and to concurrently scan,
// for MassTree / BwTree / ART / PMA under the uniform and Zipfian
// distributions.
//
//   plot  threads (updaters+scanners)   workload
//   a     16 + 0                        insert-only
//   b     12 + 4                        insert-only
//   c      8 + 8                        insert-only
//   d     16 + 0                        mixed insert/delete (preloaded)
//   e     12 + 4                        mixed
//   f      8 + 8                        mixed
//
// Usage: bench_fig3 [--plot=a|b|c|d|e|f|all] [--ops=N] [--range=R]
// Paper scale is ops=2^30 over range 2^27; the default is scaled down to
// finish on a laptop — shapes, not absolute numbers, are the target.

#include <cinttypes>
#include <map>
#include <memory>

#include "baselines/art/art.h"
#include "baselines/btree/btree.h"
#include "baselines/bwtree/bwtree.h"
#include "baselines/masstree/masstree.h"
#include "concurrent/concurrent_pma.h"
#include "driver.h"

namespace cpma::bench {
namespace {

std::unique_ptr<OrderedMap> MakeStructure(const std::string& which) {
  if (which == "masstree") return std::make_unique<Masstree>();
  if (which == "bwtree") return std::make_unique<BwTree>();
  if (which == "art") return std::make_unique<ArtBTree>(4096);
  // Paper configuration: B=128, 8 segments/gate, 8 workers, async batch
  // processing with t_delay = 100 ms.
  ConcurrentConfig cfg;
  cfg.pma.segment_capacity = 128;
  cfg.segments_per_gate = 8;
  cfg.rebalancer_workers = 8;
  cfg.async_mode = ConcurrentConfig::AsyncMode::kBatch;
  cfg.t_delay_ms = 100;
  return std::make_unique<ConcurrentPMA>(cfg);
}

void RunPlot(char plot, size_t ops, uint64_t range, BenchJson* json) {
  int upd = 16, scan = 0;
  bool mixed = false;
  switch (plot) {
    case 'a': upd = 16; scan = 0; mixed = false; break;
    case 'b': upd = 12; scan = 4; mixed = false; break;
    case 'c': upd = 8; scan = 8; mixed = false; break;
    case 'd': upd = 16; scan = 0; mixed = true; break;
    case 'e': upd = 12; scan = 4; mixed = true; break;
    case 'f': upd = 8; scan = 8; mixed = true; break;
    default: std::fprintf(stderr, "unknown plot %c\n", plot); return;
  }
  std::printf(
      "\n=== Figure 3%c: %d updater(s), %d scanner(s), %s ===\n", plot, upd,
      scan, mixed ? "mixed insert/delete (preloaded)" : "insert-only");
  std::printf("%-10s %-10s %14s %14s %10s\n", "structure", "dist",
              "updates[M/s]", "scans[Melt/s]", "time[s]");
  for (const char* which : {"masstree", "bwtree", "art", "pma"}) {
    for (Dist dist : {Dist::kUniform, Dist::kZipf1, Dist::kZipf15,
                      Dist::kZipf2}) {
      auto map = MakeStructure(which);
      WorkloadConfig cfg;
      cfg.num_ops = ops;
      cfg.key_range = range;
      cfg.dist = dist;
      cfg.update_threads = upd;
      cfg.scan_threads = scan;
      cfg.mixed = mixed;
      cfg.preload = mixed ? ops : 0;
      WorkloadResult r = RunWorkload(map.get(), cfg);
      std::printf("%-10s %-10s %14.3f %14.3f %10.2f\n", which,
                  DistName(dist), r.update_mops, r.scan_meps, r.seconds);
      std::fflush(stdout);
      JsonRecord& rec =
          json->Add()
              .Str("plot", std::string(1, plot))
              .Str("structure", which)
              .Str("dist", DistName(dist))
              .Int("update_threads", static_cast<uint64_t>(upd))
              .Int("scan_threads", static_cast<uint64_t>(scan))
              .Bool("mixed", mixed)
              .Int("ops", ops)
              .Int("range", range)
              .Num("update_mops", r.update_mops)
              .Num("scan_meps", r.scan_meps)
              .Num("seconds", r.seconds);
      AddLatencyFields(rec, "update", r.update_lat);
      AddLatencyFields(rec, "scan", r.scan_lat);
      AddPlacementFields(rec);
    }
  }
}

}  // namespace
}  // namespace cpma::bench

int main(int argc, char** argv) {
  using namespace cpma::bench;
  Flags flags(argc, argv);
  const size_t ops = flags.GetInt("ops", 1 << 20);
  const uint64_t range = flags.GetInt("range", 1ull << 27);
  const std::string plot = flags.Get("plot", "all");
  std::printf("# bench_fig3: ops=%zu range=%" PRIu64
              " (paper: ops=2^30, range=2^27, 16 threads)\n",
              ops, range);
  BenchJson json(flags, "fig3");
  if (plot == "all") {
    for (char p : {'a', 'b', 'c', 'd', 'e', 'f'}) {
      RunPlot(p, ops, range, &json);
    }
  } else {
    RunPlot(plot[0], ops, range, &json);
  }
  return json.Write() ? 0 : 1;
}
