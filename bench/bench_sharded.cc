// Sharded front-end benchmarks (ISSUE 8): sweep shards x threads over
// the three workload families the sharded design targets —
//
//   insert_heavy   pure inserts through the front door (coalescing
//                  staging -> UpdateBatch runs when --coalesce > 0);
//   read_mostly    95/5 find/insert, per-thread zipf streams;
//   scan_under_write  ordered full-range Scan() while writer threads
//                  keep inserting — range mode concatenates shard
//                  scans, hash mode exercises the k-way cursor merge
//                  (ascending order is CPMA_CHECKed on every pass).
//
// `--frontend=bare,sharded` also runs the identical workload against a
// bare ConcurrentPMA: the bare vs sharded(shards=1) pair measures the
// router + front-door overhead, which the PR's acceptance bar caps at
// 5% (BENCH_PR8.json).
//
//   build/bench/bench_sharded --shards=1,2,4 --threads=1,2,4
//       --coalesce=32 --json=BENCH_PR8.json
//   build/bench/bench_sharded --partition=hash --what=scan_under_write
//
// Every record carries the host placement fields (host_cpus/host_cores/
// smt/pin_order): a scaling curve is only interpretable next to the
// core count it ran on.

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "concurrent/concurrent_pma.h"
#include "driver.h"
#include "sharded/sharded_pma.h"

namespace cpma {
namespace {

using bench::BenchJson;
using bench::Flags;
using bench::JsonRecord;
using bench::LatencyHistogram;

struct Knobs {
  uint64_t ops;
  uint64_t preload;
  uint64_t range;
  double alpha;
  uint64_t reps;
  uint64_t seed;
  std::string mode;       // sync | 1by1 | batch
  std::string partition;  // range | hash
  uint64_t coalesce;
  uint64_t age_ms;
  bool pin;
};

ConcurrentConfig ShardCfg(const Knobs& k) {
  ConcurrentConfig cfg;
  cfg.async_mode = ConcurrentConfig::AsyncMode::kSync;
  if (k.mode == "1by1") cfg.async_mode = ConcurrentConfig::AsyncMode::kOneByOne;
  if (k.mode == "batch") cfg.async_mode = ConcurrentConfig::AsyncMode::kBatch;
  return cfg;
}

std::unique_ptr<OrderedMap> MakeMap(const Knobs& k, bool sharded,
                                    size_t shards) {
  if (!sharded) return std::make_unique<ConcurrentPMA>(ShardCfg(k));
  ShardedConfig cfg;
  cfg.shard = ShardCfg(k);
  cfg.num_shards = shards;
  cfg.partition = k.partition == "hash" ? ShardedConfig::Partition::kHash
                                        : ShardedConfig::Partition::kRange;
  cfg.coalesce_ops = k.coalesce;
  cfg.coalesce_age_ms = static_cast<int64_t>(k.age_ms);
  cfg.pin_workers = k.pin;
  return std::make_unique<ShardedPMA>(cfg);
}

std::vector<std::vector<Key>> PregenKeys(const Knobs& k, int threads,
                                         uint64_t salt) {
  std::vector<std::vector<Key>> keys(static_cast<size_t>(threads));
  const uint64_t n = k.ops / static_cast<uint64_t>(threads);
  for (int t = 0; t < threads; ++t) {
    Random rng(k.seed + salt + static_cast<uint64_t>(t));
    auto dist = k.alpha > 0 ? KeyDistribution::Zipf(k.range, k.alpha)
                            : KeyDistribution::Uniform(k.range);
    auto& v = keys[static_cast<size_t>(t)];
    v.reserve(n);
    for (uint64_t i = 0; i < n; ++i) v.push_back(dist.Sample(rng));
  }
  return keys;
}

void Preload(OrderedMap* map, const Knobs& k, int threads) {
  std::vector<std::thread> loaders;
  for (int t = 0; t < threads; ++t) {
    loaders.emplace_back([&, t] {
      Random rng(k.seed + 5000 + static_cast<uint64_t>(t));
      auto dist = KeyDistribution::Uniform(k.range);
      const uint64_t n = k.preload / static_cast<uint64_t>(threads);
      for (uint64_t i = 0; i < n; ++i) map->Insert(dist.Sample(rng), i);
    });
  }
  for (auto& t : loaders) t.join();
  map->Flush();
}

JsonRecord& Report(BenchJson* json, OrderedMap* map, const Knobs& k,
                   const char* workload, bool sharded, size_t shards,
                   int threads, double metric_value,
                   const char* metric_name, double seconds,
                   const LatencyHistogram& lat, const char* lat_prefix) {
  std::printf("%-17s %-7s s=%zu %2d thr  %10.3f M/s  (best rep %.4fs)\n",
              workload, sharded ? "sharded" : "bare", shards, threads,
              metric_value, seconds);
  JsonRecord& rec =
      json->Add()
          .Str("workload", workload)
          .Str("frontend", sharded ? "sharded" : "bare")
          .Str("partition", sharded ? k.partition : "none")
          .Int("shards", sharded ? shards : 1)
          .Int("threads", static_cast<uint64_t>(threads))
          .Str("mode", k.mode)
          .Int("coalesce", sharded ? k.coalesce : 0)
          .Int("age_ms", sharded ? k.age_ms : 0)
          .Num("alpha", k.alpha)
          .Int("range", k.range)
          .Int("preload", k.preload)
          .Int("ops", k.ops)
          .Num("seconds", seconds)
          .Num(metric_name, metric_value);
  bench::AddLatencyFields(rec, lat_prefix, lat);
  bench::AddPlacementFields(rec);
  if (sharded) {
    // Aggregated fleet observability (all VOLATILE): background work,
    // read-path health, degradation, and the front door's own flow.
    const auto st = static_cast<ShardedPMA*>(map)->GetStats();
    rec.Int("agg_global_rebalances", st.global_rebalances)
        .Int("agg_resizes", st.resizes)
        .Int("agg_read_fallbacks", st.read_fallbacks)
        .Int("agg_reroutes", st.reroutes)
        .Int("agg_degraded_shards", st.degraded_shards)
        .Int("ebr_pending", st.ebr.pending_count)
        .Int("ebr_retired_bytes_hwm", st.ebr.retired_bytes_hwm)
        .Int("coalesced_flushes", st.coalesced_flushes)
        .Int("coalesced_ops", st.coalesced_ops)
        .Int("age_flushes", st.age_flushes)
        .Int("direct_ops", st.direct_ops);
  }
  return rec;
}

/// Pure inserts through the front door. Returns best-rep Mops.
void BenchInsertHeavy(BenchJson* json, const Knobs& k, bool sharded,
                      size_t shards, int threads) {
  auto map = MakeMap(k, sharded, shards);
  Preload(map.get(), k, threads);
  const auto keys = PregenKeys(k, threads, /*salt=*/0);
  LatencyHistogram lat;
  std::mutex lat_mu;
  double best_mops = 0, best_secs = 0;
  for (uint64_t r = 0; r < k.reps; ++r) {
    Timer timer;
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        PinThisThread(static_cast<unsigned>(t));
        LatencyHistogram tl;
        uint64_t i = 0;
        for (Key key : keys[static_cast<size_t>(t)]) {
          if ((i & (bench::kLatencySampleEvery - 1)) == 0) {
            const uint64_t t0 = bench::NowNanos();
            map->Insert(key, i);
            tl.Record(bench::NowNanos() - t0);
          } else {
            map->Insert(key, i);
          }
          ++i;
        }
        std::lock_guard<std::mutex> lk(lat_mu);
        lat.Merge(tl);
      });
    }
    for (auto& t : ts) t.join();
    map->Flush();
    const double secs = timer.ElapsedSeconds();
    const double mops = static_cast<double>(k.ops) / secs / 1e6;
    if (mops > best_mops) {
      best_mops = mops;
      best_secs = secs;
    }
  }
  Report(json, map.get(), k, "insert_heavy", sharded, shards, threads,
         best_mops, "update_mops", best_secs, lat, "update");
}

/// 95/5 find/insert, per-thread zipf streams.
void BenchReadMostly(BenchJson* json, const Knobs& k, bool sharded,
                     size_t shards, int threads) {
  auto map = MakeMap(k, sharded, shards);
  Preload(map.get(), k, threads);
  const auto keys = PregenKeys(k, threads, /*salt=*/77);
  LatencyHistogram lat;
  std::mutex lat_mu;
  std::atomic<uint64_t> found{0};
  double best_mops = 0, best_secs = 0;
  for (uint64_t r = 0; r < k.reps; ++r) {
    Timer timer;
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        PinThisThread(static_cast<unsigned>(t));
        LatencyHistogram tl;
        uint64_t sink = 0, i = 0;
        for (Key key : keys[static_cast<size_t>(t)]) {
          const bool sampled = (i & (bench::kLatencySampleEvery - 1)) == 0;
          const uint64_t t0 = sampled ? bench::NowNanos() : 0;
          if (++i % 20 == 0) {
            map->Insert(key, i);
          } else {
            Value v;
            sink += map->Find(key, &v) ? 1 : 0;
          }
          if (sampled) tl.Record(bench::NowNanos() - t0);
        }
        found.fetch_add(sink, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(lat_mu);
        lat.Merge(tl);
      });
    }
    for (auto& t : ts) t.join();
    map->Flush();
    const double secs = timer.ElapsedSeconds();
    const double mops = static_cast<double>(k.ops) / secs / 1e6;
    if (mops > best_mops) {
      best_mops = mops;
      best_secs = secs;
    }
  }
  CPMA_CHECK(found.load() > 0);
  Report(json, map.get(), k, "read_mostly", sharded, shards, threads,
         best_mops, "update_mops", best_secs, lat, "op");
}

/// Ordered full-range Scan() passes (ascending order CPMA_CHECKed)
/// while `threads` writers keep inserting. Range mode: shard
/// concatenation; hash mode: k-way cursor merge.
void BenchScanUnderWrite(BenchJson* json, const Knobs& k, bool sharded,
                         size_t shards, int threads,
                         uint64_t scan_passes) {
  auto map = MakeMap(k, sharded, shards);
  Preload(map.get(), k, threads);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < threads; ++t) {
    writers.emplace_back([&, t] {
      PinThisThread(static_cast<unsigned>(1 + t));
      Random rng(k.seed + 999 + static_cast<uint64_t>(t));
      auto dist = KeyDistribution::Uniform(k.range);
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        map->Insert(dist.Sample(rng), i++);
        if (i % 4096 == 0) std::this_thread::yield();
      }
    });
  }
  LatencyHistogram lat;
  double best_meps = 0, best_secs = 0;
  for (uint64_t r = 0; r < k.reps; ++r) {
    Timer timer;
    uint64_t elements = 0;
    for (uint64_t p = 0; p < scan_passes; ++p) {
      Key prev = 0;
      bool first = true;
      uint64_t n = 0;
      const uint64_t t0 = bench::NowNanos();
      map->Scan(kKeyMin, kKeyMax, [&](Key key, Value) {
        CPMA_CHECK_MSG(first || key > prev,
                       "sharded scan emitted keys out of order");
        first = false;
        prev = key;
        ++n;
        return true;
      });
      lat.Record(bench::NowNanos() - t0);
      elements += n;
    }
    const double secs = timer.ElapsedSeconds();
    const double meps = static_cast<double>(elements) / secs / 1e6;
    if (meps > best_meps) {
      best_meps = meps;
      best_secs = secs;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  map->Flush();
  Report(json, map.get(), k, "scan_under_write", sharded, shards, threads,
         best_meps, "scan_meps", best_secs, lat, "scan");
}

std::vector<uint64_t> ParseList(const std::string& s) {
  std::vector<uint64_t> out;
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t comma = s.find(',', pos);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    out.push_back(std::stoull(s.substr(pos, end - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool WantToken(const std::string& list, const std::string& name) {
  size_t pos = 0;
  while (pos <= list.size()) {
    const size_t comma = list.find(',', pos);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (list.compare(pos, end - pos, name) == 0) return true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return false;
}

}  // namespace
}  // namespace cpma

int main(int argc, char** argv) {
  using namespace cpma;
  bench::Flags flags(argc, argv);
  bench::BenchJson json(flags, "sharded");

  Knobs k;
  k.ops = flags.GetInt("ops", 1000000);
  k.preload = flags.GetInt("preload", 500000);
  k.range = flags.GetInt("range", 1ull << 21);
  k.alpha = std::stod(flags.Get("alpha", "0"));
  k.reps = flags.GetInt("reps", 3);
  k.seed = flags.GetInt("seed", 42);
  k.mode = flags.Get("mode", "batch");
  k.partition = flags.Get("partition", "range");
  k.coalesce = flags.GetInt("coalesce", 32);
  k.age_ms = flags.GetInt("age_ms", 2);
  k.pin = flags.GetInt("pin", 1) != 0;
  const uint64_t scan_passes = flags.GetInt("scan_passes", 4);
  const std::string what =
      flags.Get("what", "insert_heavy,read_mostly,scan_under_write");
  const std::string frontends = flags.Get("frontend", "bare,sharded");
  const auto shard_list = ParseList(flags.Get("shards", "1,2,4"));
  const auto thread_list = ParseList(flags.Get("threads", "1,2,4"));

  std::printf("# bench_sharded ops=%llu preload=%llu partition=%s "
              "coalesce=%llu mode=%s %s\n",
              static_cast<unsigned long long>(k.ops),
              static_cast<unsigned long long>(k.preload),
              k.partition.c_str(),
              static_cast<unsigned long long>(k.coalesce), k.mode.c_str(),
              TopologySummary().c_str());

  auto run_cell = [&](bool sharded, size_t shards, int threads) {
    if (WantToken(what, "insert_heavy")) {
      BenchInsertHeavy(&json, k, sharded, shards, threads);
    }
    if (WantToken(what, "read_mostly")) {
      BenchReadMostly(&json, k, sharded, shards, threads);
    }
    if (WantToken(what, "scan_under_write")) {
      BenchScanUnderWrite(&json, k, sharded, shards, threads, scan_passes);
    }
  };

  // Bare baseline: one cell per thread count (the shards axis does not
  // exist) — the parity reference for sharded s=1.
  if (WantToken(frontends, "bare")) {
    for (const uint64_t t : thread_list) {
      run_cell(/*sharded=*/false, /*shards=*/1, static_cast<int>(t));
    }
  }
  if (WantToken(frontends, "sharded")) {
    for (const uint64_t s : shard_list) {
      for (const uint64_t t : thread_list) {
        run_cell(/*sharded=*/true, static_cast<size_t>(s),
                 static_cast<int>(t));
      }
    }
  }

  return json.Write() ? 0 : 1;
}
