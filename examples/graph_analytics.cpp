// Dynamic graph analytics (paper §6 and the ride-sharing motivation of
// §1): drivers/riders form a road-connection graph that changes
// continuously while shortest-hop queries (BFS) and influence scores
// (PageRank) run concurrently on the live CRS-on-PMA representation.
//
// Build & run:  ./build/examples/graph_analytics

#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"
#include "graph/algorithms.h"
#include "graph/dynamic_graph.h"

int main() {
  using namespace cpma;
  constexpr VertexId kZones = 20000;  // city zones
  DynamicGraph city;

  // Static road backbone: a grid-ish ring so everything is reachable.
  for (VertexId v = 0; v < kZones; ++v) {
    city.AddEdge(v, (v + 1) % kZones);
    city.AddEdge((v + 1) % kZones, v);
  }
  city.Flush();
  std::printf("backbone: %zu edges across %u zones\n", city.NumEdges(),
              city.NumVertices());

  // Live traffic: ride connections appear and disappear with power-law
  // popularity (downtown zones are hot), while analytics run.
  std::atomic<bool> stop{false};
  std::thread analyst([&] {
    int rounds = 0;
    while (!stop.load()) {
      auto dist = Bfs(city, 0);
      size_t reachable = 0;
      for (uint32_t d : dist) reachable += d != kUnreachable;
      auto pr = PageRank(city, 2);
      VertexId top = 0;
      for (VertexId v = 1; v < pr.size(); ++v) {
        if (pr[v] > pr[top]) top = v;
      }
      ++rounds;
      if (rounds % 2 == 0) {
        std::printf(
            "  [analytics] reachable=%zu  hottest zone=%u (rank %.6f)\n",
            reachable, top, pr[top]);
      }
    }
  });

  std::vector<std::thread> traffic;
  for (int t = 0; t < 6; ++t) {
    traffic.emplace_back([&, t] {
      Random rng(static_cast<uint64_t>(t) + 1);
      ZipfDistribution hot(kZones, 1.3);
      for (int i = 0; i < 150000; ++i) {
        VertexId a = static_cast<VertexId>(hot.Sample(rng) - 1);
        VertexId b = static_cast<VertexId>(rng.NextBounded(kZones));
        if (i % 5 == 4) {
          city.RemoveEdge(a, b);
        } else {
          city.AddEdge(a, b, static_cast<Value>(i));
        }
      }
    });
  }
  for (auto& t : traffic) t.join();
  stop.store(true);
  analyst.join();
  city.Flush();

  std::printf("final: %zu edges; hottest zone out-degree=%zu\n",
              city.NumEdges(), city.OutDegree(0));
  std::string err;
  std::printf("edge PMA invariants: %s\n",
              city.edges().CheckInvariants(&err) ? "OK" : err.c_str());
  return 0;
}
