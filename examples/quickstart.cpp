// Quickstart: the 5-minute tour of the library.
//
//  1. Sequential PMA — the underlying sorted-array-with-gaps structure,
//     including a dump of the calibrator tree (Figure 1 of the paper).
//  2. Concurrent PMA — the paper's contribution: gates, static index,
//     rebalancer service and asynchronous updates, exercised from
//     multiple threads.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <thread>
#include <vector>

#include "concurrent/concurrent_pma.h"
#include "pma/sequential_pma.h"

int main() {
  using namespace cpma;

  // --- 1. Sequential PMA ------------------------------------------------
  std::printf("== Sequential PMA ==\n");
  PmaConfig seq_cfg;
  seq_cfg.segment_capacity = 8;  // tiny segments so the tree is visible
  SequentialPMA seq(seq_cfg);
  for (Key k = 1; k <= 40; ++k) seq.Insert(k * 10, k);
  std::printf("%s", seq.DebugDumpCalibratorTree().c_str());

  Value v = 0;
  seq.Find(100, &v);
  std::printf("Find(100) -> %llu\n", static_cast<unsigned long long>(v));
  std::printf("Range scan [95, 135]: ");
  seq.Scan(95, 135, [](Key k, Value) {
    std::printf("%llu ", static_cast<unsigned long long>(k));
    return true;
  });
  std::printf("\nrebalances so far: %llu\n\n",
              static_cast<unsigned long long>(seq.num_rebalances()));

  // --- 2. Concurrent PMA ------------------------------------------------
  std::printf("== Concurrent PMA (paper configuration) ==\n");
  ConcurrentConfig cfg;
  cfg.pma.segment_capacity = 128;   // B = 128
  cfg.segments_per_gate = 8;        // gate = 8 segments
  cfg.rebalancer_workers = 8;       // master/worker rebalancer
  cfg.async_mode = ConcurrentConfig::AsyncMode::kBatch;
  cfg.t_delay_ms = 100;             // batch throttle
  ConcurrentPMA pma(cfg);

  // 8 writers insert disjoint keys while 2 readers scan concurrently.
  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&, w] {
      for (Key k = 0; k < 100000; ++k) {
        pma.Insert(k * 8 + static_cast<Key>(w), k);
      }
    });
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scans{0};
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        volatile uint64_t sink = pma.SumAll();
        (void)sink;
        scans.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 8; ++i) threads[static_cast<size_t>(i)].join();
  stop.store(true);
  threads[8].join();
  threads[9].join();
  pma.Flush();  // wait for asynchronously combined updates

  std::printf("size:              %zu\n", pma.Size());
  std::printf("capacity:          %zu slots\n", pma.capacity());
  std::printf("full scans done:   %llu (concurrent with the inserts)\n",
              static_cast<unsigned long long>(scans.load()));
  std::printf("local rebalances:  %llu\n",
              static_cast<unsigned long long>(pma.num_local_rebalances()));
  std::printf("global rebalances: %llu (master/worker service)\n",
              static_cast<unsigned long long>(pma.num_global_rebalances()));
  std::printf("resizes:           %llu (epoch-protected)\n",
              static_cast<unsigned long long>(pma.num_resizes()));
  std::printf("combined ops:      %llu (forwarded between writers)\n",
              static_cast<unsigned long long>(pma.num_queued_ops()));

  std::string err;
  std::printf("invariants:        %s\n",
              pma.CheckInvariants(&err) ? "OK" : err.c_str());
  return 0;
}
