// Security dashboard (paper §1 motivation: "(security) dashboarding on
// social media ... require immediate and concurrent updates"):
// an event stream keyed by (timestamp << 24 | event id) is ingested by
// several collector threads while dashboard threads continuously compute
// sliding-window aggregates with range scans — the access pattern where
// the PMA's sequential scans shine.
//
// Build & run:  ./build/examples/dashboard

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "concurrent/concurrent_pma.h"

int main() {
  using namespace cpma;
  ConcurrentConfig cfg;
  cfg.async_mode = ConcurrentConfig::AsyncMode::kBatch;
  cfg.t_delay_ms = 50;
  ConcurrentPMA events(cfg);

  constexpr int kCollectors = 6;
  constexpr int kDashboards = 2;
  constexpr uint64_t kEventsPerCollector = 200000;

  auto event_key = [](uint64_t ts, uint64_t id) {
    return (ts << 24) | (id & 0xFFFFFF);
  };

  std::atomic<uint64_t> logical_time{1};
  std::atomic<bool> stop{false};

  // Collectors ingest events with a severity score as the value.
  std::vector<std::thread> collectors;
  for (int c = 0; c < kCollectors; ++c) {
    collectors.emplace_back([&, c] {
      Random rng(static_cast<uint64_t>(c) * 31 + 7);
      for (uint64_t i = 0; i < kEventsPerCollector; ++i) {
        const uint64_t ts = logical_time.fetch_add(1);
        const uint64_t id = rng.NextBounded(1 << 24);
        const Value severity = rng.NextBounded(100);
        events.Insert(event_key(ts, id), severity);
        // Old events are expired (deleted) to keep the window bounded.
        if (ts > 300000) {
          events.Remove(event_key(ts - 300000, id));
        }
      }
    });
  }

  // Dashboards: sliding-window severity totals over the last K ticks.
  std::vector<std::thread> dashboards;
  std::atomic<uint64_t> refreshes{0};
  for (int d = 0; d < kDashboards; ++d) {
    dashboards.emplace_back([&] {
      while (!stop.load()) {
        const uint64_t now = logical_time.load();
        const uint64_t from = now > 50000 ? now - 50000 : 0;
        uint64_t total_severity = 0, n = 0, alerts = 0;
        events.Scan(event_key(from, 0), event_key(now, 0xFFFFFF),
                    [&](Key, Value sev) {
                      total_severity += sev;
                      alerts += sev >= 95;
                      ++n;
                      return true;
                    });
        refreshes.fetch_add(1);
        if (refreshes.load() % 50 == 0 && n > 0) {
          std::printf(
              "  [dashboard] window=%llu events, avg severity %.1f, "
              "critical=%llu\n",
              static_cast<unsigned long long>(n),
              static_cast<double>(total_severity) / static_cast<double>(n),
              static_cast<unsigned long long>(alerts));
        }
      }
    });
  }

  Timer t;
  for (auto& c : collectors) c.join();
  stop.store(true);
  for (auto& d : dashboards) d.join();
  events.Flush();

  const double secs = t.ElapsedSeconds();
  std::printf("ingested %llu events in %.2fs (%.2f M/s) with %llu live "
              "dashboard refreshes\n",
              static_cast<unsigned long long>(kCollectors *
                                              kEventsPerCollector),
              secs,
              static_cast<double>(kCollectors * kEventsPerCollector) / secs /
                  1e6,
              static_cast<unsigned long long>(refreshes.load()));
  std::printf("retained events: %zu\n", events.Size());
  std::string err;
  std::printf("invariants: %s\n",
              events.CheckInvariants(&err) ? "OK" : err.c_str());
  return 0;
}
