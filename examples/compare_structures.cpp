// Side-by-side comparison through the common OrderedMap interface: the
// concurrent PMA against the four tree baselines on a small mixed
// read/update workload — a miniature of the paper's Figure 3 that runs
// in seconds and prints the same who-wins-where picture.
//
// Build & run:  ./build/examples/compare_structures

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/art/art.h"
#include "baselines/btree/btree.h"
#include "baselines/bwtree/bwtree.h"
#include "baselines/masstree/masstree.h"
#include "common/random.h"
#include "common/timer.h"
#include "concurrent/concurrent_pma.h"

int main() {
  using namespace cpma;
  constexpr size_t kInserts = 400000;
  constexpr int kWriters = 6;
  constexpr int kScanners = 2;

  auto run = [&](OrderedMap* m) {
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> scanned{0};
    std::vector<std::thread> threads;
    Timer t;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        Random rng(static_cast<uint64_t>(w) + 77);
        for (size_t i = 0; i < kInserts / kWriters; ++i) {
          m->Insert(rng.NextBounded(1 << 27), i);
        }
      });
    }
    std::vector<std::thread> scanners;
    for (int s = 0; s < kScanners; ++s) {
      scanners.emplace_back([&] {
        uint64_t local = 0;
        while (!stop.load()) {
          const size_t sz = m->Size();
          volatile uint64_t sink = m->SumAll();
          (void)sink;
          local += sz;
        }
        scanned.fetch_add(local);
      });
    }
    for (auto& th : threads) th.join();
    m->Flush();
    const double secs = t.ElapsedSeconds();
    stop.store(true);
    for (auto& th : scanners) th.join();
    std::printf("%-24s %10.3f M upd/s %12.1f M scanned elt/s\n",
                m->Name().c_str(),
                static_cast<double>(kInserts) / secs / 1e6,
                static_cast<double>(scanned.load()) / secs / 1e6);
  };

  std::printf("mixed workload: %d writers + %d scanners, %zu inserts over "
              "2^27 keys\n\n",
              kWriters, kScanners, kInserts);
  {
    Masstree m;
    run(&m);
  }
  {
    BwTree m;
    run(&m);
  }
  {
    ArtBTree m;
    run(&m);
  }
  {
    BTree m;
    run(&m);
  }
  {
    ConcurrentPMA m;
    run(&m);
  }
  std::printf(
      "\nExpected shape (paper Fig. 3): trees lead on updates, the PMA "
      "leads on scans by a wide margin.\n");
  return 0;
}
