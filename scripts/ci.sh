#!/usr/bin/env bash
# One-command verify: configure -> build -> ctest -> sanitizer smoke.
#
#   scripts/ci.sh              # release + asan smoke + tsan concurrent smoke
#   scripts/ci.sh --fast       # release build + full ctest only
#   scripts/ci.sh --bench-relative [REF]
#                              # build release, then run the hosted-runner
#                              # bench gate path (bench_gate.sh --relative)
#                              # against REF (default: merge-base with
#                              # origin/main, else HEAD~1) on THIS machine
#   JOBS=8 scripts/ci.sh       # override build/test parallelism
#
# Exits non-zero on the first failing stage. Uses the CMakePresets.json
# presets, so the build trees land in build/, build-asan/, build-tsan/.
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
JOBS="${JOBS:-$(nproc)}"
FAST=0
BENCH_RELATIVE=0
BENCH_RELATIVE_REF="${2:-}"
[[ "${1:-}" == "--fast" ]] && FAST=1
[[ "${1:-}" == "--bench-relative" ]] && BENCH_RELATIVE=1

stage() { printf '\n=== %s ===\n' "$*"; }

# --bench-relative: exercise the exact gate ci.yml runs on hosted
# runners (ISSUE 5) — build the candidate, rebuild the base ref in a
# grafted worktree on this same machine, compare. Catches breakage in
# the relative-mode plumbing before it gates a PR in CI.
if [[ "$BENCH_RELATIVE" == 1 ]]; then
  ref="$BENCH_RELATIVE_REF"
  if [[ -z "$ref" ]]; then
    ref=$(git merge-base HEAD origin/main 2>/dev/null || true)
    if [[ -z "$ref" || "$ref" == "$(git rev-parse HEAD)" ]]; then
      ref=$(git rev-parse HEAD~1)
    fi
  fi
  stage "configure + build (release)"
  cmake --preset release
  cmake --build --preset release -j "$JOBS"
  stage "bench regression gate (relative vs $(git rev-parse --short "$ref"))"
  scripts/bench_gate.sh --relative "$ref"
  stage "bench-relative gate green"
  exit 0
fi

stage "configure + build (release)"
cmake --preset release
cmake --build --preset release -j "$JOBS"

stage "ctest (release, all labels)"
ctest --preset release --parallel "$JOBS"

# Which kernels this box dispatches to (search from ISSUE 2; rebalance
# copy + gate locate from ISSUE 3), then prove the portable scalar
# fallback stays green for ALL of them by re-running the unit label with
# AVX2 disabled via the env override.
stage "hot-path dispatch"
./build/tests/test_hotpath --gtest_filter='HotpathDispatch.*' | grep '\[hotpath\]'

stage "ctest (release, unit label, CPMA_DISABLE_AVX2=1)"
dispatch_line="$(CPMA_DISABLE_AVX2=1 ./build/tests/test_hotpath \
  --gtest_filter='HotpathDispatch.*' | grep '\[hotpath\]')"
echo "$dispatch_line"
for kernel in dispatch search copy locate; do
  if ! grep -q "${kernel}=scalar" <<<"$dispatch_line"; then
    echo "FATAL: ${kernel} did not fall back to scalar under CPMA_DISABLE_AVX2"
    exit 1
  fi
done
CPMA_DISABLE_AVX2=1 ctest --test-dir build -L unit \
  --output-on-failure --parallel "$JOBS"

if [[ "$FAST" == 1 ]]; then
  echo "--fast: skipping bench gate + sanitizer stages"
  exit 0
fi

# Bench regression gate (ISSUE 4; sharded front end added in ISSUE 8):
# CI-scale read-path + rebalance + bench_sharded runs compared against
# the committed bench/baseline/*.json; >10% throughput regression fails
# the pipeline (scripts/bench_gate.sh --update to rebaseline after
# intentional changes or on new hardware).
stage "bench regression gate (scripts/bench_diff.py --check)"
scripts/bench_gate.sh

stage "configure + build (asan+ubsan)"
cmake --preset asan
cmake --build --preset asan -j "$JOBS"

stage "ctest (asan, full suite)"
ctest --preset asan --parallel "$JOBS"

stage "configure + build (tsan)"
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"

stage "ctest (tsan, concurrent label)"
ctest --preset tsan

stage "all stages green"
