#!/usr/bin/env python3
"""Compare two bench JSON files and print per-workload deltas.

Accepts the two JSON shapes the bench binaries emit (README Performance):

  - the flat record array written by the driver.h --json emitter
    (bench_fig3/fig4/ablation/graph/rebalance): records are matched on
    their identifying string/int fields, and the metric fields
    (update_mops, scan_meps: higher is better) are compared;
  - google-benchmark's native JSON (bench_micro --json): entries are
    matched on the benchmark name and cpu_time (lower is better) is
    compared.

Usage:
  scripts/bench_diff.py BASELINE.json CANDIDATE.json [--check] [--threshold=10]

With --check the exit status is non-zero when any metric regresses by
more than the threshold (percent, default 10) — the guard used for the
BENCH_PR*.json before/after tables.
"""

import argparse
import json
import sys

# Metric fields and their direction: +1 = higher is better, -1 = lower.
METRICS = {
    "update_mops": +1,
    "scan_meps": +1,
    "ops_mops": +1,
    "items_per_second": +1,
    "cpu_time": -1,
    "real_time": -1,
}

# Record fields that never identify a workload (environment/noise).
# The storage/read-path observability fields (ISSUE 4: page size and
# publish mechanism a run actually used, optimistic-path counters) are
# measurements, not knobs — they must not split identities between runs
# or between trees with/without the optimistic read path. The ebr_*
# fields (ISSUE 6: epoch-reclamation counters) are likewise
# measurements and non-gating.
VOLATILE = {
    "git_sha", "dispatch", "seconds", "date", "items_per_rep",
    "rewired", "rewiring_active", "page_bytes", "backing_page_bytes",
    "num_remaps", "fallback_copies", "read_fallbacks",
    "optimistic_gate_reads", "optimistic_retries", "reroutes",
    "ebr_pending", "ebr_pending_bytes", "ebr_retired_bytes_hwm",
    "ebr_epoch_advances", "ebr_collections",
    # Fault-tolerance observability (ISSUE 7): degradation counters a
    # healthy run reports as zeros/false — diagnostics for attributing a
    # perf delta to a degraded run, never part of a workload's identity.
    "fallback_backend_active", "failpoint_fires", "rebalance_retries",
    "watchdog_trips",
    # Placement observability (ISSUE 8): what the topology-aware pinner
    # saw on the host that ran the bench — environment, not workload.
    "host_cpus", "host_cores", "smt", "pin_order",
    # Sharded front-end flush counters (ISSUE 8): how the coalescing
    # front door behaved, not what was asked of it (the coalesce/age_ms
    # knobs themselves stay identity fields).
    "coalesced_flushes", "coalesced_ops", "age_flushes", "direct_ops",
    # Durability-tier observability (ISSUE 9): snapshot/COW retention
    # and the process-global checkpoint counters — measurements of what
    # a run did, never part of a workload's identity. A nonzero
    # restore_verify_failures disqualifies the run as a perf sample,
    # which is exactly why it is reported.
    "snapshots_open", "snapshots_taken", "cow_retained_bytes",
    "checkpoint_bytes", "restore_verify_failures",
}

# Suffix/prefix families of volatile fields (ISSUE 8): per-op latency
# percentiles and their sample counts (*_p50_ns/_p99_ns/_p999_ns,
# *_lat_samples) are reported metrics-adjacent observability — noisy
# between runs and absent on trees without the latency histograms, so
# they must not split identities; agg_* / ebr_* are the sharded front
# end's aggregated per-shard counters, measurements like their
# un-aggregated ISSUE 4/6/7 counterparts above; tail_* / ev_* (ISSUE
# 10) are the tail-attribution breakdown and the mechanism-event counts
# the ring saw — what the structure did during the run, never identity.
VOLATILE_SUFFIXES = ("_ns", "_lat_samples")
VOLATILE_PREFIXES = ("agg_", "ebr_", "tail_", "ev_")


def is_volatile(field):
    return (field in VOLATILE
            or field.endswith(VOLATILE_SUFFIXES)
            or field.startswith(VOLATILE_PREFIXES))


def load_records(path):
    """Normalize a bench JSON file to {identity: {metric: value}}."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    if isinstance(data, dict) and "benchmarks" in data:
        for b in data["benchmarks"]:
            ident = b.get("name", "?")
            metrics = {
                k: v
                for k, v in b.items()
                if k in METRICS and isinstance(v, (int, float)) and v != 0
            }
            if metrics:
                out[ident] = metrics
        return out
    if not isinstance(data, list):
        raise ValueError(f"{path}: unrecognized bench JSON shape")
    for rec in data:
        ident_fields = []
        metrics = {}
        for k, v in sorted(rec.items()):
            if k in METRICS:
                if isinstance(v, (int, float)) and v != 0:
                    metrics[k] = v
            elif not is_volatile(k):
                ident_fields.append(f"{k}={v}")
        if metrics:
            out[" ".join(ident_fields)] = metrics
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero on any regression over the threshold")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    args = ap.parse_args()

    base = load_records(args.baseline)
    cand = load_records(args.candidate)
    common = [k for k in base if k in cand]
    if not common:
        print("bench_diff: no matching workloads between the two files",
              file=sys.stderr)
        return 2

    regressions = []
    width = max(len(k) for k in common)
    print(f"{'workload':<{width}}  {'metric':<16} {'baseline':>12} "
          f"{'candidate':>12} {'delta':>8}")
    for key in common:
        for metric, direction in METRICS.items():
            if metric not in base[key] or metric not in cand[key]:
                continue
            b, c = base[key][metric], cand[key][metric]
            delta_pct = (c - b) / b * 100.0
            # Positive `gain` means the candidate improved.
            gain = delta_pct * direction
            marker = ""
            if gain < -args.threshold:
                marker = "  << REGRESSION"
                regressions.append((key, metric, delta_pct))
            print(f"{key:<{width}}  {metric:<16} {b:>12.4g} {c:>12.4g} "
                  f"{delta_pct:>+7.1f}%{marker}")

    skipped_base = len(base) - len(common)
    skipped_cand = len(cand) - len(common)
    if skipped_base or skipped_cand:
        print(f"# unmatched workloads: {skipped_base} baseline-only, "
              f"{skipped_cand} candidate-only")
    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed more than "
              f"{args.threshold:.0f}%:")
        for key, metric, delta in regressions:
            print(f"  {key} {metric}: {delta:+.1f}%")
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
