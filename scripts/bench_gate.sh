#!/usr/bin/env bash
# Bench regression gate (ISSUE 4): run the CI-scale read-path,
# rebalance, sharded front-end, and YCSB standard-mix benchmarks and
# fail on >threshold throughput regressions via scripts/bench_diff.py
# --check, instead of waiting for someone to run the benches by hand.
#
#   scripts/bench_gate.sh                  # vs committed bench/baseline/
#   scripts/bench_gate.sh --update         # regenerate those baselines
#   scripts/bench_gate.sh --relative REF   # vs REF built on THIS machine
#   scripts/bench_gate.sh --relative REF --keep   # keep the base worktree
#   CPMA_BENCH_GATE_THRESHOLD=25 ...       # widen the gate (noisy hosts)
#   CPMA_SKIP_BENCH_GATE=1 ...             # skip entirely
#
# Two modes:
#  - committed-baseline (default): compares against bench/baseline/*.json.
#    Those are machine-specific absolutes — regenerate with --update on
#    the machine that runs the gate (scripts/ci.sh uses this mode on the
#    baseline box).
#  - --relative REF: builds REF in a temporary git worktree with the
#    current bench drivers grafted on (bench/CMakeLists.txt globs
#    bench_*.cc), generates the baseline fresh on the same machine, then
#    compares. This is the mode for heterogeneous/hosted CI runners,
#    where committed absolutes from another machine class would gate on
#    hardware, not code.
#
# The gate knobs are deliberately small so one run stays in CI seconds,
# and only workloads whose repetition runs long enough to be gateable
# (>= tens of ms) are included: the sub-millisecond kernel microbenches
# (spread / merged / resize at CI scale) swing tens of percent between
# process runs and belong to the full-size BENCH_PR*.json methodology,
# not a pass/fail gate.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

if [[ "${CPMA_SKIP_BENCH_GATE:-0}" == 1 ]]; then
  echo "bench_gate: skipped (CPMA_SKIP_BENCH_GATE=1)"
  exit 0
fi

BUILD="${BUILD:-build}"
BASELINE_DIR=bench/baseline
OUT="$BUILD/bench_gate"
THRESHOLD="${CPMA_BENCH_GATE_THRESHOLD:-10}"
# Best-of repetitions absorb scheduler noise; knobs must stay identical
# between the two sides or bench_diff finds no matching workloads.
READPATH_ARGS=(--ops=600000 --preload=300000 --threads=4 --reps=4
               --scan_passes=16)
REBAL_ARGS=(--ops=400000 --segments=512 --batch=2048 --threads=4 --reps=5
            --what=dense,batch_insert,scan)
# Sharded front end (ISSUE 8): one bare-vs-sharded parity pair plus a
# small shard sweep, sized for CI seconds. Gated in committed-baseline
# mode only — in --relative mode the base tree predates src/sharded/
# and grafting the driver cannot conjure the library it benches.
SHARDED_ARGS=(--ops=300000 --preload=150000 --threads=4 --reps=3
              --shards=1,2 --scan_passes=8
              --what=insert_heavy,read_mostly)
# YCSB standard mixes (ISSUE 10): the two gated backends at CI scale,
# update-heavy + read-latest (the rebalance-exercising mixes). Gated in
# committed-baseline mode only, like sharded — in --relative mode the
# base tree predates bench/workloads.h and the tail-attribution driver
# API, so the driver cannot be grafted onto it.
YCSB_ARGS=(--records=60000 --ops=200000 --threads=4
           --mixes=A,D --backends=pma,sharded)

mkdir -p "$OUT"
run_benches() {
  local bindir="$1" outdir="$2" sharded="${3:-with-sharded}"
  "$bindir/bench_readpath" "${READPATH_ARGS[@]}" \
    --json="$outdir/readpath.json"
  "$bindir/bench_rebalance" "${REBAL_ARGS[@]}" \
    --json="$outdir/rebalance.json"
  if [[ "$sharded" != "--no-sharded" ]]; then
    "$bindir/bench_sharded" "${SHARDED_ARGS[@]}" \
      --json="$outdir/sharded.json"
    "$bindir/bench_ycsb" "${YCSB_ARGS[@]}" \
      --json="$outdir/ycsb.json"
  fi
}

compare() {
  local basedir="$1" canddir="$2" status=0
  for f in readpath rebalance sharded ycsb; do
    if [[ ! -f "$basedir/$f.json" || ! -f "$canddir/$f.json" ]]; then
      echo "--- bench_gate: $f skipped (missing on one side) ---"
      continue
    fi
    echo "--- bench_gate: $f (threshold ${THRESHOLD}%) ---"
    python3 scripts/bench_diff.py "$basedir/$f.json" "$canddir/$f.json" \
      --check --threshold="$THRESHOLD" || status=1
  done
  if [[ $status -ne 0 ]]; then
    echo "bench_gate: FAILED — a workload regressed more than" \
         "${THRESHOLD}% (see above)." >&2
  fi
  return $status
}

if [[ "${1:-}" == "--update" ]]; then
  mkdir -p "$BASELINE_DIR"
  run_benches "./$BUILD/bench" "$BASELINE_DIR"
  echo "bench_gate: baselines regenerated in $BASELINE_DIR/ — commit them"
  exit 0
fi

if [[ "${1:-}" == "--relative" ]]; then
  ref="${2:?bench_gate: --relative needs a git ref}"
  keep=0
  [[ "${3:-}" == "--keep" ]] && keep=1

  # Harden for shallow / freshly-fetched checkouts (hosted runners):
  # the ref must resolve to a commit we actually have before a worktree
  # can be grafted onto it. Deepen, then fetch the ref directly, before
  # giving up with an actionable message.
  if ! git rev-parse --verify --quiet "${ref}^{commit}" >/dev/null; then
    echo "bench_gate: $ref not present locally; fetching..." >&2
    if [[ "$(git rev-parse --is-shallow-repository)" == true ]]; then
      git fetch --deepen=100 origin >/dev/null 2>&1 || true
    fi
    git rev-parse --verify --quiet "${ref}^{commit}" >/dev/null ||
      git fetch origin "$ref" >/dev/null 2>&1 || true
    if ! git rev-parse --verify --quiet "${ref}^{commit}" >/dev/null; then
      echo "bench_gate: cannot resolve --relative ref '$ref'" \
           "(shallow clone without it? fetch it or pass a reachable ref)" >&2
      exit 1
    fi
  fi

  # Trap-based cleanup (ISSUE 5 fix): any exit — base build failure,
  # bench crash, Ctrl-C — removes the grafted worktree AND its build
  # tree, then prunes the registration; the old trap only ran
  # `git worktree remove`, which refuses a dirty tree on some git
  # versions and never deleted the mktemp dir on registration failure.
  base_wt="$(mktemp -d)"
  cleanup() {
    if [[ "$keep" == 1 ]]; then
      echo "bench_gate: --keep: leaving base worktree at $base_wt" >&2
      return 0
    fi
    git worktree remove --force "$base_wt" >/dev/null 2>&1 || true
    rm -rf "$base_wt"
    git worktree prune >/dev/null 2>&1 || true
  }
  trap cleanup EXIT
  echo "bench_gate: building baseline from $(git rev-parse --short "$ref")"
  # --detach: works from any HEAD state, including the detached HEAD a
  # hosted runner checks out for PR merge commits.
  git worktree add --detach --force "$base_wt" "$ref" >/dev/null
  # Graft the candidate's bench drivers + diff tool so both sides run
  # identical workloads even when the base predates a driver.
  cp bench/bench_readpath.cc bench/bench_rebalance.cc "$base_wt/bench/"
  cmake -S "$base_wt" -B "$base_wt/build" -DCMAKE_BUILD_TYPE=Release \
    -DCPMA_BUILD_TESTS=OFF -DCPMA_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "$base_wt/build" -j "$(nproc)" \
    --target bench_readpath bench_rebalance >/dev/null
  mkdir -p "$OUT/base" "$OUT/cand"
  # Both sides skip bench_sharded and bench_ycsb: the base tree cannot
  # build them, and a candidate-only run would have nothing to gate
  # against.
  run_benches "$base_wt/build/bench" "$OUT/base" --no-sharded
  run_benches "./$BUILD/bench" "$OUT/cand" --no-sharded
  compare "$OUT/base" "$OUT/cand"
  exit $?
fi

for f in readpath rebalance sharded ycsb; do
  if [[ ! -f "$BASELINE_DIR/$f.json" ]]; then
    echo "bench_gate: missing $BASELINE_DIR/$f.json" \
         "(run scripts/bench_gate.sh --update and commit)" >&2
    exit 1
  fi
done
run_benches "./$BUILD/bench" "$OUT"
compare "$BASELINE_DIR" "$OUT"
exit $?
