// Tests for the concurrent PMA: single-threaded semantics first (against
// a std::map oracle), then multi-threaded stress across all async modes,
// with invariants validated at quiesce points. Resize storms are forced
// with tiny segments.

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"
#include "concurrent/concurrent_pma.h"
#include "concurrent/rebalancer.h"

namespace cpma {
namespace {

using AsyncMode = ConcurrentConfig::AsyncMode;

ConcurrentConfig SmallConfig(AsyncMode mode, size_t seg_cap = 16,
                             int64_t t_delay = 10) {
  ConcurrentConfig cfg;
  cfg.pma.segment_capacity = seg_cap;
  cfg.segments_per_gate = 4;
  cfg.rebalancer_workers = 2;
  cfg.async_mode = mode;
  cfg.t_delay_ms = t_delay;
  return cfg;
}

// ---------------------------------------------------------- basic single

TEST(ConcurrentPma, InsertFindSmoke) {
  ConcurrentPMA pma;
  pma.Insert(10, 100);
  pma.Insert(5, 50);
  pma.Insert(20, 200);
  pma.Flush();
  Value v = 0;
  EXPECT_TRUE(pma.Find(10, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_TRUE(pma.Find(5, &v));
  EXPECT_FALSE(pma.Find(15, &v));
  EXPECT_EQ(pma.Size(), 3u);
}

TEST(ConcurrentPma, UpsertAndRemove) {
  ConcurrentPMA pma;
  pma.Insert(1, 10);
  pma.Insert(1, 20);
  pma.Remove(1);
  pma.Remove(99);  // absent
  pma.Flush();
  EXPECT_FALSE(pma.Find(1, nullptr));
  EXPECT_EQ(pma.Size(), 0u);
}

TEST(ConcurrentPma, EmptyStructureBehaves) {
  ConcurrentPMA pma;
  EXPECT_EQ(pma.SumAll(), 0u);
  EXPECT_FALSE(pma.Find(7, nullptr));
  int n = 0;
  pma.Scan(0, kKeyMax, [&](Key, Value) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 0);
  std::string err;
  EXPECT_TRUE(pma.CheckInvariants(&err)) << err;
}

TEST(ConcurrentPma, NameReflectsMode) {
  EXPECT_NE(ConcurrentPMA(SmallConfig(AsyncMode::kSync)).Name().find("sync"),
            std::string::npos);
  EXPECT_NE(ConcurrentPMA(SmallConfig(AsyncMode::kOneByOne))
                .Name()
                .find("1by1"),
            std::string::npos);
  EXPECT_NE(ConcurrentPMA(SmallConfig(AsyncMode::kBatch)).Name().find("batch"),
            std::string::npos);
}

class ConcurrentPmaModes : public ::testing::TestWithParam<AsyncMode> {};

TEST_P(ConcurrentPmaModes, SingleThreadMatchesOracle) {
  ConcurrentPMA pma(SmallConfig(GetParam()));
  std::map<Key, Value> oracle;
  Random rng(42);
  for (int op = 0; op < 30000; ++op) {
    Key k = rng.NextBounded(4000);
    if (rng.NextBounded(10) < 7) {
      Value v = rng.Next();
      pma.Insert(k, v);
      oracle[k] = v;
    } else {
      pma.Remove(k);
      oracle.erase(k);
    }
    if (op % 10000 == 9999) {
      pma.Flush();
      std::string err;
      ASSERT_TRUE(pma.CheckInvariants(&err)) << err << " at op " << op;
      ASSERT_EQ(pma.Size(), oracle.size()) << "at op " << op;
    }
  }
  pma.Flush();
  std::vector<std::pair<Key, Value>> got;
  pma.Scan(0, kKeyMax, [&](Key k, Value v) {
    got.emplace_back(k, v);
    return true;
  });
  ASSERT_EQ(got.size(), oracle.size());
  auto it = oracle.begin();
  for (size_t i = 0; i < got.size(); ++i, ++it) {
    ASSERT_EQ(got[i].first, it->first);
    ASSERT_EQ(got[i].second, it->second);
  }
}

TEST_P(ConcurrentPmaModes, GrowAndShrinkThroughResizes) {
  ConcurrentPMA pma(SmallConfig(GetParam(), /*seg_cap=*/8, /*t_delay=*/5));
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) pma.Insert(static_cast<Key>(i), i);
  pma.Flush();
  EXPECT_EQ(pma.Size(), static_cast<size_t>(kN));
  EXPECT_GT(pma.num_resizes(), 0u) << "tiny segments must force resizes";
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  const size_t grown = pma.capacity();
  for (int i = 0; i < kN; ++i) pma.Remove(static_cast<Key>(i));
  pma.Flush();
  EXPECT_EQ(pma.Size(), 0u);
  EXPECT_LT(pma.capacity(), grown);
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  // Still usable after the storm.
  pma.Insert(1, 2);
  pma.Flush();
  EXPECT_TRUE(pma.Find(1, nullptr));
}

TEST_P(ConcurrentPmaModes, SequentialKeysWorstCase) {
  ConcurrentPMA pma(SmallConfig(GetParam()));
  for (Key k = 0; k < 30000; ++k) pma.Insert(k, k * 2);
  pma.Flush();
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  Value v;
  for (Key k = 0; k < 30000; k += 977) {
    ASSERT_TRUE(pma.Find(k, &v));
    ASSERT_EQ(v, k * 2);
  }
}

TEST_P(ConcurrentPmaModes, ScanBoundsAndEarlyStop) {
  ConcurrentPMA pma(SmallConfig(GetParam()));
  for (Key k = 0; k < 2000; ++k) pma.Insert(k * 10, k);
  pma.Flush();
  std::vector<Key> seen;
  pma.Scan(95, 205, [&](Key k, Value) {
    seen.push_back(k);
    return true;
  });
  ASSERT_EQ(seen.size(), 11u);
  EXPECT_EQ(seen.front(), 100u);
  EXPECT_EQ(seen.back(), 200u);
  int visited = 0;
  pma.Scan(0, kKeyMax, [&](Key, Value) { return ++visited < 5; });
  EXPECT_EQ(visited, 5);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ConcurrentPmaModes,
                         ::testing::Values(AsyncMode::kSync,
                                           AsyncMode::kOneByOne,
                                           AsyncMode::kBatch),
                         [](const ::testing::TestParamInfo<AsyncMode>& info) {
                           switch (info.param) {
                             case AsyncMode::kSync: return "Sync";
                             case AsyncMode::kOneByOne: return "OneByOne";
                             case AsyncMode::kBatch: return "Batch";
                           }
                           return "Unknown";
                         });

// ------------------------------------------------------------- concurrent

struct StressParam {
  AsyncMode mode;
  int writers;
  int readers;
  bool skewed;
  size_t seg_cap;
};

class ConcurrentStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(ConcurrentStress, WritersAndScannersConverge) {
  const StressParam p = GetParam();
  ConcurrentPMA pma(SmallConfig(p.mode, p.seg_cap, /*t_delay=*/5));
  constexpr int kOpsPerWriter = 8000;
  const uint64_t key_space = 1 << 16;

  // Per-writer disjoint key ranges let us compute the expected final
  // state without cross-thread op ordering ambiguity.
  std::vector<std::map<Key, Value>> expected(p.writers);
  std::vector<std::thread> threads;
  std::atomic<bool> stop_readers{false};

  for (int w = 0; w < p.writers; ++w) {
    threads.emplace_back([&, w] {
      Random rng(1000 + w);
      ZipfDistribution zipf(key_space, 1.2);
      auto& exp = expected[w];
      for (int i = 0; i < kOpsPerWriter; ++i) {
        uint64_t raw = p.skewed ? zipf.Sample(rng)
                                : 1 + rng.NextBounded(key_space);
        // Disjoint: key = raw * writers + w.
        Key k = raw * static_cast<uint64_t>(p.writers) + w;
        if (rng.NextBounded(10) < 7) {
          pma.Insert(k, k + i);
          exp[k] = k + i;
        } else {
          pma.Remove(k);
          exp.erase(k);
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < p.readers; ++r) {
    readers.emplace_back([&] {
      uint64_t sink = 0;
      while (!stop_readers.load()) {
        sink += pma.SumAll();
        Value v;
        pma.Find(12345, &v);
      }
      (void)sink;
    });
  }
  for (auto& t : threads) t.join();
  stop_readers.store(true);
  for (auto& t : readers) t.join();
  pma.Flush();

  std::map<Key, Value> oracle;
  for (auto& exp : expected) oracle.insert(exp.begin(), exp.end());

  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  ASSERT_EQ(pma.Size(), oracle.size());
  std::vector<std::pair<Key, Value>> got;
  pma.Scan(0, kKeyMax, [&](Key k, Value v) {
    got.emplace_back(k, v);
    return true;
  });
  ASSERT_EQ(got.size(), oracle.size());
  auto it = oracle.begin();
  for (size_t i = 0; i < got.size(); ++i, ++it) {
    ASSERT_EQ(got[i].first, it->first) << "at index " << i;
    ASSERT_EQ(got[i].second, it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConcurrentStress,
    ::testing::Values(StressParam{AsyncMode::kSync, 4, 2, false, 16},
                      StressParam{AsyncMode::kSync, 4, 2, true, 16},
                      StressParam{AsyncMode::kOneByOne, 4, 2, false, 16},
                      StressParam{AsyncMode::kOneByOne, 8, 0, true, 16},
                      StressParam{AsyncMode::kOneByOne, 4, 2, true, 8},
                      StressParam{AsyncMode::kBatch, 4, 2, false, 16},
                      StressParam{AsyncMode::kBatch, 8, 0, true, 16},
                      StressParam{AsyncMode::kBatch, 4, 2, true, 8}),
    [](const ::testing::TestParamInfo<StressParam>& info) {
      const auto& p = info.param;
      std::string name;
      switch (p.mode) {
        case AsyncMode::kSync: name = "Sync"; break;
        case AsyncMode::kOneByOne: name = "OneByOne"; break;
        case AsyncMode::kBatch: name = "Batch"; break;
      }
      name += "_w" + std::to_string(p.writers) + "r" +
              std::to_string(p.readers);
      name += p.skewed ? "_zipf" : "_uniform";
      name += "_B" + std::to_string(p.seg_cap);
      return name;
    });

TEST(ConcurrentPmaHeavy, HighSkewSingleHotGate) {
  // All writers hammer the same tiny key range: the worst case for gate
  // contention, exercising the combining queue continuously.
  ConcurrentPMA pma(SmallConfig(AsyncMode::kBatch, 16, /*t_delay=*/2));
  constexpr int kWriters = 8;
  constexpr int kOps = 4000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOps; ++i) {
        // Insert-only, disjoint keys in a hot range.
        pma.Insert(static_cast<Key>(i * kWriters + w), 7);
      }
    });
  }
  for (auto& t : threads) t.join();
  pma.Flush();
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  EXPECT_EQ(pma.Size(), static_cast<size_t>(kWriters * kOps));
  EXPECT_GT(pma.num_queued_ops(), 0u)
      << "hot-gate workload should exercise the combining queue";
}

TEST(ConcurrentPmaHeavy, ResizeStormWithConcurrentScanners) {
  // Tiny capacity + rapid growth and shrink while scanners run: stresses
  // the epoch/invalidation protocol.
  ConcurrentConfig cfg = SmallConfig(AsyncMode::kOneByOne, 8);
  ConcurrentPMA pma(cfg);
  std::atomic<bool> stop{false};
  std::vector<std::thread> scanners;
  for (int r = 0; r < 3; ++r) {
    scanners.emplace_back([&] {
      uint64_t sink = 0;
      while (!stop.load()) sink += pma.SumAll();
      (void)sink;
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 4000; ++i) {
          pma.Insert(static_cast<Key>(i * 4 + w), i);
        }
        for (int i = 0; i < 4000; ++i) {
          pma.Remove(static_cast<Key>(i * 4 + w));
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : scanners) t.join();
  pma.Flush();
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  EXPECT_EQ(pma.Size(), 0u);
  EXPECT_GT(pma.num_resizes(), 1u);
}

TEST(ConcurrentPmaHeavy, ReadersSeeConsistentValuesForStableKeys) {
  // Keys 0..999 are written once and never touched again; concurrent
  // writers churn a disjoint range. Readers must always see the stable
  // keys with their exact values.
  ConcurrentPMA pma(SmallConfig(AsyncMode::kOneByOne));
  for (Key k = 0; k < 1000; ++k) pma.Insert(2 * k, k + 7);  // even keys
  pma.Flush();
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    // Capture r by value: a [&] capture would read the loop counter while
    // the main thread increments it (a TSan-reported data race).
    readers.emplace_back([&, r] {
      Random rng(r);
      while (!stop.load()) {
        Key k = 2 * rng.NextBounded(1000);
        Value v = 0;
        if (!pma.Find(k, &v) || v != k / 2 + 7) {
          failed.store(true);
          return;
        }
      }
    });
  }
  std::thread writer([&] {
    for (int round = 0; round < 3; ++round) {
      for (Key k = 0; k < 30000; ++k) {
        pma.Insert(100000 + 2 * k + 1, k);  // odd keys, far range
      }
      for (Key k = 0; k < 30000; ++k) pma.Remove(100000 + 2 * k + 1);
    }
  });
  writer.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  pma.Flush();
  EXPECT_FALSE(failed.load()) << "a stable key disappeared or changed";
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
}

TEST(ConcurrentPmaHeavy, FlushDrainsBatchQueues) {
  ConcurrentPMA pma(SmallConfig(AsyncMode::kBatch, 16, /*t_delay=*/500));
  // With a long t_delay, updates sit in queues; Flush must force them.
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 2000; ++i) {
        pma.Insert(static_cast<Key>(i * 4 + w), 1);
      }
    });
  }
  for (auto& t : writers) t.join();
  pma.Flush();
  EXPECT_EQ(pma.Size(), 8000u);
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
}

TEST(ConcurrentPmaStats, RebalancesAndBatchesAreCounted) {
  ConcurrentPMA pma(SmallConfig(AsyncMode::kBatch, 8, /*t_delay=*/1));
  for (Key k = 0; k < 20000; ++k) pma.Insert(k, k);
  pma.Flush();
  EXPECT_GT(pma.num_local_rebalances(), 0u);
  EXPECT_GT(pma.num_resizes(), 0u);
}

}  // namespace
}  // namespace cpma
