// EBR core suite (ISSUE 6): watermark triggering by count and by bytes,
// epoch-order draining of the per-thread limbo lists, pointer-stable
// slot growth past the initial capacity, slot reuse after thread exit,
// destruction with pending garbage (ASan leak coverage), and the
// parked-reader soaks that are the tentpole's acceptance evidence — a
// reader holding an EpochGuard mid-scan while writers churn must bound
// retired memory without wedging reclamation for other epochs.
//
// Dual-labeled unit+concurrent: the multi-threaded cases (registration
// storm, parked-reader soaks) re-run under TSan, where the seq_cst
// pin-publish / collector-fence protocol must keep every access ordered.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "common/epoch_gc.h"
#include "concurrent/concurrent_pma.h"

namespace cpma {
namespace {

void CountingFree(void* p) {
  static_cast<std::atomic<int>*>(p)->fetch_add(1);
}

TEST(EpochGCCore, CountWatermarkTriggersCollection) {
  EpochGC::Options opts;
  opts.count_watermark = 4;
  opts.bytes_watermark = size_t{1} << 40;  // never by bytes
  EpochGC gc(opts);  // no background collector: watermark collects inline
  std::atomic<int> freed{0};
  for (int i = 0; i < 3; ++i) gc.Retire(&CountingFree, &freed, 8);
  EXPECT_EQ(freed.load(), 0) << "below watermark: nothing collected";
  EXPECT_EQ(gc.PendingGarbage(), 3u);
  gc.Retire(&CountingFree, &freed, 8);  // 4th crosses the watermark
  EXPECT_EQ(freed.load(), 4);
  EXPECT_EQ(gc.PendingGarbage(), 0u);
  const EpochGCStats s = gc.Stats();
  EXPECT_GE(s.epoch_advances, 1u);
  EXPECT_GE(s.collections, 1u);
  EXPECT_EQ(s.retired_count, 4u);
  EXPECT_EQ(s.freed_count, 4u);
}

TEST(EpochGCCore, BytesWatermarkTriggersCollection) {
  EpochGC::Options opts;
  opts.count_watermark = size_t{1} << 40;  // never by count
  opts.bytes_watermark = 1024;
  EpochGC gc(opts);
  std::atomic<int> freed{0};
  gc.Retire(&CountingFree, &freed, 100);
  EXPECT_EQ(freed.load(), 0);
  // One huge retirement (a multi-MB snapshot, say) must trip the bytes
  // watermark even though the count is tiny.
  gc.Retire(&CountingFree, &freed, 4096);
  EXPECT_EQ(freed.load(), 2);
  const EpochGCStats s = gc.Stats();
  EXPECT_EQ(s.retired_bytes, 4196u);
  EXPECT_EQ(s.freed_bytes, 4196u);
  EXPECT_GE(s.retired_bytes_hwm, 4196u);
  EXPECT_EQ(s.pending_bytes, 0u);
}

// The per-thread limbo list is epoch-sorted by construction; Collect
// drains exactly the prefix older than the min active epoch.
TEST(EpochGCCore, DrainsEpochOrderedPrefixOnly) {
  EpochGC gc;
  std::atomic<int> freed_old{0};
  std::atomic<int> freed_new{0};
  gc.Retire(&CountingFree, &freed_old, 8);  // stamped epoch E
  ASSERT_TRUE(gc.TryAdvanceEpoch());        // no readers: E -> E+1
  EpochSlot* parked = gc.RegisterThread();
  gc.Enter(parked);                         // pins E+1
  gc.Retire(&CountingFree, &freed_new, 8);  // stamped E+1, same limbo list
  gc.Collect();
  EXPECT_EQ(freed_old.load(), 1) << "pre-pin garbage must drain";
  EXPECT_EQ(freed_new.load(), 0) << "pinned-epoch garbage must not";
  EXPECT_EQ(gc.PendingGarbage(), 1u);
  gc.Exit(parked);
  gc.Collect();
  EXPECT_EQ(freed_new.load(), 1);
  gc.UnregisterThread(parked);
}

// Satellite: RegisterThread must not abort past the initial capacity —
// slot storage grows in chunks and existing EpochSlot* stay valid.
TEST(EpochGCCore, SlotStorageGrowsWithoutAborting) {
  EpochGC::Options opts;
  opts.initial_threads = 1;
  EpochGC gc(opts);
  constexpr int kSlots = 100;  // far beyond one chunk
  std::vector<EpochSlot*> slots;
  for (int i = 0; i < kSlots; ++i) slots.push_back(gc.RegisterThread());
  EXPECT_EQ(std::set<EpochSlot*>(slots.begin(), slots.end()).size(),
            static_cast<size_t>(kSlots));
  // Slots allocated before growth must still be usable (pointer-stable).
  gc.Enter(slots[0]);
  std::atomic<int> freed{0};
  gc.Retire(&CountingFree, &freed, 8);
  gc.Collect();
  EXPECT_EQ(freed.load(), 0) << "first-chunk pin must still block";
  gc.Exit(slots[0]);
  gc.Collect();
  EXPECT_EQ(freed.load(), 1);
  for (auto* s : slots) gc.UnregisterThread(s);
}

TEST(EpochGCCore, RegistrationStormUnderGrowth) {
  EpochGC::Options opts;
  opts.initial_threads = 1;
  EpochGC gc(opts);
  std::atomic<int> freed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        EpochGuard guard(gc);
        gc.Retire(&CountingFree, &freed, 16);
      }
    });
  }
  for (auto& t : threads) t.join();
  gc.Collect();
  EXPECT_EQ(freed.load(), 800);
  EXPECT_EQ(gc.PendingGarbage(), 0u);
}

TEST(EpochGCCore, SlotReusedAfterThreadExit) {
  EpochGC gc;
  EpochSlot* first = gc.RegisterThread();
  gc.UnregisterThread(first);
  EXPECT_EQ(gc.RegisterThread(), first) << "released slot must be reused";
  gc.UnregisterThread(first);

  // A real thread exiting mid-garbage: its limbo list survives slot
  // recycling and drains once the epoch passes.
  std::atomic<int> freed{0};
  std::thread([&] {
    EpochGuard guard(gc);
    gc.Retire(&CountingFree, &freed, 8);
  }).join();
  std::thread([&] { EpochGuard guard(gc); }).join();  // recycles the slot
  gc.Collect();
  EXPECT_EQ(freed.load(), 1);
}

// ASan coverage: destruction with garbage still pending must free both
// the objects and the intrusive nodes, through every Retire overload.
TEST(EpochGCCore, DestructionWithPendingGarbage) {
  std::atomic<int> freed{0};
  {
    EpochGC gc;
    for (int i = 0; i < 10; ++i) {
      gc.Retire(new std::vector<int>(100), 400);  // template overload
      gc.Retire(&CountingFree, &freed, 8);        // raw fn overload
      gc.Retire([&freed] { freed.fetch_add(1); });  // std::function
    }
    EXPECT_EQ(gc.PendingGarbage(), 30u);
  }
  EXPECT_EQ(freed.load(), 20);
}

// Tentpole acceptance (EpochGC level): a parked reader pins its own
// epoch only. Pre-park garbage keeps draining while it sleeps, garbage
// accumulated during the park is bounded by what writers retire, and the
// backlog drains promptly once the reader exits.
TEST(EpochGCCore, ParkedReaderBoundsGarbageWithoutWedging) {
  EpochGC gc;
  gc.StartBackgroundCollector(std::chrono::hours(1));  // stepped via kicks
  std::atomic<int> freed_before{0};
  std::atomic<int> freed_during{0};

  gc.Retire(&CountingFree, &freed_before, 64);
  EpochSlot* parked = gc.RegisterThread();
  uint64_t passes = gc.CollectorPasses();
  gc.WaitForCollectorPasses(passes + 2);  // advances past the retire epoch
  gc.Enter(parked);                       // park at the advanced epoch

  // Old garbage reclaims while the reader is parked: no wedge.
  passes = gc.CollectorPasses();
  gc.WaitForCollectorPasses(passes + 2);
  EXPECT_EQ(freed_before.load(), 1);

  constexpr int kChurn = 64;
  for (int i = 0; i < kChurn; ++i) gc.Retire(&CountingFree, &freed_during, 32);
  passes = gc.CollectorPasses();
  gc.WaitForCollectorPasses(passes + 2);
  EXPECT_EQ(freed_during.load(), 0) << "parked pin must hold its epoch";
  const uint64_t pinned_bytes = gc.Stats().pending_bytes;
  EXPECT_LE(pinned_bytes, uint64_t{kChurn} * 32)
      << "pending bytes bounded by what writers retired";

  gc.Exit(parked);
  passes = gc.CollectorPasses();
  gc.WaitForCollectorPasses(passes + 2);
  EXPECT_EQ(freed_during.load(), kChurn) << "backlog drains after exit";
  EXPECT_EQ(gc.PendingGarbage(), 0u);
  gc.UnregisterThread(parked);
  gc.StopBackgroundCollector();
}

// Tentpole acceptance (ConcurrentPMA level): a Scan callback parks
// mid-scan holding the epoch guard while writers force resizes that
// retire whole snapshots. Writers must keep making progress (no
// reclamation wedge stalls them), and the retired-snapshot backlog must
// drain once the parked reader finishes.
TEST(EpochGCCore, ParkedScanUnderResizeChurnDrainsAfterRelease) {
  ConcurrentConfig cfg;
  cfg.pma.segment_capacity = 16;
  cfg.segments_per_gate = 4;
  cfg.rebalancer_workers = 2;
  ConcurrentPMA pma(cfg);
  for (Key k = 0; k < 512; ++k) pma.Insert(k * 2, k);
  pma.Flush();

  std::atomic<bool> release{false};
  std::atomic<bool> parked{false};
  std::thread scanner([&] {
    pma.Scan(0, kKeyMax, [&](Key, Value) {
      parked.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return true;
    });
  });
  while (!parked.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Writers churn enough to resize (and thus retire snapshots) several
  // times while the scanner is parked inside its guard.
  const uint64_t resizes_before = pma.num_resizes();
  Key next = 1;
  while (pma.num_resizes() < resizes_before + 2) {
    for (int i = 0; i < 2048; ++i, next += 2) pma.Insert(next, next);
    pma.Flush();
    ASSERT_LT(next, Key{1} << 24) << "writers wedged: resizes not happening";
  }
  EXPECT_GE(pma.ebr_stats().retired_bytes, sizeof(Structure))
      << "resize must retire the old snapshot through the EBR path";

  release.store(true);
  scanner.join();
  pma.Flush();
  pma.epoch_gc().Collect();
  const EpochGCStats after = pma.ebr_stats();
  EXPECT_EQ(after.pending_count, 0u) << "backlog must drain after release";
  EXPECT_EQ(after.freed_bytes, after.retired_bytes);
  EXPECT_GT(after.retired_bytes_hwm, 0u);
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
}

}  // namespace
}  // namespace cpma
