// Unit tests for the common substrate: Status, Random, Zipf/Uniform
// distributions, latches, thread pool and the epoch GC.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/epoch_gc.h"
#include "common/latches.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/zipf.h"

namespace cpma {
namespace {

// ---------------------------------------------------------------- Status

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::KeyNotFound("42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsKeyNotFound());
  EXPECT_EQ(s.message(), "42");
  EXPECT_NE(s.ToString().find("KeyNotFound"), std::string::npos);
}

TEST(Status, DistinguishesCodes) {
  EXPECT_TRUE(Status::KeyAlreadyExists().IsKeyAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_FALSE(Status::Internal().ok());
}

// ---------------------------------------------------------------- Random

TEST(Random, DeterministicPerSeed) {
  Random a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Random, BoundedStaysInRange) {
  Random rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Random, DoubleInUnitInterval) {
  Random rng(2);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, RoughlyUniform) {
  Random rng(3);
  std::vector<int> buckets(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.NextBounded(10)];
  for (int b : buckets) {
    EXPECT_GT(b, kDraws / 10 * 0.9);
    EXPECT_LT(b, kDraws / 10 * 1.1);
  }
}

// ------------------------------------------------------------------ Zipf

TEST(Zipf, SamplesInRange) {
  ZipfDistribution z(1u << 20, 1.0);
  Random rng(4);
  for (int i = 0; i < 100000; ++i) {
    uint64_t v = z.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1u << 20);
  }
}

TEST(Zipf, SkewConcentratesMass) {
  // With alpha = 2 the first value should absorb ~ 1/zeta(2) ~ 61% of
  // the mass; with alpha = 1 much less.
  Random rng(5);
  auto frac_first = [&](double alpha) {
    ZipfDistribution z(1u << 27, alpha);
    int hits = 0;
    const int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) {
      if (z.Sample(rng) == 1) ++hits;
    }
    return static_cast<double>(hits) / kDraws;
  };
  double f2 = frac_first(2.0);
  double f1 = frac_first(1.0);
  EXPECT_GT(f2, 0.5);
  EXPECT_LT(f1, 0.2);
  EXPECT_GT(f2, f1);
}

TEST(Zipf, HigherAlphaLowerMedianValue) {
  Random rng(6);
  auto median = [&](double alpha) {
    ZipfDistribution z(1u << 24, alpha);
    std::vector<uint64_t> v(10001);
    for (auto& x : v) x = z.Sample(rng);
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  EXPECT_LT(median(2.0), median(1.0));
}

TEST(KeyDistribution, UniformCoversRange) {
  Random rng(7);
  auto d = KeyDistribution::Uniform(100);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(d.Sample(rng));
  EXPECT_GT(seen.size(), 95u);
  EXPECT_GE(*seen.begin(), 1u);
  EXPECT_LE(*seen.rbegin(), 100u);
}

TEST(KeyDistribution, TaggedDispatch) {
  Random rng(8);
  auto u = KeyDistribution::Uniform(10);
  auto z = KeyDistribution::Zipf(10, 1.5);
  EXPECT_FALSE(u.is_zipf());
  EXPECT_TRUE(z.is_zipf());
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(u.Sample(rng), 10u);
    EXPECT_LE(z.Sample(rng), 10u);
  }
}

// --------------------------------------------------------------- Latches

TEST(SpinLock, MutualExclusion) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 80000);
}

TEST(SpinLock, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(OptimisticLock, ReadValidatesWhenQuiescent) {
  OptimisticLock l;
  bool ok = false;
  uint64_t v = l.ReadLockOrRestart(ok);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(l.CheckOrRestart(v));
}

TEST(OptimisticLock, WriteInvalidatesReaders) {
  OptimisticLock l;
  bool ok = false;
  uint64_t v = l.ReadLockOrRestart(ok);
  ASSERT_TRUE(ok);
  ASSERT_TRUE(l.WriteLock());
  l.WriteUnlock();
  EXPECT_FALSE(l.CheckOrRestart(v));
}

TEST(OptimisticLock, UpgradeFailsAfterWrite) {
  OptimisticLock l;
  bool ok = false;
  uint64_t v = l.ReadLockOrRestart(ok);
  ASSERT_TRUE(l.WriteLock());
  l.WriteUnlock();
  EXPECT_FALSE(l.UpgradeToWriteLock(v));
}

TEST(OptimisticLock, ObsoleteNodesRejectAccess) {
  OptimisticLock l;
  ASSERT_TRUE(l.WriteLock());
  l.WriteUnlockObsolete();
  EXPECT_TRUE(l.IsObsolete());
  bool ok = true;
  l.ReadLockOrRestart(ok);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(l.WriteLock());
}

TEST(OptimisticLock, ConcurrentWritersCount) {
  OptimisticLock l;
  std::atomic<int> counter{0};
  int shared = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(l.WriteLock());
        ++shared;
        l.WriteUnlock();
        counter.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(shared, 20000);
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  WaitGroup wg;
  wg.Add(100);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      done.fetch_add(1);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ParallelismActuallyHappens) {
  ThreadPool pool(4);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  WaitGroup wg;
  wg.Add(8);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      int now = inside.fetch_add(1) + 1;
      int prev = max_inside.load();
      while (now > prev && !max_inside.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      inside.fetch_sub(1);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_GE(max_inside.load(), 2);
}

TEST(WaitGroup, Reusable) {
  WaitGroup wg;
  for (int round = 0; round < 3; ++round) {
    wg.Add(2);
    std::thread a([&] { wg.Done(); });
    std::thread b([&] { wg.Done(); });
    wg.Wait();
    a.join();
    b.join();
  }
  SUCCEED();
}

// -------------------------------------------------------------- EpochGC

TEST(EpochGC, RetiredMemoryFreedWhenNoReaders) {
  EpochGC gc;
  std::atomic<int> freed{0};
  gc.Retire([&] { freed.fetch_add(1); });
  EXPECT_EQ(gc.PendingGarbage(), 1u);
  gc.Collect();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(gc.PendingGarbage(), 0u);
}

TEST(EpochGC, ActiveReaderBlocksCollection) {
  EpochGC gc;
  std::atomic<int> freed{0};
  EpochSlot* slot = gc.RegisterThread();
  gc.Enter(slot);
  gc.Retire([&] { freed.fetch_add(1); });
  gc.Collect();
  EXPECT_EQ(freed.load(), 0) << "reader in older epoch must block frees";
  gc.Exit(slot);
  gc.Collect();
  EXPECT_EQ(freed.load(), 1);
  gc.UnregisterThread(slot);
}

// Observe-don't-advance (ISSUE 6): a reader pinned at epoch E keeps
// epoch-E garbage alive, but once the epoch has advanced past E, a NEW
// reader (which observes the advanced epoch) does not wedge the older
// garbage — reclamation is blocked only by genuinely older pins.
TEST(EpochGC, ReaderInNewerEpochDoesNotBlockOlderGarbage) {
  EpochGC gc;
  std::atomic<int> freed{0};
  EpochSlot* parked = gc.RegisterThread();
  gc.Enter(parked);  // pins the retire epoch
  gc.Retire([&] { freed.fetch_add(1); });
  // The parked pin blocks the free, but Collect still advances the
  // global epoch (the parked reader lags by at most one).
  EXPECT_EQ(gc.Collect(), 0u);
  EpochSlot* late = gc.RegisterThread();
  gc.Enter(late);  // observes the advanced epoch
  gc.Exit(parked);
  gc.Collect();
  EXPECT_EQ(freed.load(), 1) << "late reader must not block older garbage";
  gc.Exit(late);
  gc.UnregisterThread(parked);
  gc.UnregisterThread(late);
}

TEST(EpochGC, EpochGuardRefreshAdvancesEpoch) {
  EpochGC gc;
  std::atomic<int> freed{0};
  {
    EpochGuard guard(gc);
    gc.Retire([&] { freed.fetch_add(1); });
    gc.Collect();
    EXPECT_EQ(freed.load(), 0);
    guard.Refresh();  // new epoch is newer than the garbage
    gc.Collect();
    EXPECT_EQ(freed.load(), 1);
  }
}

// Deterministic (ISSUE 6 satellite): instead of sleep-and-hope, step the
// collector via its pass counter. A pass may have been mid-flight (and
// missed the retirement) when the counter was read, so wait for two full
// passes — the second is guaranteed to start after the Retire.
TEST(EpochGC, BackgroundCollectorFreesDeterministically) {
  EpochGC gc;
  // An hour-long period proves the waits below drive the collector via
  // kicks, not timing.
  gc.StartBackgroundCollector(std::chrono::hours(1));
  std::atomic<int> freed{0};
  const uint64_t passes = gc.CollectorPasses();
  gc.Retire([&] { freed.fetch_add(1); });
  gc.WaitForCollectorPasses(passes + 2);
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(gc.PendingGarbage(), 0u);
  gc.StopBackgroundCollector();
}

TEST(EpochGC, ManyThreadsChurn) {
  EpochGC gc;
  std::atomic<int> freed{0};
  std::atomic<int> retired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        EpochGuard guard(gc);
        gc.Retire([&] { freed.fetch_add(1); });
        retired.fetch_add(1);
        if (i % 10 == 0) gc.Collect();
      }
    });
  }
  for (auto& t : threads) t.join();
  gc.Collect();
  EXPECT_EQ(freed.load(), retired.load());
}

TEST(EpochGC, DestructorFreesLeftovers) {
  std::atomic<int> freed{0};
  {
    EpochGC gc;
    gc.Retire([&] { freed.fetch_add(1); });
  }
  EXPECT_EQ(freed.load(), 1);
}

}  // namespace
}  // namespace cpma
