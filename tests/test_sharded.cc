// Sharded front end (ISSUE 8): router, coalescing front door, ordered
// cross-shard scans, and shard-local fault containment.
//
// Dual-labeled unit+concurrent (tests/CMakeLists.txt): the unit pass
// runs the deterministic router/cursor/batch scenarios; the concurrent
// pass re-runs everything under TSan, where the coalescing flush
// hand-off (append lock -> flush lock -> UpdateBatch block stamping)
// and the k-way merged scans against live writers must stay race-free.
//
//  - Router*: range partition edge cases (domain ends, custom splitter
//    boundaries, monotonicity), hash partition coverage + stability.
//  - ScanCursor*: the pull-based chunk cursor underlying the merge —
//    concatenated chunks == the sorted range, trimming, empty ranges.
//  - UpdateBatch*: block stamp reservation applies a producer-ordered
//    run exactly like one-by-one issue (same-key runs: last op wins).
//  - Coalescing*: staged ops are invisible until a size/age/Flush
//    trigger; the age flusher bounds visibility lag without Flush().
//  - FifoThroughCoalescing (storm, x3 async modes): the ISSUE 5 storm
//    driven through the coalescing front door — 3 writers, same-key
//    bursts, tiny segments — per-key last-issued-op must win exactly.
//  - ScanUnderWriters: ordered cross-shard scans (range concatenation
//    AND hash k-way merge) stay strictly ascending while writers mutate
//    every shard.
//  - ChaosShardLocal: with rewiring.memfd failing process-wide, only
//    the shard that resizes degrades to the copy-publish backend; the
//    idle shards stay healthy and every op still applies (containment:
//    a fault amplified by load on one key range cannot take the whole
//    fleet's publish path down).
//  - EnvKnobs: CPMA_SHARDS / CPMA_COALESCE_OPS / CPMA_COALESCE_AGE_MS
//    override the config; garbage values are ignored with a warning.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "concurrent/concurrent_pma.h"
#include "sharded/sharded_pma.h"

namespace cpma {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { unsetenv(name_.c_str()); }

 private:
  std::string name_;
};

/// Tiny per-shard geometry (see test_reroute_order.cc): 4-slot
/// segments, 2 per gate, so fences move and resizes trigger constantly
/// under storm load.
ConcurrentConfig TinyShard(ConcurrentConfig::AsyncMode mode) {
  ConcurrentConfig cfg;
  cfg.pma.segment_capacity = 4;
  cfg.pma.initial_num_segments = 4;
  cfg.segments_per_gate = 2;
  cfg.rebalancer_workers = 1;
  cfg.async_mode = mode;
  cfg.t_delay_ms = 1;
  return cfg;
}

ShardedConfig TinySharded(size_t shards, ShardedConfig::Partition part,
                          size_t coalesce = 0,
                          ConcurrentConfig::AsyncMode mode =
                              ConcurrentConfig::AsyncMode::kSync) {
  ShardedConfig cfg;
  cfg.shard = TinyShard(mode);
  cfg.num_shards = shards;
  cfg.partition = part;
  cfg.coalesce_ops = coalesce;
  cfg.coalesce_age_ms = 1;
  return cfg;
}

// ------------------------------------------------------------- router

TEST(Router, RangeDefaultSplittersCoverTheDomain) {
  ShardedPMA pma(TinySharded(4, ShardedConfig::Partition::kRange));
  EXPECT_EQ(pma.ShardOf(kKeyMin), 0u);
  EXPECT_EQ(pma.ShardOf(kKeyMax), 3u);
  // Monotone non-decreasing over an ascending key sweep.
  size_t prev = 0;
  std::set<size_t> seen;
  for (Key k = 0; k < 64; ++k) {
    const Key key = (kKeyMax / 63) * k;
    const size_t s = pma.ShardOf(key);
    ASSERT_GE(s, prev) << "router not monotone at key " << key;
    ASSERT_LT(s, 4u);
    prev = s;
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 4u) << "uniform split left a shard unreachable";
}

TEST(Router, RangeCustomSplitterBoundaries) {
  ShardedConfig cfg = TinySharded(4, ShardedConfig::Partition::kRange);
  cfg.splitters = {1000, 2000, 3000};
  ShardedPMA pma(cfg);
  // A splitter is the LOWEST key of the right-hand shard.
  EXPECT_EQ(pma.ShardOf(0), 0u);
  EXPECT_EQ(pma.ShardOf(999), 0u);
  EXPECT_EQ(pma.ShardOf(1000), 1u);
  EXPECT_EQ(pma.ShardOf(1999), 1u);
  EXPECT_EQ(pma.ShardOf(2000), 2u);
  EXPECT_EQ(pma.ShardOf(2999), 2u);
  EXPECT_EQ(pma.ShardOf(3000), 3u);
  EXPECT_EQ(pma.ShardOf(kKeyMax), 3u);
}

TEST(Router, SingleShardRoutesEverythingToZero) {
  ShardedPMA pma(TinySharded(1, ShardedConfig::Partition::kRange));
  EXPECT_EQ(pma.ShardOf(kKeyMin), 0u);
  EXPECT_EQ(pma.ShardOf(kKeyMax), 0u);
  EXPECT_EQ(pma.num_shards(), 1u);
}

TEST(Router, HashCoversAllShardsAndIsStable) {
  ShardedPMA pma(TinySharded(4, ShardedConfig::Partition::kHash));
  std::set<size_t> seen;
  for (Key k = 0; k < 4096; ++k) {
    const size_t s = pma.ShardOf(k);
    ASSERT_LT(s, 4u);
    ASSERT_EQ(s, pma.ShardOf(k)) << "router not deterministic";
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 4u) << "splitmix64 left a shard empty on 4k keys";
}

// --------------------------------------------------------- scan cursor

TEST(ScanCursor, ChunksConcatenateToTheSortedRange) {
  ConcurrentPMA pma(TinyShard(ConcurrentConfig::AsyncMode::kSync));
  std::vector<Key> keys;
  for (Key k = 10; k <= 1000; k += 10) {
    keys.push_back(k);
    pma.Insert(k, k * 2);
  }
  pma.Flush();

  ConcurrentPMA::ScanCursor cur(pma, kKeyMin, kKeyMax);
  std::vector<Item> chunk;
  std::vector<Item> all;
  while (cur.NextChunk(&chunk)) {
    ASSERT_FALSE(chunk.empty()) << "NextChunk returned true with no items";
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  ASSERT_EQ(all.size(), keys.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].key, keys[i]);
    EXPECT_EQ(all[i].value, keys[i] * 2);
    if (i > 0) {
      ASSERT_GT(all[i].key, all[i - 1].key);
    }
  }
}

TEST(ScanCursor, TrimsToTheRequestedRange) {
  ConcurrentPMA pma(TinyShard(ConcurrentConfig::AsyncMode::kSync));
  for (Key k = 1; k <= 200; ++k) pma.Insert(k, k);
  pma.Flush();

  ConcurrentPMA::ScanCursor cur(pma, 50, 150);
  std::vector<Item> chunk;
  std::vector<Key> got;
  while (cur.NextChunk(&chunk)) {
    for (const Item& it : chunk) got.push_back(it.key);
  }
  ASSERT_EQ(got.size(), 101u);
  EXPECT_EQ(got.front(), 50u);
  EXPECT_EQ(got.back(), 150u);
}

TEST(ScanCursor, EmptyAndInvertedRanges) {
  ConcurrentPMA pma(TinyShard(ConcurrentConfig::AsyncMode::kSync));
  pma.Insert(100, 1);
  pma.Flush();
  std::vector<Item> chunk;
  {
    ConcurrentPMA::ScanCursor cur(pma, 200, 100);  // min > max
    EXPECT_FALSE(cur.NextChunk(&chunk));
  }
  {
    ConcurrentPMA::ScanCursor cur(pma, 101, 99999);  // nothing in range
    EXPECT_FALSE(cur.NextChunk(&chunk));
  }
}

// -------------------------------------------------------- update batch

TEST(UpdateBatch, AppliesAProducerOrderedRunExactly) {
  ConcurrentPMA pma(TinyShard(ConcurrentConfig::AsyncMode::kOneByOne));
  // Same-key runs: the LAST op of the run must win (block stamps
  // reproduce issue order). Key 7: insert 1, insert 2, remove, insert 3.
  std::vector<GateOp> ops = {
      {GateOp::Type::kInsert, 7, 1, 0},  {GateOp::Type::kInsert, 5, 50, 0},
      {GateOp::Type::kInsert, 7, 2, 0},  {GateOp::Type::kRemove, 7, 0, 0},
      {GateOp::Type::kInsert, 9, 90, 0}, {GateOp::Type::kInsert, 7, 3, 0},
  };
  pma.UpdateBatch(ops.data(), ops.size());
  pma.UpdateBatch(nullptr, 0);  // n = 0 is a no-op
  pma.Flush();

  Value v = 0;
  ASSERT_TRUE(pma.Find(7, &v));
  EXPECT_EQ(v, 3u);
  ASSERT_TRUE(pma.Find(5, &v));
  EXPECT_EQ(v, 50u);
  ASSERT_TRUE(pma.Find(9, &v));
  EXPECT_EQ(v, 90u);
  EXPECT_EQ(pma.Size(), 3u);
}

// ---------------------------------------------------------- coalescing

TEST(Coalescing, StagedOpsBecomeVisibleOnFlush) {
  ShardedConfig cfg = TinySharded(2, ShardedConfig::Partition::kRange,
                                  /*coalesce=*/1000);
  cfg.coalesce_age_ms = 0;  // no ager: only Flush() can drain
  ShardedPMA pma(cfg);
  for (Key k = 1; k <= 10; ++k) pma.Insert(k, k);
  Value v = 0;
  EXPECT_FALSE(pma.Find(1, &v)) << "staged op visible before any flush";
  pma.Flush();
  for (Key k = 1; k <= 10; ++k) {
    ASSERT_TRUE(pma.Find(k, &v)) << "key " << k;
    EXPECT_EQ(v, k);
  }
  const auto st = pma.GetStats();
  EXPECT_EQ(st.coalesced_ops, 10u);
  EXPECT_EQ(st.direct_ops, 0u);
  EXPECT_GE(st.coalesced_flushes, 1u);
}

TEST(Coalescing, SizeTriggerFlushesWithoutExplicitFlush) {
  ShardedConfig cfg = TinySharded(1, ShardedConfig::Partition::kRange,
                                  /*coalesce=*/4);
  cfg.coalesce_age_ms = 0;
  ShardedPMA pma(cfg);
  for (Key k = 1; k <= 4; ++k) pma.Insert(k, k);  // 4th hits the trigger
  pma.shard(0).Flush();  // drain the shard's async queues only
  Value v = 0;
  EXPECT_TRUE(pma.Find(1, &v)) << "size trigger did not flush the run";
  EXPECT_EQ(pma.GetStats().coalesced_flushes, 1u);
}

TEST(Coalescing, AgeFlusherBoundsVisibilityLag) {
  ShardedConfig cfg = TinySharded(2, ShardedConfig::Partition::kRange,
                                  /*coalesce=*/1000);
  cfg.coalesce_age_ms = 1;
  ShardedPMA pma(cfg);
  pma.Insert(42, 4242);
  // One staged op, far below the size trigger: only the ager can
  // deliver it. Poll with a generous deadline (CI boxes stall).
  Value v = 0;
  bool seen = false;
  for (int i = 0; i < 2000 && !seen; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    seen = pma.Find(42, &v);
  }
  ASSERT_TRUE(seen) << "age flusher never delivered the staged op";
  EXPECT_EQ(v, 4242u);
  EXPECT_GE(pma.GetStats().age_flushes, 1u);
}

// --------------------------------------------------- fifo storm (x3)

struct StormParam {
  ConcurrentConfig::AsyncMode mode;
  const char* name;
};

class FifoThroughCoalescing : public ::testing::TestWithParam<StormParam> {};

// The ISSUE 5 storm (test_reroute_order.cc) driven through the sharded
// coalescing front door: 3 writers, per-key monotone values, bursts of
// same-key ops with no flush in between, 4 hash shards (one writer's
// stream spans every shard), coalesce runs of 8 racing the 1 ms age
// flusher. Per-key, per-producer FIFO must survive the staging layer:
// the final state is exactly the last issued op per key.
TEST_P(FifoThroughCoalescing, LastIssuedOpWinsPerKey) {
  ShardedPMA pma(TinySharded(4, ShardedConfig::Partition::kHash,
                             /*coalesce=*/8, GetParam().mode));
  constexpr int kWriters = 3;
  constexpr int kOpsPerWriter = 8000;
  constexpr Key kRange = 1 << 10;

  std::vector<std::map<Key, std::optional<Value>>> last(kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random rng(500 + static_cast<uint64_t>(w));
      auto& mine = last[static_cast<size_t>(w)];
      Value ctr = 0;
      for (int i = 0; i < kOpsPerWriter;) {
        const Key k =
            rng.NextBounded(kRange) * kWriters + static_cast<Key>(w);
        const int burst = 1 + static_cast<int>(rng.NextBounded(4));
        for (int b = 0; b < burst && i < kOpsPerWriter; ++b, ++i) {
          if (rng.NextBounded(4) == 0) {
            pma.Remove(k);
            mine[k] = std::nullopt;
          } else {
            const Value v = ++ctr;
            pma.Insert(k, v);
            mine[k] = v;
          }
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  pma.Flush();

  size_t expected = 0;
  for (int w = 0; w < kWriters; ++w) {
    for (const auto& [k, v] : last[static_cast<size_t>(w)]) {
      Value got = 0;
      const bool found = pma.Find(k, &got);
      if (v.has_value()) {
        ++expected;
        ASSERT_TRUE(found) << "writer " << w << " key " << k;
        ASSERT_EQ(got, *v) << "writer " << w << " key " << k;
      } else {
        ASSERT_FALSE(found) << "writer " << w << " removed key " << k;
      }
    }
  }
  EXPECT_EQ(pma.Size(), expected);
  for (size_t s = 0; s < pma.num_shards(); ++s) {
    std::string err;
    EXPECT_TRUE(pma.shard(s).CheckInvariants(&err))
        << "shard " << s << ": " << err;
  }
  // Everything went through staging, nothing took the direct path.
  const auto st = pma.GetStats();
  EXPECT_EQ(st.direct_ops, 0u);
  EXPECT_EQ(st.coalesced_ops,
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, FifoThroughCoalescing,
    ::testing::Values(
        StormParam{ConcurrentConfig::AsyncMode::kSync, "sync"},
        StormParam{ConcurrentConfig::AsyncMode::kOneByOne, "1by1"},
        StormParam{ConcurrentConfig::AsyncMode::kBatch, "batch"}),
    [](const ::testing::TestParamInfo<StormParam>& info) {
      return std::string(info.param.name);
    });

// ------------------------------------------------- scans under writers

void ScanOrderingUnderWriters(ShardedConfig::Partition part) {
  ShardedPMA pma(TinySharded(4, part, /*coalesce=*/8,
                             ConcurrentConfig::AsyncMode::kOneByOne));
  constexpr int kWriters = 2;
  constexpr Key kRange = 1 << 12;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random rng(900 + static_cast<uint64_t>(w));
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        pma.Insert(rng.NextBounded(kRange), ++i);
        if (rng.NextBounded(8) == 0) pma.Remove(rng.NextBounded(kRange));
      }
    });
  }
  // Ordered scans while every shard mutates: strictly ascending keys,
  // both for full-range and for a mid-range window.
  for (int pass = 0; pass < 50; ++pass) {
    const Key lo = pass % 2 == 0 ? kKeyMin : kRange / 4;
    const Key hi = pass % 2 == 0 ? kKeyMax : (3 * kRange) / 4;
    Key prev = 0;
    bool first = true;
    pma.Scan(lo, hi, [&](Key k, Value) {
      EXPECT_TRUE(first || k > prev)
          << "out-of-order emission: " << prev << " then " << k;
      EXPECT_GE(k, lo);
      EXPECT_LE(k, hi);
      first = false;
      prev = k;
      return true;
    });
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  pma.Flush();

  // Quiesced: the ordered scan agrees with per-shard SumAll exactly.
  uint64_t scan_sum = 0;
  size_t scan_count = 0;
  pma.Scan(kKeyMin, kKeyMax, [&](Key, Value v) {
    scan_sum += v;
    ++scan_count;
    return true;
  });
  EXPECT_EQ(scan_sum, pma.SumAll());
  EXPECT_EQ(scan_count, pma.Size());
}

TEST(ShardedScan, RangeConcatenationStaysOrderedUnderWriters) {
  ScanOrderingUnderWriters(ShardedConfig::Partition::kRange);
}

TEST(ShardedScan, HashMergeStaysOrderedUnderWriters) {
  ScanOrderingUnderWriters(ShardedConfig::Partition::kHash);
}

TEST(ShardedScan, EarlyStopIsHonored) {
  ShardedPMA pma(TinySharded(4, ShardedConfig::Partition::kHash));
  for (Key k = 1; k <= 100; ++k) pma.Insert(k, k);
  pma.Flush();
  size_t seen = 0;
  pma.Scan(kKeyMin, kKeyMax, [&](Key, Value) { return ++seen < 10; });
  EXPECT_EQ(seen, 10u);
}

// ------------------------------------------------------ chaos (shard-local)

// Process-wide fault, shard-local blast radius: with rewiring.memfd
// failing for every NEW storage, only the shard that resizes under load
// degrades to the copy-publish backend. The untouched shards keep their
// healthy mappings — and every op still lands.
TEST(ChaosShardLocal, DegradationStaysOnTheLoadedShard) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out (CPMA_ENABLE_FAILPOINTS=OFF)";
  }
  failpoint::ClearAll();
  ShardedConfig cfg = TinySharded(4, ShardedConfig::Partition::kRange,
                                  /*coalesce=*/8,
                                  ConcurrentConfig::AsyncMode::kOneByOne);
  cfg.splitters = {10000, 20000, 30000};
  ShardedPMA pma(cfg);  // initial storages created healthy

  ASSERT_TRUE(failpoint::Set("rewiring.memfd", "always"));
  // Storm shard 0's key range only, from two threads, until it resized.
  constexpr int kWriters = 2;
  constexpr int kOps = 2000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random rng(1200 + static_cast<uint64_t>(w));
      for (int i = 0; i < kOps; ++i) {
        pma.Insert(rng.NextBounded(10000), static_cast<Value>(i));
      }
    });
  }
  for (auto& t : writers) t.join();
  pma.Flush();
  failpoint::ClearAll();

  ASSERT_GT(pma.shard(0).num_resizes(), 0u)
      << "scenario failed to resize the loaded shard";
  EXPECT_TRUE(pma.shard(0).fallback_backend_active())
      << "resized-under-fault shard should publish by copy";
  for (size_t s = 1; s < pma.num_shards(); ++s) {
    EXPECT_EQ(pma.shard(s).num_resizes(), 0u) << "shard " << s;
    EXPECT_FALSE(pma.shard(s).fallback_backend_active())
        << "idle shard " << s << " degraded";
  }
  EXPECT_EQ(pma.GetStats().degraded_shards, 1u);

  // Containment is not data loss: everything is present and sane.
  uint64_t count = 0;
  Key prev = 0;
  bool first = true;
  pma.Scan(kKeyMin, kKeyMax, [&](Key k, Value) {
    EXPECT_TRUE(first || k > prev);
    first = false;
    prev = k;
    ++count;
    return true;
  });
  EXPECT_EQ(count, pma.Size());
  for (size_t s = 0; s < pma.num_shards(); ++s) {
    std::string err;
    EXPECT_TRUE(pma.shard(s).CheckInvariants(&err))
        << "shard " << s << ": " << err;
  }
}

// ------------------------------------------------------------ env knobs

TEST(ShardedEnvKnobs, OverrideConfigStrictly) {
  {
    ScopedEnv env("CPMA_SHARDS", "8");
    ShardedPMA pma(TinySharded(2, ShardedConfig::Partition::kRange));
    EXPECT_EQ(pma.num_shards(), 8u);
  }
  {
    ScopedEnv env("CPMA_COALESCE_OPS", "16");
    ShardedPMA pma(TinySharded(2, ShardedConfig::Partition::kRange));
    EXPECT_EQ(pma.coalesce_ops(), 16u);
  }
  {
    ScopedEnv env("CPMA_COALESCE_AGE_MS", "7");
    ShardedPMA pma(TinySharded(2, ShardedConfig::Partition::kRange,
                               /*coalesce=*/8));
    EXPECT_EQ(pma.coalesce_age_ms(), 7);
  }
  {
    // Garbage must not silently change the fleet size.
    ScopedEnv env("CPMA_SHARDS", "many");
    ShardedPMA pma(TinySharded(2, ShardedConfig::Partition::kRange));
    EXPECT_EQ(pma.num_shards(), 2u);
  }
}

}  // namespace
}  // namespace cpma
