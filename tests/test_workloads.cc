// Tests for the YCSB workload generator (bench/workloads.h) and the
// tail-attribution machinery (TailEventRing / TailRecorder): generator
// determinism, mix proportions and skew over large draws, and the
// event-ring / slow-op attribution contracts the bench drivers rely on.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "../bench/workloads.h"
#include "concurrent/event_ring.h"

// TailRecorder lives in the bench driver header; it only needs the
// flag/JSON-free parts, which are header-only.
#include "../bench/driver.h"

namespace cpma {
namespace {

using bench::Chooser;
using bench::FindMix;
using bench::MixSpec;
using bench::TailRecorder;
using bench::WorkloadGenerator;
using bench::YcsbOp;
using bench::YcsbOpSpec;

// ---------------------------------------------------------------------------
// Workload generator: determinism.

TEST(Workloads, SameSeedSameSequence) {
  const MixSpec* mix = FindMix('A');
  ASSERT_NE(mix, nullptr);
  WorkloadGenerator g1(*mix, /*records=*/10000, /*thread=*/0,
                       /*threads=*/4, /*seed=*/42);
  WorkloadGenerator g2(*mix, 10000, 0, 4, 42);
  for (int i = 0; i < 10000; ++i) {
    const YcsbOpSpec a = g1.Next();
    const YcsbOpSpec b = g2.Next();
    ASSERT_EQ(a.op, b.op) << "op " << i;
    ASSERT_EQ(a.key, b.key) << "op " << i;
    ASSERT_EQ(a.scan_len, b.scan_len) << "op " << i;
  }
}

TEST(Workloads, DifferentThreadsDifferentStreams) {
  const MixSpec* mix = FindMix('A');
  ASSERT_NE(mix, nullptr);
  WorkloadGenerator g0(*mix, 10000, 0, 4, 42);
  WorkloadGenerator g1(*mix, 10000, 1, 4, 42);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    const YcsbOpSpec a = g0.Next();
    const YcsbOpSpec b = g1.Next();
    if (a.op == b.op && a.key == b.key) ++same;
  }
  // Streams are independent; a handful of coincidences is fine, a
  // mostly-identical stream is a seeding bug.
  EXPECT_LT(same, 100);
}

TEST(Workloads, InsertKeysDisjointAcrossThreads) {
  const MixSpec* mix = FindMix('D');
  ASSERT_NE(mix, nullptr);
  const uint64_t records = 5000;
  std::set<Key> seen;
  for (uint64_t t = 0; t < 4; ++t) {
    WorkloadGenerator g(*mix, records, t, 4, 7);
    for (int i = 0; i < 2000; ++i) {
      const YcsbOpSpec op = g.Next();
      if (op.op != YcsbOp::kInsert) continue;
      EXPECT_GT(op.key, records) << "inserts go above the preload";
      EXPECT_TRUE(seen.insert(op.key).second)
          << "insert key collided across threads: " << op.key;
    }
  }
}

// ---------------------------------------------------------------------------
// Workload generator: mix proportions and skew over 1M draws.

TEST(Workloads, MixProportionsWithinTolerance) {
  const size_t kDraws = 1u << 20;
  for (char m : {'A', 'B', 'C', 'D', 'E', 'F'}) {
    const MixSpec* mix = FindMix(m);
    ASSERT_NE(mix, nullptr) << m;
    WorkloadGenerator g(*mix, 100000, 0, 1, 99);
    size_t counts[bench::kNumYcsbOps] = {};
    for (size_t i = 0; i < kDraws; ++i) {
      ++counts[static_cast<size_t>(g.Next().op)];
    }
    const double want[bench::kNumYcsbOps] = {mix->read, mix->update,
                                             mix->insert, mix->scan,
                                             mix->rmw};
    for (size_t op = 0; op < bench::kNumYcsbOps; ++op) {
      const double got =
          static_cast<double>(counts[op]) / static_cast<double>(kDraws);
      EXPECT_NEAR(got, want[op], 0.005)
          << "mix " << m << " op " << bench::YcsbOpName(
                 static_cast<YcsbOp>(op));
    }
  }
}

TEST(Workloads, ZipfianIsSkewedAndInRange) {
  const MixSpec* mix = FindMix('C');  // 100% zipfian reads
  ASSERT_NE(mix, nullptr);
  const uint64_t records = 100000;
  const size_t kDraws = 1u << 20;
  WorkloadGenerator g(*mix, records, 0, 1, 3);
  std::map<Key, size_t> freq;
  for (size_t i = 0; i < kDraws; ++i) {
    const Key k = g.Next().key;
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, records);
    ++freq[k];
  }
  // Sort by frequency: under zipf(0.99) over 100k records the hottest
  // handful of keys should own a clearly super-uniform share. Uniform
  // would give each key ~10.5 draws; the #1 zipf key gets ~5-6% of all
  // draws. Use a very loose bound so this never flakes.
  std::vector<size_t> by_freq;
  by_freq.reserve(freq.size());
  for (const auto& kv : freq) by_freq.push_back(kv.second);
  std::sort(by_freq.rbegin(), by_freq.rend());
  EXPECT_GT(by_freq[0], kDraws / 100)
      << "hottest zipf key should own >1% of draws";
  size_t top10 = 0;
  for (size_t i = 0; i < 10 && i < by_freq.size(); ++i) top10 += by_freq[i];
  EXPECT_GT(top10, kDraws / 5)
      << "10 hottest zipf keys should own >20% of draws";
  // Scrambling spreads hot ranks over the key space: the two hottest
  // keys should not be adjacent small keys (1,2,...).
  EXPECT_GT(freq.size(), 10000u) << "tail keys must still appear";
}

TEST(Workloads, LatestChooserReadsNearFrontier) {
  const MixSpec* mix = FindMix('D');  // 95r/5i, latest
  ASSERT_NE(mix, nullptr);
  const uint64_t records = 100000;
  WorkloadGenerator g(*mix, records, 0, 1, 11);
  const size_t kDraws = 1u << 20;
  size_t near = 0, reads = 0;
  for (size_t i = 0; i < kDraws; ++i) {
    const YcsbOpSpec op = g.Next();
    if (op.op != YcsbOp::kRead) continue;
    ++reads;
    // "Latest" means most reads land close behind the insert frontier.
    if (op.key + 1000 >= g.frontier()) ++near;
  }
  ASSERT_GT(reads, 0u);
  EXPECT_GT(static_cast<double>(near) / static_cast<double>(reads), 0.5)
      << "latest chooser must concentrate reads near the frontier";
}

TEST(Workloads, ScanLengthsBoundedWithSaneMean) {
  const MixSpec* mix = FindMix('E');
  ASSERT_NE(mix, nullptr);
  WorkloadGenerator g(*mix, 100000, 0, 1, 5);
  uint64_t total = 0, scans = 0;
  for (int i = 0; i < 200000; ++i) {
    const YcsbOpSpec op = g.Next();
    if (op.op != YcsbOp::kScan) continue;
    ASSERT_GE(op.scan_len, 1u);
    ASSERT_LE(op.scan_len, mix->max_scan_len);
    total += op.scan_len;
    ++scans;
  }
  ASSERT_GT(scans, 0u);
  const double mean =
      static_cast<double>(total) / static_cast<double>(scans);
  // Uniform over [1,100] -> mean 50.5; allow generous slack.
  EXPECT_GT(mean, 40.0);
  EXPECT_LT(mean, 61.0);
}

// ---------------------------------------------------------------------------
// TailEventRing.

TEST(TailEventRing, DisabledIsNoOp) {
  TailEventRing ring;
  ring.Record(TailEvent::kResize, 100, 200);
  ring.RecordInstant(TailEvent::kWatchdogStall);
  EXPECT_EQ(ring.count(TailEvent::kResize), 0u);
  EXPECT_EQ(ring.count(TailEvent::kWatchdogStall), 0u);
  std::vector<TailEventRecord> out;
  ring.Drain(&out);
  EXPECT_TRUE(out.empty());
}

TEST(TailEventRing, RecordCountDrainReset) {
  TailEventRing ring;
  ring.Enable();
  ring.Record(TailEvent::kRebalanceWindow, 100, 250);
  ring.Record(TailEvent::kResize, 300, 900);
  ring.RecordInstant(TailEvent::kReadFallback);
  EXPECT_EQ(ring.count(TailEvent::kRebalanceWindow), 1u);
  EXPECT_EQ(ring.count(TailEvent::kResize), 1u);
  EXPECT_EQ(ring.count(TailEvent::kReadFallback), 1u);
  std::vector<TailEventRecord> out;
  ring.Drain(&out);
  ASSERT_EQ(out.size(), 3u);
  bool saw_rebalance = false;
  for (const TailEventRecord& e : out) {
    if (e.type == TailEvent::kRebalanceWindow) {
      saw_rebalance = true;
      EXPECT_EQ(e.start_ns, 100u);
      EXPECT_EQ(e.end_ns, 250u);
    }
  }
  EXPECT_TRUE(saw_rebalance);
  ring.Reset();
  EXPECT_EQ(ring.count(TailEvent::kRebalanceWindow), 0u);
  out.clear();
  ring.Drain(&out);
  EXPECT_TRUE(out.empty());
}

TEST(TailEventRing, WrapKeepsNewestCapacityRecords) {
  TailEventRing ring;
  ring.Enable();
  const size_t n = TailEventRing::kCapacity + 100;
  for (size_t i = 0; i < n; ++i) {
    ring.Record(TailEvent::kCoalesceFlush, i, i + 1);
  }
  EXPECT_EQ(ring.count(TailEvent::kCoalesceFlush), n);
  std::vector<TailEventRecord> out;
  ring.Drain(&out);
  EXPECT_EQ(out.size(), TailEventRing::kCapacity);
  // The survivors are the newest kCapacity events.
  for (const TailEventRecord& e : out) {
    EXPECT_GE(e.start_ns, n - TailEventRing::kCapacity);
  }
}

// ---------------------------------------------------------------------------
// TailRecorder.

TEST(TailRecorder, KeepsKSlowest) {
  TailRecorder rec(4);
  // Offer 10 ops with durations 1..10 (start=0..9 scaled).
  for (uint64_t i = 1; i <= 10; ++i) {
    rec.Offer(1000 * i, 1000 * i + i * 10);
  }
  // Attribution with no events: everything in the kept set is "none",
  // and only the 4 slowest survive.
  const TailRecorder::Attribution a = rec.Attribute({});
  EXPECT_EQ(a.ops, 4u);
  EXPECT_EQ(a.none, 4u);
  EXPECT_EQ(a.stall + a.resize + a.rebalance + a.flush + a.fallback, 0u);
  // The fastest kept op had duration 7*10 ns.
  EXPECT_EQ(a.threshold_ns, 70u);
}

TEST(TailRecorder, AttributesByOverlapWithPriority) {
  TailRecorder rec(8);
  rec.Offer(100, 200);  // overlaps rebalance only
  rec.Offer(300, 400);  // overlaps rebalance AND resize -> resize wins
  rec.Offer(500, 600);  // overlaps nothing
  rec.Offer(700, 800);  // overlaps stall AND resize -> stall wins
  std::vector<TailEventRecord> events = {
      {TailEvent::kRebalanceWindow, 150, 350},
      {TailEvent::kResize, 390, 420},
      {TailEvent::kResize, 690, 710},
      {TailEvent::kWatchdogStall, 750, 750},
  };
  const TailRecorder::Attribution a = rec.Attribute(events);
  EXPECT_EQ(a.ops, 4u);
  EXPECT_EQ(a.rebalance, 1u);
  EXPECT_EQ(a.resize, 1u);
  EXPECT_EQ(a.stall, 1u);
  EXPECT_EQ(a.none, 1u);
  EXPECT_EQ(a.flush, 0u);
  EXPECT_EQ(a.fallback, 0u);
}

TEST(TailRecorder, MergeCombinesAcrossThreads) {
  TailRecorder a(4), b(4);
  for (uint64_t i = 1; i <= 4; ++i) a.Offer(0, i * 10);        // 10..40
  for (uint64_t i = 5; i <= 8; ++i) b.Offer(0, i * 10);        // 50..80
  a.Merge(b);
  const TailRecorder::Attribution attr = a.Attribute({});
  EXPECT_EQ(attr.ops, 4u);
  EXPECT_EQ(attr.threshold_ns, 50u);  // 50,60,70,80 survive the merge
}

}  // namespace
}  // namespace cpma
