// Unified conformance + stress tests run against every OrderedMap
// implementation (the four tree baselines and the concurrent PMA), so
// the benchmark comparisons in bench/ compare structures that all pass
// identical semantics checks.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/art/art.h"
#include "baselines/btree/btree.h"
#include "baselines/bwtree/bwtree.h"
#include "baselines/masstree/masstree.h"
#include "common/random.h"
#include "common/zipf.h"
#include "concurrent/concurrent_pma.h"

namespace cpma {
namespace {

struct Factory {
  const char* name;
  std::unique_ptr<OrderedMap> (*make)();
  bool (*check)(OrderedMap*, std::string*);
};

template <typename T>
bool CheckOf(OrderedMap* m, std::string* err) {
  return static_cast<T*>(m)->CheckInvariants(err);
}

const Factory kFactories[] = {
    {"BTree",
     [] { return std::unique_ptr<OrderedMap>(new BTree()); },
     &CheckOf<BTree>},
    {"BTree8K",
     [] { return std::unique_ptr<OrderedMap>(new BTree(8192)); },
     &CheckOf<BTree>},
    {"ART",
     [] { return std::unique_ptr<OrderedMap>(new ArtBTree()); },
     &CheckOf<ArtBTree>},
    {"Masstree",
     [] { return std::unique_ptr<OrderedMap>(new Masstree()); },
     &CheckOf<Masstree>},
    {"BwTree",
     [] { return std::unique_ptr<OrderedMap>(new BwTree()); },
     &CheckOf<BwTree>},
    {"ConcurrentPMA",
     [] { return std::unique_ptr<OrderedMap>(new ConcurrentPMA()); },
     &CheckOf<ConcurrentPMA>},
};

class OrderedMapConformance : public ::testing::TestWithParam<Factory> {};

TEST_P(OrderedMapConformance, BasicSemantics) {
  auto m = GetParam().make();
  EXPECT_EQ(m->Size(), 0u);
  m->Insert(10, 100);
  m->Insert(5, 50);
  m->Insert(10, 101);  // upsert
  m->Flush();
  Value v = 0;
  EXPECT_TRUE(m->Find(10, &v));
  EXPECT_EQ(v, 101u);
  EXPECT_TRUE(m->Find(5, &v));
  EXPECT_FALSE(m->Find(7, &v));
  EXPECT_EQ(m->Size(), 2u);
  m->Remove(10);
  m->Remove(999);  // absent
  m->Flush();
  EXPECT_FALSE(m->Find(10, &v));
  EXPECT_EQ(m->Size(), 1u);
}

TEST_P(OrderedMapConformance, SortedScanAndSum) {
  auto m = GetParam().make();
  uint64_t expect_sum = 0;
  for (Key k = 0; k < 3000; ++k) {
    m->Insert(k * 7 + 1, k);
    expect_sum += k;
  }
  m->Flush();
  EXPECT_EQ(m->SumAll(), expect_sum);
  std::vector<Key> seen;
  m->Scan(0, kKeyMax, [&](Key k, Value) {
    seen.push_back(k);
    return true;
  });
  EXPECT_EQ(seen.size(), 3000u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  // Bounded scan.
  seen.clear();
  m->Scan(8, 22, [&](Key k, Value) {
    seen.push_back(k);
    return true;
  });
  ASSERT_EQ(seen.size(), 3u);  // keys 8, 15, 22
  EXPECT_EQ(seen.front(), 8u);
  EXPECT_EQ(seen.back(), 22u);
}

TEST_P(OrderedMapConformance, RandomProgramMatchesStdMap) {
  auto m = GetParam().make();
  std::map<Key, Value> oracle;
  Random rng(99);
  for (int op = 0; op < 40000; ++op) {
    Key k = rng.NextBounded(8000);
    if (rng.NextBounded(10) < 7) {
      Value v = rng.Next();
      m->Insert(k, v);
      oracle[k] = v;
    } else {
      m->Remove(k);
      oracle.erase(k);
    }
  }
  m->Flush();
  std::string err;
  ASSERT_TRUE(GetParam().check(m.get(), &err)) << err;
  ASSERT_EQ(m->Size(), oracle.size());
  std::vector<std::pair<Key, Value>> got;
  m->Scan(0, kKeyMax, [&](Key k, Value v) {
    got.emplace_back(k, v);
    return true;
  });
  ASSERT_EQ(got.size(), oracle.size());
  auto it = oracle.begin();
  for (size_t i = 0; i < got.size(); ++i, ++it) {
    ASSERT_EQ(got[i].first, it->first);
    ASSERT_EQ(got[i].second, it->second);
  }
}

TEST_P(OrderedMapConformance, SequentialInsertHeavy) {
  auto m = GetParam().make();
  for (Key k = 0; k < 60000; ++k) m->Insert(k, k * 3);
  m->Flush();
  std::string err;
  ASSERT_TRUE(GetParam().check(m.get(), &err)) << err;
  EXPECT_EQ(m->Size(), 60000u);
  Value v;
  for (Key k = 0; k < 60000; k += 1009) {
    ASSERT_TRUE(m->Find(k, &v));
    ASSERT_EQ(v, k * 3);
  }
}

TEST_P(OrderedMapConformance, ConcurrentDisjointWritersWithScans) {
  auto m = GetParam().make();
  constexpr int kWriters = 4;
  constexpr int kOps = 6000;
  std::vector<std::map<Key, Value>> expected(kWriters);
  std::atomic<bool> stop{false};
  std::vector<std::thread> scanners;
  for (int r = 0; r < 2; ++r) {
    scanners.emplace_back([&] {
      uint64_t sink = 0;
      while (!stop.load()) sink += m->SumAll();
      (void)sink;
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random rng(5000 + w);
      ZipfDistribution zipf(1 << 18, 1.1);
      for (int i = 0; i < kOps; ++i) {
        Key k = zipf.Sample(rng) * kWriters + static_cast<Key>(w);
        if (rng.NextBounded(10) < 7) {
          m->Insert(k, k + i);
          expected[w][k] = k + i;
        } else {
          m->Remove(k);
          expected[w].erase(k);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : scanners) t.join();
  m->Flush();
  std::map<Key, Value> oracle;
  for (auto& e : expected) oracle.insert(e.begin(), e.end());
  std::string err;
  ASSERT_TRUE(GetParam().check(m.get(), &err)) << err;
  ASSERT_EQ(m->Size(), oracle.size());
  size_t i = 0;
  bool content_ok = true;
  m->Scan(0, kKeyMax, [&](Key k, Value v) {
    auto it = oracle.find(k);
    content_ok = content_ok && it != oracle.end() && it->second == v;
    ++i;
    return content_ok;
  });
  EXPECT_TRUE(content_ok);
  EXPECT_EQ(i, oracle.size());
}

INSTANTIATE_TEST_SUITE_P(AllStructures, OrderedMapConformance,
                         ::testing::ValuesIn(kFactories),
                         [](const ::testing::TestParamInfo<Factory>& info) {
                           return std::string(info.param.name);
                         });

TEST(BwTreeSpecific, ConsolidationHappens) {
  BwTree t;
  for (Key k = 0; k < 5000; ++k) t.Insert(k, k);
  EXPECT_GT(t.num_consolidations(), 0u);
  std::string err;
  EXPECT_TRUE(t.CheckInvariants(&err)) << err;
}

TEST(BTreeSpecific, LeafSizeControlsCapacity) {
  BTree small(4096), big(8192);
  EXPECT_EQ(small.leaf_capacity() * 2, big.leaf_capacity());
}

}  // namespace
}  // namespace cpma
