// Direct unit tests for the batch-merge spread machinery (paper §3.5):
// CountMerged, PlanMergedSpread, MergedCopyToBuffer, MergedStreamInto
// and CanonicalizeBatch — the code paths the rebalancer uses to fold
// combining queues into window rebalances and resizes.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "concurrent/rebalancer.h"
#include "pma/spread.h"
#include "pma/storage.h"

namespace cpma {
namespace {

// Fill segments with keys 10, 20, 30, ... continuing across segments.
void FillStorage(Storage* st, const std::vector<uint32_t>& cards) {
  Key k = 10;
  for (size_t s = 0; s < cards.size(); ++s) {
    for (uint32_t i = 0; i < cards[s]; ++i) {
      st->segment(s)[i] = {k, k * 2};
      k += 10;
    }
    st->set_card(s, cards[s]);
  }
  st->RebuildRoutes(0, cards.size());
}

std::vector<Item> Dump(const Storage& st) {
  std::vector<Item> out;
  for (size_t s = 0; s < st.num_segments(); ++s) {
    for (uint32_t i = 0; i < st.card(s); ++i) {
      out.push_back(st.segment(s)[i]);
    }
  }
  return out;
}

TEST(CanonicalizeBatch, LastOpPerKeyWins) {
  std::deque<GateOp> q;
  q.push_back({GateOp::Type::kInsert, 5, 100});
  q.push_back({GateOp::Type::kInsert, 3, 1});
  q.push_back({GateOp::Type::kRemove, 5, 0});
  q.push_back({GateOp::Type::kInsert, 5, 200});
  q.push_back({GateOp::Type::kRemove, 3, 0});
  auto batch = CanonicalizeBatch(q);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].key, 3u);
  EXPECT_TRUE(batch[0].is_delete);
  EXPECT_EQ(batch[1].key, 5u);
  EXPECT_FALSE(batch[1].is_delete);
  EXPECT_EQ(batch[1].value, 200u);
}

TEST(CountMerged, ClassifiesInsertsUpsertsDeletes) {
  Storage st(4, 8, true);
  FillStorage(&st, {4, 4, 0, 0});  // keys 10..80
  std::vector<BatchEntry> ops = {
      {15, 1, false},   // new insert
      {20, 9, false},   // upsert (key exists)
      {30, 0, true},    // delete existing
      {99, 0, true},    // delete absent: no-op
      {100, 5, false},  // new insert
  };
  size_t ins = 0, del = 0;
  size_t total = CountMerged(st, 0, 4, ops, &ins, &del);
  EXPECT_EQ(ins, 2u);
  EXPECT_EQ(del, 1u);
  EXPECT_EQ(total, 8u + 2u - 1u);
}

TEST(MergedCopy, ProducesSortedMergedContent) {
  Storage st(4, 8, true);
  FillStorage(&st, {4, 4, 0, 0});
  std::vector<BatchEntry> ops = {
      {15, 1, false}, {20, 9, false}, {30, 0, true}, {100, 5, false}};
  size_t ins = 0, del = 0;
  const size_t total = CountMerged(st, 0, 4, ops, &ins, &del);
  WindowPlan plan = PlanMergedSpread(st, 0, 4, total);
  MergedCopyToBuffer(&st, plan, ops);
  FinishSpread(&st, plan);

  std::map<Key, Value> expect = {{10, 20}, {15, 1},  {20, 9},  {40, 80},
                                 {50, 100}, {60, 120}, {70, 140},
                                 {80, 160}, {100, 5}};
  auto got = Dump(st);
  ASSERT_EQ(got.size(), expect.size());
  auto it = expect.begin();
  for (size_t i = 0; i < got.size(); ++i, ++it) {
    EXPECT_EQ(got[i].key, it->first);
    EXPECT_EQ(got[i].value, it->second);
  }
  // Targets even (traditional policy) and routes rebuilt.
  for (size_t s = 0; s + 1 < 4; ++s) {
    EXPECT_LE(st.card(s + 1) > 0 ? st.card(s) - st.card(s + 1) : 0, 1u);
  }
}

TEST(MergedCopy, DeleteEverything) {
  Storage st(2, 8, true);
  FillStorage(&st, {4, 4});
  std::vector<BatchEntry> ops;
  for (Key k = 10; k <= 80; k += 10) ops.push_back({k, 0, true});
  size_t ins = 0, del = 0;
  const size_t total = CountMerged(st, 0, 2, ops, &ins, &del);
  EXPECT_EQ(total, 0u);
  EXPECT_EQ(del, 8u);
  WindowPlan plan = PlanMergedSpread(st, 0, 2, total);
  MergedCopyToBuffer(&st, plan, ops);
  FinishSpread(&st, plan);
  EXPECT_TRUE(Dump(st).empty());
  EXPECT_EQ(st.route(1), kKeySentinel);
}

TEST(MergedStream, ResizeMergesIntoFreshStorage) {
  Storage old_st(2, 8, true);
  FillStorage(&old_st, {6, 6});  // keys 10..120
  std::vector<BatchEntry> ops = {
      {5, 55, false}, {60, 0, true}, {125, 7, false}};
  size_t ins = 0, del = 0;
  const size_t total =
      CountMerged(old_st, 0, 2, ops, &ins, &del);
  EXPECT_EQ(total, 12u + 2u - 1u);
  Storage fresh(4, 8, true);
  MergedStreamInto(old_st, ops, total, &fresh);
  auto got = Dump(fresh);
  ASSERT_EQ(got.size(), total);
  EXPECT_EQ(got.front().key, 5u);
  EXPECT_EQ(got.back().key, 125u);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(got[i - 1].key, got[i].key);
    EXPECT_NE(got[i].key, 60u);
  }
  // Fresh cards even and routes consistent.
  std::string unused;
  for (size_t s = 1; s < 4; ++s) {
    if (fresh.card(s) > 0) {
      EXPECT_EQ(fresh.route(s), fresh.segment(s)[0].key);
    }
  }
}

TEST(MergedCopy, EmptyBatchIsAPureSpread) {
  Storage st(4, 8, true);
  FillStorage(&st, {7, 1, 0, 2});  // keys 10..100
  std::vector<BatchEntry> ops;  // empty batch: merge degenerates to spread
  size_t ins = 0, del = 0;
  const size_t total = CountMerged(st, 0, 4, ops, &ins, &del);
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(ins, 0u);
  EXPECT_EQ(del, 0u);
  WindowPlan plan = PlanMergedSpread(st, 0, 4, total);
  MergedCopyToBuffer(&st, plan, ops);
  FinishSpread(&st, plan);
  auto got = Dump(st);
  ASSERT_EQ(got.size(), 10u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, (i + 1) * 10);
  }
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_GE(st.card(s), 2u);  // evenly re-spread
    EXPECT_LE(st.card(s), 3u);
  }
}

TEST(MergedCopy, BatchConfinedToOneSegment) {
  // Every batch key lands inside segment 1's key range; the merge must
  // still emit segments 0, 2, 3 as unbroken runs around it.
  Storage st(4, 8, true);
  FillStorage(&st, {4, 4, 4, 4});  // keys 10..160
  std::vector<BatchEntry> ops = {
      {51, 1, false},  // insert inside segment 1
      {60, 9, false},  // upsert of an existing segment-1 key
      {70, 0, true},   // delete a segment-1 key
      {75, 2, false},  // insert inside segment 1
  };
  size_t ins = 0, del = 0;
  const size_t total = CountMerged(st, 0, 4, ops, &ins, &del);
  EXPECT_EQ(ins, 2u);
  EXPECT_EQ(del, 1u);
  EXPECT_EQ(total, 16u + 2u - 1u);
  WindowPlan plan = PlanMergedSpread(st, 0, 4, total);
  MergedCopyToBuffer(&st, plan, ops);
  FinishSpread(&st, plan);
  std::map<Key, Value> expect;
  for (Key k = 10; k <= 160; k += 10) {
    if (k != 70) expect[k] = k * 2;
  }
  expect[51] = 1;
  expect[60] = 9;
  expect[75] = 2;
  auto got = Dump(st);
  ASSERT_EQ(got.size(), expect.size());
  auto it = expect.begin();
  for (size_t i = 0; i < got.size(); ++i, ++it) {
    EXPECT_EQ(got[i].key, it->first);
    EXPECT_EQ(got[i].value, it->second);
  }
}

TEST(CanonicalizeBatch, RandomisedAgainstMapOracle) {
  // The stable-sort canonicalization must agree with the obvious
  // last-write-wins map on arbitrary interleavings of ops per key.
  Random rng(31);
  for (int round = 0; round < 200; ++round) {
    std::deque<GateOp> q;
    std::map<Key, BatchEntry> oracle;
    const int nops = static_cast<int>(rng.NextBounded(60));
    for (int i = 0; i < nops; ++i) {
      const Key k = rng.NextBounded(12);  // small domain: many duplicates
      const bool is_del = rng.NextBounded(2) == 0;
      const Value v = static_cast<Value>(i);
      q.push_back({is_del ? GateOp::Type::kRemove : GateOp::Type::kInsert,
                   k, v});
      oracle[k] = BatchEntry{k, v, is_del};
    }
    auto batch = CanonicalizeBatch(q);
    ASSERT_EQ(batch.size(), oracle.size()) << "round " << round;
    auto it = oracle.begin();
    for (size_t i = 0; i < batch.size(); ++i, ++it) {
      ASSERT_EQ(batch[i].key, it->first) << "round " << round;
      ASSERT_EQ(batch[i].is_delete, it->second.is_delete);
      if (!batch[i].is_delete) {
        ASSERT_EQ(batch[i].value, it->second.value);
      }
    }
  }
}

TEST(ConcurrentBatch, AllDeletionsBatchTriggersShrink) {
  // Async-batch mode: grow the array, then delete almost everything in
  // one burst — the deletions must flow through the batch machinery,
  // drop the global density below the shrink threshold and resize the
  // array down, with the survivors intact.
  ConcurrentConfig cfg;
  cfg.pma.segment_capacity = 8;
  cfg.segments_per_gate = 2;
  cfg.async_mode = ConcurrentConfig::AsyncMode::kBatch;
  cfg.t_delay_ms = 1;
  ConcurrentPMA pma(cfg);
  constexpr Key kN = 4000;
  for (Key k = 1; k <= kN; ++k) pma.Insert(k, k);
  pma.Flush();
  const size_t grown_capacity = pma.capacity();
  for (Key k = 1; k <= kN - 10; ++k) pma.Remove(k);
  pma.Flush();
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  EXPECT_EQ(pma.Size(), 10u);
  EXPECT_LT(pma.capacity(), grown_capacity);
  EXPECT_GE(pma.num_resizes(), 2u);  // grew up, shrank back down
  for (Key k = kN - 9; k <= kN; ++k) {
    Value v = 0;
    ASSERT_TRUE(pma.Find(k, &v)) << k;
    EXPECT_EQ(v, k);
  }
  EXPECT_FALSE(pma.Find(1, nullptr));
}

TEST(ConcurrentBatch, DuplicateKeyLastWinsThroughBatchQueue) {
  // Rapid upserts + deletes of the same keys in batch mode: whatever
  // lands on the combining queue must canonicalize per key to the last
  // op (CanonicalizeBatch) before the merged spread applies it.
  ConcurrentConfig cfg;
  cfg.pma.segment_capacity = 8;
  cfg.segments_per_gate = 2;
  cfg.async_mode = ConcurrentConfig::AsyncMode::kBatch;
  cfg.t_delay_ms = 1;
  ConcurrentPMA pma(cfg);
  constexpr Key kKeys = 512;
  for (int round = 0; round < 5; ++round) {
    for (Key k = 1; k <= kKeys; ++k) {
      if (round % 2 == 0) {
        pma.Insert(k, k * 1000 + static_cast<Value>(round));
      } else if (k % 2 == 0) {
        pma.Remove(k);
      }
    }
  }
  pma.Flush();
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  for (Key k = 1; k <= kKeys; ++k) {
    Value v = 0;
    ASSERT_TRUE(pma.Find(k, &v)) << k;  // last round (4) re-inserted all
    EXPECT_EQ(v, k * 1000 + 4);
  }
  EXPECT_EQ(pma.Size(), kKeys);
}

TEST(MergedStream, RandomisedAgainstStdMap) {
  Random rng(7);
  for (int round = 0; round < 50; ++round) {
    const size_t segs = 4;
    const uint32_t B = 16;
    Storage st(segs, B, true);
    std::map<Key, Value> oracle;
    // Random initial content (sorted, strided keys).
    Key k = 1;
    for (size_t s = 0; s < segs; ++s) {
      const uint32_t c = static_cast<uint32_t>(rng.NextBounded(B - 2));
      for (uint32_t i = 0; i < c; ++i) {
        st.segment(s)[i] = {k, k};
        oracle[k] = k;
        k += 1 + rng.NextBounded(5);
      }
      st.set_card(s, c);
    }
    st.RebuildRoutes(0, segs);
    // Random batch over a slightly larger key domain.
    std::map<Key, BatchEntry> batch_map;
    const int nops = static_cast<int>(rng.NextBounded(20));
    for (int i = 0; i < nops; ++i) {
      const Key bk = 1 + rng.NextBounded(k + 10);
      const bool is_del = rng.NextBounded(3) == 0;
      batch_map[bk] = {bk, bk * 3, is_del};
      if (is_del) {
        oracle.erase(bk);
      } else {
        oracle[bk] = bk * 3;
      }
    }
    std::vector<BatchEntry> ops;
    for (auto& [kk, e] : batch_map) ops.push_back(e);
    size_t ins = 0, del = 0;
    const size_t total = CountMerged(st, 0, segs, ops, &ins, &del);
    ASSERT_EQ(total, oracle.size()) << "round " << round;
    if (total > segs * B) continue;  // would not fit: resize territory
    WindowPlan plan = PlanMergedSpread(st, 0, segs, total);
    MergedCopyToBuffer(&st, plan, ops);
    FinishSpread(&st, plan);
    auto got = Dump(st);
    ASSERT_EQ(got.size(), oracle.size()) << "round " << round;
    auto it = oracle.begin();
    for (size_t i = 0; i < got.size(); ++i, ++it) {
      ASSERT_EQ(got[i].key, it->first) << "round " << round;
      ASSERT_EQ(got[i].value, it->second);
    }
  }
}

}  // namespace
}  // namespace cpma
