// Stress-label soak (ROADMAP item, ISSUE 3): a mixed read/write/batch
// workload that churns the concurrent PMA for a configurable wall-clock
// budget while readers continuously scan and point-look-up. Writers own
// disjoint key strides (key % W == w), so despite full concurrency every
// writer knows its exact surviving set at the end and the final state is
// checked key-by-key, on top of the structural invariants.
//
// Gated out of tier-1 by duration, not by label: the default budget is
// short enough for CI (the `stress` ctest label stays green in seconds);
// set CPMA_SOAK_MS for hours-scale runs, e.g.
//
//   CPMA_SOAK_MS=3600000 build/tests/test_stress_soak

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "concurrent/concurrent_pma.h"

namespace cpma {
namespace {

int64_t SoakBudgetMs() {
  const char* env = std::getenv("CPMA_SOAK_MS");
  if (env != nullptr && env[0] != '\0') {
    return std::atoll(env);
  }
  return 1200;  // CI default: a real soak is opted into via the env var
}

struct SoakParam {
  ConcurrentConfig::AsyncMode mode;
  const char* name;
};

class StressSoak : public ::testing::TestWithParam<SoakParam> {};

TEST_P(StressSoak, MixedChurnKeepsInvariants) {
  ConcurrentConfig cfg;
  cfg.pma.segment_capacity = 32;
  cfg.segments_per_gate = 4;
  cfg.rebalancer_workers = 2;
  cfg.async_mode = GetParam().mode;
  cfg.t_delay_ms = 2;
  cfg.parallel_rebalance_min_gates = 2;
  ConcurrentPMA pma(cfg);

  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  const int64_t budget_ms = SoakBudgetMs();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  // Final per-writer value for each surviving key (0 = removed).
  std::vector<std::map<Key, Value>> survivors(kWriters);

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random rng(1000 + static_cast<uint64_t>(w));
      Timer timer;
      std::map<Key, Value> mine;
      uint64_t tick = 0;
      while (timer.ElapsedSeconds() * 1000.0 <
             static_cast<double>(budget_ms)) {
        ++tick;
        // Async modes only order ops on the same key while they share a
        // combining queue; once a multi-gate rebalance moves fences, a
        // queued op is re-dispatched and a LATER op on that key can
        // overtake it (paper §3.5: updates complete asynchronously).
        // Exact final-state checking is therefore only sound with at
        // most one in-flight op per key: never re-touch a key within a
        // phase, and Flush() between phases.
        for (int i = 0; i < 256; ++i) {
          const Key k =
              (rng.NextBounded(1 << 16)) * kWriters + static_cast<Key>(w);
          if (mine.count(k) != 0) continue;
          const Value v = tick * 1000 + static_cast<Value>(i);
          pma.Insert(k, v);
          mine[k] = v;
        }
        pma.Flush();  // inserts land before their keys may be removed
        // Delete a random half of what this writer owns.
        for (auto it = mine.begin(); it != mine.end();) {
          if (rng.NextBounded(2) == 0) {
            pma.Remove(it->first);
            it = mine.erase(it);
          } else {
            ++it;
          }
        }
        pma.Flush();  // removes land before the keys may be re-inserted
      }
      survivors[static_cast<size_t>(w)] = std::move(mine);
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Random rng(2000 + static_cast<uint64_t>(r));
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (r == 0) {
          // Full fold: exercises gate hand-over-hand under churn.
          volatile uint64_t sink = pma.SumAll();
          (void)sink;
          ++local;
        } else {
          for (int i = 0; i < 512; ++i) {
            Value v;
            pma.Find(rng.NextBounded((1 << 16) * kWriters), &v);
            ++local;
          }
        }
      }
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  pma.Flush();

  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  size_t expected = 0;
  for (int w = 0; w < kWriters; ++w) {
    expected += survivors[static_cast<size_t>(w)].size();
    for (const auto& [k, v] : survivors[static_cast<size_t>(w)]) {
      Value got = 0;
      ASSERT_TRUE(pma.Find(k, &got)) << "writer " << w << " key " << k;
      ASSERT_EQ(got, v) << "writer " << w << " key " << k;
    }
  }
  EXPECT_EQ(pma.Size(), expected);
  EXPECT_GT(reads.load(), 0u);
  std::printf("[soak] mode=%s budget_ms=%lld survivors=%zu reads=%llu "
              "rebal(local=%llu global=%llu resizes=%llu batches=%llu)\n",
              GetParam().name, static_cast<long long>(budget_ms), expected,
              static_cast<unsigned long long>(reads.load()),
              static_cast<unsigned long long>(pma.num_local_rebalances()),
              static_cast<unsigned long long>(pma.num_global_rebalances()),
              static_cast<unsigned long long>(pma.num_resizes()),
              static_cast<unsigned long long>(pma.num_batches()));
}

INSTANTIATE_TEST_SUITE_P(
    Modes, StressSoak,
    ::testing::Values(
        SoakParam{ConcurrentConfig::AsyncMode::kSync, "sync"},
        SoakParam{ConcurrentConfig::AsyncMode::kOneByOne, "1by1"},
        SoakParam{ConcurrentConfig::AsyncMode::kBatch, "batch"}),
    [](const ::testing::TestParamInfo<SoakParam>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace cpma
