// Stress-label soak (ROADMAP item, ISSUE 3; per-key order checking
// added in ISSUE 5): a mixed read/write/batch workload that churns the
// concurrent PMA for a configurable wall-clock budget while readers
// continuously scan and point-look-up. Writers own disjoint key strides
// (key % W == w), so despite full concurrency every writer knows its
// exact surviving set at the end and the final state is checked
// key-by-key, on top of the structural invariants.
//
// Two checking regimes, matching the two §3.5 ordering contracts:
//
//  - strict (default, strict_async_order on): writers issue bursts of
//    consecutive ops on the SAME key with no Flush anywhere in the
//    storm — multiple ops per key in flight through combining queues,
//    rebalancer merges and resizes. Per-key FIFO guarantees the final
//    state is exactly the last issued op per key, and the soak asserts
//    it (plus that the reroute path never fired).
//  - relaxed (strict_async_order off, the pre-ISSUE-5 contract): a
//    queued op re-dispatched after a fence-moving rebalance can be
//    overtaken by a later op on the same key, so exact checking is only
//    sound with at most one in-flight op per key: never re-touch a key
//    within a phase, Flush() between phases.
//
// Gated out of tier-1 by duration, not by label: the default budget is
// short enough for CI (the `stress` ctest label stays green in
// seconds); set CPMA_SOAK_MS for minutes/hours-scale runs, e.g.
//
//   CPMA_SOAK_MS=3600000 build/tests/test_stress_soak
//
// With CPMA_SOAK_JSON=<path> each soak appends one JSON record (JSONL)
// of its knobs and counters — the artifact the nightly workflow
// uploads.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "common/timer.h"
#include "concurrent/concurrent_pma.h"

namespace cpma {
namespace {

int64_t SoakBudgetMs() {
  const char* env = std::getenv("CPMA_SOAK_MS");
  if (env != nullptr && env[0] != '\0') {
    return std::atoll(env);
  }
  return 1200;  // CI default: a real soak is opted into via the env var
}

struct SoakParam {
  ConcurrentConfig::AsyncMode mode;
  bool strict;
  const char* name;
};

ConcurrentConfig SoakConfig(const SoakParam& p) {
  ConcurrentConfig cfg;
  cfg.pma.segment_capacity = 32;
  cfg.segments_per_gate = 4;
  cfg.rebalancer_workers = 2;
  cfg.async_mode = p.mode;
  cfg.t_delay_ms = 2;
  cfg.parallel_rebalance_min_gates = 2;
  cfg.strict_async_order = p.strict;
  return cfg;
}

void AppendSoakJson(const SoakParam& p, int64_t budget_ms, size_t survivors,
                    uint64_t reads, const ConcurrentPMA& pma) {
  const char* path = std::getenv("CPMA_SOAK_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  // EBR stats (ISSUE 6): the retired-bytes high-water mark and the
  // pending max are how a long soak proves reclamation stayed bounded
  // over hours of churn — the nightly workflow graphs these from the
  // uploaded JSONL.
  const EpochGCStats ebr = pma.ebr_stats();
  std::fprintf(
      f,
      "{\"bench\": \"stress_soak\", \"mode\": \"%s\", "
      "\"strict_async_order\": %s, \"budget_ms\": %lld, "
      "\"survivors\": %zu, \"reads\": %llu, \"queued_ops\": %llu, "
      "\"reroutes\": %llu, \"local_rebalances\": %llu, "
      "\"global_rebalances\": %llu, \"resizes\": %llu, "
      "\"batches\": %llu, \"read_fallbacks\": %llu, "
      "\"ebr_pending\": %llu, \"ebr_pending_bytes\": %llu, "
      "\"ebr_retired_bytes_hwm\": %llu, \"ebr_retired_bytes\": %llu, "
      "\"ebr_epoch_advances\": %llu, \"ebr_collections\": %llu}\n",
      p.name, p.strict ? "true" : "false",
      static_cast<long long>(budget_ms), survivors,
      static_cast<unsigned long long>(reads),
      static_cast<unsigned long long>(pma.num_queued_ops()),
      static_cast<unsigned long long>(pma.num_reroutes()),
      static_cast<unsigned long long>(pma.num_local_rebalances()),
      static_cast<unsigned long long>(pma.num_global_rebalances()),
      static_cast<unsigned long long>(pma.num_resizes()),
      static_cast<unsigned long long>(pma.num_batches()),
      static_cast<unsigned long long>(pma.num_read_fallbacks()),
      static_cast<unsigned long long>(ebr.pending_count),
      static_cast<unsigned long long>(ebr.pending_bytes),
      static_cast<unsigned long long>(ebr.retired_bytes_hwm),
      static_cast<unsigned long long>(ebr.retired_bytes),
      static_cast<unsigned long long>(ebr.epoch_advances),
      static_cast<unsigned long long>(ebr.collections));
  std::fclose(f);
}

class StressSoak : public ::testing::TestWithParam<SoakParam> {};

TEST_P(StressSoak, MixedChurnKeepsInvariants) {
  const SoakParam param = GetParam();
  ConcurrentPMA pma(SoakConfig(param));

  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  const int64_t budget_ms = SoakBudgetMs();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  // Final expected state per key: a value, or nullopt for removed.
  std::vector<std::map<Key, std::optional<Value>>> last(kWriters);

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random rng(1000 + static_cast<uint64_t>(w));
      Timer timer;
      auto& mine = last[static_cast<size_t>(w)];
      if (param.strict) {
        // Strict per-key FIFO: free-running bursts on the same key, no
        // Flush — the exact workload the relaxed contract cannot
        // survive (ISSUE 5 tentpole).
        Value ctr = 0;
        while (timer.ElapsedSeconds() * 1000.0 <
               static_cast<double>(budget_ms)) {
          for (int i = 0; i < 256;) {
            const Key k = rng.NextBounded(1 << 16) * kWriters +
                          static_cast<Key>(w);
            const int burst = 1 + static_cast<int>(rng.NextBounded(4));
            for (int b = 0; b < burst && i < 256; ++b, ++i) {
              if (rng.NextBounded(4) == 0) {
                pma.Remove(k);
                mine[k] = std::nullopt;
              } else {
                const Value v = ++ctr;
                pma.Insert(k, v);
                mine[k] = v;
              }
            }
          }
        }
        return;
      }
      // Relaxed (pre-ISSUE-5) contract: at most one in-flight op per
      // key — never re-touch a key within a phase, Flush between the
      // insert and remove phases.
      uint64_t tick = 0;
      std::map<Key, Value> owned;
      while (timer.ElapsedSeconds() * 1000.0 <
             static_cast<double>(budget_ms)) {
        ++tick;
        for (int i = 0; i < 256; ++i) {
          const Key k =
              (rng.NextBounded(1 << 16)) * kWriters + static_cast<Key>(w);
          if (owned.count(k) != 0) continue;
          const Value v = tick * 1000 + static_cast<Value>(i);
          pma.Insert(k, v);
          owned[k] = v;
        }
        pma.Flush();  // inserts land before their keys may be removed
        for (auto it = owned.begin(); it != owned.end();) {
          if (rng.NextBounded(2) == 0) {
            pma.Remove(it->first);
            it = owned.erase(it);
          } else {
            ++it;
          }
        }
        pma.Flush();  // removes land before the keys may be re-inserted
      }
      for (const auto& [k, v] : owned) mine[k] = v;
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Random rng(2000 + static_cast<uint64_t>(r));
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (r == 0) {
          // Full fold: exercises gate hand-over-hand under churn.
          volatile uint64_t sink = pma.SumAll();
          (void)sink;
          ++local;
        } else {
          for (int i = 0; i < 512; ++i) {
            Value v;
            pma.Find(rng.NextBounded((1 << 16) * kWriters), &v);
            ++local;
          }
        }
      }
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  pma.Flush();

  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  if (param.strict) {
    // The hand-off path makes re-dispatches structurally impossible.
    EXPECT_EQ(pma.num_reroutes(), 0u);
  }
  size_t expected = 0;
  for (int w = 0; w < kWriters; ++w) {
    for (const auto& [k, v] : last[static_cast<size_t>(w)]) {
      Value got = 0;
      const bool found = pma.Find(k, &got);
      if (v.has_value()) {
        ++expected;
        ASSERT_TRUE(found) << "writer " << w << " key " << k;
        ASSERT_EQ(got, *v) << "writer " << w << " key " << k;
      } else {
        ASSERT_FALSE(found) << "writer " << w << " removed key " << k;
      }
    }
  }
  EXPECT_EQ(pma.Size(), expected);
  EXPECT_GT(reads.load(), 0u);
  std::printf(
      "[soak] mode=%s budget_ms=%lld survivors=%zu reads=%llu "
      "reroutes=%llu rebal(local=%llu global=%llu resizes=%llu "
      "batches=%llu)\n",
      param.name, static_cast<long long>(budget_ms), expected,
      static_cast<unsigned long long>(reads.load()),
      static_cast<unsigned long long>(pma.num_reroutes()),
      static_cast<unsigned long long>(pma.num_local_rebalances()),
      static_cast<unsigned long long>(pma.num_global_rebalances()),
      static_cast<unsigned long long>(pma.num_resizes()),
      static_cast<unsigned long long>(pma.num_batches()));
  AppendSoakJson(param, budget_ms, expected, reads.load(), pma);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, StressSoak,
    ::testing::Values(
        SoakParam{ConcurrentConfig::AsyncMode::kSync, true, "sync"},
        SoakParam{ConcurrentConfig::AsyncMode::kOneByOne, true, "1by1"},
        SoakParam{ConcurrentConfig::AsyncMode::kBatch, true, "batch"},
        SoakParam{ConcurrentConfig::AsyncMode::kSync, false,
                  "sync_relaxed"},
        SoakParam{ConcurrentConfig::AsyncMode::kOneByOne, false,
                  "1by1_relaxed"},
        SoakParam{ConcurrentConfig::AsyncMode::kBatch, false,
                  "batch_relaxed"}),
    [](const ::testing::TestParamInfo<SoakParam>& info) {
      return std::string(info.param.name);
    });

// ----------------------------------------------------- chaos soak (ISSUE 7)
//
// The strict-mode soak workload, with a fault conductor re-arming random
// failpoint sites mid-storm using finite (times:1..3) policies — so
// every injected fault eventually recovers and the run must converge to
// the exact per-key final state despite resize-allocation failures,
// remap-publication failures, degraded region creation and injected
// master stalls. Seeded via CPMA_CHAOS_SEED for reproduction: a failing
// seed from CI replays bit-identically (the conductor's arm schedule is
// a pure function of seed and iteration, not wall clock).

uint64_t ChaosSeed() {
  const char* env = std::getenv("CPMA_CHAOS_SEED");
  if (env != nullptr && env[0] != '\0') {
    return static_cast<uint64_t>(std::atoll(env));
  }
  return 12345;
}

// Sites the conductor may arm mid-run. All are recoverable-by-design
// under finite policies: creation faults degrade the next storage to the
// copy backend, remap faults degrade one region, alloc faults run the
// resize ladder, the stall only delays. threadpool.spawn is excluded —
// it only fires during construction, before the storm.
constexpr const char* kChaosSites[] = {
    "storage.create",   "rewiring.remap", "rewiring.remap_run",
    "rewiring.memfd",   "rewiring.mmap",  "rewiring.ftruncate",
    "rebalancer.stall", "epoch_gc.slot_chunk",
};

void AppendChaosJson(const SoakParam& p, uint64_t seed, int64_t budget_ms,
                     size_t survivors, uint64_t reads, uint64_t arms,
                     uint64_t fires, uint64_t errors,
                     const ConcurrentPMA& pma) {
  const char* path = std::getenv("CPMA_SOAK_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(
      f,
      "{\"bench\": \"chaos_soak\", \"mode\": \"%s\", \"seed\": %llu, "
      "\"budget_ms\": %lld, \"survivors\": %zu, \"reads\": %llu, "
      "\"fault_arms\": %llu, \"failpoint_fires\": %llu, "
      "\"errors_reported\": %llu, \"rebalance_retries\": %llu, "
      "\"watchdog_trips\": %llu, \"remap_failures\": %llu, "
      "\"fallback_backend_active\": %s, \"resizes\": %llu, "
      "\"batches\": %llu}\n",
      p.name, static_cast<unsigned long long>(seed),
      static_cast<long long>(budget_ms), survivors,
      static_cast<unsigned long long>(reads),
      static_cast<unsigned long long>(arms),
      static_cast<unsigned long long>(fires),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(pma.num_rebalance_retries()),
      static_cast<unsigned long long>(pma.num_watchdog_trips()),
      static_cast<unsigned long long>(pma.storage_num_remap_failures()),
      pma.fallback_backend_active() ? "true" : "false",
      static_cast<unsigned long long>(pma.num_resizes()),
      static_cast<unsigned long long>(pma.num_batches()));
  std::fclose(f);
}

class ChaosSoak : public ::testing::TestWithParam<SoakParam> {};

TEST_P(ChaosSoak, FaultStormConvergesToExactState) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out (CPMA_ENABLE_FAILPOINTS=OFF)";
  }
  failpoint::ClearAll();
  const SoakParam param = GetParam();
  ConcurrentConfig cfg = SoakConfig(param);
  cfg.watchdog_ms = 50;  // exercised by the rebalancer.stall arms
  ConcurrentPMA pma(cfg);

  std::atomic<uint64_t> errors{0};
  pma.SetErrorCallback([&](const Status&) { errors.fetch_add(1); });

  const uint64_t seed = ChaosSeed();
  const int64_t budget_ms = SoakBudgetMs();
  // Pre-arm deterministic faults so even the shortest budget injects
  // into the first resize and the first remap publication.
  ASSERT_TRUE(failpoint::Set("storage.create", "times:1"));
  ASSERT_TRUE(failpoint::Set("rewiring.remap", "once"));

  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::map<Key, std::optional<Value>>> last(kWriters);

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random rng(seed * 1000 + static_cast<uint64_t>(w));
      Timer timer;
      auto& mine = last[static_cast<size_t>(w)];
      Value ctr = 0;
      while (timer.ElapsedSeconds() * 1000.0 <
             static_cast<double>(budget_ms)) {
        for (int i = 0; i < 256;) {
          const Key k =
              rng.NextBounded(1 << 16) * kWriters + static_cast<Key>(w);
          const int burst = 1 + static_cast<int>(rng.NextBounded(4));
          for (int b = 0; b < burst && i < 256; ++b, ++i) {
            if (rng.NextBounded(4) == 0) {
              pma.Remove(k);
              mine[k] = std::nullopt;
            } else {
              const Value v = ++ctr;
              pma.Insert(k, v);
              mine[k] = v;
            }
          }
        }
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Random rng(seed * 2000 + static_cast<uint64_t>(r));
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (r == 0) {
          volatile uint64_t sink = pma.SumAll();
          (void)sink;
          ++local;
        } else {
          for (int i = 0; i < 512; ++i) {
            Value v;
            pma.Find(rng.NextBounded((1 << 16) * kWriters), &v);
            ++local;
          }
        }
      }
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }

  // The conductor: every few ms, re-arm one random site with a finite
  // policy. The (site, policy) sequence is a pure function of the seed.
  std::atomic<uint64_t> arms{0};
  std::thread conductor([&] {
    Random rng(seed);
    constexpr size_t kNumSites =
        sizeof(kChaosSites) / sizeof(kChaosSites[0]);
    while (!stop.load(std::memory_order_relaxed)) {
      const char* site = kChaosSites[rng.NextBounded(kNumSites)];
      char spec[16];
      std::snprintf(spec, sizeof(spec), "times:%u",
                    1 + static_cast<unsigned>(rng.NextBounded(3)));
      if (failpoint::Set(site, spec)) arms.fetch_add(1);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(1 + rng.NextBounded(4)));
    }
  });

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  conductor.join();
  for (auto& t : readers) t.join();
  // Storm over: disarm everything, then drain. Every armed policy was
  // finite, so the structure has already recovered (or will during this
  // Flush) — convergence must not depend on the ClearAll. Capture the
  // fire count first: ClearAll drops the sites and their counters.
  const uint64_t total_fires = failpoint::TotalFires();
  failpoint::ClearAll();
  pma.Flush();

  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  EXPECT_EQ(pma.num_reroutes(), 0u) << "strict FIFO must survive faults";
  size_t expected = 0;
  for (int w = 0; w < kWriters; ++w) {
    for (const auto& [k, v] : last[static_cast<size_t>(w)]) {
      Value got = 0;
      const bool found = pma.Find(k, &got);
      if (v.has_value()) {
        ++expected;
        ASSERT_TRUE(found) << "writer " << w << " key " << k;
        ASSERT_EQ(got, *v) << "writer " << w << " key " << k;
      } else {
        ASSERT_FALSE(found) << "writer " << w << " removed key " << k;
      }
    }
  }
  EXPECT_EQ(pma.Size(), expected);
  EXPECT_GT(total_fires, 0u)
      << "a chaos soak that injected nothing proved nothing";
  std::printf(
      "[chaos] mode=%s seed=%llu budget_ms=%lld survivors=%zu arms=%llu "
      "fires=%llu errors=%llu retries=%llu watchdog=%llu "
      "remap_failures=%llu degraded_backend=%d\n",
      param.name, static_cast<unsigned long long>(seed),
      static_cast<long long>(budget_ms), expected,
      static_cast<unsigned long long>(arms.load()),
      static_cast<unsigned long long>(total_fires),
      static_cast<unsigned long long>(errors.load()),
      static_cast<unsigned long long>(pma.num_rebalance_retries()),
      static_cast<unsigned long long>(pma.num_watchdog_trips()),
      static_cast<unsigned long long>(pma.storage_num_remap_failures()),
      pma.fallback_backend_active() ? 1 : 0);
  AppendChaosJson(param, seed, budget_ms, expected, reads.load(),
                  arms.load(), total_fires, errors.load(), pma);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ChaosSoak,
    ::testing::Values(
        SoakParam{ConcurrentConfig::AsyncMode::kSync, true, "sync"},
        SoakParam{ConcurrentConfig::AsyncMode::kOneByOne, true, "1by1"},
        SoakParam{ConcurrentConfig::AsyncMode::kBatch, true, "batch"}),
    [](const ::testing::TestParamInfo<SoakParam>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace cpma
