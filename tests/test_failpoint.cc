// Failpoint framework semantics (ISSUE 7): policy behaviour, the
// CPMA_FAILPOINTS config grammar, counters and crash attribution. These
// are pure framework tests — the sites threaded through the library are
// covered by test_fault_injection.cc.

#include "common/failpoint.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <thread>
#include <vector>

namespace cpma {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kCompiledIn) {
      GTEST_SKIP() << "failpoints compiled out (CPMA_ENABLE_FAILPOINTS=OFF)";
    }
    failpoint::ClearAll();
  }
  void TearDown() override { failpoint::ClearAll(); }
};

TEST_F(FailpointTest, UnarmedSiteNeverFires) {
  EXPECT_FALSE(failpoint::Armed());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(CPMA_FAILPOINT("test.unarmed"));
  }
  // An unarmed registry short-circuits before the registry lookup, so
  // the site records no hits.
  EXPECT_EQ(failpoint::Hits("test.unarmed"), 0u);
}

TEST_F(FailpointTest, AlwaysFiresEveryHit) {
  ASSERT_TRUE(failpoint::Set("test.always", "always"));
  EXPECT_TRUE(failpoint::Armed());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(CPMA_FAILPOINT("test.always"));
  EXPECT_EQ(failpoint::Hits("test.always"), 5u);
  EXPECT_EQ(failpoint::Fires("test.always"), 5u);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  ASSERT_TRUE(failpoint::Set("test.once", "once"));
  EXPECT_TRUE(CPMA_FAILPOINT("test.once"));
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(CPMA_FAILPOINT("test.once"));
  EXPECT_EQ(failpoint::Fires("test.once"), 1u);
}

TEST_F(FailpointTest, TimesFiresNThenRecovers) {
  ASSERT_TRUE(failpoint::Set("test.times", "times:3"));
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(CPMA_FAILPOINT("test.times"));
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(CPMA_FAILPOINT("test.times"));
  EXPECT_EQ(failpoint::Fires("test.times"), 3u);
  // A fully-recovered times:N site disarms itself; with no other site
  // armed the fast path is cold again.
  EXPECT_FALSE(failpoint::Armed());
}

TEST_F(FailpointTest, NthFiresEveryNthHit) {
  ASSERT_TRUE(failpoint::Set("test.nth", "nth:3"));
  int fires = 0;
  std::vector<int> fired_at;
  for (int hit = 1; hit <= 9; ++hit) {
    if (CPMA_FAILPOINT("test.nth")) {
      ++fires;
      fired_at.push_back(hit);
    }
  }
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(fired_at, (std::vector<int>{3, 6, 9}));
}

TEST_F(FailpointTest, ProbIsDeterministicGivenSeed) {
  auto run = [](const char* spec) {
    EXPECT_TRUE(failpoint::Set("test.prob", spec));
    std::vector<bool> outcome;
    for (int i = 0; i < 64; ++i) outcome.push_back(CPMA_FAILPOINT("test.prob"));
    failpoint::Clear("test.prob");
    return outcome;
  };
  const auto a = run("prob:0.5:42");
  const auto b = run("prob:0.5:42");
  const auto c = run("prob:0.5:43");
  EXPECT_EQ(a, b);  // same seed, same hit sequence -> same outcomes
  EXPECT_NE(a, c);  // different seed -> different sequence (w.h.p.)
  // Sanity: the rate is plausible for p=0.5 over 64 draws.
  size_t fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 10u);
  EXPECT_LT(fires, 54u);
}

TEST_F(FailpointTest, ProbEdgeValues) {
  ASSERT_TRUE(failpoint::Set("test.p0", "prob:0"));
  ASSERT_TRUE(failpoint::Set("test.p1", "prob:1"));
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(CPMA_FAILPOINT("test.p0"));
    EXPECT_TRUE(CPMA_FAILPOINT("test.p1"));
  }
}

TEST_F(FailpointTest, ConfigStringArmsMultipleSites) {
  ASSERT_TRUE(
      failpoint::ConfigureFromString("test.a=once;test.b=times:2,test.c=off"));
  EXPECT_TRUE(CPMA_FAILPOINT("test.a"));
  EXPECT_FALSE(CPMA_FAILPOINT("test.a"));
  EXPECT_TRUE(CPMA_FAILPOINT("test.b"));
  EXPECT_TRUE(CPMA_FAILPOINT("test.b"));
  EXPECT_FALSE(CPMA_FAILPOINT("test.b"));
  EXPECT_FALSE(CPMA_FAILPOINT("test.c"));
}

TEST_F(FailpointTest, MalformedConfigRejectedValidClausesApplied) {
  EXPECT_FALSE(failpoint::ConfigureFromString("test.good=always;garbage"));
  EXPECT_TRUE(CPMA_FAILPOINT("test.good"));  // clause before the bad one held
  EXPECT_FALSE(failpoint::Set("test.bad", "times:notanumber"));
  EXPECT_FALSE(failpoint::Set("test.bad", "prob:1.5"));
  EXPECT_FALSE(failpoint::Set("test.bad", "nosuchpolicy"));
  EXPECT_FALSE(CPMA_FAILPOINT("test.bad"));
}

TEST_F(FailpointTest, ClearDisarmsSite) {
  ASSERT_TRUE(failpoint::Set("test.clear", "always"));
  EXPECT_TRUE(CPMA_FAILPOINT("test.clear"));
  failpoint::Clear("test.clear");
  EXPECT_FALSE(CPMA_FAILPOINT("test.clear"));
  EXPECT_FALSE(failpoint::Armed());
}

TEST_F(FailpointTest, LastFiredTracksCallingThread) {
  ASSERT_TRUE(failpoint::Set("test.attrib", "always"));
  ASSERT_TRUE(CPMA_FAILPOINT("test.attrib"));
  ASSERT_NE(failpoint::LastFired(), nullptr);
  EXPECT_STREQ(failpoint::LastFired(), "test.attrib");
  // Another thread has its own attribution slot.
  std::thread([] { EXPECT_EQ(failpoint::LastFired(), nullptr); }).join();
}

TEST_F(FailpointTest, TotalFiresAggregatesAcrossSites) {
  const uint64_t base = failpoint::TotalFires();
  ASSERT_TRUE(failpoint::Set("test.t1", "always"));
  ASSERT_TRUE(failpoint::Set("test.t2", "times:2"));
  for (int i = 0; i < 3; ++i) {
    // (void): evaluated for the counter side effect; in the
    // failpoints-off build the macro folds to a constant.
    (void)CPMA_FAILPOINT("test.t1");
    (void)CPMA_FAILPOINT("test.t2");
  }
  EXPECT_EQ(failpoint::TotalFires() - base, 5u);  // 3 + 2
}

TEST_F(FailpointTest, KnownSitesListsConfigured) {
  ASSERT_TRUE(failpoint::Set("test.known", "off"));
  const auto sites = failpoint::KnownSites();
  bool found = false;
  for (const auto& s : sites) found = found || s == "test.known";
  EXPECT_TRUE(found);
}

TEST_F(FailpointTest, ConcurrentEvaluationIsSafe) {
  ASSERT_TRUE(failpoint::Set("test.mt", "nth:2"));
  std::atomic<uint64_t> fires{0};
  std::vector<std::thread> threads;
  constexpr int kThreads = 4, kIters = 1000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        if (CPMA_FAILPOINT("test.mt")) fires.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failpoint::Hits("test.mt"), uint64_t{kThreads} * kIters);
  EXPECT_EQ(fires.load(), failpoint::Fires("test.mt"));
  EXPECT_EQ(fires.load(), uint64_t{kThreads} * kIters / 2);
}

// ------------------------------------------------ !crash action (ISSUE 9)

TEST_F(FailpointTest, CrashSuffixParses) {
  // Every policy accepts the `!crash` action suffix.
  EXPECT_TRUE(failpoint::Set("test.crash", "always!crash"));
  EXPECT_TRUE(failpoint::Set("test.crash", "once!crash"));
  EXPECT_TRUE(failpoint::Set("test.crash", "times:3!crash"));
  EXPECT_TRUE(failpoint::Set("test.crash", "nth:5!crash"));
  EXPECT_TRUE(failpoint::Set("test.crash", "prob:0.5:7!crash"));
  // 'crash' is the only action; a bare or unknown action is rejected.
  EXPECT_FALSE(failpoint::Set("test.crash2", "always!boom"));
  EXPECT_FALSE(failpoint::Set("test.crash2", "!crash"));
  EXPECT_FALSE(failpoint::Set("test.crash2", "always!"));
  EXPECT_FALSE(failpoint::Armed() && failpoint::Hits("test.crash2") > 0);
  // The config-string grammar carries the suffix through ';' clauses.
  EXPECT_TRUE(
      failpoint::ConfigureFromString("test.a=once!crash;test.b=nth:2"));
}

TEST_F(FailpointTest, CrashActionExitsWithCrashCode) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  // nth:3!crash: the first two hits pass through without reporting
  // failure (the site must not fire as a soft fault), the third pulls
  // the plug via _exit(kCrashExitCode).
  EXPECT_EXIT(
      {
        failpoint::ClearAll();
        failpoint::Set("test.exit", "nth:3!crash");
        bool fired = false;
        fired |= CPMA_FAILPOINT("test.exit");
        fired |= CPMA_FAILPOINT("test.exit");
        if (fired) ::_exit(1);  // soft-fired too early: wrong exit code
        CPMA_FAILPOINT("test.exit");  // third hit: never returns
        ::_exit(2);                   // unreachable if crash worked
      },
      ::testing::ExitedWithCode(failpoint::kCrashExitCode), "");
}

}  // namespace
}  // namespace cpma
