// COW snapshots (ISSUE 9): frozen, consistent, retry-free point-in-time
// views of the concurrent PMA and the sharded fleet.
//
// Dual-labeled unit+concurrent (tests/CMakeLists.txt): the unit pass
// runs the deterministic frozen-image scenarios (exact std::map oracle
// equality before/after heavy post-snapshot churn, including forced
// resizes); the concurrent pass re-runs everything under TSan, where
// the preserve-before-mutate hand-off (gate hold -> GateSnap publish ->
// entry re-check on the reader side) must keep snapshot reads race-free
// against live writers.
//
//  - Frozen*: a snapshot equals the oracle at capture, stays bit-equal
//    across repeated reads while the live structure diverges (upserts,
//    deletes, rebalances, resizes), and its scan_retries() counter
//    stays 0 — the reader has no restart path, by construction.
//  - Storm*: snapshots taken mid-write-storm are internally consistent:
//    strictly ascending scans, self-consistent derived values, two
//    passes identical, zero retries.
//  - Sharded*: ShardedPMA::Snapshot() drains the coalescing front door
//    (everything Insert()ed before the call is captured) and freezes
//    all shards; range concatenation and hash k-way merge both yield
//    ordered frozen scans.
//  - OpenSnapshotBlocksDestruction: destroying the PMA with a live
//    snapshot is a programming error caught by a CHECK.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "concurrent/concurrent_pma.h"
#include "concurrent/snapshot.h"
#include "sharded/sharded_pma.h"

namespace cpma {
namespace {

using AsyncMode = ConcurrentConfig::AsyncMode;

ConcurrentConfig SmallConfig(size_t seg_cap = 16) {
  ConcurrentConfig cfg;
  cfg.pma.segment_capacity = seg_cap;
  cfg.segments_per_gate = 4;
  cfg.rebalancer_workers = 2;
  return cfg;
}

void ExpectSnapshotExactly(const std::map<Key, Value>& oracle,
                           const PMASnapshot& snap) {
  EXPECT_EQ(snap.CountItems(), oracle.size());
  uint64_t sum = 0;
  auto it = oracle.begin();
  snap.Scan(kKeyMin, kKeyMax, [&](Key k, Value v) {
    EXPECT_NE(it, oracle.end());
    if (it != oracle.end()) {
      EXPECT_EQ(k, it->first);
      EXPECT_EQ(v, it->second);
      ++it;
    }
    sum += v;
    return true;
  });
  EXPECT_EQ(it, oracle.end());
  EXPECT_EQ(snap.SumAll(), sum);
  // Point probes: every oracle key hits with the frozen value; gaps miss.
  Random rng(3);
  for (int i = 0; i < 200; ++i) {
    auto probe = oracle.begin();
    std::advance(probe, rng.NextBounded(oracle.size()));
    Value v = 0;
    EXPECT_TRUE(snap.Find(probe->first, &v));
    EXPECT_EQ(v, probe->second);
  }
  EXPECT_EQ(snap.scan_retries(), 0u);
}

TEST(Snapshot, EmptyPmaSnapshot) {
  ConcurrentPMA pma(SmallConfig());
  auto snap = pma.Snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->CountItems(), 0u);
  EXPECT_EQ(snap->SumAll(), 0u);
  EXPECT_FALSE(snap->Find(7, nullptr));
  EXPECT_EQ(pma.snapshots_open(), 1u);
  snap.reset();
  EXPECT_EQ(pma.snapshots_open(), 0u);
  EXPECT_EQ(pma.num_snapshots_taken(), 1u);
}

TEST(Snapshot, FrozenWhileLiveDiverges) {
  ConcurrentPMA pma(SmallConfig());
  std::map<Key, Value> oracle;
  Random rng(17);
  for (int i = 0; i < 3000; ++i) {
    Key k = rng.NextBounded(10000) + 1;
    Value v = rng.Next() >> 1;
    pma.Insert(k, v);
    oracle[k] = v;
  }
  pma.Flush();

  auto snap = pma.Snapshot();
  ExpectSnapshotExactly(oracle, *snap);

  // Diverge hard: overwrite every oracle key, delete a third of them,
  // and pour in enough new keys to force rebalances and resizes.
  size_t i = 0;
  for (const auto& [k, v] : oracle) {
    (void)v;
    if (i++ % 3 == 0) {
      pma.Remove(k);
    } else {
      pma.Insert(k, 0xDEAD0000 + i);
    }
  }
  for (int j = 0; j < 20000; ++j) {
    pma.Insert(rng.NextBounded(1u << 20) + 20000, j);
  }
  pma.Flush();
  ASSERT_NE(pma.Size(), oracle.size());

  // The frozen image is untouched — twice (repeated materialization).
  ExpectSnapshotExactly(oracle, *snap);
  ExpectSnapshotExactly(oracle, *snap);
  EXPECT_EQ(snap->scan_retries(), 0u);
  snap.reset();
  EXPECT_EQ(pma.snapshots_open(), 0u);
}

TEST(Snapshot, RangeScanRespectsBounds) {
  ConcurrentPMA pma(SmallConfig());
  for (Key k = 10; k <= 1000; k += 10) pma.Insert(k, k * 2);
  pma.Flush();
  auto snap = pma.Snapshot();
  pma.Insert(555, 1);  // post-snapshot; must not appear
  pma.Flush();

  std::vector<Key> seen;
  snap->Scan(100, 300, [&](Key k, Value v) {
    EXPECT_EQ(v, k * 2);
    seen.push_back(k);
    return true;
  });
  ASSERT_EQ(seen.size(), 21u);
  EXPECT_EQ(seen.front(), 100u);
  EXPECT_EQ(seen.back(), 300u);

  // Early stop after 3 items.
  int n = 0;
  snap->Scan(kKeyMin, kKeyMax, [&](Key, Value) { return ++n < 3; });
  EXPECT_EQ(n, 3);
}

TEST(Snapshot, ManyOverlappingSnapshotsSeeTheirOwnCut) {
  ConcurrentPMA pma(SmallConfig());
  std::vector<std::unique_ptr<PMASnapshot>> snaps;
  std::vector<std::map<Key, Value>> oracles;
  std::map<Key, Value> oracle;
  Random rng(23);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 800; ++i) {
      Key k = rng.NextBounded(5000) + 1;
      Value v = (static_cast<Value>(round) << 32) | i;
      pma.Insert(k, v);
      oracle[k] = v;
    }
    pma.Flush();
    snaps.push_back(pma.Snapshot());
    oracles.push_back(oracle);
  }
  EXPECT_EQ(pma.snapshots_open(), 5u);
  // Stamps are monotone and every snapshot sees exactly its cut.
  for (size_t s = 0; s < snaps.size(); ++s) {
    if (s > 0) {
      EXPECT_GT(snaps[s]->stamp(), snaps[s - 1]->stamp());
    }
    ExpectSnapshotExactly(oracles[s], *snaps[s]);
  }
  // Destroy newest-first; older snapshots stay valid.
  while (!snaps.empty()) {
    snaps.pop_back();
    oracles.pop_back();
    for (size_t s = 0; s < snaps.size(); ++s) {
      EXPECT_EQ(snaps[s]->CountItems(), oracles[s].size());
    }
  }
  EXPECT_EQ(pma.snapshots_open(), 0u);
}

TEST(Snapshot, SurvivesResizeOfLiveStructure) {
  ConcurrentPMA pma(SmallConfig(8));
  std::map<Key, Value> oracle;
  for (Key k = 1; k <= 200; ++k) {
    pma.Insert(k, k + 7);
    oracle[k] = k + 7;
  }
  pma.Flush();
  const uint64_t resizes_before = pma.num_resizes();
  auto snap = pma.Snapshot();
  // Force at least one resize (tiny segments, 50x growth).
  for (Key k = 1000; k < 11000; ++k) pma.Insert(k, 1);
  pma.Flush();
  EXPECT_GT(pma.num_resizes(), resizes_before);
  // The snapshot pinned the retired structure via its epoch slot; the
  // retired storage is frozen forever, so reads stay exact and cheap.
  ExpectSnapshotExactly(oracle, *snap);
}

TEST(Snapshot, StormScansAreConsistentAndRetryFree) {
  ConcurrentPMA pma(SmallConfig());
  // Value is derived from the key, so ANY point-in-time cut satisfies
  // v == 3k+1 for every item; the frozen cut additionally must be
  // identical across two passes.
  constexpr Key kSpace = 50000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&pma, w, &stop] {
      Random rng(1000 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        Key k = rng.NextBounded(kSpace) + 1;
        if (rng.NextBounded(4) == 0) {
          pma.Remove(k);
        } else {
          pma.Insert(k, 3 * k + 1);
        }
      }
    });
  }
  for (int round = 0; round < 8; ++round) {
    auto snap = pma.Snapshot();
    std::vector<std::pair<Key, Value>> pass1;
    Key prev = 0;
    snap->Scan(kKeyMin, kKeyMax, [&](Key k, Value v) {
      EXPECT_GT(k, prev);  // strictly ascending: consistent fences
      prev = k;
      EXPECT_EQ(v, 3 * k + 1);
      pass1.emplace_back(k, v);
      return true;
    });
    // The second pass re-materializes every gate; the image must be
    // bit-identical even though writers kept mutating.
    size_t idx = 0;
    snap->Scan(kKeyMin, kKeyMax, [&](Key k, Value v) {
      EXPECT_LT(idx, pass1.size());
      if (idx < pass1.size()) {
        EXPECT_EQ(k, pass1[idx].first);
        EXPECT_EQ(v, pass1[idx].second);
      }
      ++idx;
      return true;
    });
    EXPECT_EQ(idx, pass1.size());
    EXPECT_EQ(snap->CountItems(), pass1.size());
    // The acceptance criterion: snapshot scans under a write storm
    // complete with zero retries, structurally.
    EXPECT_EQ(snap->scan_retries(), 0u);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

TEST(Snapshot, OpenSnapshotBlocksDestruction) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        auto pma = std::make_unique<ConcurrentPMA>();
        pma->Insert(1, 2);
        pma->Flush();
        auto snap = pma->Snapshot();
        pma.reset();  // CHECK: destroyed with open snapshots
      },
      "open snapshots");
}

// ------------------------------------------------------------- sharded

TEST(ShardedSnapshot, DrainsCoalescingAndFreezesAllShards) {
  for (auto part :
       {ShardedConfig::Partition::kRange, ShardedConfig::Partition::kHash}) {
    ShardedConfig cfg;
    cfg.num_shards = 4;
    cfg.partition = part;
    ShardedPMA pma(cfg);
    std::map<Key, Value> oracle;
    Random rng(5);
    for (int i = 0; i < 3000; ++i) {
      Key k = rng.NextBounded(100000) + 1;
      Value v = rng.Next() >> 1;
      pma.Insert(k, v);  // staged in coalescing slots — NO explicit Flush
      oracle[k] = v;
    }
    auto snap = pma.Snapshot();  // must drain the front door itself
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->num_shards(), 4u);
    EXPECT_EQ(pma.snapshots_open(), 4u);

    // Diverge the live fleet, then verify the frozen cut.
    for (int i = 0; i < 2000; ++i) pma.Insert(rng.NextBounded(100000) + 1, 7);
    pma.Flush();

    EXPECT_EQ(snap->CountItems(), oracle.size());
    auto it = oracle.begin();
    uint64_t sum = 0;
    snap->Scan(kKeyMin, kKeyMax, [&](Key k, Value v) {
      EXPECT_NE(it, oracle.end());
      if (it != oracle.end()) {
        EXPECT_EQ(k, it->first) << "partition mode "
                                << (part == ShardedConfig::Partition::kRange
                                        ? "range"
                                        : "hash");
        EXPECT_EQ(v, it->second);
        ++it;
      }
      sum += v;
      return true;
    });
    EXPECT_EQ(it, oracle.end());
    EXPECT_EQ(snap->SumAll(), sum);
    Value v = 0;
    auto probe = oracle.begin();
    std::advance(probe, oracle.size() / 2);
    EXPECT_TRUE(snap->Find(probe->first, &v));
    EXPECT_EQ(v, probe->second);

    snap.reset();
    EXPECT_EQ(pma.snapshots_open(), 0u);
    auto stats = pma.GetStats();
    EXPECT_EQ(stats.snapshots_taken, 4u);
    EXPECT_EQ(stats.snapshots_open, 0u);
  }
}

TEST(ShardedSnapshot, StormMergeStaysOrdered) {
  ShardedConfig cfg;
  cfg.num_shards = 4;
  cfg.partition = ShardedConfig::Partition::kHash;  // k-way merge path
  ShardedPMA pma(cfg);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&pma, w, &stop] {
      Random rng(77 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        Key k = rng.NextBounded(20000) + 1;
        pma.Insert(k, 5 * k);
      }
    });
  }
  for (int round = 0; round < 4; ++round) {
    auto snap = pma.Snapshot();
    Key prev = 0;
    uint64_t n1 = 0, n2 = 0;
    snap->Scan(kKeyMin, kKeyMax, [&](Key k, Value v) {
      EXPECT_GT(k, prev);
      prev = k;
      EXPECT_EQ(v, 5 * k);
      ++n1;
      return true;
    });
    snap->Scan(kKeyMin, kKeyMax, [&](Key, Value) {
      ++n2;
      return true;
    });
    EXPECT_EQ(n1, n2);  // frozen across passes
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

}  // namespace
}  // namespace cpma
