// Tests for mmap-based memory rewiring: aliasing behaviour, page swaps,
// fallback copies and alignment validation.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "rewiring/rewiring.h"

namespace cpma {
namespace {

TEST(Rewiring, CreateZeroInitialised) {
  auto r = RewiredRegion::Create(1 << 16, 1 << 16);
  ASSERT_NE(r, nullptr);
  for (size_t i = 0; i < r->region_bytes(); ++i) {
    ASSERT_EQ(r->data()[i], 0);
  }
}

TEST(Rewiring, RoundsUpToPages) {
  auto r = RewiredRegion::Create(1, 1);
  EXPECT_EQ(r->region_bytes() % r->page_size(), 0u);
  EXPECT_GE(r->region_bytes(), r->page_size());
}

TEST(Rewiring, SwapMovesBufferContentIntoRegion) {
  auto r = RewiredRegion::Create(1 << 16, 1 << 16);
  const size_t page = r->page_size();
  std::memset(r->data(), 0xAA, page);
  std::memset(r->buffer(), 0xBB, page);
  r->SwapPages(0, 0, page);
  EXPECT_EQ(static_cast<unsigned char>(r->data()[0]), 0xBB);
  EXPECT_EQ(static_cast<unsigned char>(r->data()[page - 1]), 0xBB);
  if (r->rewiring_enabled()) {
    // True rewiring is an exchange: the old region page is now the buffer.
    EXPECT_EQ(static_cast<unsigned char>(r->buffer()[0]), 0xAA);
  }
}

TEST(Rewiring, SwapAtNonZeroOffsets) {
  auto r = RewiredRegion::Create(1 << 16, 1 << 16);
  const size_t page = r->page_size();
  std::memset(r->buffer() + 2 * page, 0x11, 3 * page);
  r->SwapPages(5 * page, 2 * page, 3 * page);
  for (size_t i = 0; i < 3 * page; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(r->data()[5 * page + i]), 0x11);
  }
  // Neighbours untouched.
  EXPECT_EQ(r->data()[4 * page], 0);
  EXPECT_EQ(r->data()[8 * page], 0);
}

TEST(Rewiring, RepeatedSwapsStayConsistent) {
  auto r = RewiredRegion::Create(1 << 16, 1 << 16);
  const size_t page = r->page_size();
  // Write generation tags through the buffer, swap, verify, repeat. This
  // exercises the backing-table bookkeeping as the mappings fragment.
  for (int gen = 1; gen <= 20; ++gen) {
    const size_t off = (static_cast<size_t>(gen) % 8) * page;
    std::memset(r->buffer() + off, gen, page);
    r->SwapPages(off, off, page);
    ASSERT_EQ(r->data()[off], static_cast<char>(gen)) << "gen " << gen;
  }
}

TEST(Rewiring, CanSwapValidatesAlignment) {
  auto r = RewiredRegion::Create(1 << 16, 1 << 16);
  const size_t page = r->page_size();
  EXPECT_TRUE(r->CanSwap(0, 0, page));
  EXPECT_FALSE(r->CanSwap(1, 0, page));
  EXPECT_FALSE(r->CanSwap(0, 1, page));
  EXPECT_FALSE(r->CanSwap(0, 0, page / 2));
  EXPECT_FALSE(r->CanSwap(0, 0, 0));
  EXPECT_FALSE(r->CanSwap(r->region_bytes(), 0, page));
  EXPECT_TRUE(r->CanSwap(r->region_bytes() - page, 0, page));
}

TEST(Rewiring, LargeMultiPageSwap) {
  const size_t bytes = 1 << 20;
  auto r = RewiredRegion::Create(bytes, bytes);
  std::vector<char> expect(bytes);
  std::iota(expect.begin(), expect.end(), 0);
  std::memcpy(r->buffer(), expect.data(), bytes);
  r->SwapPages(0, 0, bytes);
  EXPECT_EQ(std::memcmp(r->data(), expect.data(), bytes), 0);
}

TEST(Rewiring, RemapCounterAdvances) {
  auto r = RewiredRegion::Create(1 << 16, 1 << 16);
  const uint64_t before = r->num_remaps();
  r->SwapPages(0, 0, r->page_size());
  EXPECT_GT(r->num_remaps(), before);
}

TEST(Rewiring, AliasingAfterInterleavedSwaps) {
  // Swap pages 0 and 1 with buffer pages in opposite order and verify the
  // contents land where expected even as backing offsets scramble.
  auto r = RewiredRegion::Create(1 << 14, 1 << 14);
  const size_t page = r->page_size();
  std::memset(r->buffer() + 0 * page, 0x01, page);
  std::memset(r->buffer() + 1 * page, 0x02, page);
  r->SwapPages(0 * page, 1 * page, page);  // region p0 <- 0x02
  r->SwapPages(1 * page, 0 * page, page);  // region p1 <- 0x01
  EXPECT_EQ(r->data()[0], 0x02);
  EXPECT_EQ(r->data()[page], 0x01);
  // Swap them back out and in once more.
  std::memset(r->buffer() + 2 * page, 0x03, page);
  r->SwapPages(0, 2 * page, page);
  EXPECT_EQ(r->data()[0], 0x03);
}

}  // namespace
}  // namespace cpma
