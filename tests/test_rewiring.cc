// Tests for mmap-based memory rewiring: aliasing behaviour, page swaps,
// fallback copies and alignment validation.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "rewiring/rewiring.h"

namespace cpma {
namespace {

// Scoped CPMA_FORCE_NO_REWIRE=1: the env knob is read once per Create,
// so setting it only around construction pins that region (and only
// that region) to the anonymous fallback backend.
class ForcedNoRewire {
 public:
  ForcedNoRewire() {
    const char* prev = std::getenv("CPMA_FORCE_NO_REWIRE");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("CPMA_FORCE_NO_REWIRE", "1", 1);
  }
  ~ForcedNoRewire() {
    if (had_prev_) {
      setenv("CPMA_FORCE_NO_REWIRE", prev_.c_str(), 1);
    } else {
      unsetenv("CPMA_FORCE_NO_REWIRE");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(Rewiring, CreateZeroInitialised) {
  auto r = RewiredRegion::Create(1 << 16, 1 << 16);
  ASSERT_NE(r, nullptr);
  for (size_t i = 0; i < r->region_bytes(); ++i) {
    ASSERT_EQ(r->data()[i], 0);
  }
}

TEST(Rewiring, RoundsUpToPages) {
  auto r = RewiredRegion::Create(1, 1);
  EXPECT_EQ(r->region_bytes() % r->page_size(), 0u);
  EXPECT_GE(r->region_bytes(), r->page_size());
}

TEST(Rewiring, SwapMovesBufferContentIntoRegion) {
  auto r = RewiredRegion::Create(1 << 16, 1 << 16);
  const size_t page = r->page_size();
  std::memset(r->data(), 0xAA, page);
  std::memset(r->buffer(), 0xBB, page);
  r->SwapPages(0, 0, page);
  EXPECT_EQ(static_cast<unsigned char>(r->data()[0]), 0xBB);
  EXPECT_EQ(static_cast<unsigned char>(r->data()[page - 1]), 0xBB);
  if (r->rewiring_enabled()) {
    // True rewiring is an exchange: the old region page is now the buffer.
    EXPECT_EQ(static_cast<unsigned char>(r->buffer()[0]), 0xAA);
  }
}

TEST(Rewiring, SwapAtNonZeroOffsets) {
  auto r = RewiredRegion::Create(1 << 16, 1 << 16);
  const size_t page = r->page_size();
  std::memset(r->buffer() + 2 * page, 0x11, 3 * page);
  r->SwapPages(5 * page, 2 * page, 3 * page);
  for (size_t i = 0; i < 3 * page; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(r->data()[5 * page + i]), 0x11);
  }
  // Neighbours untouched.
  EXPECT_EQ(r->data()[4 * page], 0);
  EXPECT_EQ(r->data()[8 * page], 0);
}

TEST(Rewiring, RepeatedSwapsStayConsistent) {
  auto r = RewiredRegion::Create(1 << 16, 1 << 16);
  const size_t page = r->page_size();
  // Write generation tags through the buffer, swap, verify, repeat. This
  // exercises the backing-table bookkeeping as the mappings fragment.
  for (int gen = 1; gen <= 20; ++gen) {
    const size_t off = (static_cast<size_t>(gen) % 8) * page;
    std::memset(r->buffer() + off, gen, page);
    r->SwapPages(off, off, page);
    ASSERT_EQ(r->data()[off], static_cast<char>(gen)) << "gen " << gen;
  }
}

TEST(Rewiring, CanSwapValidatesAlignment) {
  auto r = RewiredRegion::Create(1 << 16, 1 << 16);
  const size_t page = r->page_size();
  EXPECT_TRUE(r->CanSwap(0, 0, page));
  EXPECT_FALSE(r->CanSwap(1, 0, page));
  EXPECT_FALSE(r->CanSwap(0, 1, page));
  EXPECT_FALSE(r->CanSwap(0, 0, page / 2));
  EXPECT_FALSE(r->CanSwap(0, 0, 0));
  EXPECT_FALSE(r->CanSwap(r->region_bytes(), 0, page));
  EXPECT_TRUE(r->CanSwap(r->region_bytes() - page, 0, page));
}

TEST(Rewiring, LargeMultiPageSwap) {
  const size_t bytes = 1 << 20;
  auto r = RewiredRegion::Create(bytes, bytes);
  std::vector<char> expect(bytes);
  std::iota(expect.begin(), expect.end(), 0);
  std::memcpy(r->buffer(), expect.data(), bytes);
  r->SwapPages(0, 0, bytes);
  EXPECT_EQ(std::memcmp(r->data(), expect.data(), bytes), 0);
}

TEST(Rewiring, RemapCounterAdvances) {
  auto r = RewiredRegion::Create(1 << 16, 1 << 16);
  const uint64_t before = r->num_remaps();
  r->SwapPages(0, 0, r->page_size());
  EXPECT_GT(r->num_remaps(), before);
}

TEST(Rewiring, AliasingAfterInterleavedSwaps) {
  // Swap pages 0 and 1 with buffer pages in opposite order and verify the
  // contents land where expected even as backing offsets scramble.
  auto r = RewiredRegion::Create(1 << 14, 1 << 14);
  const size_t page = r->page_size();
  std::memset(r->buffer() + 0 * page, 0x01, page);
  std::memset(r->buffer() + 1 * page, 0x02, page);
  r->SwapPages(0 * page, 1 * page, page);  // region p0 <- 0x02
  r->SwapPages(1 * page, 0 * page, page);  // region p1 <- 0x01
  EXPECT_EQ(r->data()[0], 0x02);
  EXPECT_EQ(r->data()[page], 0x01);
  // Swap them back out and in once more.
  std::memset(r->buffer() + 2 * page, 0x03, page);
  r->SwapPages(0, 2 * page, page);
  EXPECT_EQ(r->data()[0], 0x03);
}

// ---------------------------------------- degraded backend (ISSUE 7)
//
// CPMA_FORCE_NO_REWIRE=1 must yield a region that is slower (SwapPages
// copies) but otherwise indistinguishable: same zero-init, same swap
// semantics, same alignment validation. The `norewire` CTest
// configuration re-runs this whole suite plus test_concurrent_pma under
// the env var; these tests additionally pin the contract in-process so
// a plain `ctest` run covers it too.

TEST(RewiringNoRewire, ForcedFallbackIsFullyFunctional) {
  ForcedNoRewire guard;
  Status status;
  auto r = RewiredRegion::Create(1 << 16, 1 << 16, true, &status);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_FALSE(r->rewiring_enabled());
  EXPECT_FALSE(r->degraded_to_copy());  // fallback != degraded-after-failure
  // Zero-initialised, page-rounded, swap moves buffer content.
  const size_t page = r->page_size();
  EXPECT_EQ(r->region_bytes() % page, 0u);
  for (size_t i = 0; i < r->region_bytes(); ++i) ASSERT_EQ(r->data()[i], 0);
  std::memset(r->buffer() + page, 0x5C, 2 * page);
  const uint64_t copies_before = r->num_fallback_copies();
  r->SwapPages(3 * page, page, 2 * page);
  for (size_t i = 0; i < 2 * page; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(r->data()[3 * page + i]), 0x5C);
  }
  EXPECT_EQ(r->data()[2 * page], 0);
  EXPECT_EQ(r->data()[5 * page], 0);
  EXPECT_GT(r->num_fallback_copies(), copies_before);
  // Alignment validation is backend-independent.
  EXPECT_TRUE(r->CanSwap(0, 0, page));
  EXPECT_FALSE(r->CanSwap(1, 0, page));
}

TEST(RewiringNoRewire, ForcedFallbackSurvivesRepeatedSwaps) {
  ForcedNoRewire guard;
  auto r = RewiredRegion::Create(1 << 14, 1 << 14);
  ASSERT_NE(r, nullptr);
  ASSERT_FALSE(r->rewiring_enabled());
  const size_t page = r->page_size();
  for (int gen = 1; gen <= 20; ++gen) {
    const size_t off = (static_cast<size_t>(gen) % 4) * page;
    std::memset(r->buffer() + off, gen, page);
    r->SwapPages(off, off, page);
    ASSERT_EQ(r->data()[off], static_cast<char>(gen)) << "gen " << gen;
  }
}

// --------------------------------------------- COW snapshot views (ISSUE 9)

TEST(RewiringSnapshot, ViewAliasesRegionUntilPreserved) {
  auto r = RewiredRegion::Create(1 << 16, 1 << 16);
  ASSERT_NE(r, nullptr);
  if (!r->rewiring_enabled()) GTEST_SKIP() << "fallback backend: no views";
  std::memset(r->data(), 0x5A, r->region_bytes());

  Status st;
  auto view = r->CreateSnapshotView(&st);
  ASSERT_NE(view, nullptr) << st.ToString();
  EXPECT_EQ(r->snapshot_views_open(), 1u);
  EXPECT_EQ(view->bytes(), r->region_bytes());
  // Unpreserved pages are shared: the view follows live writes.
  EXPECT_EQ(static_cast<unsigned char>(view->data()[0]), 0x5A);
  r->data()[0] = 0x11;
  EXPECT_EQ(static_cast<unsigned char>(view->data()[0]), 0x11);

  // Preserve the whole region, then mutate: the view image is frozen.
  ASSERT_EQ(r->CowPreserveRange(*view, 0, r->region_bytes()),
            RewiredRegion::CowResult::kFrozen);
  EXPECT_GT(r->cow_page_copies(), 0u);
  EXPECT_GT(r->cow_retained_page_bytes(), 0u);
  std::memset(r->data(), 0xEE, r->region_bytes());
  EXPECT_EQ(static_cast<unsigned char>(view->data()[0]), 0x11);
  for (size_t i = 1; i < view->bytes(); ++i) {
    ASSERT_EQ(static_cast<unsigned char>(view->data()[i]), 0x5A) << i;
  }

  view.reset();
  EXPECT_EQ(r->snapshot_views_open(), 0u);
  // Superseded pages were unpinned and recycled at view close.
  EXPECT_EQ(r->cow_retained_page_bytes(), 0u);
  EXPECT_EQ(r->num_snapshot_views(), 1u);
}

TEST(RewiringSnapshot, RemapPublicationWhileViewOpen) {
  // The ISSUE 9 satellite: SwapPages (the rebalancer's remap publish)
  // while a snapshot view is open. A preserved range must stay frozen
  // across the publication; the live region sees the buffer content.
  auto r = RewiredRegion::Create(1 << 16, 1 << 16);
  ASSERT_NE(r, nullptr);
  if (!r->rewiring_enabled()) GTEST_SKIP() << "fallback backend: no views";
  const size_t page = r->page_size();
  std::memset(r->data(), 0xAA, 4 * page);

  auto view = r->CreateSnapshotView(nullptr);
  ASSERT_NE(view, nullptr);
  ASSERT_EQ(r->CowPreserveRange(*view, 0, 4 * page),
            RewiredRegion::CowResult::kFrozen);

  std::memset(r->buffer(), 0xBB, 2 * page);
  r->SwapPages(0, 0, 2 * page);
  EXPECT_EQ(static_cast<unsigned char>(r->data()[0]), 0xBB);
  EXPECT_EQ(static_cast<unsigned char>(r->data()[2 * page]), 0xAA);
  for (size_t i = 0; i < 4 * page; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(view->data()[i]), 0xAA) << i;
  }

  // Any re-backed page — whether swapped by the publication above or
  // remapped by the preserve itself — makes a later preserve of that
  // range report stale: the caller must fall back to a heap copy (the
  // view's image of those pages is already fixed either way).
  EXPECT_EQ(r->CowPreserveRange(*view, 0, 2 * page),
            RewiredRegion::CowResult::kStale);
  EXPECT_EQ(r->CowPreserveRange(*view, 2 * page, 2 * page),
            RewiredRegion::CowResult::kStale);
}

TEST(RewiringSnapshot, TwoViewsFreezeIndependently) {
  auto r = RewiredRegion::Create(1 << 15, 1 << 15);
  ASSERT_NE(r, nullptr);
  if (!r->rewiring_enabled()) GTEST_SKIP() << "fallback backend: no views";
  const size_t page = r->page_size();

  std::memset(r->data(), 1, page);
  auto v1 = r->CreateSnapshotView(nullptr);
  ASSERT_NE(v1, nullptr);
  ASSERT_EQ(r->CowPreserveRange(*v1, 0, page),
            RewiredRegion::CowResult::kFrozen);

  std::memset(r->data(), 2, page);
  auto v2 = r->CreateSnapshotView(nullptr);
  ASSERT_NE(v2, nullptr);
  ASSERT_EQ(r->CowPreserveRange(*v2, 0, page),
            RewiredRegion::CowResult::kFrozen);

  std::memset(r->data(), 3, page);
  EXPECT_EQ(v1->data()[0], 1);
  EXPECT_EQ(v2->data()[0], 2);
  EXPECT_EQ(r->data()[0], 3);

  // Close the older view first; the newer one keeps its image.
  v1.reset();
  EXPECT_EQ(v2->data()[0], 2);
  v2.reset();
  EXPECT_EQ(r->cow_retained_page_bytes(), 0u);
}

TEST(RewiringSnapshot, FallbackBackendReportsUnavailable) {
  ForcedNoRewire guard;
  auto r = RewiredRegion::Create(1 << 14, 1 << 14);
  ASSERT_NE(r, nullptr);
  ASSERT_FALSE(r->rewiring_enabled());
  Status st;
  auto view = r->CreateSnapshotView(&st);
  EXPECT_EQ(view, nullptr);
  EXPECT_FALSE(st.ok());
}

TEST(RewiringNoRewire, EnvReadPerCreateNotProcessWide) {
  std::unique_ptr<RewiredRegion> forced;
  {
    ForcedNoRewire guard;
    forced = RewiredRegion::Create(1 << 14, 1 << 14);
  }
  auto fresh = RewiredRegion::Create(1 << 14, 1 << 14);
  ASSERT_NE(forced, nullptr);
  ASSERT_NE(fresh, nullptr);
  EXPECT_FALSE(forced->rewiring_enabled());
  // With the env var restored, a new region negotiates its own backend
  // (real rewiring on any Linux box where memfd works).
  if (fresh->rewiring_enabled()) {
    EXPECT_EQ(fresh->num_fallback_copies(), 0u);
  }
}

}  // namespace
}  // namespace cpma
