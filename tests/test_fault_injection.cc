// Graceful-degradation suite (ISSUE 7): every library layer that gained
// a failpoint is driven through its injected-failure path and must
// degrade — never abort, never lose data:
//
//   rewiring   create falls back to anonymous mappings; failed remap
//              publications restore the old mappings, publish by copy
//              and stick the region in copy mode
//   storage    TryCreate surfaces ResourceExhausted instead of aborting
//   threadpool spawn failures run the pool degraded (inline at worst)
//   epoch_gc   slot-chunk allocation failure installs the emergency
//              reserve chunk; registration still succeeds
//   rebalancer resize allocation failure retries, degrades, and on
//              exhaustion requeues every drained op (exact final state
//              after recovery), reporting through the error callback;
//              the stall watchdog trips on an injected master stall
//
// All tests skip when failpoints are compiled out
// (CPMA_ENABLE_FAILPOINTS=OFF).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch_gc.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "concurrent/concurrent_pma.h"
#include "pma/storage.h"
#include "rewiring/rewiring.h"

namespace cpma {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kCompiledIn) {
      GTEST_SKIP() << "failpoints compiled out (CPMA_ENABLE_FAILPOINTS=OFF)";
    }
    failpoint::ClearAll();
  }
  void TearDown() override { failpoint::ClearAll(); }
};

// ------------------------------------------------------------- rewiring

// Fill the buffer with `fill`, swap one page, and check it arrived.
void SwapOnePageAndVerify(RewiredRegion* region, char fill) {
  const size_t page = region->page_size();
  std::memset(region->buffer(), fill, page);
  std::memset(region->data(), '.', page);
  region->SwapPages(0, 0, page);
  for (size_t i = 0; i < page; ++i) {
    ASSERT_EQ(region->data()[i], fill) << "byte " << i;
  }
}

TEST_F(FaultInjectionTest, RegionCreateFallsBackOnMemfdFailure) {
  ASSERT_TRUE(failpoint::Set("rewiring.memfd", "once"));
  Status st;
  auto region = RewiredRegion::Create(1 << 20, 1 << 20, false, &st);
  ASSERT_NE(region, nullptr);
  EXPECT_TRUE(st.ok());
  EXPECT_FALSE(region->rewiring_enabled());
  SwapOnePageAndVerify(region.get(), 'A');
  EXPECT_GE(region->num_fallback_copies(), 1u);
}

TEST_F(FaultInjectionTest, RegionCreateFallsBackOnFtruncateFailure) {
  ASSERT_TRUE(failpoint::Set("rewiring.ftruncate", "once"));
  auto region = RewiredRegion::Create(1 << 20, 1 << 20, false);
  ASSERT_NE(region, nullptr);
  EXPECT_FALSE(region->rewiring_enabled());
  SwapOnePageAndVerify(region.get(), 'B');
}

TEST_F(FaultInjectionTest, RegionCreateFallsBackOnMmapFailure) {
  ASSERT_TRUE(failpoint::Set("rewiring.mmap", "once"));
  auto region = RewiredRegion::Create(1 << 20, 1 << 20, false);
  ASSERT_NE(region, nullptr);
  EXPECT_FALSE(region->rewiring_enabled());
  SwapOnePageAndVerify(region.get(), 'C');
}

TEST_F(FaultInjectionTest, RegionCreateFailsOnlyWhenLastRungFails) {
  ASSERT_TRUE(failpoint::Set("rewiring.memfd", "always"));
  ASSERT_TRUE(failpoint::Set("rewiring.fallback_alloc", "always"));
  Status st;
  auto region = RewiredRegion::Create(1 << 20, 1 << 20, false, &st);
  EXPECT_EQ(region, nullptr);
  EXPECT_EQ(st.code(), Status::Code::kResourceExhausted);
  // Disarm the last rung: creation recovers (still no memfd).
  failpoint::Clear("rewiring.fallback_alloc");
  st = Status::OK();
  region = RewiredRegion::Create(1 << 20, 1 << 20, false, &st);
  ASSERT_NE(region, nullptr);
  EXPECT_TRUE(st.ok());
  EXPECT_FALSE(region->rewiring_enabled());
}

TEST_F(FaultInjectionTest, RemapPublicationFailureDegradesToCopy) {
  auto region = RewiredRegion::Create(1 << 20, 1 << 20, false);
  ASSERT_NE(region, nullptr);
  if (!region->rewiring_enabled()) {
    GTEST_SKIP() << "no memfd rewiring in this environment";
  }
  ASSERT_TRUE(failpoint::Set("rewiring.remap", "once"));
  // The failed publication must still publish (by copy) and the region
  // must permanently switch to copy mode.
  SwapOnePageAndVerify(region.get(), 'D');
  EXPECT_TRUE(region->degraded_to_copy());
  EXPECT_FALSE(region->rewiring_enabled());
  EXPECT_EQ(region->num_remap_failures(), 1u);
  EXPECT_GE(region->num_fallback_copies(), 1u);
  // Later swaps keep working in copy mode.
  SwapOnePageAndVerify(region.get(), 'E');
}

TEST_F(FaultInjectionTest, RemapRunTransientFailureRecoversInPlace) {
  auto region = RewiredRegion::Create(1 << 20, 1 << 20, false);
  ASSERT_NE(region, nullptr);
  if (!region->rewiring_enabled()) {
    GTEST_SKIP() << "no memfd rewiring in this environment";
  }
  // A single transient per-run mmap failure is absorbed by the backoff
  // retry: the publication still lands as a remap, nothing degrades.
  ASSERT_TRUE(failpoint::Set("rewiring.remap_run", "once"));
  SwapOnePageAndVerify(region.get(), 'F');
  EXPECT_FALSE(region->degraded_to_copy());
  EXPECT_TRUE(region->rewiring_enabled());
  EXPECT_EQ(region->num_remap_failures(), 0u);
  EXPECT_GE(region->num_remaps(), 1u);
}

TEST_F(FaultInjectionTest, RemapRunExhaustionRestoresThenDegrades) {
  auto region = RewiredRegion::Create(1 << 20, 1 << 20, false);
  ASSERT_NE(region, nullptr);
  if (!region->rewiring_enabled()) {
    GTEST_SKIP() << "no memfd rewiring in this environment";
  }
  // Every attempt of every run fails: the swap must restore the original
  // mappings (the restore path runs with failpoints suppressed, as a
  // real recovery would reuse already-reserved resources) and publish by
  // copy.
  ASSERT_TRUE(failpoint::Set("rewiring.remap_run", "always"));
  SwapOnePageAndVerify(region.get(), 'G');
  failpoint::Clear("rewiring.remap_run");
  EXPECT_TRUE(region->degraded_to_copy());
  EXPECT_EQ(region->num_remap_failures(), 1u);
  SwapOnePageAndVerify(region.get(), 'H');
}

// -------------------------------------------------------------- storage

TEST_F(FaultInjectionTest, StorageTryCreateSurfacesStatus) {
  ASSERT_TRUE(failpoint::Set("storage.create", "once"));
  Status st;
  auto storage = Storage::TryCreate(8, 32, false, &st);
  EXPECT_EQ(storage, nullptr);
  EXPECT_EQ(st.code(), Status::Code::kResourceExhausted);
  // The failpoint has recovered: the retry succeeds.
  st = Status::OK();
  storage = Storage::TryCreate(8, 32, false, &st);
  ASSERT_NE(storage, nullptr);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(storage->num_segments(), 8u);
}

// ----------------------------------------------------------- threadpool

TEST_F(FaultInjectionTest, ThreadPoolRunsInlineWhenNoThreadSpawns) {
  ASSERT_TRUE(failpoint::Set("threadpool.spawn", "always"));
  ThreadPool pool(3);
  failpoint::Clear("threadpool.spawn");
  EXPECT_EQ(pool.num_threads(), 0u);
  EXPECT_EQ(pool.num_spawn_failures(), 3u);
  // Submit must still execute the task (inline on the caller).
  std::atomic<int> ran{0};
  WaitGroup wg;
  wg.Add(4);
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      ran.fetch_add(1);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(ran.load(), 4);
}

TEST_F(FaultInjectionTest, ThreadPoolRunsDegradedOnPartialSpawn) {
  ASSERT_TRUE(failpoint::Set("threadpool.spawn", "times:1"));
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 2u);
  EXPECT_EQ(pool.num_spawn_failures(), 1u);
  std::atomic<int> ran{0};
  WaitGroup wg;
  wg.Add(8);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      ran.fetch_add(1);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(ran.load(), 8);
}

// ------------------------------------------------------------- epoch GC

TEST_F(FaultInjectionTest, EpochGCInstallsEmergencyChunkOnGrowthFailure) {
  EpochGC::Options opts;
  opts.initial_threads = 1;  // one slot chunk; slot 33 forces growth
  EpochGC gc(opts);
  ASSERT_TRUE(failpoint::Set("epoch_gc.slot_chunk", "always"));
  std::vector<EpochSlot*> slots;
  std::set<EpochSlot*> distinct;
  for (int i = 0; i < 40; ++i) {
    EpochSlot* s = gc.RegisterThread();
    ASSERT_NE(s, nullptr) << "registration " << i;
    slots.push_back(s);
    distinct.insert(s);
  }
  EXPECT_EQ(distinct.size(), slots.size());
  EXPECT_GE(failpoint::Fires("epoch_gc.slot_chunk"), 1u);
  // The emergency-backed slots are fully functional.
  std::atomic<int> freed{0};
  gc.Enter(slots.back());
  gc.Retire([](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
            &freed, 8);
  gc.Collect();
  EXPECT_EQ(freed.load(), 0) << "pinned epoch must block reclamation";
  gc.Exit(slots.back());
  gc.Collect();
  EXPECT_EQ(freed.load(), 1);
  for (auto* s : slots) gc.UnregisterThread(s);
}

// ----------------------------------------------------------- rebalancer

ConcurrentConfig SmallConfig(ConcurrentConfig::AsyncMode mode) {
  ConcurrentConfig cfg;
  cfg.pma.segment_capacity = 32;
  cfg.segments_per_gate = 4;
  cfg.rebalancer_workers = 2;
  cfg.async_mode = mode;
  cfg.t_delay_ms = 1;
  cfg.strict_async_order = true;
  return cfg;
}

TEST_F(FaultInjectionTest, ResizeRetriesThroughTransientAllocFailure) {
  ConcurrentPMA pma(SmallConfig(ConcurrentConfig::AsyncMode::kSync));
  // Two transient failures: the in-resize retry rungs absorb them
  // without ever surfacing an error.
  ASSERT_TRUE(failpoint::Set("storage.create", "times:2"));
  constexpr Key kKeys = 4000;
  for (Key k = 0; k < kKeys; ++k) pma.Insert(k, k + 1);
  pma.Flush();
  ASSERT_GE(pma.num_resizes(), 1u);
  EXPECT_GE(pma.num_rebalance_retries(), 2u);
  EXPECT_TRUE(pma.last_error().ok()) << pma.last_error().ToString();
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  EXPECT_EQ(pma.Size(), static_cast<size_t>(kKeys));
  for (Key k = 0; k < kKeys; ++k) {
    Value v = 0;
    ASSERT_TRUE(pma.Find(k, &v)) << "key " << k;
    ASSERT_EQ(v, k + 1);
  }
}

struct ResizeExhaustionCase {
  ConcurrentConfig::AsyncMode mode;
  const char* name;
};

class ResizeExhaustionTest
    : public FaultInjectionTest,
      public ::testing::WithParamInterface<ResizeExhaustionCase> {};

TEST_P(ResizeExhaustionTest, RequeuesOpsAndRecoversExactState) {
  ConcurrentPMA pma(SmallConfig(GetParam().mode));
  std::atomic<int> errors{0};
  Status first_error;
  std::mutex first_error_mu;
  pma.SetErrorCallback([&](const Status& s) {
    errors.fetch_add(1);
    std::lock_guard<std::mutex> lk(first_error_mu);
    if (first_error.ok()) first_error = s;
  });
  // Enough consecutive failures to exhaust a whole resize ladder (3
  // attempts per resize at this size) at least twice — exercising the
  // requeue + deferred-retry path — before recovering for good.
  ASSERT_TRUE(failpoint::Set("storage.create", "times:8"));
  constexpr Key kKeys = 4000;
  for (Key k = 0; k < kKeys; ++k) pma.Insert(k, k * 2 + 1);
  pma.Flush();
  failpoint::ClearAll();
  // The storm is over and Flush drained everything: the final state must
  // be exact — no lost or duplicated op — and the failure must have been
  // reported.
  EXPECT_GE(errors.load(), 1);
  {
    std::lock_guard<std::mutex> lk(first_error_mu);
    EXPECT_EQ(first_error.code(), Status::Code::kResourceExhausted)
        << first_error.ToString();
  }
  EXPECT_FALSE(pma.last_error().ok());
  EXPECT_GE(pma.num_rebalance_retries(), 3u);
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  EXPECT_EQ(pma.Size(), static_cast<size_t>(kKeys));
  for (Key k = 0; k < kKeys; ++k) {
    Value v = 0;
    ASSERT_TRUE(pma.Find(k, &v)) << "key " << k;
    ASSERT_EQ(v, k * 2 + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ResizeExhaustionTest,
    ::testing::Values(
        ResizeExhaustionCase{ConcurrentConfig::AsyncMode::kSync, "sync"},
        ResizeExhaustionCase{ConcurrentConfig::AsyncMode::kOneByOne, "1by1"},
        ResizeExhaustionCase{ConcurrentConfig::AsyncMode::kBatch, "batch"}),
    [](const ::testing::TestParamInfo<ResizeExhaustionCase>& info) {
      return std::string(info.param.name);
    });

TEST_F(FaultInjectionTest, WatchdogTripsOnInjectedStall) {
  ConcurrentConfig cfg = SmallConfig(ConcurrentConfig::AsyncMode::kSync);
  cfg.watchdog_ms = 20;
  ConcurrentPMA pma(cfg);
  EXPECT_EQ(pma.num_watchdog_trips(), 0u);
  // Stall the master's next dispatch for ~2.5 watchdog intervals: the
  // checker must observe a frozen stamp at least once.
  ASSERT_TRUE(failpoint::Set("rebalancer.stall", "once"));
  for (Key k = 0; k < 2000; ++k) pma.Insert(k, k);
  pma.Flush();
  // The stall is synchronous inside a dispatch that Flush waited for, so
  // the trip (if any is ever going to happen) has been recorded by now.
  EXPECT_GE(pma.num_watchdog_trips(), 1u);
  EXPECT_EQ(failpoint::Fires("rebalancer.stall"), 1u);
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  EXPECT_EQ(pma.Size(), 2000u);
}

TEST_F(FaultInjectionTest, WatchdogStaysQuietOnHealthyRun) {
  ConcurrentConfig cfg = SmallConfig(ConcurrentConfig::AsyncMode::kBatch);
  cfg.watchdog_ms = 200;  // generous vs. millisecond-scale rebalances
  ConcurrentPMA pma(cfg);
  for (Key k = 0; k < 4000; ++k) pma.Insert(k, k);
  pma.Flush();
  EXPECT_EQ(pma.num_watchdog_trips(), 0u);
}

TEST_F(FaultInjectionTest, FallbackBackendReported) {
  ConcurrentConfig cfg = SmallConfig(ConcurrentConfig::AsyncMode::kSync);
  cfg.pma.use_rewiring = false;
  ConcurrentPMA pma(cfg);
  EXPECT_TRUE(pma.fallback_backend_active());
  for (Key k = 0; k < 1000; ++k) pma.Insert(k, k);
  pma.Flush();
  EXPECT_EQ(pma.Size(), 1000u);
  EXPECT_EQ(pma.storage_num_remaps(), 0u);
}

}  // namespace
}  // namespace cpma
