// Unit tests for fence-key recomputation (paper §3.1): contiguity
// (high(g) = low(g+1) - 1), boundary preservation, empty-chunk collapse,
// and index separator synchronisation. Exercised directly through a
// hand-built snapshot rather than through the full concurrent machinery.

#include <gtest/gtest.h>

#include "concurrent/concurrent_pma.h"

namespace cpma {
namespace {

// Build a snapshot with 4 gates x 2 segments x capacity 4.
std::unique_ptr<Structure> MakeSnapshot() {
  auto snap = std::make_unique<Structure>();
  snap->version = 1;
  snap->segments_per_gate = 2;
  snap->storage = std::make_unique<Storage>(8, 4, true);
  for (size_t g = 0; g < 4; ++g) {
    snap->gates.emplace_back(static_cast<uint32_t>(g), g * 2, (g + 1) * 2);
  }
  snap->index = std::make_unique<StaticIndex>(4, 4);
  return snap;
}

void PutSegment(Storage* st, size_t seg, std::vector<Key> keys) {
  for (size_t i = 0; i < keys.size(); ++i) {
    st->segment(seg)[i] = {keys[i], keys[i]};
  }
  st->set_card(seg, static_cast<uint32_t>(keys.size()));
  st->RebuildRoutes(seg, seg + 1);
}

TEST(Fences, ContiguousAfterFullRecompute) {
  auto snap = MakeSnapshot();
  Storage* st = snap->storage.get();
  PutSegment(st, 0, {10, 20});
  PutSegment(st, 1, {30});
  PutSegment(st, 2, {40, 50});
  PutSegment(st, 3, {60});
  PutSegment(st, 4, {70});
  PutSegment(st, 5, {80});
  PutSegment(st, 6, {90});
  PutSegment(st, 7, {95, 99});
  RecomputeFences(snap.get(), 0, 4);

  EXPECT_EQ(snap->gates[0].low_fence(), kKeyMin);
  EXPECT_EQ(snap->gates[1].low_fence(), 40u);
  EXPECT_EQ(snap->gates[2].low_fence(), 70u);
  EXPECT_EQ(snap->gates[3].low_fence(), 90u);
  EXPECT_EQ(snap->gates[3].high_fence(), kKeySentinel);
  for (size_t g = 0; g + 1 < 4; ++g) {
    EXPECT_EQ(snap->gates[g].high_fence(),
              snap->gates[g + 1].low_fence() - 1);
    EXPECT_EQ(snap->index->separator(g), snap->gates[g].low_fence());
  }
}

TEST(Fences, PartialWindowPreservesOuterBoundaries) {
  auto snap = MakeSnapshot();
  Storage* st = snap->storage.get();
  for (size_t s = 0; s < 8; ++s) {
    PutSegment(st, s, {static_cast<Key>(100 + s * 10)});
  }
  RecomputeFences(snap.get(), 0, 4);
  const Key low1_before = snap->gates[1].low_fence();
  const Key high2_before = snap->gates[2].high_fence();
  // Gate 2 covers segments 4-5; move its chunk minimum down and
  // recompute the window [1, 3).
  PutSegment(st, 4, {135, 136});
  RecomputeFences(snap.get(), 1, 3);
  EXPECT_EQ(snap->gates[1].low_fence(), low1_before)
      << "window-left low fence must not change";
  EXPECT_EQ(snap->gates[2].high_fence(), high2_before)
      << "window-right high fence must not change";
  EXPECT_EQ(snap->gates[2].low_fence(), 135u);
  EXPECT_EQ(snap->gates[1].high_fence(), 134u);
}

TEST(Fences, EmptyChunksCollapseOntoNextBoundary) {
  auto snap = MakeSnapshot();
  Storage* st = snap->storage.get();
  PutSegment(st, 0, {10});
  PutSegment(st, 1, {20});
  // Gates 1 and 2 empty, gate 3 holds keys.
  PutSegment(st, 6, {500});
  PutSegment(st, 7, {600});
  RecomputeFences(snap.get(), 0, 4);
  // Gate 3 low = first key of its chunk.
  EXPECT_EQ(snap->gates[3].low_fence(), 500u);
  // Empty gates 1/2 collapse: low = high + 1 (empty [low, high] range).
  EXPECT_GT(snap->gates[1].low_fence(), snap->gates[1].high_fence());
  EXPECT_GT(snap->gates[2].low_fence(), snap->gates[2].high_fence());
  // A key in (20, 500) must route leftwards out of the empty gates:
  // fence check reports kTooHigh at gate 0? No: 300 <= high(0)?
  // high(0) = low(1) - 1 = 499 - 1? Verify that some gate accepts it.
  bool accepted = false;
  for (size_t g = 0; g < 4; ++g) {
    if (300 >= snap->gates[g].low_fence() &&
        300 <= snap->gates[g].high_fence()) {
      accepted = true;
      EXPECT_EQ(g, 0u) << "key 300 must belong to the last non-empty "
                          "gate on its left";
    }
  }
  EXPECT_TRUE(accepted);
}

TEST(Fences, AllEmptySuffix) {
  auto snap = MakeSnapshot();
  Storage* st = snap->storage.get();
  PutSegment(st, 0, {42});
  RecomputeFences(snap.get(), 0, 4);
  // Every user key must be accepted by exactly one gate.
  for (Key probe : std::vector<Key>{0, 41, 42, 43, kKeyMax}) {
    int owners = 0;
    for (size_t g = 0; g < 4; ++g) {
      owners += probe >= snap->gates[g].low_fence() &&
                probe <= snap->gates[g].high_fence();
    }
    EXPECT_EQ(owners, 1) << "probe " << probe;
  }
}

}  // namespace
}  // namespace cpma
