// Tests for the dynamic CRS graph (§6): edge semantics, neighbour scans,
// analytics correctness on known topologies, and consistency under
// concurrent edge churn + analytics.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "graph/algorithms.h"
#include "graph/dynamic_graph.h"

namespace cpma {
namespace {

TEST(DynamicGraph, EdgeBasics) {
  DynamicGraph g;
  g.AddEdge(1, 2, 10);
  g.AddEdge(1, 3, 20);
  g.AddEdge(2, 3, 30);
  g.Flush();
  Value w = 0;
  EXPECT_TRUE(g.HasEdge(1, 2, &w));
  EXPECT_EQ(w, 10u);
  EXPECT_FALSE(g.HasEdge(2, 1, nullptr));
  EXPECT_EQ(g.NumEdges(), 3u);
  g.RemoveEdge(1, 2);
  g.Flush();
  EXPECT_FALSE(g.HasEdge(1, 2, nullptr));
  EXPECT_EQ(g.NumEdges(), 2u);
  // Re-weight.
  g.AddEdge(2, 3, 99);
  g.Flush();
  EXPECT_TRUE(g.HasEdge(2, 3, &w));
  EXPECT_EQ(w, 99u);
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(DynamicGraph, NeighborsSortedAndBounded) {
  DynamicGraph g;
  g.AddEdge(5, 9);
  g.AddEdge(5, 1);
  g.AddEdge(5, 4);
  g.AddEdge(4, 7);  // different source: must not appear
  g.AddEdge(6, 0);
  g.Flush();
  std::vector<VertexId> ns;
  g.ForEachNeighbor(5, [&](VertexId v, Value) {
    ns.push_back(v);
    return true;
  });
  ASSERT_EQ(ns.size(), 3u);
  EXPECT_EQ(ns[0], 1u);
  EXPECT_EQ(ns[1], 4u);
  EXPECT_EQ(ns[2], 9u);
  EXPECT_EQ(g.OutDegree(5), 3u);
  EXPECT_EQ(g.OutDegree(42), 0u);
}

TEST(DynamicGraph, EdgeKeyBoundaries) {
  DynamicGraph g;
  g.AddEdge(0, 0);
  g.AddEdge(0, UINT32_MAX);
  g.AddEdge(1, 0);
  g.Flush();
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 1u);
}

TEST(Bfs, PathGraphDistances) {
  DynamicGraph g;
  for (VertexId v = 0; v < 100; ++v) g.AddEdge(v, v + 1);
  g.Flush();
  auto dist = Bfs(g, 0);
  for (VertexId v = 0; v <= 100; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, DisconnectedIsUnreachable) {
  DynamicGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  g.Flush();
  auto dist = Bfs(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Bfs, StarGraph) {
  DynamicGraph g;
  for (VertexId v = 1; v <= 50; ++v) g.AddEdge(0, v);
  g.Flush();
  auto dist = Bfs(g, 0);
  for (VertexId v = 1; v <= 50; ++v) EXPECT_EQ(dist[v], 1u);
}

TEST(PageRank, SumsToOneAndOrdersHubs) {
  DynamicGraph g;
  // Vertex 0 is pointed at by everyone; 0 points at 1.
  for (VertexId v = 1; v <= 20; ++v) g.AddEdge(v, 0);
  g.AddEdge(0, 1);
  g.Flush();
  auto pr = PageRank(g, 30);
  double sum = 0;
  for (double r : pr) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  for (VertexId v = 2; v <= 20; ++v) {
    EXPECT_GT(pr[0], pr[v]) << "the hub must out-rank leaves";
  }
  EXPECT_GT(pr[1], pr[2]) << "0's sole target inherits rank";
}

TEST(ConnectedComponents, TwoIslands) {
  DynamicGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(10, 11);
  g.Flush();
  auto label = ConnectedComponents(g);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[1], label[2]);
  EXPECT_EQ(label[10], label[11]);
  EXPECT_NE(label[0], label[10]);
}

// ISSUE 10: snapshot-fed analytics are EXACT. BFS/PageRank over a
// frozen GraphSnapshot must equal — bitwise, for the PageRank doubles —
// a sequential reference computed from the snapshot's own cut, while
// writers storm the live graph the whole time. The reference mirrors
// algorithms.cc's iteration order over the extracted edge list, so any
// divergence means a snapshot scan leaked live state (and the retry
// counter pins the structurally-zero-retries property on top).
TEST(GraphSnapshot, AnalyticsExactUnderWriterStorm) {
  DynamicGraph g;
  // A connected core the storm keeps mutating around.
  for (VertexId v = 0; v < 300; ++v) g.AddEdge(v, v + 1);
  for (VertexId v = 0; v < 300; v += 3) g.AddEdge(v + 1, v / 2);
  g.Flush();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      Random rng(100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        VertexId s = static_cast<VertexId>(rng.NextBounded(600));
        VertexId d = static_cast<VertexId>(rng.NextBounded(600));
        if (rng.NextBounded(4) == 0) {
          g.RemoveEdge(s, d);
        } else {
          g.AddEdge(s, d, rng.NextBounded(1000));
        }
      }
    });
  }

  for (int round = 0; round < 5; ++round) {
    auto snap = g.Snapshot();
    const VertexId n = snap->NumVertices();

    // Extract the frozen cut once; ForEachEdge yields CRS order
    // (ascending (src,dst)), the order the algorithms consume.
    struct Edge { VertexId s, d; };
    std::vector<Edge> edges;
    snap->ForEachEdge([&](VertexId s, VertexId d, Value) {
      edges.push_back({s, d});
      return true;
    });

    // --- reference BFS over the extracted cut (mirrors Bfs()).
    std::vector<std::vector<VertexId>> adj(n);
    for (const Edge& e : edges) {
      if (e.s < n && e.d < n) adj[e.s].push_back(e.d);  // stays sorted
    }
    std::vector<uint32_t> ref_dist(n, kUnreachable);
    ref_dist[0] = 0;
    std::deque<VertexId> frontier{0};
    while (!frontier.empty()) {
      const VertexId u = frontier.front();
      frontier.pop_front();
      for (VertexId v : adj[u]) {
        if (ref_dist[v] == kUnreachable) {
          ref_dist[v] = ref_dist[u] + 1;
          frontier.push_back(v);
        }
      }
    }

    // --- reference PageRank over the cut (mirrors PageRank(), same
    // edge order, same arithmetic => bitwise-equal doubles).
    const int iters = 3;
    const double damping = 0.85;
    std::vector<double> ref_rank(n, 1.0 / n);
    std::vector<double> next(n);
    std::vector<uint32_t> out_degree(n, 0u);
    for (const Edge& e : edges) {
      if (e.s < n) ++out_degree[e.s];
    }
    for (int it = 0; it < iters; ++it) {
      std::fill(next.begin(), next.end(), 0.0);
      double dangling = 0.0;
      for (VertexId v = 0; v < n; ++v) {
        if (out_degree[v] == 0) dangling += ref_rank[v];
      }
      for (const Edge& e : edges) {
        if (e.s < n && e.d < n && out_degree[e.s] > 0) {
          next[e.d] += ref_rank[e.s] / out_degree[e.s];
        }
      }
      for (VertexId v = 0; v < n; ++v) {
        ref_rank[v] = (1.0 - damping) / n +
                      damping * (next[v] + dangling / n);
      }
    }

    // --- the real algorithms over the frozen view, mid-storm.
    const auto dist = Bfs(*snap, 0);
    const auto rank = PageRank(*snap, iters);
    ASSERT_EQ(dist.size(), ref_dist.size());
    ASSERT_EQ(rank.size(), ref_rank.size());
    for (VertexId v = 0; v < n; ++v) {
      ASSERT_EQ(dist[v], ref_dist[v]) << "BFS diverged at v=" << v
                                      << " round=" << round;
      // Bitwise: same cut, same order, same arithmetic.
      ASSERT_EQ(rank[v], ref_rank[v]) << "PageRank diverged at v=" << v
                                      << " round=" << round;
    }
    // And a second pass over the same snapshot reproduces itself.
    const auto dist2 = Bfs(*snap, 0);
    ASSERT_EQ(dist, dist2);
    EXPECT_EQ(snap->snapshot().scan_retries(), 0u)
        << "snapshot scans must be structurally retry-free";
  }

  stop.store(true);
  for (auto& t : writers) t.join();
  g.Flush();
  std::string err;
  EXPECT_TRUE(g.edges().CheckInvariants(&err)) << err;
}

TEST(DynamicGraph, ConcurrentChurnWithAnalytics) {
  DynamicGraph g;
  // Stable backbone path 0..200 that churn never touches.
  for (VertexId v = 0; v < 200; ++v) g.AddEdge(v, v + 1);
  g.Flush();
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread analytics([&] {
    while (!stop.load()) {
      auto dist = Bfs(g, 0);
      // The backbone must always be reachable with exact distances.
      for (VertexId v = 0; v <= 200; v += 40) {
        if (dist[v] != v) {
          failed.store(true);
          return;
        }
      }
    }
  });
  std::vector<std::thread> updaters;
  for (int t = 0; t < 4; ++t) {
    updaters.emplace_back([&, t] {
      Random rng(t);
      for (int i = 0; i < 20000; ++i) {
        // Churn edges among vertices 1000+ (disjoint from the backbone).
        VertexId s = 1000 + static_cast<VertexId>(rng.NextBounded(500));
        VertexId d = 1000 + static_cast<VertexId>(rng.NextBounded(500));
        if (rng.NextBounded(2) == 0) {
          g.AddEdge(s, d);
        } else {
          g.RemoveEdge(s, d);
        }
      }
    });
  }
  for (auto& t : updaters) t.join();
  stop.store(true);
  analytics.join();
  g.Flush();
  EXPECT_FALSE(failed.load());
  std::string err;
  EXPECT_TRUE(g.edges().CheckInvariants(&err)) << err;
}

}  // namespace
}  // namespace cpma
