// Durability tier (ISSUE 9): CRC32C kernels, checkpoint round-trips,
// and torn/tampered-checkpoint refusal.
//
//  - Crc32c*: known iSCSI vectors, streaming == one-shot, and the
//    scalar/SSE4.2 kernels cross-checked on random buffers (the
//    property the runtime dispatch relies on).
//  - Roundtrip*: snapshot -> checkpoint -> restore reproduces the exact
//    key/value map for a single PMA, an empty PMA, and a sharded fleet
//    restored into a *differently partitioned* fleet (items re-route
//    through the live router).
//  - Torn*/Tamper*: every way a checkpoint can be damaged — a failed
//    publication step (failpoint), a flipped chunk byte, a truncated
//    manifest, garbage CURRENT, a deleted chunk — must leave the root
//    either refusing the load (verify-failure counter bumps) or still
//    serving the previous intact checkpoint. A torn checkpoint is never
//    loadable.
//  - Gc*: the keep-last-N retention drops old checkpoint directories
//    but never the one CURRENT names.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/hotpath/crc32c.h"
#include "common/random.h"
#include "concurrent/concurrent_pma.h"
#include "concurrent/snapshot.h"
#include "persist/checkpoint.h"
#include "sharded/sharded_pma.h"

namespace cpma {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/cpma_persist_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path_ = p;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ------------------------------------------------------------- crc32c

TEST(Crc32c, KnownVectors) {
  // iSCSI / RFC 3720 test vectors.
  EXPECT_EQ(hotpath::Crc32c("", 0), 0x00000000u);
  EXPECT_EQ(hotpath::Crc32c("123456789", 9), 0xE3069283u);
  unsigned char zeros[32] = {0};
  EXPECT_EQ(hotpath::Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
  unsigned char ones[32];
  std::memset(ones, 0xFF, sizeof(ones));
  EXPECT_EQ(hotpath::Crc32c(ones, sizeof(ones)), 0x62A8AB43u);
}

TEST(Crc32c, StreamingMatchesOneShot) {
  Random rng(7);
  std::vector<char> buf(8192);
  for (char& c : buf) c = static_cast<char>(rng.Next());
  const uint32_t whole = hotpath::Crc32c(buf.data(), buf.size());
  // Split at awkward boundaries, including 0-length pieces.
  for (size_t cut1 : {size_t{0}, size_t{1}, size_t{7}, size_t{4096}}) {
    for (size_t cut2 : {cut1, cut1 + 13, buf.size() - 1}) {
      uint32_t crc = hotpath::Crc32cExtend(0, buf.data(), cut1);
      crc = hotpath::Crc32cExtend(crc, buf.data() + cut1, cut2 - cut1);
      crc = hotpath::Crc32cExtend(crc, buf.data() + cut2, buf.size() - cut2);
      EXPECT_EQ(crc, whole) << "cuts " << cut1 << "/" << cut2;
    }
  }
}

TEST(Crc32c, KernelsAgree) {
  const char* name = hotpath::ActiveCrc32cDispatchName();
  EXPECT_TRUE(std::string(name) == "sse42" || std::string(name) == "scalar");
#if defined(__x86_64__) || defined(__i386__)
  if (!hotpath::Crc32cHaveSse42()) GTEST_SKIP() << "no SSE4.2 on this CPU";
  Random rng(11);
  for (size_t len : {size_t{0}, size_t{1}, size_t{3}, size_t{8}, size_t{15},
                     size_t{64}, size_t{1000}, size_t{65536}}) {
    std::vector<char> buf(len + 1);  // +1: never pass a null data ptr
    for (char& c : buf) c = static_cast<char>(rng.Next());
    EXPECT_EQ(hotpath::ScalarCrc32c(0, buf.data(), len),
              hotpath::Sse42Crc32c(0, buf.data(), len))
        << "len " << len;
    // And from a nonzero seed (streaming restart).
    EXPECT_EQ(hotpath::ScalarCrc32c(0xDEADBEEF, buf.data(), len),
              hotpath::Sse42Crc32c(0xDEADBEEF, buf.data(), len));
  }
#endif
}

// ---------------------------------------------------------- roundtrips

std::map<Key, Value> FillPma(ConcurrentPMA* pma, size_t n, uint64_t seed) {
  std::map<Key, Value> oracle;
  Random rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Key k = rng.NextBounded(4 * n) + 1;
    Value v = rng.Next() >> 1;
    pma->Insert(k, v);
    oracle[k] = v;
  }
  pma->Flush();
  return oracle;
}

void ExpectExactly(const std::map<Key, Value>& oracle, OrderedMap* m) {
  ASSERT_EQ(m->Size(), oracle.size());
  auto it = oracle.begin();
  m->Scan(kKeyMin, kKeyMax, [&](Key k, Value v) {
    EXPECT_NE(it, oracle.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, oracle.end());
}

TEST(Persist, RoundtripSinglePma) {
  TempDir dir;
  ConcurrentPMA pma;
  auto oracle = FillPma(&pma, 5000, 42);

  persist::CheckpointOptions opts;
  opts.dir = dir.path();
  opts.app_stamp = 5000;
  persist::CheckpointInfo info;
  ASSERT_TRUE(persist::Checkpoint(pma, opts, &info).ok());
  EXPECT_EQ(info.seq, 1u);
  EXPECT_EQ(info.app_stamp, 5000u);
  EXPECT_EQ(info.items, oracle.size());
  EXPECT_EQ(info.shards, 1u);

  persist::CheckpointInfo latest;
  ASSERT_TRUE(persist::LatestCheckpoint(dir.path(), &latest).ok());
  EXPECT_EQ(latest.seq, 1u);
  EXPECT_EQ(latest.items, oracle.size());

  ConcurrentPMA restored;
  persist::CheckpointInfo rinfo;
  ASSERT_TRUE(persist::Restore(dir.path(), &restored, &rinfo).ok());
  EXPECT_EQ(rinfo.app_stamp, 5000u);
  ExpectExactly(oracle, &restored);
}

TEST(Persist, RoundtripEmptyPma) {
  TempDir dir;
  ConcurrentPMA pma;
  persist::CheckpointOptions opts;
  opts.dir = dir.path();
  ASSERT_TRUE(persist::Checkpoint(pma, opts, nullptr).ok());
  ConcurrentPMA restored;
  persist::CheckpointInfo info;
  ASSERT_TRUE(persist::Restore(dir.path(), &restored, &info).ok());
  EXPECT_EQ(info.items, 0u);
  EXPECT_EQ(restored.Size(), 0u);
}

TEST(Persist, RoundtripShardedAcrossPartitionings) {
  TempDir dir;
  std::map<Key, Value> oracle;
  {
    ShardedConfig cfg;
    cfg.num_shards = 4;
    cfg.partition = ShardedConfig::Partition::kHash;
    ShardedPMA pma(cfg);
    Random rng(7);
    for (size_t i = 0; i < 4000; ++i) {
      Key k = rng.NextBounded(100000) + 1;
      Value v = rng.Next() >> 1;
      pma.Insert(k, v);
      oracle[k] = v;
    }
    pma.Flush();
    persist::CheckpointOptions opts;
    opts.dir = dir.path();
    persist::CheckpointInfo info;
    ASSERT_TRUE(persist::Checkpoint(pma, opts, &info).ok());
    EXPECT_EQ(info.shards, 4u);
    EXPECT_EQ(info.items, oracle.size());
  }
  // Restore into a *range*-partitioned fleet with a different shard
  // count: items must re-route through the live router.
  ShardedConfig cfg;
  cfg.num_shards = 2;
  cfg.partition = ShardedConfig::Partition::kRange;
  ShardedPMA restored(cfg);
  ASSERT_TRUE(persist::Restore(dir.path(), &restored, nullptr).ok());
  ExpectExactly(oracle, &restored);
}

TEST(Persist, SecondCheckpointSupersedesAndGcKeepsTwo) {
  TempDir dir;
  ConcurrentPMA pma;
  persist::CheckpointOptions opts;
  opts.dir = dir.path();
  opts.keep = 2;
  for (int round = 1; round <= 3; ++round) {
    pma.Insert(static_cast<Key>(round), static_cast<Value>(round * 10));
    pma.Flush();
    opts.app_stamp = static_cast<uint64_t>(round);
    ASSERT_TRUE(persist::Checkpoint(pma, opts, nullptr).ok());
  }
  persist::CheckpointInfo info;
  ASSERT_TRUE(persist::LatestCheckpoint(dir.path(), &info).ok());
  EXPECT_EQ(info.seq, 3u);
  EXPECT_EQ(info.app_stamp, 3u);
  EXPECT_EQ(info.items, 3u);
  // keep=2: ckpt-1 collected, ckpt-2 + ckpt-3 remain.
  EXPECT_FALSE(fs::exists(dir.path() + "/ckpt-1"));
  EXPECT_TRUE(fs::exists(dir.path() + "/ckpt-2"));
  EXPECT_TRUE(fs::exists(dir.path() + "/ckpt-3"));
}

TEST(Persist, EmptyRootReportsNoCheckpoint) {
  TempDir dir;
  persist::CheckpointInfo info;
  Status st = persist::LatestCheckpoint(dir.path(), &info);
  EXPECT_TRUE(st.IsKeyNotFound()) << st.ToString();
  ConcurrentPMA pma;
  EXPECT_TRUE(persist::Restore(dir.path(), &pma, nullptr).IsKeyNotFound());
}

TEST(Persist, RestoreIntoNonEmptyRejected) {
  TempDir dir;
  ConcurrentPMA pma;
  FillPma(&pma, 100, 1);
  persist::CheckpointOptions opts;
  opts.dir = dir.path();
  ASSERT_TRUE(persist::Checkpoint(pma, opts, nullptr).ok());
  EXPECT_TRUE(persist::Restore(dir.path(), &pma, nullptr).IsInvalidArgument());
}

// ------------------------------------------------- torn / tampered

uint64_t VerifyFailures() {
  return persist::Counters().restore_verify_failures.load(
      std::memory_order_relaxed);
}

class TornCheckpointTest : public ::testing::Test {
 protected:
  // A root with one intact checkpoint (seq 1) of `oracle_`.
  void SetUp() override {
    failpoint::ClearAll();
    pma_ = std::make_unique<ConcurrentPMA>();
    oracle_ = FillPma(pma_.get(), 2000, 99);
    persist::CheckpointOptions opts;
    opts.dir = dir_.path();
    opts.app_stamp = 2000;
    ASSERT_TRUE(persist::Checkpoint(*pma_, opts, nullptr).ok());
  }
  void TearDown() override { failpoint::ClearAll(); }

  void ExpectSeq1StillLoadable() {
    persist::CheckpointInfo info;
    ASSERT_TRUE(persist::LatestCheckpoint(dir_.path(), &info).ok());
    EXPECT_EQ(info.seq, 1u);
    ConcurrentPMA restored;
    ASSERT_TRUE(persist::Restore(dir_.path(), &restored, nullptr).ok());
    ExpectExactly(oracle_, &restored);
  }

  TempDir dir_;
  std::unique_ptr<ConcurrentPMA> pma_;
  std::map<Key, Value> oracle_;
};

TEST_F(TornCheckpointTest, FailedPublicationStepLeavesPreviousLoadable) {
  if (!failpoint::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  // Fail every step of the next checkpoint's publication, one at a
  // time. Each attempt must error out AND leave seq 1 fully loadable —
  // the torn seq-2 artifacts are never reachable from CURRENT.
  const char* steps[] = {
      "persist.chunk_write",    "persist.chunk_fsync",
      "persist.manifest_write", "persist.manifest_rename",
      "persist.dir_fsync",      "persist.current_write",
      "persist.current_rename",
  };
  for (const char* site : steps) {
    ASSERT_TRUE(failpoint::Set(site, "once"));
    pma_->Insert(1, 1);
    pma_->Flush();
    persist::CheckpointOptions opts;
    opts.dir = dir_.path();
    Status st = persist::Checkpoint(*pma_, opts, nullptr);
    EXPECT_FALSE(st.ok()) << site;
    EXPECT_NE(st.message().find(site), std::string::npos) << st.ToString();
    failpoint::Clear(site);
    ExpectSeq1StillLoadable();
  }
  // With no failpoints armed the next attempt succeeds and supersedes.
  pma_->Flush();
  persist::CheckpointOptions opts;
  opts.dir = dir_.path();
  persist::CheckpointInfo info;
  ASSERT_TRUE(persist::Checkpoint(*pma_, opts, &info).ok());
  EXPECT_GE(info.seq, 2u);
}

TEST_F(TornCheckpointTest, FlippedChunkByteRefused) {
  const std::string chunk = dir_.path() + "/ckpt-1/shard-0.dat";
  ASSERT_TRUE(fs::exists(chunk));
  // Flip one payload byte in place.
  std::fstream f(chunk, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(200);
  char c;
  f.seekg(200);
  f.get(c);
  f.seekp(200);
  f.put(static_cast<char>(c ^ 0x01));
  f.close();

  const uint64_t before = VerifyFailures();
  std::vector<Item> items;
  Status st = persist::ReadCheckpointItems(dir_.path(), &items, nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("checksum"), std::string::npos) << st.ToString();
  EXPECT_GT(VerifyFailures(), before);
  ConcurrentPMA restored;
  EXPECT_FALSE(persist::Restore(dir_.path(), &restored, nullptr).ok());
  EXPECT_EQ(restored.Size(), 0u);  // refused before touching the target
}

TEST_F(TornCheckpointTest, TruncatedChunkRefused) {
  const std::string chunk = dir_.path() + "/ckpt-1/shard-0.dat";
  const auto size = fs::file_size(chunk);
  fs::resize_file(chunk, size - 7);
  const uint64_t before = VerifyFailures();
  std::vector<Item> items;
  EXPECT_FALSE(persist::ReadCheckpointItems(dir_.path(), &items, nullptr).ok());
  EXPECT_GT(VerifyFailures(), before);
}

TEST_F(TornCheckpointTest, TruncatedManifestRefused) {
  const std::string manifest = dir_.path() + "/ckpt-1/MANIFEST";
  const auto size = fs::file_size(manifest);
  fs::resize_file(manifest, size - 3);  // cuts into the trailing crc line
  const uint64_t before = VerifyFailures();
  persist::CheckpointInfo info;
  EXPECT_FALSE(persist::LatestCheckpoint(dir_.path(), &info).ok());
  EXPECT_GT(VerifyFailures(), before);
}

TEST_F(TornCheckpointTest, EditedManifestFailsItsCrc) {
  const std::string manifest = dir_.path() + "/ckpt-1/MANIFEST";
  std::string text;
  {
    std::ifstream in(manifest);
    std::getline(in, text, '\0');
  }
  // A plausible-looking edit (inflate the item count) without
  // recomputing the trailing crc.
  size_t pos = text.find("items ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 6] = '9';
  {
    std::ofstream out(manifest, std::ios::trunc);
    out << text;
  }
  const uint64_t before = VerifyFailures();
  persist::CheckpointInfo info;
  Status st = persist::LatestCheckpoint(dir_.path(), &info);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("checksum"), std::string::npos) << st.ToString();
  EXPECT_GT(VerifyFailures(), before);
}

TEST_F(TornCheckpointTest, GarbageCurrentRefused) {
  {
    std::ofstream out(dir_.path() + "/CURRENT", std::ios::trunc);
    out << "../../etc/passwd\n";
  }
  const uint64_t before = VerifyFailures();
  persist::CheckpointInfo info;
  EXPECT_FALSE(persist::LatestCheckpoint(dir_.path(), &info).ok());
  EXPECT_GT(VerifyFailures(), before);
}

TEST_F(TornCheckpointTest, MissingChunkRefused) {
  fs::remove(dir_.path() + "/ckpt-1/shard-0.dat");
  const uint64_t before = VerifyFailures();
  std::vector<Item> items;
  EXPECT_FALSE(persist::ReadCheckpointItems(dir_.path(), &items, nullptr).ok());
  EXPECT_GT(VerifyFailures(), before);
}

}  // namespace
}  // namespace cpma
