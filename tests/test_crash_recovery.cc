// Fork-based crash-recovery harness (ISSUE 9 tentpole proof).
//
// Each case forks a child that runs a deterministic seeded write storm
// against a ConcurrentPMA, checkpointing every kCkptEvery ops with
// app_stamp = ops applied so far. One failpoint site is armed with a
// `nth:M!crash` policy, so at a seed-chosen hit the child _exit()s
// mid-protocol — mid-chunk-write, between fsync and rename, after the
// CURRENT flip, mid-remap of a background rebalance — the closest
// userspace approximation of pulling the plug at that instruction.
//
// The parent waits, then plays the recovery path an operator would:
// LatestCheckpoint + Restore from the surviving root. The acceptance
// bar is EXACT: the manifest's app_stamp tells which prefix of the op
// stream the checkpoint claims, the parent replays exactly that prefix
// into a std::map oracle, and the restored PMA must equal it key for
// key, value for value. Any torn artifact must instead be refused
// (which the protocol makes unreachable from CURRENT by construction).
//
// CPMA_CRASH_SEED varies M and the op stream (the CI crash-matrix job
// sweeps it; the nightly soak sets it to the run id). With
// CPMA_SOAK_JSON=<path> each case appends one JSONL record to feed the
// nightly crash.jsonl artifact.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "concurrent/concurrent_pma.h"
#include "persist/checkpoint.h"

namespace cpma {
namespace {

namespace fs = std::filesystem;

constexpr size_t kOps = 6000;
constexpr size_t kCkptEvery = 1000;
constexpr Key kKeySpace = 2048;  // small: plenty of overwrites + deletes

uint64_t CrashSeed() {
  const char* env = std::getenv("CPMA_CRASH_SEED");
  if (env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0') return static_cast<uint64_t>(v);
  }
  return 1;
}

struct Op {
  bool is_insert;
  Key key;
  Value value;
};

// The storm both processes derive independently: child applies all of
// it; parent replays the prefix [0, app_stamp) as the oracle.
std::vector<Op> OpStream(uint64_t seed) {
  std::vector<Op> ops;
  ops.reserve(kOps);
  Random rng(seed * 0x9E3779B97F4A7C15ull + 1);
  for (size_t i = 0; i < kOps; ++i) {
    Op op;
    op.key = rng.NextBounded(kKeySpace) + 1;
    op.is_insert = rng.NextBounded(4) != 0;  // 25% deletes
    op.value = rng.Next() >> 1;
    ops.push_back(op);
  }
  return ops;
}

ConcurrentConfig StormConfig() {
  ConcurrentConfig cfg;
  cfg.pma.segment_capacity = 16;  // tiny: force rebalances + resizes
  cfg.segments_per_gate = 4;
  cfg.rebalancer_workers = 2;
  return cfg;
}

// Child body. Never returns; exits 0 (storm completed), crashes with
// failpoint::kCrashExitCode (the armed site fired), or exits 2/3 on a
// harness bug (the parent fails the test on those).
[[noreturn]] void RunChild(const std::string& root, uint64_t seed,
                           const char* site, const std::string& policy) {
  if (!failpoint::Set(site, policy.c_str())) ::_exit(2);
  const std::vector<Op> ops = OpStream(seed);
  ConcurrentPMA pma(StormConfig());
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].is_insert) {
      pma.Insert(ops[i].key, ops[i].value);
    } else {
      pma.Remove(ops[i].key);
    }
    if ((i + 1) % kCkptEvery == 0) {
      pma.Flush();
      persist::CheckpointOptions copts;
      copts.dir = root;
      copts.app_stamp = i + 1;
      Status st = persist::Checkpoint(pma, copts, nullptr);
      // The armed policies all crash instead of reporting, so any
      // checkpoint error here is a real harness bug.
      if (!st.ok()) ::_exit(3);
    }
  }
  ::_exit(0);  // storm survived without the site firing (valid outcome)
}

void AppendCrashJson(const char* site, uint64_t seed, int exit_code,
                     bool crashed, uint64_t app_stamp, uint64_t items) {
  const char* path = std::getenv("CPMA_SOAK_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\": \"crash_recovery\", \"site\": \"%s\", "
               "\"seed\": %llu, \"exit\": %d, \"crashed\": %s, "
               "\"app_stamp\": %llu, \"items\": %llu, \"verified\": true}\n",
               site, static_cast<unsigned long long>(seed), exit_code,
               crashed ? "true" : "false",
               static_cast<unsigned long long>(app_stamp),
               static_cast<unsigned long long>(items));
  std::fclose(f);
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
    char tmpl[] = "/tmp/cpma_crash_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    root_ = tmpl;
  }
  void TearDown() override {
    if (!root_.empty()) {
      std::error_code ec;
      fs::remove_all(root_, ec);
    }
  }

  // Fork the storm with `site` armed, then recover and verify exactly.
  // `deterministic` sites are hit on every checkpoint attempt, so the
  // child MUST die by the crash exit code; opportunistic sites (inside
  // the background rebalancer) may legitimately never fire.
  void RunCase(const char* site, bool deterministic) {
    SCOPED_TRACE(site);
    const uint64_t seed = CrashSeed();
    // 1..3 fires before the crash: lands the plug-pull at different
    // depths of the publication protocol run to run.
    char policy[32];
    std::snprintf(policy, sizeof(policy), "nth:%llu!crash",
                  static_cast<unsigned long long>(1 + seed % 3));

    ::pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      RunChild(root_, seed, site, policy);  // never returns
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "child killed by signal "
                                   << WTERMSIG(status);
    const int code = WEXITSTATUS(status);
    const bool crashed = code == failpoint::kCrashExitCode;
    ASSERT_TRUE(code == 0 || crashed) << "child exit " << code;
    if (deterministic) {
      EXPECT_TRUE(crashed) << "armed site never fired: " << site;
    }

    // 2. Recover exactly what the last completed checkpoint claims.
    persist::CheckpointInfo info;
    Status st = persist::LatestCheckpoint(root_, &info);
    if (st.IsKeyNotFound()) {
      // Crashed before the first checkpoint ever published — nothing
      // to restore is a correct recovery outcome for those sites.
      EXPECT_TRUE(crashed);
      AppendCrashJson(site, seed, code, crashed, 0, 0);
      return;
    }
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_GT(info.app_stamp, 0u);
    ASSERT_LE(info.app_stamp, kOps);
    ASSERT_EQ(info.app_stamp % kCkptEvery, 0u)
        << "app_stamp must be a checkpoint boundary";

    ConcurrentPMA restored(StormConfig());
    persist::CheckpointInfo rinfo;
    ASSERT_TRUE(persist::Restore(root_, &restored, &rinfo).ok());
    EXPECT_EQ(rinfo.seq, info.seq);

    // 3. The oracle: the exact op prefix the manifest claims.
    const std::vector<Op> ops = OpStream(seed);
    std::map<Key, Value> oracle;
    for (size_t i = 0; i < info.app_stamp; ++i) {
      if (ops[i].is_insert) {
        oracle[ops[i].key] = ops[i].value;
      } else {
        oracle.erase(ops[i].key);
      }
    }
    ASSERT_EQ(restored.Size(), oracle.size());
    auto it = oracle.begin();
    restored.Scan(kKeyMin, kKeyMax, [&](Key k, Value v) {
      EXPECT_NE(it, oracle.end());
      if (it != oracle.end()) {
        EXPECT_EQ(k, it->first);
        EXPECT_EQ(v, it->second);
        ++it;
      }
      return true;
    });
    EXPECT_EQ(it, oracle.end());
    AppendCrashJson(site, seed, code, crashed, info.app_stamp, info.items);
  }

  std::string root_;
};

// The eight deterministic crash sites: every step of the checkpoint
// publication protocol, plug pulled right before the step executes.
TEST_F(CrashRecoveryTest, MidChunkWrite) {
  RunCase("persist.chunk_write", /*deterministic=*/true);
}
TEST_F(CrashRecoveryTest, MidChunkFsync) {
  RunCase("persist.chunk_fsync", true);
}
TEST_F(CrashRecoveryTest, MidManifestWrite) {
  RunCase("persist.manifest_write", true);
}
TEST_F(CrashRecoveryTest, MidManifestRename) {
  RunCase("persist.manifest_rename", true);
}
TEST_F(CrashRecoveryTest, MidRootFsync) {
  RunCase("persist.dir_fsync", true);
}
TEST_F(CrashRecoveryTest, MidCurrentWrite) {
  RunCase("persist.current_write", true);
}
TEST_F(CrashRecoveryTest, MidCurrentRename) {
  RunCase("persist.current_rename", true);
}
TEST_F(CrashRecoveryTest, MidGcUnlink) {
  RunCase("persist.gc_unlink", true);
}

// Opportunistic sites inside the storage/rebalance layers: the crash
// lands mid-rebalance (remap publication) or mid-COW-grow rather than
// inside the persist protocol. Surviving the whole storm without the
// site firing is a valid outcome (e.g. a fallback-mode sandbox).
TEST_F(CrashRecoveryTest, MidRemapPublication) {
  RunCase("rewiring.remap", /*deterministic=*/false);
}
TEST_F(CrashRecoveryTest, MidCowPageGrow) {
  RunCase("rewiring.cow_grow", false);
}
TEST_F(CrashRecoveryTest, MidRegionCreate) {
  RunCase("storage.create", false);
}

}  // namespace
}  // namespace cpma
