// Tests for the sequential PMA: density math, spread planning, and the
// full structure validated against a std::map oracle under randomised
// programs (property tests across segment sizes / policies).

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"
#include "pma/density.h"
#include "pma/sequential_pma.h"
#include "pma/spread.h"

namespace cpma {
namespace {

// ----------------------------------------------------------- DensityBounds

TEST(Density, PaperFigure1Thresholds) {
  // Figure 1: 4 segments, h = 3; rho_2 = 0.675, tau_2 = 0.875,
  // rho_3 = tau_3 = 0.75 with the unrelaxed parameters.
  PmaConfig cfg;
  cfg.relax_lower = false;
  DensityBounds b(cfg, 4);
  EXPECT_EQ(b.height(), 3u);
  EXPECT_DOUBLE_EQ(b.Tau(2), 0.75);   // root (k = h = 3)
  EXPECT_DOUBLE_EQ(b.Rho(2), 0.75);
  EXPECT_DOUBLE_EQ(b.Tau(1), 0.875);  // k = 2
  EXPECT_DOUBLE_EQ(b.Rho(1), 0.625);
  EXPECT_DOUBLE_EQ(b.Tau(0), 1.0);    // leaves
  EXPECT_DOUBLE_EQ(b.Rho(0), 0.5);
}

TEST(Density, MonotoneAcrossLevels) {
  PmaConfig cfg;
  cfg.relax_lower = false;
  DensityBounds b(cfg, 64);
  for (size_t l = 0; l + 1 <= b.root_level(); ++l) {
    EXPECT_GE(b.Tau(l), b.Tau(l + 1)) << "tau must decrease towards root";
    EXPECT_LE(b.Rho(l), b.Rho(l + 1)) << "rho must increase towards root";
  }
}

TEST(Density, RelaxedLowerIsZero) {
  PmaConfig cfg;
  cfg.relax_lower = true;
  DensityBounds b(cfg, 16);
  for (size_t l = 0; l <= b.root_level(); ++l) EXPECT_EQ(b.Rho(l), 0.0);
}

TEST(Density, WindowAlignment) {
  size_t begin, end;
  WindowAt(5, 0, &begin, &end);
  EXPECT_EQ(begin, 5u);
  EXPECT_EQ(end, 6u);
  WindowAt(5, 1, &begin, &end);
  EXPECT_EQ(begin, 4u);
  EXPECT_EQ(end, 6u);
  WindowAt(5, 3, &begin, &end);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, 8u);
}

// ----------------------------------------------------------------- Spread

TEST(Spread, TraditionalIsEven) {
  Storage st(4, 8, /*use_rewiring=*/true);
  // Fill segment 0 with 8 elements, segment 1 with 2.
  for (uint32_t i = 0; i < 8; ++i) st.segment(0)[i] = {i + 1, i};
  st.set_card(0, 8);
  st.segment(1)[0] = {100, 0};
  st.segment(1)[1] = {101, 0};
  st.set_card(1, 2);
  st.RebuildRoutes(0, 4);

  WindowPlan plan = PlanSpread(st, 0, 2, /*adaptive=*/false, SIZE_MAX);
  EXPECT_EQ(plan.total, 10u);
  EXPECT_EQ(plan.target_card[0], 5u);
  EXPECT_EQ(plan.target_card[1], 5u);
  CopyPartitionToBuffer(&st, plan, 0, 2);
  FinishSpread(&st, plan);
  EXPECT_EQ(st.card(0), 5u);
  EXPECT_EQ(st.card(1), 5u);
  EXPECT_EQ(st.segment(0)[0].key, 1u);
  EXPECT_EQ(st.segment(1)[0].key, 6u);
  EXPECT_EQ(st.route(1), 6u);
}

TEST(Spread, PartitionedCopyEqualsWholeCopy) {
  // Run the same plan as one partition and as two partitions and compare.
  auto fill = [](Storage& st) {
    uint64_t k = 1;
    for (size_t s = 0; s < 4; ++s) {
      uint32_t c = (s % 2 == 0) ? 8 : 1;
      for (uint32_t i = 0; i < c; ++i) st.segment(s)[i] = {k++, 7};
      st.set_card(s, c);
    }
    st.RebuildRoutes(0, 4);
  };
  Storage a(4, 8, true), b(4, 8, true);
  fill(a);
  fill(b);
  WindowPlan pa = PlanSpread(a, 0, 4, false, SIZE_MAX);
  WindowPlan pb = PlanSpread(b, 0, 4, false, SIZE_MAX);
  CopyPartitionToBuffer(&a, pa, 0, 4);
  FinishSpread(&a, pa);
  CopyPartitionToBuffer(&b, pb, 0, 2);
  CopyPartitionToBuffer(&b, pb, 2, 4);
  FinishSpread(&b, pb);
  for (size_t s = 0; s < 4; ++s) {
    ASSERT_EQ(a.card(s), b.card(s));
    for (uint32_t i = 0; i < a.card(s); ++i) {
      ASSERT_EQ(a.segment(s)[i].key, b.segment(s)[i].key);
    }
  }
}

TEST(Spread, AdaptiveGivesHotSegmentMoreGaps) {
  Storage st(4, 8, true);
  uint64_t k = 1;
  for (size_t s = 0; s < 4; ++s) {
    for (uint32_t i = 0; i < 6; ++i) st.segment(s)[i] = {k++, 0};
    st.set_card(s, 6);
  }
  st.RebuildRoutes(0, 4);
  // Segment 2 is hot.
  for (int i = 0; i < 100; ++i) st.bump_insert_count(2);
  WindowPlan plan = PlanSpread(st, 0, 4, /*adaptive=*/true, SIZE_MAX);
  // The hot segment receives the most gaps => the fewest elements.
  for (size_t j = 0; j < 4; ++j) {
    if (j != 2) { EXPECT_LT(plan.target_card[2], plan.target_card[j]); }
  }
  uint32_t total = 0;
  for (auto c : plan.target_card) {
    total += c;
    EXPECT_GE(c, 1u);
  }
  EXPECT_EQ(total, 24u);
}

TEST(Spread, TriggerSegmentAlwaysGetsRoom) {
  Storage st(2, 8, true);
  // 15 elements in 16 slots: one gap only.
  uint64_t k = 1;
  for (uint32_t i = 0; i < 8; ++i) st.segment(0)[i] = {k++, 0};
  st.set_card(0, 8);
  for (uint32_t i = 0; i < 7; ++i) st.segment(1)[i] = {k++, 0};
  st.set_card(1, 7);
  st.RebuildRoutes(0, 2);
  WindowPlan plan = PlanSpread(st, 0, 2, false, /*trigger_seg=*/0);
  EXPECT_LT(plan.target_card[0], 8u);
}

TEST(Spread, FewerElementsThanSegmentsLeftPacks) {
  Storage st(8, 8, true);
  st.segment(0)[0] = {5, 0};
  st.segment(0)[1] = {6, 0};
  st.set_card(0, 2);
  st.RebuildRoutes(0, 8);
  WindowPlan plan = PlanSpread(st, 0, 8, false, SIZE_MAX);
  EXPECT_EQ(plan.target_card[0], 1u);
  EXPECT_EQ(plan.target_card[1], 1u);
  for (size_t j = 2; j < 8; ++j) EXPECT_EQ(plan.target_card[j], 0u);
}

// ------------------------------------------------------------- Basic ops

TEST(SequentialPma, InsertFindSmoke) {
  SequentialPMA pma;
  pma.Insert(10, 100);
  pma.Insert(5, 50);
  pma.Insert(20, 200);
  Value v = 0;
  EXPECT_TRUE(pma.Find(10, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_TRUE(pma.Find(5, &v));
  EXPECT_EQ(v, 50u);
  EXPECT_FALSE(pma.Find(15, &v));
  EXPECT_EQ(pma.Size(), 3u);
}

TEST(SequentialPma, UpsertOverwrites) {
  SequentialPMA pma;
  pma.Insert(1, 10);
  pma.Insert(1, 20);
  Value v = 0;
  EXPECT_TRUE(pma.Find(1, &v));
  EXPECT_EQ(v, 20u);
  EXPECT_EQ(pma.Size(), 1u);
}

TEST(SequentialPma, RemoveMakesKeyDisappear) {
  SequentialPMA pma;
  pma.Insert(1, 10);
  pma.Insert(2, 20);
  pma.Remove(1);
  EXPECT_FALSE(pma.Find(1, nullptr));
  EXPECT_TRUE(pma.Find(2, nullptr));
  EXPECT_EQ(pma.Size(), 1u);
  pma.Remove(42);  // absent: no-op
  EXPECT_EQ(pma.Size(), 1u);
}

TEST(SequentialPma, EmptyStructure) {
  SequentialPMA pma;
  EXPECT_EQ(pma.Size(), 0u);
  EXPECT_FALSE(pma.Find(1, nullptr));
  EXPECT_EQ(pma.SumAll(), 0u);
  int visited = 0;
  pma.Scan(0, kKeyMax, [&](Key, Value) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 0);
  std::string err;
  EXPECT_TRUE(pma.CheckInvariants(&err)) << err;
}

TEST(SequentialPma, BoundaryKeys) {
  SequentialPMA pma;
  pma.Insert(kKeyMin, 1);
  pma.Insert(kKeyMax, 2);
  Value v;
  EXPECT_TRUE(pma.Find(kKeyMin, &v));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(pma.Find(kKeyMax, &v));
  EXPECT_EQ(v, 2u);
  pma.Remove(kKeyMin);
  EXPECT_FALSE(pma.Find(kKeyMin, nullptr));
  EXPECT_TRUE(pma.Find(kKeyMax, nullptr));
}

TEST(SequentialPma, ScanIsSortedAndComplete) {
  SequentialPMA pma;
  Random rng(11);
  std::map<Key, Value> oracle;
  for (int i = 0; i < 5000; ++i) {
    Key k = rng.NextBounded(1 << 20);
    oracle[k] = i;
    pma.Insert(k, i);
  }
  std::vector<Key> seen;
  pma.Scan(0, kKeyMax, [&](Key k, Value v) {
    EXPECT_EQ(oracle[k], v);
    seen.push_back(k);
    return true;
  });
  EXPECT_EQ(seen.size(), oracle.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(SequentialPma, RangeScanRespectsBounds) {
  SequentialPMA pma;
  for (Key k = 0; k < 1000; ++k) pma.Insert(k * 10, k);
  std::vector<Key> seen;
  pma.Scan(95, 205, [&](Key k, Value) {
    seen.push_back(k);
    return true;
  });
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front(), 100u);
  EXPECT_EQ(seen.back(), 200u);
  EXPECT_EQ(seen.size(), 11u);
}

TEST(SequentialPma, ScanEarlyStop) {
  SequentialPMA pma;
  for (Key k = 1; k <= 1000; ++k) pma.Insert(k, k);
  int visited = 0;
  pma.Scan(0, kKeyMax, [&](Key, Value) { return ++visited < 7; });
  EXPECT_EQ(visited, 7);
}

TEST(SequentialPma, SumAllMatchesOracle) {
  SequentialPMA pma;
  uint64_t expect = 0;
  for (Key k = 1; k <= 10000; ++k) {
    pma.Insert(k * 3, k);
    expect += k;
  }
  EXPECT_EQ(pma.SumAll(), expect);
}

// ----------------------------------------------------- Growth / shrink

TEST(SequentialPma, GrowsUnderInserts) {
  SequentialPMA pma;
  const size_t initial_cap = pma.capacity();
  for (Key k = 0; k < 100000; ++k) pma.Insert(k, k);
  EXPECT_GT(pma.capacity(), initial_cap);
  EXPECT_GT(pma.num_resizes(), 0u);
  std::string err;
  EXPECT_TRUE(pma.CheckInvariants(&err)) << err;
  EXPECT_EQ(pma.Size(), 100000u);
}

TEST(SequentialPma, ShrinksUnderDeletes) {
  SequentialPMA pma;
  for (Key k = 0; k < 100000; ++k) pma.Insert(k, k);
  const size_t grown_cap = pma.capacity();
  for (Key k = 0; k < 100000; ++k) pma.Remove(k);
  EXPECT_LT(pma.capacity(), grown_cap);
  EXPECT_EQ(pma.Size(), 0u);
  std::string err;
  EXPECT_TRUE(pma.CheckInvariants(&err)) << err;
  // And it keeps working afterwards.
  pma.Insert(7, 7);
  EXPECT_TRUE(pma.Find(7, nullptr));
}

TEST(SequentialPma, DensityStaysBounded) {
  SequentialPMA pma;
  for (Key k = 0; k < 200000; ++k) pma.Insert(k, k);
  const double density = static_cast<double>(pma.Size()) /
                         static_cast<double>(pma.capacity());
  // The PMA guarantees < 50% wasted space... i.e. density within
  // (shrink, tau_root] modulo the transient right after a resize.
  EXPECT_GT(density, 0.25);
  EXPECT_LE(density, 0.76);
}

TEST(SequentialPma, SequentialInsertionIsWorstCaseButCorrect) {
  // Monotonic inserts repeatedly hit the same right-most segment — the
  // classical PMA worst case. Correctness must hold regardless.
  SequentialPMA pma;
  for (Key k = 0; k < 50000; ++k) pma.Insert(k, k * 2);
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  for (Key k = 0; k < 50000; k += 997) {
    Value v;
    ASSERT_TRUE(pma.Find(k, &v));
    ASSERT_EQ(v, k * 2);
  }
}

TEST(SequentialPma, ReverseSequentialInsertion) {
  SequentialPMA pma;
  for (Key k = 50000; k-- > 0;) pma.Insert(k, k);
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  EXPECT_EQ(pma.Size(), 50000u);
}

// ------------------------------------------------- Property-based tests

struct PmaParam {
  size_t segment_capacity;
  bool adaptive;
  bool use_rewiring;
  bool relax_lower;
};

class PmaPropertyTest : public ::testing::TestWithParam<PmaParam> {};

TEST_P(PmaPropertyTest, RandomProgramMatchesStdMap) {
  const PmaParam p = GetParam();
  PmaConfig cfg;
  cfg.segment_capacity = p.segment_capacity;
  cfg.adaptive = p.adaptive;
  cfg.use_rewiring = p.use_rewiring;
  cfg.relax_lower = p.relax_lower;
  SequentialPMA pma(cfg);
  std::map<Key, Value> oracle;
  Random rng(p.segment_capacity * 31 + p.adaptive * 7 + p.use_rewiring * 3 +
             p.relax_lower);

  for (int op = 0; op < 30000; ++op) {
    const uint64_t dice = rng.NextBounded(100);
    const Key k = rng.NextBounded(5000);  // small domain => many collisions
    if (dice < 60) {
      const Value v = rng.Next();
      pma.Insert(k, v);
      oracle[k] = v;
    } else if (dice < 90) {
      pma.Remove(k);
      oracle.erase(k);
    } else {
      Value v = 0;
      auto it = oracle.find(k);
      EXPECT_EQ(pma.Find(k, &v), it != oracle.end());
      if (it != oracle.end()) { EXPECT_EQ(v, it->second); }
    }
    if (op % 5000 == 4999) {
      std::string err;
      ASSERT_TRUE(pma.CheckInvariants(&err)) << err << " at op " << op;
      ASSERT_EQ(pma.Size(), oracle.size());
    }
  }
  // Full-content comparison at the end.
  std::vector<std::pair<Key, Value>> got;
  pma.Scan(0, kKeyMax, [&](Key k, Value v) {
    got.emplace_back(k, v);
    return true;
  });
  ASSERT_EQ(got.size(), oracle.size());
  auto it = oracle.begin();
  for (size_t i = 0; i < got.size(); ++i, ++it) {
    ASSERT_EQ(got[i].first, it->first);
    ASSERT_EQ(got[i].second, it->second);
  }
}

TEST_P(PmaPropertyTest, SkewedProgramMatchesStdMap) {
  const PmaParam p = GetParam();
  PmaConfig cfg;
  cfg.segment_capacity = p.segment_capacity;
  cfg.adaptive = p.adaptive;
  cfg.use_rewiring = p.use_rewiring;
  cfg.relax_lower = p.relax_lower;
  SequentialPMA pma(cfg);
  std::map<Key, Value> oracle;
  Random rng(12345);
  ZipfDistribution zipf(1 << 22, 1.2);

  for (int op = 0; op < 20000; ++op) {
    const Key k = zipf.Sample(rng);
    if (rng.NextBounded(10) < 7) {
      pma.Insert(k, op);
      oracle[k] = static_cast<Value>(op);
    } else {
      pma.Remove(k);
      oracle.erase(k);
    }
  }
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  ASSERT_EQ(pma.Size(), oracle.size());
  uint64_t sum = 0;
  for (auto& [k, v] : oracle) sum += v;
  EXPECT_EQ(pma.SumAll(), sum);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PmaPropertyTest,
    ::testing::Values(PmaParam{8, false, true, true},
                      PmaParam{8, true, true, true},
                      PmaParam{16, true, false, true},
                      PmaParam{16, false, false, false},
                      PmaParam{64, true, true, true},
                      PmaParam{128, true, true, true},
                      PmaParam{128, false, true, false},
                      PmaParam{256, true, true, true}),
    [](const ::testing::TestParamInfo<PmaParam>& info) {
      const auto& p = info.param;
      std::string name = "B" + std::to_string(p.segment_capacity);
      name += p.adaptive ? "_adaptive" : "_traditional";
      name += p.use_rewiring ? "_rewired" : "_copy";
      name += p.relax_lower ? "_relaxed" : "_strict";
      return name;
    });

// -------------------------------------------------------------- Adaptive

TEST(Adaptive, SkewedInsertsCauseFewerRebalancesThanTraditional) {
  auto run = [](bool adaptive) {
    PmaConfig cfg;
    cfg.segment_capacity = 32;
    cfg.adaptive = adaptive;
    SequentialPMA pma(cfg);
    // Hammer an ascending run in the middle of a pre-populated array —
    // maximally skewed insertion point.
    for (Key k = 0; k < 20000; ++k) pma.Insert(k * 1000, k);
    uint64_t before = pma.num_rebalances();
    for (Key k = 0; k < 20000; ++k) pma.Insert(10000000 + k, k);
    return pma.num_rebalances() - before;
  };
  const uint64_t with_adaptive = run(true);
  const uint64_t with_traditional = run(false);
  EXPECT_LT(with_adaptive, with_traditional)
      << "adaptive rebalancing should reduce rebalances under skew";
}

TEST(Adaptive, CalibratorTreeDumpMentionsDensities) {
  SequentialPMA pma;
  for (Key k = 0; k < 1000; ++k) pma.Insert(k, k);
  const std::string dump = pma.DebugDumpCalibratorTree();
  EXPECT_NE(dump.find("calibrator tree"), std::string::npos);
  EXPECT_NE(dump.find("level 0"), std::string::npos);
  EXPECT_NE(dump.find("tau="), std::string::npos);
}

}  // namespace
}  // namespace cpma
