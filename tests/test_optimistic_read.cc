// Optimistic versioned-gate read path (ISSUE 4).
//
// Dual-labeled unit+concurrent (tests/CMakeLists.txt): the unit pass
// covers the scalar/AVX2 kernels under CPMA_DISABLE_AVX2, the
// concurrent pass runs the same hammers under TSan, where the tagged
// accesses (common/tagged.h) must keep the seqlock races expressed as
// atomics — any missed tagging fails the tsan preset, no suppressions.
//
//  - GateVersionParity: the seqlock word is even exactly when no
//    writer/rebalancer owns the chunk, across every state-machine edge
//    including the WRITE -> REBAL hand-off.
//  - TornReadHammer: writers mutate one hot gate while readers
//    Find/Scan through it; every observed value must be the writer
//    invariant (a torn-but-validated window would surface garbage).
//  - ScanDuringFenceMovingRebalance: ascending inserts drive local and
//    global rebalances plus resizes under running scans; scans must
//    stay sorted, duplicate-free and value-consistent while fences
//    move beneath them.
//  - ForcedFallback*: CPMA_OPTIMISTIC_RETRIES=0 disables the optimistic
//    path; the blocking latch protocol must pass the same checks, and
//    the fallback counter proves which path served the reads.
//  - QuiescentReadsNeverFallBack: with no writers, every read must be
//    served optimistically (fallback counter stays zero).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/latches.h"
#include "concurrent/concurrent_pma.h"
#include "concurrent/gate.h"

namespace cpma {
namespace {

GateOp Ins(Key k) { return GateOp{GateOp::Type::kInsert, k, k}; }

/// Writer invariant: the only value ever stored for `k`. Readers that
/// observe anything else caught a torn read escaping validation.
Value ValueFor(Key k) { return k * 0x9E3779B97F4A7C15ull + 1; }

ConcurrentConfig SmallGateConfig(ConcurrentConfig::AsyncMode mode) {
  ConcurrentConfig cfg;
  cfg.pma.segment_capacity = 32;  // small segments: frequent rebalances
  cfg.segments_per_gate = 4;
  cfg.rebalancer_workers = 2;
  cfg.async_mode = mode;
  cfg.t_delay_ms = 5;
  return cfg;
}

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { unsetenv(name_.c_str()); }

 private:
  std::string name_;
};

TEST(OptimisticRead, GateVersionParity) {
  Gate g(0, 0, 8);
  auto stable = [&] { return SeqVersion::Stable(g.version().ReadBegin()); };
  EXPECT_TRUE(stable());

  // Writer acquire/release brackets one mutation window.
  ASSERT_EQ(g.WriterAccess(Ins(5), /*allow_queue=*/false), GateAccess::kOwner);
  EXPECT_FALSE(stable());
  EXPECT_TRUE(g.WriterRelease());
  EXPECT_TRUE(stable());

  // Readers never open a window.
  Key k = 5;
  ASSERT_EQ(g.ReaderAccess(&k), GateAccess::kOwner);
  EXPECT_TRUE(stable());
  g.ReaderRelease();
  EXPECT_TRUE(stable());

  // Master acquire/release brackets one window.
  g.MasterAcquire();
  EXPECT_FALSE(stable());
  g.MasterRelease();
  EXPECT_TRUE(stable());

  // WRITE -> REBAL hand-off keeps the same window open end to end.
  ASSERT_EQ(g.WriterAccess(Ins(6), false), GateAccess::kOwner);
  const uint64_t during_write = g.version().ReadBegin();
  g.TransferToRebalancer();
  EXPECT_EQ(g.version().ReadBegin(), during_write);  // still odd, no bump
  g.MasterAcquire();  // takes over the transferred window
  EXPECT_EQ(g.version().ReadBegin(), during_write);
  g.MasterRelease();
  EXPECT_TRUE(stable());
  ASSERT_TRUE(g.WriterReacquireAfterRebal());
  EXPECT_FALSE(stable());
  EXPECT_TRUE(g.WriterRelease());
  EXPECT_TRUE(stable());

  // A validated window rejects any intervening mutation.
  const uint64_t v = g.version().ReadBegin();
  ASSERT_TRUE(g.version().Validate(v));
  ASSERT_EQ(g.WriterAccess(Ins(7), false), GateAccess::kOwner);
  EXPECT_FALSE(g.version().Validate(v));
  g.WriterRelease();
  EXPECT_FALSE(g.version().Validate(v));  // exact equality, not parity
}

// Shared hammer body: writers churn a small hot key set (upsert/remove
// with the ValueFor invariant) while readers point-read and scan it.
// Checks hold in both the optimistic and the forced-fallback mode.
void RunTornReadHammer(ConcurrentPMA* pma, int num_writers, int num_readers,
                       int rounds) {
  constexpr Key kHotKeys = 512;  // spans a handful of small gates
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn_values{0};
  std::atomic<uint64_t> order_violations{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < num_writers; ++w) {
    writers.emplace_back([&, w] {
      for (int r = 0; r < rounds; ++r) {
        // Each writer owns the keys congruent to it; overwrites and
        // removals keep gates mutating (odd version windows) all along.
        for (Key k = static_cast<Key>(w) + 1; k <= kHotKeys;
             k += static_cast<Key>(num_writers)) {
          pma->Insert(k, ValueFor(k));
          if ((k + static_cast<Key>(r)) % 3 == 0) pma->Remove(k);
        }
      }
      stop.store(true, std::memory_order_relaxed);
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < num_readers; ++t) {
    readers.emplace_back([&, t] {
      uint64_t it = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const Key k = 1 + (it * 31 + static_cast<uint64_t>(t)) % kHotKeys;
        Value v = 0;
        if (pma->Find(k, &v) && v != ValueFor(k)) {
          torn_values.fetch_add(1, std::memory_order_relaxed);
        }
        if (++it % 64 == 0) {
          Key prev = 0;
          bool have_prev = false;
          pma->Scan(1, kHotKeys, [&](Key key, Value value) {
            if (have_prev && key <= prev) {
              order_violations.fetch_add(1, std::memory_order_relaxed);
            }
            if (value != ValueFor(key)) {
              torn_values.fetch_add(1, std::memory_order_relaxed);
            }
            prev = key;
            have_prev = true;
            return true;
          });
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  for (auto& th : readers) th.join();

  EXPECT_EQ(torn_values.load(), 0u);
  EXPECT_EQ(order_violations.load(), 0u);
  pma->Flush();
  std::string err;
  EXPECT_TRUE(pma->CheckInvariants(&err)) << err;
}

TEST(OptimisticRead, TornReadHammer) {
  ConcurrentPMA pma(SmallGateConfig(ConcurrentConfig::AsyncMode::kSync));
  RunTornReadHammer(&pma, /*num_writers=*/2, /*num_readers=*/2,
                    /*rounds=*/200);
  // Reads raced with writers on hot gates; some scans should still have
  // validated latch-free (not a hard guarantee, but a budget of 8
  // windows across this workload failing every single time would mean
  // the optimistic path is broken).
  EXPECT_GT(pma.num_optimistic_gate_reads(), 0u);
}

TEST(OptimisticRead, ScanDuringFenceMovingRebalance) {
  ConcurrentPMA pma(SmallGateConfig(ConcurrentConfig::AsyncMode::kOneByOne));
  constexpr Key kTotal = 50000;
  constexpr int kWriters = 2;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad{0};

  // Ascending interleaved inserts: grows through many local and global
  // rebalances and several resizes, so fences move constantly.
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (Key k = static_cast<Key>(w) + 1; k <= kTotal; k += kWriters) {
        pma.Insert(k, ValueFor(k));
      }
    });
  }
  std::vector<std::thread> scanners;
  for (int t = 0; t < 2; ++t) {
    scanners.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Key prev = 0;
        bool have_prev = false;
        pma.Scan(kKeyMin, kKeyMax, [&](Key key, Value value) {
          if ((have_prev && key <= prev) || value != ValueFor(key)) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
          prev = key;
          have_prev = true;
          return true;
        });
        // SumAll shares the per-gate validation; just exercise it.
        volatile uint64_t sink = pma.SumAll();
        (void)sink;
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : scanners) th.join();
  EXPECT_EQ(bad.load(), 0u);

  pma.Flush();
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  ASSERT_EQ(pma.Size(), static_cast<size_t>(kTotal));
  uint64_t expect_sum = 0;
  for (Key k = 1; k <= kTotal; ++k) expect_sum += ValueFor(k);
  EXPECT_EQ(pma.SumAll(), expect_sum);
  // The array grew through resizes; the global rebalance machinery must
  // actually have run for this test to mean anything.
  EXPECT_GT(pma.num_resizes() + pma.num_global_rebalances(), 0u);
}

TEST(OptimisticRead, ForcedFallbackMatchesBlocking) {
  ScopedEnv env("CPMA_OPTIMISTIC_RETRIES", "0");
  ConcurrentPMA pma(SmallGateConfig(ConcurrentConfig::AsyncMode::kSync));
  ASSERT_EQ(pma.optimistic_retries(), 0);
  RunTornReadHammer(&pma, /*num_writers=*/2, /*num_readers=*/2,
                    /*rounds=*/120);
  // Every read took the blocking latch; none validated optimistically.
  EXPECT_GT(pma.num_read_fallbacks(), 0u);
  EXPECT_EQ(pma.num_optimistic_gate_reads(), 0u);
}

TEST(OptimisticRead, QuiescentReadsNeverFallBack) {
  ConcurrentPMA pma(SmallGateConfig(ConcurrentConfig::AsyncMode::kSync));
  constexpr Key kN = 4096;
  for (Key k = 1; k <= kN; ++k) pma.Insert(k, ValueFor(k));
  pma.Flush();

  std::vector<std::thread> readers;
  std::atomic<uint64_t> misses{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (Key k = static_cast<Key>(t) + 1; k <= kN; k += 4) {
        Value v = 0;
        if (!pma.Find(k, &v) || v != ValueFor(k)) {
          misses.fetch_add(1, std::memory_order_relaxed);
        }
      }
      uint64_t count = 0;
      pma.Scan(1, kN, [&](Key, Value) {
        ++count;
        return true;
      });
      if (count != kN) misses.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(misses.load(), 0u);
  // No mutators: every window validates on the first attempt, so the
  // blocking path must never have been taken.
  EXPECT_EQ(pma.num_read_fallbacks(), 0u);
  EXPECT_GT(pma.num_optimistic_gate_reads(), 0u);
}

TEST(OptimisticRead, EnvKnobOverridesConfig) {
  {
    ScopedEnv env("CPMA_OPTIMISTIC_RETRIES", "3");
    ConcurrentPMA pma;
    EXPECT_EQ(pma.optimistic_retries(), 3);
  }
  ConcurrentConfig cfg;
  EXPECT_EQ(cfg.optimistic_retries, 8);
  cfg.optimistic_retries = 2;
  ConcurrentPMA pma(cfg);
  EXPECT_EQ(pma.optimistic_retries(), 2);
}

}  // namespace
}  // namespace cpma
