// Per-key FIFO ordering for the async modes (ISSUE 5).
//
// Dual-labeled unit+concurrent (tests/CMakeLists.txt): the unit pass
// runs the deterministic scenarios on the scalar and AVX2 kernels, the
// concurrent pass re-runs everything (including the multi-writer FIFO
// storm) under TSan, where the queue hand-off to the rebalancer and the
// stamp-ordered merges must stay race-free.
//
//  - StrictHandoffAppliesInOrder: a writer whose op triggers a
//    fence-moving multi-gate rebalance hands it to the master inside
//    the combining queue; the op lands exactly once, no reroute ever
//    happens, and a later op on the same key wins (FIFO).
//  - RelaxedRerouteInvertsSameKeyOrder: the same deterministic scenario
//    with strict_async_order off. The reroute hook fires inside the
//    relaxed mode's reordering window and injects a younger op on the
//    same key; the rerouted older op then overwrites it — the §3.5
//    inversion this PR turns off by default. Flipping the strict knob
//    on makes the FIFO expectation of the strict test hold and this
//    inversion impossible (the two tests are each other's A/B).
//  - FifoStorm*: three writers, per-key monotone values, bursts of
//    same-key ops with no flush in between, tiny segments so fences
//    move constantly; the final state must be exactly the last issued
//    op per key in all three async modes.
//  - EnvKnobOverridesConfig: CPMA_STRICT_ASYNC=0/1 beats the config;
//    garbage values are ignored.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "concurrent/concurrent_pma.h"
#include "concurrent/gate.h"

namespace cpma {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { unsetenv(name_.c_str()); }

 private:
  std::string name_;
};

/// Smallest legal geometry: 4-slot segments, 2 segments per gate, 4
/// initial segments (2 gates). All preloaded keys land in gate 0 (gate
/// 1 starts with an empty fence range), so the first global rebalance
/// provably moves the fence between the two gates.
ConcurrentConfig TinyConfig(ConcurrentConfig::AsyncMode mode, bool strict) {
  ConcurrentConfig cfg;
  cfg.pma.segment_capacity = 4;
  cfg.pma.initial_num_segments = 4;
  cfg.segments_per_gate = 2;
  cfg.rebalancer_workers = 1;
  cfg.async_mode = mode;
  cfg.t_delay_ms = 1;
  cfg.strict_async_order = strict;
  return cfg;
}

/// Fill gate 0 with 7 of its 8 slots so the next ascending insert that
/// hits a full segment must escalate to a multi-gate rebalance.
void PreloadSevens(ConcurrentPMA* pma) {
  for (Key k = 10; k <= 70; k += 10) pma->Insert(k, k);
  pma->Flush();
  ASSERT_EQ(pma->num_global_rebalances(), 0u);
}

/// Ascending inserts above the preload until one triggers a global
/// rebalance (its target segment is full and the in-gate window cannot
/// absorb it). Returns the keys inserted, in order; the last one is the
/// op that rode (strict) or crossed (relaxed) the fence move.
std::vector<Key> InsertUntilGlobalRebalance(ConcurrentPMA* pma) {
  std::vector<Key> keys;
  for (Key k = 75; k < 75 + 16; ++k) {
    keys.push_back(k);
    pma->Insert(k, 1000 + k);
    if (pma->num_global_rebalances() > 0) break;
  }
  return keys;
}

TEST(RerouteOrder, StrictHandoffAppliesInOrder) {
  ConcurrentPMA pma(
      TinyConfig(ConcurrentConfig::AsyncMode::kOneByOne, /*strict=*/true));
  std::atomic<int> hook_fires{0};
  pma.SetRerouteHookForTest([&](const GateOp&) { hook_fires.fetch_add(1); });

  PreloadSevens(&pma);
  const std::vector<Key> keys = InsertUntilGlobalRebalance(&pma);
  ASSERT_GT(pma.num_global_rebalances(), 0u)
      << "scenario failed to force a multi-gate rebalance";
  pma.Flush();

  // The hand-off path re-dispatches nothing: the op whose key crossed
  // the moved fence was folded into the master's merged spread.
  EXPECT_EQ(pma.num_reroutes(), 0u);
  EXPECT_EQ(hook_fires.load(), 0);

  // Every op applied exactly once, at its stamped position.
  for (Key k : keys) {
    Value v = 0;
    ASSERT_TRUE(pma.Find(k, &v)) << "key " << k;
    EXPECT_EQ(v, 1000 + k) << "key " << k;
  }
  // Per-key FIFO: a younger op on the fence-crossing key wins.
  const Key crossed = keys.back();
  pma.Insert(crossed, 4242);
  pma.Flush();
  Value v = 0;
  ASSERT_TRUE(pma.Find(crossed, &v));
  EXPECT_EQ(v, 4242);

  std::string err;
  EXPECT_TRUE(pma.CheckInvariants(&err)) << err;
}

TEST(RerouteOrder, RelaxedRerouteInvertsSameKeyOrder) {
  ConcurrentPMA pma(
      TinyConfig(ConcurrentConfig::AsyncMode::kOneByOne, /*strict=*/false));
  // The hook runs on the re-dispatching thread after the origin gate
  // was released and before the index descent — the relaxed mode's
  // reordering window. Injecting a younger op on the same key here is
  // the deterministic version of the race the PR 3 soak reproduced.
  std::atomic<int> hook_fires{0};
  Key inverted_key = 0;
  pma.SetRerouteHookForTest([&](const GateOp& op) {
    if (hook_fires.fetch_add(1) == 0) {
      inverted_key = op.key;
      pma.Insert(op.key, 4242);  // younger op: issued after `op`
      pma.Flush();               // fully applied before `op` re-applies
    }
  });

  PreloadSevens(&pma);
  InsertUntilGlobalRebalance(&pma);
  ASSERT_GT(pma.num_global_rebalances(), 0u)
      << "scenario failed to force a multi-gate rebalance";
  pma.Flush();

  // The op that crossed the fence move was re-dispatched...
  ASSERT_GE(hook_fires.load(), 1);
  EXPECT_GE(pma.num_reroutes(), 1u);
  // ...and overwrote the younger op: same-key order inverted. This
  // EXPECT documents the relaxed contract; under strict_async_order the
  // hook never fires and the younger op wins (see the test above).
  Value v = 0;
  ASSERT_TRUE(pma.Find(inverted_key, &v));
  EXPECT_EQ(v, 1000 + inverted_key)
      << "relaxed mode unexpectedly preserved FIFO for key "
      << inverted_key;

  std::string err;
  EXPECT_TRUE(pma.CheckInvariants(&err)) << err;
}

// ------------------------------------------------------------- storm

struct StormParam {
  ConcurrentConfig::AsyncMode mode;
  const char* name;
};

class FifoStorm : public ::testing::TestWithParam<StormParam> {};

// Three writers, disjoint key strides, per-key monotone values, and —
// the part the pre-ISSUE-5 contract could not survive — bursts of
// consecutive ops on the SAME key with no Flush between them, while
// tiny segments keep fences moving. Strict ordering must deliver the
// last issued op per key as the final state, exactly.
TEST_P(FifoStorm, LastIssuedOpWinsPerKey) {
  ConcurrentPMA pma(TinyConfig(GetParam().mode, /*strict=*/true));
  constexpr int kWriters = 3;
  constexpr int kOpsPerWriter = 8000;
  constexpr Key kRange = 1 << 10;

  std::vector<std::map<Key, std::optional<Value>>> last(kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random rng(500 + static_cast<uint64_t>(w));
      auto& mine = last[static_cast<size_t>(w)];
      Value ctr = 0;
      for (int i = 0; i < kOpsPerWriter;) {
        const Key k =
            rng.NextBounded(kRange) * kWriters + static_cast<Key>(w);
        // Burst of 1-4 ops on this key, issued back to back.
        const int burst = 1 + static_cast<int>(rng.NextBounded(4));
        for (int b = 0; b < burst && i < kOpsPerWriter; ++b, ++i) {
          if (rng.NextBounded(4) == 0) {
            pma.Remove(k);
            mine[k] = std::nullopt;
          } else {
            const Value v = ++ctr;
            pma.Insert(k, v);
            mine[k] = v;
          }
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  pma.Flush();

  EXPECT_EQ(pma.num_reroutes(), 0u);
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  size_t expected = 0;
  for (int w = 0; w < kWriters; ++w) {
    for (const auto& [k, v] : last[static_cast<size_t>(w)]) {
      Value got = 0;
      const bool found = pma.Find(k, &got);
      if (v.has_value()) {
        ++expected;
        ASSERT_TRUE(found) << "writer " << w << " key " << k;
        ASSERT_EQ(got, *v) << "writer " << w << " key " << k;
      } else {
        ASSERT_FALSE(found) << "writer " << w << " removed key " << k;
      }
    }
  }
  EXPECT_EQ(pma.Size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, FifoStorm,
    ::testing::Values(
        StormParam{ConcurrentConfig::AsyncMode::kSync, "sync"},
        StormParam{ConcurrentConfig::AsyncMode::kOneByOne, "1by1"},
        StormParam{ConcurrentConfig::AsyncMode::kBatch, "batch"}),
    [](const ::testing::TestParamInfo<StormParam>& info) {
      return std::string(info.param.name);
    });

// -------------------------------------------------------------- knob

TEST(RerouteOrder, EnvKnobOverridesConfig) {
  ConcurrentConfig strict_cfg;  // default: strict on
  ConcurrentConfig relaxed_cfg;
  relaxed_cfg.strict_async_order = false;
  {
    ConcurrentPMA pma(relaxed_cfg);
    EXPECT_FALSE(pma.strict_async_order());
  }
  {
    ScopedEnv env("CPMA_STRICT_ASYNC", "0");
    ConcurrentPMA pma(strict_cfg);
    EXPECT_FALSE(pma.strict_async_order());
  }
  {
    ScopedEnv env("CPMA_STRICT_ASYNC", "1");
    ConcurrentPMA pma(relaxed_cfg);
    EXPECT_TRUE(pma.strict_async_order());
  }
  {
    // Garbage must not silently relax the contract.
    ScopedEnv env("CPMA_STRICT_ASYNC", "yes");
    ConcurrentPMA pma(strict_cfg);
    EXPECT_TRUE(pma.strict_async_order());
  }
}

}  // namespace
}  // namespace cpma
