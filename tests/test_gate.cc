// Tests for the gate latch state machine: shared/exclusive acquisition,
// fence validation, combining queue protocol, rebalancer ownership
// transfer and invalidation.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "concurrent/gate.h"

namespace cpma {
namespace {

GateOp Ins(Key k) { return GateOp{GateOp::Type::kInsert, k, k}; }

TEST(Gate, WriterAcquiresFreeGate) {
  Gate g(0, 0, 8);
  EXPECT_EQ(g.WriterAccess(Ins(5), /*allow_queue=*/true), GateAccess::kOwner);
  EXPECT_TRUE(g.WriterRelease());
}

TEST(Gate, FenceRejectionRoutesToNeighbours) {
  Gate g(1, 8, 16);
  g.SetFences(100, 200);
  EXPECT_EQ(g.WriterAccess(Ins(50), true), GateAccess::kTooLow);
  EXPECT_EQ(g.WriterAccess(Ins(250), true), GateAccess::kTooHigh);
  EXPECT_EQ(g.WriterAccess(Ins(100), true), GateAccess::kOwner);
  g.WriterRelease();
  Key low = 150;
  EXPECT_EQ(g.ReaderAccess(&low), GateAccess::kOwner);
  g.ReaderRelease();
  Key too_high = 201;
  EXPECT_EQ(g.ReaderAccess(&too_high), GateAccess::kTooHigh);
}

TEST(Gate, SecondWriterQueuesOntoActiveWriter) {
  Gate g(0, 0, 8);
  ASSERT_EQ(g.WriterAccess(Ins(1), true), GateAccess::kOwner);
  EXPECT_EQ(g.WriterAccess(Ins(2), true), GateAccess::kQueued);
  EXPECT_EQ(g.WriterAccess(Ins(3), true), GateAccess::kQueued);
  GateOp op;
  ASSERT_TRUE(g.WriterPopOrRelease(&op));
  EXPECT_EQ(op.key, 2u);
  ASSERT_TRUE(g.WriterPopOrRelease(&op));
  EXPECT_EQ(op.key, 3u);
  EXPECT_FALSE(g.WriterPopOrRelease(&op));  // empty => released
  // Gate is free again; a new writer owns it.
  EXPECT_EQ(g.WriterAccess(Ins(4), true), GateAccess::kOwner);
  g.WriterRelease();
}

TEST(Gate, SyncModeNeverQueues) {
  Gate g(0, 0, 8);
  ASSERT_EQ(g.WriterAccess(Ins(1), /*allow_queue=*/false), GateAccess::kOwner);
  std::atomic<bool> second_acquired{false};
  std::thread t([&] {
    EXPECT_EQ(g.WriterAccess(Ins(2), false), GateAccess::kOwner);
    second_acquired.store(true);
    g.WriterRelease();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_acquired.load()) << "sync writer must block, not queue";
  g.WriterRelease();
  t.join();
  EXPECT_TRUE(second_acquired.load());
}

TEST(Gate, ReadersShareWritersExclude) {
  Gate g(0, 0, 8);
  Key k = 1;
  ASSERT_EQ(g.ReaderAccess(&k), GateAccess::kOwner);
  ASSERT_EQ(g.ReaderAccess(&k), GateAccess::kOwner);  // second reader ok
  std::atomic<bool> writer_done{false};
  std::thread w([&] {
    EXPECT_EQ(g.WriterAccess(Ins(1), true), GateAccess::kOwner);
    writer_done.store(true);
    g.WriterRelease();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_done.load());
  g.ReaderRelease();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_done.load()) << "one reader still inside";
  g.ReaderRelease();
  w.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(Gate, TransferAndMasterTakeover) {
  Gate g(0, 0, 8);
  ASSERT_EQ(g.WriterAccess(Ins(1), true), GateAccess::kOwner);
  g.TransferToRebalancer();
  // Master can acquire the transferred gate without blocking.
  g.MasterAcquire();
  g.MasterRelease();
  // Writer re-acquires once the master released.
  EXPECT_TRUE(g.WriterReacquireAfterRebal());
  g.WriterRelease();
}

TEST(Gate, QueueAcceptsOpsWhileTransferred) {
  Gate g(0, 0, 8);
  ASSERT_EQ(g.WriterAccess(Ins(1), true), GateAccess::kOwner);
  g.TransferToRebalancer();
  // writer_active is still set: other writers keep queueing.
  EXPECT_EQ(g.WriterAccess(Ins(7), true), GateAccess::kQueued);
  g.MasterAcquire();
  g.MasterRelease();
  ASSERT_TRUE(g.WriterReacquireAfterRebal());
  GateOp op;
  ASSERT_TRUE(g.WriterPopOrRelease(&op));
  EXPECT_EQ(op.key, 7u);
  EXPECT_FALSE(g.WriterPopOrRelease(&op));
}

TEST(Gate, DetachKeepsQueueAccumulating) {
  Gate g(0, 0, 8);
  ASSERT_EQ(g.WriterAccess(Ins(1), true), GateAccess::kOwner);
  g.OwnerPushBack(Ins(1));
  g.WriterDetachKeepQueue();
  // Gate is FREE but the combiner slot is taken: writers queue, readers
  // pass.
  EXPECT_EQ(g.WriterAccess(Ins(2), true), GateAccess::kQueued);
  Key k = 1;
  EXPECT_EQ(g.ReaderAccess(&k), GateAccess::kOwner);
  g.ReaderRelease();
  // Master consumes the detached queue.
  g.MasterAcquire();
  g.MasterClearWriterActive();
  auto q = g.MasterTakeQueue();
  EXPECT_EQ(q.size(), 2u);
  g.MasterRelease();
  // Next writer owns normally again.
  EXPECT_EQ(g.WriterAccess(Ins(3), true), GateAccess::kOwner);
  g.WriterRelease();
}

TEST(Gate, InvalidationWakesAndRejects) {
  Gate g(0, 0, 8);
  g.MasterAcquire();
  std::atomic<int> rejections{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      Key k = 1;
      if (g.ReaderAccess(&k) == GateAccess::kInvalidated) {
        rejections.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  g.InvalidateAndRelease();
  for (auto& t : threads) t.join();
  EXPECT_EQ(rejections.load(), 4);
  EXPECT_EQ(g.WriterAccess(Ins(1), true), GateAccess::kInvalidated);
}

TEST(Gate, WriterReacquireFailsAfterInvalidation) {
  Gate g(0, 0, 8);
  ASSERT_EQ(g.WriterAccess(Ins(1), true), GateAccess::kOwner);
  g.TransferToRebalancer();
  std::thread master([&] {
    g.MasterAcquire();
    std::deque<GateOp> q = g.MasterTakeQueue();
    g.InvalidateAndRelease();
  });
  EXPECT_FALSE(g.WriterReacquireAfterRebal());
  master.join();
}

TEST(Gate, ConcurrentQueueAndDrainLosesNothing) {
  Gate g(0, 0, 8);
  constexpr int kProducers = 6;
  constexpr int kOpsEach = 500;
  std::atomic<int> drained{0};
  std::atomic<int> owned_applied{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kOpsEach; ++i) {
        GateOp op = Ins(static_cast<Key>(p * kOpsEach + i));
        GateAccess a = g.WriterAccess(op, true);
        if (a == GateAccess::kOwner) {
          owned_applied.fetch_add(1);  // own op applied directly
          GateOp qop;
          while (g.WriterPopOrRelease(&qop)) drained.fetch_add(1);
        } else {
          ASSERT_EQ(a, GateAccess::kQueued);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(owned_applied.load() + drained.load(), kProducers * kOpsEach);
}

}  // namespace
}  // namespace cpma
