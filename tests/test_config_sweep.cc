// Parameterised configuration-space sweep of the concurrent PMA:
// segment capacity × segments-per-gate × index fanout × worker count ×
// async mode, each validated against a std::map oracle and the
// structural invariants. This guards the places where configuration
// interacts with the protocol (gate alignment, window levels, parallel
// partitioning thresholds).

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "common/random.h"
#include "concurrent/concurrent_pma.h"

namespace cpma {
namespace {

using AsyncMode = ConcurrentConfig::AsyncMode;

struct SweepParam {
  size_t segment_capacity;
  size_t segments_per_gate;
  size_t index_fanout;
  size_t workers;
  AsyncMode mode;
  size_t parallel_min_gates;
};

class ConfigSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  ConcurrentConfig MakeConfig() const {
    const SweepParam& p = GetParam();
    ConcurrentConfig cfg;
    cfg.pma.segment_capacity = p.segment_capacity;
    cfg.segments_per_gate = p.segments_per_gate;
    cfg.index_fanout = p.index_fanout;
    cfg.rebalancer_workers = p.workers;
    cfg.async_mode = p.mode;
    cfg.t_delay_ms = 3;
    cfg.parallel_rebalance_min_gates = p.parallel_min_gates;
    return cfg;
  }
};

TEST_P(ConfigSweep, OracleUnderChurn) {
  ConcurrentPMA pma(MakeConfig());
  std::map<Key, Value> oracle;
  Random rng(GetParam().segment_capacity * 131 +
             GetParam().segments_per_gate);
  for (int op = 0; op < 25000; ++op) {
    Key k = rng.NextBounded(3000);
    if (rng.NextBounded(10) < 6) {
      pma.Insert(k, op);
      oracle[k] = static_cast<Value>(op);
    } else {
      pma.Remove(k);
      oracle.erase(k);
    }
  }
  pma.Flush();
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  ASSERT_EQ(pma.Size(), oracle.size());
  auto it = oracle.begin();
  size_t n = 0;
  bool ok = true;
  pma.Scan(0, kKeyMax, [&](Key k, Value v) {
    ok = ok && it != oracle.end() && it->first == k && it->second == v;
    ++it;
    ++n;
    return ok;
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(n, oracle.size());
}

TEST_P(ConfigSweep, ParallelWritersConverge) {
  ConcurrentPMA pma(MakeConfig());
  constexpr int kWriters = 4;
  constexpr int kOps = 5000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOps; ++i) {
        pma.Insert(static_cast<Key>(i * kWriters + w), i);
      }
    });
  }
  for (auto& t : threads) t.join();
  pma.Flush();
  std::string err;
  ASSERT_TRUE(pma.CheckInvariants(&err)) << err;
  EXPECT_EQ(pma.Size(), static_cast<size_t>(kWriters * kOps));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConfigSweep,
    ::testing::Values(
        // Tiny everything: maximal structural churn.
        SweepParam{8, 2, 2, 0, AsyncMode::kSync, 2},
        SweepParam{8, 2, 2, 1, AsyncMode::kOneByOne, 2},
        SweepParam{8, 4, 4, 2, AsyncMode::kBatch, 2},
        // Wide gates vs narrow gates.
        SweepParam{16, 16, 8, 2, AsyncMode::kBatch, 2},
        SweepParam{16, 2, 8, 2, AsyncMode::kOneByOne, 2},
        // Large segments, paper-ish gate.
        SweepParam{256, 8, 16, 4, AsyncMode::kBatch, 2},
        // Parallel rebalance forced on even for small windows.
        SweepParam{8, 4, 16, 4, AsyncMode::kOneByOne, 1},
        // No workers at all: master does everything inline.
        SweepParam{32, 8, 16, 0, AsyncMode::kBatch, 4}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      const auto& p = info.param;
      std::string name = "B" + std::to_string(p.segment_capacity) + "_g" +
                         std::to_string(p.segments_per_gate) + "_f" +
                         std::to_string(p.index_fanout) + "_w" +
                         std::to_string(p.workers);
      switch (p.mode) {
        case AsyncMode::kSync: name += "_sync"; break;
        case AsyncMode::kOneByOne: name += "_1by1"; break;
        case AsyncMode::kBatch: name += "_batch"; break;
      }
      name += "_p" + std::to_string(p.parallel_min_gates);
      return name;
    });

}  // namespace
}  // namespace cpma
