// Tests for the pointer-free static index: layout, lookup, O(1)-style
// separator updates, and latch-free traversal under concurrent updates.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "concurrent/static_index.h"

namespace cpma {
namespace {

TEST(StaticIndex, SingleGateAlwaysZero) {
  StaticIndex idx(1, 16);
  EXPECT_EQ(idx.Lookup(0), 0u);
  EXPECT_EQ(idx.Lookup(12345), 0u);
  EXPECT_EQ(idx.Lookup(kKeyMax), 0u);
}

TEST(StaticIndex, InitialSeparatorsRouteToGateZero) {
  StaticIndex idx(64, 8);
  EXPECT_EQ(idx.Lookup(42), 0u);
}

TEST(StaticIndex, LookupMatchesLinearScan) {
  const size_t kGates = 100;
  StaticIndex idx(kGates, 4);
  std::vector<Key> seps(kGates);
  for (size_t g = 0; g < kGates; ++g) {
    seps[g] = g == 0 ? kKeyMin : g * 1000;
    idx.SetSeparator(g, seps[g]);
  }
  for (Key key : std::vector<Key>{0, 1, 999, 1000, 1001, 54321, 99000,
                                  99999, 1u << 30}) {
    size_t expect = 0;
    for (size_t g = 0; g < kGates; ++g) {
      if (seps[g] <= key) expect = g;
    }
    EXPECT_EQ(idx.Lookup(key), expect) << "key " << key;
  }
}

TEST(StaticIndex, ExhaustiveAgainstLinearScanManyShapes) {
  for (size_t gates : {1u, 2u, 3u, 7u, 16u, 17u, 64u, 129u}) {
    for (size_t fanout : {2u, 3u, 8u, 16u}) {
      StaticIndex idx(gates, fanout);
      std::vector<Key> seps(gates);
      for (size_t g = 0; g < gates; ++g) {
        seps[g] = g == 0 ? kKeyMin : 10 * g + 5;
        idx.SetSeparator(g, seps[g]);
      }
      for (Key key = 0; key < 10 * gates + 20; ++key) {
        size_t expect = 0;
        for (size_t g = 0; g < gates; ++g) {
          if (seps[g] <= key) expect = g;
        }
        ASSERT_EQ(idx.Lookup(key), expect)
            << "gates=" << gates << " fanout=" << fanout << " key=" << key;
      }
    }
  }
}

TEST(StaticIndex, SeparatorUpdatePropagatesUpward) {
  // Gate index divisible by fanout^2 must update two upper levels.
  StaticIndex idx(256, 4);
  for (size_t g = 0; g < 256; ++g) {
    idx.SetSeparator(g, g == 0 ? kKeyMin : g * 10);
  }
  // Move gate 16's separator (16 = fanout^2) and check lookups route
  // around the new value correctly.
  idx.SetSeparator(16, 155);
  EXPECT_EQ(idx.Lookup(154), 15u);
  EXPECT_EQ(idx.Lookup(155), 16u);
  EXPECT_EQ(idx.Lookup(169), 16u);
  EXPECT_EQ(idx.Lookup(170), 17u);
}

TEST(StaticIndex, NumLevelsLogarithmic) {
  StaticIndex idx(4096, 16);
  // 4096 -> 256 -> 16 -> 1: 4 levels.
  EXPECT_EQ(idx.num_levels(), 4u);
  StaticIndex idx2(1, 16);
  EXPECT_EQ(idx2.num_levels(), 1u);
}

TEST(StaticIndex, ConcurrentReadersNeverCrashAndLandInRange) {
  // Readers traverse while a writer permutes separators; results may be
  // stale but must always be a valid gate id.
  const size_t kGates = 128;
  StaticIndex idx(kGates, 8);
  for (size_t g = 0; g < kGates; ++g) {
    idx.SetSeparator(g, g == 0 ? kKeyMin : g * 100);
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t round = 0;
    while (!stop.load()) {
      for (size_t g = 1; g < kGates; ++g) {
        idx.SetSeparator(g, g * 100 + (round % 50));
      }
      ++round;
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200000; ++i) {
        size_t g = idx.Lookup(static_cast<Key>(i * 131) % (kGates * 100));
        ASSERT_LT(g, kGates);
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace cpma
