// Property tests for the hot-path search kernels (ISSUE 2): the scalar
// and AVX2 lower bounds must agree with std::lower_bound on ~10k random
// segments across every cardinality 0..segment_capacity, with duplicate
// keys and keys at the sentinel boundary (the AVX2 kernel compares
// unsigned via a sign-bit flip — the boundary cases prove it). Segments
// are allocated exactly `card` items so ASan catches any out-of-bounds
// read by the vector window logic.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

#include "common/hotpath/cpu_dispatch.h"
#include "common/hotpath/search.h"
#include "common/hotpath/search_avx2.h"
#include "common/random.h"
#include "pma/item.h"

namespace cpma {
namespace {

size_t ReferenceLowerBound(const std::vector<Item>& seg, Key key) {
  auto it = std::lower_bound(
      seg.begin(), seg.end(), key,
      [](const Item& a, Key k) { return a.key < k; });
  return static_cast<size_t>(it - seg.begin());
}

/// Sorted segment of exactly `card` items. `domain` small => duplicates
/// likely; `near_sentinel` clusters keys at the top of the key space.
std::vector<Item> MakeSegment(Random& rng, size_t card, uint64_t domain,
                              bool near_sentinel) {
  std::vector<Item> seg(card);
  for (size_t i = 0; i < card; ++i) {
    Key k = rng.NextBounded(domain);
    if (near_sentinel) k = kKeyMax - (k % 1000);
    seg[i] = {k, i};
  }
  std::sort(seg.begin(), seg.end(),
            [](const Item& a, const Item& b) { return a.key < b.key; });
  return seg;
}

std::vector<Key> ProbeKeys(Random& rng, const std::vector<Item>& seg,
                           uint64_t domain) {
  std::vector<Key> probes = {0, 1, domain - 1, kKeyMax, kKeySentinel};
  for (const Item& it : seg) {
    probes.push_back(it.key);
    if (it.key > 0) probes.push_back(it.key - 1);
    if (it.key < kKeySentinel) probes.push_back(it.key + 1);
  }
  for (int i = 0; i < 4; ++i) probes.push_back(rng.NextBounded(domain));
  return probes;
}

struct Shape {
  size_t cap;
  uint64_t domain;
  bool near_sentinel;
};

void RunPropertySuite(
    const std::function<size_t(const Item*, size_t, Key)>& kernel,
    const char* name) {
  Random rng(20260730);
  const Shape shapes[] = {
      {4, 1 << 20, false},    {16, 1 << 20, false},
      {100, 1 << 20, false},  // non-power-of-two length
      {128, 1 << 20, false},  // the paper's B
      {128, 64, false},       // tiny domain: heavy duplicates
      {256, 1 << 20, false},  // ablation B
      {128, 1 << 20, true},   // keys hugging kKeyMax/kKeySentinel
  };
  size_t segments = 0;
  for (const Shape& sh : shapes) {
    // Every cardinality 0..cap once, then random cardinalities until
    // this shape has contributed ~1500 segments.
    std::vector<size_t> cards;
    for (size_t c = 0; c <= sh.cap; ++c) cards.push_back(c);
    while (cards.size() < 1500) {
      cards.push_back(rng.NextBounded(sh.cap + 1));
    }
    for (size_t card : cards) {
      const auto seg = MakeSegment(rng, card, sh.domain, sh.near_sentinel);
      for (Key probe : ProbeKeys(rng, seg, sh.domain)) {
        const size_t expect = ReferenceLowerBound(seg, probe);
        const size_t got = kernel(seg.data(), seg.size(), probe);
        ASSERT_EQ(got, expect)
            << name << ": cap=" << sh.cap << " card=" << card
            << " near_sentinel=" << sh.near_sentinel << " key=" << probe;
      }
      ++segments;
    }
  }
  ASSERT_GE(segments, 10000u) << "property suite lost coverage";
}

TEST(HotpathSearch, ScalarMatchesStdLowerBound) {
  RunPropertySuite(hotpath::ScalarItemLowerBound, "scalar");
}

TEST(HotpathSearch, Avx2MatchesStdLowerBound) {
#if CPMA_HAVE_AVX2_IMPL
  if (!hotpath::Avx2Supported()) {
    GTEST_SKIP() << "CPU lacks AVX2; portable path covered elsewhere";
  }
  RunPropertySuite(hotpath::Avx2ItemLowerBound, "avx2");
#else
  GTEST_SKIP() << "AVX2 kernel not compiled on this target";
#endif
}

TEST(HotpathSearch, DispatchedSegmentLowerBoundMatchesScalar) {
  Random rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t card = rng.NextBounded(129);
    const auto seg = MakeSegment(rng, card, 1 << 16, trial % 2 == 1);
    for (Key probe : ProbeKeys(rng, seg, 1 << 16)) {
      const size_t expect =
          hotpath::ScalarItemLowerBound(seg.data(), card, probe);
      ASSERT_EQ(hotpath::SegmentLowerBound(
                    seg.data(), static_cast<uint32_t>(card), probe),
                expect);
      ASSERT_EQ(hotpath::SegmentLowerBoundForUpdate(
                    seg.data(), static_cast<uint32_t>(card), probe),
                expect);
    }
  }
}

TEST(HotpathSearch, PrefetchSegmentIsSafeOnAllCardinalities) {
  // Prefetch is a hint, but the address arithmetic must stay in bounds
  // conceptually; just exercise the helper across shapes.
  Random rng(5);
  for (size_t card : {0u, 1u, 3u, 4u, 16u, 128u, 256u}) {
    const auto seg = MakeSegment(rng, card, 1 << 10, false);
    hotpath::PrefetchSegment(seg.data(), static_cast<uint32_t>(card));
  }
  SUCCEED();
}

// ci.sh and the scalar-fallback CI job grep this test's output to check
// which kernels a run selected; it also pins the dispatch contract: env
// override and missing CPU support must force the scalar path for EVERY
// kernel family (search, rebalance copy, gate locate — they share one
// CPUID + env decision).
TEST(HotpathDispatch, ReportsActivePath) {
  const char* name = hotpath::ActiveDispatchName();
  const char* copy_name = hotpath::ActiveCopyDispatchName();
  const char* locate_name = hotpath::ActiveLocateDispatchName();
  EXPECT_TRUE(std::strcmp(name, "avx2") == 0 ||
              std::strcmp(name, "scalar") == 0);
  if (!hotpath::Avx2Supported() || hotpath::Avx2DisabledByEnv()) {
    EXPECT_STREQ(name, "scalar");
  } else {
    EXPECT_STREQ(name, "avx2");
  }
  EXPECT_STREQ(copy_name, name);
  EXPECT_STREQ(locate_name, name);
  std::printf(
      "[hotpath] dispatch=%s search=%s copy=%s locate=%s "
      "(avx2 supported=%d, disabled=%d)\n",
      name, name, copy_name, locate_name, hotpath::Avx2Supported() ? 1 : 0,
      hotpath::Avx2DisabledByEnv() ? 1 : 0);
}

}  // namespace
}  // namespace cpma
