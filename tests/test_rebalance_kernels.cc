// Property tests for the rebalance-engine kernels (ISSUE 3): the
// streaming copy (scalar + AVX2 non-temporal) must be byte-exact against
// the source for every size/alignment combination, the locate kernels
// must agree with a reference scan on route arrays with interleaved
// sentinels (empty segments), and the run-length merge writer must
// reproduce a std::map oracle. Buffers are allocated exactly as large as
// the data so ASan catches any head/tail overrun of the vector windows.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/hotpath/copy.h"
#include "common/hotpath/copy_avx2.h"
#include "common/hotpath/cpu_dispatch.h"
#include "common/hotpath/locate.h"
#include "common/hotpath/locate_avx2.h"
#include "common/hotpath/merge.h"
#include "common/random.h"
#include "pma/item.h"

namespace cpma {
namespace {

// ------------------------------------------------------------------ copy

using CopyKernel = void (*)(Item*, const Item*, size_t);

void RunCopySuite(CopyKernel kernel, const char* name) {
  Random rng(20260731);
  // Cover the kernel's internal regimes: empty, sub-vector, the small-run
  // memcpy cutoff (256 B = 16 items), the 128 B main loop, tails, and a
  // couple of large runs; each at both possible Item alignments.
  const size_t sizes[] = {0,  1,  2,   3,   7,    15,   16,  17,
                          31, 32, 100, 128, 1000, 4096, 5000};
  for (size_t n : sizes) {
    for (size_t dst_off : {0u, 1u}) {
      std::vector<Item> src(n);
      for (size_t i = 0; i < n; ++i) {
        src[i] = {rng.Next(), rng.Next()};
      }
      std::vector<Item> dst(n + dst_off);
      kernel(dst.data() + dst_off, src.data(), n);
      if (n == 0) continue;  // n = 0 with null data() must just not crash
      ASSERT_EQ(std::memcmp(dst.data() + dst_off, src.data(),
                            n * sizeof(Item)),
                0)
          << name << ": n=" << n << " dst_off=" << dst_off;
    }
  }
}

TEST(RebalanceCopy, ScalarMatchesSource) {
  RunCopySuite(hotpath::ScalarCopyItems, "scalar");
}

TEST(RebalanceCopy, Avx2StreamMatchesSource) {
#if CPMA_HAVE_AVX2_COPY_IMPL
  if (!hotpath::Avx2Supported()) {
    GTEST_SKIP() << "CPU lacks AVX2; portable path covered elsewhere";
  }
  RunCopySuite(hotpath::Avx2StreamCopyItems, "avx2-stream");
#else
  GTEST_SKIP() << "AVX2 copy kernel not compiled on this target";
#endif
}

TEST(RebalanceCopy, DispatchedEntryMatchesSource) {
  for (bool stream : {false, true}) {
    Random rng(99);
    std::vector<Item> src(777);
    for (auto& it : src) it = {rng.Next(), rng.Next()};
    std::vector<Item> dst(777);
    hotpath::CopyItems(dst.data(), src.data(), src.size(), stream);
    ASSERT_EQ(
        std::memcmp(dst.data(), src.data(), src.size() * sizeof(Item)), 0)
        << "stream=" << stream;
  }
}

// ---------------------------------------------------------------- locate

size_t ReferenceLocate(const std::vector<Key>& routes, Key key) {
  size_t best = hotpath::kNoRoute;
  for (size_t i = 0; i < routes.size(); ++i) {
    if (routes[i] <= key) best = i;
  }
  return best;
}

/// Gate-shaped route arrays: mostly-increasing first keys with sentinel
/// entries (empty segments) interleaved anywhere, sometimes a kKeyMin
/// head (global segment 0), sometimes all-sentinel (empty chunk).
std::vector<Key> MakeRoutes(Random& rng, size_t n) {
  std::vector<Key> routes(n);
  Key k = rng.NextBounded(1000);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBounded(4) == 0) {
      routes[i] = kKeySentinel;
    } else {
      routes[i] = k;
      k += 1 + rng.NextBounded(1000);
    }
  }
  if (rng.NextBounded(3) == 0) routes[0] = kKeyMin;
  if (rng.NextBounded(16) == 0) {
    for (auto& r : routes) r = kKeySentinel;
  }
  return routes;
}

using LocateKernel = size_t (*)(const Key*, size_t, Key);

void RunLocateSuite(LocateKernel kernel, const char* name) {
  Random rng(42);
  // All gate widths (powers of two) plus odd tail widths and the >64
  // scalar-fallback width of the AVX2 kernel.
  const size_t widths[] = {1, 2, 3, 4, 5, 7, 8, 13, 16, 32, 64, 65, 70};
  for (size_t n : widths) {
    for (int round = 0; round < 400; ++round) {
      const std::vector<Key> routes = MakeRoutes(rng, n);
      std::vector<Key> probes = {0, 1, kKeyMax, kKeySentinel};
      for (Key r : routes) {
        probes.push_back(r);
        if (r > 0) probes.push_back(r - 1);
        if (r < kKeySentinel) probes.push_back(r + 1);
      }
      for (Key probe : probes) {
        ASSERT_EQ(kernel(routes.data(), n, probe),
                  ReferenceLocate(routes, probe))
            << name << ": n=" << n << " key=" << probe;
      }
    }
  }
}

TEST(RebalanceLocate, ScalarMatchesReference) {
  RunLocateSuite(hotpath::ScalarLocateRoute, "scalar");
}

TEST(RebalanceLocate, Avx2MatchesReference) {
#if CPMA_HAVE_AVX2_LOCATE_IMPL
  if (!hotpath::Avx2Supported()) {
    GTEST_SKIP() << "CPU lacks AVX2; portable path covered elsewhere";
  }
  RunLocateSuite(hotpath::Avx2LocateRoute, "avx2");
#else
  GTEST_SKIP() << "AVX2 locate kernel not compiled on this target";
#endif
}

TEST(RebalanceLocate, DispatchedEntryMatchesScalar) {
  Random rng(7);
  for (int round = 0; round < 500; ++round) {
    const size_t n = 1 + rng.NextBounded(16);
    const std::vector<Key> routes = MakeRoutes(rng, n);
    const Key probe = rng.NextBounded(1u << 20);
    ASSERT_EQ(hotpath::LocateRoute(routes.data(), n, probe),
              hotpath::ScalarLocateRoute(routes.data(), n, probe));
  }
}

// ----------------------------------------------------------------- merge

TEST(RebalanceMerge, RunMergeMatchesMapOracle) {
  Random rng(13);
  for (int round = 0; round < 300; ++round) {
    // Random segmented input (sorted, strided keys, empties allowed).
    const size_t nsegs = 1 + rng.NextBounded(6);
    const uint32_t cap = 16;
    std::vector<std::vector<Item>> segs(nsegs);
    std::map<Key, Value> oracle;
    Key k = 1;
    for (auto& seg : segs) {
      const uint32_t c = static_cast<uint32_t>(rng.NextBounded(cap + 1));
      for (uint32_t i = 0; i < c; ++i) {
        seg.push_back({k, k * 2});
        oracle[k] = k * 2;
        k += 1 + rng.NextBounded(7);
      }
    }
    // Random canonical batch (sorted, unique keys).
    std::map<Key, BatchEntry> batch_map;
    const int nops = static_cast<int>(rng.NextBounded(25));
    for (int i = 0; i < nops; ++i) {
      const Key bk = 1 + rng.NextBounded(k + 20);
      const bool is_del = rng.NextBounded(3) == 0;
      batch_map[bk] = {bk, bk * 5, is_del};
      if (is_del) {
        oracle.erase(bk);
      } else {
        oracle[bk] = bk * 5;
      }
    }
    std::vector<BatchEntry> ops;
    for (auto& [kk, e] : batch_map) ops.push_back(e);

    // Output layout: as many cap-slot segments as the merge needs, the
    // last one partially filled.
    const size_t total = oracle.size();
    const size_t out_segs = total / cap + 1;
    std::vector<uint32_t> targets(out_segs, cap);
    targets[out_segs - 1] = static_cast<uint32_t>(total % cap);
    std::vector<Item> out(out_segs * cap, Item{0, 0});

    hotpath::SegmentedRunWriter writer(out.data(), cap, targets.data(),
                                       out_segs, round % 2 == 1);
    size_t op_idx = 0;
    for (const auto& seg : segs) {
      hotpath::MergeRunWithOps(seg.data(),
                               static_cast<uint32_t>(seg.size()), ops.data(),
                               ops.size(), &op_idx, &writer);
    }
    hotpath::EmitRemainingOps(ops.data(), ops.size(), &op_idx, &writer);
    ASSERT_EQ(writer.written(), total) << "round " << round;

    auto it = oracle.begin();
    for (size_t s = 0; s < out_segs; ++s) {
      for (uint32_t i = 0; i < targets[s]; ++i, ++it) {
        ASSERT_EQ(out[s * cap + i].key, it->first) << "round " << round;
        ASSERT_EQ(out[s * cap + i].value, it->second) << "round " << round;
      }
    }
  }
}

TEST(RebalanceMerge, WriterSplitsRunsAcrossSegments) {
  // One long run through uneven targets, including a zero-target segment.
  std::vector<Item> run(10);
  for (size_t i = 0; i < run.size(); ++i) run[i] = {i + 1, i};
  const uint32_t targets[] = {3, 0, 5, 2};
  std::vector<Item> out(4 * 8, Item{0, 0});
  hotpath::SegmentedRunWriter writer(out.data(), 8, targets, 4, false);
  writer.Emit(run.data(), run.size());
  EXPECT_EQ(writer.written(), 10u);
  EXPECT_EQ(out[0].key, 1u);
  EXPECT_EQ(out[2].key, 3u);
  EXPECT_EQ(out[2 * 8].key, 4u);      // segment 1 skipped (target 0)
  EXPECT_EQ(out[2 * 8 + 4].key, 8u);
  EXPECT_EQ(out[3 * 8 + 1].key, 10u);
}

}  // namespace
}  // namespace cpma
