#include "rewiring/rewiring.h"

#include <cstdio>
#include <cstring>

#include "common/tagged.h"

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace cpma {

namespace {

size_t RoundUp(size_t x, size_t align) {
  return (x + align - 1) / align * align;
}

#if defined(__linux__)
int CreateMemFd(size_t bytes) {
#if defined(SYS_memfd_create)
  int fd = static_cast<int>(syscall(SYS_memfd_create, "cpma_rewire", 0u));
  if (fd < 0) return -1;
  if (ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
#else
  (void)bytes;
  return -1;
#endif
}
#endif  // __linux__

}  // namespace

std::unique_ptr<RewiredRegion> RewiredRegion::Create(size_t region_bytes,
                                                     size_t buffer_bytes,
                                                     bool want_huge_pages) {
  auto r = std::unique_ptr<RewiredRegion>(new RewiredRegion());
#if defined(__linux__)
  r->page_size_ = static_cast<size_t>(sysconf(_SC_PAGESIZE));
#endif
  r->region_bytes_ = RoundUp(region_bytes, r->page_size_);
  r->buffer_bytes_ = RoundUp(buffer_bytes, r->page_size_);
  const size_t total = r->region_bytes_ + r->buffer_bytes_;

#if defined(__linux__)
  r->fd_ = CreateMemFd(total);
  if (r->fd_ >= 0) {
    void* region = mmap(nullptr, r->region_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED, r->fd_, 0);
    void* buffer =
        mmap(nullptr, r->buffer_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
             r->fd_, static_cast<off_t>(r->region_bytes_));
    if (region == MAP_FAILED || buffer == MAP_FAILED) {
      if (region != MAP_FAILED) munmap(region, r->region_bytes_);
      if (buffer != MAP_FAILED) munmap(buffer, r->buffer_bytes_);
      close(r->fd_);
      r->fd_ = -1;
    } else {
      r->region_ = static_cast<char*>(region);
      r->buffer_ = static_cast<char*>(buffer);
#if defined(MADV_HUGEPAGE)
      if (want_huge_pages) {
        // Best effort; memfd-backed maps usually stay on 4K pages unless
        // the kernel enables THP for shmem, but asking is free.
        madvise(region, r->region_bytes_, MADV_HUGEPAGE);
        madvise(buffer, r->buffer_bytes_, MADV_HUGEPAGE);
      }
#endif
      const size_t region_pages = r->region_bytes_ / r->page_size_;
      const size_t buffer_pages = r->buffer_bytes_ / r->page_size_;
      r->region_backing_.resize(region_pages);
      r->buffer_backing_.resize(buffer_pages);
      for (size_t i = 0; i < region_pages; ++i) r->region_backing_[i] = i;
      for (size_t i = 0; i < buffer_pages; ++i) {
        r->buffer_backing_[i] = region_pages + i;
      }
      return r;
    }
  }
#endif  // __linux__

  // Fallback: plain allocation, SwapPages copies.
  (void)want_huge_pages;
  r->region_ = static_cast<char*>(::operator new(r->region_bytes_));
  r->buffer_ = static_cast<char*>(::operator new(r->buffer_bytes_));
  std::memset(r->region_, 0, r->region_bytes_);
  std::memset(r->buffer_, 0, r->buffer_bytes_);
  return r;
}

RewiredRegion::~RewiredRegion() {
#if defined(__linux__)
  if (fd_ >= 0) {
    munmap(region_, region_bytes_);
    munmap(buffer_, buffer_bytes_);
    close(fd_);
    return;
  }
#endif
  ::operator delete(region_);
  ::operator delete(buffer_);
}

bool RewiredRegion::CanSwap(size_t region_offset, size_t buffer_offset,
                            size_t len) const {
  if (len == 0) return false;
  if (region_offset % page_size_ != 0 || buffer_offset % page_size_ != 0 ||
      len % page_size_ != 0) {
    return false;
  }
  return region_offset + len <= region_bytes_ &&
         buffer_offset + len <= buffer_bytes_;
}

void RewiredRegion::SwapPages(size_t region_offset, size_t buffer_offset,
                              size_t len) {
  CPMA_CHECK(CanSwap(region_offset, buffer_offset, len));

#if defined(__linux__)
  if (fd_ >= 0) {
    const size_t pages = len / page_size_;
    const size_t r0 = region_offset / page_size_;
    const size_t b0 = buffer_offset / page_size_;
    // Swap the backing tables, then remap contiguous runs with single
    // mmap calls (runs are long right after creation; they fragment as
    // swaps accumulate, which is the realistic rewiring behaviour).
    for (size_t i = 0; i < pages; ++i) {
      std::swap(region_backing_[r0 + i], buffer_backing_[b0 + i]);
    }
    auto remap = [&](char* base, size_t first_page,
                     const std::vector<size_t>& backing, size_t lo) {
      size_t i = 0;
      while (i < pages) {
        size_t run = 1;
        while (i + run < pages &&
               backing[lo + i + run] == backing[lo + i] + run) {
          ++run;
        }
        void* addr = base + (first_page + i) * page_size_;
        void* res =
            mmap(addr, run * page_size_, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_FIXED, fd_,
                 static_cast<off_t>(backing[lo + i] * page_size_));
        CPMA_CHECK_MSG(res == addr, "mmap(MAP_FIXED) failed during rewiring");
        num_remaps_.fetch_add(1, std::memory_order_relaxed);
        i += run;
      }
    };
    remap(region_, r0, region_backing_, r0);
    remap(buffer_, b0, buffer_backing_, b0);
    return;
  }
#endif

  // Fallback: single copy buffer -> region (callers stage data in the
  // buffer; this is the classical two-copies rebalance, second copy
  // here). The destination races with optimistic gate readers, so the
  // copy is tagged (common/tagged.h).
  TaggedCopyWords(region_ + region_offset, buffer_ + buffer_offset, len);
  num_remaps_.fetch_add(1, std::memory_order_relaxed);
  num_fallback_copies_.fetch_add(1, std::memory_order_relaxed);
}

size_t RewiredRegion::backing_page_bytes() const {
#if defined(__linux__)
  // Walk /proc/self/smaps to the mapping holding the live region and
  // report 2 MiB iff the kernel has PMD-sized pages faulted in for it
  // (memfd maps show ShmemPmdMapped/FilePmdMapped, the plain-new
  // fallback AnonHugePages). Reading smaps is microseconds — callers
  // are bench reporters, not hot paths.
  std::FILE* f = std::fopen("/proc/self/smaps", "r");
  if (f == nullptr) return page_size_;
  const unsigned long target = reinterpret_cast<unsigned long>(region_);
  char line[256];
  bool in_mapping = false;
  size_t result = page_size_;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long lo = 0, hi = 0;
    if (std::sscanf(line, "%lx-%lx ", &lo, &hi) == 2) {
      if (in_mapping && target < lo) break;  // past our mapping
      in_mapping = target >= lo && target < hi;
      continue;
    }
    if (!in_mapping) continue;
    size_t kb = 0;
    if (std::sscanf(line, "AnonHugePages: %zu", &kb) == 1 ||
        std::sscanf(line, "ShmemPmdMapped: %zu", &kb) == 1 ||
        std::sscanf(line, "FilePmdMapped: %zu", &kb) == 1) {
      if (kb > 0) {
        result = 2u * 1024 * 1024;
        break;
      }
    }
  }
  std::fclose(f);
  return result;
#else
  return page_size_;
#endif
}

}  // namespace cpma
