#include "rewiring/rewiring.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <new>
#include <thread>

#include "common/failpoint.h"
#include "common/tagged.h"

#if defined(__linux__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace cpma {

namespace {

size_t RoundUp(size_t x, size_t align) {
  return (x + align - 1) / align * align;
}

bool ForceNoRewire() {
  const char* env = std::getenv("CPMA_FORCE_NO_REWIRE");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

#if defined(__linux__)

// ftruncate can be interrupted by a signal before completing (EINTR);
// retry until it settles one way or the other.
int FtruncateRetry(int fd, off_t len) {
  int rc;
  do {
    rc = ftruncate(fd, len);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

// mmap is not documented to fail with EINTR, but file-backed mappings
// can surface it through the backing store on some kernels; a defensive
// retry loop costs nothing on the success path.
void* MmapRetry(void* addr, size_t len, int prot, int flags, int fd,
                off_t off) {
  for (;;) {
    void* p = mmap(addr, len, prot, flags, fd, off);
    if (p != MAP_FAILED || errno != EINTR) return p;
  }
}

// Returns the memfd on success; on failure returns -1 with errno
// describing the reason and *failed_call naming the syscall.
int CreateMemFd(size_t bytes, const char** failed_call) {
#if defined(SYS_memfd_create)
  if (CPMA_FAILPOINT("rewiring.memfd")) {
    errno = EMFILE;
    *failed_call = "memfd_create(injected)";
    return -1;
  }
  int fd = static_cast<int>(syscall(SYS_memfd_create, "cpma_rewire", 0u));
  if (fd < 0) {
    *failed_call = "memfd_create";
    return -1;
  }
  const bool truncate_injected = CPMA_FAILPOINT("rewiring.ftruncate");
  if (truncate_injected) errno = ENOSPC;
  if (truncate_injected || FtruncateRetry(fd, static_cast<off_t>(bytes)) != 0) {
    *failed_call = truncate_injected ? "ftruncate(injected)" : "ftruncate";
    const int saved = errno;
    close(fd);
    errno = saved;
    return -1;
  }
  return fd;
#else
  (void)bytes;
  errno = ENOSYS;
  *failed_call = "memfd_create(unsupported)";
  return -1;
#endif
}

// Remap retry tuning: transient failures (EAGAIN/ENOMEM can clear when
// another thread releases mappings or the kernel reclaims) get a few
// attempts with capped exponential backoff before we give up on the
// zero-copy publish.
constexpr int kRemapAttempts = 4;
constexpr int kRemapBackoffBaseUs = 50;
constexpr int kRemapBackoffCapUs = 2000;

bool ErrnoTransient(int err) {
  return err == EAGAIN || err == ENOMEM || err == EINTR;
}

#endif  // __linux__

}  // namespace

std::unique_ptr<RewiredRegion> RewiredRegion::Create(size_t region_bytes,
                                                     size_t buffer_bytes,
                                                     bool want_huge_pages,
                                                     Status* status) {
  auto r = std::unique_ptr<RewiredRegion>(new RewiredRegion());
#if defined(__linux__)
  r->page_size_ = static_cast<size_t>(sysconf(_SC_PAGESIZE));
#endif
  r->region_bytes_ = RoundUp(region_bytes, r->page_size_);
  r->buffer_bytes_ = RoundUp(buffer_bytes, r->page_size_);
  const size_t total = r->region_bytes_ + r->buffer_bytes_;

#if defined(__linux__)
  if (!ForceNoRewire()) {
    const char* failed_call = nullptr;
    r->fd_ = CreateMemFd(total, &failed_call);
    if (r->fd_ < 0) {
      std::fprintf(stderr,
                   "cpma: rewiring unavailable: %s failed: errno %d (%s); "
                   "falling back to anonymous copy backend\n",
                   failed_call, errno, std::strerror(errno));
    } else {
      void* region = nullptr;
      void* buffer = nullptr;
      if (CPMA_FAILPOINT("rewiring.mmap")) {
        errno = ENOMEM;
      } else {
        region = MmapRetry(nullptr, r->region_bytes_, PROT_READ | PROT_WRITE,
                           MAP_SHARED, r->fd_, 0);
        buffer = MmapRetry(nullptr, r->buffer_bytes_, PROT_READ | PROT_WRITE,
                           MAP_SHARED, r->fd_,
                           static_cast<off_t>(r->region_bytes_));
        if (region == MAP_FAILED) region = nullptr;
        if (buffer == MAP_FAILED) buffer = nullptr;
      }
      if (region == nullptr || buffer == nullptr) {
        std::fprintf(stderr,
                     "cpma: rewiring unavailable: mmap failed: errno %d (%s); "
                     "falling back to anonymous copy backend\n",
                     errno, std::strerror(errno));
        if (region != nullptr) munmap(region, r->region_bytes_);
        if (buffer != nullptr) munmap(buffer, r->buffer_bytes_);
        close(r->fd_);
        r->fd_ = -1;
      } else {
        r->region_ = static_cast<char*>(region);
        r->buffer_ = static_cast<char*>(buffer);
#if defined(MADV_HUGEPAGE)
        if (want_huge_pages) {
          // Best effort; memfd-backed maps usually stay on 4K pages unless
          // the kernel enables THP for shmem, but asking is free.
          madvise(region, r->region_bytes_, MADV_HUGEPAGE);
          madvise(buffer, r->buffer_bytes_, MADV_HUGEPAGE);
        }
#endif
        const size_t region_pages = r->region_bytes_ / r->page_size_;
        const size_t buffer_pages = r->buffer_bytes_ / r->page_size_;
        r->region_backing_.resize(region_pages);
        r->buffer_backing_.resize(buffer_pages);
        for (size_t i = 0; i < region_pages; ++i) r->region_backing_[i] = i;
        for (size_t i = 0; i < buffer_pages; ++i) {
          r->buffer_backing_[i] = region_pages + i;
        }
        if (status != nullptr) *status = Status::OK();
        return r;
      }
    }
  }
#endif  // __linux__

  // Fallback: plain allocation, SwapPages copies. This is the last rung
  // of the ladder — if even this fails, report ResourceExhausted instead
  // of letting bad_alloc/abort take the process down.
  (void)want_huge_pages;
  char* region_mem = nullptr;
  char* buffer_mem = nullptr;
  if (!CPMA_FAILPOINT("rewiring.fallback_alloc")) {
    region_mem =
        static_cast<char*>(::operator new(r->region_bytes_, std::nothrow));
    buffer_mem =
        static_cast<char*>(::operator new(r->buffer_bytes_, std::nothrow));
  }
  if (region_mem == nullptr || buffer_mem == nullptr) {
    ::operator delete(region_mem);
    ::operator delete(buffer_mem);
    if (status != nullptr) {
      *status = Status::ResourceExhausted(
          "RewiredRegion fallback allocation failed (" +
          std::to_string(total) + " bytes)");
    }
    return nullptr;
  }
  r->region_ = region_mem;
  r->buffer_ = buffer_mem;
  std::memset(r->region_, 0, r->region_bytes_);
  std::memset(r->buffer_, 0, r->buffer_bytes_);
  if (status != nullptr) *status = Status::OK();
  return r;
}

RewiredRegion::~RewiredRegion() {
  CPMA_CHECK_MSG(views_open_.load(std::memory_order_relaxed) == 0,
                 "RewiredRegion destroyed with open snapshot views");
#if defined(__linux__)
  if (fd_ >= 0) {
    munmap(region_, region_bytes_);
    munmap(buffer_, buffer_bytes_);
    close(fd_);
    return;
  }
#endif
  ::operator delete(region_);
  ::operator delete(buffer_);
}

bool RewiredRegion::CanSwap(size_t region_offset, size_t buffer_offset,
                            size_t len) const {
  if (len == 0) return false;
  if (region_offset % page_size_ != 0 || buffer_offset % page_size_ != 0 ||
      len % page_size_ != 0) {
    return false;
  }
  return region_offset + len <= region_bytes_ &&
         buffer_offset + len <= buffer_bytes_;
}

#if defined(__linux__)

// Republish [first_page, first_page + pages) of `base` from the backing
// table, coalescing physically contiguous runs into single mmap calls
// (runs are long right after creation; they fragment as swaps
// accumulate, which is the realistic rewiring behaviour). Transient
// errors retry with capped exponential backoff. Returns false (with the
// range possibly partially remapped) on persistent failure or when the
// rewiring.remap_run failpoint fires; the caller restores.
bool RewiredRegion::RemapRuns(char* base, size_t first_page, size_t pages,
                              const std::vector<size_t>& backing, size_t lo,
                              bool allow_failpoints) {
  size_t i = 0;
  while (i < pages) {
    size_t run = 1;
    while (i + run < pages &&
           backing[lo + i + run] == backing[lo + i] + run) {
      ++run;
    }
    void* addr = base + (first_page + i) * page_size_;
    const off_t file_off = static_cast<off_t>(backing[lo + i] * page_size_);
    bool mapped = false;
    for (int attempt = 0; attempt < kRemapAttempts; ++attempt) {
      if (attempt > 0) {
        const int us = std::min(kRemapBackoffCapUs,
                                kRemapBackoffBaseUs << (attempt - 1));
        std::this_thread::sleep_for(std::chrono::microseconds(us));
      }
      if (allow_failpoints && CPMA_FAILPOINT("rewiring.remap_run")) {
        errno = ENOMEM;  // injected transient failure: retry like a real one
        continue;
      }
      void* res = mmap(addr, run * page_size_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_FIXED, fd_, file_off);
      if (res == addr) {
        mapped = true;
        break;
      }
      CPMA_CHECK_MSG(res == MAP_FAILED,
                     "mmap(MAP_FIXED) returned an unexpected address "
                     "during rewiring");
      if (!ErrnoTransient(errno)) break;
    }
    if (!mapped) return false;
    num_remaps_.fetch_add(1, std::memory_order_relaxed);
    i += run;
  }
  return true;
}

bool RewiredRegion::TrySwapRemap(size_t region_offset, size_t buffer_offset,
                                 size_t len) {
  const size_t pages = len / page_size_;
  const size_t r0 = region_offset / page_size_;
  const size_t b0 = buffer_offset / page_size_;
  // Swap the backing tables, then republish both ranges.
  for (size_t i = 0; i < pages; ++i) {
    std::swap(region_backing_[r0 + i], buffer_backing_[b0 + i]);
  }
  if (RemapRuns(region_, r0, pages, region_backing_, r0,
                /*allow_failpoints=*/true) &&
      RemapRuns(buffer_, b0, pages, buffer_backing_, b0,
                /*allow_failpoints=*/true)) {
    return true;
  }
  // A run failed to publish partway through: un-swap the tables and
  // republish both ranges from the restored tables so every virtual page
  // maps its pre-call physical page again. Restoration must not fail —
  // a half-restored range would alias region and buffer pages — so it
  // bypasses failpoints and a persistent kernel failure here is still
  // terminal (with errno in the message via CheckFailed).
  const int saved_errno = errno;
  for (size_t i = 0; i < pages; ++i) {
    std::swap(region_backing_[r0 + i], buffer_backing_[b0 + i]);
  }
  CPMA_CHECK_MSG(RemapRuns(region_, r0, pages, region_backing_, r0,
                           /*allow_failpoints=*/false),
                 "failed to restore region mappings after remap failure");
  CPMA_CHECK_MSG(RemapRuns(buffer_, b0, pages, buffer_backing_, b0,
                           /*allow_failpoints=*/false),
                 "failed to restore buffer mappings after remap failure");
  DegradeToCopy("remap publication failed", saved_errno);
  return false;
}

#endif  // __linux__

void RewiredRegion::DegradeToCopy(const char* reason, int saved_errno) {
  num_remap_failures_.fetch_add(1, std::memory_order_relaxed);
  bool was = degraded_.exchange(true, std::memory_order_relaxed);
  if (!was) {
    std::fprintf(stderr,
                 "cpma: rewiring degraded to copy publishes: %s: errno %d "
                 "(%s)\n",
                 reason, saved_errno, std::strerror(saved_errno));
  }
}

void RewiredRegion::SwapPages(size_t region_offset, size_t buffer_offset,
                              size_t len) {
  CPMA_CHECK(CanSwap(region_offset, buffer_offset, len));

#if defined(__linux__)
  if (fd_ >= 0 && !degraded_.load(std::memory_order_relaxed)) {
    if (CPMA_FAILPOINT("rewiring.remap")) {
      // Whole-publication failure injected before any mapping changed:
      // degrade straight to the copy path below.
      DegradeToCopy("injected rewiring.remap failure", ENOMEM);
    } else {
      // Shared vs the exclusive COW ops (view capture reads the whole
      // backing table; CowPreserveRange rewrites entries): parallel
      // workers swapping disjoint partitions still proceed together.
      cow_mu_.lock_shared();
      const bool swapped = TrySwapRemap(region_offset, buffer_offset, len);
      cow_mu_.unlock_shared();
      if (swapped) return;
    }
    // TrySwapRemap restored the old mappings; fall through to copy.
  }
#endif

  // Fallback: single copy buffer -> region (callers stage data in the
  // buffer; this is the classical two-copies rebalance, second copy
  // here). The destination races with optimistic gate readers, so the
  // copy is tagged (common/tagged.h).
  TaggedCopyWords(region_ + region_offset, buffer_ + buffer_offset, len);
  num_remaps_.fetch_add(1, std::memory_order_relaxed);
  num_fallback_copies_.fetch_add(1, std::memory_order_relaxed);
}

// --------------------------------------------------------------- COW

RewiredRegion::SnapshotView::~SnapshotView() {
  if (owner_ != nullptr) owner_->CloseSnapshotView(this);
}

// First view of this region: size the pin/ref tables. Every file page
// allocated so far is referenced by exactly one backing table (swaps
// exchange table entries, they never orphan a page), so "in tables" is
// uniformly true and pins are zero.
void RewiredRegion::LazyInitCowTables() {
  if (!page_pins_.empty()) return;
  file_pages_ = (region_bytes_ + buffer_bytes_) / page_size_;
  page_pins_.assign(file_pages_, 0);
  page_in_tables_.assign(file_pages_, 1);
}

#if defined(__linux__)

// Fresh file page for a COW copy: recycle a hole-punched page if one is
// free, else grow the fd by one page. Failure (real ENOSPC or the
// rewiring.cow_grow failpoint) is reported, not fatal — the caller
// falls back to heap-copying its range.
bool RewiredRegion::AllocFileTailPage(size_t* out_page) {
  if (!free_file_pages_.empty()) {
    *out_page = free_file_pages_.back();
    free_file_pages_.pop_back();
    return true;
  }
  if (CPMA_FAILPOINT("rewiring.cow_grow")) {
    errno = ENOSPC;
    return false;
  }
  const size_t page = file_pages_;
  if (FtruncateRetry(fd_, static_cast<off_t>((page + 1) * page_size_)) != 0) {
    return false;
  }
  file_pages_ = page + 1;
  page_pins_.push_back(0);
  page_in_tables_.push_back(0);
  *out_page = page;
  return true;
}

// Return a dead file page (no view pin, no table reference) to the free
// list, releasing its physical memory. Punch-hole support is best
// effort: without it the page's memory stays resident until recycled.
void RewiredRegion::ReleaseFilePage(size_t page) {
#if defined(FALLOC_FL_PUNCH_HOLE) && defined(FALLOC_FL_KEEP_SIZE)
  int rc;
  do {
    rc = fallocate(fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                   static_cast<off_t>(page * page_size_),
                   static_cast<off_t>(page_size_));
  } while (rc != 0 && errno == EINTR);
#endif
  free_file_pages_.push_back(page);
}

std::unique_ptr<RewiredRegion::SnapshotView> RewiredRegion::CreateSnapshotView(
    Status* status) {
  if (fd_ < 0) {
    if (status != nullptr) {
      *status = Status::InvalidArgument(
          "snapshot views need the fd-backed rewiring backend (region is in "
          "anonymous fallback mode)");
    }
    return nullptr;
  }
  cow_mu_.lock();
  LazyInitCowTables();
  auto fail = [&](const char* what, int err) {
    cow_mu_.unlock();
    if (status != nullptr) {
      *status = Status::ResourceExhausted(
          std::string("snapshot view mapping failed: ") + what + ": errno " +
          std::to_string(err) + " (" + std::strerror(err) + ")");
    }
    return std::unique_ptr<SnapshotView>();
  };
  if (CPMA_FAILPOINT("rewiring.view_mmap")) return fail("mmap(injected)", ENOMEM);
  // Reserve the range, then overlay read-only file mappings run by run
  // (same coalescing as RemapRuns — a freshly created region is one
  // run; swap history fragments it).
  void* reserve = MmapRetry(nullptr, region_bytes_, PROT_NONE,
                            MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (reserve == MAP_FAILED) return fail("mmap(reserve)", errno);
  char* base = static_cast<char*>(reserve);
  const size_t pages = region_bytes_ / page_size_;
  size_t i = 0;
  while (i < pages) {
    size_t run = 1;
    while (i + run < pages &&
           region_backing_[i + run] == region_backing_[i] + run) {
      ++run;
    }
    void* addr = base + i * page_size_;
    void* res = MmapRetry(addr, run * page_size_, PROT_READ,
                          MAP_SHARED | MAP_FIXED, fd_,
                          static_cast<off_t>(region_backing_[i] * page_size_));
    if (res != addr) {
      const int err = errno;
      munmap(base, region_bytes_);
      return fail("mmap(view run)", err);
    }
    i += run;
  }
  auto v = std::unique_ptr<SnapshotView>(new SnapshotView());
  v->owner_ = this;
  v->base_ = base;
  v->bytes_ = region_bytes_;
  v->backing_ = region_backing_;
  for (size_t p : v->backing_) ++page_pins_[p];
  views_created_.fetch_add(1, std::memory_order_relaxed);
  views_open_.fetch_add(1, std::memory_order_relaxed);
  cow_mu_.unlock();
  if (status != nullptr) *status = Status::OK();
  return v;
}

void RewiredRegion::CloseSnapshotView(SnapshotView* view) {
  cow_mu_.lock();
  munmap(view->base_, view->bytes_);
  for (size_t p : view->backing_) {
    if (--page_pins_[p] == 0 && page_in_tables_[p] == 0) {
      // Alive only for this view: release the superseded page.
      ReleaseFilePage(p);
      cow_retained_pages_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  views_open_.fetch_sub(1, std::memory_order_relaxed);
  cow_mu_.unlock();
  view->owner_ = nullptr;
}

RewiredRegion::CowResult RewiredRegion::CowPreserveRange(
    const SnapshotView& view, size_t offset, size_t len) {
  CPMA_CHECK(view.owner_ == this && offset + len <= region_bytes_);
  // Page-aligned interior; the partial-page edges stay the caller's
  // problem (they may share pages with ranges owned by other writers,
  // which this view must not freeze mid-write).
  const size_t lo = (offset + page_size_ - 1) / page_size_;
  const size_t hi = (offset + len) / page_size_;
  if (lo >= hi) return CowResult::kFrozen;  // no whole page inside
  cow_mu_.lock();
  // Staleness test: the view's image of a page equals live content only
  // while the region still maps the file page captured at view
  // creation. A swap publish that rewired this range since capture (a
  // writer that raced the capture and skipped preservation) broke that;
  // the caller must copy its bytes instead.
  for (size_t p = lo; p < hi; ++p) {
    if (region_backing_[p] != view.backing_[p]) {
      cow_mu_.unlock();
      return CowResult::kStale;
    }
  }
  for (size_t p = lo; p < hi; ++p) {
    const size_t old_page = region_backing_[p];
    if (page_pins_[old_page] == 0) continue;  // already exclusive
    size_t fresh = 0;
    char* vaddr = region_ + p * page_size_;
    // Copy current content to the fresh page through the fd, then remap
    // the live region page onto it. The old page keeps the view's pin
    // and leaves the tables: frozen until the last view closes.
    if (!AllocFileTailPage(&fresh) ||
        !PwriteFully(fd_, vaddr, page_size_, fresh * page_size_).ok()) {
      cow_mu_.unlock();
      return CowResult::kUnavailable;  // pages frozen so far stay valid
    }
    void* res = MmapRetry(vaddr, page_size_, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_FIXED, fd_,
                          static_cast<off_t>(fresh * page_size_));
    if (res != vaddr) {
      CPMA_CHECK_MSG(res == MAP_FAILED,
                     "mmap(MAP_FIXED) returned an unexpected address during "
                     "COW preserve");
      ReleaseFilePage(fresh);
      cow_mu_.unlock();
      return CowResult::kUnavailable;
    }
    region_backing_[p] = fresh;
    page_in_tables_[old_page] = 0;
    page_in_tables_[fresh] = 1;
    cow_page_copies_.fetch_add(1, std::memory_order_relaxed);
    cow_retained_pages_.fetch_add(1, std::memory_order_relaxed);
  }
  cow_mu_.unlock();
  return CowResult::kFrozen;
}

#else  // !__linux__

bool RewiredRegion::AllocFileTailPage(size_t*) { return false; }
void RewiredRegion::ReleaseFilePage(size_t) {}

std::unique_ptr<RewiredRegion::SnapshotView> RewiredRegion::CreateSnapshotView(
    Status* status) {
  if (status != nullptr) {
    *status = Status::InvalidArgument("snapshot views require linux");
  }
  return nullptr;
}

void RewiredRegion::CloseSnapshotView(SnapshotView* view) {
  view->owner_ = nullptr;
}

RewiredRegion::CowResult RewiredRegion::CowPreserveRange(const SnapshotView&,
                                                         size_t, size_t) {
  return CowResult::kUnavailable;
}

#endif  // __linux__

size_t RewiredRegion::backing_page_bytes() const {
#if defined(__linux__)
  // Walk /proc/self/smaps to the mapping holding the live region and
  // report 2 MiB iff the kernel has PMD-sized pages faulted in for it
  // (memfd maps show ShmemPmdMapped/FilePmdMapped, the plain-new
  // fallback AnonHugePages). Reading smaps is microseconds — callers
  // are bench reporters, not hot paths.
  std::FILE* f = std::fopen("/proc/self/smaps", "r");
  if (f == nullptr) return page_size_;
  const unsigned long target = reinterpret_cast<unsigned long>(region_);
  char line[256];
  bool in_mapping = false;
  size_t result = page_size_;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long lo = 0, hi = 0;
    if (std::sscanf(line, "%lx-%lx ", &lo, &hi) == 2) {
      if (in_mapping && target < lo) break;  // past our mapping
      in_mapping = target >= lo && target < hi;
      continue;
    }
    if (!in_mapping) continue;
    size_t kb = 0;
    if (std::sscanf(line, "AnonHugePages: %zu", &kb) == 1 ||
        std::sscanf(line, "ShmemPmdMapped: %zu", &kb) == 1 ||
        std::sscanf(line, "FilePmdMapped: %zu", &kb) == 1) {
      if (kb > 0) {
        result = 2u * 1024 * 1024;
        break;
      }
    }
  }
  std::fclose(f);
  return result;
#else
  return page_size_;
#endif
}

}  // namespace cpma
