// Memory rewiring (Schuhknecht et al., "RUMA has it", PVLDB'16; paper §2).
//
// A RewiredRegion is a contiguous virtual address range whose pages are
// individually backed by pages of an in-memory file (memfd). A second
// virtual range — the buffer — is backed by spare pages of the same file.
// Rebalance workers copy elements into the buffer once, then SwapPages()
// exchanges the *mappings*, so the copied data appears in the array
// without a second copy, and the array's old physical pages become the
// next buffer (exactly the protocol in the paper).
//
// When memfd/mmap are unavailable (restricted sandbox), the region
// degrades to plain allocation and SwapPages() performs the second copy;
// rewiring_enabled() reports which mode is active so benchmarks can
// label results.

// ISSUE 9 adds copy-on-write snapshot views on top of the same fd: a
// SnapshotView is a second, read-only mapping of the file pages that
// back the region at capture time (O(mapped runs) mmap calls, zero
// copy). The view pins those file pages; writers that need to mutate a
// pinned page first re-back the live region with a fresh file page
// carrying a copy of the current content (CowPreserveRange), so the
// view's image never changes. Superseded pages stay allocated until the
// last view pinning them closes, then their file extent is hole-punched
// and recycled.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/latches.h"
#include "common/status.h"

namespace cpma {

class RewiredRegion {
 public:
  /// Create a region of `region_bytes` plus a buffer of `buffer_bytes`;
  /// both are rounded up to whole pages. `want_huge_pages` requests
  /// transparent huge pages via madvise (best effort).
  ///
  /// Degradation ladder: memfd + mmap first; any syscall failure there
  /// (or CPMA_FORCE_NO_REWIRE=1 in the environment, or the
  /// rewiring.{memfd,ftruncate,mmap} failpoints) falls back to the
  /// anonymous plain-allocation backend where SwapPages copies. Only
  /// when even that allocation fails does Create return nullptr, with
  /// `status` (when non-null) set to ResourceExhausted.
  static std::unique_ptr<RewiredRegion> Create(size_t region_bytes,
                                               size_t buffer_bytes,
                                               bool want_huge_pages = true,
                                               Status* status = nullptr);

  ~RewiredRegion();

  RewiredRegion(const RewiredRegion&) = delete;
  RewiredRegion& operator=(const RewiredRegion&) = delete;

  char* data() { return region_; }
  const char* data() const { return region_; }
  char* buffer() { return buffer_; }

  size_t region_bytes() const { return region_bytes_; }
  size_t buffer_bytes() const { return buffer_bytes_; }
  size_t page_size() const { return page_size_; }

  /// True when real mmap-based rewiring is active (as opposed to the
  /// memcpy fallback) and the region has not degraded to copy publishes
  /// after a remap failure.
  bool rewiring_enabled() const {
    return fd_ >= 0 && !degraded_.load(std::memory_order_relaxed);
  }

  /// True once a remap publication failed and the region permanently
  /// switched to the tagged-copy publish path (memory stays valid; only
  /// the zero-copy exchange is lost). Sticky.
  bool degraded_to_copy() const {
    return degraded_.load(std::memory_order_relaxed);
  }

  /// True iff the given byte range can be swapped by remapping (both
  /// offsets and the length are page aligned and in range).
  bool CanSwap(size_t region_offset, size_t buffer_offset, size_t len) const;

  /// Exchange the backing of region[region_offset, +len) with
  /// buffer[buffer_offset, +len). Page aligned ranges only (CanSwap).
  /// Postcondition: the region range contains what the buffer range
  /// contained. In rewired mode the exchange is bidirectional (old array
  /// pages become buffer); in fallback mode the buffer content is copied
  /// and the buffer range keeps a stale copy.
  void SwapPages(size_t region_offset, size_t buffer_offset, size_t len);

  /// Number of mmap invocations performed so far (observability for
  /// tests and the micro benchmark).
  uint64_t num_remaps() const {
    return num_remaps_.load(std::memory_order_relaxed);
  }

  /// Number of SwapPages calls that degraded to the memcpy fallback
  /// (no memfd / restricted sandbox). Together with num_remaps this
  /// tells a bench run which publish mechanism it actually measured.
  uint64_t num_fallback_copies() const {
    return num_fallback_copies_.load(std::memory_order_relaxed);
  }

  /// Remap publications that failed (real mmap error or injected fault)
  /// and were recovered by restoring the old mappings and publishing via
  /// the tagged-copy path instead.
  uint64_t num_remap_failures() const {
    return num_remap_failures_.load(std::memory_order_relaxed);
  }

  /// Mapping granularity (the unit SwapPages exchanges) — sysconf page
  /// size. See backing_page_bytes() for the physical page size.
  size_t page_bytes() const { return page_size_; }

  /// Physical page size actually backing the live region *right now*:
  /// 2 MiB when the kernel honoured MADV_HUGEPAGE for this mapping
  /// (probed via /proc/self/smaps, so the answer reflects faulted-in
  /// state, not just the request), else the 4 KiB base page size.
  /// ROADMAP: benches report this so huge-page A/Bs are labelled with
  /// what a run really used instead of what it asked for.
  size_t backing_page_bytes() const;

  // ----------------------------------------------------- COW snapshots

  /// Read-only point-in-time mapping of the region's backing pages.
  /// The image of a byte is guaranteed frozen (equal to the region
  /// content at the last successful CowPreserveRange covering it) only
  /// for ranges a caller explicitly preserved; other pages are shared
  /// with the live region and mutate with it. Views must be destroyed
  /// before their RewiredRegion (the region's destructor checks).
  class SnapshotView {
   public:
    ~SnapshotView();
    SnapshotView(const SnapshotView&) = delete;
    SnapshotView& operator=(const SnapshotView&) = delete;

    const char* data() const { return base_; }
    size_t bytes() const { return bytes_; }

   private:
    friend class RewiredRegion;
    SnapshotView() = default;

    RewiredRegion* owner_ = nullptr;
    char* base_ = nullptr;
    size_t bytes_ = 0;
    // File page backing each view page, captured at creation. The live
    // region's image of page i equals the view's iff region_backing_[i]
    // still matches — the staleness test CowPreserveRange applies.
    std::vector<size_t> backing_;
  };

  /// Capture a view of the whole region. O(mapped runs) mmaps, no data
  /// copy. Returns nullptr with `status` set when the backend cannot
  /// support views (anonymous fallback mode) or mapping fails
  /// (including the rewiring.view_mmap failpoint) — callers degrade to
  /// heap copies.
  std::unique_ptr<SnapshotView> CreateSnapshotView(Status* status = nullptr);

  enum class CowResult {
    kFrozen,       // view image of the page-aligned interior is now stable
    kStale,        // region was re-backed since capture; view image is stale
    kUnavailable,  // backend/allocation cannot freeze; nothing guaranteed
  };

  /// Freeze the view's image of the page-aligned interior of
  /// [offset, offset+len): every file page still shared between the
  /// live region and the view is copied to a fresh file page and the
  /// region is remapped onto the copy, so subsequent region writes no
  /// longer reach the view. Partial-page edges are NOT frozen — callers
  /// preserve those few bytes themselves (they may share pages with
  /// neighbours they don't own). On kStale/kUnavailable the caller must
  /// fall back to copying the range; already-frozen pages stay valid.
  CowResult CowPreserveRange(const SnapshotView& view, size_t offset,
                             size_t len);

  /// COW observability: views ever created / currently open, pages
  /// copied to preserve a view, and bytes of file pages alive only
  /// because a view pins them (the snapshot memory overhead).
  uint64_t num_snapshot_views() const {
    return views_created_.load(std::memory_order_relaxed);
  }
  uint64_t snapshot_views_open() const {
    return views_open_.load(std::memory_order_relaxed);
  }
  uint64_t cow_page_copies() const {
    return cow_page_copies_.load(std::memory_order_relaxed);
  }
  uint64_t cow_retained_page_bytes() const {
    return cow_retained_pages_.load(std::memory_order_relaxed) * page_size_;
  }

 private:
  RewiredRegion() = default;

  // Remap-publication internals (rewired mode only). TrySwapRemap swaps
  // the backing tables and republishes both ranges with mmap(MAP_FIXED);
  // on any per-run failure it restores the pre-swap tables and mappings
  // and returns false so SwapPages can publish by tagged copy instead.
  bool TrySwapRemap(size_t region_offset, size_t buffer_offset, size_t len);
  bool RemapRuns(char* base, size_t first_page, size_t pages,
                 const std::vector<size_t>& backing, size_t lo,
                 bool allow_failpoints);
  void DegradeToCopy(const char* reason, int saved_errno);

  // COW internals; all called with cow_mu_ held exclusive.
  void LazyInitCowTables();
  bool AllocFileTailPage(size_t* out_page);
  void ReleaseFilePage(size_t page);
  void CloseSnapshotView(SnapshotView* view);

  char* region_ = nullptr;
  char* buffer_ = nullptr;
  size_t region_bytes_ = 0;
  size_t buffer_bytes_ = 0;
  size_t page_size_ = 4096;
  int fd_ = -1;  // memfd; -1 => fallback mode

  // Physical (file) page index backing each virtual page.
  std::vector<size_t> region_backing_;
  std::vector<size_t> buffer_backing_;

  // Atomic: parallel rebalance workers swap disjoint partitions.
  std::atomic<uint64_t> num_remaps_{0};
  std::atomic<uint64_t> num_fallback_copies_{0};
  std::atomic<uint64_t> num_remap_failures_{0};

  // Set once a remap publication failed; all later SwapPages publish by
  // copy. Workers race to set it (relaxed is fine — it only ever goes
  // false -> true and the copy path is always correct).
  std::atomic<bool> degraded_{false};

  // --- COW snapshot state. The backing tables are read by parallel
  // rebalance workers on disjoint ranges (no sync needed among them) but
  // whole-table readers/writers appeared with views: swap publishes hold
  // cow_mu_ shared, view create/close and CowPreserveRange hold it
  // exclusive. Uncontended shared acquire is one CAS — noise next to the
  // mmap calls it brackets.
  mutable FairSharedMutex cow_mu_;
  size_t file_pages_ = 0;                // current fd length, pages
  std::vector<uint32_t> page_pins_;      // per file page: # open views mapping it
  std::vector<uint8_t> page_in_tables_;  // 1 iff in region_/buffer_backing_
  std::vector<size_t> free_file_pages_;  // allocated, unreferenced, hole-punched
  std::atomic<uint64_t> views_created_{0};
  std::atomic<uint64_t> views_open_{0};
  std::atomic<uint64_t> cow_page_copies_{0};
  std::atomic<uint64_t> cow_retained_pages_{0};
};

}  // namespace cpma
