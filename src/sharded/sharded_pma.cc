#include "sharded/sharded_pma.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>

#include "common/pin.h"
#include "common/timer.h"
#include "concurrent/event_ring.h"

namespace cpma {

namespace {

std::atomic<uint64_t> g_sharded_instance_ids{1};

/// splitmix64 finalizer: full-avalanche mix so dense or strided key
/// ranges spread evenly over the power-of-two shard mask.
inline uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Strict env parse for a non-negative integer knob, same contract as
/// CPMA_OPTIMISTIC_RETRIES et al. (concurrent_pma.cc): a typo warns on
/// stderr and leaves `*out` untouched instead of silently becoming 0.
void ParseEnvU64(const char* name, uint64_t* out) {
  const char* env = std::getenv(name);
  if (env == nullptr) return;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end != env && *end == '\0' && errno == 0) {
    *out = static_cast<uint64_t>(v);
  } else if (*env != '\0') {
    std::fprintf(stderr,
                 "cpma: ignoring invalid %s=%s (want a non-negative "
                 "integer); using %llu\n",
                 name, env, static_cast<unsigned long long>(*out));
  }
}

}  // namespace

ShardedPMA::ShardedPMA(const ShardedConfig& config)
    : cfg_(config),
      instance_id_(
          g_sharded_instance_ids.fetch_add(1, std::memory_order_relaxed)) {
  uint64_t num_shards = cfg_.num_shards;
  ParseEnvU64("CPMA_SHARDS", &num_shards);
  CPMA_CHECK_MSG(num_shards >= 1, "num_shards must be >= 1");
  if (cfg_.partition == ShardedConfig::Partition::kHash) {
    CPMA_CHECK_MSG((num_shards & (num_shards - 1)) == 0,
                   "hash partitioning needs a power-of-two shard count");
  }

  uint64_t coalesce = cfg_.coalesce_ops;
  ParseEnvU64("CPMA_COALESCE_OPS", &coalesce);
  coalesce_ops_ = static_cast<size_t>(coalesce);
  uint64_t age = static_cast<uint64_t>(
      cfg_.coalesce_age_ms < 0 ? 0 : cfg_.coalesce_age_ms);
  ParseEnvU64("CPMA_COALESCE_AGE_MS", &age);
  coalesce_age_ms_ = static_cast<int64_t>(age);

  // Range splitters: user-provided boundaries or a uniform split of the
  // key domain [kKeyMin, kKeyMax]. splitters_[i] is the LOWEST key of
  // shard i+1, so ShardOf is one upper_bound.
  if (cfg_.partition == ShardedConfig::Partition::kRange &&
      num_shards > 1) {
    if (!cfg_.splitters.empty()) {
      CPMA_CHECK_MSG(cfg_.splitters.size() == num_shards - 1,
                     "need exactly num_shards - 1 splitters");
      splitters_ = cfg_.splitters;
      for (size_t i = 0; i < splitters_.size(); ++i) {
        CPMA_CHECK_MSG(splitters_[i] > kKeyMin && splitters_[i] <= kKeyMax,
                       "splitter outside the key domain");
        CPMA_CHECK_MSG(i == 0 || splitters_[i - 1] < splitters_[i],
                       "splitters must be strictly ascending");
      }
    } else {
      const uint64_t step =
          (static_cast<uint64_t>(kKeyMax) + 1) / num_shards;
      splitters_.reserve(num_shards - 1);
      for (uint64_t i = 1; i < num_shards; ++i) {
        splitters_.push_back(static_cast<Key>(i * step));
      }
    }
  }

  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    ConcurrentConfig sc = cfg_.shard;
    if (cfg_.pin_workers) {
      // One home core per shard (pin-order slot i): the shard's master
      // and workers all share it, so N shards' background machinery
      // spreads over N cores instead of migrating onto each other.
      const int cpu = PinCpuForSlot(static_cast<unsigned>(i));
      sc.worker_cpus = cpu >= 0 ? std::vector<int>{cpu}
                                : std::vector<int>{};
    }
    shards_.push_back(std::make_unique<ConcurrentPMA>(sc));
    // Capture background errors (fired from the shard's rebalancer
    // master thread) sticky at the fleet level: an ager-triggered flush
    // or a background resize failure has no foreground caller to return
    // a Status to, so without this the error would be visible only to
    // whoever polls that individual shard.
    shards_.back()->SetErrorCallback([this](const Status& st) {
      {
        std::lock_guard<std::mutex> lk(bg_err_mu_);
        bg_error_ = st;
      }
      stat_background_errors_.fetch_add(1, std::memory_order_relaxed);
    });
  }

  if (coalesce_ops_ > 0) {
    slots_.reserve(kNumSlots);
    for (size_t s = 0; s < kNumSlots; ++s) {
      auto slot = std::make_unique<ProducerSlot>();
      slot->per_shard.resize(num_shards);
      slots_.push_back(std::move(slot));
    }
    if (coalesce_age_ms_ > 0) {
      ager_ = std::thread([this] { AgeFlusherLoop(); });
    }
  }
}

ShardedPMA::~ShardedPMA() {
  if (ager_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(ager_mu_);
      ager_stop_ = true;
    }
    ager_cv_.notify_all();
    ager_.join();
  }
  Flush();
  // shards_ destruction flushes + stops each shard's rebalancer.
}

// ------------------------------------------------------------------ router

size_t ShardedPMA::ShardOf(Key key) const {
  if (shards_.size() == 1) return 0;
  if (cfg_.partition == ShardedConfig::Partition::kHash) {
    return static_cast<size_t>(MixKey(key) &
                               (static_cast<uint64_t>(shards_.size()) - 1));
  }
  return static_cast<size_t>(
      std::upper_bound(splitters_.begin(), splitters_.end(), key) -
      splitters_.begin());
}

// ------------------------------------------------------------- front door

void ShardedPMA::Insert(Key key, Value value) {
  CPMA_CHECK_MSG(key <= kKeyMax, "key out of domain (UINT64_MAX reserved)");
  Enqueue(GateOp{GateOp::Type::kInsert, key, value});
}

void ShardedPMA::Remove(Key key) {
  CPMA_CHECK_MSG(key <= kKeyMax, "key out of domain (UINT64_MAX reserved)");
  Enqueue(GateOp{GateOp::Type::kRemove, key, 0});
}

void ShardedPMA::Enqueue(GateOp op) {
  const size_t sh = ShardOf(op.key);
  if (coalesce_ops_ == 0) {
    // Direct mode: a one-op "batch" is exactly an Insert/Remove on the
    // shard (single stamp, one dispatch).
    stat_direct_ops_.fetch_add(1, std::memory_order_relaxed);
    shards_[sh]->UpdateBatch(&op, 1);
    return;
  }
  ProducerSlot* slot = SlotForThisThread();
  bool flush_now = false;
  {
    std::lock_guard<std::mutex> lk(slot->append_mu);
    ShardBuf& buf = slot->per_shard[sh];
    if (buf.ops.empty()) buf.oldest_ms = NowMillis();
    buf.ops.push_back(op);
    flush_now = buf.ops.size() >= coalesce_ops_;
  }
  if (flush_now) FlushSlotShard(slot, sh, /*from_ager=*/false);
}

void ShardedPMA::FlushSlotShard(ProducerSlot* slot, size_t shard_idx,
                                bool from_ager) {
  // flush_mu is held across take AND dispatch: the stamp block of an
  // earlier take must be reserved and dispatched before a later take's
  // (header comment; this is the per-key FIFO argument).
  std::lock_guard<std::mutex> fl(slot->flush_mu);
  std::vector<GateOp> run;
  {
    std::lock_guard<std::mutex> al(slot->append_mu);
    run.swap(slot->per_shard[shard_idx].ops);
  }
  if (run.empty()) return;
  {
    TailSpan tail_span(TailEvent::kCoalesceFlush);
    shards_[shard_idx]->UpdateBatch(run.data(), run.size());
  }
  stat_coalesced_flushes_.fetch_add(1, std::memory_order_relaxed);
  stat_coalesced_ops_.fetch_add(run.size(), std::memory_order_relaxed);
  if (from_ager) {
    stat_age_flushes_.fetch_add(1, std::memory_order_relaxed);
    // The ager has no caller to hand an error to: surface a shard that
    // is in a (possibly transient) error state right after its flush.
    Status st = shards_[shard_idx]->last_error();
    if (!st.ok()) {
      stat_ager_error_flushes_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lk(bg_err_mu_);
      bg_error_ = st;
    }
  }
}

ShardedPMA::ProducerSlot* ShardedPMA::SlotForThisThread() const {
  // Cache keyed by a process-unique instance id (not `this`): a new
  // instance reusing a destroyed one's address must not inherit its
  // slot assignments.
  static thread_local std::unordered_map<uint64_t, size_t> cache;
  size_t idx;
  auto it = cache.find(instance_id_);
  if (it != cache.end()) {
    idx = it->second;
  } else {
    idx = next_slot_.fetch_add(1, std::memory_order_relaxed) % kNumSlots;
    cache.emplace(instance_id_, idx);
  }
  return slots_[idx].get();
}

void ShardedPMA::AgeFlusherLoop() {
  const auto period = std::chrono::milliseconds(coalesce_age_ms_);
  std::unique_lock<std::mutex> lk(ager_mu_);
  while (!ager_stop_) {
    ager_cv_.wait_for(lk, period, [this] { return ager_stop_; });
    if (ager_stop_) return;
    lk.unlock();
    const int64_t now = NowMillis();
    for (auto& slot : slots_) {
      for (size_t sh = 0; sh < shards_.size(); ++sh) {
        bool due = false;
        {
          std::lock_guard<std::mutex> al(slot->append_mu);
          const ShardBuf& buf = slot->per_shard[sh];
          due = !buf.ops.empty() &&
                now - buf.oldest_ms >= coalesce_age_ms_;
        }
        if (due) FlushSlotShard(slot.get(), sh, /*from_ager=*/true);
      }
    }
    lk.lock();
  }
}

// ------------------------------------------------------------------- reads

bool ShardedPMA::Find(Key key, Value* value) const {
  // Staged (coalesced) ops are invisible until flushed — the same
  // asynchrony the combining queues already have; Flush() restores
  // read-your-writes.
  return shards_[ShardOf(key)]->Find(key, value);
}

uint64_t ShardedPMA::SumAll() const {
  uint64_t sum = 0;
  for (const auto& s : shards_) sum += s->SumAll();
  return sum;
}

void ShardedPMA::Scan(Key min, Key max, const ScanCallback& cb) const {
  if (min > max) return;
  if (cfg_.partition == ShardedConfig::Partition::kRange ||
      shards_.size() == 1) {
    // Shards hold disjoint ascending key intervals: the ordered global
    // scan is the concatenation of per-shard scans, touching only the
    // shards the range intersects.
    bool stop = false;
    const size_t first = ShardOf(min);
    const size_t last = ShardOf(max);
    if (first == last) {
      // Single-shard span (always true for s=1): no early-stop state to
      // carry across shards, so skip the wrapper and its extra
      // indirect call per emitted item — this is what keeps the s=1
      // router overhead within noise of a bare ConcurrentPMA.
      shards_[first]->Scan(min, max, cb);
      return;
    }
    for (size_t i = first; i <= last && !stop; ++i) {
      shards_[i]->Scan(min, max, [&](Key k, Value v) {
        if (!cb(k, v)) {
          stop = true;
          return false;
        }
        return true;
      });
    }
    return;
  }

  // Hash partitioning: every shard holds an arbitrary slice of the
  // range, so the ordered scan is a k-way merge of per-shard pull
  // cursors (ConcurrentPMA::ScanCursor). A key lives in exactly one
  // shard, so the merge never has to break ties.
  struct Stream {
    std::unique_ptr<ConcurrentPMA::ScanCursor> cur;
    std::vector<Item> chunk;
    size_t pos = 0;
  };
  std::vector<Stream> streams(shards_.size());
  using HeapEntry = std::pair<Key, size_t>;  // (next key, stream index)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (size_t i = 0; i < shards_.size(); ++i) {
    streams[i].cur = std::make_unique<ConcurrentPMA::ScanCursor>(
        *shards_[i], min, max);
    if (streams[i].cur->NextChunk(&streams[i].chunk)) {
      heap.emplace(streams[i].chunk[0].key, i);
    }
  }
  while (!heap.empty()) {
    const size_t i = heap.top().second;
    heap.pop();
    Stream& st = streams[i];
    const Item& it = st.chunk[st.pos];
    if (!cb(it.key, it.value)) return;
    ++st.pos;
    if (st.pos == st.chunk.size()) {
      st.pos = 0;
      if (st.cur->NextChunk(&st.chunk)) heap.emplace(st.chunk[0].key, i);
    } else {
      heap.emplace(st.chunk[st.pos].key, i);
    }
  }
}

size_t ShardedPMA::Size() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s->Size();
  return n;
}

void ShardedPMA::Flush() {
  // Drain the front door first (stamps the staged runs), then wait for
  // every shard's queues and rebalancer batches.
  for (auto& slot : slots_) {
    for (size_t sh = 0; sh < shards_.size(); ++sh) {
      FlushSlotShard(slot.get(), sh, /*from_ager=*/false);
    }
  }
  for (auto& s : shards_) s->Flush();
}

std::string ShardedPMA::Name() const {
  std::string name = "ShardedPMA(";
  name += cfg_.partition == ShardedConfig::Partition::kHash ? "hash"
                                                            : "range";
  name += ",s=" + std::to_string(shards_.size());
  if (coalesce_ops_ > 0) {
    name += ",coalesce=" + std::to_string(coalesce_ops_) + "/" +
            std::to_string(coalesce_age_ms_) + "ms";
  }
  name += ") over " + shards_[0]->Name();
  return name;
}

ShardedPMA::Stats ShardedPMA::GetStats() const {
  Stats st;
  for (const auto& s : shards_) {
    st.local_rebalances += s->num_local_rebalances();
    st.global_rebalances += s->num_global_rebalances();
    st.resizes += s->num_resizes();
    st.queued_ops += s->num_queued_ops();
    st.batches += s->num_batches();
    st.read_fallbacks += s->num_read_fallbacks();
    st.optimistic_gate_reads += s->num_optimistic_gate_reads();
    st.reroutes += s->num_reroutes();
    st.rebalance_retries += s->num_rebalance_retries();
    st.watchdog_trips += s->num_watchdog_trips();
    if (s->fallback_backend_active()) ++st.degraded_shards;
    st.snapshots_open += s->snapshots_open();
    st.snapshots_taken += s->num_snapshots_taken();
    st.cow_retained_bytes += s->cow_pages_retained_bytes();
    const EpochGCStats e = s->ebr_stats();
    st.ebr.pending_count += e.pending_count;
    st.ebr.pending_bytes += e.pending_bytes;
    st.ebr.retired_count += e.retired_count;
    st.ebr.retired_bytes += e.retired_bytes;
    st.ebr.retired_bytes_hwm += e.retired_bytes_hwm;
    st.ebr.freed_count += e.freed_count;
    st.ebr.freed_bytes += e.freed_bytes;
    st.ebr.epoch_advances += e.epoch_advances;
    st.ebr.collections += e.collections;
    st.ebr.global_epoch = std::max(st.ebr.global_epoch, e.global_epoch);
  }
  st.coalesced_flushes =
      stat_coalesced_flushes_.load(std::memory_order_relaxed);
  st.coalesced_ops = stat_coalesced_ops_.load(std::memory_order_relaxed);
  st.age_flushes = stat_age_flushes_.load(std::memory_order_relaxed);
  st.direct_ops = stat_direct_ops_.load(std::memory_order_relaxed);
  st.background_errors =
      stat_background_errors_.load(std::memory_order_relaxed);
  st.ager_error_flushes =
      stat_ager_error_flushes_.load(std::memory_order_relaxed);
  return st;
}

Status ShardedPMA::last_error() const {
  {
    std::lock_guard<std::mutex> lk(bg_err_mu_);
    if (!bg_error_.ok()) return bg_error_;
  }
  for (const auto& s : shards_) {
    Status st = s->last_error();
    if (!st.ok()) return st;
  }
  return Status::OK();
}

// --------------------------------------------- COW snapshots (ISSUE 9)

std::unique_ptr<ShardedSnapshot> ShardedPMA::Snapshot() {
  // Drain the front door: every op staged before this point reaches its
  // shard's machinery, so the per-shard captures below sit at one
  // front-door stamp frontier.
  for (auto& slot : slots_) {
    for (size_t sh = 0; sh < shards_.size(); ++sh) {
      FlushSlotShard(slot.get(), sh, /*from_ager=*/false);
    }
  }
  // And the shards' combining queues: UpdateBatch hand-offs are async,
  // so without this wait an op staged before Snapshot() could still sit
  // in a gate queue at capture and miss the cut. After the two-phase
  // drain the frontier is exact: staged-before-Snapshot() ops are all
  // in, racing concurrent ops land on one side of each gate's capture
  // point like any other post-capture mutation.
  for (auto& shard : shards_) shard->Flush();
  std::unique_ptr<ShardedSnapshot> s(new ShardedSnapshot());
  s->pma_ = this;
  s->snaps_.reserve(shards_.size());
  for (auto& shard : shards_) s->snaps_.push_back(shard->Snapshot());
  return s;
}

uint64_t ShardedPMA::snapshots_open() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->snapshots_open();
  return n;
}

bool ShardedSnapshot::Find(Key key, Value* value) const {
  return snaps_[pma_->ShardOf(key)]->Find(key, value);
}

uint64_t ShardedSnapshot::SumAll() const {
  uint64_t sum = 0;
  for (const auto& s : snaps_) sum += s->SumAll();
  return sum;
}

uint64_t ShardedSnapshot::CountItems() const {
  uint64_t n = 0;
  for (const auto& s : snaps_) n += s->CountItems();
  return n;
}

void ShardedSnapshot::Scan(Key min, Key max,
                           const ScanCallback& cb) const {
  if (min > max) return;
  if (pma_->config().partition == ShardedConfig::Partition::kRange ||
      snaps_.size() == 1) {
    // Disjoint ascending intervals: ordered scan by concatenation.
    bool stop = false;
    const size_t first = pma_->ShardOf(min);
    const size_t last = pma_->ShardOf(max);
    for (size_t i = first; i <= last && !stop; ++i) {
      snaps_[i]->Scan(min, max, [&](Key k, Value v) {
        if (!cb(k, v)) {
          stop = true;
          return false;
        }
        return true;
      });
    }
    return;
  }
  // Hash partitioning: stage each shard's frozen slice of the range,
  // then k-way merge. Frozen images don't support pull cursors, so the
  // merge pays one staging pass per shard — snapshots are read-mostly
  // maintenance surfaces (checkpoints, audits), not scan hot paths.
  std::vector<std::vector<Item>> staged(snaps_.size());
  for (size_t i = 0; i < snaps_.size(); ++i) {
    auto& out = staged[i];
    snaps_[i]->Scan(min, max, [&out](Key k, Value v) {
      out.push_back(Item{k, v});
      return true;
    });
  }
  using HeapEntry = std::pair<Key, size_t>;  // (next key, stream index)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  std::vector<size_t> pos(snaps_.size(), 0);
  for (size_t i = 0; i < staged.size(); ++i) {
    if (!staged[i].empty()) heap.emplace(staged[i][0].key, i);
  }
  while (!heap.empty()) {
    const size_t i = heap.top().second;
    heap.pop();
    const Item& it = staged[i][pos[i]];
    if (!cb(it.key, it.value)) return;
    if (++pos[i] < staged[i].size()) {
      heap.emplace(staged[i][pos[i]].key, i);
    }
  }
}

}  // namespace cpma
