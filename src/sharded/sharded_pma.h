// ShardedPMA (ISSUE 8) — a key-space-partitioned front end over N
// independent ConcurrentPMA shards, attacking the two structural
// scaling ceilings a single instance keeps no matter how good its
// internals are:
//
//   * one rebalancer master: every global rebalance and resize of the
//     whole key space funnels through a single master thread (§3.3);
//     with N shards there are N masters, each responsible for 1/N of
//     the key space, so background reorganization scales with cores;
//   * global snapshot swaps: a resize invalidates every gate of the
//     instance and restarts every in-flight client; a shard's resize
//     only perturbs clients whose keys route there.
//
// Three cooperating pieces:
//
//   router    Key -> shard. Range partitioning (default) splits the key
//             domain at S-1 splitter keys, so shard i holds exactly the
//             keys in [splitter[i-1], splitter[i]) and a cross-shard
//             scan is the plain concatenation of per-shard scans —
//             global order for free. Hash partitioning (config
//             alternative, power-of-two S) routes by a splitmix64 mix
//             of the key for insert-balance under skewed key ranges;
//             ordered scans then pay a k-way merge of per-shard
//             cursors (ConcurrentPMA::ScanCursor).
//
//   coalescing front door   With coalesce_ops > 0, Insert/Remove stage
//             ops in per-producer, per-shard buffers and hand them to
//             the owning shard in runs via ConcurrentPMA::UpdateBatch —
//             one enqueue-stamp reservation and one index descent
//             amortized over the run instead of per op. Buffers flush
//             when they reach coalesce_ops, when they age past
//             coalesce_age_ms (background age flusher), and on Flush().
//             Per-key, per-producer FIFO (ISSUE 5) is preserved: a key
//             always routes to one shard, a producer's ops land in one
//             slot in issue order, and every flush of a slot+shard pair
//             holds that pair's flush lock across take+stamp+dispatch,
//             so runs reach UpdateBatch in buffer order and the block
//             stamp reservation reproduces issue order exactly.
//             coalesce_ops = 0 (default) bypasses staging entirely —
//             ops route straight to the shard, read-your-writes intact.
//
//   affinity  With pin_workers, shard i's rebalancer master and workers
//             pin to the i-th slot of the topology-aware pin order
//             (common/pin.h): each shard's background machinery gets a
//             home physical core instead of N masters migrating onto
//             each other.
//
// Consistency: exactly the per-shard ConcurrentPMA contract, applied
// per shard. Point ops route to one shard and keep its full guarantees.
// Cross-shard Scan/SumAll are not atomic across shards — precisely as a
// single instance's multi-gate scan is not atomic across gates — and
// staged (coalesced) ops are invisible to reads until flushed, the same
// asynchrony the OrderedMap contract already grants combining modes.
//
// Env knobs (strict-parsed like CPMA_STRICT_ASYNC; a typo warns on
// stderr and keeps the config value): CPMA_SHARDS overrides num_shards,
// CPMA_COALESCE_OPS overrides coalesce_ops, CPMA_COALESCE_AGE_MS
// overrides coalesce_age_ms.

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "common/epoch_gc.h"
#include "common/ordered_map.h"
#include "common/status.h"
#include "concurrent/concurrent_pma.h"
#include "concurrent/snapshot.h"
#include "pma/config.h"

// Feature macro for externally grafted bench drivers (see the macros at
// the top of concurrent/concurrent_pma.h).
#define CPMA_SHARDED_FRONTEND 1

namespace cpma {

class ShardedPMA;

/// Coordinated point-in-time view over every shard (ISSUE 9): one
/// PMASnapshot per shard, captured after the coalescing front door was
/// drained, so the cut sits at a single front-door stamp frontier. Per
/// shard the full PMASnapshot guarantees hold; cross-shard the cut has
/// the same granularity a live cross-shard Scan has (per-shard capture
/// points, not one global instant). The owning ShardedPMA must outlive
/// the snapshot.
class ShardedSnapshot {
 public:
  ShardedSnapshot(const ShardedSnapshot&) = delete;
  ShardedSnapshot& operator=(const ShardedSnapshot&) = delete;

  bool Find(Key key, Value* value) const;
  uint64_t SumAll() const;
  /// Ordered scan over the frozen fleet: concatenation under range
  /// partitioning, a k-way merge of per-shard frozen streams under
  /// hash partitioning.
  void Scan(Key min, Key max, const ScanCallback& cb) const;
  uint64_t CountItems() const;

  size_t num_shards() const { return snaps_.size(); }
  const PMASnapshot& shard_snapshot(size_t i) const { return *snaps_[i]; }

 private:
  friend class ShardedPMA;
  ShardedSnapshot() = default;

  const ShardedPMA* pma_ = nullptr;
  std::vector<std::unique_ptr<PMASnapshot>> snaps_;
};

struct ShardedConfig {
  /// Per-shard ConcurrentPMA configuration. worker_cpus is overwritten
  /// per shard when pin_workers is set.
  ConcurrentConfig shard;

  /// Number of shards (>= 1; power of two required for kHash).
  /// Overridden at construction by CPMA_SHARDS when set.
  size_t num_shards = 4;

  enum class Partition { kRange, kHash };
  /// kRange: contiguous key intervals, ordered scans by concatenation.
  /// kHash: splitmix64(key) & (S-1), ordered scans by k-way merge.
  Partition partition = Partition::kRange;

  /// Range-mode shard boundaries, ascending, size num_shards - 1;
  /// shard i covers [splitters[i-1], splitters[i]). Empty = uniform
  /// split of the key domain. Ignored under kHash.
  std::vector<Key> splitters;

  /// Coalescing front door: flush a producer's per-shard staging buffer
  /// at this many ops. 0 (default) disables staging — every op routes
  /// directly. Overridden by CPMA_COALESCE_OPS when set.
  size_t coalesce_ops = 0;

  /// Staged ops older than this are flushed by the background age
  /// flusher, bounding the visibility lag of a slow producer. 0
  /// disables the age flusher (size- and Flush()-triggered only).
  /// Meaningless when coalesce_ops = 0. Overridden by
  /// CPMA_COALESCE_AGE_MS when set.
  int64_t coalesce_age_ms = 2;

  /// Pin shard i's rebalancer master + workers to pin-order slot i
  /// (one home physical core per shard while shards <= cores).
  bool pin_workers = false;
};

class ShardedPMA : public OrderedMap {
 public:
  explicit ShardedPMA(const ShardedConfig& config = ShardedConfig());
  ~ShardedPMA() override;

  void Insert(Key key, Value value) override;
  void Remove(Key key) override;
  bool Find(Key key, Value* value) const override;
  uint64_t SumAll() const override;
  void Scan(Key min, Key max, const ScanCallback& cb) const override;
  size_t Size() const override;

  /// Drain every producer staging buffer into its shard, then Flush()
  /// every shard (rebalancer batches + combining queues).
  void Flush() override;

  std::string Name() const override;

  /// The router, exposed for tests and for workload generators that
  /// want shard-local key streams.
  size_t ShardOf(Key key) const;

  size_t num_shards() const { return shards_.size(); }
  const ShardedConfig& config() const { return cfg_; }

  /// Direct access to one shard (tests, per-shard observability).
  ConcurrentPMA& shard(size_t i) { return *shards_[i]; }
  const ConcurrentPMA& shard(size_t i) const { return *shards_[i]; }

  /// Effective knobs (config, possibly overridden by env at
  /// construction).
  size_t coalesce_ops() const { return coalesce_ops_; }
  int64_t coalesce_age_ms() const { return coalesce_age_ms_; }

  /// Aggregated observability: per-shard counters summed, EBR stats
  /// folded, plus the front door's own counters. One struct so bench
  /// records and soak artifacts report the fleet like one instance.
  struct Stats {
    // Summed over shards.
    uint64_t local_rebalances = 0;
    uint64_t global_rebalances = 0;
    uint64_t resizes = 0;
    uint64_t queued_ops = 0;
    uint64_t batches = 0;
    uint64_t read_fallbacks = 0;
    uint64_t optimistic_gate_reads = 0;
    uint64_t reroutes = 0;
    uint64_t rebalance_retries = 0;
    uint64_t watchdog_trips = 0;
    /// Count of shards currently publishing by copy (degraded backend).
    uint64_t degraded_shards = 0;
    /// EBR counters summed over shards (global_epoch = max).
    EpochGCStats ebr;
    // Front door.
    uint64_t coalesced_flushes = 0;  // UpdateBatch hand-offs
    uint64_t coalesced_ops = 0;      // ops that went through staging
    uint64_t age_flushes = 0;        // flushes triggered by the ager
    uint64_t direct_ops = 0;         // ops bypassing staging
    /// Background errors reported by shard rebalancers through the
    /// per-shard error callback (captured sticky; see last_error()).
    uint64_t background_errors = 0;
    /// Ager-triggered flushes that observed a non-OK shard error — the
    /// signal a flush with no foreground caller would otherwise drop.
    uint64_t ager_error_flushes = 0;
    // COW snapshots / durability (ISSUE 9), summed over shards.
    uint64_t snapshots_open = 0;
    uint64_t snapshots_taken = 0;
    uint64_t cow_retained_bytes = 0;
  };
  Stats GetStats() const;

  /// Most recent background error captured from any shard's rebalancer
  /// (including errors surfaced on the coalescing-ager thread's
  /// flushes), else the first non-OK sticky error among shards, else
  /// Status::OK. Errors raised with no foreground caller — an
  /// ager-triggered flush, a master-thread resize failure — are
  /// captured here instead of being visible only to whoever polls the
  /// individual shard.
  Status last_error() const;

  // ------------------------------------------- COW snapshots (ISSUE 9)

  /// Coordinated cross-shard snapshot: drains the coalescing slots (so
  /// every staged op up to the drain is either applied or in a shard's
  /// combining machinery, where the per-shard capture cut orders it),
  /// then captures one PMASnapshot per shard. Non-const because the
  /// front-door drain dispatches staged runs.
  std::unique_ptr<ShardedSnapshot> Snapshot();

  /// Snapshots currently open across all shards (shard snapshots of a
  /// ShardedSnapshot count individually).
  uint64_t snapshots_open() const;

 private:
  // One producer's staging area: per-shard op runs. Producers map to
  // slots via a thread-local cache (SlotForThisThread); more than
  // kNumSlots concurrent producers share slots, which only costs
  // append_mu contention — interleaved appends of two producers still
  // preserve each producer's own issue order.
  struct ShardBuf {
    std::vector<GateOp> ops;
    int64_t oldest_ms = 0;  // NowMillis() of the first staged op
  };
  struct ProducerSlot {
    std::mutex append_mu;  // guards the buffers
    /// Serializes take+stamp+dispatch per slot: held across the
    /// UpdateBatch call so two flushes of the same slot (producer's
    /// size trigger vs the age flusher) cannot invert buffer order —
    /// the stamp block of the earlier take is both reserved and
    /// dispatched before the later take's.
    std::mutex flush_mu;
    std::vector<ShardBuf> per_shard;
  };

  void Enqueue(GateOp op);
  void FlushSlotShard(ProducerSlot* slot, size_t shard_idx,
                      bool from_ager);
  ProducerSlot* SlotForThisThread() const;
  void AgeFlusherLoop();

  static constexpr size_t kNumSlots = 64;

  ShardedConfig cfg_;
  size_t coalesce_ops_ = 0;
  int64_t coalesce_age_ms_ = 0;
  uint64_t instance_id_ = 0;  // monotone; keys the thread-local slot cache
  std::vector<Key> splitters_;
  std::vector<std::unique_ptr<ConcurrentPMA>> shards_;
  mutable std::vector<std::unique_ptr<ProducerSlot>> slots_;
  mutable std::atomic<size_t> next_slot_{0};

  // Age flusher (started only when coalescing + age bound are on).
  std::thread ager_;
  std::mutex ager_mu_;
  std::condition_variable ager_cv_;
  bool ager_stop_ = false;

  mutable std::atomic<uint64_t> stat_coalesced_flushes_{0};
  mutable std::atomic<uint64_t> stat_coalesced_ops_{0};
  mutable std::atomic<uint64_t> stat_age_flushes_{0};
  mutable std::atomic<uint64_t> stat_direct_ops_{0};

  // Background-error capture (ISSUE 9 satellite): shard error callbacks
  // (installed at construction, fired from shard master threads) and
  // ager-flush observations land here so last_error()/GetStats() see
  // errors that had no foreground caller.
  mutable std::mutex bg_err_mu_;
  Status bg_error_;
  mutable std::atomic<uint64_t> stat_background_errors_{0};
  mutable std::atomic<uint64_t> stat_ager_error_flushes_{0};
};

}  // namespace cpma
