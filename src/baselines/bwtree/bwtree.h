// Bw-tree-style baseline (Levandoski et al., ICDE'13; OpenBw-Tree,
// SIGMOD'18), §4 competitor. The performance-defining traits are kept:
//
//   * a mapping table of node ids -> node pointers; updates never modify
//     a node in place but CAS-prepend *delta records* (insert / delete)
//     onto the chain — writers are latch-free;
//   * readers replay the delta chain before consulting the consolidated
//     base node — which is exactly what makes scans expensive;
//   * chains are consolidated into fresh base nodes once they exceed a
//     threshold; replaced chains are reclaimed through epoch-based GC.
//
// Simplification (documented in DESIGN.md): routing from keys to node
// ids uses a read-mostly std::map under a shared mutex, and structure
// modifications (splits) are serialized — the OpenBw-tree's help-along
// split protocol is notoriously intricate and does not affect the
// read/update trade-off the paper measures; record updates stay CAS-only.

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/epoch_gc.h"
#include "common/latches.h"
#include "common/ordered_map.h"
#include "pma/item.h"

namespace cpma {

class BwTree : public OrderedMap {
 public:
  BwTree();
  ~BwTree() override;

  void Insert(Key key, Value value) override;
  void Remove(Key key) override;
  bool Find(Key key, Value* value) const override;
  uint64_t SumAll() const override;
  void Scan(Key min, Key max, const ScanCallback& cb) const override;
  size_t Size() const override {
    return count_.load(std::memory_order_relaxed);
  }
  std::string Name() const override { return "BwTree"; }

  bool CheckInvariants(std::string* error) const;

  uint64_t num_consolidations() const {
    return stat_consolidations_.load(std::memory_order_relaxed);
  }

 private:
  struct NodeHeader;
  struct Base;
  struct Delta;

  static constexpr size_t kMaxEntries = 256;  // split threshold
  static constexpr size_t kMaxChain = 8;      // consolidation threshold

  /// Free a retired delta chain (deltas, then the base). Matches
  /// EpochGC's raw free-function overload so chain retirement allocates
  /// one intrusive garbage node and no std::function.
  static void FreeChain(void* head);
  /// Approximate heap footprint of a chain for the bytes watermark.
  static size_t ChainBytes(const void* head);

  /// Node id owning `key` (via the routing map).
  uint64_t RouteTo(Key key) const;

  /// CAS `delta` onto the chain, against the head the caller already
  /// fence-validated (never a fresh re-load: see the comment in the
  /// implementation for the split race that allows).
  bool TryPrepend(uint64_t node_id, const void* validated_head,
                  Delta* delta);

  /// Merge base + deltas into a sorted vector (replay).
  static void Materialize(const void* head, std::vector<Item>* out);

  /// Whether `key` is present in the chain starting at `head`.
  static bool ChainLookup(const void* head, Key key, Value* value,
                          bool* found);

  void MaybeConsolidate(uint64_t node_id);
  /// One consolidation attempt from `head`; true when the chain was
  /// replaced (or a split handled it).
  bool ConsolidateOnce(uint64_t node_id, void* head);
  void Split(uint64_t node_id, Key low, Key high, uint64_t right_id);

  mutable EpochGC gc_;
  mutable FairSharedMutex routing_mu_;
  std::map<Key, uint64_t> routing_;  // low fence -> node id
  std::mutex smo_mu_;                // serializes splits

  std::vector<std::atomic<void*>> mapping_;
  std::atomic<uint64_t> next_node_id_{0};
  std::atomic<size_t> count_{0};
  std::atomic<uint64_t> stat_consolidations_{0};
};

}  // namespace cpma
