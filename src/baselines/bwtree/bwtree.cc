#include "baselines/bwtree/bwtree.h"

#include <algorithm>

#include "common/status.h"

namespace cpma {

// Chain layout: mapping_[id] points at either a Base or a Delta; each
// Delta points at the next element. The first byte discriminates.
struct BwTree::NodeHeader {
  enum class Kind : uint8_t { kBase, kInsertDelta, kDeleteDelta };
  Kind kind;
};

struct BwTree::Base : BwTree::NodeHeader {
  Base() { kind = Kind::kBase; }
  std::vector<Item> items;  // sorted
  Key low = kKeyMin;
  Key high = kKeySentinel;          // exclusive (sentinel = +inf)
  uint64_t right_id = UINT64_MAX;   // sibling for scans
};

struct BwTree::Delta : BwTree::NodeHeader {
  Item item;
  const void* next = nullptr;
  uint32_t depth = 0;  // chain length below (incl. this)
};

namespace {
constexpr size_t kMappingSlots = 1 << 20;
}  // namespace

void BwTree::FreeChain(void* head) {
  const void* c = head;
  while (static_cast<const NodeHeader*>(c)->kind != NodeHeader::Kind::kBase) {
    const auto* d = static_cast<const Delta*>(c);
    c = d->next;
    delete d;
  }
  delete static_cast<const Base*>(c);
}

size_t BwTree::ChainBytes(const void* head) {
  size_t bytes = 0;
  const void* c = head;
  while (static_cast<const NodeHeader*>(c)->kind != NodeHeader::Kind::kBase) {
    bytes += sizeof(Delta);
    c = static_cast<const Delta*>(c)->next;
  }
  const auto* base = static_cast<const Base*>(c);
  return bytes + sizeof(Base) + base->items.capacity() * sizeof(Item);
}

BwTree::BwTree() : mapping_(kMappingSlots) {
  auto* base = new Base();
  const uint64_t id = next_node_id_.fetch_add(1);
  mapping_[id].store(base, std::memory_order_release);
  routing_[kKeyMin] = id;
  gc_.StartBackgroundCollector();
}

BwTree::~BwTree() {
  gc_.StopBackgroundCollector();
  // Free all live chains; retired ones are freed by the GC destructor.
  const uint64_t n = next_node_id_.load();
  for (uint64_t id = 0; id < n; ++id) {
    const void* head = mapping_[id].load(std::memory_order_acquire);
    while (head != nullptr) {
      const auto* h = static_cast<const NodeHeader*>(head);
      if (h->kind == NodeHeader::Kind::kBase) {
        delete static_cast<const Base*>(head);
        break;
      }
      const auto* d = static_cast<const Delta*>(head);
      head = d->next;
      delete d;
    }
  }
}

uint64_t BwTree::RouteTo(Key key) const {
  std::shared_lock<FairSharedMutex> lk(routing_mu_);
  auto it = routing_.upper_bound(key);
  CPMA_CHECK(it != routing_.begin());
  --it;
  return it->second;
}

bool BwTree::TryPrepend(uint64_t node_id, const void* validated_head,
                        Delta* delta) {
  // CAS against the SAME head the caller fence-validated. Re-loading
  // here used to open a lost-update window: a split could replace the
  // node between the caller's fence check and the prepend, landing the
  // delta on a node whose fences no longer cover its key — a stray
  // delete delta on the stale lower node then merges away silently at
  // the next consolidation (its key now lives in the upper node), which
  // was the intermittent wrong-value/lost-delete in
  // OrderedMapConformance.ConcurrentDisjointWritersWithScans.
  delta->next = validated_head;
  const auto* h = static_cast<const NodeHeader*>(validated_head);
  delta->depth = h->kind == NodeHeader::Kind::kBase
                     ? 1
                     : static_cast<const Delta*>(validated_head)->depth + 1;
  void* expected = const_cast<void*>(validated_head);
  return mapping_[node_id].compare_exchange_strong(
      expected, delta, std::memory_order_acq_rel);
}

void BwTree::Materialize(const void* head, std::vector<Item>* out) {
  // Collect deltas newest-first; the first op per key wins, then the
  // base fills in the rest.
  std::vector<std::pair<Item, bool>> ops;  // (item, is_delete)
  const void* cur = head;
  while (static_cast<const NodeHeader*>(cur)->kind !=
         NodeHeader::Kind::kBase) {
    const auto* d = static_cast<const Delta*>(cur);
    ops.emplace_back(d->item,
                     d->kind == NodeHeader::Kind::kDeleteDelta);
    cur = d->next;
  }
  const auto* base = static_cast<const Base*>(cur);
  // Newest-first: keep only the first occurrence of each key.
  std::stable_sort(ops.begin(), ops.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.key < b.first.key;
                   });
  std::vector<std::pair<Item, bool>> dedup;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i == 0 || ops[i].first.key != ops[i - 1].first.key) {
      dedup.push_back(ops[i]);
    }
  }
  // Merge with the base.
  out->clear();
  out->reserve(base->items.size() + dedup.size());
  size_t bi = 0, oi = 0;
  while (bi < base->items.size() || oi < dedup.size()) {
    if (oi >= dedup.size() || (bi < base->items.size() &&
                               base->items[bi].key < dedup[oi].first.key)) {
      out->push_back(base->items[bi++]);
      continue;
    }
    const bool same = bi < base->items.size() &&
                      base->items[bi].key == dedup[oi].first.key;
    if (same) ++bi;
    if (!dedup[oi].second) out->push_back(dedup[oi].first);  // upsert
    ++oi;
  }
}

bool BwTree::ChainLookup(const void* head, Key key, Value* value,
                         bool* found) {
  const void* cur = head;
  while (static_cast<const NodeHeader*>(cur)->kind !=
         NodeHeader::Kind::kBase) {
    const auto* d = static_cast<const Delta*>(cur);
    if (d->item.key == key) {
      // Newest delta for this key decides.
      *found = d->kind == NodeHeader::Kind::kInsertDelta;
      if (*found && value != nullptr) *value = d->item.value;
      return true;
    }
    cur = d->next;
  }
  const auto* base = static_cast<const Base*>(cur);
  auto it = std::lower_bound(
      base->items.begin(), base->items.end(), key,
      [](const Item& a, Key k) { return a.key < k; });
  *found = it != base->items.end() && it->key == key;
  if (*found && value != nullptr) *value = it->value;
  return true;
}

void BwTree::Insert(Key key, Value value) {
  EpochGuard guard(gc_);
  for (;;) {
    const uint64_t id = RouteTo(key);
    const void* head = mapping_[id].load(std::memory_order_acquire);
    // Validate fences: walk to the base for [low, high).
    const void* cur = head;
    while (static_cast<const NodeHeader*>(cur)->kind !=
           NodeHeader::Kind::kBase) {
      cur = static_cast<const Delta*>(cur)->next;
    }
    const auto* base = static_cast<const Base*>(cur);
    if (key < base->low ||
        (base->high != kKeySentinel && key >= base->high)) {
      continue;  // raced with a split; re-route
    }
    auto* delta = new Delta();
    delta->kind = NodeHeader::Kind::kInsertDelta;
    delta->item = {key, value};
    if (!TryPrepend(id, head, delta)) {
      delete delta;
      continue;
    }
    // The CAS is the linearization point: presence at that instant is
    // decided by the chain below our delta.
    bool existed = false;
    ChainLookup(delta->next, key, nullptr, &existed);
    if (!existed) count_.fetch_add(1, std::memory_order_relaxed);
    MaybeConsolidate(id);
    return;
  }
}

void BwTree::Remove(Key key) {
  EpochGuard guard(gc_);
  for (;;) {
    const uint64_t id = RouteTo(key);
    const void* head = mapping_[id].load(std::memory_order_acquire);
    const void* cur = head;
    while (static_cast<const NodeHeader*>(cur)->kind !=
           NodeHeader::Kind::kBase) {
      cur = static_cast<const Delta*>(cur)->next;
    }
    const auto* base = static_cast<const Base*>(cur);
    if (key < base->low ||
        (base->high != kKeySentinel && key >= base->high)) {
      continue;
    }
    auto* delta = new Delta();
    delta->kind = NodeHeader::Kind::kDeleteDelta;
    delta->item = {key, 0};
    if (!TryPrepend(id, head, delta)) {
      delete delta;
      continue;
    }
    bool existed = false;
    ChainLookup(delta->next, key, nullptr, &existed);
    if (existed) count_.fetch_sub(1, std::memory_order_relaxed);
    MaybeConsolidate(id);
    return;
  }
}

bool BwTree::Find(Key key, Value* value) const {
  EpochGuard guard(gc_);
  for (;;) {
    const uint64_t id = RouteTo(key);
    const void* head = mapping_[id].load(std::memory_order_acquire);
    const void* cur = head;
    while (static_cast<const NodeHeader*>(cur)->kind !=
           NodeHeader::Kind::kBase) {
      cur = static_cast<const Delta*>(cur)->next;
    }
    const auto* base = static_cast<const Base*>(cur);
    if (key < base->low ||
        (base->high != kKeySentinel && key >= base->high)) {
      continue;
    }
    bool found = false;
    ChainLookup(head, key, value, &found);
    return found;
  }
}

void BwTree::MaybeConsolidate(uint64_t node_id) {
  // Retry a few times: under contention the CAS below races with
  // concurrent delta prepends; without retries a hot node's chain can
  // grow without bound (every consolidation loses).
  for (int attempt = 0; attempt < 4; ++attempt) {
    void* head = mapping_[node_id].load(std::memory_order_acquire);
    const auto* h = static_cast<const NodeHeader*>(head);
    if (h->kind == NodeHeader::Kind::kBase) return;
    if (static_cast<const Delta*>(head)->depth < kMaxChain) return;
    if (ConsolidateOnce(node_id, head)) return;
  }
}

bool BwTree::ConsolidateOnce(uint64_t node_id, void* head) {
  std::vector<Item> merged;
  Materialize(head, &merged);
  const void* cur = head;
  while (static_cast<const NodeHeader*>(cur)->kind !=
         NodeHeader::Kind::kBase) {
    cur = static_cast<const Delta*>(cur)->next;
  }
  const auto* old_base = static_cast<const Base*>(cur);
  const Key low = old_base->low;
  const Key high = old_base->high;
  const uint64_t right = old_base->right_id;

  if (merged.size() > kMaxEntries) {
    Split(node_id, low, high, right);
    return true;
  }
  auto* fresh = new Base();
  fresh->items = std::move(merged);
  fresh->low = low;
  fresh->high = high;
  fresh->right_id = right;
  if (mapping_[node_id].compare_exchange_strong(
          head, fresh, std::memory_order_acq_rel)) {
    stat_consolidations_.fetch_add(1, std::memory_order_relaxed);
    gc_.Retire(&BwTree::FreeChain, head, ChainBytes(head));
    return true;
  }
  delete fresh;  // someone else prepended or consolidated first
  return false;
}

void BwTree::Split(uint64_t node_id, Key low, Key high, uint64_t right_id) {
  std::lock_guard<std::mutex> smo(smo_mu_);
  // Re-materialize under the SMO lock (the chain may have grown).
  void* head = mapping_[node_id].load(std::memory_order_acquire);
  std::vector<Item> merged;
  Materialize(head, &merged);
  if (merged.size() <= kMaxEntries) return;  // already handled

  const size_t half = merged.size() / 2;
  auto* upper = new Base();
  upper->items.assign(merged.begin() + static_cast<long>(half),
                      merged.end());
  upper->low = upper->items[0].key;
  upper->high = high;
  upper->right_id = right_id;
  const uint64_t upper_id = next_node_id_.fetch_add(1);
  CPMA_CHECK_MSG(upper_id < kMappingSlots, "mapping table exhausted");
  mapping_[upper_id].store(upper, std::memory_order_release);

  auto* lower = new Base();
  lower->items.assign(merged.begin(), merged.begin() + static_cast<long>(half));
  lower->low = low;
  lower->high = upper->low;
  lower->right_id = upper_id;

  if (!mapping_[node_id].compare_exchange_strong(
          head, lower, std::memory_order_acq_rel)) {
    // A delta slipped in after materialization: give up this round; the
    // next consolidation retries the split.
    delete lower;
    mapping_[upper_id].store(nullptr, std::memory_order_release);
    delete upper;
    return;
  }
  {
    std::unique_lock<FairSharedMutex> lk(routing_mu_);
    routing_[upper->low] = upper_id;
  }
  stat_consolidations_.fetch_add(1, std::memory_order_relaxed);
  gc_.Retire(&BwTree::FreeChain, head, ChainBytes(head));
}

uint64_t BwTree::SumAll() const {
  EpochGuard guard(gc_);
  uint64_t sum = 0;
  // Start at the leftmost node and follow right siblings, replaying each
  // chain (the Bw-tree scan penalty).
  uint64_t id;
  {
    std::shared_lock<FairSharedMutex> lk(routing_mu_);
    id = routing_.begin()->second;
  }
  std::vector<Item> merged;
  while (id != UINT64_MAX) {
    const void* head = mapping_[id].load(std::memory_order_acquire);
    if (head == nullptr) break;  // aborted split leftover
    Materialize(head, &merged);
    for (const Item& it : merged) sum += it.value;
    const void* cur = head;
    while (static_cast<const NodeHeader*>(cur)->kind !=
           NodeHeader::Kind::kBase) {
      cur = static_cast<const Delta*>(cur)->next;
    }
    id = static_cast<const Base*>(cur)->right_id;
  }
  return sum;
}

void BwTree::Scan(Key min, Key max, const ScanCallback& cb) const {
  if (min > max) return;
  EpochGuard guard(gc_);
  uint64_t id = RouteTo(min);
  std::vector<Item> merged;
  while (id != UINT64_MAX) {
    const void* head = mapping_[id].load(std::memory_order_acquire);
    if (head == nullptr) break;
    Materialize(head, &merged);
    for (const Item& it : merged) {
      if (it.key < min) continue;
      if (it.key > max || !cb(it.key, it.value)) return;
    }
    const void* cur = head;
    while (static_cast<const NodeHeader*>(cur)->kind !=
           NodeHeader::Kind::kBase) {
      cur = static_cast<const Delta*>(cur)->next;
    }
    id = static_cast<const Base*>(cur)->right_id;
  }
}

bool BwTree::CheckInvariants(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  EpochGuard guard(gc_);
  uint64_t id;
  {
    std::shared_lock<FairSharedMutex> lk(routing_mu_);
    id = routing_.begin()->second;
  }
  size_t total = 0;
  Key prev = 0;
  bool have_prev = false;
  std::vector<Item> merged;
  while (id != UINT64_MAX) {
    const void* head = mapping_[id].load(std::memory_order_acquire);
    if (head == nullptr) break;
    Materialize(head, &merged);
    const void* cur = head;
    while (static_cast<const NodeHeader*>(cur)->kind !=
           NodeHeader::Kind::kBase) {
      cur = static_cast<const Delta*>(cur)->next;
    }
    const auto* base = static_cast<const Base*>(cur);
    for (const Item& it : merged) {
      if (it.key < base->low) return fail("item below node low fence");
      if (base->high != kKeySentinel && it.key >= base->high) {
        return fail("item above node high fence");
      }
      if (have_prev && it.key <= prev) {
        return fail("keys not strictly increasing across nodes");
      }
      prev = it.key;
      have_prev = true;
      ++total;
    }
    id = base->right_id;
  }
  if (total != count_.load()) return fail("element count mismatch");
  return true;
}

}  // namespace cpma
