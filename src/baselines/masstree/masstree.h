// Masstree-style baseline (Mao, Kohler, Morris — EuroSys'12), §4
// competitor. The performance-defining traits of Masstree for 8-byte
// keys are reproduced faithfully:
//
//   * small nodes (leaves hold 15 entries ≈ 256 B) -> cheap writes, but
//     range scans chase many pointers;
//   * unsorted leaf entries with a permutation array -> inserts append,
//     no shifting;
//   * optimistic concurrency control: readers take no latches, validate
//     node versions, and retry on conflict; writers lock only the leaf.
//
// For fixed 8-byte keys Masstree's trie-of-B+-trees degenerates to a
// single B+-tree layer, so this is structurally the "layer 0" of
// Masstree. Structure modifications (splits) are serialized by a global
// SMO mutex — a documented simplification (DESIGN.md): record updates,
// which dominate the paper's workloads, keep the original concurrency.
// Deletions are lazy (no merges), matching the other tree baselines.

#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "common/latches.h"
#include "common/ordered_map.h"
#include "pma/item.h"

namespace cpma {

class Masstree : public OrderedMap {
 public:
  Masstree();
  ~Masstree() override;

  void Insert(Key key, Value value) override;
  void Remove(Key key) override;
  bool Find(Key key, Value* value) const override;
  uint64_t SumAll() const override;
  void Scan(Key min, Key max, const ScanCallback& cb) const override;
  size_t Size() const override {
    return count_.load(std::memory_order_relaxed);
  }
  std::string Name() const override { return "Masstree"; }

  bool CheckInvariants(std::string* error) const;

 private:
  struct Node;
  struct Inner;
  struct Leaf;

  /// Optimistic descent to the leaf whose fences cover `key`; returns a
  /// consistent (leaf, version) pair or retries internally.
  Leaf* ReachLeaf(Key key, uint64_t* version) const;

  /// Split `leaf` (write-locked by the caller); releases the leaf lock.
  void SplitLeaf(Leaf* leaf);

  std::atomic<Node*> root_;
  Leaf* first_leaf_;
  std::atomic<size_t> count_{0};
  std::mutex smo_mu_;  // serializes structure modifications
  mutable std::mutex alloc_mu_;
  std::vector<Node*> all_nodes_;
};

}  // namespace cpma
