#include "baselines/masstree/masstree.h"

#include <algorithm>
#include <cstring>

#include "common/status.h"

namespace cpma {

namespace {
constexpr unsigned kLeafEntries = 15;   // ~256 B of key/value payload
constexpr unsigned kInnerEntries = 64;  // separators per inner node
}  // namespace

struct Masstree::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
  OptimisticLock lock;
  const bool is_leaf;
};

struct Masstree::Inner : Masstree::Node {
  Inner() : Node(false) {}
  // Fixed arrays: OCC readers may observe torn intermediate states and
  // rely on version validation, so storage must never reallocate.
  Key keys[kInnerEntries];
  Node* children[kInnerEntries + 1];
  unsigned num_keys = 0;

  unsigned ChildIndex(Key key) const {
    unsigned lo = 0, hi = num_keys;
    while (lo < hi) {
      unsigned mid = (lo + hi) / 2;
      if (key >= keys[mid]) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
};

struct Masstree::Leaf : Masstree::Node {
  Leaf() : Node(true) {}
  Item items[kLeafEntries];     // unsorted (insertion order)
  uint8_t perm[kLeafEntries];   // permutation: sorted -> slot
  uint8_t num_items = 0;
  Key low = kKeyMin;
  Key high = kKeySentinel;  // exclusive upper fence (sentinel = +inf)
  Leaf* next = nullptr;

  int FindSlot(Key key) const {
    for (unsigned i = 0; i < num_items; ++i) {
      if (items[i].key == key) return static_cast<int>(i);
    }
    return -1;
  }
};

Masstree::Masstree() {
  auto* leaf = new Leaf();
  first_leaf_ = leaf;
  root_.store(leaf, std::memory_order_release);
  all_nodes_.push_back(leaf);
}

Masstree::~Masstree() {
  for (Node* n : all_nodes_) delete n;
}

Masstree::Leaf* Masstree::ReachLeaf(Key key, uint64_t* version) const {
  for (;;) {
    Node* node = root_.load(std::memory_order_acquire);
    bool ok = false;
    uint64_t v = node->lock.ReadLockOrRestart(ok);
    if (!ok) continue;
    bool restart = false;
    while (!node->is_leaf) {
      auto* inner = static_cast<Inner*>(node);
      Node* child = inner->children[inner->ChildIndex(key)];
      uint64_t cv = 0;
      if (child == nullptr || !node->lock.CheckOrRestart(v)) {
        restart = true;
        break;
      }
      cv = child->lock.ReadLockOrRestart(ok);
      if (!ok || !node->lock.CheckOrRestart(v)) {
        restart = true;
        break;
      }
      node = child;
      v = cv;
    }
    if (restart) continue;
    auto* leaf = static_cast<Leaf*>(node);
    // Fence validation (the split may have raced the descent).
    const Key low = leaf->low;
    const Key high = leaf->high;
    if (!leaf->lock.CheckOrRestart(v)) continue;
    if (key < low || (high != kKeySentinel && key >= high)) continue;
    *version = v;
    return leaf;
  }
}

void Masstree::Insert(Key key, Value value) {
  for (;;) {
    uint64_t v = 0;
    Leaf* leaf = ReachLeaf(key, &v);
    if (!leaf->lock.UpgradeToWriteLock(v)) continue;
    // Re-validate fences under the lock.
    if (key < leaf->low ||
        (leaf->high != kKeySentinel && key >= leaf->high)) {
      leaf->lock.WriteUnlock();
      continue;
    }
    const int slot = leaf->FindSlot(key);
    if (slot >= 0) {
      leaf->items[slot].value = value;
      leaf->lock.WriteUnlock();
      return;
    }
    if (leaf->num_items < kLeafEntries) {
      // Masstree trait: append unsorted, fix the permutation only.
      const uint8_t pos = leaf->num_items;
      leaf->items[pos] = {key, value};
      unsigned ins = 0;
      while (ins < pos && leaf->items[leaf->perm[ins]].key < key) ++ins;
      std::memmove(leaf->perm + ins + 1, leaf->perm + ins, pos - ins);
      leaf->perm[ins] = pos;
      ++leaf->num_items;
      count_.fetch_add(1, std::memory_order_relaxed);
      leaf->lock.WriteUnlock();
      return;
    }
    SplitLeaf(leaf);  // releases the leaf lock; retry the insert
  }
}

void Masstree::SplitLeaf(Leaf* leaf) {
  // The leaf is write-locked. Take the SMO mutex for the structural part
  // (lock order: leaf < smo < inners — consistent everywhere).
  std::lock_guard<std::mutex> smo(smo_mu_);
  auto* fresh = new Leaf();
  {
    std::lock_guard<std::mutex> g(alloc_mu_);
    all_nodes_.push_back(fresh);
  }
  // Move the upper half (by sorted order) to the new leaf.
  const unsigned half = leaf->num_items / 2;
  Item sorted[kLeafEntries];
  for (unsigned i = 0; i < leaf->num_items; ++i) {
    sorted[i] = leaf->items[leaf->perm[i]];
  }
  for (unsigned i = half; i < leaf->num_items; ++i) {
    const unsigned j = i - half;
    fresh->items[j] = sorted[i];
    fresh->perm[j] = static_cast<uint8_t>(j);
  }
  fresh->num_items = static_cast<uint8_t>(leaf->num_items - half);
  fresh->low = sorted[half].key;
  fresh->high = leaf->high;
  fresh->next = leaf->next;
  for (unsigned i = 0; i < half; ++i) leaf->perm[i] = 0;
  // Compact the lower half back into the old leaf.
  for (unsigned i = 0; i < half; ++i) {
    leaf->items[i] = sorted[i];
    leaf->perm[i] = static_cast<uint8_t>(i);
  }
  leaf->num_items = static_cast<uint8_t>(half);
  leaf->high = fresh->low;
  leaf->next = fresh;
  const Key sep = fresh->low;
  leaf->lock.WriteUnlock();

  // Insert the separator into the parent chain. Under smo_mu_ only this
  // thread mutates inners, so a plain descent is safe; each mutated
  // inner is version-locked so optimistic readers retry.
  Node* right = fresh;
  for (;;) {
    // Find the parent path of `sep` from the root.
    Node* node = root_.load(std::memory_order_acquire);
    if (node->is_leaf) {
      // Root was the split leaf: grow a new root.
      auto* new_root = new Inner();
      {
        std::lock_guard<std::mutex> g(alloc_mu_);
        all_nodes_.push_back(new_root);
      }
      new_root->keys[0] = sep;
      new_root->children[0] = node;
      new_root->children[1] = right;
      new_root->num_keys = 1;
      root_.store(new_root, std::memory_order_release);
      return;
    }
    std::vector<Inner*> path;
    while (!node->is_leaf) {
      auto* inner = static_cast<Inner*>(node);
      path.push_back(inner);
      node = inner->children[inner->ChildIndex(sep)];
    }
    // Bubble up from the deepest inner.
    Key up_key = sep;
    Node* up_right = right;
    while (!path.empty()) {
      Inner* parent = path.back();
      path.pop_back();
      CPMA_CHECK(parent->lock.WriteLock());
      const unsigned idx = parent->ChildIndex(up_key);
      if (parent->num_keys < kInnerEntries) {
        std::memmove(parent->keys + idx + 1, parent->keys + idx,
                     (parent->num_keys - idx) * sizeof(Key));
        std::memmove(parent->children + idx + 2, parent->children + idx + 1,
                     (parent->num_keys - idx) * sizeof(Node*));
        parent->keys[idx] = up_key;
        parent->children[idx + 1] = up_right;
        ++parent->num_keys;
        parent->lock.WriteUnlock();
        return;
      }
      // Split the inner.
      auto* fresh_inner = new Inner();
      {
        std::lock_guard<std::mutex> g(alloc_mu_);
        all_nodes_.push_back(fresh_inner);
      }
      Key tmp_keys[kInnerEntries + 1];
      Node* tmp_children[kInnerEntries + 2];
      std::memcpy(tmp_keys, parent->keys, sizeof(parent->keys));
      std::memcpy(tmp_children, parent->children, sizeof(parent->children));
      std::memmove(tmp_keys + idx + 1, tmp_keys + idx,
                   (kInnerEntries - idx) * sizeof(Key));
      std::memmove(tmp_children + idx + 2, tmp_children + idx + 1,
                   (kInnerEntries - idx) * sizeof(Node*));
      tmp_keys[idx] = up_key;
      tmp_children[idx + 1] = up_right;
      const unsigned total = kInnerEntries + 1;
      const unsigned mid = total / 2;
      parent->num_keys = mid;
      std::memcpy(parent->keys, tmp_keys, mid * sizeof(Key));
      std::memcpy(parent->children, tmp_children, (mid + 1) * sizeof(Node*));
      fresh_inner->num_keys = total - mid - 1;
      std::memcpy(fresh_inner->keys, tmp_keys + mid + 1,
                  fresh_inner->num_keys * sizeof(Key));
      std::memcpy(fresh_inner->children, tmp_children + mid + 1,
                  (fresh_inner->num_keys + 1) * sizeof(Node*));
      up_key = tmp_keys[mid];
      up_right = fresh_inner;
      parent->lock.WriteUnlock();
      if (path.empty()) {
        // Root inner split.
        auto* new_root = new Inner();
        {
          std::lock_guard<std::mutex> g(alloc_mu_);
          all_nodes_.push_back(new_root);
        }
        new_root->keys[0] = up_key;
        new_root->children[0] = root_.load(std::memory_order_acquire);
        new_root->children[1] = up_right;
        new_root->num_keys = 1;
        root_.store(new_root, std::memory_order_release);
        return;
      }
    }
    return;  // inserted
  }
}

void Masstree::Remove(Key key) {
  for (;;) {
    uint64_t v = 0;
    Leaf* leaf = ReachLeaf(key, &v);
    if (!leaf->lock.UpgradeToWriteLock(v)) continue;
    if (key < leaf->low ||
        (leaf->high != kKeySentinel && key >= leaf->high)) {
      leaf->lock.WriteUnlock();
      continue;
    }
    const int slot = leaf->FindSlot(key);
    if (slot >= 0) {
      // Swap the last physical slot into the hole, then rebuild the
      // permutation (15 entries: trivial).
      const unsigned last = leaf->num_items - 1u;
      leaf->items[slot] = leaf->items[last];
      --leaf->num_items;
      unsigned p = 0;
      for (unsigned i = 0; i < leaf->num_items; ++i) leaf->perm[i] = 0;
      // Insertion-sort slots by key.
      for (unsigned i = 0; i < leaf->num_items; ++i) {
        unsigned ins = p;
        while (ins > 0 &&
               leaf->items[leaf->perm[ins - 1]].key > leaf->items[i].key) {
          leaf->perm[ins] = leaf->perm[ins - 1];
          --ins;
        }
        leaf->perm[ins] = static_cast<uint8_t>(i);
        ++p;
      }
      count_.fetch_sub(1, std::memory_order_relaxed);
    }
    leaf->lock.WriteUnlock();
    return;
  }
}

bool Masstree::Find(Key key, Value* value) const {
  for (;;) {
    uint64_t v = 0;
    Leaf* leaf = ReachLeaf(key, &v);
    const int slot = leaf->FindSlot(key);
    Value out = slot >= 0 ? leaf->items[slot].value : 0;
    if (!leaf->lock.CheckOrRestart(v)) continue;
    if (slot >= 0 && value != nullptr) *value = out;
    return slot >= 0;
  }
}

uint64_t Masstree::SumAll() const {
  // Walk the leaf chain with per-leaf optimistic snapshots. (This is
  // exactly why Masstree scans poorly: per-256B-node version dance.)
  uint64_t sum = 0;
  const Leaf* leaf = first_leaf_;
  while (leaf != nullptr) {
    for (;;) {
      bool ok = false;
      uint64_t v = leaf->lock.ReadLockOrRestart(ok);
      if (!ok) continue;
      uint64_t local = 0;
      const unsigned n = leaf->num_items;
      for (unsigned i = 0; i < n && i < kLeafEntries; ++i) {
        local += leaf->items[i].value;
      }
      const Leaf* next = leaf->next;
      if (!leaf->lock.CheckOrRestart(v)) continue;
      sum += local;
      leaf = next;
      break;
    }
  }
  return sum;
}

void Masstree::Scan(Key min, Key max, const ScanCallback& cb) const {
  if (min > max) return;
  uint64_t v = 0;
  const Leaf* leaf = ReachLeaf(min, &v);
  while (leaf != nullptr) {
    // Snapshot the leaf in sorted order, validate, then emit.
    Item snap[kLeafEntries];
    unsigned n = 0;
    const Leaf* next = nullptr;
    for (;;) {
      bool ok = false;
      uint64_t lv = leaf->lock.ReadLockOrRestart(ok);
      if (!ok) {
        lv = 0;
      }
      n = std::min<unsigned>(leaf->num_items, kLeafEntries);
      for (unsigned i = 0; i < n; ++i) snap[i] = leaf->items[leaf->perm[i]];
      next = leaf->next;
      if (leaf->lock.CheckOrRestart(lv)) break;
    }
    for (unsigned i = 0; i < n; ++i) {
      if (snap[i].key < min) continue;
      if (snap[i].key > max || !cb(snap[i].key, snap[i].value)) return;
    }
    leaf = next;
  }
}

bool Masstree::CheckInvariants(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  size_t total = 0;
  Key prev = 0;
  bool have_prev = false;
  for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
    for (unsigned i = 0; i < leaf->num_items; ++i) {
      const Item& it = leaf->items[leaf->perm[i]];
      if (it.key < leaf->low) return fail("item below leaf low fence");
      if (leaf->high != kKeySentinel && it.key >= leaf->high) {
        return fail("item above leaf high fence");
      }
      if (have_prev && it.key <= prev) {
        return fail("sorted order violated across the leaf chain");
      }
      prev = it.key;
      have_prev = true;
      ++total;
    }
  }
  if (total != count_.load()) return fail("element count mismatch");
  return true;
}

}  // namespace cpma
