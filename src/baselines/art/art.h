// ART / B+-tree hybrid — the paper's strongest competitor (§4):
// an Adaptive Radix Tree (Leis et al., ICDE'13) with Optimistic Lock
// Coupling (Leis et al., DaMoN'16) used as a *secondary index* whose
// elements live in the leaves of a custom B+-tree — here a linked list
// of 4 KiB sorted pages (8 KiB in the §4.1 ablation), with prefetching
// during scans.
//
// The ART indexes one entry per leaf page: the page's immutable low key.
// Point and update operations do a floor search (largest low key <= k)
// through the trie without any latches, validating node versions, then
// latch only the destination page. Page splits insert the new page's low
// key into the ART. Deletions are lazy (pages are never merged), so ART
// entries are never removed — the trie only grows.
//
// Simplifications vs the original ART (documented in DESIGN.md): keys
// are fixed 8-byte big-endian, so the trie has a fixed depth of 8 and no
// path compression; node-growth garbage is freed at destruction (grown
// nodes are marked obsolete for concurrent readers via their version).

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/latches.h"
#include "common/ordered_map.h"
#include "pma/item.h"

namespace cpma {

class ArtBTree : public OrderedMap {
 public:
  explicit ArtBTree(size_t leaf_bytes = 4096);
  ~ArtBTree() override;

  void Insert(Key key, Value value) override;
  void Remove(Key key) override;
  bool Find(Key key, Value* value) const override;
  uint64_t SumAll() const override;
  void Scan(Key min, Key max, const ScanCallback& cb) const override;
  size_t Size() const override {
    return count_.load(std::memory_order_relaxed);
  }
  std::string Name() const override {
    return "ART/BTree(leaf=" + std::to_string(leaf_capacity_ * sizeof(Item)) +
           "B)";
  }

  bool CheckInvariants(std::string* error) const;

 private:
  struct ArtNode;
  struct LeafPage;

  // --- trie ---
  static uint8_t KeyByte(Key key, unsigned level) {
    return static_cast<uint8_t>(key >> (8 * (7 - level)));
  }
  /// Largest indexed low-key <= key; never null (page 0 has low kKeyMin).
  LeafPage* Floor(Key key) const;
  /// Insert `page` under its low key (exclusive trie path as needed).
  void TrieInsert(Key key, LeafPage* page);
  void* AllocNode(uint8_t type);

  // --- pages ---
  /// Locate and exclusively lock the page owning `key`.
  LeafPage* LockPageFor(Key key);
  LeafPage* LockPageForShared(Key key) const;

  size_t leaf_capacity_;
  ArtNode* root_;  // fixed Node256: never grows or gets replaced
  LeafPage* first_page_;
  std::atomic<size_t> count_{0};
  mutable std::mutex alloc_mu_;
  std::vector<void*> all_nodes_;
  std::vector<LeafPage*> all_pages_;
};

}  // namespace cpma
