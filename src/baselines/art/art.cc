#include "baselines/art/art.h"

#include <algorithm>
#include <cstring>

#include "common/status.h"

namespace cpma {

namespace {
constexpr uint8_t kNode4 = 0;
constexpr uint8_t kNode16 = 1;
constexpr uint8_t kNode48 = 2;
constexpr uint8_t kNode256 = 3;
constexpr unsigned kMaxLevel = 7;  // 8-byte keys, one byte per level
}  // namespace

struct ArtBTree::ArtNode {
  OptimisticLock lock;
  uint8_t type;
  uint16_t num_children = 0;
  // Node4/16: sorted key bytes + children. Node48: indirection table.
  // Node256: direct. A single struct keeps the code compact; memory per
  // node is sized by AllocNode according to `type`.
  uint8_t keys[16];
  uint8_t child_index[256];  // Node48 only
  void* children[256];       // first 4/16/48/256 entries used

  /// Child for byte b, or nullptr. Safe to call concurrently with
  /// writers; the caller validates the node version afterwards.
  void* GetChild(uint8_t b) const {
    switch (type) {
      case kNode4:
      case kNode16:
        for (unsigned i = 0; i < num_children; ++i) {
          if (keys[i] == b) return children[i];
        }
        return nullptr;
      case kNode48: {
        uint8_t idx = child_index[b];
        return idx == 0xFF ? nullptr : children[idx];
      }
      default:
        return children[b];
    }
  }

  /// Largest byte strictly below b that has a child; -1 if none.
  int LowerByte(uint8_t b) const {
    int best = -1;
    switch (type) {
      case kNode4:
      case kNode16:
        for (unsigned i = 0; i < num_children; ++i) {
          if (keys[i] < b && keys[i] > best) best = keys[i];
        }
        return best;
      case kNode48:
        for (int i = b - 1; i >= 0; --i) {
          if (child_index[i] != 0xFF) return i;
        }
        return -1;
      default:
        for (int i = b - 1; i >= 0; --i) {
          if (children[i] != nullptr) return i;
        }
        return -1;
    }
  }

  /// Largest byte with a child; -1 if the node is empty.
  int MaxByte() const { return LowerByte(0xFF) >= 0 || GetChild(0xFF)
                                   ? (GetChild(0xFF) ? 0xFF : LowerByte(0xFF))
                                   : -1; }

  bool IsFull() const {
    switch (type) {
      case kNode4: return num_children == 4;
      case kNode16: return num_children == 16;
      case kNode48: return num_children == 48;
      default: return false;
    }
  }

  /// Caller holds the write lock and guarantees capacity.
  void AddChild(uint8_t b, void* child) {
    switch (type) {
      case kNode4:
      case kNode16: {
        unsigned pos = 0;
        while (pos < num_children && keys[pos] < b) ++pos;
        std::memmove(keys + pos + 1, keys + pos, num_children - pos);
        std::memmove(children + pos + 1, children + pos,
                     (num_children - pos) * sizeof(void*));
        keys[pos] = b;
        children[pos] = child;
        ++num_children;
        break;
      }
      case kNode48:
        children[num_children] = child;
        child_index[b] = static_cast<uint8_t>(num_children);
        ++num_children;
        break;
      default:
        children[b] = child;
        ++num_children;
        break;
    }
  }
};

struct ArtBTree::LeafPage {
  explicit LeafPage(Key low_key) : low(low_key) {}
  const Key low;  // immutable fence: all items have key >= low
  mutable FairSharedMutex latch;
  std::vector<Item> items;  // sorted
  LeafPage* next = nullptr;

  size_t LowerBound(Key key) const {
    size_t lo = 0, hi = items.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (items[mid].key < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
};

void* ArtBTree::AllocNode(uint8_t type) {
  auto* n = new ArtNode();
  n->type = type;
  if (type == kNode48) std::memset(n->child_index, 0xFF, 256);
  if (type == kNode256) {
    std::memset(n->children, 0, sizeof(n->children));
  }
  std::lock_guard<std::mutex> g(alloc_mu_);
  all_nodes_.push_back(n);
  return n;
}

ArtBTree::ArtBTree(size_t leaf_bytes)
    : leaf_capacity_(leaf_bytes / sizeof(Item)) {
  CPMA_CHECK(leaf_capacity_ >= 4);
  root_ = static_cast<ArtNode*>(AllocNode(kNode256));
  first_page_ = new LeafPage(kKeyMin);
  first_page_->items.reserve(leaf_capacity_);
  {
    std::lock_guard<std::mutex> g(alloc_mu_);
    all_pages_.push_back(first_page_);
  }
  TrieInsert(kKeyMin, first_page_);
}

ArtBTree::~ArtBTree() {
  for (void* n : all_nodes_) delete static_cast<ArtNode*>(n);
  for (LeafPage* p : all_pages_) delete p;
}

void ArtBTree::TrieInsert(Key key, LeafPage* page) {
  // Optimistic lock coupling; restart on any version conflict.
  for (;;) {
    ArtNode* parent = nullptr;
    uint64_t parent_version = 0;
    ArtNode* node = root_;
    bool ok = false;
    uint64_t version = node->lock.ReadLockOrRestart(ok);
    if (!ok) continue;
    unsigned level = 0;
    bool restart = false;
    for (; level <= kMaxLevel && !restart;) {
      const uint8_t b = KeyByte(key, level);
      void* child = node->GetChild(b);
      if (!node->lock.CheckOrRestart(version)) {
        restart = true;
        break;
      }
      if (child == nullptr) {
        // Attach a fresh path (possibly growing the node first).
        if (node->IsFull()) {
          // Grow: lock parent + node, replace node in parent.
          CPMA_CHECK(parent != nullptr);  // root is N256, never full
          if (!parent->lock.UpgradeToWriteLock(parent_version)) {
            restart = true;
            break;
          }
          if (!node->lock.UpgradeToWriteLock(version)) {
            parent->lock.WriteUnlock();
            restart = true;
            break;
          }
          uint8_t new_type =
              node->type == kNode4 ? kNode16
                                   : (node->type == kNode16 ? kNode48
                                                            : kNode256);
          auto* bigger = static_cast<ArtNode*>(AllocNode(new_type));
          // Copy children.
          for (unsigned byte = 0; byte < 256; ++byte) {
            void* c = node->GetChild(static_cast<uint8_t>(byte));
            if (c != nullptr) {
              bigger->AddChild(static_cast<uint8_t>(byte), c);
            }
          }
          bigger->AddChild(b, nullptr);  // placeholder, replaced below
          // Build the remaining path into the placeholder slot.
          void* tail = page;
          for (unsigned l = kMaxLevel; l > level; --l) {
            auto* link = static_cast<ArtNode*>(AllocNode(kNode4));
            link->AddChild(KeyByte(key, l), tail);
            tail = link;
          }
          // Replace placeholder.
          switch (bigger->type) {
            case kNode16: {
              for (unsigned i = 0; i < bigger->num_children; ++i) {
                if (bigger->keys[i] == b) bigger->children[i] = tail;
              }
              break;
            }
            case kNode48:
              bigger->children[bigger->child_index[b]] = tail;
              break;
            default:
              bigger->children[b] = tail;
              break;
          }
          // Install in parent.
          const uint8_t pb = KeyByte(key, level - 1);
          switch (parent->type) {
            case kNode4:
            case kNode16:
              for (unsigned i = 0; i < parent->num_children; ++i) {
                if (parent->keys[i] == pb) parent->children[i] = bigger;
              }
              break;
            case kNode48:
              parent->children[parent->child_index[pb]] = bigger;
              break;
            default:
              parent->children[pb] = bigger;
              break;
          }
          node->lock.WriteUnlockObsolete();
          parent->lock.WriteUnlock();
          return;
        }
        // Node has room: lock it and append the path.
        if (!node->lock.UpgradeToWriteLock(version)) {
          restart = true;
          break;
        }
        void* tail = page;
        for (unsigned l = kMaxLevel; l > level; --l) {
          auto* link = static_cast<ArtNode*>(AllocNode(kNode4));
          link->AddChild(KeyByte(key, l), tail);
          tail = link;
        }
        node->AddChild(b, tail);
        node->lock.WriteUnlock();
        return;
      }
      if (level == kMaxLevel) {
        // Slot exists already: overwrite (used only by rebuilds/tests).
        if (!node->lock.UpgradeToWriteLock(version)) {
          restart = true;
          break;
        }
        switch (node->type) {
          case kNode4:
          case kNode16:
            for (unsigned i = 0; i < node->num_children; ++i) {
              if (node->keys[i] == b) node->children[i] = page;
            }
            break;
          case kNode48:
            node->children[node->child_index[b]] = page;
            break;
          default:
            node->children[b] = page;
            break;
        }
        node->lock.WriteUnlock();
        return;
      }
      parent = node;
      parent_version = version;
      node = static_cast<ArtNode*>(child);
      version = node->lock.ReadLockOrRestart(ok);
      if (!ok) {
        restart = true;
        break;
      }
      if (!parent->lock.CheckOrRestart(parent_version)) {
        restart = true;
        break;
      }
      ++level;
    }
    if (!restart) return;
  }
}

ArtBTree::LeafPage* ArtBTree::Floor(Key key) const {
  // Latch-free descent with version validation; maintains the deepest
  // fallback (node with a child byte below the search byte) for the
  // floor semantics. Restart on any conflict.
  for (;;) {
    ArtNode* node = root_;
    bool ok = false;
    uint64_t version = node->lock.ReadLockOrRestart(ok);
    if (!ok) continue;
    ArtNode* fb_node = nullptr;
    uint64_t fb_version = 0;
    int fb_byte = -1;
    unsigned fb_level = 0;
    bool restart = false;
    unsigned level = 0;
    for (;;) {
      const uint8_t b = KeyByte(key, level);
      void* exact = node->GetChild(b);
      const int lower = node->LowerByte(b);
      if (!node->lock.CheckOrRestart(version)) {
        restart = true;
        break;
      }
      if (lower >= 0) {
        fb_node = node;
        fb_version = version;
        fb_byte = lower;
        fb_level = level;
      }
      if (exact != nullptr) {
        if (level == kMaxLevel) return static_cast<LeafPage*>(exact);
        ArtNode* child = static_cast<ArtNode*>(exact);
        uint64_t child_version = child->lock.ReadLockOrRestart(ok);
        if (!ok || !node->lock.CheckOrRestart(version)) {
          restart = true;
          break;
        }
        node = child;
        version = child_version;
        ++level;
        continue;
      }
      // Dead end on the exact path: descend max-subtree of the fallback.
      if (fb_node == nullptr) return first_page_;
      void* cur = fb_node->GetChild(static_cast<uint8_t>(fb_byte));
      if (!fb_node->lock.CheckOrRestart(fb_version) || cur == nullptr) {
        restart = true;
        break;
      }
      unsigned l = fb_level;
      while (l < kMaxLevel) {
        ArtNode* n = static_cast<ArtNode*>(cur);
        uint64_t v = n->lock.ReadLockOrRestart(ok);
        if (!ok) {
          restart = true;
          break;
        }
        int mb = -1;
        if (n->GetChild(0xFF) != nullptr) {
          mb = 0xFF;
        } else {
          mb = n->LowerByte(0xFF);
        }
        cur = mb >= 0 ? n->GetChild(static_cast<uint8_t>(mb)) : nullptr;
        if (!n->lock.CheckOrRestart(v) || cur == nullptr) {
          restart = true;
          break;
        }
        ++l;
      }
      if (restart) break;
      return static_cast<LeafPage*>(cur);
    }
    if (!restart) return first_page_;
  }
}

ArtBTree::LeafPage* ArtBTree::LockPageFor(Key key) {
  for (;;) {
    LeafPage* page = Floor(key);
    page->latch.lock();
    if (key < page->low) {
      page->latch.unlock();
      continue;  // raced with a split; retry through the trie
    }
    // Walk right while the key belongs to a later page (hand-over-hand,
    // left-to-right order prevents deadlock).
    while (page->next != nullptr && key >= page->next->low) {
      LeafPage* next = page->next;
      next->latch.lock();
      page->latch.unlock();
      page = next;
    }
    return page;
  }
}

ArtBTree::LeafPage* ArtBTree::LockPageForShared(Key key) const {
  for (;;) {
    LeafPage* page = Floor(key);
    page->latch.lock_shared();
    if (key < page->low) {
      page->latch.unlock_shared();
      continue;
    }
    while (page->next != nullptr && key >= page->next->low) {
      LeafPage* next = page->next;
      next->latch.lock_shared();
      page->latch.unlock_shared();
      page = next;
    }
    return page;
  }
}

void ArtBTree::Insert(Key key, Value value) {
  LeafPage* page = LockPageFor(key);
  const size_t pos = page->LowerBound(key);
  if (pos < page->items.size() && page->items[pos].key == key) {
    page->items[pos].value = value;
    page->latch.unlock();
    return;
  }
  page->items.insert(page->items.begin() + static_cast<long>(pos),
                     Item{key, value});
  count_.fetch_add(1, std::memory_order_relaxed);
  if (page->items.size() > leaf_capacity_) {
    // Split: upper half moves to a fresh page; its low key goes into the
    // ART as a new separator.
    const size_t half = page->items.size() / 2;
    auto* fresh = new LeafPage(page->items[half].key);
    fresh->items.assign(page->items.begin() + static_cast<long>(half),
                        page->items.end());
    page->items.resize(half);
    fresh->next = page->next;
    page->next = fresh;
    {
      std::lock_guard<std::mutex> g(alloc_mu_);
      all_pages_.push_back(fresh);
    }
    TrieInsert(fresh->low, fresh);
  }
  page->latch.unlock();
}

void ArtBTree::Remove(Key key) {
  LeafPage* page = LockPageFor(key);
  const size_t pos = page->LowerBound(key);
  if (pos < page->items.size() && page->items[pos].key == key) {
    page->items.erase(page->items.begin() + static_cast<long>(pos));
    count_.fetch_sub(1, std::memory_order_relaxed);
  }
  page->latch.unlock();
}

bool ArtBTree::Find(Key key, Value* value) const {
  LeafPage* page = LockPageForShared(key);
  const size_t pos = page->LowerBound(key);
  const bool found =
      pos < page->items.size() && page->items[pos].key == key;
  if (found && value != nullptr) *value = page->items[pos].value;
  page->latch.unlock_shared();
  return found;
}

uint64_t ArtBTree::SumAll() const {
  uint64_t sum = 0;
  const LeafPage* page = first_page_;
  page->latch.lock_shared();
  while (page != nullptr) {
    LeafPage* next = page->next;
    if (next != nullptr) __builtin_prefetch(next, 0, 3);
    for (const Item& it : page->items) sum += it.value;
    if (next != nullptr) next->latch.lock_shared();
    page->latch.unlock_shared();
    page = next;
  }
  return sum;
}

void ArtBTree::Scan(Key min, Key max, const ScanCallback& cb) const {
  if (min > max) return;
  const LeafPage* page = LockPageForShared(min);
  size_t pos = page->LowerBound(min);
  while (page != nullptr) {
    for (; pos < page->items.size(); ++pos) {
      if (page->items[pos].key > max ||
          !cb(page->items[pos].key, page->items[pos].value)) {
        page->latch.unlock_shared();
        return;
      }
    }
    LeafPage* next = page->next;
    if (next != nullptr) {
      __builtin_prefetch(next, 0, 3);
      next->latch.lock_shared();
    }
    page->latch.unlock_shared();
    page = next;
    pos = 0;
  }
}

bool ArtBTree::CheckInvariants(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  size_t total = 0;
  Key prev = 0;
  bool have_prev = false;
  for (const LeafPage* p = first_page_; p != nullptr; p = p->next) {
    for (const Item& it : p->items) {
      if (it.key < p->low) return fail("item below page low fence");
      if (have_prev && it.key <= prev) {
        return fail("page chain keys not strictly increasing");
      }
      prev = it.key;
      have_prev = true;
      ++total;
    }
    if (p->next != nullptr && p->next->low <= p->low) {
      return fail("page low fences not increasing");
    }
  }
  if (total != count_.load()) return fail("element count mismatch");
  return true;
}

}  // namespace cpma
