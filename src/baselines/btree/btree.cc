#include "baselines/btree/btree.h"

#include <algorithm>

#include "common/status.h"

namespace cpma {

struct BTree::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
  const bool is_leaf;
  mutable FairSharedMutex latch;
};

struct BTree::Inner : BTree::Node {
  Inner() : Node(false) {}
  // children.size() == keys.size() + 1; child i covers keys < keys[i]
  // (and child keys.size() covers the rest).
  std::vector<Key> keys;
  std::vector<Node*> children;

  size_t ChildIndex(Key key) const {
    return static_cast<size_t>(
        std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
  }
};

struct BTree::Leaf : BTree::Node {
  Leaf() : Node(true) {}
  std::vector<Item> items;  // sorted by key
  Leaf* next = nullptr;

  size_t LowerBound(Key key) const {
    size_t lo = 0, hi = items.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (items[mid].key < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
};

BTree::BTree(size_t leaf_bytes, size_t inner_fanout)
    : leaf_capacity_(leaf_bytes / sizeof(Item)), inner_fanout_(inner_fanout) {
  CPMA_CHECK(leaf_capacity_ >= 4);
  CPMA_CHECK(inner_fanout_ >= 4);
  auto* leaf = new Leaf();
  leaf->items.reserve(leaf_capacity_);
  root_ = leaf;
  all_nodes_.push_back(root_);
}

BTree::~BTree() {
  for (Node* n : all_nodes_) delete n;
}

BTree::Leaf* BTree::DescendToLeafShared(Key key) const {
  root_latch_.lock_shared();
  Node* cur = root_;
  cur->latch.lock_shared();
  root_latch_.unlock_shared();
  while (!cur->is_leaf) {
    auto* inner = static_cast<Inner*>(cur);
    Node* child = inner->children[inner->ChildIndex(key)];
    child->latch.lock_shared();
    cur->latch.unlock_shared();
    cur = child;
  }
  return static_cast<Leaf*>(cur);
}

bool BTree::Find(Key key, Value* value) const {
  Leaf* leaf = DescendToLeafShared(key);
  const size_t pos = leaf->LowerBound(key);
  const bool found =
      pos < leaf->items.size() && leaf->items[pos].key == key;
  if (found && value != nullptr) *value = leaf->items[pos].value;
  leaf->latch.unlock_shared();
  return found;
}

BTree::Leaf* BTree::DescendToLeafExclusive(
    Key key, std::vector<Inner*>* locked_path, bool* root_held) {
  // Exclusive latch coupling with early release at "safe" nodes (no
  // split possible below them).
  root_latch_.lock();
  *root_held = true;
  Node* cur = root_;
  cur->latch.lock();
  auto release_ancestors = [&] {
    for (Inner* n : *locked_path) n->latch.unlock();
    locked_path->clear();
    if (*root_held) {
      root_latch_.unlock();
      *root_held = false;
    }
  };
  while (!cur->is_leaf) {
    auto* inner = static_cast<Inner*>(cur);
    if (inner->children.size() + 1 <= inner_fanout_) {
      // Inner has room for one more child: splits cannot propagate past
      // it, so everything above is releasable.
      release_ancestors();
    }
    locked_path->push_back(inner);
    Node* child = inner->children[inner->ChildIndex(key)];
    child->latch.lock();
    cur = child;
  }
  auto* leaf = static_cast<Leaf*>(cur);
  if (leaf->items.size() + 1 < leaf_capacity_) release_ancestors();
  return leaf;
}

void BTree::Insert(Key key, Value value) {
  std::vector<Inner*> path;
  bool root_held = false;
  Leaf* leaf = DescendToLeafExclusive(key, &path, &root_held);
  const size_t pos = leaf->LowerBound(key);
  if (pos < leaf->items.size() && leaf->items[pos].key == key) {
    leaf->items[pos].value = value;  // upsert
  } else {
    leaf->items.insert(leaf->items.begin() + static_cast<long>(pos),
                       Item{key, value});
    count_.fetch_add(1, std::memory_order_relaxed);
    if (leaf->items.size() >= leaf_capacity_) {
      SplitLeaf(leaf, &path, root_held);
      // SplitLeaf released everything.
      return;
    }
  }
  for (Inner* n : path) n->latch.unlock();
  if (root_held) root_latch_.unlock();
  leaf->latch.unlock();
}

void BTree::SplitLeaf(Leaf* leaf, std::vector<Inner*>* locked_path,
                      bool root_held) {
  auto* fresh = new Leaf();
  {
    std::lock_guard<std::mutex> g(alloc_mu_);
    all_nodes_.push_back(fresh);
  }
  const size_t half = leaf->items.size() / 2;
  fresh->items.assign(leaf->items.begin() + static_cast<long>(half),
                      leaf->items.end());
  leaf->items.resize(half);
  fresh->next = leaf->next;
  leaf->next = fresh;
  Key sep = fresh->items[0].key;
  Node* left = leaf;
  Node* right = fresh;

  // Bubble the separator up the locked path, splitting inners as needed.
  while (!locked_path->empty()) {
    Inner* parent = locked_path->back();
    locked_path->pop_back();
    const size_t idx = parent->ChildIndex(sep);
    parent->keys.insert(parent->keys.begin() + static_cast<long>(idx), sep);
    parent->children.insert(
        parent->children.begin() + static_cast<long>(idx) + 1, right);
    if (parent->children.size() <= inner_fanout_) {
      parent->latch.unlock();
      for (Inner* n : *locked_path) n->latch.unlock();
      locked_path->clear();
      left = nullptr;
      break;
    }
    // Split the inner: middle key moves up.
    auto* fresh_inner = new Inner();
    {
      std::lock_guard<std::mutex> g(alloc_mu_);
      all_nodes_.push_back(fresh_inner);
    }
    const size_t mid = parent->keys.size() / 2;
    sep = parent->keys[mid];
    fresh_inner->keys.assign(parent->keys.begin() + static_cast<long>(mid) + 1,
                             parent->keys.end());
    fresh_inner->children.assign(
        parent->children.begin() + static_cast<long>(mid) + 1,
        parent->children.end());
    parent->keys.resize(mid);
    parent->children.resize(mid + 1);
    left = parent;
    right = fresh_inner;
    parent->latch.unlock();
  }
  if (left != nullptr) {
    // The split propagated to the root (the root latch is still held).
    CPMA_CHECK(root_held);
    auto* new_root = new Inner();
    {
      std::lock_guard<std::mutex> g(alloc_mu_);
      all_nodes_.push_back(new_root);
    }
    new_root->keys.push_back(sep);
    new_root->children.push_back(left);
    new_root->children.push_back(right);
    root_ = new_root;
  }
  if (root_held) root_latch_.unlock();
  leaf->latch.unlock();
}

void BTree::Remove(Key key) {
  // Lazy deletion: only the leaf changes, never the structure, so a
  // single exclusive leaf latch suffices.
  root_latch_.lock_shared();
  Node* cur = root_;
  if (cur->is_leaf) {
    cur->latch.lock();
    root_latch_.unlock_shared();
  } else {
    cur->latch.lock_shared();
    root_latch_.unlock_shared();
    for (;;) {
      auto* inner = static_cast<Inner*>(cur);
      Node* child = inner->children[inner->ChildIndex(key)];
      if (child->is_leaf) {
        child->latch.lock();
      } else {
        child->latch.lock_shared();
      }
      cur->latch.unlock_shared();
      cur = child;
      if (cur->is_leaf) break;
    }
  }
  auto* leaf = static_cast<Leaf*>(cur);
  const size_t pos = leaf->LowerBound(key);
  if (pos < leaf->items.size() && leaf->items[pos].key == key) {
    leaf->items.erase(leaf->items.begin() + static_cast<long>(pos));
    count_.fetch_sub(1, std::memory_order_relaxed);
  }
  leaf->latch.unlock();
}

uint64_t BTree::SumAll() const {
  uint64_t sum = 0;
  Leaf* leaf = DescendToLeafShared(kKeyMin);
  while (leaf != nullptr) {
    Leaf* next = leaf->next;
    if (next != nullptr) {
      // The paper issues explicit prefetches for leaf traversals.
      __builtin_prefetch(next, 0, 3);
      __builtin_prefetch(next->items.data(), 0, 3);
    }
    for (const Item& it : leaf->items) sum += it.value;
    if (next != nullptr) next->latch.lock_shared();  // latch coupling
    leaf->latch.unlock_shared();
    leaf = next;
  }
  return sum;
}

void BTree::Scan(Key min, Key max, const ScanCallback& cb) const {
  if (min > max) return;
  Leaf* leaf = DescendToLeafShared(min);
  size_t pos = leaf->LowerBound(min);
  while (leaf != nullptr) {
    for (; pos < leaf->items.size(); ++pos) {
      if (leaf->items[pos].key > max || !cb(leaf->items[pos].key,
                                            leaf->items[pos].value)) {
        leaf->latch.unlock_shared();
        return;
      }
    }
    Leaf* next = leaf->next;
    if (next != nullptr) {
      __builtin_prefetch(next, 0, 3);
      next->latch.lock_shared();
    }
    leaf->latch.unlock_shared();
    leaf = next;
    pos = 0;
  }
}

bool BTree::CheckInvariants(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  // Walk the leaf chain from the leftmost leaf.
  const Node* cur = root_;
  while (!cur->is_leaf) {
    cur = static_cast<const Inner*>(cur)->children[0];
  }
  const Leaf* leaf = static_cast<const Leaf*>(cur);
  size_t total = 0;
  Key prev = 0;
  bool have_prev = false;
  while (leaf != nullptr) {
    for (const Item& it : leaf->items) {
      if (have_prev && it.key <= prev) {
        return fail("leaf chain keys not strictly increasing");
      }
      prev = it.key;
      have_prev = true;
      ++total;
    }
    leaf = leaf->next;
  }
  if (total != count_.load()) return fail("element count mismatch");
  return true;
}

}  // namespace cpma
