// Concurrent B+-tree with latch coupling — the "custom B+Tree" of the
// paper's ART/B+tree competitor (§4): leaves are 4 KiB pages (configurable
// to 8 KiB for the ablation), linked for range scans with explicit
// prefetch of the next leaf; concurrency is conventional lock coupling
// (Silberschatz et al. [30] as cited by the paper).
//
// Simplifications kept deliberately (documented in DESIGN.md):
// deletions are lazy — elements are removed from leaves but nodes are
// never merged or freed until the tree is destroyed. The paper itself
// observes that deletions are "generally a more complex and slower
// operation on trees"; lazy deletion errs in the trees' favour.

#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/latches.h"
#include "common/ordered_map.h"
#include "pma/item.h"

namespace cpma {

class BTree : public OrderedMap {
 public:
  /// leaf_bytes: leaf page size (4096 in the paper, 8192 in the §4.1
  /// ablation). inner_fanout: separators per inner node.
  explicit BTree(size_t leaf_bytes = 4096, size_t inner_fanout = 64);
  ~BTree() override;

  void Insert(Key key, Value value) override;
  void Remove(Key key) override;
  bool Find(Key key, Value* value) const override;
  uint64_t SumAll() const override;
  void Scan(Key min, Key max, const ScanCallback& cb) const override;
  size_t Size() const override {
    return count_.load(std::memory_order_relaxed);
  }
  std::string Name() const override {
    return "BTree(leaf=" + std::to_string(leaf_capacity_ * sizeof(Item)) +
           "B)";
  }

  size_t leaf_capacity() const { return leaf_capacity_; }

  /// Structural validation (quiescent): sortedness, leaf-chain order,
  /// separator consistency, element count.
  bool CheckInvariants(std::string* error) const;

 private:
  struct Node;
  struct Inner;
  struct Leaf;

  Leaf* DescendToLeafShared(Key key) const;  // returns leaf latched shared
  // Exclusive descent with early release at safe nodes; *root_held
  // reports whether the root latch is still owned on return.
  Leaf* DescendToLeafExclusive(Key key, std::vector<Inner*>* locked_path,
                               bool* root_held);
  void SplitLeaf(Leaf* leaf, std::vector<Inner*>* locked_path,
                 bool root_held);

  size_t leaf_capacity_;
  size_t inner_fanout_;
  mutable FairSharedMutex root_latch_;
  Node* root_;
  std::atomic<size_t> count_{0};
  std::vector<Node*> all_nodes_;  // for destruction (guarded by alloc_mu_)
  std::mutex alloc_mu_;
};

}  // namespace cpma
