// Element stored in the packed memory array: an 8-byte key / 8-byte
// value pair, exactly the element type used in the paper's evaluation.

#pragma once

#include "common/ordered_map.h"

namespace cpma {

struct Item {
  Key key;
  Value value;
};

static_assert(sizeof(Item) == 16, "Item must stay 16 bytes (scan locality)");

/// Sentinel key used internally for routing tables; never stored.
/// Public API keys must lie in [kKeyMin, kKeyMax] with
/// kKeyMax = UINT64_MAX - 1 (see ordered_map.h).
constexpr Key kKeySentinel = UINT64_MAX;

/// One canonical update of a batch (paper §3.5): sorted by key, unique
/// keys, deletions and upserts mixed. Lives next to Item so the hot-path
/// merge kernels can consume batches without depending on the spread
/// layer (see common/hotpath/merge.h and pma/spread.h).
struct BatchEntry {
  Key key;
  Value value;
  bool is_delete;
  /// Enqueue sequence of the winning GateOp (ISSUE 5): carried through
  /// batch canonicalization so a remainder that is re-queued after a
  /// partial application competes against fresh ops under its original
  /// stamp, not a fabricated one. 0 for entries built outside the async
  /// dispatch layer (tests, benches) — a stamped op always wins over 0.
  uint64_t seq = 0;
};

}  // namespace cpma
