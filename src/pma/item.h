// Element stored in the packed memory array: an 8-byte key / 8-byte
// value pair, exactly the element type used in the paper's evaluation.

#pragma once

#include "common/ordered_map.h"

namespace cpma {

struct Item {
  Key key;
  Value value;
};

static_assert(sizeof(Item) == 16, "Item must stay 16 bytes (scan locality)");

/// Sentinel key used internally for routing tables; never stored.
/// Public API keys must lie in [kKeyMin, kKeyMax] with
/// kKeyMax = UINT64_MAX - 1 (see ordered_map.h).
constexpr Key kKeySentinel = UINT64_MAX;

}  // namespace cpma
