#include "pma/storage.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "common/failpoint.h"

namespace cpma {

bool Storage::Init(size_t num_segments, size_t segment_capacity,
                   bool use_rewiring, Status* status) {
  CPMA_CHECK(num_segments >= 1);
  CPMA_CHECK(segment_capacity >= 4);
  num_segments_ = num_segments;
  segment_capacity_ = segment_capacity;
  if (CPMA_FAILPOINT("storage.create")) {
    *status = Status::ResourceExhausted("injected storage.create failure");
    return false;
  }
  const size_t bytes = capacity() * sizeof(Item);
  region_ = RewiredRegion::Create(bytes, bytes, /*want_huge_pages=*/true,
                                  status);
  if (region_ == nullptr) return false;
  // With use_rewiring == false, SwapWindow always takes the memcpy path,
  // which lets benchmarks compare rewired vs copy-based rebalancing.
  force_copy_ = !use_rewiring;
  items_ = reinterpret_cast<Item*>(region_->data());
  buffer_ = reinterpret_cast<Item*>(region_->buffer());
  try {
    card_.assign(num_segments_, 0);
    route_.assign(num_segments_, kKeySentinel);
    inserts_.assign(num_segments_, 0);
  } catch (const std::bad_alloc&) {
    *status = Status::ResourceExhausted(
        "Storage metadata allocation failed (" +
        std::to_string(num_segments_) + " segments)");
    return false;
  }
  route_[0] = kKeyMin;
  *status = Status::OK();
  return true;
}

Storage::Storage(size_t num_segments, size_t segment_capacity,
                 bool use_rewiring) {
  Status st;
  if (!Init(num_segments, segment_capacity, use_rewiring, &st)) {
    CPMA_CHECK_MSG(false, st.ToString().c_str());
  }
}

std::unique_ptr<Storage> Storage::TryCreate(size_t num_segments,
                                            size_t segment_capacity,
                                            bool use_rewiring,
                                            Status* status) {
  auto s = std::unique_ptr<Storage>(new (std::nothrow) Storage());
  if (s == nullptr) {
    *status = Status::ResourceExhausted("Storage object allocation failed");
    return nullptr;
  }
  if (!s->Init(num_segments, segment_capacity, use_rewiring, status)) {
    return nullptr;
  }
  return s;
}

size_t Storage::RouteSegment(Key key) const {
  // upper_bound returns the first route > key; the target segment is the
  // one before it. route_[0] == kKeyMin <= key always, so idx >= 1.
  //
  // Deliberately branchy (PR 2 A/B'd a branchless cmov upper bound here
  // and dropped it): the route array outgrows L1 (128 KiB at 16k
  // segments), where a cmov chain serializes one cache miss per level,
  // while a predicted branch speculates ahead and overlaps the loads —
  // and wins on ascending/zipf patterns outright. Contrast with the
  // in-cache segment kernels in common/hotpath/search.h.
  auto it = std::upper_bound(route_.begin(), route_.end(), key);
  return static_cast<size_t>(it - route_.begin()) - 1;
}

void Storage::SwapWindow(size_t seg_begin, size_t seg_end) {
  CPMA_CHECK(seg_begin < seg_end && seg_end <= num_segments_);
  const size_t off = seg_begin * segment_bytes();
  const size_t len = (seg_end - seg_begin) * segment_bytes();
#if !CPMA_TSAN
  if (!force_copy_ && region_->CanSwap(off, off, len)) {
    region_->SwapPages(off, off, len);
    return;
  }
#endif
  // Copy publish (alignment forbids a remap, use_rewiring=false, or a
  // TSan build). The destination races with optimistic readers, so the
  // copy is tagged (plain memcpy in production, per-word atomics under
  // TSan — common/tagged.h). Under TSan the remap publish is disabled
  // outright: the interceptor models mmap(MAP_FIXED) as a plain write
  // to the whole range, and a page exchange cannot be expressed as
  // atomics — readers racing a remap see either the old or the new
  // page image, word-atomically either way, and validation discards
  // the window; the instrumented build proves exactly that protocol on
  // the copy mechanism (the remap mechanism itself stays covered by
  // the unit/asan rewiring suites).
  TaggedCopyWords(reinterpret_cast<char*>(items_) + off,
                  reinterpret_cast<char*>(buffer_) + off, len);
}

void Storage::RebuildRoutes(size_t seg_begin, size_t seg_end) {
  for (size_t s = seg_begin; s < seg_end; ++s) {
    if (s == 0) {
      set_route(0, kKeyMin);
    } else if (card(s) > 0) {
      set_route(s, segment(s)[0].key);
    } else {
      set_route(s, kKeySentinel);
    }
  }
}

}  // namespace cpma
