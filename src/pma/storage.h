// Physical storage of a packed memory array.
//
// Layout: one contiguous (rewirable) region of num_segments * B items.
// Elements inside a segment are left-packed and sorted; gaps occupy the
// tail of each segment. Per-segment metadata lives in dense side arrays:
//
//  - card[s]:   number of live elements in segment s
//  - route[s]:  routing key — the minimum key of segment s when card > 0,
//               kKeyMin for segment 0, kKeySentinel for (suffix) empty
//               segments. Strictly non-decreasing; an upper-bound search
//               over route[] yields the unique segment that may contain a
//               key. Empty segments can only form a suffix and only when
//               the total cardinality is below the number of segments.
//  - inserts[s]: decayed insertion counter driving adaptive rebalancing.
//
// The region owns an equally sized buffer. Rebalances write the new
// layout into the buffer and publish it with SwapWindow(), which rewires
// page mappings when alignment permits and falls back to one memcpy
// otherwise (see rewiring/rewiring.h).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/tagged.h"
#include "pma/item.h"
#include "rewiring/rewiring.h"

namespace cpma {

class Storage {
 public:
  /// Aborts on allocation failure (callers that cannot degrade: tests,
  /// the sequential PMA, initial snapshot construction).
  Storage(size_t num_segments, size_t segment_capacity, bool use_rewiring);

  /// Fallible variant for callers with a degradation path (the
  /// rebalancer's resize). Returns nullptr with `status` set to
  /// ResourceExhausted when the region or metadata allocation fails (or
  /// the storage.create failpoint fires); never aborts.
  static std::unique_ptr<Storage> TryCreate(size_t num_segments,
                                            size_t segment_capacity,
                                            bool use_rewiring, Status* status);

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  size_t num_segments() const { return num_segments_; }
  size_t segment_capacity() const { return segment_capacity_; }
  size_t capacity() const { return num_segments_ * segment_capacity_; }

  Item* segment(size_t s) { return items_ + s * segment_capacity_; }
  const Item* segment(size_t s) const { return items_ + s * segment_capacity_; }
  Item* buffer_segment(size_t s) { return buffer_ + s * segment_capacity_; }

  // Cardinalities and routing keys are read by optimistic (latch-free)
  // readers while a latched writer stores them, so every access goes
  // through the tagged relaxed-atomic helpers (common/tagged.h) — the
  // same plain mov in production, visible-as-atomic under TSan. A torn
  // concurrent read returns some previously stored word: card stays
  // <= segment_capacity and route indexes stay in the chunk, and the
  // gate version validation discards the unstable window.
  uint32_t card(size_t s) const { return TaggedLoad(&card_[s]); }
  void set_card(size_t s, uint32_t c) { TaggedStore(&card_[s], c); }

  Key route(size_t s) const { return TaggedLoad(&route_[s]); }
  void set_route(size_t s, Key k) { TaggedStore(&route_[s], k); }
  const std::vector<Key>& routes() const { return route_; }

  uint32_t insert_count(size_t s) const { return inserts_[s]; }
  void bump_insert_count(size_t s) { ++inserts_[s]; }
  void set_insert_count(size_t s, uint32_t c) { inserts_[s] = c; }

  /// Rightmost segment whose routing key is <= key. Always a valid,
  /// non-empty segment (or segment 0 when the array is empty).
  size_t RouteSegment(Key key) const;

  /// Publish buffer[seg_begin, seg_end) into the live region (rewire or
  /// copy). Segment-granular; see class comment.
  void SwapWindow(size_t seg_begin, size_t seg_end);

  /// Recompute route[] entries for segments in [seg_begin, seg_end) from
  /// the live data (used after rebalances).
  void RebuildRoutes(size_t seg_begin, size_t seg_end);

  bool rewiring_enabled() const { return region_->rewiring_enabled(); }
  uint64_t num_remaps() const { return region_->num_remaps(); }
  uint64_t num_fallback_copies() const {
    return region_->num_fallback_copies();
  }
  uint64_t num_remap_failures() const {
    return region_->num_remap_failures();
  }

  /// True when publishes go through the copy path rather than zero-copy
  /// remaps: anonymous fallback backend, use_rewiring=false, or a region
  /// that degraded after a remap failure.
  bool fallback_backend_active() const {
    return force_copy_ || !region_->rewiring_enabled();
  }
  size_t page_bytes() const { return region_->page_bytes(); }
  size_t backing_page_bytes() const { return region_->backing_page_bytes(); }

  /// Total bytes of one segment.
  size_t segment_bytes() const { return segment_capacity_ * sizeof(Item); }

  // --------------------------------------------------- COW snapshots
  // Thin passthroughs to the region's snapshot-view layer (ISSUE 9).
  // Offsets are item indices; the region works in bytes.

  /// Point-in-time read-only view of the item region; nullptr (with
  /// `status`) when the backend can't support one — callers degrade to
  /// heap copies. The view's byte at offset i*sizeof(Item) images
  /// items_[i].
  std::unique_ptr<RewiredRegion::SnapshotView> CreateSnapshotView(
      Status* status = nullptr) {
    return region_->CreateSnapshotView(status);
  }

  /// Freeze the view's image of the page-aligned interior of items
  /// [item_begin, item_end); see RewiredRegion::CowPreserveRange.
  RewiredRegion::CowResult CowPreserveItems(
      const RewiredRegion::SnapshotView& view, size_t item_begin,
      size_t item_end) {
    return region_->CowPreserveRange(view, item_begin * sizeof(Item),
                                     (item_end - item_begin) * sizeof(Item));
  }

  uint64_t snapshot_views_open() const { return region_->snapshot_views_open(); }
  uint64_t cow_page_copies() const { return region_->cow_page_copies(); }
  uint64_t cow_retained_page_bytes() const {
    return region_->cow_retained_page_bytes();
  }

 private:
  // Uninitialized shell for TryCreate; Init() does the real work.
  Storage() = default;
  bool Init(size_t num_segments, size_t segment_capacity, bool use_rewiring,
            Status* status);

  size_t num_segments_;
  size_t segment_capacity_;
  std::unique_ptr<RewiredRegion> region_;
  Item* items_;
  Item* buffer_;
  std::vector<uint32_t> card_;
  std::vector<Key> route_;
  std::vector<uint32_t> inserts_;
  bool force_copy_ = false;
};

}  // namespace cpma
