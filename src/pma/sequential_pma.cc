#include "pma/sequential_pma.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/hotpath/copy.h"
#include "common/hotpath/search.h"
#include "pma/spread.h"

namespace cpma {

// One tested lower bound for every segment search (hot-path subsystem,
// ISSUE 2) instead of a per-TU scalar copy.
using hotpath::SegmentLowerBound;

SequentialPMA::SequentialPMA(const PmaConfig& config) : config_(config) {
  CPMA_CHECK(IsPowerOfTwo(config_.segment_capacity));
  CPMA_CHECK(config_.segment_capacity >= 4);
  CPMA_CHECK(IsPowerOfTwo(config_.initial_num_segments));
  CPMA_CHECK(config_.initial_num_segments >= 2);
  storage_ = std::make_unique<Storage>(config_.initial_num_segments,
                                       config_.segment_capacity,
                                       config_.use_rewiring);
}

void SequentialPMA::Insert(Key key, Value value) {
  CPMA_CHECK_MSG(key <= kKeyMax, "key out of domain (UINT64_MAX reserved)");
  size_t s = storage_->RouteSegment(key);
  Item* seg = storage_->segment(s);
  uint32_t card = storage_->card(s);
  size_t pos = hotpath::SegmentLowerBoundForUpdate(seg, card, key);
  if (pos < card && seg[pos].key == key) {
    seg[pos].value = value;  // upsert
    return;
  }
  int attempts = 0;
  while (card == storage_->segment_capacity()) {
    CPMA_CHECK_MSG(++attempts <= 4, "rebalance failed to free a slot");
    RebalanceForInsert(s);
    s = storage_->RouteSegment(key);
    seg = storage_->segment(s);
    card = storage_->card(s);
    pos = hotpath::SegmentLowerBoundForUpdate(seg, card, key);
  }
  std::memmove(seg + pos + 1, seg + pos, (card - pos) * sizeof(Item));
  seg[pos] = {key, value};
  storage_->set_card(s, card + 1);
  if (pos == 0 && s > 0) storage_->set_route(s, key);
  storage_->bump_insert_count(s);
  ++count_;
}

void SequentialPMA::Remove(Key key) {
  size_t s = storage_->RouteSegment(key);
  Item* seg = storage_->segment(s);
  uint32_t card = storage_->card(s);
  size_t pos = hotpath::SegmentLowerBoundForUpdate(seg, card, key);
  if (pos >= card || seg[pos].key != key) return;  // not present
  std::memmove(seg + pos, seg + pos + 1, (card - pos - 1) * sizeof(Item));
  storage_->set_card(s, card - 1);
  --count_;
  if (pos == 0 && s > 0) {
    storage_->set_route(s, card > 1 ? seg[0].key : kKeySentinel);
  }

  // Global shrink check (paper relaxes the lower thresholds and downsizes
  // on overall density; see PmaConfig::shrink_density).
  if (count_ < static_cast<size_t>(config_.shrink_density *
                                   static_cast<double>(capacity())) &&
      num_segments() > 2) {
    Resize(SegmentsForCount(count_));
    return;
  }

  const bool empty_violation = storage_->card(s) == 0;
  bool strict_violation = false;
  if (!config_.relax_lower) {
    DensityBounds bounds(config_, num_segments());
    strict_violation =
        static_cast<double>(storage_->card(s)) <
        bounds.Rho(0) * static_cast<double>(storage_->segment_capacity());
  }
  if ((empty_violation || strict_violation) && count_ > 0) {
    RebalanceForDelete(s);
  } else if (empty_violation && s > 0) {
    storage_->set_route(s, kKeySentinel);
  }
}

bool SequentialPMA::Find(Key key, Value* value) const {
  size_t s = storage_->RouteSegment(key);
  const Item* seg = storage_->segment(s);
  uint32_t card = storage_->card(s);
  size_t pos = SegmentLowerBound(seg, card, key);
  if (pos < card && seg[pos].key == key) {
    if (value != nullptr) *value = seg[pos].value;
    return true;
  }
  return false;
}

uint64_t SequentialPMA::SumAll() const {
  uint64_t sum = 0;
  const size_t n = num_segments();
  for (size_t s = 0; s < n; ++s) {
    if (s + 1 < n) {
      hotpath::PrefetchSegment(storage_->segment(s + 1),
                               storage_->card(s + 1));
    }
    const Item* seg = storage_->segment(s);
    const uint32_t card = storage_->card(s);
    for (uint32_t i = 0; i < card; ++i) sum += seg[i].value;
  }
  return sum;
}

void SequentialPMA::Scan(Key min, Key max, const ScanCallback& cb) const {
  if (min > max) return;
  const size_t first = storage_->RouteSegment(min);
  const size_t n = num_segments();
  for (size_t s = first; s < n; ++s) {
    if (s + 1 < n) {
      hotpath::PrefetchSegment(storage_->segment(s + 1),
                               storage_->card(s + 1));
    }
    const Item* seg = storage_->segment(s);
    const uint32_t card = storage_->card(s);
    uint32_t i = (s == first)
                     ? static_cast<uint32_t>(SegmentLowerBound(seg, card, min))
                     : 0;
    for (; i < card; ++i) {
      if (seg[i].key > max) return;
      if (!cb(seg[i].key, seg[i].value)) return;
    }
  }
}

void SequentialPMA::RebalanceForInsert(size_t seg) {
  DensityBounds bounds(config_, num_segments());
  const size_t B = storage_->segment_capacity();
  for (size_t level = 1; level <= bounds.root_level(); ++level) {
    size_t begin, end;
    WindowAt(seg, level, &begin, &end);
    size_t m = 0;
    for (size_t s = begin; s < end; ++s) m += storage_->card(s);
    const size_t cap = (end - begin) * B;
    const double delta = static_cast<double>(m) / static_cast<double>(cap);
    // Besides the density threshold, require one gap per segment so the
    // spread can leave room in whichever segment the key lands in.
    if (delta <= bounds.Tau(level) && m + (end - begin) <= cap) {
      ++num_rebalances_;
      WindowPlan plan = PlanSpread(*storage_, begin, end, config_.adaptive,
                                   /*trigger_seg=*/seg);
      CopyPartitionToBuffer(storage_.get(), plan, begin, end);
      FinishSpread(storage_.get(), plan);
      return;
    }
  }
  // Even the root is beyond threshold: grow.
  Resize(SegmentsForCount(count_ + 1));
}

void SequentialPMA::RebalanceForDelete(size_t seg) {
  DensityBounds bounds(config_, num_segments());
  const size_t B = storage_->segment_capacity();
  const size_t root = bounds.root_level();
  for (size_t level = 1; level <= root; ++level) {
    size_t begin, end;
    WindowAt(seg, level, &begin, &end);
    size_t m = 0;
    for (size_t s = begin; s < end; ++s) m += storage_->card(s);
    const size_t nsegs = end - begin;
    const double delta =
        static_cast<double>(m) / static_cast<double>(nsegs * B);
    const bool enough = m >= nsegs && delta >= bounds.Rho(level);
    // At the root there is no further level; spread unconditionally (the
    // global shrink check already ran, so this is the minimum-capacity
    // tail case where a suffix of empty segments is acceptable).
    if (enough || level == root) {
      ++num_rebalances_;
      WindowPlan plan = PlanSpread(*storage_, begin, end, config_.adaptive,
                                   SIZE_MAX);
      CopyPartitionToBuffer(storage_.get(), plan, begin, end);
      FinishSpread(storage_.get(), plan);
      return;
    }
  }
}

void SequentialPMA::Resize(size_t new_num_segments) {
  CPMA_CHECK(IsPowerOfTwo(new_num_segments) && new_num_segments >= 2);
  ++num_resizes_;
  auto fresh = std::make_unique<Storage>(new_num_segments,
                                         config_.segment_capacity,
                                         config_.use_rewiring);
  // Targets for the fresh array: even spread (resizes always use the
  // traditional policy; the predictor is reset).
  const size_t n = new_num_segments;
  const size_t m = count_;
  std::vector<uint32_t> target(n, 0);
  if (m < n) {
    for (size_t j = 0; j < m; ++j) target[j] = 1;
  } else {
    for (size_t j = 0; j < n; ++j) {
      target[j] = static_cast<uint32_t>(m / n + (j < m % n ? 1 : 0));
    }
  }
  // Stream old live elements into the new region in order, a run at a
  // time (two-pointer repack, same idiom as the spread's
  // CopyPartitionToBuffer) instead of item-by-item: resizes copy every
  // element, so they sit on the insert path's amortized cost. Regions
  // beyond the LLC use the non-temporal copy kernel (hotpath/copy.h).
  const bool stream = hotpath::StreamCopyPreferred(
      n * config_.segment_capacity * sizeof(Item));
  size_t out_seg = 0;
  uint32_t out_pos = 0;
  const size_t old_n = storage_->num_segments();
  for (size_t s = 0; s < old_n; ++s) {
    const Item* seg = storage_->segment(s);
    uint32_t in_pos = 0;
    const uint32_t card = storage_->card(s);
    while (in_pos < card) {
      while (out_seg < n && out_pos >= target[out_seg]) {
        ++out_seg;
        out_pos = 0;
      }
      CPMA_CHECK(out_seg < n);
      const uint32_t chunk =
          std::min(card - in_pos, target[out_seg] - out_pos);
      hotpath::CopyItems(fresh->segment(out_seg) + out_pos, seg + in_pos,
                         chunk, stream);
      in_pos += chunk;
      out_pos += chunk;
    }
  }
  hotpath::StreamCopyFlush(stream);
  for (size_t j = 0; j < n; ++j) fresh->set_card(j, target[j]);
  fresh->RebuildRoutes(0, n);
  storage_ = std::move(fresh);
}

size_t SequentialPMA::SegmentsForCount(size_t count) const {
  const size_t B = storage_->segment_capacity();
  size_t segs = 2;
  while (static_cast<double>(count) >
         0.6 * static_cast<double>(segs) * static_cast<double>(B)) {
    segs *= 2;
  }
  return segs;
}

bool SequentialPMA::CheckInvariants(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  const size_t n = num_segments();
  const size_t B = storage_->segment_capacity();
  size_t total = 0;
  Key prev = 0;
  bool have_prev = false;
  bool seen_empty = false;
  for (size_t s = 0; s < n; ++s) {
    const uint32_t card = storage_->card(s);
    if (card > B) return fail("cardinality exceeds segment capacity");
    if (card == 0) {
      seen_empty = true;
      if (storage_->route(s) != kKeySentinel && s != 0) {
        return fail("empty segment without sentinel route");
      }
      continue;
    }
    if (seen_empty) return fail("non-empty segment after an empty one");
    const Item* seg = storage_->segment(s);
    for (uint32_t i = 0; i < card; ++i) {
      if (have_prev && seg[i].key <= prev) {
        return fail("keys not strictly increasing");
      }
      prev = seg[i].key;
      have_prev = true;
    }
    if (s > 0 && storage_->route(s) != seg[0].key) {
      return fail("routing key mismatch");
    }
    total += card;
  }
  if (storage_->route(0) != kKeyMin) return fail("segment 0 route != min");
  if (total != count_) return fail("element count mismatch");
  if (seen_empty && total >= n) {
    return fail("empty segment although count >= #segments");
  }
  return true;
}

std::string SequentialPMA::DebugDumpCalibratorTree() const {
  std::ostringstream os;
  DensityBounds bounds(config_, num_segments());
  const size_t B = storage_->segment_capacity();
  os << "calibrator tree: " << num_segments() << " segments x " << B
     << " slots, height " << bounds.height() << ", " << count_
     << " elements\n";
  for (size_t level = bounds.root_level() + 1; level-- > 0;) {
    const size_t w = size_t{1} << level;
    os << "  level " << level << " (rho=" << bounds.Rho(level)
       << ", tau=" << bounds.Tau(level) << "): ";
    for (size_t begin = 0; begin < num_segments(); begin += w) {
      size_t m = 0;
      for (size_t s = begin; s < begin + w; ++s) m += storage_->card(s);
      os << "[" << static_cast<double>(m) / static_cast<double>(w * B) << "] ";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace cpma
