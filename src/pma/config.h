// Tunables of the packed memory array (paper §2 and §4 configuration).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cpma {

struct PmaConfig {
  /// Slots per segment (B in the paper; 128 in the evaluation, ablation
  /// uses 256). Must be a power of two >= 4.
  size_t segment_capacity = 128;

  /// Density thresholds 0 <= rho_leaf < rho_root <= tau_root < tau_leaf <= 1
  /// (rho_1, rho_h, tau_h, tau_1 in the paper). Defaults are the paper's:
  /// rho_1 = 0.5, tau_1 = 1, rho_h = tau_h = 0.75.
  double rho_leaf = 0.5;
  double rho_root = 0.75;
  double tau_root = 0.75;
  double tau_leaf = 1.0;

  /// Paper §4: "we relax the lower threshold to rho_1 = 0". When true,
  /// deletions only trigger a local rebalance when a segment would become
  /// empty (we keep >= 1 element per segment whenever N >= #segments so
  /// that routing stays well-defined), and the array shrinks only on the
  /// global density check below.
  bool relax_lower = true;

  /// Global density below which the array is downsized. The paper states
  /// 50%; combined with power-of-two capacity halving/doubling that value
  /// would oscillate (doubling lands at 37.5%), so we use 0.3 as the
  /// hysteresis point (documented in DESIGN.md).
  double shrink_density = 0.3;

  /// Adaptive rebalancing (Bender & Hu; paper §2 "Adaptive rebalancing").
  /// Gaps are allocated proportionally to recent insertion activity.
  bool adaptive = true;

  /// Use mmap-based memory rewiring for rebalances when available.
  bool use_rewiring = true;

  /// Initial number of segments (power of two, >= 2).
  size_t initial_num_segments = 2;
};

struct ConcurrentConfig {
  PmaConfig pma;

  /// Segments per gate (paper §4: 8).
  size_t segments_per_gate = 8;

  /// Fan-out of the static index over gates.
  size_t index_fanout = 16;

  /// Worker threads in the rebalancer pool (paper §4: 8).
  size_t rebalancer_workers = 8;

  /// Asynchronous update policy (paper §3.5).
  enum class AsyncMode { kSync, kOneByOne, kBatch };
  AsyncMode async_mode = AsyncMode::kBatch;

  /// Minimum time between global rebalances of the same gate in batch
  /// mode (paper §3.5; evaluation default 100 ms).
  int64_t t_delay_ms = 100;

  /// Segment span above which a worker-parallel rebalance is used rather
  /// than the master doing the spread alone (always a multiple of gates).
  size_t parallel_rebalance_min_gates = 4;

  /// Per-key FIFO ordering for the async modes (ISSUE 5). When true
  /// (default), operations on the same key are applied in the order
  /// their producer issued them even across fence-moving multi-gate
  /// rebalances and resizes: every GateOp carries a monotone enqueue
  /// stamp, batch canonicalization picks per-key winners by stamp, and a
  /// writer whose op needs a rebalance hands the op to the master
  /// *inside* the gate's combining queue, so it is folded into the
  /// merged spread while all affected gates are held instead of being
  /// racily re-dispatched after the fences moved. When false, the
  /// pre-ISSUE-5 relaxed §3.5 contract applies: a queued op that is
  /// re-dispatched after a fence move can be overtaken by a younger op
  /// on the same key (kept selectable for A/B measurement; see
  /// BENCH_PR5.json). Overridden at construction by the
  /// CPMA_STRICT_ASYNC environment variable (0 or 1) when set.
  bool strict_async_order = true;

  /// Rebalancer stall watchdog (ISSUE 7). When > 0, a background checker
  /// thread inside the rebalancer samples the master's monotone progress
  /// stamp and, if the master is mid-rebalance and the stamp has not
  /// moved for this many milliseconds, logs a diagnosis (phase, active
  /// window, per-gate state dumps) to stderr and bumps the
  /// watchdog_trips counter. Detection only — it never kills or steals
  /// work. 0 (default) disables the checker. Overridden at construction
  /// by the CPMA_WATCHDOG_MS environment variable when set.
  int64_t watchdog_ms = 0;

  /// Rebalancer-thread affinity (ISSUE 8). When non-empty, the master
  /// thread and every rebalancer worker pin themselves to these logical
  /// CPU ids at startup (worker i -> worker_cpus[i % size], master ->
  /// worker_cpus[0]), via the topology-aware pinner in common/pin.h.
  /// The sharded front end uses this to give each shard's background
  /// work a home core so N shards' rebalancers don't migrate onto each
  /// other. Empty (default) = unpinned, the pre-ISSUE-8 behaviour.
  std::vector<int> worker_cpus;

  /// Optimistic read path (ISSUE 4): how many seqlock windows a reader
  /// attempts per gate (failed validations, mutator-active snapshots and
  /// neighbour walks all count) before falling back to the blocking READ
  /// latch. 0 disables the optimistic path entirely — every read takes
  /// the latch, which is also the forced-fallback test mode. Overridden
  /// at construction by the CPMA_OPTIMISTIC_RETRIES environment
  /// variable when set.
  int optimistic_retries = 8;
};

}  // namespace cpma
