#include "pma/spread.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/hotpath/copy.h"
#include "common/hotpath/cpu_dispatch.h"
#include "common/hotpath/merge.h"
#include "common/status.h"

namespace cpma {

namespace {

/// Largest-remainder allocation of `gaps` empty slots over n segments,
/// proportionally to weights. Returns per-segment gap counts summing to
/// exactly `gaps`.
std::vector<uint32_t> AllocateGaps(const std::vector<uint64_t>& weights,
                                   uint64_t gaps, uint32_t seg_capacity) {
  const size_t n = weights.size();
  const uint64_t total_w = std::accumulate(weights.begin(), weights.end(),
                                           uint64_t{0});
  std::vector<uint32_t> gap(n, 0);
  std::vector<std::pair<uint64_t, size_t>> frac(n);  // (remainder, index)
  uint64_t assigned = 0;
  for (size_t j = 0; j < n; ++j) {
    // floor(gaps * w / W) with 128-bit-safe math (values are small).
    const uint64_t num = gaps * weights[j];
    uint64_t g = num / total_w;
    if (g > seg_capacity) g = seg_capacity;
    gap[j] = static_cast<uint32_t>(g);
    assigned += g;
    frac[j] = {num % total_w, j};
  }
  // Distribute the remainder to the largest fractional parts, skipping
  // segments already at full-gap.
  std::sort(frac.begin(), frac.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  size_t fi = 0;
  while (assigned < gaps) {
    bool progressed = false;
    for (fi = 0; fi < n && assigned < gaps; ++fi) {
      size_t j = frac[fi].second;
      if (gap[j] < seg_capacity) {
        ++gap[j];
        ++assigned;
        progressed = true;
      }
    }
    CPMA_CHECK_MSG(progressed, "gap allocation cannot converge");
  }
  return gap;
}

}  // namespace

WindowPlan PlanSpread(const Storage& st, size_t seg_begin, size_t seg_end,
                      bool adaptive, size_t trigger_seg) {
  WindowPlan plan;
  plan.seg_begin = seg_begin;
  plan.seg_end = seg_end;
  const size_t n = seg_end - seg_begin;
  const uint32_t B = static_cast<uint32_t>(st.segment_capacity());
  plan.input_card.resize(n);
  for (size_t j = 0; j < n; ++j) {
    plan.input_card[j] = st.card(seg_begin + j);
    plan.total += plan.input_card[j];
  }
  const size_t m = plan.total;
  plan.target_card.assign(n, 0);

  if (m < n) {
    // Fewer elements than segments (only possible at minimum capacity):
    // left-pack one element per segment; empty segments form a suffix,
    // which keeps the routing table well-defined.
    for (size_t j = 0; j < m; ++j) plan.target_card[j] = 1;
    return plan;
  }

  CPMA_CHECK_MSG(m <= n * size_t{B}, "window overflow");
  const uint64_t gaps = n * uint64_t{B} - m;

  std::vector<uint64_t> weights(n, 1);
  if (adaptive) {
    // Gaps follow predicted insertions: weight = 1 + decayed counter.
    for (size_t j = 0; j < n; ++j) {
      weights[j] = 1 + st.insert_count(seg_begin + j);
    }
  }
  // Allocate inside the feasible per-segment gap band up front instead
  // of fixing violations afterwards. The ceiling B-1 keeps >= 1 element
  // everywhere (a fully-gapped segment would break routing); the floor
  // of 1 gap applies whenever the window is sparse enough (m <= n*(B-1))
  // and guarantees every segment ends with a free slot — after the
  // spread the pending key may route to *any* window segment, so a full
  // segment anywhere would make the caller's retry loop spin. The old
  // repair loops moved one element per max/min_element rescan, O(n^2)
  // per plan on skewed adaptive windows (a hot append segment soaks up
  // all gaps and every cold segment needed repair); banded allocation is
  // one pass.
  const uint32_t gap_floor = (m <= n * size_t{B - 1}) ? 1 : 0;
  std::vector<uint32_t> gap = AllocateGaps(
      weights, gaps - uint64_t{gap_floor} * n, B - 1 - gap_floor);
  for (size_t j = 0; j < n; ++j) {
    plan.target_card[j] = B - gap_floor - gap[j];
  }

  // Guarantee room in the trigger segment for the pending insertion.
  if (trigger_seg != SIZE_MAX) {
    CPMA_CHECK(trigger_seg >= seg_begin && trigger_seg < seg_end);
    const size_t t = trigger_seg - seg_begin;
    if (plan.target_card[t] >= B) {
      // Move one element to the emptiest segment.
      size_t k = static_cast<size_t>(
          std::min_element(plan.target_card.begin(), plan.target_card.end()) -
          plan.target_card.begin());
      CPMA_CHECK_MSG(plan.target_card[k] < B, "window has no free slot");
      --plan.target_card[t];
      ++plan.target_card[k];
    }
  }
  return plan;
}

void CopyPartitionToBuffer(Storage* st, const WindowPlan& plan,
                           size_t out_begin, size_t out_end) {
  CPMA_CHECK(out_begin >= plan.seg_begin && out_end <= plan.seg_end);
  if (out_begin >= out_end) return;
  const size_t n0 = plan.seg_begin;
  // Streaming verdict for the whole window (not this partition): all
  // partitions of one spread should take the same store path.
  const bool stream = hotpath::StreamCopyPreferred(
      (plan.seg_end - plan.seg_begin) * st->segment_bytes());

  // Rank of the first element this partition outputs.
  uint64_t rank = 0;
  for (size_t s = plan.seg_begin; s < out_begin; ++s) {
    rank += plan.target_card[s - n0];
  }
  // Locate that rank in the input layout.
  size_t in_seg = plan.seg_begin;
  uint64_t skip = rank;
  while (in_seg < plan.seg_end && skip >= plan.input_card[in_seg - n0]) {
    skip -= plan.input_card[in_seg - n0];
    ++in_seg;
  }
  size_t in_pos = static_cast<size_t>(skip);

  for (size_t s = out_begin; s < out_end; ++s) {
    Item* out = st->buffer_segment(s);
    const uint32_t want = plan.target_card[s - n0];
    uint32_t got = 0;
    while (got < want) {
      CPMA_CHECK(in_seg < plan.seg_end);
      const uint32_t avail = plan.input_card[in_seg - n0];
      if (in_pos >= avail) {
        ++in_seg;
        in_pos = 0;
        continue;
      }
      const uint32_t take = std::min<uint32_t>(
          want - got, avail - static_cast<uint32_t>(in_pos));
      hotpath::CopyItems(out + got, st->segment(in_seg) + in_pos, take,
                         stream);
      got += take;
      in_pos += take;
    }
  }
  // One publish barrier per partition: runs inside the worker task, so
  // the streamed stores are drained before the WaitGroup releases the
  // swap phase (or before the single-threaded caller publishes).
  hotpath::StreamCopyFlush(stream);
}

namespace {

std::vector<uint32_t> SnapshotCards(const Storage& st, size_t seg_begin,
                                    size_t seg_end) {
  std::vector<uint32_t> cards(seg_end - seg_begin);
  for (size_t s = seg_begin; s < seg_end; ++s) {
    cards[s - seg_begin] = st.card(s);
  }
  return cards;
}

}  // namespace

size_t CountMerged(const Storage& st, size_t seg_begin, size_t seg_end,
                   const std::vector<BatchEntry>& ops, size_t* inserted_new,
                   size_t* deleted_found) {
  size_t existing = 0;
  for (size_t s = seg_begin; s < seg_end; ++s) existing += st.card(s);
  // Classify each op by galloping: inside a segment the dispatched
  // lower bound jumps straight to the op's key instead of stepping the
  // cursor one element at a time (ops and elements are both sorted, so
  // the cursor only ever moves right).
  size_t ins = 0, del = 0;
  size_t op_idx = 0;
  const size_t num_ops = ops.size();
  for (size_t s = seg_begin; s < seg_end && op_idx < num_ops; ++s) {
    const Item* seg = st.segment(s);
    const uint32_t card = st.card(s);
    if (card == 0) continue;
    const Key seg_last = seg[card - 1].key;
    uint32_t pos = 0;
    while (op_idx < num_ops && ops[op_idx].key <= seg_last) {
      pos += static_cast<uint32_t>(
          hotpath::SegmentLowerBound(seg + pos, card - pos, ops[op_idx].key));
      const bool present = pos < card && seg[pos].key == ops[op_idx].key;
      if (ops[op_idx].is_delete) {
        if (present) ++del;
      } else if (!present) {
        ++ins;
      }
      ++op_idx;
    }
  }
  for (; op_idx < num_ops; ++op_idx) {  // keys above every stored key
    if (!ops[op_idx].is_delete) ++ins;
  }
  if (inserted_new != nullptr) *inserted_new = ins;
  if (deleted_found != nullptr) *deleted_found = del;
  return existing + ins - del;
}

WindowPlan PlanMergedSpread(const Storage& st, size_t seg_begin,
                            size_t seg_end, size_t merged_total) {
  WindowPlan plan;
  plan.seg_begin = seg_begin;
  plan.seg_end = seg_end;
  plan.total = merged_total;
  plan.input_card = SnapshotCards(st, seg_begin, seg_end);
  const size_t n = seg_end - seg_begin;
  const uint32_t B = static_cast<uint32_t>(st.segment_capacity());
  plan.target_card.assign(n, 0);
  const size_t m = merged_total;
  if (m < n) {
    for (size_t j = 0; j < m; ++j) plan.target_card[j] = 1;
    return plan;
  }
  CPMA_CHECK_MSG(m <= n * size_t{B}, "merged batch overflows window");
  for (size_t j = 0; j < n; ++j) {
    plan.target_card[j] = static_cast<uint32_t>(m / n + (j < m % n ? 1 : 0));
  }
  return plan;
}

void MergedCopyToBuffer(Storage* st, const WindowPlan& plan,
                        const std::vector<BatchEntry>& ops) {
  const size_t n = plan.seg_end - plan.seg_begin;
  const bool stream =
      hotpath::StreamCopyPreferred(n * st->segment_bytes());
  hotpath::SegmentedRunWriter writer(st->buffer_segment(plan.seg_begin),
                                     st->segment_capacity(),
                                     plan.target_card.data(), n, stream);
  size_t op_idx = 0;
  for (size_t s = plan.seg_begin; s < plan.seg_end; ++s) {
    hotpath::MergeRunWithOps(st->segment(s),
                             plan.input_card[s - plan.seg_begin], ops.data(),
                             ops.size(), &op_idx, &writer);
  }
  hotpath::EmitRemainingOps(ops.data(), ops.size(), &op_idx, &writer);
  CPMA_CHECK_MSG(writer.written() == plan.total,
                 "merge stream does not match plan");
  hotpath::StreamCopyFlush(stream);  // drain before FinishSpread publishes
}

void MergedStreamInto(const Storage& old_st,
                      const std::vector<BatchEntry>& ops, size_t merged_total,
                      Storage* fresh) {
  const size_t n = fresh->num_segments();
  const size_t m = merged_total;
  std::vector<uint32_t> target(n, 0);
  if (m < n) {
    for (size_t j = 0; j < m; ++j) target[j] = 1;
  } else {
    CPMA_CHECK(m <= n * fresh->segment_capacity());
    for (size_t j = 0; j < n; ++j) {
      target[j] = static_cast<uint32_t>(m / n + (j < m % n ? 1 : 0));
    }
  }
  const bool stream = hotpath::StreamCopyPreferred(
      n * fresh->segment_capacity() * sizeof(Item));
  hotpath::SegmentedRunWriter writer(fresh->segment(0),
                                     fresh->segment_capacity(), target.data(),
                                     n, stream);
  size_t op_idx = 0;
  for (size_t s = 0; s < old_st.num_segments(); ++s) {
    hotpath::MergeRunWithOps(old_st.segment(s), old_st.card(s), ops.data(),
                             ops.size(), &op_idx, &writer);
  }
  hotpath::EmitRemainingOps(ops.data(), ops.size(), &op_idx, &writer);
  CPMA_CHECK_MSG(writer.written() == merged_total,
                 "resize merge does not match expected total");
  // Drain before the caller's release-store publishes the new snapshot
  // (a release store does not order non-temporal stores).
  hotpath::StreamCopyFlush(stream);
  for (size_t s = 0; s < n; ++s) fresh->set_card(s, target[s]);
  fresh->RebuildRoutes(0, n);
}

void FinishSpread(Storage* st, const WindowPlan& plan, bool swap) {
  if (swap) st->SwapWindow(plan.seg_begin, plan.seg_end);
  const size_t n0 = plan.seg_begin;
  for (size_t s = plan.seg_begin; s < plan.seg_end; ++s) {
    st->set_card(s, plan.target_card[s - n0]);
    // Decay the insertion predictor so stale skew fades (Bender & Hu use
    // an exponentially decayed marker; halving per rebalance matches).
    st->set_insert_count(s, st->insert_count(s) / 2);
  }
  st->RebuildRoutes(plan.seg_begin, plan.seg_end);
}

}  // namespace cpma
