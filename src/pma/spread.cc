#include "pma/spread.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/status.h"

namespace cpma {

namespace {

/// Largest-remainder allocation of `gaps` empty slots over n segments,
/// proportionally to weights. Returns per-segment gap counts summing to
/// exactly `gaps`.
std::vector<uint32_t> AllocateGaps(const std::vector<uint64_t>& weights,
                                   uint64_t gaps, uint32_t seg_capacity) {
  const size_t n = weights.size();
  const uint64_t total_w = std::accumulate(weights.begin(), weights.end(),
                                           uint64_t{0});
  std::vector<uint32_t> gap(n, 0);
  std::vector<std::pair<uint64_t, size_t>> frac(n);  // (remainder, index)
  uint64_t assigned = 0;
  for (size_t j = 0; j < n; ++j) {
    // floor(gaps * w / W) with 128-bit-safe math (values are small).
    const uint64_t num = gaps * weights[j];
    uint64_t g = num / total_w;
    if (g > seg_capacity) g = seg_capacity;
    gap[j] = static_cast<uint32_t>(g);
    assigned += g;
    frac[j] = {num % total_w, j};
  }
  // Distribute the remainder to the largest fractional parts, skipping
  // segments already at full-gap.
  std::sort(frac.begin(), frac.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  size_t fi = 0;
  while (assigned < gaps) {
    bool progressed = false;
    for (fi = 0; fi < n && assigned < gaps; ++fi) {
      size_t j = frac[fi].second;
      if (gap[j] < seg_capacity) {
        ++gap[j];
        ++assigned;
        progressed = true;
      }
    }
    CPMA_CHECK_MSG(progressed, "gap allocation cannot converge");
  }
  return gap;
}

}  // namespace

WindowPlan PlanSpread(const Storage& st, size_t seg_begin, size_t seg_end,
                      bool adaptive, size_t trigger_seg) {
  WindowPlan plan;
  plan.seg_begin = seg_begin;
  plan.seg_end = seg_end;
  const size_t n = seg_end - seg_begin;
  const uint32_t B = static_cast<uint32_t>(st.segment_capacity());
  plan.input_card.resize(n);
  for (size_t j = 0; j < n; ++j) {
    plan.input_card[j] = st.card(seg_begin + j);
    plan.total += plan.input_card[j];
  }
  const size_t m = plan.total;
  plan.target_card.assign(n, 0);

  if (m < n) {
    // Fewer elements than segments (only possible at minimum capacity):
    // left-pack one element per segment; empty segments form a suffix,
    // which keeps the routing table well-defined.
    for (size_t j = 0; j < m; ++j) plan.target_card[j] = 1;
    return plan;
  }

  CPMA_CHECK_MSG(m <= n * size_t{B}, "window overflow");
  const uint64_t gaps = n * uint64_t{B} - m;

  std::vector<uint64_t> weights(n, 1);
  if (adaptive) {
    // Gaps follow predicted insertions: weight = 1 + decayed counter.
    for (size_t j = 0; j < n; ++j) {
      weights[j] = 1 + st.insert_count(seg_begin + j);
    }
  }
  std::vector<uint32_t> gap = AllocateGaps(weights, gaps, B);
  for (size_t j = 0; j < n; ++j) plan.target_card[j] = B - gap[j];

  // Re-establish the ">= 1 element per segment" floor the adaptive
  // allocation may have violated (a fully-gapped segment would break
  // routing).
  for (size_t j = 0; j < n; ++j) {
    while (plan.target_card[j] < 1) {
      size_t k = static_cast<size_t>(
          std::max_element(plan.target_card.begin(), plan.target_card.end()) -
          plan.target_card.begin());
      CPMA_CHECK(plan.target_card[k] > 1);
      --plan.target_card[k];
      ++plan.target_card[j];
    }
  }

  // When the window has at least one gap per segment, make sure every
  // segment ends with a free slot: after the spread the pending key may
  // route to *any* window segment (routes move with the elements), so a
  // full segment anywhere would make the caller's retry loop spin.
  if (m <= n * size_t{B - 1}) {
    for (size_t j = 0; j < n; ++j) {
      while (plan.target_card[j] >= B) {
        size_t k = static_cast<size_t>(
            std::min_element(plan.target_card.begin(),
                             plan.target_card.end()) -
            plan.target_card.begin());
        CPMA_CHECK(plan.target_card[k] < B - 1);
        --plan.target_card[j];
        ++plan.target_card[k];
      }
    }
  }

  // Guarantee room in the trigger segment for the pending insertion.
  if (trigger_seg != SIZE_MAX) {
    CPMA_CHECK(trigger_seg >= seg_begin && trigger_seg < seg_end);
    const size_t t = trigger_seg - seg_begin;
    if (plan.target_card[t] >= B) {
      // Move one element to the emptiest segment.
      size_t k = static_cast<size_t>(
          std::min_element(plan.target_card.begin(), plan.target_card.end()) -
          plan.target_card.begin());
      CPMA_CHECK_MSG(plan.target_card[k] < B, "window has no free slot");
      --plan.target_card[t];
      ++plan.target_card[k];
    }
  }
  return plan;
}

void CopyPartitionToBuffer(Storage* st, const WindowPlan& plan,
                           size_t out_begin, size_t out_end) {
  CPMA_CHECK(out_begin >= plan.seg_begin && out_end <= plan.seg_end);
  if (out_begin >= out_end) return;
  const size_t n0 = plan.seg_begin;

  // Rank of the first element this partition outputs.
  uint64_t rank = 0;
  for (size_t s = plan.seg_begin; s < out_begin; ++s) {
    rank += plan.target_card[s - n0];
  }
  // Locate that rank in the input layout.
  size_t in_seg = plan.seg_begin;
  uint64_t skip = rank;
  while (in_seg < plan.seg_end && skip >= plan.input_card[in_seg - n0]) {
    skip -= plan.input_card[in_seg - n0];
    ++in_seg;
  }
  size_t in_pos = static_cast<size_t>(skip);

  for (size_t s = out_begin; s < out_end; ++s) {
    Item* out = st->buffer_segment(s);
    const uint32_t want = plan.target_card[s - n0];
    uint32_t got = 0;
    while (got < want) {
      CPMA_CHECK(in_seg < plan.seg_end);
      const uint32_t avail = plan.input_card[in_seg - n0];
      if (in_pos >= avail) {
        ++in_seg;
        in_pos = 0;
        continue;
      }
      const uint32_t take = std::min<uint32_t>(
          want - got, avail - static_cast<uint32_t>(in_pos));
      std::memcpy(out + got, st->segment(in_seg) + in_pos,
                  take * sizeof(Item));
      got += take;
      in_pos += take;
    }
  }
}

namespace {

/// Merge iterator over (window elements, sorted batch ops): yields the
/// post-merge element stream in key order. Deletions drop elements,
/// upserts replace or insert.
class MergeIterator {
 public:
  MergeIterator(const Storage& st, size_t seg_begin, size_t seg_end,
                const std::vector<uint32_t>& input_card,
                const std::vector<BatchEntry>& ops)
      : st_(st),
        seg_begin_(seg_begin),
        seg_end_(seg_end),
        input_card_(input_card),
        ops_(ops) {
    in_seg_ = seg_begin_;
    AdvanceInputSegment();
  }

  /// Returns false when exhausted.
  bool Next(Item* out) {
    for (;;) {
      const bool have_in = in_seg_ < seg_end_;
      const bool have_op = op_idx_ < ops_.size();
      if (!have_in && !have_op) return false;
      if (have_in &&
          (!have_op || CurrentInputKey() < ops_[op_idx_].key)) {
        *out = st_.segment(in_seg_)[in_pos_];
        AdvanceInput();
        return true;
      }
      const BatchEntry& op = ops_[op_idx_];
      const bool key_present = have_in && CurrentInputKey() == op.key;
      ++op_idx_;
      if (key_present) AdvanceInput();  // op supersedes the stored element
      if (op.is_delete) continue;       // drop (or no-op if absent)
      *out = {op.key, op.value};
      return true;
    }
  }

 private:
  Key CurrentInputKey() const { return st_.segment(in_seg_)[in_pos_].key; }

  void AdvanceInput() {
    ++in_pos_;
    AdvanceInputSegment();
  }

  void AdvanceInputSegment() {
    while (in_seg_ < seg_end_ &&
           in_pos_ >= input_card_[in_seg_ - seg_begin_]) {
      ++in_seg_;
      in_pos_ = 0;
    }
  }

  const Storage& st_;
  size_t seg_begin_, seg_end_;
  const std::vector<uint32_t>& input_card_;
  const std::vector<BatchEntry>& ops_;
  size_t in_seg_ = 0;
  size_t in_pos_ = 0;
  size_t op_idx_ = 0;
};

std::vector<uint32_t> SnapshotCards(const Storage& st, size_t seg_begin,
                                    size_t seg_end) {
  std::vector<uint32_t> cards(seg_end - seg_begin);
  for (size_t s = seg_begin; s < seg_end; ++s) {
    cards[s - seg_begin] = st.card(s);
  }
  return cards;
}

}  // namespace

size_t CountMerged(const Storage& st, size_t seg_begin, size_t seg_end,
                   const std::vector<BatchEntry>& ops, size_t* inserted_new,
                   size_t* deleted_found) {
  size_t existing = 0;
  for (size_t s = seg_begin; s < seg_end; ++s) existing += st.card(s);
  // Walk ops against the window to classify each one.
  size_t ins = 0, del = 0;
  size_t in_seg = seg_begin, in_pos = 0;
  auto skip_to = [&](Key key) {
    // Advance the input cursor to the first element with key >= key.
    for (;;) {
      while (in_seg < seg_end && in_pos >= st.card(in_seg)) {
        ++in_seg;
        in_pos = 0;
      }
      if (in_seg >= seg_end) return false;
      if (st.segment(in_seg)[in_pos].key >= key) return true;
      ++in_pos;
    }
  };
  for (const BatchEntry& op : ops) {
    const bool present =
        skip_to(op.key) && st.segment(in_seg)[in_pos].key == op.key;
    if (op.is_delete) {
      if (present) ++del;
    } else if (!present) {
      ++ins;
    }
  }
  if (inserted_new != nullptr) *inserted_new = ins;
  if (deleted_found != nullptr) *deleted_found = del;
  return existing + ins - del;
}

WindowPlan PlanMergedSpread(const Storage& st, size_t seg_begin,
                            size_t seg_end, size_t merged_total) {
  WindowPlan plan;
  plan.seg_begin = seg_begin;
  plan.seg_end = seg_end;
  plan.total = merged_total;
  plan.input_card = SnapshotCards(st, seg_begin, seg_end);
  const size_t n = seg_end - seg_begin;
  const uint32_t B = static_cast<uint32_t>(st.segment_capacity());
  plan.target_card.assign(n, 0);
  const size_t m = merged_total;
  if (m < n) {
    for (size_t j = 0; j < m; ++j) plan.target_card[j] = 1;
    return plan;
  }
  CPMA_CHECK_MSG(m <= n * size_t{B}, "merged batch overflows window");
  for (size_t j = 0; j < n; ++j) {
    plan.target_card[j] = static_cast<uint32_t>(m / n + (j < m % n ? 1 : 0));
  }
  return plan;
}

void MergedCopyToBuffer(Storage* st, const WindowPlan& plan,
                        const std::vector<BatchEntry>& ops) {
  MergeIterator it(*st, plan.seg_begin, plan.seg_end, plan.input_card, ops);
  size_t written = 0;
  for (size_t s = plan.seg_begin; s < plan.seg_end; ++s) {
    Item* out = st->buffer_segment(s);
    const uint32_t want = plan.target_card[s - plan.seg_begin];
    for (uint32_t i = 0; i < want; ++i) {
      CPMA_CHECK_MSG(it.Next(&out[i]), "merge stream shorter than plan");
      ++written;
    }
  }
  CPMA_CHECK(written == plan.total);
  Item sink;
  CPMA_CHECK_MSG(!it.Next(&sink), "merge stream longer than plan");
}

void MergedStreamInto(const Storage& old_st,
                      const std::vector<BatchEntry>& ops, size_t merged_total,
                      Storage* fresh) {
  const size_t n = fresh->num_segments();
  const size_t m = merged_total;
  std::vector<uint32_t> target(n, 0);
  if (m < n) {
    for (size_t j = 0; j < m; ++j) target[j] = 1;
  } else {
    CPMA_CHECK(m <= n * fresh->segment_capacity());
    for (size_t j = 0; j < n; ++j) {
      target[j] = static_cast<uint32_t>(m / n + (j < m % n ? 1 : 0));
    }
  }
  std::vector<uint32_t> cards =
      SnapshotCards(old_st, 0, old_st.num_segments());
  MergeIterator it(old_st, 0, old_st.num_segments(), cards, ops);
  size_t written = 0;
  for (size_t s = 0; s < n; ++s) {
    Item* out = fresh->segment(s);
    for (uint32_t i = 0; i < target[s]; ++i) {
      CPMA_CHECK_MSG(it.Next(&out[i]), "resize merge shorter than expected");
      ++written;
    }
    fresh->set_card(s, target[s]);
  }
  CPMA_CHECK(written == merged_total);
  Item sink;
  CPMA_CHECK_MSG(!it.Next(&sink), "resize merge longer than expected");
  fresh->RebuildRoutes(0, n);
}

void FinishSpread(Storage* st, const WindowPlan& plan, bool swap) {
  if (swap) st->SwapWindow(plan.seg_begin, plan.seg_end);
  const size_t n0 = plan.seg_begin;
  for (size_t s = plan.seg_begin; s < plan.seg_end; ++s) {
    st->set_card(s, plan.target_card[s - n0]);
    // Decay the insertion predictor so stale skew fades (Bender & Hu use
    // an exponentially decayed marker; halving per rebalance matches).
    st->set_insert_count(s, st->insert_count(s) / 2);
  }
  st->RebuildRoutes(plan.seg_begin, plan.seg_end);
}

}  // namespace cpma
