// Calibrator tree density thresholds (paper §2).
//
// The calibrator tree is implicit: its leaves are the segments, and the
// node at level l (l = 0 for leaves) covers an aligned window of 2^l
// segments. A tree over S segments (S a power of two) has height
// h = log2(S) + 1; a node at level l has height k = l + 1, and
//
//   tau_k = tau_h + (tau_1 - tau_h) * (h - k) / (h - 1)
//   rho_k = rho_h - (rho_h - rho_1) * (h - k) / (h - 1)

#pragma once

#include <cstddef>

#include "common/status.h"
#include "pma/config.h"

namespace cpma {

inline size_t Log2Floor(size_t x) {
  CPMA_CHECK(x > 0);
  size_t l = 0;
  while (x >>= 1) ++l;
  return l;
}

inline bool IsPowerOfTwo(size_t x) { return x != 0 && (x & (x - 1)) == 0; }

class DensityBounds {
 public:
  DensityBounds(const PmaConfig& cfg, size_t num_segments)
      : cfg_(cfg), num_levels_(Log2Floor(num_segments) + 1) {
    CPMA_CHECK(IsPowerOfTwo(num_segments));
  }

  /// Height of the calibrator tree (h in the paper).
  size_t height() const { return num_levels_; }

  /// Number of levels (root level index = height() - 1).
  size_t root_level() const { return num_levels_ - 1; }

  /// Upper density threshold for a node at level l (0 = leaf).
  double Tau(size_t level) const {
    const double h = static_cast<double>(num_levels_);
    if (num_levels_ == 1) return cfg_.tau_root;
    const double k = static_cast<double>(level + 1);
    return cfg_.tau_root + (cfg_.tau_leaf - cfg_.tau_root) * (h - k) / (h - 1);
  }

  /// Lower density threshold for a node at level l (0 = leaf). When the
  /// paper's relaxation is active the lower bound is 0 everywhere except
  /// the implicit ">= 1 element per segment" rule enforced by rebalances.
  double Rho(size_t level) const {
    if (cfg_.relax_lower) return 0.0;
    const double h = static_cast<double>(num_levels_);
    if (num_levels_ == 1) return cfg_.rho_root;
    const double k = static_cast<double>(level + 1);
    return cfg_.rho_root - (cfg_.rho_root - cfg_.rho_leaf) * (h - k) / (h - 1);
  }

 private:
  PmaConfig cfg_;
  size_t num_levels_;
};

/// Aligned window of 2^level segments containing `seg`.
inline void WindowAt(size_t seg, size_t level, size_t* begin, size_t* end) {
  *begin = (seg >> level) << level;
  *end = *begin + (size_t{1} << level);
}

}  // namespace cpma
