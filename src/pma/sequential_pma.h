// Sequential Packed Memory Array — the Rewired Memory Array variant
// (De Leo & Boncz, ICDE'19 [9]) the paper's concurrent design extends:
// fixed-capacity segments, implicit calibrator tree with interpolated
// density thresholds, traditional + adaptive rebalancing, memory-rewired
// spreads, and doubling/halving resizes.
//
// Not thread-safe; ConcurrentPMA (src/concurrent) adds the paper's
// gates / static index / rebalancer layers on top of the same storage,
// spread and density code.

#pragma once

#include <memory>
#include <string>

#include "common/ordered_map.h"
#include "pma/config.h"
#include "pma/density.h"
#include "pma/storage.h"

namespace cpma {

class SequentialPMA : public OrderedMap {
 public:
  explicit SequentialPMA(const PmaConfig& config = PmaConfig());
  ~SequentialPMA() override = default;

  void Insert(Key key, Value value) override;
  void Remove(Key key) override;
  bool Find(Key key, Value* value) const override;
  uint64_t SumAll() const override;
  void Scan(Key min, Key max, const ScanCallback& cb) const override;
  size_t Size() const override { return count_; }
  std::string Name() const override { return "SequentialPMA"; }

  // --- Introspection (tests, examples, benchmarks) ---

  size_t num_segments() const { return storage_->num_segments(); }
  size_t capacity() const { return storage_->capacity(); }
  const Storage& storage() const { return *storage_; }
  const PmaConfig& config() const { return config_; }

  uint64_t num_rebalances() const { return num_rebalances_; }
  uint64_t num_resizes() const { return num_resizes_; }

  /// Verify all structural invariants (sortedness, routing, cardinality
  /// accounting, suffix-empties). Returns false and fills *error on
  /// violation. O(N); test-only.
  bool CheckInvariants(std::string* error) const;

  /// Render the calibrator tree with per-window densities and thresholds
  /// (Figure 1 of the paper).
  std::string DebugDumpCalibratorTree() const;

 private:
  /// Rebalance so that segment `seg` gains at least one free slot; may
  /// resize. Postcondition: the segment routing `key` has room.
  void RebalanceForInsert(size_t seg);

  /// Rebalance after a deletion left `seg` empty (or, with strict lower
  /// thresholds, under-full); may shrink the array.
  void RebalanceForDelete(size_t seg);

  void Resize(size_t new_num_segments);

  /// Smallest power-of-two segment count (>= 2) with density <= 0.6.
  size_t SegmentsForCount(size_t count) const;

  PmaConfig config_;
  std::unique_ptr<Storage> storage_;
  size_t count_ = 0;
  uint64_t num_rebalances_ = 0;
  uint64_t num_resizes_ = 0;
};

}  // namespace cpma
