// Element redistribution ("spread") for rebalances — the sequential
// algorithm of the paper, factored so that the concurrent rebalancer can
// run it partitioned across worker threads:
//
//   1. ComputeTargets decides how many elements every segment of the
//      window receives (traditional: even split; adaptive: gaps follow
//      the insertion predictor, paper §2 "Adaptive rebalancing").
//   2. CopyPartitionToBuffer streams the window's live elements, in
//      order, into the *buffer* pages of an output sub-range. Input is
//      only read, output goes to the buffer, so any number of partitions
//      can run concurrently over the same window.
//   3. Storage::SwapWindow publishes the buffer (page rewiring or one
//      memcpy), after which the caller installs the new cardinalities
//      and routing keys (FinishSpread).

#pragma once

#include <cstdint>
#include <vector>

#include "pma/storage.h"

namespace cpma {

struct WindowPlan {
  size_t seg_begin = 0;
  size_t seg_end = 0;                // exclusive
  size_t total = 0;                  // live elements in the window
  std::vector<uint32_t> input_card;  // snapshot of card per window segment
  std::vector<uint32_t> target_card; // decided by ComputeTargets
};

/// Build the plan for spreading [seg_begin, seg_end).
/// `adaptive` selects predictor-weighted gap allocation; `trigger_seg`
/// (absolute index, or SIZE_MAX for none) is guaranteed at least one free
/// slot after the spread so a pending insertion always succeeds.
WindowPlan PlanSpread(const Storage& st, size_t seg_begin, size_t seg_end,
                      bool adaptive, size_t trigger_seg);

/// Copy the elements destined for output segments [out_begin, out_end)
/// (absolute indices within the plan's window) into the storage buffer.
/// Thread-safe w.r.t. other partitions of the same plan.
void CopyPartitionToBuffer(Storage* st, const WindowPlan& plan,
                           size_t out_begin, size_t out_end);

/// Publish buffer + install cardinalities, routing keys and decayed
/// insert counters for the whole window. Single-threaded; call after all
/// partitions copied. `swap` false means the caller already swapped each
/// partition itself (parallel rebalancer path).
void FinishSpread(Storage* st, const WindowPlan& plan, bool swap = true);

// ------------------------------------------------------------------------
// Merged spreads: batch processing (paper §3.5) folds a sorted batch of
// updates into the window *during* the rebalance, skipping the per-update
// small rebalances entirely.

// BatchEntry (one canonical update: sorted by key, unique keys,
// deletions and upserts mixed) lives in pma/item.h so the hot-path merge
// kernels can consume batches too.

/// Element count of window [seg_begin, seg_end) after merging `ops`.
/// Also reports how many ops insert a new key / delete an existing one
/// (for the global element counter).
size_t CountMerged(const Storage& st, size_t seg_begin, size_t seg_end,
                   const std::vector<BatchEntry>& ops, size_t* inserted_new,
                   size_t* deleted_found);

/// Build a plan whose total is the merged count (targets via the
/// traditional policy — batch processing does not use the predictor).
WindowPlan PlanMergedSpread(const Storage& st, size_t seg_begin,
                            size_t seg_end, size_t merged_total);

/// Stream merge(window, ops) into the storage buffer following the
/// plan's targets. Single-threaded; publish with FinishSpread.
void MergedCopyToBuffer(Storage* st, const WindowPlan& plan,
                        const std::vector<BatchEntry>& ops);

/// Resize path: stream merge(whole old storage, ops) into a fresh
/// storage (even targets), installing its cardinalities and routes.
/// `merged_total` must come from CountMerged over the whole array.
void MergedStreamInto(const Storage& old_st,
                      const std::vector<BatchEntry>& ops, size_t merged_total,
                      Storage* fresh);

}  // namespace cpma
