// Static index over the gates (paper §3.2).
//
// A B+-tree whose indexed elements are the gates, with their minimum
// fence keys as separators. "Static" = the number of separators is fixed
// until the whole sparse array is resized (then the index is rebuilt
// from scratch); only separator *values* change, during rebalances.
//
// Layout: no pointers — each level is a dense array of keys, levels
// stored contiguously, children located by pointer arithmetic (child j
// of node covering group g is group g*fanout + j one level down). The
// separator for gate g appears at leaf position g and, when g is a
// multiple of fanout^i, at one computable slot in each of the i levels
// above — so updating a separator touches O(log_F G) fixed positions
// with no traversal and no latching (the paper's O(1)-style update).
//
// Concurrency: traversals take no latches and may observe half-updated
// separators; they are guaranteed to land on *some* existing gate, and
// the caller re-validates against the gate's fence keys, walking to a
// neighbour on mismatch (Gate::WriterAccess/ReaderAccess do this).
// Separator slots are relaxed atomics so torn reads are well-defined.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/ordered_map.h"
#include "pma/item.h"

namespace cpma {

class StaticIndex {
 public:
  /// num_gates >= 1; fanout >= 2. All separators start at kKeySentinel
  /// except gate 0, which is always kKeyMin.
  StaticIndex(size_t num_gates, size_t fanout);

  StaticIndex(const StaticIndex&) = delete;
  StaticIndex& operator=(const StaticIndex&) = delete;

  size_t num_gates() const { return num_gates_; }
  size_t fanout() const { return fanout_; }
  size_t num_levels() const { return level_offset_.size(); }

  /// Id of a gate whose separator is <= key (under quiescence, the
  /// right-most such gate). Latch-free; result may be stale — always
  /// validate against the gate's fence keys.
  size_t Lookup(Key key) const;

  /// Publish a new separator (= low fence) for `gate`. Caller must hold
  /// the gate's latch in exclusive/rebal mode (paper §3.2).
  void SetSeparator(size_t gate, Key low_fence);

  /// Current separator of `gate` (tests/debug).
  Key separator(size_t gate) const {
    return slots_[level_offset_[0] + gate].load(std::memory_order_relaxed);
  }

 private:
  size_t num_gates_;
  size_t fanout_;
  // level_offset_[l] = start of level l in slots_; level 0 = leaves
  // (num_gates_ entries), level l has ceil(level[l-1] / fanout) entries.
  std::vector<size_t> level_offset_;
  std::vector<size_t> level_size_;
  std::unique_ptr<std::atomic<Key>[]> slots_;
};

}  // namespace cpma
