#include "concurrent/event_ring.h"

#include <chrono>

namespace cpma {

const char* TailEventName(TailEvent e) {
  switch (e) {
    case TailEvent::kReadFallback: return "read_fallback";
    case TailEvent::kRebalanceWindow: return "rebalance_window";
    case TailEvent::kResize: return "resize";
    case TailEvent::kCoalesceFlush: return "coalesce_flush";
    case TailEvent::kWatchdogStall: return "watchdog_stall";
  }
  return "?";
}

TailEventRing& TailEventRing::Global() {
  // Leaked on purpose: producer threads (rebalancer masters, agers) may
  // outlive main()'s static destruction order in abnormal exits.
  static TailEventRing* ring = new TailEventRing();
  return *ring;
}

uint64_t TailEventRing::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void TailEventRing::Record(TailEvent type, uint64_t start_ns,
                           uint64_t end_ns) {
  if (!enabled()) return;
  counts_[static_cast<size_t>(type)].fetch_add(1, std::memory_order_relaxed);
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & (kCapacity - 1)];
  // Seqlock write: odd = in progress. The release on the closing store
  // orders the payload before the stable sequence for acquiring readers.
  s.seq.store(2 * ticket + 1, std::memory_order_release);
  s.type.store(static_cast<uint32_t>(type), std::memory_order_relaxed);
  s.start_ns.store(start_ns, std::memory_order_relaxed);
  s.end_ns.store(end_ns, std::memory_order_relaxed);
  s.seq.store(2 * ticket + 2, std::memory_order_release);
}

void TailEventRing::Drain(std::vector<TailEventRecord>* out) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t lo = head > kCapacity ? head - kCapacity : 0;
  for (uint64_t t = lo; t < head; ++t) {
    const Slot& s = slots_[t & (kCapacity - 1)];
    const uint64_t want = 2 * t + 2;
    if (s.seq.load(std::memory_order_acquire) != want) continue;
    TailEventRecord rec;
    rec.type = static_cast<TailEvent>(s.type.load(std::memory_order_relaxed));
    rec.start_ns = s.start_ns.load(std::memory_order_relaxed);
    rec.end_ns = s.end_ns.load(std::memory_order_relaxed);
    // Re-check: a producer lapping the ring mid-read bumps the slot off
    // `want`, invalidating the (still untorn) copy above.
    if (s.seq.load(std::memory_order_acquire) != want) continue;
    out->push_back(rec);
  }
}

void TailEventRing::Reset() {
  // head_ keeps advancing monotonically; stamping every slot back to an
  // "unwritten" sequence (0 is never a valid stable seq for tickets
  // whose slot index would map here again, because stable seqs are
  // keyed to the ticket) makes Drain skip pre-Reset events.
  for (size_t i = 0; i < kCapacity; ++i) {
    slots_[i].seq.store(0, std::memory_order_release);
  }
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

}  // namespace cpma
