#include "concurrent/rebalancer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <new>

#include "common/failpoint.h"
#include "common/pin.h"
#include "common/timer.h"
#include "concurrent/event_ring.h"
#include "pma/density.h"

namespace cpma {

std::vector<BatchEntry> CanonicalizeBatch(const std::deque<GateOp>& ops) {
  // Per-key winner = highest enqueue stamp (ISSUE 5), output sorted by
  // key. Inside one queue arrival order tracks stamp order per
  // producer, but a master drain concatenates the queues of every gate
  // its window covers — queues that accumulated at different times — so
  // deque position alone is not the issue order. Sorting by (key, seq)
  // stably and keeping each run's last element picks the stamp winner
  // in one contiguous sort + sweep (the pre-stamp code was the same
  // shape keyed on arrival order; unstamped entries, seq 0, keep it as
  // the tie-break).
  std::vector<BatchEntry> all;
  all.reserve(ops.size());
  for (const GateOp& op : ops) {
    all.push_back(BatchEntry{op.key, op.value,
                             op.type == GateOp::Type::kRemove, op.seq});
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const BatchEntry& a, const BatchEntry& b) {
                     return a.key != b.key ? a.key < b.key : a.seq < b.seq;
                   });
  std::vector<BatchEntry> out;
  out.reserve(all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    if (i + 1 == all.size() || all[i + 1].key != all[i].key) {
      out.push_back(all[i]);
    }
  }
  return out;
}

Rebalancer::Rebalancer(ConcurrentPMA* pma, size_t num_workers)
    : pma_(pma),
      workers_(num_workers,
               // Per-shard worker affinity (ISSUE 8): when the config
               // names CPUs, each worker pins to its round-robin slot in
               // that set via the topology-aware pinner. Best effort —
               // a failed pin leaves the worker floating, as before.
               pma->config().worker_cpus.empty()
                   ? std::function<void(size_t)>(nullptr)
                   : [pma](size_t i) {
                       const auto& cpus = pma->config().worker_cpus;
                       PinToCpu(cpus[i % cpus.size()]);
                     }) {}

Rebalancer::~Rebalancer() { Stop(); }

void Rebalancer::Start() {
  if (master_.joinable()) return;
  master_ = std::thread([this] {
    // The master shares the shard's first CPU: it mostly coordinates
    // (drains queues, plans windows) and sleeps between requests, so
    // co-locating it with worker 0 keeps the whole rebalance pipeline
    // of a shard on that shard's cores.
    if (!pma_->config().worker_cpus.empty()) {
      PinToCpu(pma_->config().worker_cpus[0]);
    }
    MasterLoop();
  });
  if (pma_->watchdog_ms_ > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

void Rebalancer::Stop() {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (!master_.joinable()) return;
    stop_ = true;
    ignore_due_times_ = true;
  }
  cv_.notify_all();
  master_.join();
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(wd_m_);
      wd_stop_ = true;
    }
    wd_cv_.notify_all();
    watchdog_.join();
  }
}

void Rebalancer::Progress(const char* phase) {
  phase_.store(phase, std::memory_order_relaxed);
  progress_stamp_.fetch_add(1, std::memory_order_relaxed);
}

void Rebalancer::WatchdogLoop() {
  const auto interval = std::chrono::milliseconds(pma_->watchdog_ms_);
  uint64_t last_stamp = progress_stamp_.load(std::memory_order_relaxed);
  uint64_t stalled_intervals = 0;
  std::unique_lock<std::mutex> lk(wd_m_);
  for (;;) {
    if (wd_cv_.wait_for(lk, interval, [&] { return wd_stop_; })) return;
    const char* phase = phase_.load(std::memory_order_relaxed);
    const uint64_t stamp = progress_stamp_.load(std::memory_order_relaxed);
    if (phase == nullptr || stamp != last_stamp) {
      last_stamp = stamp;
      stalled_intervals = 0;
      continue;
    }
    ++stalled_intervals;
    // Re-dump with exponential rate limiting if the stall persists
    // (intervals 1, 2, 4, 8, ...), so a wedged master doesn't flood
    // stderr while still leaving a trail.
    if ((stalled_intervals & (stalled_intervals - 1)) != 0) continue;
    watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
    TailEventRing::Global().RecordInstant(TailEvent::kWatchdogStall);
    const size_t gb = active_gb_.load(std::memory_order_relaxed);
    const size_t ge = active_ge_.load(std::memory_order_relaxed);
    std::fprintf(stderr,
                 "[cpma] WATCHDOG: rebalancer made no progress for >= %lld ms "
                 "(phase=%s stamp=%llu window=[%zu,%zu))\n",
                 static_cast<long long>(pma_->watchdog_ms_ *
                                        (stalled_intervals + 1)),
                 phase, static_cast<unsigned long long>(stamp), gb, ge);
    // Gate-state dump for the active window. The epoch pin keeps the
    // snapshot alive while we walk its gates; DumpStateForStall never
    // blocks, so the watchdog cannot join the deadlock it is reporting.
    EpochGuard guard(pma_->gc_);
    Structure* snap = pma_->structure_.load(std::memory_order_acquire);
    constexpr size_t kMaxDumpGates = 32;
    const size_t dump_end = std::min({ge, snap->num_gates(),
                                      gb + kMaxDumpGates});
    for (size_t g = gb; g < dump_end; ++g) {
      snap->gates[g].DumpStateForStall(stderr);
    }
    if (dump_end < ge && dump_end < snap->num_gates()) {
      std::fprintf(stderr, "  ... (%zu more gates suppressed)\n",
                   std::min(ge, snap->num_gates()) - dump_end);
    }
  }
}

void Rebalancer::RequestRebalance(uint64_t version, uint32_t gate_id,
                                  size_t trigger_seg) {
  {
    std::lock_guard<std::mutex> lk(m_);
    ready_.push_back(Request{Request::Type::kRebalance, version, gate_id,
                             trigger_seg, 0});
  }
  cv_.notify_all();
}

void Rebalancer::RequestBatch(uint64_t version, uint32_t gate_id,
                              int64_t due_ms) {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (due_ms <= NowMillis() || ignore_due_times_) {
      ready_.push_back(
          Request{Request::Type::kBatch, version, gate_id, 0, due_ms});
    } else {
      deferred_.push_back(
          Request{Request::Type::kBatch, version, gate_id, 0, due_ms});
    }
  }
  cv_.notify_all();
}

void Rebalancer::RequestShrink(uint64_t version) {
  {
    std::lock_guard<std::mutex> lk(m_);
    ready_.push_back(Request{Request::Type::kShrink, version, 0, 0, 0});
  }
  cv_.notify_all();
}

void Rebalancer::Drain() {
  std::unique_lock<std::mutex> lk(m_);
  if (!master_.joinable()) return;
  ignore_due_times_ = true;
  cv_.notify_all();
  idle_cv_.wait(lk, [&] {
    return ready_.empty() && deferred_.empty() && !processing_;
  });
  ignore_due_times_ = false;
}

bool Rebalancer::Idle() {
  std::lock_guard<std::mutex> lk(m_);
  return ready_.empty() && deferred_.empty() && !processing_;
}

void Rebalancer::MasterLoop() {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    // Promote due deferred batches.
    const int64_t now = NowMillis();
    int64_t next_due = INT64_MAX;
    for (auto it = deferred_.begin(); it != deferred_.end();) {
      if (ignore_due_times_ || it->due_ms <= now) {
        ready_.push_back(*it);
        it = deferred_.erase(it);
      } else {
        next_due = std::min(next_due, it->due_ms);
        ++it;
      }
    }
    if (!ready_.empty()) {
      Request req = ready_.front();
      ready_.pop_front();
      processing_ = true;
      lk.unlock();
      Dispatch(req);
      lk.lock();
      processing_ = false;
      idle_cv_.notify_all();
      continue;
    }
    idle_cv_.notify_all();
    if (stop_) return;
    if (next_due == INT64_MAX) {
      cv_.wait(lk);
    } else {
      cv_.wait_for(lk, std::chrono::milliseconds(next_due - now + 1));
    }
  }
}

void Rebalancer::Dispatch(const Request& req) {
  if (CPMA_FAILPOINT("rebalancer.stall")) {
    // Injected stall (watchdog tests): freeze the master with the phase
    // set and the stamp unmoving — long enough for several watchdog
    // samples even under scheduler jitter, or a token pause when the
    // watchdog is disabled.
    const int64_t ms = pma_->watchdog_ms_ > 0 ? pma_->watchdog_ms_ * 5 : 10;
    Progress("stall(injected)");
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
  switch (req.type) {
    case Request::Type::kRebalance:
    case Request::Type::kBatch:
      HandleWindowWork(req);
      break;
    case Request::Type::kShrink:
      HandleShrink(req);
      break;
  }
  Progress(nullptr);  // idle: the watchdog stands down
}

// Gate-version lifecycle across the rebalance protocol (ISSUE 4): every
// acquisition below rides the gate state machine, which bumps the
// seqlock word on its WRITE/REBAL edges — MasterAcquire turns a FREE
// gate odd (a transferred REBAL gate is already odd from its writer and
// keeps the same mutation window), MasterRelease turns it even again
// after fences/storage settled, and InvalidateAndRelease publishes the
// invalidated flag on the same release edge so optimistic readers of
// the retired snapshot restart instead of validating stale chunks. No
// explicit version manipulation belongs here.
void Rebalancer::AcquireGates(Structure* snap, size_t nb, size_t ne,
                              size_t* gb, size_t* ge) {
  // Stamp before every potentially-blocking acquisition: a gate that
  // never frees leaves the stamp frozen in the "acquire" phase, which is
  // exactly the diagnosis the watchdog prints.
  auto acquire = [&](size_t g) {
    Progress("acquire-gates");
    snap->gates[g].MasterAcquire();
  };
  if (*gb == *ge) {  // nothing held yet
    for (size_t g = nb; g < ne; ++g) acquire(g);
    *gb = nb;
    *ge = ne;
  } else {
    CPMA_CHECK(nb <= *gb && ne >= *ge);
    for (size_t g = nb; g < *gb; ++g) acquire(g);
    for (size_t g = *ge; g < ne; ++g) acquire(g);
    *gb = nb;
    *ge = ne;
  }
  active_gb_.store(*gb, std::memory_order_relaxed);
  active_ge_.store(*ge, std::memory_order_relaxed);
}

void Rebalancer::ReleaseGates(Structure* snap, size_t gb, size_t ge) {
  for (size_t g = gb; g < ge; ++g) snap->gates[g].MasterRelease();
}

void Rebalancer::AcquireGatesAndDrain(Structure* snap, size_t nb, size_t ne,
                                      size_t* gb, size_t* ge,
                                      std::deque<GateOp>* raw) {
  const size_t old_b = *gb, old_e = *ge;
  AcquireGates(snap, nb, ne, gb, ge);
  auto drain = [&](size_t g) {
    Gate& gate = snap->gates[g];
    gate.MasterClearWriterActive();
    std::deque<GateOp> q = gate.MasterTakeQueue();
    pma_->pending_async_.fetch_sub(static_cast<int64_t>(q.size()),
                                   std::memory_order_relaxed);
    for (const GateOp& op : q) raw->push_back(op);
  };
  if (old_b == old_e) {
    for (size_t g = *gb; g < *ge; ++g) drain(g);
  } else {
    for (size_t g = *gb; g < old_b; ++g) drain(g);
    for (size_t g = old_e; g < *ge; ++g) drain(g);
  }
}

void Rebalancer::HandleWindowWork(const Request& req) {
  TailSpan tail_span(TailEvent::kRebalanceWindow);
  Progress("window:start");
  Structure* snap = pma_->structure_.load(std::memory_order_acquire);
  if (snap->version != req.version) return;  // resized since: gate retired
  const size_t spg = snap->segments_per_gate;
  Storage* st = snap->storage.get();
  const size_t B = st->segment_capacity();

  size_t gb = req.gate_id, ge = req.gate_id;
  std::deque<GateOp> raw;
  AcquireGatesAndDrain(snap, req.gate_id, req.gate_id + 1, &gb, &ge, &raw);
  Gate& origin = snap->gates[req.gate_id];

  size_t trigger = req.trigger_seg;
  if (trigger < origin.seg_begin() || trigger >= origin.seg_end()) {
    trigger = origin.seg_begin();
  }
  // A rebalance request may have been resolved by an absorbed window
  // while queued; with no batched work left, it is a no-op.
  if (req.type == Request::Type::kRebalance && raw.empty() &&
      st->card(trigger) < B) {
    ReleaseGates(snap, gb, ge);
    return;
  }

  DensityBounds bounds(pma_->cfg_.pma, st->num_segments());
  const size_t gate_level = Log2Floor(spg);
  for (size_t level = gate_level; level <= bounds.root_level(); ++level) {
    size_t b, e;
    WindowAt(trigger, level, &b, &e);
    AcquireGatesAndDrain(snap, b / spg, e / spg, &gb, &ge, &raw);
    std::vector<BatchEntry> batch = CanonicalizeBatch(raw);
    size_t ins = 0, del = 0;
    const size_t total = CountMerged(*st, b, e, batch, &ins, &del);
    const size_t cap = (e - b) * B;
    const double delta =
        static_cast<double>(total) / static_cast<double>(cap);
    if (delta <= bounds.Tau(level) && total + (e - b) <= cap) {
      // COW snapshots (ISSUE 9): capture every window gate's pre-image
      // while all of them are held, so the fence moves and the storage
      // rewrite land atomically on one side of each snapshot's cut.
      // (ExecuteResize needs no hook: it merges *out* of the old
      // storage, which snapshots pin via their epoch slot.)
      for (size_t g = b / spg; g < e / spg; ++g) {
        pma_->PreserveGateForSnapshots(snap, &snap->gates[g]);
      }
      Progress("window:spread");
      if (batch.empty()) {
        ExecuteSpread(snap, b, e, trigger);
      } else {
        ExecuteMergedSpread(snap, b, e, batch, total);
        pma_->count_.fetch_add(ins, std::memory_order_relaxed);
        pma_->count_.fetch_sub(del, std::memory_order_relaxed);
        pma_->stat_batches_.fetch_add(1, std::memory_order_relaxed);
      }
      UpdateFences(snap, b / spg, e / spg);
      const int64_t now = NowMillis();
      for (size_t g = b / spg; g < e / spg; ++g) {
        snap->gates[g].set_last_global_rebalance_ms(now);
      }
      pma_->stat_global_rebalances_.fetch_add(1, std::memory_order_relaxed);
      ReleaseGates(snap, gb, ge);
      return;
    }
  }
  // Even the root violates its threshold: resize, merging the batch. On
  // allocation failure ExecuteResize requeues the drained ops and
  // releases the gates itself; there is nothing more to do here.
  AcquireGates(snap, 0, snap->num_gates(), &gb, &ge);
  ExecuteResize(snap, std::move(raw));
}

void Rebalancer::HandleShrink(const Request& req) {
  Structure* snap = pma_->structure_.load(std::memory_order_acquire);
  if (snap->version != req.version) return;
  if (snap->num_gates() <= 2) return;
  size_t gb = 0, ge = 0;
  AcquireGates(snap, 0, snap->num_gates(), &gb, &ge);
  // Re-validate under full ownership.
  Storage* st = snap->storage.get();
  size_t total = 0;
  for (size_t s = 0; s < st->num_segments(); ++s) total += st->card(s);
  if (static_cast<double>(total) <
      pma_->cfg_.pma.shrink_density * static_cast<double>(st->capacity())) {
    if (!ExecuteResize(snap)) {
      // Shrink failed on allocation (gates already released by the
      // failure path): clear the request flag so a future density drop
      // can ask again — shrinking is an optimization, not a correctness
      // requirement, so no dedicated retry is scheduled.
      snap->resize_requested.store(false, std::memory_order_release);
    }
  } else {
    snap->resize_requested.store(false, std::memory_order_release);
    ReleaseGates(snap, gb, ge);
  }
}

void Rebalancer::ExecuteSpread(Structure* snap, size_t seg_b, size_t seg_e,
                               size_t trigger_seg) {
  Storage* st = snap->storage.get();
  const size_t spg = snap->segments_per_gate;
  const size_t window_gates = (seg_e - seg_b) / spg;
  WindowPlan plan = PlanSpread(*st, seg_b, seg_e, pma_->adaptive_effective(),
                               trigger_seg);
  const size_t P =
      std::min(workers_.num_threads(), window_gates);
  if (P >= 2 &&
      window_gates >= pma_->cfg_.parallel_rebalance_min_gates) {
    // Phase 1: all partitions copy into the buffer (reads from the live
    // array never conflict with buffer writes). Phase 2: only after every
    // copy completed are the pages rewired — the "delayed rewiring"
    // coordination of §3.3.
    //
    // Partition boundaries balance *live elements*, not gate counts: a
    // partition's copy cost is the elements it writes, and skewed
    // windows (a hot append gate, adaptive plans) used to hand one
    // worker nearly all of them while the rest idled. Cutting the
    // cumulative target-cardinality prefix at each 1/P share keeps the
    // workers even; boundaries stay on gates so SwapWindow keeps its
    // page alignment for rewiring.
    std::vector<std::pair<size_t, size_t>> parts;
    uint64_t acc = 0;
    size_t start_gate = 0;
    for (size_t g = 0; g < window_gates; ++g) {
      for (size_t s = 0; s < spg; ++s) acc += plan.target_card[g * spg + s];
      if (g + 1 == window_gates ||
          (parts.size() + 1 < P &&
           acc * P >= uint64_t{plan.total} * (parts.size() + 1))) {
        parts.emplace_back(seg_b + start_gate * spg, seg_b + (g + 1) * spg);
        start_gate = g + 1;
      }
    }
    WaitGroup wg;
    Progress("spread:copy");
    wg.Add(static_cast<int>(parts.size()));
    for (auto [pb, pe] : parts) {
      workers_.Submit([st, &plan, pb, pe, &wg] {
        CopyPartitionToBuffer(st, plan, pb, pe);
        wg.Done();
      });
    }
    wg.Wait();
    Progress("spread:swap");
    wg.Add(static_cast<int>(parts.size()));
    for (auto [pb, pe] : parts) {
      workers_.Submit([st, pb, pe, &wg] {
        st->SwapWindow(pb, pe);
        wg.Done();
      });
    }
    wg.Wait();
    FinishSpread(st, plan, /*swap=*/false);
  } else {
    CopyPartitionToBuffer(st, plan, seg_b, seg_e);
    FinishSpread(st, plan, /*swap=*/true);
  }
}

void Rebalancer::ExecuteMergedSpread(Structure* snap, size_t seg_b,
                                     size_t seg_e,
                                     const std::vector<BatchEntry>& ops,
                                     size_t merged_total) {
  Storage* st = snap->storage.get();
  WindowPlan plan = PlanMergedSpread(*st, seg_b, seg_e, merged_total);
  MergedCopyToBuffer(st, plan, ops);
  FinishSpread(st, plan, /*swap=*/true);
}

void Rebalancer::UpdateFences(Structure* snap, size_t gb, size_t ge) {
  RecomputeFences(snap, gb, ge);
}

bool Rebalancer::ExecuteResize(Structure* snap, std::deque<GateOp> extra) {
  TailSpan tail_span(TailEvent::kResize);
  Storage* st = snap->storage.get();
  // Drain every combining queue; those updates are merged into the new
  // array in one pass (then the queues' gates die with the snapshot).
  Progress("resize:drain");
  std::deque<GateOp> all_ops = std::move(extra);
  for (size_t g = 0; g < snap->num_gates(); ++g) {
    Gate& gate = snap->gates[g];
    gate.MasterClearWriterActive();
    std::deque<GateOp> q = gate.MasterTakeQueue();
    pma_->pending_async_.fetch_sub(static_cast<int64_t>(q.size()),
                                   std::memory_order_relaxed);
    for (const GateOp& op : q) all_ops.push_back(op);
  }
  std::vector<BatchEntry> batch = CanonicalizeBatch(all_ops);
  size_t ins = 0, del = 0;
  const size_t total =
      CountMerged(*st, 0, st->num_segments(), batch, &ins, &del);

  // Everything fallible happens before any mutation of shared state:
  // storage through the retry/degradation ladder, then the whole new
  // snapshot (gates, index, fences) under a bad_alloc net. Only once the
  // replacement exists in full do we publish — a failure at any point
  // leaves the old snapshot untouched and falls to the requeue path.
  Progress("resize:alloc");
  const size_t new_segs = SegmentsForCount(total);
  Status status;
  std::unique_ptr<Storage> fresh =
      AllocStorageWithRetry(new_segs, total, &status);
  Structure* ns = nullptr;
  if (fresh != nullptr) {
    Progress("resize:merge");
    const size_t got_segs = fresh->num_segments();
    try {
      MergedStreamInto(*st, batch, total, fresh.get());
      ns = new Structure();
      ns->version = snap->version + 1;
      ns->segments_per_gate = snap->segments_per_gate;
      ns->storage = std::move(fresh);
      const size_t num_gates = got_segs / snap->segments_per_gate;
      for (size_t g = 0; g < num_gates; ++g) {
        ns->gates.emplace_back(static_cast<uint32_t>(g),
                               g * snap->segments_per_gate,
                               (g + 1) * snap->segments_per_gate);
      }
      ns->index =
          std::make_unique<StaticIndex>(num_gates, pma_->cfg_.index_fanout);
      RecomputeFences(ns, 0, num_gates);
    } catch (const std::bad_alloc&) {
      delete ns;
      ns = nullptr;
      status = Status::ResourceExhausted(
          "resize: snapshot metadata allocation failed");
    }
  }
  if (ns == nullptr) {
    if (status.ok()) status = Status::ResourceExhausted("resize failed");
    RequeueAndReschedule(snap, all_ops);
    pma_->ReportError(status);
    return false;
  }
  consecutive_resize_failures_ = 0;

  Progress("resize:publish");
  pma_->count_.store(total, std::memory_order_relaxed);
  pma_->structure_.store(ns, std::memory_order_release);
  pma_->stat_resizes_.fetch_add(1, std::memory_order_relaxed);

  // Wake every client parked on the old gates; they observe the
  // invalidation, refresh their epoch and restart on the new snapshot.
  for (size_t g = 0; g < snap->num_gates(); ++g) {
    snap->gates[g].InvalidateAndRelease();
  }
  // Byte-accounted retirement (§3.4): the snapshot's dominant footprint
  // is its storage (live region + rebalance buffer), so a parked reader
  // pinning a few multi-MB snapshots trips the bytes watermark long
  // before the count watermark would notice.
  const size_t snap_bytes = sizeof(Structure) +
                            2 * snap->storage->capacity() * sizeof(Item) +
                            snap->num_gates() * sizeof(Gate);
  pma_->gc_.Retire(snap, snap_bytes);
  return true;
}

std::unique_ptr<Storage> Rebalancer::AllocStorageWithRetry(size_t new_segs,
                                                           size_t total,
                                                           Status* status) {
  const size_t B = pma_->cfg_.pma.segment_capacity;
  const bool use_rewiring = pma_->cfg_.pma.use_rewiring;
  const size_t min_segs = 2 * pma_->cfg_.segments_per_gate;
  // Rung 1: retry at the target capacity. Between attempts, run an
  // epoch-GC pass — retired snapshots are the dominant heap consumers,
  // so a collect is the most likely thing to actually free memory — and
  // back off briefly to let concurrent frees land.
  constexpr int kAttempts = 3;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    if (attempt > 0) {
      pma_->stat_rebalance_retries_.fetch_add(1, std::memory_order_relaxed);
      pma_->gc_.Collect();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(int64_t{1} << (attempt - 1)));
    }
    if (auto s = Storage::TryCreate(new_segs, B, use_rewiring, status)) {
      return s;
    }
  }
  // Rung 2: degrade to denser (smaller) capacities while the merged
  // elements still fit with one free slot per segment (MergedStreamInto
  // needs total <= segs * B; the extra slack keeps the array usable).
  // A denser array rebalances more often — degraded, not broken.
  for (size_t segs = new_segs / 2; segs >= min_segs; segs /= 2) {
    if (total + segs > segs * B) break;
    pma_->stat_rebalance_retries_.fetch_add(1, std::memory_order_relaxed);
    if (auto s = Storage::TryCreate(segs, B, use_rewiring, status)) {
      std::fprintf(stderr,
                   "[cpma] resize degraded: allocated %zu segments instead "
                   "of %zu (%s)\n",
                   segs, new_segs, status->ToString().c_str());
      return s;
    }
  }
  return nullptr;
}

void Rebalancer::RequeueAndReschedule(Structure* snap,
                                      const std::deque<GateOp>& ops) {
  const size_t num_gates = snap->num_gates();
  // Bucket the drained ops back into their fence-owning gates, in seq
  // order. All gates are held, so fences cannot move under us; the index
  // may lag the fences, so walk to the owning neighbour after Lookup
  // (same protocol as the client paths).
  std::vector<GateOp> sorted(ops.begin(), ops.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const GateOp& a, const GateOp& b) {
                     return a.seq < b.seq;
                   });
  std::vector<std::vector<GateOp>> per_gate(num_gates);
  for (const GateOp& op : sorted) {
    size_t g = std::min(snap->index->Lookup(op.key), num_gates - 1);
    while (g > 0 && op.key < snap->gates[g].low_fence()) --g;
    while (g + 1 < num_gates && op.key > snap->gates[g].high_fence()) ++g;
    per_gate[g].push_back(op);
  }
  size_t requeued = 0, affected_gates = 0;
  for (size_t g = 0; g < num_gates; ++g) {
    if (per_gate[g].empty()) continue;
    snap->gates[g].MasterRequeue(per_gate[g]);
    requeued += per_gate[g].size();
    ++affected_gates;
  }
  // The drain decremented pending_async_ for these ops; they are pending
  // again now, and Flush() must keep waiting for them.
  pma_->pending_async_.fetch_add(static_cast<int64_t>(requeued),
                                 std::memory_order_relaxed);

  const size_t shift = std::min<size_t>(consecutive_resize_failures_, 6);
  ++consecutive_resize_failures_;
  const int64_t backoff_ms = std::min<int64_t>(1000, int64_t{10} << shift);

  Progress("resize:requeue");
  ReleaseGates(snap, 0, num_gates);

  // One deferred retry batch per gate holding requeued ops. Drain()'s
  // ignore_due_times_ promotes these immediately, so a Flush() blocked
  // on the requeued ops converges as soon as allocation recovers.
  if (requeued > 0) {
    const int64_t due = NowMillis() + backoff_ms;
    {
      std::lock_guard<std::mutex> lk(m_);
      for (size_t g = 0; g < num_gates; ++g) {
        if (per_gate[g].empty()) continue;
        Request r{Request::Type::kBatch, snap->version,
                  static_cast<uint32_t>(g), 0, due};
        if (ignore_due_times_) {
          ready_.push_back(r);
        } else {
          deferred_.push_back(r);
        }
      }
    }
    cv_.notify_all();
  }
  std::fprintf(stderr,
               "[cpma] resize failed (%zu consecutive): requeued %zu op(s) "
               "across %zu gate(s), retrying in %lld ms\n",
               consecutive_resize_failures_, requeued, affected_gates,
               static_cast<long long>(backoff_ms));
}

size_t Rebalancer::SegmentsForCount(size_t count) const {
  const size_t B = pma_->cfg_.pma.segment_capacity;
  size_t segs = 2 * pma_->cfg_.segments_per_gate;
  while (static_cast<double>(count) >
         0.6 * static_cast<double>(segs) * static_cast<double>(B)) {
    segs *= 2;
  }
  return segs;
}

}  // namespace cpma
