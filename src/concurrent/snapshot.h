// PMASnapshot — a frozen, consistent point-in-time view of a
// ConcurrentPMA (ISSUE 9), captured without stopping the world.
//
// Capture is O(1) in the data size: Snapshot() pins the current
// Structure in a dedicated epoch slot, opens a zero-copy COW view of
// the storage region (rewiring/rewiring.h) and registers itself with
// the PMA. No chunk is copied up front. The snapshot's image of each
// gate is fixed lazily, at that gate's *capture point* — the first
// post-snapshot mutation of the gate (which preserves the pre-image
// first, see ConcurrentPMA::PreserveGateForSnapshots) or the snapshot's
// own first read of it, whichever comes first. A mutator that raced
// ahead of the registration simply linearizes before the capture point.
// Because window rebalances preserve every gate of their window while
// holding all of them, fence moves land atomically on one side of the
// cut: the per-gate fences of the snapshot always form a proper
// partition of the key space, so sequential gate iteration yields an
// ordered scan with zero retries — there is structurally no restart
// path in the reader below.
//
// Per-gate image (GateSnap): fence keys, cardinalities and routing keys
// are small and always heap-copied under the preserving hold. The chunk
// items either live in the COW view (interior pages frozen through
// CowPreserveRange; the partial-page edge bytes, which may share pages
// with neighbouring chunks, are heap-copied fragments) or — when the
// view is unavailable, stale, or the freeze failed — as one full heap
// copy of the chunk. Readers materialize a gate from its entry when
// present; an absent entry means the gate is untouched since capture,
// so a validated optimistic read of the live chunk (or the blocking
// READ latch after the two-attempt budget) returns the frozen image.
// After any live read the reader re-checks the entry slot: a writer
// that preserved + mutated + released entirely inside the read window
// wins, and its entry is used instead.
//
// Destruction deregisters the snapshot, closes the view (superseded COW
// pages are hole-punched and recycled once unpinned), retires the
// GateSnap entries through the epoch GC's byte-accounted limbo lists,
// and only then releases the epoch pin that kept the Structure alive.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/epoch_gc.h"
#include "common/ordered_map.h"
#include "pma/item.h"
#include "rewiring/rewiring.h"

namespace cpma {

class ConcurrentPMA;
struct Structure;

namespace snapshot_internal {

/// Frozen image of one gate's chunk, built once under the preserving
/// hold (gate exclusively owned, snaps_mu_ held).
struct GateSnap {
  Key low_fence = kKeyMin;
  Key high_fence = kKeySentinel;
  std::vector<uint32_t> cards;  // per segment of the chunk
  std::vector<Key> routes;      // per segment of the chunk

  // true: the chunk's page-aligned interior is frozen in the COW view;
  // `head`/`tail` carry the partial-page edge bytes. false: `full` is
  // the whole chunk.
  bool from_view = false;
  std::vector<char> head;
  std::vector<char> tail;
  std::vector<char> full;

  size_t bytes() const {
    return sizeof(GateSnap) + cards.capacity() * sizeof(uint32_t) +
           routes.capacity() * sizeof(Key) + head.capacity() +
           tail.capacity() + full.capacity();
  }
};

}  // namespace snapshot_internal

class PMASnapshot {
 public:
  ~PMASnapshot();

  PMASnapshot(const PMASnapshot&) = delete;
  PMASnapshot& operator=(const PMASnapshot&) = delete;

  /// Point lookup in the frozen image.
  bool Find(Key key, Value* value) const;

  /// Sum of all values in the frozen image.
  uint64_t SumAll() const;

  /// Ordered range scan over the frozen image; the callback's bool
  /// return stops the scan early, exactly like OrderedMap::Scan.
  void Scan(Key min, Key max, const ScanCallback& cb) const;

  /// Number of live items in the frozen image (counted, not cached).
  uint64_t CountItems() const;

  /// Monotone capture stamp (1-based, per PMA).
  uint64_t stamp() const { return stamp_; }

  /// Structure version the snapshot pinned (diagnostics).
  uint64_t structure_version() const { return struct_version_; }

  /// Heap bytes of preserved GateSnap entries charged to this snapshot
  /// (the COW page overhead is region-wide: cow_pages_retained_bytes()).
  size_t retained_bytes() const {
    return retained_bytes_.load(std::memory_order_relaxed);
  }

  /// Gates materialized via the blocking READ latch after the
  /// optimistic budget (observability; bounded per gate per read pass).
  uint64_t latched_gate_reads() const {
    return latched_gate_reads_.load(std::memory_order_relaxed);
  }

  /// Scan restarts. Structurally zero — every materialization path
  /// terminates with a definitive frozen image and no gate is ever
  /// re-read within a pass; the counter exists so tests pin down that
  /// property against regressions.
  uint64_t scan_retries() const {
    return scan_retries_.load(std::memory_order_relaxed);
  }

 private:
  friend class ConcurrentPMA;
  PMASnapshot() = default;

  /// Produce gate g's frozen image: chunk bytes into `scratch` (gaps
  /// beyond each segment's card are unspecified), cardinalities and
  /// fences out. Never restarts.
  void MaterializeGate(size_t g, std::vector<char>* scratch,
                       std::vector<uint32_t>* cards, Key* low,
                       Key* high) const;
  void MaterializeFromEntry(const snapshot_internal::GateSnap& e, size_t g,
                            std::vector<char>* scratch,
                            std::vector<uint32_t>* cards, Key* low,
                            Key* high) const;

  const ConcurrentPMA* pma_ = nullptr;
  Structure* snap_ = nullptr;  // epoch-pinned via slot_
  uint64_t stamp_ = 0;
  uint64_t struct_version_ = 0;
  EpochSlot* slot_ = nullptr;  // dedicated pin; never the thread-local slot
  std::unique_ptr<RewiredRegion::SnapshotView> view_;  // may be null
  std::unique_ptr<std::atomic<snapshot_internal::GateSnap*>[]> entries_;
  size_t num_gates_ = 0;
  std::atomic<size_t> retained_bytes_{0};
  mutable std::atomic<uint64_t> latched_gate_reads_{0};
  mutable std::atomic<uint64_t> scan_retries_{0};
};

}  // namespace cpma
