#include "concurrent/gate.h"

#include "common/latches.h"
#include "common/status.h"

namespace cpma {

namespace {
// Typical writer holds are sub-microsecond (one segment insert), so
// sleeping on the condvar costs far more than the wait itself. Spin a
// little before blocking; rebalances and resizes still park properly.
constexpr int kSpinRounds = 48;
}  // namespace

GateAccess Gate::WriterAccess(const GateOp& op, bool allow_queue) {
  std::unique_lock<std::mutex> lk(m_);
  int spins = 0;
  for (;;) {
    if (invalidated_) return GateAccess::kInvalidated;
    GateAccess fence_result;
    if (!FenceCheck(op.key, &fence_result)) return fence_result;
    if (allow_queue && writer_active_) {
      queue_.push_back(op);
      return GateAccess::kQueued;
    }
    if (state_ == State::kFree) {
      state_ = State::kWrite;
      // In asynchronous modes the owning writer becomes the gate's
      // combiner (pQ set, paper §3.5); in sync mode no queue exists.
      writer_active_ = allow_queue;
      return GateAccess::kOwner;
    }
    if (spins++ < kSpinRounds) {
      lk.unlock();
      for (int i = 0; i < 32; ++i) SpinLock::CpuRelax();
      lk.lock();
      continue;
    }
    cv_.wait(lk);
  }
}

GateAccess Gate::ReaderAccess(const Key* key) {
  std::unique_lock<std::mutex> lk(m_);
  int spins = 0;
  for (;;) {
    if (invalidated_) return GateAccess::kInvalidated;
    if (key != nullptr) {
      GateAccess fence_result;
      if (!FenceCheck(*key, &fence_result)) return fence_result;
    }
    if (state_ == State::kFree || state_ == State::kRead) {
      state_ = State::kRead;
      ++num_readers_;
      return GateAccess::kOwner;
    }
    if (spins++ < kSpinRounds) {
      lk.unlock();
      for (int i = 0; i < 32; ++i) SpinLock::CpuRelax();
      lk.lock();
      continue;
    }
    cv_.wait(lk);
  }
}

void Gate::ReaderRelease() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kRead && num_readers_ > 0);
  if (--num_readers_ == 0) {
    state_ = State::kFree;
    cv_.notify_all();
  }
}

bool Gate::WriterPopOrRelease(GateOp* op) {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kWrite);
  if (queue_.empty()) {
    writer_active_ = false;
    state_ = State::kFree;
    cv_.notify_all();
    return false;
  }
  *op = queue_.front();
  queue_.pop_front();
  return true;
}

std::deque<GateOp> Gate::WriterTakeQueue() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kWrite);
  std::deque<GateOp> out;
  out.swap(queue_);
  return out;
}

bool Gate::WriterRelease() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kWrite);
  if (!queue_.empty()) return false;
  writer_active_ = false;
  state_ = State::kFree;
  cv_.notify_all();
  return true;
}

void Gate::OwnerPushBack(const GateOp& op) {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kWrite);
  queue_.push_back(op);
}

void Gate::OwnerPushFront(const std::vector<GateOp>& ops) {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kWrite);
  queue_.insert(queue_.begin(), ops.begin(), ops.end());
}

void Gate::TransferToRebalancer() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kWrite);
  state_ = State::kRebal;
  master_owned_ = false;
  // The master may already be waiting on this gate to extend a window;
  // an unowned REBAL gate is acquirable by it.
  cv_.notify_all();
}

bool Gate::WriterReacquireAfterRebal() {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    if (invalidated_) return false;
    if (state_ == State::kFree) {
      state_ = State::kWrite;
      return true;
    }
    cv_.wait(lk);
  }
}

void Gate::WriterDetachKeepQueue() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kWrite && writer_active_);
  state_ = State::kFree;
  cv_.notify_all();
}

void Gate::MasterAcquire() {
  std::unique_lock<std::mutex> lk(m_);
  cv_.wait(lk, [&] {
    return state_ == State::kFree ||
           (state_ == State::kRebal && !master_owned_);
  });
  state_ = State::kRebal;
  master_owned_ = true;
}

void Gate::MasterRelease() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kRebal && master_owned_);
  state_ = State::kFree;
  master_owned_ = false;
  cv_.notify_all();
}

std::deque<GateOp> Gate::MasterTakeQueue() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kRebal && master_owned_);
  std::deque<GateOp> out;
  out.swap(queue_);
  return out;
}

void Gate::MasterClearWriterActive() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kRebal && master_owned_);
  writer_active_ = false;
}

void Gate::InvalidateAndRelease() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kRebal && master_owned_);
  CPMA_CHECK_MSG(queue_.empty(), "resize must drain combining queues");
  invalidated_ = true;
  writer_active_ = false;
  state_ = State::kFree;
  master_owned_ = false;
  cv_.notify_all();
}

void Gate::SetFences(Key low, Key high) {
  std::lock_guard<std::mutex> lk(m_);
  low_fence_ = low;
  high_fence_ = high;
}

}  // namespace cpma
