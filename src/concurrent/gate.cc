#include "concurrent/gate.h"

#include "common/latches.h"
#include "common/status.h"

namespace cpma {

namespace {
// Typical writer holds are sub-microsecond (one segment insert), so
// sleeping on the condvar costs far more than the wait itself. Spin a
// little before blocking; rebalances and resizes still park properly.
//
// The spin phase polls the published state word / fences (relaxed
// atomics) and only re-acquires the mutex when the poll says the
// outcome could change (ISSUE 4 micro-fix): the old loop re-locked
// every kPollsPerRound relaxes even while the state word alone showed
// the gate still held, which turned a contended gate into a mutex
// ping-pong between the holder and every spinner.
constexpr int kSpinRounds = 48;
constexpr int kPollsPerRound = 32;
}  // namespace

bool Gate::WriterPollActionable(Key key, bool allow_queue) const {
  if (invalidated_.load(std::memory_order_relaxed)) return true;
  if (key < low_fence() || key > high_fence()) return true;
  if (pub_state_.load(std::memory_order_relaxed) == State::kFree) return true;
  // An active combiner accepts queued ops regardless of latch state.
  return allow_queue && writer_active_.load(std::memory_order_relaxed);
}

bool Gate::ReaderPollActionable(const Key* key) const {
  if (invalidated_.load(std::memory_order_relaxed)) return true;
  if (key != nullptr && (*key < low_fence() || *key > high_fence())) {
    return true;
  }
  const State s = pub_state_.load(std::memory_order_relaxed);
  return s == State::kFree || s == State::kRead;
}

GateAccess Gate::WriterAccess(const GateOp& op, bool allow_queue) {
  std::unique_lock<std::mutex> lk(m_);
  int spins = 0;
  for (;;) {
    if (invalidated_.load(std::memory_order_relaxed)) {
      return GateAccess::kInvalidated;
    }
    GateAccess fence_result;
    if (!FenceCheck(op.key, &fence_result)) return fence_result;
    if (allow_queue && writer_active_.load(std::memory_order_relaxed)) {
      queue_.push_back(op);
      return GateAccess::kQueued;
    }
    if (state_ == State::kFree) {
      SetState(State::kWrite);
      version_.BeginMutate();
      // In asynchronous modes the owning writer becomes the gate's
      // combiner (pQ set, paper §3.5); in sync mode no queue exists.
      writer_active_.store(allow_queue, std::memory_order_relaxed);
      return GateAccess::kOwner;
    }
    if (spins < kSpinRounds) {
      lk.unlock();
      while (spins < kSpinRounds) {
        for (int i = 0; i < kPollsPerRound; ++i) SpinLock::CpuRelax();
        ++spins;
        if (WriterPollActionable(op.key, allow_queue)) break;
      }
      lk.lock();
      continue;
    }
    cv_.wait(lk);
  }
}

GateAccess Gate::ReaderAccess(const Key* key) {
  std::unique_lock<std::mutex> lk(m_);
  int spins = 0;
  for (;;) {
    if (invalidated_.load(std::memory_order_relaxed)) {
      return GateAccess::kInvalidated;
    }
    if (key != nullptr) {
      GateAccess fence_result;
      if (!FenceCheck(*key, &fence_result)) return fence_result;
    }
    if (state_ == State::kFree || state_ == State::kRead) {
      SetState(State::kRead);
      ++num_readers_;
      return GateAccess::kOwner;
    }
    if (spins < kSpinRounds) {
      lk.unlock();
      while (spins < kSpinRounds) {
        for (int i = 0; i < kPollsPerRound; ++i) SpinLock::CpuRelax();
        ++spins;
        if (ReaderPollActionable(key)) break;
      }
      lk.lock();
      continue;
    }
    cv_.wait(lk);
  }
}

void Gate::ReaderRelease() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kRead && num_readers_ > 0);
  if (--num_readers_ == 0) {
    SetState(State::kFree);
    cv_.notify_all();
  }
}

bool Gate::WriterPopOrRelease(GateOp* op) {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kWrite);
  if (queue_.empty()) {
    writer_active_.store(false, std::memory_order_relaxed);
    version_.EndMutate();
    SetState(State::kFree);
    cv_.notify_all();
    return false;
  }
  *op = queue_.front();
  queue_.pop_front();
  return true;
}

std::deque<GateOp> Gate::WriterTakeQueue() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kWrite);
  std::deque<GateOp> out;
  out.swap(queue_);
  return out;
}

bool Gate::WriterRelease() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kWrite);
  if (!queue_.empty()) return false;
  writer_active_.store(false, std::memory_order_relaxed);
  version_.EndMutate();
  SetState(State::kFree);
  cv_.notify_all();
  return true;
}

void Gate::OwnerPushBack(const GateOp& op) {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kWrite);
  queue_.push_back(op);
}

void Gate::OwnerPushFront(const std::vector<GateOp>& ops) {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kWrite);
  queue_.insert(queue_.begin(), ops.begin(), ops.end());
}

void Gate::TransferToRebalancer() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kWrite);
  // WRITE -> REBAL keeps the version word odd: the mutation window
  // simply changes owner, and readers must not validate in between.
  SetState(State::kRebal);
  master_owned_ = false;
  // The master may already be waiting on this gate to extend a window;
  // an unowned REBAL gate is acquirable by it.
  cv_.notify_all();
}

bool Gate::WriterReacquireAfterRebal() {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    if (invalidated_.load(std::memory_order_relaxed)) return false;
    if (state_ == State::kFree) {
      SetState(State::kWrite);
      version_.BeginMutate();
      return true;
    }
    cv_.wait(lk);
  }
}

void Gate::WriterDetachKeepQueue() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kWrite &&
             writer_active_.load(std::memory_order_relaxed));
  version_.EndMutate();
  SetState(State::kFree);
  cv_.notify_all();
}

void Gate::MasterAcquire() {
  std::unique_lock<std::mutex> lk(m_);
  cv_.wait(lk, [&] {
    return state_ == State::kFree ||
           (state_ == State::kRebal && !master_owned_);
  });
  // A transferred gate (REBAL, unowned) is already mid-mutation — its
  // version word is odd from the writer's acquire; only a fresh FREE ->
  // REBAL edge opens a new mutation window.
  if (state_ == State::kFree) version_.BeginMutate();
  SetState(State::kRebal);
  master_owned_ = true;
  rebal_stamp_.fetch_add(1, std::memory_order_relaxed);
}

void Gate::MasterRelease() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kRebal && master_owned_);
  version_.EndMutate();
  SetState(State::kFree);
  master_owned_ = false;
  rebal_stamp_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_all();
}

std::deque<GateOp> Gate::MasterTakeQueue() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kRebal && master_owned_);
  std::deque<GateOp> out;
  out.swap(queue_);
  return out;
}

void Gate::MasterClearWriterActive() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kRebal && master_owned_);
  writer_active_.store(false, std::memory_order_relaxed);
}

void Gate::MasterRequeue(const std::vector<GateOp>& ops) {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kRebal && master_owned_);
  queue_.insert(queue_.begin(), ops.begin(), ops.end());
  // The gate reverts to the detached-combiner shape batch mode uses
  // (writer_active set, queue accumulating, no latch holder after the
  // master releases): arriving writers enqueue behind the requeued ops —
  // preserving per-key FIFO — until the rebalancer's deferred retry
  // drains the queue.
  writer_active_.store(true, std::memory_order_relaxed);
}

void Gate::InvalidateAndRelease() {
  std::lock_guard<std::mutex> lk(m_);
  CPMA_CHECK(state_ == State::kRebal && master_owned_);
  CPMA_CHECK_MSG(queue_.empty(), "resize must drain combining queues");
  // Flag first, then close the mutation window: EndMutate's release
  // edge publishes the flag together with the even version, so an
  // optimistic reader that sees the post-resize version also sees the
  // invalidation and restarts on the new snapshot instead of serving
  // the retired storage forever.
  invalidated_.store(true, std::memory_order_relaxed);
  writer_active_.store(false, std::memory_order_relaxed);
  version_.EndMutate();
  SetState(State::kFree);
  master_owned_ = false;
  rebal_stamp_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_all();
}

void Gate::DumpStateForStall(std::FILE* out) const {
  static const char* kStateNames[] = {"FREE", "READ", "WRITE", "REBAL"};
  const State s = pub_state_.load(std::memory_order_relaxed);
  char queue_len[24];
  {
    std::unique_lock<std::mutex> lk(m_, std::try_to_lock);
    if (lk.owns_lock()) {
      std::snprintf(queue_len, sizeof(queue_len), "%zu", queue_.size());
    } else {
      std::snprintf(queue_len, sizeof(queue_len), "?(locked)");
    }
  }
  std::fprintf(out,
               "  gate %u: state=%s writer_active=%d invalidated=%d "
               "queue=%s fences=[%llu,%llu] segs=[%zu,%zu) stamp=%llu\n",
               id_, kStateNames[static_cast<int>(s)],
               writer_active_.load(std::memory_order_relaxed) ? 1 : 0,
               invalidated_.load(std::memory_order_relaxed) ? 1 : 0,
               queue_len,
               static_cast<unsigned long long>(low_fence()),
               static_cast<unsigned long long>(high_fence()), seg_begin_,
               seg_end_,
               static_cast<unsigned long long>(
                   rebal_stamp_.load(std::memory_order_relaxed)));
}

void Gate::SetFences(Key low, Key high) {
  std::lock_guard<std::mutex> lk(m_);
  low_fence_.store(low, std::memory_order_relaxed);
  high_fence_.store(high, std::memory_order_relaxed);
}

}  // namespace cpma
