// Gate: per-chunk concurrency metadata (paper §3.1).
//
// The sparse array is split into fixed-size chunks of `segments_per_gate`
// segments; each chunk is guarded by one Gate carrying
//   (a) the chunk's read-write latch — a {FREE, READ, WRITE, REBAL}
//       state machine on a mutex/condvar pair. REBAL marks ownership by
//       the rebalancer service: a writer *transfers* its WRITE hold to
//       the master (paper §3.3) and the master acquires whole windows;
//   (b) the fence keys [low_fence, high_fence], the inclusive key range
//       this chunk may store. Clients validate their key against the
//       fences after every (latch-free, possibly stale) index descent and
//       walk to a neighbour gate on mismatch (paper §3.2);
//   (c) the local-combining queue (paper §3.5): while a writer is active
//       on the gate (`writer_active`), later writers append their update
//       and return immediately; the active writer (or the rebalancer, for
//       deferred batches) drains the queue. Ordering invariant (ISSUE 5):
//       fences never move while this queue is non-empty — every master
//       acquisition that may move fences drains the queue first and folds
//       the drained ops into the merged spread while all affected gates
//       are held. A queued op therefore never outlives the fence range it
//       was admitted under, which is what makes the per-key FIFO contract
//       of `ConcurrentConfig::strict_async_order` enforceable;
//   (d) the per-segment minimum keys that aid lookups inside a chunk —
//       these live in Storage::route() and need no duplication here;
//   (e) the `invalidated` flag set when a resize replaced the whole
//       structure: woken clients restart in a new epoch (paper §3.4);
//   (f) a sequence-lock version word (ISSUE 4): even = no mutator, odd =
//       a writer or the rebalancer owns the chunk. It is bumped exactly
//       on the WRITE/REBAL edges of the state machine (write acquire and
//       release, master acquire and release, invalidation; a WRITE ->
//       REBAL hand-off keeps it odd), so readers can run the segment
//       search directly on the storage and validate afterwards instead
//       of taking the READ latch — the optimistic read protocol in
//       concurrent_pma.h. Fence keys and the invalidated flag are
//       relaxed atomics for the same reason: optimistic readers consult
//       them inside a version-validated window, writers only under the
//       latch. The memory-ordering argument lives with SeqVersion in
//       common/latches.h.
//
// Deadlock freedom: clients hold at most one gate latch; only the single
// rebalancer master ever holds several.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/latches.h"
#include "common/ordered_map.h"
#include "pma/item.h"

namespace cpma {

/// A queued update forwarded between writers (local combining).
struct GateOp {
  enum class Type : uint8_t { kInsert, kRemove };
  Type type;
  Key key;
  Value value;
  /// Monotone enqueue stamp (ISSUE 5): assigned once from a global
  /// counter when the producer enters ConcurrentPMA::Update and carried
  /// unchanged through queues, batch canonicalization and rebalancer
  /// merges. Because each producer issues its ops sequentially, seq
  /// order restricted to one producer is that producer's program order,
  /// so "per-key winner = max seq" (CanonicalizeBatch) implements the
  /// per-key FIFO guarantee of strict_async_order.
  uint64_t seq = 0;
};

/// Outcome of an access attempt; see Gate::WriterAccess / ReaderAccess.
enum class GateAccess {
  kOwner,        // latch acquired; caller is responsible for release
  kQueued,       // update handed to the gate's active writer; caller done
  kInvalidated,  // gate belongs to a retired snapshot; restart
  kTooLow,       // key below low fence: retry on the left neighbour
  kTooHigh,      // key above high fence: retry on the right neighbour
};

class Gate {
 public:
  enum class State : uint8_t { kFree, kRead, kWrite, kRebal };

  Gate(uint32_t id, size_t seg_begin, size_t seg_end)
      : id_(id), seg_begin_(seg_begin), seg_end_(seg_end) {}

  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  uint32_t id() const { return id_; }
  size_t seg_begin() const { return seg_begin_; }
  size_t seg_end() const { return seg_end_; }

  // ------------------------------------------------------------ clients

  /// Writer entry point. Validates fences, then either acquires the
  /// latch exclusively (kOwner), forwards `op` to the already-active
  /// writer (kQueued; only when `allow_queue`), or reports the reason to
  /// move on. Blocks while the gate is held by readers/writers/rebalancer
  /// and no queueing is possible.
  GateAccess WriterAccess(const GateOp& op, bool allow_queue);

  /// Reader entry point: shared acquisition with fence validation.
  /// `key` may be nullptr for "any key" access (scan cursor positioning
  /// is done by the caller).
  GateAccess ReaderAccess(const Key* key);

  void ReaderRelease();

  /// Active writer: pop one queued op (one-by-one processing). Returns
  /// false when the queue is empty, in which case the gate has been
  /// released and `writer_active` cleared.
  bool WriterPopOrRelease(GateOp* op);

  /// Active writer: take the whole queue (batch processing) without
  /// releasing. Returns an empty deque when nothing is pending.
  std::deque<GateOp> WriterTakeQueue();

  /// Active writer: release the latch; clears writer_active only when
  /// the queue is empty (returns true). If false, the caller must keep
  /// draining (new ops arrived).
  bool WriterRelease();

  /// Active writer: push its own (or re-sorted) ops back onto the queue,
  /// e.g. when deferring a batch to the rebalancer.
  void OwnerPushBack(const GateOp& op);

  /// Active writer: prepend older ops (a batch remainder) ahead of any
  /// updates that arrived while the batch was being processed, keeping
  /// per-key arrival order intact.
  void OwnerPushFront(const std::vector<GateOp>& ops);

  /// Active writer: convert WRITE -> REBAL, handing the latch to the
  /// rebalancer (paper: "transfers the ownership of the held latch").
  /// writer_active stays set: the caller remains the gate's combiner and
  /// must call WriterReacquireAfterRebal() afterwards.
  void TransferToRebalancer();

  /// Block until the rebalancer released the gate, then re-take WRITE.
  /// Returns false if the gate was invalidated by a resize instead.
  bool WriterReacquireAfterRebal();

  /// Active writer in batch mode, t_delay not yet elapsed: release the
  /// latch but keep writer_active so the queue keeps accumulating for
  /// the rebalancer (paper: "transfers the ownership of its queue to the
  /// rebalancer, leaving pQ still set").
  void WriterDetachKeepQueue();

  // --------------------------------------------------------- rebalancer

  /// Master: acquire the gate for a rebalance. Waits for readers and
  /// writers to drain; takes over gates already in REBAL that were
  /// transferred by a writer.
  void MasterAcquire();

  /// Master: release after a rebalance; wakes all waiters.
  void MasterRelease();

  /// Master (holding the gate): take the combining queue for merging.
  std::deque<GateOp> MasterTakeQueue();

  /// Master (holding the gate): clear writer_active after consuming a
  /// detached queue, so the next writer becomes the combiner again.
  void MasterClearWriterActive();

  /// Master (holding the gate): put drained ops back at the front of the
  /// combining queue — the resize-failure path (ISSUE 7). `ops` must be
  /// in seq order; writer_active is set so writers arriving after the
  /// master releases queue behind the requeued ops instead of taking
  /// ownership and applying a younger op first — the rebalancer owes the
  /// gate a deferred batch request that drains the queue.
  void MasterRequeue(const std::vector<GateOp>& ops);

  /// Master: mark the gate as belonging to a retired snapshot and wake
  /// everyone (resize path). Also releases the latch.
  void InvalidateAndRelease();

  /// Monotone per-gate progress stamp for the stall watchdog (ISSUE 7):
  /// bumped on every master-side acquire/release/invalidate edge, so a
  /// gate whose stamp stops moving while the master is mid-rebalance is
  /// where the rebalance is stuck.
  uint64_t rebal_stamp() const {
    return rebal_stamp_.load(std::memory_order_relaxed);
  }

  /// Watchdog diagnosis line: state/queue/fence dump for this gate.
  /// Never blocks — the queue size is read under try_lock and printed as
  /// "?" when the mutex is held (the point is to debug a stuck rebalance
  /// without joining it).
  void DumpStateForStall(std::FILE* out) const;

  // ------------------------------------------------- optimistic readers

  /// The chunk's sequence-lock version word. Readers snapshot with
  /// ReadBegin(), run tagged reads on the storage, then Validate();
  /// only the gate's own state machine mutates it.
  const SeqVersion& version() const { return version_; }

  /// Latch-free invalidation check for the optimistic path (resize
  /// handling): pairs with the release edge of InvalidateAndRelease via
  /// the version word, so a reader that observes the post-invalidate
  /// even version also observes the flag.
  bool invalidated_relaxed() const {
    return invalidated_.load(std::memory_order_relaxed);
  }

  // ----------------------------------------------------------- metadata

  // Fence keys. Written by the master while holding the gate (version
  // word odd), read under the latch, under the mutex, or — optimistic
  // path — inside a version-validated window (a stable version proves
  // the [low, high] pair was read untorn).
  Key low_fence() const {
    return low_fence_.load(std::memory_order_relaxed);
  }
  Key high_fence() const {
    return high_fence_.load(std::memory_order_relaxed);
  }
  void SetFences(Key low, Key high);

  int64_t last_global_rebalance_ms() const {
    return last_global_rebalance_ms_;
  }
  void set_last_global_rebalance_ms(int64_t t) {
    last_global_rebalance_ms_ = t;
  }

  bool writer_active_unsafe() const {
    return writer_active_.load(std::memory_order_relaxed);
  }
  size_t queue_size_unsafe() const { return queue_.size(); }

  // -------------------------------------------------- COW snapshots
  // Highest ConcurrentPMA snapshot stamp this gate's chunk has been
  // preserved for (ISSUE 9). Written only while the gate is held
  // exclusively (writer or master); mutators compare it (relaxed)
  // against the PMA's global snapshot stamp before touching storage —
  // equal means every open snapshot already has this gate's capture,
  // so the hot path stays two relaxed loads when snapshots exist and
  // one when none was ever taken.
  uint64_t cow_stamp() const {
    return cow_stamp_.load(std::memory_order_relaxed);
  }
  void set_cow_stamp(uint64_t stamp) {
    cow_stamp_.store(stamp, std::memory_order_relaxed);
  }

 private:
  bool FenceCheck(Key key, GateAccess* out) const {
    if (key < low_fence()) {
      *out = GateAccess::kTooLow;
      return false;
    }
    if (key > high_fence()) {
      *out = GateAccess::kTooHigh;
      return false;
    }
    return true;
  }

  /// Every state_ change goes through here so the latch-free mirror the
  /// spin loops poll stays in sync (always under m_).
  void SetState(State s) {
    state_ = s;
    pub_state_.store(s, std::memory_order_relaxed);
  }

  // Latch-free pre-checks for the spin phases: true when re-acquiring
  // the mutex could change the caller's outcome (gate looks acquirable,
  // queueable, invalidated, or the fences moved off the key).
  bool WriterPollActionable(Key key, bool allow_queue) const;
  bool ReaderPollActionable(const Key* key) const;

  const uint32_t id_;
  const size_t seg_begin_;
  const size_t seg_end_;

  mutable std::mutex m_;
  std::condition_variable cv_;
  State state_ = State::kFree;
  uint32_t num_readers_ = 0;
  bool master_owned_ = false;

  // Mirror of state_ for the latch-free spin polls (see SetState) and
  // the seqlock word for optimistic readers.
  std::atomic<State> pub_state_{State::kFree};
  SeqVersion version_;
  std::atomic<bool> invalidated_{false};

  std::atomic<bool> writer_active_{false};
  std::deque<GateOp> queue_;

  std::atomic<Key> low_fence_{kKeyMin};
  std::atomic<Key> high_fence_{kKeySentinel};
  int64_t last_global_rebalance_ms_ = 0;
  std::atomic<uint64_t> rebal_stamp_{0};
  std::atomic<uint64_t> cow_stamp_{0};
};

}  // namespace cpma
