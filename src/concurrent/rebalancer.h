// Rebalancer service (paper §3.3–3.4): one master thread plus a pool of
// workers per sparse array.
//
// Writers that detect a rebalance spanning multiple gates transfer their
// gate latch to the service (Gate::TransferToRebalancer) and enqueue a
// request; the master computes the final window by walking the calibrator
// tree upward, acquiring the gates it grows over, then splits the window
// into partitions executed by the workers: each partition is copied into
// the rewired buffer concurrently (reads from the live array, writes to
// the buffer), and only after *all* partitions finished copying are the
// page mappings swapped — the "delayed rewiring" coordination of §3.3.
//
// Batch requests (async batch mode, §3.5) carry a due time (t_delay
// throttle); the master merges the gate's combining queue into the
// window spread in one pass (deletions first by key order, insertions
// merged during redistribution).
//
// When even the root window violates its threshold — or a shrink request
// validates — the master rebuilds storage, gates and index at the new
// capacity, publishes the new snapshot, and retires the old one through
// the epoch GC (§3.4), waking all clients parked on old gates.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "concurrent/concurrent_pma.h"
#include "pma/spread.h"

namespace cpma {

/// Collapse a combining queue into a sorted, per-key last-wins batch;
/// "last" is decided by the ops' enqueue stamps (GateOp::seq), falling
/// back to arrival order for unstamped (seq 0) entries.
std::vector<BatchEntry> CanonicalizeBatch(const std::deque<GateOp>& ops);

class Rebalancer {
 public:
  Rebalancer(ConcurrentPMA* pma, size_t num_workers);
  ~Rebalancer();

  Rebalancer(const Rebalancer&) = delete;
  Rebalancer& operator=(const Rebalancer&) = delete;

  void Start();
  void Stop();

  /// Stall diagnoses the watchdog emitted (0 when disabled or healthy).
  uint64_t watchdog_trips() const {
    return watchdog_trips_.load(std::memory_order_relaxed);
  }

  /// Writer -> master: the gate (already in REBAL state, ownership
  /// transferred) needs a window rebalance for a pending insertion into
  /// `trigger_seg`.
  void RequestRebalance(uint64_t version, uint32_t gate_id,
                        size_t trigger_seg);

  /// Writer -> master: process the gate's combining queue as a batch at
  /// `due_ms` (NowMillis-based). The gate is left FREE with
  /// writer_active set, so the queue keeps accumulating until then.
  void RequestBatch(uint64_t version, uint32_t gate_id, int64_t due_ms);

  /// Writer -> master (fire and forget): global density dropped below
  /// the shrink threshold; master re-validates before resizing.
  void RequestShrink(uint64_t version);

  /// Process everything immediately (deferred batches included) and wait
  /// until idle. Used by Flush().
  void Drain();

  bool Idle();

 private:
  struct Request {
    enum class Type { kRebalance, kBatch, kShrink };
    Type type;
    uint64_t version;
    uint32_t gate_id;
    size_t trigger_seg;
    int64_t due_ms;
  };

  void MasterLoop();
  void Dispatch(const Request& req);

  // ------------------------------------------------ stall watchdog (ISSUE 7)
  //
  // The master stamps its progress (monotone counter + phase label +
  // active window) at every dispatch step; a background checker samples
  // the stamp every watchdog_ms and, when it has not moved while a phase
  // is active, prints a diagnosis (master phase, window, per-gate state
  // via Gate::DumpStateForStall) and bumps watchdog_trips_. Detection
  // only — it never kills or unwedges anything.

  /// Master-side: record forward progress (bumps the stamp, sets the
  /// phase label; nullptr = idle). Labels must be string literals.
  void Progress(const char* phase);

  void WatchdogLoop();

  /// Unified handler for rebalance and batch requests: walks the
  /// calibrator tree upward from the origin gate, draining the combining
  /// queue of every gate the window grows over, until the *merged* total
  /// fits the level's threshold — then spreads (worker-parallel when no
  /// batch, merged single-pass otherwise). Draining the queues together
  /// with the fence update keeps per-key operation order intact: an op
  /// can never be left queued under stale fences.
  void HandleWindowWork(const Request& req);
  void HandleShrink(const Request& req);

  /// Grow the held-gate range [*gb, *ge) to cover gates [nb, ne),
  /// acquiring the newly covered gates.
  void AcquireGates(Structure* snap, size_t nb, size_t ne, size_t* gb,
                    size_t* ge);

  /// AcquireGates + drain the combining queues of the newly acquired
  /// gates into *raw (decrementing the owner's pending-op counter).
  void AcquireGatesAndDrain(Structure* snap, size_t nb, size_t ne, size_t* gb,
                            size_t* ge, std::deque<GateOp>* raw);
  void ReleaseGates(Structure* snap, size_t gb, size_t ge);

  /// Execute a (possibly worker-parallel) spread of segments [b, e).
  void ExecuteSpread(Structure* snap, size_t seg_b, size_t seg_e,
                     size_t trigger_seg);

  /// Merge `ops` into segments [b, e) (master-only, single-threaded).
  void ExecuteMergedSpread(Structure* snap, size_t seg_b, size_t seg_e,
                           const std::vector<BatchEntry>& ops,
                           size_t merged_total);

  /// Recompute fence keys + index separators for gates [gb, ge) after
  /// their chunks changed. Caller holds all these gates.
  void UpdateFences(Structure* snap, size_t gb, size_t ge);

  /// Full resize: requires *all* gates held ([gb,ge) == [0,num_gates)).
  /// Drains every combining queue, merges those updates plus `extra`,
  /// publishes a new snapshot and invalidates the old gates.
  ///
  /// Allocation failures run a degradation ladder (ISSUE 7): EpochGC
  /// collect + backoff retries, then denser (smaller) capacities. If the
  /// ladder is exhausted, the drained ops are requeued to their
  /// fence-owning gates in seq order (per-key FIFO preserved), deferred
  /// retry batches are scheduled, the gates are released, the error is
  /// reported through ConcurrentPMA::ReportError, and false is returned
  /// — no op is lost and the old snapshot stays live.
  bool ExecuteResize(Structure* snap, std::deque<GateOp> extra = {});

  /// The resize ladder's storage allocation: TryCreate with collect +
  /// backoff retries at `new_segs`, then halving capacities while the
  /// elements still fit. Returns nullptr (status = last failure) when
  /// every rung failed.
  std::unique_ptr<Storage> AllocStorageWithRetry(size_t new_segs,
                                                 size_t total, Status* status);

  /// Resize-failure recovery: push `ops` back into the combining queues
  /// of their fence-owning gates (sorted by seq; writer_active is set so
  /// later writers queue behind them), re-account pending_async_,
  /// release all gates and schedule deferred retry batches with
  /// escalating backoff.
  void RequeueAndReschedule(Structure* snap, const std::deque<GateOp>& ops);

  // (MasterApplyOp, a master-as-client apply for escaped ops, was
  // removed in ISSUE 5: it acquired gates WITHOUT draining their
  // combining queues before ExecuteSpread moved fences — the one code
  // path that could violate the "fences never move over a non-empty
  // queue" ordering invariant. It was never called.)

  /// Smallest valid segment count for `count` elements (power of two,
  /// >= 2 gates, density <= 0.6).
  size_t SegmentsForCount(size_t count) const;

  ConcurrentPMA* pma_;
  ThreadPool workers_;

  std::thread master_;
  std::mutex m_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Request> ready_;
  std::vector<Request> deferred_;  // unordered; master scans for due
  bool stop_ = false;
  bool ignore_due_times_ = false;  // Drain() mode
  bool processing_ = false;

  // Master-only bookkeeping for the resize degradation ladder: how many
  // ExecuteResize calls in a row exhausted the ladder (drives the retry
  // backoff; reset on the first successful resize).
  size_t consecutive_resize_failures_ = 0;

  // Watchdog state. progress_stamp_/phase_/active window are written by
  // the master (relaxed) and sampled by the watchdog thread; phase_ only
  // ever holds string literals so the pointer itself is the value.
  std::thread watchdog_;
  std::mutex wd_m_;
  std::condition_variable wd_cv_;
  bool wd_stop_ = false;
  std::atomic<uint64_t> progress_stamp_{0};
  std::atomic<const char*> phase_{nullptr};
  std::atomic<size_t> active_gb_{0};
  std::atomic<size_t> active_ge_{0};
  std::atomic<uint64_t> watchdog_trips_{0};
};

}  // namespace cpma
