// Tail-latency event ring (ISSUE 10): a process-global, lock-free,
// fixed-capacity ring of timestamped mechanism events — seqlock read
// fallbacks, rebalance windows, resizes, coalescing flushes, watchdog
// stall trips — so a workload driver can correlate its sampled
// high-latency ops against what the structure was doing at that moment
// and report which mechanism owns the p999 ("there are spikes" becomes
// "82% of the tail overlapped a resize window").
//
// Design constraints, in order:
//  - Disabled cost ~0. Every producer site guards on one relaxed load
//    of `enabled_`; the ring ships disabled and only bench drivers turn
//    it on. The instrumented sites are all already-slow paths (a
//    blocking fallback, a rebalance, a batch flush), never the
//    optimistic fast path.
//  - TSan-clean without locks. Slots are seqlock-versioned and every
//    payload field is a relaxed atomic, so a torn read is impossible by
//    construction and a concurrent overwrite is detected by the slot's
//    sequence (keyed to the producer ticket) and skipped by Drain().
//  - Bounded. Capacity is a power of two; producers overwrite the
//    oldest slot. Overflow loses old events (counted per type in
//    `counts_`, which never wrap), which only blurs attribution for
//    runs that drain too rarely — drivers drain once per workload.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cpma {

enum class TailEvent : uint32_t {
  kReadFallback = 0,    // optimistic read exhausted retries -> READ latch
  kRebalanceWindow = 1, // master executing one window rebalance
  kResize = 2,          // full-array resize (drain/alloc/merge/publish)
  kCoalesceFlush = 3,   // sharded front end dispatching a coalesced run
  kWatchdogStall = 4,   // rebalancer watchdog trip (no progress)
};
constexpr int kNumTailEvents = 5;

const char* TailEventName(TailEvent e);

struct TailEventRecord {
  TailEvent type = TailEvent::kReadFallback;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;  // == start_ns for instantaneous events
};

class TailEventRing {
 public:
  static constexpr size_t kCapacity = 1 << 15;  // 32768 slots, pow2

  /// The process-global ring all instrumented sites record into.
  static TailEventRing& Global();

  /// Monotonic clock shared with bench/driver.h NowNanos() so op
  /// windows and event spans are directly comparable.
  static uint64_t NowNs();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Record a [start_ns, end_ns] span. No-op while disabled.
  void Record(TailEvent type, uint64_t start_ns, uint64_t end_ns);

  /// Record an instantaneous event at now. No-op while disabled.
  void RecordInstant(TailEvent type) {
    if (!enabled()) return;
    const uint64_t now = NowNs();
    Record(type, now, now);
  }

  /// Events of `type` recorded since the last Reset() (not since the
  /// last Drain; overwritten slots still count).
  uint64_t count(TailEvent type) const {
    return counts_[static_cast<size_t>(type)].load(std::memory_order_relaxed);
  }

  /// Copy every still-valid slot into *out (appended), oldest first.
  /// Concurrent producers may invalidate slots mid-drain; those are
  /// skipped, never torn.
  void Drain(std::vector<TailEventRecord>* out) const;

  /// Forget everything recorded so far (counts and slots). Callers
  /// serialize Reset() against their own producers; bench drivers call
  /// it between the preload and the measured phase.
  void Reset();

 private:
  struct Slot {
    // seq == 2*ticket+1 while the owning producer writes, 2*ticket+2
    // once slot content is that ticket's event. A reader accepts a slot
    // only when seq reads the same "stable" value before and after the
    // payload loads.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint32_t> type{0};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> end_ns{0};
  };

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> head_{0};  // next ticket; slot = ticket % capacity
  std::atomic<uint64_t> counts_[kNumTailEvents] = {};
  std::vector<Slot> slots_{kCapacity};
};

/// RAII span: stamps start at construction, records on destruction.
/// One relaxed load when the ring is disabled.
class TailSpan {
 public:
  explicit TailSpan(TailEvent type)
      : type_(type),
        start_ns_(TailEventRing::Global().enabled() ? TailEventRing::NowNs()
                                                    : 0) {}
  ~TailSpan() {
    if (start_ns_ != 0) {
      TailEventRing::Global().Record(type_, start_ns_,
                                     TailEventRing::NowNs());
    }
  }
  TailSpan(const TailSpan&) = delete;
  TailSpan& operator=(const TailSpan&) = delete;

 private:
  TailEvent type_;
  uint64_t start_ns_;
};

}  // namespace cpma
