// ConcurrentPMA — the paper's contribution (§3): a packed memory array
// supporting concurrent reads and updates via
//   gates (chunk latches + fence keys)      §3.1  concurrent/gate.h
//   a latch-free static index over gates    §3.2  concurrent/static_index.h
//   a master/worker rebalancer service      §3.3  concurrent/rebalancer.h
//   epoch-based GC for resizes              §3.4  common/epoch_gc.h
//   asynchronous updates (local combining)  §3.5  here + gate.h
//
// Client protocol (both readers and writers hold at most one latch):
//   1. enter an epoch; load the current snapshot (storage+gates+index);
//   2. traverse the static index without latches -> candidate gate;
//   3. acquire the gate latch; the fence keys decide whether the key
//      belongs here — if not, walk to the neighbour gate;
//   4. if the gate is invalidated (resize happened), refresh the epoch
//      and restart from the new snapshot;
//   5. writers finding an active writer on the gate append their update
//      to its combining queue and return (async modes).
//
// Updates may therefore complete asynchronously; Flush() waits until all
// queued work (including rebalancer batches) has been applied.

#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/epoch_gc.h"
#include "common/ordered_map.h"
#include "concurrent/gate.h"
#include "concurrent/static_index.h"
#include "pma/config.h"
#include "pma/storage.h"

namespace cpma {

class Rebalancer;
struct Snapshot;

/// Recompute fence keys + index separators for gates [gb, ge) from the
/// live chunk contents, preserving the window's outer boundaries. The
/// caller must own the gates (or be single-threaded at construction).
void RecomputeFences(Snapshot* snap, size_t gb, size_t ge);

/// Everything that is replaced wholesale by a resize. Clients reach a
/// Snapshot through an atomic pointer and keep it alive via their epoch.
struct Snapshot {
  uint64_t version = 0;
  std::unique_ptr<Storage> storage;
  std::deque<Gate> gates;  // deque: Gate is immovable (mutex member)
  std::unique_ptr<StaticIndex> index;
  size_t segments_per_gate = 8;
  std::atomic<bool> resize_requested{false};

  size_t num_gates() const { return gates.size(); }
};

class ConcurrentPMA : public OrderedMap {
 public:
  explicit ConcurrentPMA(const ConcurrentConfig& config = ConcurrentConfig());
  ~ConcurrentPMA() override;

  void Insert(Key key, Value value) override;
  void Remove(Key key) override;
  bool Find(Key key, Value* value) const override;
  uint64_t SumAll() const override;
  void Scan(Key min, Key max, const ScanCallback& cb) const override;
  size_t Size() const override {
    return count_.load(std::memory_order_relaxed);
  }
  void Flush() override;
  std::string Name() const override;

  const ConcurrentConfig& config() const { return cfg_; }
  size_t capacity() const;

  // --- statistics ---
  uint64_t num_local_rebalances() const {
    return stat_local_rebalances_.load(std::memory_order_relaxed);
  }
  uint64_t num_global_rebalances() const {
    return stat_global_rebalances_.load(std::memory_order_relaxed);
  }
  uint64_t num_resizes() const {
    return stat_resizes_.load(std::memory_order_relaxed);
  }
  uint64_t num_queued_ops() const {
    return stat_queued_ops_.load(std::memory_order_relaxed);
  }
  uint64_t num_batches() const {
    return stat_batches_.load(std::memory_order_relaxed);
  }

  /// Structural validation: fences contiguous and sorted, chunk contents
  /// within fences, per-segment sortedness, index separators == fences,
  /// element count. Requires quiescence (no concurrent clients); call
  /// after Flush().
  bool CheckInvariants(std::string* error) const;

 private:
  friend class Rebalancer;

  // Shared update entry point for Insert/Remove.
  void Update(GateOp op);

  // Owner path: apply `op`, then drain the combining queue according to
  // the configured async mode. Ops that no longer fit the gate's fences
  // are pushed onto `reroute` for the caller to re-dispatch.
  void OwnerApplyAndDrain(Snapshot* snap, Gate* gate, GateOp op,
                          std::deque<GateOp>* reroute);

  /// Apply one op inside the gate, running local (in-gate) rebalances as
  /// needed. Returns false when a global rebalance is required; then
  /// *trigger_seg holds the violating segment.
  bool ApplyOpLocal(Snapshot* snap, Gate* gate, const GateOp& op,
                    size_t* trigger_seg);

  /// Apply a sorted batch of ops whose keys are within the gate's fences
  /// entirely inside the gate. Returns false when the merged result does
  /// not fit (global batch needed).
  bool ApplyBatchLocal(Snapshot* snap, Gate* gate,
                       std::deque<GateOp>* pending);

  /// Fold a canonical batch into the gate's window with one merged
  /// spread, if the merged total fits the gate-level density threshold.
  /// Updates the element counter / batch stats and requests a shrink
  /// after net deletions. Returns false (nothing changed) otherwise.
  bool TryMergedGateSpread(Snapshot* snap, Gate* gate,
                           const std::vector<BatchEntry>& ops);

  // In-gate navigation (caller holds the gate latch).
  // Rightmost non-empty segment of the chunk whose routing key is <= key,
  // or the leftmost non-empty segment, or seg_begin() for an empty chunk.
  size_t LocateSegment(const Snapshot& snap, const Gate& gate, Key key) const;

  /// True if the effective spread policy is adaptive (paper: one-by-one
  /// leverages adaptive rebalancing, batch uses traditional).
  bool adaptive_effective() const {
    return cfg_.pma.adaptive &&
           cfg_.async_mode != ConcurrentConfig::AsyncMode::kBatch;
  }

  /// Fire-and-forget shrink check after deletions.
  void MaybeRequestShrink(Snapshot* snap);

  Snapshot* BuildInitialSnapshot();

  ConcurrentConfig cfg_;
  mutable EpochGC gc_;
  std::atomic<Snapshot*> snapshot_;
  std::atomic<size_t> count_{0};
  std::atomic<int64_t> pending_async_{0};
  std::unique_ptr<Rebalancer> rebalancer_;

  std::atomic<uint64_t> stat_local_rebalances_{0};
  std::atomic<uint64_t> stat_global_rebalances_{0};
  std::atomic<uint64_t> stat_resizes_{0};
  std::atomic<uint64_t> stat_queued_ops_{0};
  std::atomic<uint64_t> stat_batches_{0};
};

}  // namespace cpma
