// ConcurrentPMA — the paper's contribution (§3): a packed memory array
// supporting concurrent reads and updates via
//   gates (chunk latches + fence keys)      §3.1  concurrent/gate.h
//   a latch-free static index over gates    §3.2  concurrent/static_index.h
//   a master/worker rebalancer service      §3.3  concurrent/rebalancer.h
//   epoch-based GC for resizes              §3.4  common/epoch_gc.h
//   asynchronous updates (local combining)  §3.5  here + gate.h
//
// Writer protocol (writers hold at most one latch):
//   1. enter an epoch; load the current snapshot (storage+gates+index);
//   2. traverse the static index without latches -> candidate gate;
//   3. acquire the gate latch; the fence keys decide whether the key
//      belongs here — if not, walk to the neighbour gate;
//   4. if the gate is invalidated (resize happened), refresh the epoch
//      and restart from the new snapshot;
//   5. writers finding an active writer on the gate append their update
//      to its combining queue and return (async modes).
//
// Reader protocol (ISSUE 4 — optimistic, normally latch-free): readers
// run the same descent but, instead of taking the READ latch, snapshot
// the gate's sequence-lock version word (gate.h (f)):
//   1. enter an epoch; load the snapshot; index descent -> candidate;
//   2. read the gate version; if odd (writer/rebalancer active), retry;
//   3. check `invalidated`: a retired gate means refresh + restart;
//   4. read the fence keys and — only after re-validating the version,
//      which proves the [low, high] pair was untorn — walk to the
//      neighbour gate on mismatch, exactly like the latched descent;
//   5. run the SIMD segment search / scan copy directly on the live
//      storage with tagged accesses (common/tagged.h); multi-gate scans
//      stage one chunk at a time and re-validate at *segment-copy*
//      granularity so a failed window discards at most one segment;
//   6. validate the version; on success the read linearizes at the
//      validation point. On failure retry; after
//      `ConcurrentConfig::optimistic_retries` failed windows per gate
//      (env override CPMA_OPTIMISTIC_RETRIES; 0 forces fallback) fall
//      back to the blocking READ latch — the pre-ISSUE-4 path, kept
//      bit-for-bit so the forced-fallback mode is the old protocol.
// Scans resume from the last *validated* fence key: a gate that
// validates contributes its whole chunk and advances the cursor to its
// high fence, so a restart (resize) or fallback never re-reads chunks
// that already validated. Epoch pinning keeps a rewired/retired storage
// alive across the validation window, so torn reads are bounded but
// never wild. Memory-ordering argument: SeqVersion in common/latches.h.
//
// Updates may therefore complete asynchronously; Flush() waits until all
// queued work (including rebalancer batches) has been applied.
//
// Async ordering contract (§3.5, strengthened in ISSUE 5): with
// `ConcurrentConfig::strict_async_order` (default on), updates on the
// SAME key are applied in the order their producer issued them —
// per-key, per-producer FIFO — across every async mode, including ops
// parked in combining queues while a fence-moving multi-gate rebalance
// or a resize runs. Three mechanisms compose into the guarantee:
//   1. every GateOp is stamped with a monotone enqueue sequence in
//      Update(); CanonicalizeBatch picks per-key winners by stamp;
//   2. fences never move over a non-empty combining queue: the master
//      drains the queue of every gate its window covers and folds the
//      drained ops into the merged spread while holding those gates;
//   3. a writer whose op needs a multi-gate rebalance pushes the op
//      into its gate's queue BEFORE transferring the latch, so the op
//      rides mechanism 2 instead of being re-dispatched through the
//      index after the fences moved (the pre-ISSUE-5 race: a younger
//      op could reach the destination gate first).
// With strict_async_order off, mechanism 3 reverts to the relaxed
// re-dispatch and same-key inversions are possible again (kept for A/B;
// the reroute-storm test in tests/test_reroute_order.cc demonstrates
// the inversion deterministically). Cross-key ordering stays relaxed in
// both settings, exactly as the paper specifies.

#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/epoch_gc.h"
#include "common/status.h"
#include "common/ordered_map.h"
#include "concurrent/gate.h"
#include "concurrent/static_index.h"
#include "pma/config.h"
#include "pma/storage.h"

// Feature macros: let externally grafted sources (the pre/post bench
// drivers in BENCH_*.json methodology) compile against trees with and
// without the optimistic read path (ISSUE 4) / the strict async
// ordering contract (ISSUE 5).
#define CPMA_OPTIMISTIC_READ_PATH 1
#define CPMA_STRICT_ASYNC_ORDER 1
#define CPMA_EBR_STATS 1
#define CPMA_FAULT_TOLERANCE 1
#define CPMA_SNAPSHOTS 1

namespace cpma {

class Rebalancer;
class PMASnapshot;
struct Structure;

/// Recompute fence keys + index separators for gates [gb, ge) from the
/// live chunk contents, preserving the window's outer boundaries. The
/// caller must own the gates (or be single-threaded at construction).
void RecomputeFences(Structure* snap, size_t gb, size_t ge);

/// Everything that is replaced wholesale by a resize. Clients reach a
/// Structure through an atomic pointer and keep it alive via their epoch.
struct Structure {
  uint64_t version = 0;
  std::unique_ptr<Storage> storage;
  std::deque<Gate> gates;  // deque: Gate is immovable (mutex member)
  std::unique_ptr<StaticIndex> index;
  size_t segments_per_gate = 8;
  std::atomic<bool> resize_requested{false};

  size_t num_gates() const { return gates.size(); }
};

class ConcurrentPMA : public OrderedMap {
 public:
  explicit ConcurrentPMA(const ConcurrentConfig& config = ConcurrentConfig());
  ~ConcurrentPMA() override;

  void Insert(Key key, Value value) override;
  void Remove(Key key) override;
  bool Find(Key key, Value* value) const override;
  uint64_t SumAll() const override;
  void Scan(Key min, Key max, const ScanCallback& cb) const override;

  /// Batched front-door hand-off (ISSUE 8): apply a producer-ordered run
  /// of ops, equivalent to calling Insert/Remove for each in order but
  /// with ONE enqueue-stamp reservation for the whole run instead of a
  /// fetch_add per op — the contended-counter amortization the sharded
  /// coalescing front door exists for. The block reservation linearizes
  /// the run at the reservation point, so per-producer FIFO (ISSUE 5)
  /// is preserved exactly as if the ops had been issued one by one
  /// there; callers flushing staging buffers must therefore serialize
  /// UpdateBatch calls per producer (the sharded front door holds the
  /// producer slot's flush lock across the call). Ops are dispatched in
  /// array order; `ops[i].seq` is overwritten.
  void UpdateBatch(GateOp* ops, size_t n);

  /// Pull-based ordered read cursor (ISSUE 8): the per-gate chunk loop
  /// of Scan() exposed as an explicit cursor, so a consumer can merge
  /// several PMAs' streams (the sharded front end's k-way scan merge)
  /// without inverting control through callbacks. Each NextChunk()
  /// delivers the next validated run of items in (last delivered,
  /// max] — one gate's chunk, staged under the same optimistic
  /// seqlock/fallback protocol as Scan and trimmed to the range — or
  /// returns false when the range is exhausted. The cursor pins its
  /// epoch for its whole lifetime; hold it only for the duration of a
  /// scan pass.
  class ScanCursor {
   public:
    ScanCursor(const ConcurrentPMA& pma, Key min, Key max);

    ScanCursor(const ScanCursor&) = delete;
    ScanCursor& operator=(const ScanCursor&) = delete;

    /// Fill `out` with the next chunk (ascending keys, all in range,
    /// non-empty on true). False = range exhausted; `out` is cleared.
    bool NextChunk(std::vector<Item>* out);

   private:
    const ConcurrentPMA& pma_;
    EpochGuard guard_;
    const Key max_;
    Key cursor_;
    bool consumed_cursor_ = false;
    bool done_ = false;
    std::vector<Item> chunk_;  // per-gate staging, reused across calls
  };
  size_t Size() const override {
    return count_.load(std::memory_order_relaxed);
  }
  void Flush() override;
  std::string Name() const override;

  const ConcurrentConfig& config() const { return cfg_; }
  size_t capacity() const;

  // --- statistics ---
  uint64_t num_local_rebalances() const {
    return stat_local_rebalances_.load(std::memory_order_relaxed);
  }
  uint64_t num_global_rebalances() const {
    return stat_global_rebalances_.load(std::memory_order_relaxed);
  }
  uint64_t num_resizes() const {
    return stat_resizes_.load(std::memory_order_relaxed);
  }
  uint64_t num_queued_ops() const {
    return stat_queued_ops_.load(std::memory_order_relaxed);
  }
  uint64_t num_batches() const {
    return stat_batches_.load(std::memory_order_relaxed);
  }

  /// Times a read (Find, or one gate of a Scan/SumAll) exhausted its
  /// optimistic retry budget and took the blocking READ latch. Zero
  /// under quiescence proves the optimistic path carried every read;
  /// the forced-fallback mode (retry budget 0) counts every read here.
  uint64_t num_read_fallbacks() const {
    return stat_read_fallbacks_.load(std::memory_order_relaxed);
  }

  /// Gate chunks served latch-free by validated optimistic scan windows
  /// (Scan/SumAll; Find avoids a shared counter on its hot path).
  uint64_t num_optimistic_gate_reads() const {
    return stat_optimistic_gate_reads_.load(std::memory_order_relaxed);
  }

  /// Effective per-gate optimistic retry budget (config, possibly
  /// overridden by CPMA_OPTIMISTIC_RETRIES at construction).
  int optimistic_retries() const { return optimistic_retries_; }

  /// Effective async ordering contract (config, possibly overridden by
  /// CPMA_STRICT_ASYNC at construction). True = per-key FIFO.
  bool strict_async_order() const { return strict_async_order_; }

  /// Epoch-reclamation counters (§3.4): pending/retired/freed garbage,
  /// retired-bytes high-water mark, epoch advances, collector passes.
  /// Surfaced into bench JSON and the nightly soak artifact.
  EpochGCStats ebr_stats() const { return gc_.Stats(); }

  /// Direct access to the reclamation subsystem (tests: parked-reader
  /// soaks drive Collect() and the collector stepping hooks).
  EpochGC& epoch_gc() const { return gc_; }

  /// Ops re-dispatched through the index after losing their gate to a
  /// fence move or resize. Structurally zero under strict_async_order
  /// (such ops ride the rebalancer's merged spread instead); non-zero
  /// counts are the relaxed mode's reordering windows.
  uint64_t num_reroutes() const {
    return stat_reroutes_.load(std::memory_order_relaxed);
  }

  /// Test-only: invoked on the re-dispatching thread for every rerouted
  /// op, after the origin gate was released and before the re-dispatch
  /// descends the index — i.e. inside the relaxed mode's reordering
  /// window, so tests can deterministically interleave a younger op.
  /// Set under quiescence (before concurrent clients exist).
  void SetRerouteHookForTest(std::function<void(const GateOp&)> hook) {
    reroute_hook_ = std::move(hook);
  }

  // Storage observability (ROADMAP huge-page visibility): what publish
  // mechanism and page size the current snapshot actually uses, for
  // bench JSON records.
  bool storage_rewiring_enabled() const;
  size_t storage_page_bytes() const;
  size_t storage_backing_page_bytes() const;
  uint64_t storage_num_remaps() const;
  uint64_t storage_num_fallback_copies() const;
  uint64_t storage_num_remap_failures() const;

  // ------------------------------------------- fault tolerance (ISSUE 7)

  /// True when the current snapshot publishes rebalances by copy instead
  /// of zero-copy remaps: anonymous fallback backend (memfd/mmap denied
  /// or CPMA_FORCE_NO_REWIRE=1), use_rewiring=false, or a region that
  /// degraded after a remap publication failure.
  bool fallback_backend_active() const;

  /// Install a callback fired (from the rebalancer master thread) every
  /// time a background rebalance exhausts its degradation ladder — the
  /// affected ops are requeued and retried, so this is a health signal,
  /// not a data-loss notice. Set under quiescence (before concurrent
  /// clients exist); pass nullptr to remove.
  void SetErrorCallback(std::function<void(const Status&)> cb) {
    error_cb_ = std::move(cb);
  }

  /// Sticky most-recent background error (Status::OK when none was ever
  /// reported). A non-OK value with a later successful Flush means the
  /// condition was transient and every op still applied.
  Status last_error() const {
    std::lock_guard<std::mutex> lk(error_mu_);
    return last_error_;
  }

  /// Storage allocation retries performed by the rebalancer's resize
  /// ladder (EpochGC collect + backoff + denser-capacity attempts).
  uint64_t num_rebalance_retries() const {
    return stat_rebalance_retries_.load(std::memory_order_relaxed);
  }

  /// Stall diagnoses emitted by the rebalancer watchdog (0 unless
  /// watchdog_ms/CPMA_WATCHDOG_MS armed the checker and a rebalance
  /// exceeded the threshold without progress).
  uint64_t num_watchdog_trips() const;

  /// Effective watchdog threshold (config, possibly overridden by
  /// CPMA_WATCHDOG_MS at construction; 0 = disabled).
  int64_t watchdog_ms() const { return watchdog_ms_; }

  // ------------------------------------------- COW snapshots (ISSUE 9)

  /// Capture a frozen, consistent point-in-time view without stopping
  /// the world. The snapshot forms a consistent cut: per gate, its
  /// capture point is the first post-snapshot mutation of that gate
  /// (which preserves the chunk's pre-image first — COW through the
  /// rewiring layer when page alignment permits, a heap copy
  /// otherwise), or the moment the snapshot reads it, whichever comes
  /// first. Window rebalances preserve every window gate while all of
  /// them are held, so fence moves land atomically on one side of the
  /// cut and sequential gate iteration always yields an ordered,
  /// retry-free scan. Reads on the snapshot (Scan/SumAll/Find) never
  /// block writers; writers pay two relaxed loads per gate op while a
  /// snapshot is open (one when none was ever taken) plus a one-time
  /// per-gate preservation. Destroy the snapshot to release the pinned
  /// structure and COW pages (retired through the epoch GC's
  /// byte-accounted limbo).
  std::unique_ptr<PMASnapshot> Snapshot() const;

  /// Snapshots currently open / ever taken on this PMA.
  uint64_t snapshots_open() const {
    return snapshots_open_.load(std::memory_order_relaxed);
  }
  uint64_t num_snapshots_taken() const {
    return stat_snapshots_taken_.load(std::memory_order_relaxed);
  }

  /// Bytes of superseded file pages kept alive only because an open
  /// snapshot view pins them (the COW memory overhead of snapshots).
  uint64_t cow_pages_retained_bytes() const;

  /// Structural validation: fences contiguous and sorted, chunk contents
  /// within fences, per-segment sortedness, index separators == fences,
  /// element count. Requires quiescence (no concurrent clients); call
  /// after Flush().
  bool CheckInvariants(std::string* error) const;

 private:
  friend class Rebalancer;
  friend class PMASnapshot;

  /// Rebalancer -> client surface: record the sticky error and invoke
  /// the callback (master thread).
  void ReportError(const Status& status);

  // Shared update entry point for Insert/Remove.
  void Update(GateOp op);

  // Dispatch an op that already carries its enqueue stamp (Update stamps
  // one op, UpdateBatch reserves a block): index descent, gate access,
  // owner apply / queue hand-off, reroute worklist.
  void DispatchStamped(GateOp op);

  // Owner path: apply `op`, then drain the combining queue according to
  // the configured async mode. Ops that no longer fit the gate's fences
  // are pushed onto `reroute` for the caller to re-dispatch.
  void OwnerApplyAndDrain(Structure* snap, Gate* gate, GateOp op,
                          std::deque<GateOp>* reroute);

  /// Apply one op inside the gate, running local (in-gate) rebalances as
  /// needed. Returns false when a global rebalance is required; then
  /// *trigger_seg holds the violating segment.
  bool ApplyOpLocal(Structure* snap, Gate* gate, const GateOp& op,
                    size_t* trigger_seg);

  /// Apply a sorted batch of ops whose keys are within the gate's fences
  /// entirely inside the gate. Returns false when the merged result does
  /// not fit (global batch needed).
  bool ApplyBatchLocal(Structure* snap, Gate* gate,
                       std::deque<GateOp>* pending);

  /// Fold a canonical batch into the gate's window with one merged
  /// spread, if the merged total fits the gate-level density threshold.
  /// Updates the element counter / batch stats and requests a shrink
  /// after net deletions. Returns false (nothing changed) otherwise.
  bool TryMergedGateSpread(Structure* snap, Gate* gate,
                           const std::vector<BatchEntry>& ops);

  // In-gate navigation (caller holds the gate latch).
  // Rightmost non-empty segment of the chunk whose routing key is <= key,
  // or the leftmost non-empty segment, or seg_begin() for an empty chunk.
  size_t LocateSegment(const Structure& snap, const Gate& gate, Key key) const;

  // ------------------------------------------- optimistic read path

  /// LocateSegment for a reader holding no latch: tagged route loads
  /// (TSan-visible), result always within the chunk even on torn data —
  /// the caller's version validation rejects the window if it raced.
  size_t LocateSegmentOptimistic(const Structure& snap, const Gate& gate,
                                 Key key) const;

  /// One budget-bounded optimistic point lookup against `snap`.
  enum class OptRead { kHit, kMiss, kFallback, kRestart };
  OptRead TryOptimisticFind(const Structure& snap, Key key,
                            Value* value) const;

  /// One budget-bounded optimistic visit of a gate's chunk, staging
  /// only items in [cursor, ...] and stopping past `max`. kOk hands
  /// the caller validated data plus the gate's high fence (the scan
  /// resume point); kFallback means the budget is spent (take the READ
  /// latch); kRestart means the snapshot was retired.
  enum class OptGate { kOk, kFallback, kRestart };
  OptGate TryOptimisticGateCopy(const Structure& snap, const Gate& gate,
                                Key cursor, Key max, std::vector<Item>* out,
                                Key* gate_high) const;
  OptGate TryOptimisticGateSum(const Structure& snap, const Gate& gate,
                               Key cursor, bool have_cursor,
                               uint64_t* sum_out, Key* gate_high) const;

  /// Blocking-path helper: stage a latched gate's chunk (range-bounded
  /// like TryOptimisticGateCopy) for emission outside the latch, so
  /// user callbacks run latch-free in both modes.
  void CopyGateLatched(const Structure& snap, const Gate& gate, Key cursor,
                       Key max, std::vector<Item>* out) const;

  /// True if the effective spread policy is adaptive (paper: one-by-one
  /// leverages adaptive rebalancing, batch uses traditional).
  bool adaptive_effective() const {
    return cfg_.pma.adaptive &&
           cfg_.async_mode != ConcurrentConfig::AsyncMode::kBatch;
  }

  // ------------------------------------------- COW snapshots (ISSUE 9)

  /// Mutator-side hook, called with `gate` held exclusively (writer or
  /// master) BEFORE the first storage/fence mutation of the hold: when
  /// any open snapshot of `snap` has not captured this gate yet, build
  /// its frozen image (GateSnap) now. Fast path: two relaxed loads (one
  /// while no snapshot was ever taken).
  void PreserveGateForSnapshots(Structure* snap, Gate* gate) const {
    const uint64_t sv = snap_stamp_.load(std::memory_order_relaxed);
    if (sv == 0) return;
    if (gate->cow_stamp() == sv) return;
    PreserveGateSlow(snap, gate);
  }
  void PreserveGateSlow(Structure* snap, Gate* gate) const;

  /// Fire-and-forget shrink check after deletions.
  void MaybeRequestShrink(Structure* snap);

  Structure* BuildInitialStructure();

  ConcurrentConfig cfg_;
  // Effective retry budget (cfg_ value or CPMA_OPTIMISTIC_RETRIES).
  int optimistic_retries_ = 8;
  // Effective ordering contract (cfg_ value or CPMA_STRICT_ASYNC).
  bool strict_async_order_ = true;
  // Effective watchdog threshold (cfg_ value or CPMA_WATCHDOG_MS).
  int64_t watchdog_ms_ = 0;
  // Global enqueue stamp generator; see GateOp::seq.
  std::atomic<uint64_t> seq_gen_{1};
  std::function<void(const GateOp&)> reroute_hook_;
  mutable EpochGC gc_;
  std::atomic<Structure*> structure_;
  std::atomic<size_t> count_{0};
  std::atomic<int64_t> pending_async_{0};
  std::unique_ptr<Rebalancer> rebalancer_;

  std::atomic<uint64_t> stat_local_rebalances_{0};
  std::atomic<uint64_t> stat_global_rebalances_{0};
  std::atomic<uint64_t> stat_resizes_{0};
  std::atomic<uint64_t> stat_queued_ops_{0};
  std::atomic<uint64_t> stat_batches_{0};
  std::atomic<uint64_t> stat_reroutes_{0};
  mutable std::atomic<uint64_t> stat_read_fallbacks_{0};
  mutable std::atomic<uint64_t> stat_optimistic_gate_reads_{0};
  std::atomic<uint64_t> stat_rebalance_retries_{0};

  // Background-error surface (ISSUE 7).
  std::function<void(const Status&)> error_cb_;
  mutable std::mutex error_mu_;
  Status last_error_;

  // COW snapshot registry (ISSUE 9). snap_stamp_ is bumped once per
  // Snapshot() under snaps_mu_; a gate whose cow_stamp matches it has
  // been preserved for every open snapshot. Preservation itself is
  // serialized by snaps_mu_ — it runs at most once per (gate, snapshot),
  // so contention there is a cold path by construction.
  mutable std::mutex snaps_mu_;
  mutable std::vector<PMASnapshot*> open_snaps_;
  mutable std::atomic<uint64_t> snap_stamp_{0};
  mutable std::atomic<uint64_t> stat_snapshots_taken_{0};
  mutable std::atomic<uint64_t> snapshots_open_{0};
};

}  // namespace cpma
