#include "concurrent/concurrent_pma.h"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <thread>

#include "common/hotpath/locate.h"
#include "common/hotpath/search.h"
#include "common/hotpath/tagged.h"
#include "common/timer.h"
#include "concurrent/event_ring.h"
#include "concurrent/rebalancer.h"
#include "pma/density.h"
#include "pma/spread.h"

namespace cpma {

// One tested lower bound for every segment search (hot-path subsystem,
// ISSUE 2) instead of a per-TU scalar copy.
using hotpath::SegmentLowerBound;

void RecomputeFences(Structure* snap, size_t gb, size_t ge) {
  CPMA_CHECK(gb < ge && ge <= snap->num_gates());
  const Storage& st = *snap->storage;
  const size_t spg = snap->segments_per_gate;

  auto first_key_of_chunk = [&](size_t g) -> std::optional<Key> {
    for (size_t s = g * spg; s < (g + 1) * spg; ++s) {
      if (st.card(s) > 0) return st.segment(s)[0].key;
    }
    return std::nullopt;
  };

  // Right-to-left: a gate's high fence is the predecessor of the next
  // gate's low fence (paper §3.1); empty chunks collapse onto the next
  // boundary, yielding an empty [low, high] range that fence checks
  // simply walk past.
  const size_t n = ge - gb;
  std::vector<Key> low(n), high(n);
  for (size_t g = ge; g-- > gb;) {
    const size_t j = g - gb;
    high[j] =
        (g == ge - 1) ? snap->gates[g].high_fence() : low[j + 1] - 1;
    if (g == gb) {
      low[j] = snap->gates[g].low_fence();
    } else if (auto fk = first_key_of_chunk(g)) {
      low[j] = *fk;
    } else {
      low[j] = (high[j] == kKeySentinel) ? kKeySentinel : high[j] + 1;
    }
  }
  for (size_t g = gb; g < ge; ++g) {
    snap->gates[g].SetFences(low[g - gb], high[g - gb]);
    snap->index->SetSeparator(g, low[g - gb]);
  }
}

ConcurrentPMA::ConcurrentPMA(const ConcurrentConfig& config) : cfg_(config) {
  CPMA_CHECK(IsPowerOfTwo(cfg_.segments_per_gate));
  CPMA_CHECK(cfg_.segments_per_gate >= 2);
  CPMA_CHECK(IsPowerOfTwo(cfg_.pma.segment_capacity));
  CPMA_CHECK(cfg_.pma.segment_capacity >= 4);
  optimistic_retries_ = cfg_.optimistic_retries;
  if (const char* env = std::getenv("CPMA_OPTIMISTIC_RETRIES")) {
    // Strict parse: a typo silently becoming 0 would turn the whole
    // optimistic read path off and masquerade as a perf regression.
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && errno == 0 && v >= 0 &&
        v <= INT_MAX) {
      optimistic_retries_ = static_cast<int>(v);
    } else if (*env != '\0') {
      std::fprintf(stderr,
                   "cpma: ignoring invalid CPMA_OPTIMISTIC_RETRIES=%s "
                   "(want a non-negative integer); using %d\n",
                   env, optimistic_retries_);
    }
  }
  if (optimistic_retries_ < 0) optimistic_retries_ = 0;
  strict_async_order_ = cfg_.strict_async_order;
  if (const char* env = std::getenv("CPMA_STRICT_ASYNC")) {
    // Same strict parse as above: "0" and "1" only — a typo silently
    // relaxing the ordering contract would be a correctness hazard, not
    // just a perf one.
    if (env[0] != '\0' && env[1] == '\0' && (env[0] == '0' || env[0] == '1')) {
      strict_async_order_ = env[0] == '1';
    } else if (*env != '\0') {
      std::fprintf(stderr,
                   "cpma: ignoring invalid CPMA_STRICT_ASYNC=%s "
                   "(want 0 or 1); using %d\n",
                   env, strict_async_order_ ? 1 : 0);
    }
  }
  watchdog_ms_ = cfg_.watchdog_ms;
  if (const char* env = std::getenv("CPMA_WATCHDOG_MS")) {
    // Strict parse like the knobs above: a typo must not silently arm or
    // disarm the stall checker.
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && errno == 0 && v >= 0) {
      watchdog_ms_ = static_cast<int64_t>(v);
    } else if (*env != '\0') {
      std::fprintf(stderr,
                   "cpma: ignoring invalid CPMA_WATCHDOG_MS=%s "
                   "(want a non-negative integer); using %lld\n",
                   env, static_cast<long long>(watchdog_ms_));
    }
  }
  structure_.store(BuildInitialStructure(), std::memory_order_release);
  rebalancer_ = std::make_unique<Rebalancer>(this, cfg_.rebalancer_workers);
  rebalancer_->Start();
  gc_.StartBackgroundCollector();
}

ConcurrentPMA::~ConcurrentPMA() {
  CPMA_CHECK_MSG(snapshots_open_.load(std::memory_order_relaxed) == 0,
                 "ConcurrentPMA destroyed with open snapshots");
  Flush();
  rebalancer_->Stop();
  rebalancer_.reset();
  delete structure_.load(std::memory_order_acquire);
  // gc_'s destructor frees snapshots retired by resizes.
}

Structure* ConcurrentPMA::BuildInitialStructure() {
  const size_t spg = cfg_.segments_per_gate;
  size_t segs = std::max(cfg_.pma.initial_num_segments, 2 * spg);
  while (!IsPowerOfTwo(segs)) ++segs;
  auto* snap = new Structure();
  snap->version = 1;
  snap->segments_per_gate = spg;
  snap->storage = std::make_unique<Storage>(segs, cfg_.pma.segment_capacity,
                                            cfg_.pma.use_rewiring);
  const size_t num_gates = segs / spg;
  for (size_t g = 0; g < num_gates; ++g) {
    snap->gates.emplace_back(static_cast<uint32_t>(g), g * spg,
                             (g + 1) * spg);
  }
  snap->index =
      std::make_unique<StaticIndex>(num_gates, cfg_.index_fanout);
  RecomputeFences(snap, 0, num_gates);
  return snap;
}

size_t ConcurrentPMA::capacity() const {
  EpochGuard guard(gc_);
  return structure_.load(std::memory_order_acquire)->storage->capacity();
}

std::string ConcurrentPMA::Name() const {
  // The default contract (strict per-key FIFO) stays unsuffixed so bench
  // record identities are stable across the ISSUE 5 boundary; only the
  // relaxed A/B opt-out announces itself.
  const std::string suffix = strict_async_order_ ? "" : ",relaxed";
  switch (cfg_.async_mode) {
    case ConcurrentConfig::AsyncMode::kSync:
      return "ConcurrentPMA(sync" + suffix + ")";
    case ConcurrentConfig::AsyncMode::kOneByOne:
      return "ConcurrentPMA(1by1" + suffix + ")";
    case ConcurrentConfig::AsyncMode::kBatch:
      return "ConcurrentPMA(batch," + std::to_string(cfg_.t_delay_ms) + "ms" +
             suffix + ")";
  }
  return "ConcurrentPMA";
}

// --------------------------------------------------------------- updates

void ConcurrentPMA::Insert(Key key, Value value) {
  CPMA_CHECK_MSG(key <= kKeyMax, "key out of domain (UINT64_MAX reserved)");
  Update(GateOp{GateOp::Type::kInsert, key, value});
}

void ConcurrentPMA::Remove(Key key) {
  CPMA_CHECK_MSG(key <= kKeyMax, "key out of domain (UINT64_MAX reserved)");
  Update(GateOp{GateOp::Type::kRemove, key, 0});
}

void ConcurrentPMA::Update(GateOp op) {
  // Enqueue stamp (ISSUE 5): one fetch_add per producer-issued op; the
  // stamp rides the op through queues and rebalancer merges, where
  // CanonicalizeBatch resolves per-key winners by it.
  op.seq = seq_gen_.fetch_add(1, std::memory_order_relaxed);
  DispatchStamped(op);
}

void ConcurrentPMA::UpdateBatch(GateOp* ops, size_t n) {
  if (n == 0) return;
  // Block stamp reservation (ISSUE 8): one fetch_add covers the whole
  // producer-ordered run, linearizing it at the reservation point.
  // ops[i] gets base+i, so within the run the stamps reproduce issue
  // order exactly — CanonicalizeBatch and the strict-order machinery
  // cannot tell these ops from individually stamped ones.
  const uint64_t base = seq_gen_.fetch_add(n, std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    CPMA_CHECK_MSG(ops[i].key <= kKeyMax,
                   "key out of domain (UINT64_MAX reserved)");
    ops[i].seq = base + i;
  }
  for (size_t i = 0; i < n; ++i) DispatchStamped(ops[i]);
}

void ConcurrentPMA::DispatchStamped(GateOp op) {
  const bool allow_queue =
      cfg_.async_mode != ConcurrentConfig::AsyncMode::kSync;
  // Worklist entries beyond the first are reroutes: ops that lost their
  // gate to a fence move or resize and must re-dispatch through the
  // index. Under strict_async_order this never happens (such ops are
  // handed to the master inside the combining queue instead); in the
  // relaxed mode the window between the fence move and the re-dispatch
  // below is exactly where a younger same-key op can overtake.
  bool rerouted = false;
  std::deque<GateOp> worklist{op};
  while (!worklist.empty()) {
    GateOp cur = worklist.front();
    worklist.pop_front();
    if (rerouted) {
      stat_reroutes_.fetch_add(1, std::memory_order_relaxed);
      if (reroute_hook_) reroute_hook_(cur);
    }
    rerouted = true;
    EpochGuard guard(gc_);
    for (;;) {
      Structure* snap = structure_.load(std::memory_order_acquire);
      size_t gid = snap->index->Lookup(cur.key);
      GateAccess a;
      Gate* gate;
      for (;;) {
        gate = &snap->gates[gid];
        a = gate->WriterAccess(cur, allow_queue);
        if (a == GateAccess::kTooLow) {
          CPMA_CHECK(gid > 0);
          --gid;
        } else if (a == GateAccess::kTooHigh) {
          CPMA_CHECK(gid + 1 < snap->num_gates());
          ++gid;
        } else {
          break;
        }
      }
      if (a == GateAccess::kInvalidated) {
        guard.Refresh();
        continue;
      }
      if (a == GateAccess::kQueued) {
        pending_async_.fetch_add(1, std::memory_order_relaxed);
        stat_queued_ops_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      CPMA_CHECK(a == GateAccess::kOwner);
      OwnerApplyAndDrain(snap, gate, cur, &worklist);
      break;
    }
  }
}

void ConcurrentPMA::OwnerApplyAndDrain(Structure* snap, Gate* gate, GateOp op,
                                       std::deque<GateOp>* reroute) {
  using AsyncMode = ConcurrentConfig::AsyncMode;
  const bool batch_mode = cfg_.async_mode == AsyncMode::kBatch;
  std::optional<GateOp> pending = op;
  bool pending_counted = false;  // true when `pending` came off the queue

  auto drop_pending = [&] {
    if (pending_counted) {
      pending_async_.fetch_sub(1, std::memory_order_relaxed);
    }
    pending.reset();
    pending_counted = false;
  };

  for (;;) {
    if (pending.has_value() && (pending->key < gate->low_fence() ||
                                pending->key > gate->high_fence())) {
      // A multi-gate rebalance moved the fences while we were parked;
      // re-dispatch through the index (paper §3.3). Reachable only in
      // relaxed mode (the pending op kept across a rebalance below):
      // everywhere else the op was fence-validated under this WRITE
      // hold, or popped from a queue the masters drain before any fence
      // move. Kept unconditionally as a cheap structural backstop.
      reroute->push_back(*pending);
      drop_pending();
    }
    if (pending.has_value()) {
      size_t trigger_seg = 0;
      if (ApplyOpLocal(snap, gate, *pending, &trigger_seg)) {
        drop_pending();
      } else if (batch_mode) {
        // Hand the gate's queue (including this op) to the rebalancer;
        // the t_delay throttle decides when it runs (paper §3.5).
        gate->OwnerPushFront({*pending});
        if (!pending_counted) {
          pending_async_.fetch_add(1, std::memory_order_relaxed);
        }
        pending.reset();
        pending_counted = false;
        const int64_t due =
            std::max(NowMillis(),
                     gate->last_global_rebalance_ms() + cfg_.t_delay_ms);
        rebalancer_->RequestBatch(snap->version, gate->id(), due);
        gate->WriterDetachKeepQueue();
        return;
      } else if (strict_async_order_) {
        // Strict per-key FIFO (ISSUE 5): hand the op to the master
        // INSIDE the combining queue instead of carrying it across the
        // rebalance in this frame. The master drains the queue of every
        // gate its window grows over and folds the drained ops into the
        // merged spread while holding all of those gates, so the op is
        // applied at its stamp-order position before any younger op can
        // reach the moved fences — the reroute (and its reordering
        // race) never exists. Push to the FRONT: the op is the oldest
        // unapplied op on this gate (its own latch acquisition, or a
        // pop off the queue head), and while the master is indifferent
        // (it canonicalizes by stamp), the writer itself may end up
        // draining this queue op-at-a-time after a shrink-probe
        // interleave (MasterAcquire + release without a drain) — a
        // back-push would then apply same-key ops out of issue order.
        gate->OwnerPushFront({*pending});
        if (!pending_counted) {
          pending_async_.fetch_add(1, std::memory_order_relaxed);
        }
        pending.reset();
        pending_counted = false;
        gate->TransferToRebalancer();
        rebalancer_->RequestRebalance(snap->version, gate->id(),
                                      trigger_seg);
        if (!gate->WriterReacquireAfterRebal()) {
          // Resize: the gate is gone, but the op is not — ExecuteResize
          // drained every combining queue (ours included) into the
          // merge before invalidating. Nothing left to do.
          return;
        }
        continue;  // nothing pending; drain the combining queue
      } else {
        // Relaxed §3.5 (pre-ISSUE-5, A/B mode): transfer the latch and
        // wait (paper §3.3), keeping the op in this frame. If the
        // rebalance moved the fences off the key, the top-of-loop check
        // reroutes it — the documented reordering window.
        gate->TransferToRebalancer();
        rebalancer_->RequestRebalance(snap->version, gate->id(),
                                      trigger_seg);
        if (!gate->WriterReacquireAfterRebal()) {
          // Resize: the gate is gone; our op restarts on the new
          // snapshot. Queued ops were merged by the master.
          reroute->push_back(*pending);
          drop_pending();
          return;
        }
        continue;  // re-validate fences, retry the op
      }
    }

    // Own op done — drain the combining queue. Sync mode drains too:
    // its queue is normally empty, but a strict-mode hand-off that
    // interleaved with a shrink probe (MasterAcquire without a drain,
    // released without a rebalance) can leave the handed-off op queued
    // for us to finish; releasing with it still queued would strand the
    // op and park the master forever.
    if (!batch_mode) {
      GateOp qop;
      if (gate->WriterPopOrRelease(&qop)) {
        pending = qop;
        pending_counted = true;
        continue;
      }
      return;  // queue empty: gate released
    }
    // Batch mode: take the whole queue at once.
    std::deque<GateOp> q = gate->WriterTakeQueue();
    if (q.empty()) {
      if (gate->WriterRelease()) return;
      continue;  // new ops slipped in
    }
    pending_async_.fetch_sub(static_cast<int64_t>(q.size()),
                             std::memory_order_relaxed);
    std::deque<GateOp> local;
    for (const GateOp& qop : q) {
      if (qop.key < gate->low_fence() || qop.key > gate->high_fence()) {
        reroute->push_back(qop);
      } else {
        local.push_back(qop);
      }
    }
    if (ApplyBatchLocal(snap, gate, &local)) continue;
    // Remainder does not fit inside the gate: back onto the queue —
    // *ahead* of anything that arrived while we processed the batch —
    // and over to the rebalancer.
    gate->OwnerPushFront(std::vector<GateOp>(local.begin(), local.end()));
    pending_async_.fetch_add(static_cast<int64_t>(local.size()),
                             std::memory_order_relaxed);
    const int64_t due = std::max(
        NowMillis(), gate->last_global_rebalance_ms() + cfg_.t_delay_ms);
    rebalancer_->RequestBatch(snap->version, gate->id(), due);
    gate->WriterDetachKeepQueue();
    return;
  }
}

bool ConcurrentPMA::ApplyOpLocal(Structure* snap, Gate* gate, const GateOp& op,
                                 size_t* trigger_seg) {
  // COW snapshots (ISSUE 9): before the first mutation under this hold,
  // hand every open snapshot its frozen image of the chunk.
  PreserveGateForSnapshots(snap, gate);
  Storage* st = snap->storage.get();
  const size_t B = st->segment_capacity();

  if (op.type == GateOp::Type::kRemove) {
    const size_t s = LocateSegment(*snap, *gate, op.key);
    Item* seg = st->segment(s);
    const uint32_t card = st->card(s);
    const size_t pos = hotpath::SegmentLowerBoundForUpdate(seg, card, op.key);
    if (pos >= card || seg[pos].key != op.key) return true;  // absent
    // All live-item stores below are tagged: the gate version is odd
    // (we hold WRITE), but optimistic readers may race through here and
    // TSan must see the race as atomics (common/tagged.h).
    hotpath::TaggedMoveItems(seg + pos, seg + pos + 1, card - pos - 1);
    st->set_card(s, card - 1);
    count_.fetch_sub(1, std::memory_order_relaxed);
    if (pos == 0 && s > 0) {
      st->set_route(s, card > 1 ? seg[0].key : kKeySentinel);
    }
    MaybeRequestShrink(snap);
    return true;
  }

  int attempts = 0;
  for (;;) {
    const size_t s = LocateSegment(*snap, *gate, op.key);
    Item* seg = st->segment(s);
    const uint32_t card = st->card(s);
    const size_t pos = hotpath::SegmentLowerBoundForUpdate(seg, card, op.key);
    if (pos < card && seg[pos].key == op.key) {
      TaggedStore(&seg[pos].value, op.value);  // upsert
      return true;
    }
    if (card < B) {
      hotpath::TaggedMoveItems(seg + pos + 1, seg + pos, card - pos);
      hotpath::TaggedStoreItem(seg + pos, Item{op.key, op.value});
      st->set_card(s, card + 1);
      if (pos == 0 && s > 0) st->set_route(s, op.key);
      st->bump_insert_count(s);
      count_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    // Segment full: local rebalance over in-gate calibrator windows.
    if (++attempts > 8) {
      *trigger_seg = s;
      return false;
    }
    DensityBounds bounds(cfg_.pma, st->num_segments());
    const size_t gate_level = Log2Floor(snap->segments_per_gate);
    bool spread_done = false;
    for (size_t level = 1;
         level <= std::min(gate_level, bounds.root_level()); ++level) {
      size_t b, e;
      WindowAt(s, level, &b, &e);
      if (b < gate->seg_begin() || e > gate->seg_end()) break;
      size_t m = 0;
      for (size_t i = b; i < e; ++i) m += st->card(i);
      const size_t cap = (e - b) * B;
      const double delta =
          static_cast<double>(m) / static_cast<double>(cap);
      if (delta <= bounds.Tau(level) && m + (e - b) <= cap) {
        WindowPlan plan =
            PlanSpread(*st, b, e, adaptive_effective(), /*trigger_seg=*/s);
        CopyPartitionToBuffer(st, plan, b, e);
        FinishSpread(st, plan);
        stat_local_rebalances_.fetch_add(1, std::memory_order_relaxed);
        spread_done = true;
        break;
      }
    }
    if (!spread_done) {
      *trigger_seg = s;
      return false;  // needs the rebalancer (window exceeds the gate)
    }
  }
}

bool ConcurrentPMA::ApplyBatchLocal(Structure* snap, Gate* gate,
                                    std::deque<GateOp>* pending) {
  size_t trigger = 0;
  // Canonicalize first (per key the last op wins) so that the
  // deletions-before-insertions passes below cannot reorder ops on the
  // *same* key — only the cross-key order is relaxed (paper §3.5).
  std::vector<BatchEntry> canon = CanonicalizeBatch(*pending);
  pending->clear();

  // Large batches go straight through one merged gate-window spread
  // (run-length merge, deletions as skipped runs) instead of the
  // op-at-a-time passes below: per-op application shifts ~B/2 items per
  // insert plus its share of local rebalances, while the merged spread
  // touches each window element exactly once — the crossover is when
  // the batch's shift work reaches the window's live size. When the
  // merged total does not fit, fall through: the deletions may free
  // enough room, and whatever remains spills to the rebalancer.
  {
    Storage* st = snap->storage.get();
    const size_t B = st->segment_capacity();
    size_t window_live = 0;
    for (size_t s = gate->seg_begin(); s < gate->seg_end(); ++s) {
      window_live += st->card(s);
    }
    if (!canon.empty() && canon.size() * (B / 2) >= window_live &&
        TryMergedGateSpread(snap, gate, canon)) {
      return true;
    }
  }
  // First pass: all deletions, freeing space for the insertions.
  std::vector<BatchEntry> inserts;
  for (const BatchEntry& e : canon) {
    if (e.is_delete) {
      CPMA_CHECK(ApplyOpLocal(snap, gate,
                              GateOp{GateOp::Type::kRemove, e.key, 0},
                              &trigger));
    } else {
      inserts.push_back(e);
    }
  }
  // Second pass: insertions — individually while they fit without
  // spilling out of the gate, then as one merged gate-window spread.
  size_t next = 0;
  while (next < inserts.size() &&
         ApplyOpLocal(snap, gate,
                      GateOp{GateOp::Type::kInsert, inserts[next].key,
                             inserts[next].value},
                      &trigger)) {
    ++next;
  }
  if (next == inserts.size()) return true;
  std::vector<BatchEntry> batch(inserts.begin() + next, inserts.end());
  if (TryMergedGateSpread(snap, gate, batch)) return true;
  for (const BatchEntry& e : batch) {
    // Restore the winner's enqueue stamp: the remainder re-enters the
    // queue and must compete against fresh (younger) ops under its
    // original issue order, not a fabricated one.
    pending->push_back(GateOp{GateOp::Type::kInsert, e.key, e.value, e.seq});
  }
  return false;
}

bool ConcurrentPMA::TryMergedGateSpread(Structure* snap, Gate* gate,
                                        const std::vector<BatchEntry>& ops) {
  PreserveGateForSnapshots(snap, gate);  // ISSUE 9: pre-image before mutation
  Storage* st = snap->storage.get();
  const size_t B = st->segment_capacity();
  const size_t b = gate->seg_begin();
  const size_t e = gate->seg_end();
  size_t ins = 0, del = 0;
  const size_t total = CountMerged(*st, b, e, ops, &ins, &del);
  DensityBounds bounds(cfg_.pma, st->num_segments());
  const size_t gate_level = Log2Floor(snap->segments_per_gate);
  const size_t cap = (e - b) * B;
  const double delta =
      static_cast<double>(total) / static_cast<double>(cap);
  if (delta > bounds.Tau(std::min(gate_level, bounds.root_level())) ||
      total + (e - b) > cap) {
    return false;
  }
  WindowPlan plan = PlanMergedSpread(*st, b, e, total);
  MergedCopyToBuffer(st, plan, ops);
  FinishSpread(st, plan);
  count_.fetch_add(ins, std::memory_order_relaxed);
  count_.fetch_sub(del, std::memory_order_relaxed);
  stat_batches_.fetch_add(1, std::memory_order_relaxed);
  if (del > 0) MaybeRequestShrink(snap);
  return true;
}

size_t ConcurrentPMA::LocateSegment(const Structure& snap, const Gate& gate,
                                    Key key) const {
  // The routing keys double as the gate's first-keys array: route(s) is
  // the first key of a non-empty segment, kKeySentinel for an empty one
  // (compares greater than any valid key, so empties drop out), kKeyMin
  // for global segment 0. The rightmost route <= key is therefore the
  // candidate segment, picked branchlessly/SIMD (hotpath/locate.h)
  // instead of the old early-exit scan over segment(s)[0].key. Only for
  // an empty global segment 0 can this pick an empty segment (its route
  // stays kKeyMin) — then the key precedes every stored key of the gate
  // and inserting at segment 0, position 0 is exactly right.
  const Storage& st = *snap.storage;
  const size_t idx =
      hotpath::LocateRoute(st.routes().data() + gate.seg_begin(),
                           gate.seg_end() - gate.seg_begin(), key);
  if (idx != hotpath::kNoRoute) return gate.seg_begin() + idx;
  // Key precedes every stored key of the chunk (rare — only next to the
  // low fence): fall back to the first non-empty segment.
  for (size_t s = gate.seg_begin(); s < gate.seg_end(); ++s) {
    if (st.card(s) > 0) return s;
  }
  return gate.seg_begin();
}

void ConcurrentPMA::MaybeRequestShrink(Structure* snap) {
  const size_t cap = snap->storage->capacity();
  if (snap->num_gates() <= 2) return;
  if (static_cast<double>(count_.load(std::memory_order_relaxed)) <
      cfg_.pma.shrink_density * static_cast<double>(cap)) {
    bool expected = false;
    if (snap->resize_requested.compare_exchange_strong(expected, true)) {
      rebalancer_->RequestShrink(snap->version);
    }
  }
}

// ---------------------------------------------------------------- reads
//
// All three readers (Find, SumAll, Scan) are optimistic-first: descend
// the static index, snapshot the gate's seqlock version, read the live
// storage with tagged accesses, validate. The blocking READ-latch path
// survives as the per-gate fallback after `optimistic_retries_` failed
// windows (0 = always blocking; CPMA_OPTIMISTIC_RETRIES env override).
// Protocol and ordering argument: concurrent_pma.h / common/latches.h.

size_t ConcurrentPMA::LocateSegmentOptimistic(const Structure& snap,
                                              const Gate& gate,
                                              Key key) const {
  // Same routing contract as LocateSegment (see its comment), but with
  // tagged route loads: on a racing rebalance the slice may be torn,
  // which can only misdirect the search inside the chunk — the caller's
  // version validation then rejects the window.
  const Storage& st = *snap.storage;
  const size_t idx =
      hotpath::TaggedLocateRoute(st.routes().data() + gate.seg_begin(),
                                 gate.seg_end() - gate.seg_begin(), key);
  if (idx != hotpath::kNoRoute) return gate.seg_begin() + idx;
  for (size_t s = gate.seg_begin(); s < gate.seg_end(); ++s) {
    if (st.card(s) > 0) return s;
  }
  return gate.seg_begin();
}

ConcurrentPMA::OptRead ConcurrentPMA::TryOptimisticFind(const Structure& snap,
                                                        Key key,
                                                        Value* value) const {
  const Storage& st = *snap.storage;
  const uint32_t B = static_cast<uint32_t>(st.segment_capacity());
  size_t gid = snap.index->Lookup(key);
  for (int attempt = 0; attempt < optimistic_retries_; ++attempt) {
    const Gate& gate = snap.gates[gid];
    const uint64_t v = gate.version().ReadBegin();
    if (!SeqVersion::Stable(v)) continue;  // mutator active on this gate
    if (gate.invalidated_relaxed()) return OptRead::kRestart;
    const Key lo = gate.low_fence();
    const Key hi = gate.high_fence();
    if (key < lo || key > hi) {
      // Only a validated version proves [lo, hi] was read untorn;
      // then the neighbour walk is as sound as the latched one. A walk
      // burns an attempt, which bounds fence ping-pong under churn.
      if (!gate.version().Validate(v)) continue;
      if (key < lo) {
        if (gid == 0) return OptRead::kFallback;
        --gid;
      } else {
        if (gid + 1 >= snap.num_gates()) return OptRead::kFallback;
        ++gid;
      }
      continue;
    }
    const size_t s = LocateSegmentOptimistic(snap, gate, key);
    const Item* seg = st.segment(s);
    // Clamp a (possibly racing) cardinality so the search never leaves
    // the segment; any stored card is <= B, the min is belt-and-braces.
    const uint32_t card = std::min(st.card(s), B);
    const size_t pos = hotpath::TaggedSegmentLowerBound(seg, card, key);
    Item it{kKeySentinel, 0};
    if (pos < card) it = hotpath::TaggedLoadItem(seg + pos);
    if (!gate.version().Validate(v)) continue;
    // Stable window: the lookup linearizes at the validation point.
    if (it.key == key) {
      if (value != nullptr) *value = it.value;
      return OptRead::kHit;
    }
    return OptRead::kMiss;
  }
  return OptRead::kFallback;
}

bool ConcurrentPMA::Find(Key key, Value* value) const {
  CPMA_CHECK_MSG(key <= kKeyMax, "key out of domain (UINT64_MAX reserved)");
  EpochGuard guard(gc_);
  for (;;) {
    Structure* snap = structure_.load(std::memory_order_acquire);
    switch (TryOptimisticFind(*snap, key, value)) {
      case OptRead::kHit:
        return true;
      case OptRead::kMiss:
        return false;
      case OptRead::kRestart:
        guard.Refresh();
        continue;
      case OptRead::kFallback:
        break;
    }
    stat_read_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    TailEventRing::Global().RecordInstant(TailEvent::kReadFallback);
    // Blocking fallback: the pre-optimistic READ-latch protocol.
    size_t gid = snap->index->Lookup(key);
    GateAccess a;
    Gate* gate;
    for (;;) {
      gate = &snap->gates[gid];
      a = gate->ReaderAccess(&key);
      if (a == GateAccess::kTooLow) {
        CPMA_CHECK(gid > 0);
        --gid;
      } else if (a == GateAccess::kTooHigh) {
        CPMA_CHECK(gid + 1 < snap->num_gates());
        ++gid;
      } else {
        break;
      }
    }
    if (a == GateAccess::kInvalidated) {
      guard.Refresh();
      continue;
    }
    const Storage& st = *snap->storage;
    const size_t s = LocateSegment(*snap, *gate, key);
    const Item* seg = st.segment(s);
    const uint32_t card = st.card(s);
    const size_t pos = SegmentLowerBound(seg, card, key);
    const bool found = pos < card && seg[pos].key == key;
    if (found && value != nullptr) *value = seg[pos].value;
    gate->ReaderRelease();
    return found;
  }
}

ConcurrentPMA::OptGate ConcurrentPMA::TryOptimisticGateSum(
    const Structure& snap, const Gate& gate, Key cursor, bool have_cursor,
    uint64_t* sum_out, Key* gate_high) const {
  const Storage& st = *snap.storage;
  const uint32_t B = static_cast<uint32_t>(st.segment_capacity());
  for (int attempt = 0; attempt < optimistic_retries_; ++attempt) {
    const uint64_t v = gate.version().ReadBegin();
    if (!SeqVersion::Stable(v)) continue;
    if (gate.invalidated_relaxed()) return OptGate::kRestart;
    const Key hi = gate.high_fence();
    uint64_t local = 0;
    bool ok = true;
    for (size_t s = gate.seg_begin(); s < gate.seg_end(); ++s) {
      if (s + 1 < gate.seg_end()) {
        hotpath::PrefetchSegment(st.segment(s + 1), st.card(s + 1));
      }
      const Item* seg = st.segment(s);
      const uint32_t card = std::min(st.card(s), B);
      uint32_t i = 0;
      if (have_cursor) {
        i = static_cast<uint32_t>(
            hotpath::TaggedSegmentLowerBound(seg, card, cursor));
        if (i < card && TaggedLoad(&seg[i].key) == cursor) ++i;  // after
      }
      for (; i < card; ++i) local += TaggedLoad(&seg[i].value);
      // Segment-copy granularity: one failed window discards at most
      // one segment's worth of torn accumulation.
      if (!gate.version().Validate(v)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    stat_optimistic_gate_reads_.fetch_add(1, std::memory_order_relaxed);
    *sum_out = local;
    *gate_high = hi;
    return OptGate::kOk;
  }
  return OptGate::kFallback;
}

uint64_t ConcurrentPMA::SumAll() const {
  uint64_t sum = 0;
  // The cursor is the last *validated* fence key: everything <= cursor
  // is already folded, so restarts and fallbacks resume without
  // re-reading chunks that validated.
  Key cursor = 0;
  bool have_cursor = false;
  EpochGuard guard(gc_);
  for (;;) {
    Structure* snap = structure_.load(std::memory_order_acquire);
    const Storage& st = *snap->storage;
    size_t gid = have_cursor ? snap->index->Lookup(cursor) : 0;
    bool restart = false;
    for (; gid < snap->num_gates(); ++gid) {
      Gate* gate = &snap->gates[gid];
      uint64_t gate_sum = 0;
      Key gate_high = kKeySentinel;
      const OptGate r = TryOptimisticGateSum(*snap, *gate, cursor,
                                             have_cursor, &gate_sum,
                                             &gate_high);
      if (r == OptGate::kRestart) {
        guard.Refresh();
        restart = true;
        break;
      }
      if (r == OptGate::kFallback) {
        stat_read_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        TailEventRing::Global().RecordInstant(TailEvent::kReadFallback);
        if (gate->ReaderAccess(nullptr) == GateAccess::kInvalidated) {
          guard.Refresh();
          restart = true;
          break;
        }
        gate_sum = 0;
        for (size_t s = gate->seg_begin(); s < gate->seg_end(); ++s) {
          // Prefetch stays inside the gate: card(s+1) in a foreign gate
          // would race with its writer outside any validated window.
          if (s + 1 < gate->seg_end()) {
            hotpath::PrefetchSegment(st.segment(s + 1), st.card(s + 1));
          }
          const Item* seg = st.segment(s);
          const uint32_t card = st.card(s);
          uint32_t i = 0;
          if (have_cursor) {
            i = static_cast<uint32_t>(SegmentLowerBound(seg, card, cursor));
            if (i < card && seg[i].key == cursor) ++i;  // strictly after
          }
          for (; i < card; ++i) gate_sum += seg[i].value;
        }
        gate_high = gate->high_fence();
        gate->ReaderRelease();
      }
      sum += gate_sum;
      // Advance-only: a stale index descent after a restart can land
      // left of the cursor's gate, whose high fence is smaller — moving
      // the cursor backwards would re-admit already-folded keys.
      if (!have_cursor || gate_high > cursor) cursor = gate_high;
      have_cursor = true;
    }
    if (!restart) return sum;
  }
}

ConcurrentPMA::OptGate ConcurrentPMA::TryOptimisticGateCopy(
    const Structure& snap, const Gate& gate, Key cursor, Key max,
    std::vector<Item>* out, Key* gate_high) const {
  const Storage& st = *snap.storage;
  const uint32_t B = static_cast<uint32_t>(st.segment_capacity());
  for (int attempt = 0; attempt < optimistic_retries_; ++attempt) {
    const uint64_t v = gate.version().ReadBegin();
    if (!SeqVersion::Stable(v)) continue;
    if (gate.invalidated_relaxed()) return OptGate::kRestart;
    const Key hi = gate.high_fence();
    out->clear();
    bool ok = true;
    for (size_t s = gate.seg_begin(); s < gate.seg_end(); ++s) {
      if (s + 1 < gate.seg_end()) {
        hotpath::PrefetchSegment(st.segment(s + 1), st.card(s + 1));
      }
      const Item* seg = st.segment(s);
      const uint32_t card = std::min(st.card(s), B);
      // Stage only [cursor, ...]: a narrow range scan must not pay a
      // whole-chunk copy (the pre-optimistic path emitted from the
      // per-segment lower bound too).
      const uint32_t i0 = static_cast<uint32_t>(
          hotpath::TaggedSegmentLowerBound(seg, card, cursor));
      if (i0 < card) {
        const size_t base = out->size();
        out->resize(base + (card - i0));
        hotpath::TaggedReadItems(out->data() + base, seg + i0, card - i0);
      }
      // Segment-copy granularity: a failed window never stages more
      // than one segment of torn data before being discarded.
      if (!gate.version().Validate(v)) {
        ok = false;
        break;
      }
      // Validated tail already past `max`: later segments only hold
      // greater keys, stop staging (the emitter trims the overshoot).
      if (!out->empty() && out->back().key > max) break;
    }
    if (!ok) continue;
    stat_optimistic_gate_reads_.fetch_add(1, std::memory_order_relaxed);
    *gate_high = hi;
    return OptGate::kOk;
  }
  return OptGate::kFallback;
}

void ConcurrentPMA::CopyGateLatched(const Structure& snap, const Gate& gate,
                                    Key cursor, Key max,
                                    std::vector<Item>* out) const {
  const Storage& st = *snap.storage;
  out->clear();
  for (size_t s = gate.seg_begin(); s < gate.seg_end(); ++s) {
    if (s + 1 < gate.seg_end()) {
      hotpath::PrefetchSegment(st.segment(s + 1), st.card(s + 1));
    }
    const Item* seg = st.segment(s);
    const uint32_t card = st.card(s);
    const size_t i0 = SegmentLowerBound(seg, card, cursor);
    out->insert(out->end(), seg + i0, seg + card);
    if (!out->empty() && out->back().key > max) break;
  }
}

ConcurrentPMA::ScanCursor::ScanCursor(const ConcurrentPMA& pma, Key min,
                                      Key max)
    : pma_(pma), guard_(pma.gc_), max_(max), cursor_(min), done_(min > max) {}

bool ConcurrentPMA::ScanCursor::NextChunk(std::vector<Item>* out) {
  out->clear();
  if (done_) return false;
  // The body is the former Scan() loop with emission replaced by a
  // return: each call stages one gate's chunk (validated seqlock window
  // or latched fallback) into `chunk_`, trims it to the still-pending
  // range, and hands the trimmed run to the caller. Callers therefore
  // consume items outside every latch and validation window, exactly
  // like Scan callbacks did. On a failed validation the cursor restarts
  // from a fresh snapshot; `out` is still empty at that point (we
  // return as soon as it is filled), so no chunk is ever re-delivered.
  for (;;) {
    Structure* snap = pma_.structure_.load(std::memory_order_acquire);
    size_t gid = snap->index->Lookup(cursor_);
    bool restart = false;
    for (; gid < snap->num_gates(); ++gid) {
      Gate* gate = &snap->gates[gid];
      Key gate_high = kKeySentinel;
      const OptGate r = pma_.TryOptimisticGateCopy(*snap, *gate, cursor_,
                                                   max_, &chunk_, &gate_high);
      if (r == OptGate::kRestart) {
        guard_.Refresh();
        restart = true;
        break;
      }
      if (r == OptGate::kFallback) {
        pma_.stat_read_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        TailEventRing::Global().RecordInstant(TailEvent::kReadFallback);
        if (gate->ReaderAccess(nullptr) == GateAccess::kInvalidated) {
          guard_.Refresh();
          restart = true;
          break;
        }
        pma_.CopyGateLatched(*snap, *gate, cursor_, max_, &chunk_);
        gate_high = gate->high_fence();
        gate->ReaderRelease();
      }
      // Trim the staged (validated or latched) copy to the pending
      // range: strictly after the cursor once it was delivered, and
      // nothing past max.
      size_t i = static_cast<size_t>(
          std::lower_bound(chunk_.begin(), chunk_.end(), cursor_,
                           [](const Item& a, Key k) { return a.key < k; }) -
          chunk_.begin());
      if (consumed_cursor_ && i < chunk_.size() && chunk_[i].key == cursor_) {
        ++i;
      }
      size_t j = i;
      while (j < chunk_.size() && chunk_[j].key <= max_) ++j;
      const bool past_max = j < chunk_.size();  // saw a key > max
      if (i < j) {
        out->assign(chunk_.begin() + static_cast<ptrdiff_t>(i),
                    chunk_.begin() + static_cast<ptrdiff_t>(j));
        cursor_ = chunk_[j - 1].key;
        consumed_cursor_ = true;
      }
      if (past_max || gate_high >= max_) {
        done_ = true;  // gates right of here exceed max
        return !out->empty();
      }
      // Resume from the validated fence: the next gate's keys are all
      // greater, and a restart re-enters past this chunk. Advance-only
      // (see SumAll): never move the cursor backwards off a stale gate.
      if (gate_high > cursor_ ||
          (!consumed_cursor_ && gate_high == cursor_)) {
        cursor_ = gate_high;
        consumed_cursor_ = true;
      }
      if (!out->empty()) return true;
    }
    if (!restart) {
      done_ = true;
      return !out->empty();
    }
  }
}

void ConcurrentPMA::Scan(Key min, Key max, const ScanCallback& cb) const {
  // Thin wrapper over the pull cursor (ISSUE 8) so the existing scan
  // tests cover the chunk decomposition the sharded merge relies on.
  ScanCursor cursor(*this, min, max);
  std::vector<Item> chunk;
  while (cursor.NextChunk(&chunk)) {
    for (const Item& it : chunk) {
      if (!cb(it.key, it.value)) return;
    }
  }
}

// ------------------------------------------------- storage observability

bool ConcurrentPMA::storage_rewiring_enabled() const {
  EpochGuard guard(gc_);
  return structure_.load(std::memory_order_acquire)
      ->storage->rewiring_enabled();
}

size_t ConcurrentPMA::storage_page_bytes() const {
  EpochGuard guard(gc_);
  return structure_.load(std::memory_order_acquire)->storage->page_bytes();
}

size_t ConcurrentPMA::storage_backing_page_bytes() const {
  EpochGuard guard(gc_);
  return structure_.load(std::memory_order_acquire)
      ->storage->backing_page_bytes();
}

uint64_t ConcurrentPMA::storage_num_remaps() const {
  EpochGuard guard(gc_);
  return structure_.load(std::memory_order_acquire)->storage->num_remaps();
}

uint64_t ConcurrentPMA::storage_num_fallback_copies() const {
  EpochGuard guard(gc_);
  return structure_.load(std::memory_order_acquire)
      ->storage->num_fallback_copies();
}

uint64_t ConcurrentPMA::storage_num_remap_failures() const {
  EpochGuard guard(gc_);
  return structure_.load(std::memory_order_acquire)
      ->storage->num_remap_failures();
}

// --------------------------------------------- fault tolerance (ISSUE 7)

bool ConcurrentPMA::fallback_backend_active() const {
  EpochGuard guard(gc_);
  return structure_.load(std::memory_order_acquire)
      ->storage->fallback_backend_active();
}

uint64_t ConcurrentPMA::num_watchdog_trips() const {
  // Out of line: Rebalancer is incomplete in the header.
  return rebalancer_->watchdog_trips();
}

void ConcurrentPMA::ReportError(const Status& status) {
  {
    std::lock_guard<std::mutex> lk(error_mu_);
    last_error_ = status;
  }
  if (error_cb_) error_cb_(status);
}

// ------------------------------------------------------------- lifecycle

void ConcurrentPMA::Flush() {
  for (;;) {
    rebalancer_->Drain();
    if (pending_async_.load(std::memory_order_acquire) == 0 &&
        rebalancer_->Idle()) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

bool ConcurrentPMA::CheckInvariants(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  Structure* snap = structure_.load(std::memory_order_acquire);
  const Storage& st = *snap->storage;
  const size_t B = st.segment_capacity();
  size_t total = 0;
  Key prev = 0;
  bool have_prev = false;
  for (size_t g = 0; g < snap->num_gates(); ++g) {
    const Gate& gate = snap->gates[g];
    if (g == 0 && gate.low_fence() != kKeyMin) {
      return fail("gate 0 low fence must be kKeyMin");
    }
    if (g + 1 < snap->num_gates()) {
      if (gate.high_fence() != snap->gates[g + 1].low_fence() - 1) {
        return fail("fences not contiguous at gate " + std::to_string(g));
      }
    } else if (gate.high_fence() != kKeySentinel) {
      return fail("last gate high fence must be the sentinel");
    }
    if (snap->index->separator(g) != gate.low_fence()) {
      return fail("index separator mismatch at gate " + std::to_string(g));
    }
    if (gate.writer_active_unsafe() || gate.queue_size_unsafe() != 0) {
      return fail("combining queue not drained at gate " +
                  std::to_string(g));
    }
    for (size_t s = gate.seg_begin(); s < gate.seg_end(); ++s) {
      const uint32_t card = st.card(s);
      if (card > B) return fail("segment cardinality exceeds capacity");
      const Item* seg = st.segment(s);
      for (uint32_t i = 0; i < card; ++i) {
        if (have_prev && seg[i].key <= prev) {
          return fail("keys not strictly increasing at segment " +
                      std::to_string(s));
        }
        if (seg[i].key < gate.low_fence() ||
            seg[i].key > gate.high_fence()) {
          return fail("key outside gate fences at gate " +
                      std::to_string(g));
        }
        prev = seg[i].key;
        have_prev = true;
      }
      if (card > 0 && s != 0 && st.route(s) != seg[0].key) {
        return fail("routing key mismatch at segment " + std::to_string(s));
      }
      total += card;
    }
  }
  if (total != count_.load(std::memory_order_relaxed)) {
    return fail("element count mismatch: stored " + std::to_string(total) +
                " vs counter " + std::to_string(count_.load()));
  }
  return true;
}

}  // namespace cpma
