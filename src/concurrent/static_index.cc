#include "concurrent/static_index.h"

#include <algorithm>

#include "common/status.h"
#include "pma/item.h"

namespace cpma {

StaticIndex::StaticIndex(size_t num_gates, size_t fanout)
    : num_gates_(num_gates), fanout_(fanout) {
  CPMA_CHECK(num_gates >= 1);
  CPMA_CHECK(fanout >= 2);
  size_t total = 0;
  size_t n = num_gates;
  for (;;) {
    level_offset_.push_back(total);
    level_size_.push_back(n);
    total += n;
    if (n == 1) break;
    n = (n + fanout - 1) / fanout;
  }
  slots_ = std::make_unique<std::atomic<Key>[]>(total);
  for (size_t i = 0; i < total; ++i) {
    slots_[i].store(kKeySentinel, std::memory_order_relaxed);
  }
  SetSeparator(0, kKeyMin);
}

size_t StaticIndex::Lookup(Key key) const {
  // Descend from the top level; at each level pick the right-most
  // separator <= key within the node's group. Upper levels replicate the
  // first separator of each group below, so group boundaries carry keys.
  //
  // The pick is branchless (ISSUE 2): count every separator <= key in
  // the group instead of breaking at the first one greater — under
  // quiescence the separators are non-decreasing, so the count IS the
  // right-most match, and the loop has no data-dependent branches for
  // the predictor to miss. Under concurrent separator updates a torn or
  // non-monotone read just perturbs the count; the result is still a
  // slot inside [group, end), i.e. *some* existing gate, and the caller
  // re-validates against the gate's fence keys exactly as before (the
  // relaxed-atomic torn-read contract in static_index.h).
  size_t level = num_levels() - 1;
  size_t group = 0;  // index of the first entry of the current node
  for (;;) {
    const size_t base = level_offset_[level];
    const size_t size = level_size_[level];
    const size_t end = std::min(group + fanout_, size);
    size_t cnt = 0;
    for (size_t i = group; i < end; ++i) {
      cnt += static_cast<size_t>(
          slots_[base + i].load(std::memory_order_relaxed) <= key);
    }
    const size_t pick = group + (cnt > 0 ? cnt - 1 : 0);
    if (level == 0) return pick;
    --level;
    group = pick * fanout_;
    if (group >= level_size_[level]) {
      // Torn/stale separators can point past the end; clamp to the last
      // group — fence validation at the gate corrects the rest.
      group = (level_size_[level] - 1) / fanout_ * fanout_;
    }
  }
}

void StaticIndex::SetSeparator(size_t gate, Key low_fence) {
  CPMA_CHECK(gate < num_gates_);
  size_t pos = gate;
  for (size_t level = 0; level < num_levels(); ++level) {
    slots_[level_offset_[level] + pos].store(low_fence,
                                             std::memory_order_relaxed);
    if (pos % fanout_ != 0) break;  // not the first of its group: stop
    pos /= fanout_;
  }
}

}  // namespace cpma
