#include "concurrent/snapshot.h"

#include <algorithm>
#include <cstring>

#include "common/hotpath/search.h"
#include "common/hotpath/tagged.h"
#include "concurrent/concurrent_pma.h"

namespace cpma {

using snapshot_internal::GateSnap;

// ------------------------------------------------------------- capture

std::unique_ptr<PMASnapshot> ConcurrentPMA::Snapshot() const {
  std::unique_ptr<PMASnapshot> s(new PMASnapshot());
  s->pma_ = this;
  // Dedicated epoch slot: the capturing thread's own LocalSlot keeps
  // being entered/exited by its later operations, so the snapshot needs
  // its own pin to hold the Structure across those.
  s->slot_ = gc_.RegisterThread();
  gc_.Enter(s->slot_);
  Structure* snap = structure_.load(std::memory_order_acquire);
  s->snap_ = snap;
  s->struct_version_ = snap->version;
  s->num_gates_ = snap->num_gates();
  s->entries_.reset(new std::atomic<GateSnap*>[s->num_gates_]);
  for (size_t g = 0; g < s->num_gates_; ++g) {
    s->entries_[g].store(nullptr, std::memory_order_relaxed);
  }
  // View creation can fail (anonymous fallback backend, mmap denial,
  // injected fault): the snapshot then runs in all-heap-copy mode —
  // every preservation copies the whole chunk. Degraded, not broken.
  Status view_status;
  s->view_ = snap->storage->CreateSnapshotView(&view_status);
  {
    // The stamp bump is the snapshot's linearization point: a mutator
    // that loaded the old stamp (and so skipped preservation) ordered
    // its mutation before this gate's capture point.
    std::lock_guard<std::mutex> lk(snaps_mu_);
    s->stamp_ = snap_stamp_.load(std::memory_order_relaxed) + 1;
    snap_stamp_.store(s->stamp_, std::memory_order_relaxed);
    open_snaps_.push_back(s.get());
  }
  stat_snapshots_taken_.fetch_add(1, std::memory_order_relaxed);
  snapshots_open_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

uint64_t ConcurrentPMA::cow_pages_retained_bytes() const {
  EpochGuard guard(gc_);
  return structure_.load(std::memory_order_acquire)
      ->storage->cow_retained_page_bytes();
}

void ConcurrentPMA::PreserveGateSlow(Structure* snap, Gate* gate) const {
  std::lock_guard<std::mutex> lk(snaps_mu_);
  const uint64_t sv = snap_stamp_.load(std::memory_order_relaxed);
  Storage* st = snap->storage.get();
  const size_t B = st->segment_capacity();
  const size_t sb = gate->seg_begin();
  const size_t se = gate->seg_end();
  const char* base = reinterpret_cast<const char*>(st->segment(0));
  const size_t chunk_off = sb * B * sizeof(Item);
  const size_t chunk_len = (se - sb) * B * sizeof(Item);
  for (PMASnapshot* s : open_snaps_) {
    if (s->snap_ != snap) continue;  // snapshot of a retired structure
    std::atomic<GateSnap*>& slot = s->entries_[gate->id()];
    if (slot.load(std::memory_order_relaxed) != nullptr) continue;
    auto* e = new GateSnap();
    e->low_fence = gate->low_fence();
    e->high_fence = gate->high_fence();
    e->cards.resize(se - sb);
    e->routes.resize(se - sb);
    for (size_t i = 0; i < se - sb; ++i) {
      e->cards[i] = st->card(sb + i);
      e->routes[i] = st->route(sb + i);
    }
    // Try the zero-copy freeze first. kStale (the region was re-backed
    // by a rewire since the view was captured) and kUnavailable (alloc
    // or mmap failure mid-freeze) both degrade to one heap copy of the
    // chunk; pages already frozen stay valid for other entries.
    bool frozen = false;
    if (s->view_ != nullptr) {
      frozen = st->CowPreserveItems(*s->view_, sb * B, se * B) ==
               RewiredRegion::CowResult::kFrozen;
    }
    if (frozen) {
      e->from_view = true;
      const size_t ps = st->page_bytes();
      const size_t chunk_end = chunk_off + chunk_len;
      // Partial-page edges are never frozen (they may share pages with
      // neighbouring chunks another gate owns): copy them under this
      // gate's hold. head = [chunk_off, first page boundary), tail =
      // [last page boundary, chunk_end); for a sub-page chunk the head
      // swallows everything and the tail is empty.
      const size_t head_end =
          std::min((chunk_off + ps - 1) / ps * ps, chunk_end);
      const size_t tail_beg = std::max(chunk_end / ps * ps, head_end);
      e->head.assign(base + chunk_off, base + head_end);
      e->tail.assign(base + tail_beg, base + chunk_end);
    } else {
      e->full.assign(base + chunk_off, base + chunk_off + chunk_len);
    }
    s->retained_bytes_.fetch_add(e->bytes(), std::memory_order_relaxed);
    slot.store(e, std::memory_order_release);
  }
  // All open snapshots of this structure now hold this gate; mutators
  // skip the slow path until the next Snapshot() bumps the stamp.
  // (Snapshots of retired structures need no entry: a retired storage
  // never mutates again, so their live reads stay frozen.)
  gate->set_cow_stamp(sv);
}

// -------------------------------------------------------------- readers

PMASnapshot::~PMASnapshot() {
  {
    std::lock_guard<std::mutex> lk(pma_->snaps_mu_);
    auto& v = pma_->open_snaps_;
    v.erase(std::find(v.begin(), v.end(), this));
  }
  // Close the view while the epoch pin still holds the region alive;
  // superseded pages it pinned are hole-punched and recycled here.
  view_.reset();
  // The heap entries go through the byte-accounted limbo lists like any
  // other retired structure — a parked reader pinning a large snapshot
  // trips the bytes watermark, not the count one.
  GateSnap** entries = new GateSnap*[num_gates_];
  for (size_t g = 0; g < num_gates_; ++g) {
    entries[g] = entries_[g].load(std::memory_order_relaxed);
  }
  const size_t n = num_gates_;
  pma_->gc_.Retire(
      [entries, n] {
        for (size_t g = 0; g < n; ++g) delete entries[g];
        delete[] entries;
      },
      retained_bytes_.load(std::memory_order_relaxed));
  entries_.reset();
  pma_->gc_.Exit(slot_);
  pma_->gc_.UnregisterThread(slot_);
  pma_->snapshots_open_.fetch_sub(1, std::memory_order_relaxed);
}

void PMASnapshot::MaterializeFromEntry(const GateSnap& e, size_t g,
                                       std::vector<char>* scratch,
                                       std::vector<uint32_t>* cards,
                                       Key* low, Key* high) const {
  const Gate& gate = snap_->gates[g];
  const Storage& st = *snap_->storage;
  const size_t B = st.segment_capacity();
  const size_t chunk_off = gate.seg_begin() * B * sizeof(Item);
  const size_t chunk_len =
      (gate.seg_end() - gate.seg_begin()) * B * sizeof(Item);
  scratch->resize(chunk_len);
  if (e.from_view) {
    // Frozen interior straight from the COW view; edge fragments from
    // the heap. Only the interior bytes are read from the view — the
    // edge pages are shared with the live region and still mutate.
    const size_t mid = chunk_len - e.head.size() - e.tail.size();
    std::memcpy(scratch->data() + e.head.size(),
                view_->data() + chunk_off + e.head.size(), mid);
    // Page-aligned gates have empty fragments; vector::data() may be
    // null then, which memcpy's nonnull contract forbids even for n=0.
    if (!e.head.empty()) {
      std::memcpy(scratch->data(), e.head.data(), e.head.size());
    }
    if (!e.tail.empty()) {
      std::memcpy(scratch->data() + chunk_len - e.tail.size(), e.tail.data(),
                  e.tail.size());
    }
  } else {
    std::memcpy(scratch->data(), e.full.data(), chunk_len);
  }
  *cards = e.cards;
  *low = e.low_fence;
  *high = e.high_fence;
}

void PMASnapshot::MaterializeGate(size_t g, std::vector<char>* scratch,
                                  std::vector<uint32_t>* cards, Key* low,
                                  Key* high) const {
  const GateSnap* e = entries_[g].load(std::memory_order_acquire);
  if (e != nullptr) {
    MaterializeFromEntry(*e, g, scratch, cards, low, high);
    return;
  }
  Gate& gate = snap_->gates[g];
  const Storage& st = *snap_->storage;
  const uint32_t B = static_cast<uint32_t>(st.segment_capacity());
  const size_t sb = gate.seg_begin();
  const size_t se = gate.seg_end();
  scratch->resize((se - sb) * B * sizeof(Item));
  cards->resize(se - sb);
  Item* items = reinterpret_cast<Item*>(scratch->data());

  // Entry absent => no post-snapshot mutation has committed on this
  // gate, so the live chunk IS the frozen image. Two optimistic
  // attempts (tagged reads inside a validated seqlock window), then the
  // blocking READ latch. Whichever path completes, the entry slot is
  // re-checked afterwards: a writer that preserved + mutated entirely
  // inside our window must win with its pre-image.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const uint64_t v = gate.version().ReadBegin();
    if (!SeqVersion::Stable(v)) continue;
    *low = gate.low_fence();
    *high = gate.high_fence();
    for (size_t s = sb; s < se; ++s) {
      const uint32_t card = std::min(st.card(s), B);
      (*cards)[s - sb] = card;
      hotpath::TaggedReadItems(items + (s - sb) * B, st.segment(s), card);
    }
    if (!gate.version().Validate(v)) continue;
    const GateSnap* e2 = entries_[g].load(std::memory_order_acquire);
    if (e2 != nullptr) {
      MaterializeFromEntry(*e2, g, scratch, cards, low, high);
    }
    return;
  }

  const GateAccess a = gate.ReaderAccess(nullptr);
  if (a == GateAccess::kOwner) {
    latched_gate_reads_.fetch_add(1, std::memory_order_relaxed);
    const GateSnap* e2 = entries_[g].load(std::memory_order_acquire);
    if (e2 != nullptr) {
      gate.ReaderRelease();
      MaterializeFromEntry(*e2, g, scratch, cards, low, high);
      return;
    }
    *low = gate.low_fence();
    *high = gate.high_fence();
    for (size_t s = sb; s < se; ++s) {
      const uint32_t card = std::min(st.card(s), B);
      (*cards)[s - sb] = card;
      hotpath::TaggedReadItems(items + (s - sb) * B, st.segment(s), card);
    }
    gate.ReaderRelease();
    return;
  }
  // kInvalidated: a resize retired our pinned Structure. Its storage is
  // frozen forever (the resize merged *out* of it), so a plain read is
  // the frozen image — no restart, ever.
  CPMA_CHECK(a == GateAccess::kInvalidated);
  const GateSnap* e2 = entries_[g].load(std::memory_order_acquire);
  if (e2 != nullptr) {
    MaterializeFromEntry(*e2, g, scratch, cards, low, high);
    return;
  }
  *low = gate.low_fence();
  *high = gate.high_fence();
  for (size_t s = sb; s < se; ++s) {
    const uint32_t card = std::min(st.card(s), B);
    (*cards)[s - sb] = card;
    hotpath::TaggedReadItems(items + (s - sb) * B, st.segment(s), card);
  }
}

uint64_t PMASnapshot::SumAll() const {
  uint64_t sum = 0;
  std::vector<char> scratch;
  std::vector<uint32_t> cards;
  Key low, high;
  const size_t B = snap_->storage->segment_capacity();
  for (size_t g = 0; g < num_gates_; ++g) {
    MaterializeGate(g, &scratch, &cards, &low, &high);
    const Item* items = reinterpret_cast<const Item*>(scratch.data());
    for (size_t s = 0; s < cards.size(); ++s) {
      for (uint32_t i = 0; i < cards[s]; ++i) {
        sum += items[s * B + i].value;
      }
    }
  }
  return sum;
}

uint64_t PMASnapshot::CountItems() const {
  uint64_t n = 0;
  std::vector<char> scratch;
  std::vector<uint32_t> cards;
  Key low, high;
  for (size_t g = 0; g < num_gates_; ++g) {
    MaterializeGate(g, &scratch, &cards, &low, &high);
    for (uint32_t c : cards) n += c;
  }
  return n;
}

void PMASnapshot::Scan(Key min, Key max,
                       const ScanCallback& cb) const {
  if (min > max) return;
  std::vector<char> scratch;
  std::vector<uint32_t> cards;
  Key low, high;
  const size_t B = snap_->storage->segment_capacity();
  for (size_t g = 0; g < num_gates_; ++g) {
    MaterializeGate(g, &scratch, &cards, &low, &high);
    if (high < min) continue;  // entire chunk below the range
    const Item* items = reinterpret_cast<const Item*>(scratch.data());
    for (size_t s = 0; s < cards.size(); ++s) {
      const Item* seg = items + s * B;
      const uint32_t card = cards[s];
      uint32_t i = 0;
      if (min != kKeyMin) {
        i = static_cast<uint32_t>(
            hotpath::SegmentLowerBound(seg, card, min));
      }
      for (; i < card; ++i) {
        if (seg[i].key > max) return;
        if (!cb(seg[i].key, seg[i].value)) return;
      }
    }
    if (low > max || high >= max) return;  // gates right of here exceed max
  }
}

bool PMASnapshot::Find(Key key, Value* value) const {
  // The live index is only a hint (its separators keep moving with
  // rebalances); the frozen fences of the cut form a proper partition,
  // so walking by them converges on the owning gate.
  std::vector<char> scratch;
  std::vector<uint32_t> cards;
  Key low, high;
  const size_t B = snap_->storage->segment_capacity();
  size_t g = std::min(snap_->index->Lookup(key), num_gates_ - 1);
  for (size_t steps = 0; steps <= num_gates_; ++steps) {
    MaterializeGate(g, &scratch, &cards, &low, &high);
    if (key < low) {
      if (g == 0) return false;
      --g;
      continue;
    }
    if (key > high) {
      if (g + 1 >= num_gates_) return false;
      ++g;
      continue;
    }
    const Item* items = reinterpret_cast<const Item*>(scratch.data());
    for (size_t s = 0; s < cards.size(); ++s) {
      const Item* seg = items + s * B;
      const uint32_t card = cards[s];
      if (card == 0 || seg[0].key > key || seg[card - 1].key < key) {
        continue;
      }
      const size_t pos = hotpath::SegmentLowerBound(seg, card, key);
      if (pos < card && seg[pos].key == key) {
        if (value != nullptr) *value = seg[pos].value;
        return true;
      }
      return false;
    }
    return false;
  }
  CPMA_CHECK_MSG(false, "snapshot fence walk did not converge");
  return false;
}

}  // namespace cpma
