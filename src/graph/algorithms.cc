#include "graph/algorithms.h"

#include <algorithm>
#include <deque>

namespace cpma {

std::vector<uint32_t> Bfs(const GraphView& g, VertexId source) {
  const VertexId n = g.NumVertices();
  std::vector<uint32_t> dist(n, kUnreachable);
  if (source >= n) return dist;
  dist[source] = 0;
  std::deque<VertexId> frontier{source};
  while (!frontier.empty()) {
    const VertexId u = frontier.front();
    frontier.pop_front();
    const uint32_t du = dist[u];
    g.ForEachNeighbor(u, [&](VertexId v, Value) {
      if (v < n && dist[v] == kUnreachable) {
        dist[v] = du + 1;
        frontier.push_back(v);
      }
      return true;
    });
  }
  return dist;
}

std::vector<double> PageRank(const GraphView& g, int iterations) {
  const VertexId n = g.NumVertices();
  const double damping = 0.85;
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n);
  // One degree pass for the whole run (hoisted in ISSUE 10: the per-
  // iteration recount tripled the scan volume; on a frozen view the
  // recount was identical every time by definition).
  std::vector<uint32_t> out_degree(n, 0u);
  g.ForEachEdge([&](VertexId s, VertexId, Value) {
    if (s < n) ++out_degree[s];
    return true;
  });
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      if (out_degree[v] == 0) dangling += rank[v];
    }
    g.ForEachEdge([&](VertexId s, VertexId d, Value) {
      if (s < n && d < n && out_degree[s] > 0) {
        next[d] += rank[s] / out_degree[s];
      }
      return true;
    });
    for (VertexId v = 0; v < n; ++v) {
      rank[v] = (1.0 - damping) / n +
                damping * (next[v] + dangling / n);
    }
  }
  return rank;
}

std::vector<VertexId> ConnectedComponents(const GraphView& g,
                                          int max_rounds) {
  const VertexId n = g.NumVertices();
  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = v;
  for (int round = 0; round < max_rounds; ++round) {
    bool changed = false;
    g.ForEachEdge([&](VertexId s, VertexId d, Value) {
      if (s < n && d < n) {
        const VertexId m = std::min(label[s], label[d]);
        if (label[s] != m) {
          label[s] = m;
          changed = true;
        }
        if (label[d] != m) {
          label[d] = m;
          changed = true;
        }
      }
      return true;
    });
    if (!changed) break;
  }
  return label;
}

}  // namespace cpma
