// Graph analytics over the dynamic CRS graph. These are the "readers"
// of the paper's motivating workload: they run as ordinary scan clients
// of the underlying PMA, concurrently with edge updates.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/dynamic_graph.h"

namespace cpma {

constexpr uint32_t kUnreachable = UINT32_MAX;

/// Breadth-first search from `source`; returns hop distances per vertex
/// (kUnreachable for vertices not reached). Snapshot semantics are
/// relaxed under concurrent updates (as in the paper's analytics).
std::vector<uint32_t> Bfs(const DynamicGraph& g, VertexId source);

/// PageRank with uniform teleport (damping 0.85), `iterations` rounds.
std::vector<double> PageRank(const DynamicGraph& g, int iterations);

/// Connected components (on the undirected view) via label propagation;
/// returns the component label per vertex.
std::vector<VertexId> ConnectedComponents(const DynamicGraph& g,
                                          int max_rounds = 64);

}  // namespace cpma
