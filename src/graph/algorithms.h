// Graph analytics over the dynamic CRS graph. These are the "readers"
// of the paper's motivating workload: they run as ordinary scan clients
// of the underlying PMA, concurrently with edge updates.
//
// All algorithms take a GraphView (ISSUE 10): pass the DynamicGraph for
// live analytics (each scan individually consistent, relaxed snapshot
// semantics across scans — as in the paper) or a GraphSnapshot for
// frozen, exactly-reproducible analytics over one point-in-time cut.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/dynamic_graph.h"

namespace cpma {

constexpr uint32_t kUnreachable = UINT32_MAX;

/// Breadth-first search from `source`; returns hop distances per vertex
/// (kUnreachable for vertices not reached).
std::vector<uint32_t> Bfs(const GraphView& g, VertexId source);

/// PageRank with uniform teleport (damping 0.85), `iterations` rounds.
/// Out-degrees are computed in one edge pass up front (on a live view a
/// degree is therefore fixed at that pass's cut for all iterations).
std::vector<double> PageRank(const GraphView& g, int iterations);

/// Connected components (on the undirected view) via label propagation;
/// returns the component label per vertex.
std::vector<VertexId> ConnectedComponents(const GraphView& g,
                                          int max_rounds = 64);

}  // namespace cpma
