// Dynamic CRS graph on a concurrent PMA (paper §6).
//
// The classical read-only CRS layout stores all edges contiguously
// sorted by (source, destination). Replacing the dense edge array by a
// sparse array keeps the O(1)-style navigation — a vertex's adjacency
// list is one contiguous key range scan — while supporting concurrent
// updates through the PMA's gate/rebalancer machinery.
//
// Edges are keyed (src << 32 | dst); the edge weight is the value.
// Neighbour iteration is a PMA range scan over [src<<32, src<<32 | ~0],
// so analytics (BFS, PageRank, ...) run concurrently with edge updates,
// which is precisely the workload class the paper's introduction
// motivates (ride sharing, dashboards, network monitoring).
//
// Analytics consume the graph through GraphView (ISSUE 10), which has
// two implementations with different consistency contracts:
//  - DynamicGraph itself: live optimistic reads. Each neighbour scan is
//    individually consistent (seqlock-validated), but an algorithm's
//    successive scans may observe different cuts of a churning graph —
//    the paper's relaxed analytics semantics.
//  - GraphSnapshot: a frozen O(1) COW snapshot (ISSUE 9) of the edge
//    PMA. Every scan sees the same point-in-time cut with structurally
//    zero retries, so a whole BFS/PageRank is exactly reproducible
//    while writers keep storming the live graph.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "concurrent/concurrent_pma.h"
#include "concurrent/snapshot.h"

namespace cpma {

using VertexId = uint32_t;

/// Read interface the analytics run against: a vertex-count bound plus
/// ordered edge iteration. Implemented by the live DynamicGraph and by
/// the frozen GraphSnapshot.
class GraphView {
 public:
  virtual ~GraphView() = default;

  /// Upper bound on vertex ids (+1). Vertices without edges in the view
  /// are simply unreachable/dangling for the algorithms.
  virtual VertexId NumVertices() const = 0;

  /// Visit dst/weight of every outgoing edge of src, ascending by dst.
  /// Return false from the callback to stop early.
  virtual void ForEachNeighbor(
      VertexId src, const std::function<bool(VertexId, Value)>& cb) const = 0;

  /// Visit every edge (src, dst, weight) in CRS order.
  virtual void ForEachEdge(
      const std::function<bool(VertexId, VertexId, Value)>& cb) const = 0;
};

class GraphSnapshot;

class DynamicGraph : public GraphView {
 public:
  explicit DynamicGraph(const ConcurrentConfig& config = ConcurrentConfig());

  /// Insert (or re-weight) the directed edge src -> dst.
  void AddEdge(VertexId src, VertexId dst, Value weight = 1);

  /// Remove the directed edge if present.
  void RemoveEdge(VertexId src, VertexId dst);

  /// True and *weight set if src -> dst exists.
  bool HasEdge(VertexId src, VertexId dst, Value* weight = nullptr) const;

  void ForEachNeighbor(
      VertexId src,
      const std::function<bool(VertexId, Value)>& cb) const override;

  void ForEachEdge(const std::function<bool(VertexId, VertexId, Value)>& cb)
      const override;

  /// Out-degree of src (range-scan count).
  size_t OutDegree(VertexId src) const;

  size_t NumEdges() const { return edges_.Size(); }

  /// Upper bound on vertex ids seen so far (+1).
  VertexId NumVertices() const override {
    return max_vertex_.load(std::memory_order_relaxed) + 1;
  }

  /// Frozen point-in-time view of the edge set (O(1) COW capture, no
  /// stop-the-world; see concurrent/snapshot.h). Writers racing the
  /// capture linearize to one side of the cut. Async-queued edges not
  /// yet applied are not in the cut — Flush() first to pin them in.
  std::unique_ptr<GraphSnapshot> Snapshot() const;

  /// Wait for asynchronously queued edge updates to apply.
  void Flush() { edges_.Flush(); }

  const ConcurrentPMA& edges() const { return edges_; }

  static Key EdgeKey(VertexId src, VertexId dst) {
    return (static_cast<Key>(src) << 32) | dst;
  }

 private:
  void NoteVertex(VertexId v) {
    VertexId cur = max_vertex_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_vertex_.compare_exchange_weak(cur, v,
                                              std::memory_order_relaxed)) {
    }
  }

  ConcurrentPMA edges_;
  std::atomic<VertexId> max_vertex_{0};
};

/// Frozen graph view over a PMASnapshot of the edge PMA: same CRS
/// iteration as the live graph, but every scan observes one immutable
/// cut and never retries. The vertex-id bound is captured at snapshot
/// time (an upper bound: NoteVertex precedes the edge insert, so every
/// edge in the cut has both endpoints below it).
class GraphSnapshot : public GraphView {
 public:
  GraphSnapshot(std::unique_ptr<PMASnapshot> snap, VertexId num_vertices)
      : snap_(std::move(snap)), num_vertices_(num_vertices) {}

  VertexId NumVertices() const override { return num_vertices_; }

  void ForEachNeighbor(
      VertexId src,
      const std::function<bool(VertexId, Value)>& cb) const override;

  void ForEachEdge(const std::function<bool(VertexId, VertexId, Value)>& cb)
      const override;

  /// Edges in the frozen cut (counted).
  uint64_t NumEdges() const { return snap_->CountItems(); }

  /// The underlying frozen PMA view (stamp, scan_retries, ...).
  const PMASnapshot& snapshot() const { return *snap_; }

 private:
  std::unique_ptr<PMASnapshot> snap_;
  VertexId num_vertices_;
};

}  // namespace cpma
