// Dynamic CRS graph on a concurrent PMA (paper §6).
//
// The classical read-only CRS layout stores all edges contiguously
// sorted by (source, destination). Replacing the dense edge array by a
// sparse array keeps the O(1)-style navigation — a vertex's adjacency
// list is one contiguous key range scan — while supporting concurrent
// updates through the PMA's gate/rebalancer machinery.
//
// Edges are keyed (src << 32 | dst); the edge weight is the value.
// Neighbour iteration is a PMA range scan over [src<<32, src<<32 | ~0],
// so analytics (BFS, PageRank, ...) run concurrently with edge updates,
// which is precisely the workload class the paper's introduction
// motivates (ride sharing, dashboards, network monitoring).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "concurrent/concurrent_pma.h"

namespace cpma {

using VertexId = uint32_t;

class DynamicGraph {
 public:
  explicit DynamicGraph(const ConcurrentConfig& config = ConcurrentConfig());

  /// Insert (or re-weight) the directed edge src -> dst.
  void AddEdge(VertexId src, VertexId dst, Value weight = 1);

  /// Remove the directed edge if present.
  void RemoveEdge(VertexId src, VertexId dst);

  /// True and *weight set if src -> dst exists.
  bool HasEdge(VertexId src, VertexId dst, Value* weight = nullptr) const;

  /// Visit dst/weight of every outgoing edge of src, ascending by dst.
  /// Return false from the callback to stop early.
  void ForEachNeighbor(
      VertexId src,
      const std::function<bool(VertexId, Value)>& cb) const;

  /// Visit every edge (src, dst, weight) in CRS order.
  void ForEachEdge(const std::function<bool(VertexId, VertexId, Value)>& cb)
      const;

  /// Out-degree of src (range-scan count).
  size_t OutDegree(VertexId src) const;

  size_t NumEdges() const { return edges_.Size(); }

  /// Upper bound on vertex ids seen so far (+1).
  VertexId NumVertices() const {
    return max_vertex_.load(std::memory_order_relaxed) + 1;
  }

  /// Wait for asynchronously queued edge updates to apply.
  void Flush() { edges_.Flush(); }

  const ConcurrentPMA& edges() const { return edges_; }

  static Key EdgeKey(VertexId src, VertexId dst) {
    return (static_cast<Key>(src) << 32) | dst;
  }

 private:
  void NoteVertex(VertexId v) {
    VertexId cur = max_vertex_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_vertex_.compare_exchange_weak(cur, v,
                                              std::memory_order_relaxed)) {
    }
  }

  ConcurrentPMA edges_;
  std::atomic<VertexId> max_vertex_{0};
};

}  // namespace cpma
