#include "graph/dynamic_graph.h"

namespace cpma {

DynamicGraph::DynamicGraph(const ConcurrentConfig& config) : edges_(config) {}

void DynamicGraph::AddEdge(VertexId src, VertexId dst, Value weight) {
  NoteVertex(src);
  NoteVertex(dst);
  edges_.Insert(EdgeKey(src, dst), weight);
}

void DynamicGraph::RemoveEdge(VertexId src, VertexId dst) {
  edges_.Remove(EdgeKey(src, dst));
}

bool DynamicGraph::HasEdge(VertexId src, VertexId dst, Value* weight) const {
  return edges_.Find(EdgeKey(src, dst), weight);
}

void DynamicGraph::ForEachNeighbor(
    VertexId src, const std::function<bool(VertexId, Value)>& cb) const {
  const Key lo = EdgeKey(src, 0);
  const Key hi = EdgeKey(src, UINT32_MAX);
  edges_.Scan(lo, hi, [&](Key k, Value v) {
    return cb(static_cast<VertexId>(k & 0xFFFFFFFFu), v);
  });
}

void DynamicGraph::ForEachEdge(
    const std::function<bool(VertexId, VertexId, Value)>& cb) const {
  edges_.Scan(0, kKeyMax, [&](Key k, Value v) {
    return cb(static_cast<VertexId>(k >> 32),
              static_cast<VertexId>(k & 0xFFFFFFFFu), v);
  });
}

size_t DynamicGraph::OutDegree(VertexId src) const {
  size_t n = 0;
  ForEachNeighbor(src, [&](VertexId, Value) {
    ++n;
    return true;
  });
  return n;
}

}  // namespace cpma
