#include "graph/dynamic_graph.h"

namespace cpma {

DynamicGraph::DynamicGraph(const ConcurrentConfig& config) : edges_(config) {}

void DynamicGraph::AddEdge(VertexId src, VertexId dst, Value weight) {
  NoteVertex(src);
  NoteVertex(dst);
  edges_.Insert(EdgeKey(src, dst), weight);
}

void DynamicGraph::RemoveEdge(VertexId src, VertexId dst) {
  edges_.Remove(EdgeKey(src, dst));
}

bool DynamicGraph::HasEdge(VertexId src, VertexId dst, Value* weight) const {
  return edges_.Find(EdgeKey(src, dst), weight);
}

void DynamicGraph::ForEachNeighbor(
    VertexId src, const std::function<bool(VertexId, Value)>& cb) const {
  const Key lo = EdgeKey(src, 0);
  const Key hi = EdgeKey(src, UINT32_MAX);
  edges_.Scan(lo, hi, [&](Key k, Value v) {
    return cb(static_cast<VertexId>(k & 0xFFFFFFFFu), v);
  });
}

void DynamicGraph::ForEachEdge(
    const std::function<bool(VertexId, VertexId, Value)>& cb) const {
  edges_.Scan(0, kKeyMax, [&](Key k, Value v) {
    return cb(static_cast<VertexId>(k >> 32),
              static_cast<VertexId>(k & 0xFFFFFFFFu), v);
  });
}

size_t DynamicGraph::OutDegree(VertexId src) const {
  size_t n = 0;
  ForEachNeighbor(src, [&](VertexId, Value) {
    ++n;
    return true;
  });
  return n;
}

std::unique_ptr<GraphSnapshot> DynamicGraph::Snapshot() const {
  // Capture the cut first, then read the vertex bound: NoteVertex
  // precedes the edge insert, so any edge that made the cut had both
  // endpoints noted before it — a bound read after the capture covers
  // every edge in the cut. It may over-cover with ids whose edges
  // missed the cut; those are just isolated vertices to the analytics.
  auto snap = edges_.Snapshot();
  return std::make_unique<GraphSnapshot>(std::move(snap), NumVertices());
}

void GraphSnapshot::ForEachNeighbor(
    VertexId src, const std::function<bool(VertexId, Value)>& cb) const {
  const Key lo = DynamicGraph::EdgeKey(src, 0);
  const Key hi = DynamicGraph::EdgeKey(src, UINT32_MAX);
  snap_->Scan(lo, hi, [&](Key k, Value v) {
    return cb(static_cast<VertexId>(k & 0xFFFFFFFFu), v);
  });
}

void GraphSnapshot::ForEachEdge(
    const std::function<bool(VertexId, VertexId, Value)>& cb) const {
  snap_->Scan(0, kKeyMax, [&](Key k, Value v) {
    return cb(static_cast<VertexId>(k >> 32),
              static_cast<VertexId>(k & 0xFFFFFFFFu), v);
  });
}

}  // namespace cpma
