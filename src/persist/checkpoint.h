// Crash-consistent checkpoint/restore of PMA snapshots (ISSUE 9).
//
// A checkpoint serializes a frozen snapshot (PMASnapshot or
// ShardedSnapshot) into its own directory under a checkpoint root:
//
//   <root>/
//     CURRENT              "ckpt-<seq>\n" — the loadable checkpoint
//     ckpt-<seq>/
//       shard-<i>.dat      item records, one file per shard
//       MANIFEST           text manifest, self-checksummed
//
// Chunk file format: 8-byte magic "CPMACKPT", u32 format version,
// u32 shard index, then records of [u32 payload_len][u32 crc32c(payload)]
// [payload = packed Items] until EOF. CRC32C is the runtime-dispatched
// SSE4.2/scalar kernel in common/hotpath/crc32c.h.
//
// MANIFEST lines: "cpma-checkpoint <version>", "seq <n>",
// "app_stamp <n>", "shards <n>", "items <n>", one
// "chunk <file> <bytes> <whole-file-crc-hex>" per chunk, and a final
// "crc <hex>" over every preceding manifest byte.
//
// Write protocol (all I/O through the EINTR-safe helpers in
// common/status.h): chunks and MANIFEST are written into a temp
// directory and fsynced; the temp directory is renamed to ckpt-<seq>;
// the root is fsynced; CURRENT is published via write-temp -> fsync ->
// atomic rename -> dir fsync. A crash at ANY point (the persist.*
// failpoints inject one at each step) leaves either the previous
// CURRENT checkpoint fully loadable or no checkpoint at all — a torn
// checkpoint is never reachable from CURRENT, and Restore() verifies
// every manifest and chunk checksum before touching the target, so a
// tampered or truncated checkpoint is always detected and refused.
//
// app_stamp is an application progress marker stored verbatim (the
// crash harness uses it as its replay oracle: "ops [0, app_stamp) are
// in this checkpoint").

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "pma/item.h"

namespace cpma {

class ConcurrentPMA;
class PMASnapshot;
class ShardedPMA;
class ShardedSnapshot;

namespace persist {

inline constexpr uint32_t kFormatVersion = 1;

struct CheckpointOptions {
  /// Checkpoint root. Empty = $CPMA_CHECKPOINT_DIR (an empty/unset env
  /// is an InvalidArgument error — checkpoints never guess a location).
  std::string dir;
  /// Application progress marker stored in the manifest.
  uint64_t app_stamp = 0;
  /// Completed checkpoints retained after a successful publish (the
  /// new one included). Older ckpt-* directories are garbage-collected
  /// best-effort; GC failures never fail the checkpoint.
  size_t keep = 2;
};

struct CheckpointInfo {
  uint64_t seq = 0;
  uint64_t app_stamp = 0;
  uint64_t items = 0;
  size_t shards = 0;
  std::string path;  // <root>/ckpt-<seq>
};

/// Serialize a frozen snapshot. On success `info` (when non-null)
/// describes the published checkpoint.
Status WriteCheckpoint(const PMASnapshot& snap, const CheckpointOptions& opts,
                       CheckpointInfo* info = nullptr);
Status WriteCheckpoint(const ShardedSnapshot& snap,
                       const CheckpointOptions& opts,
                       CheckpointInfo* info = nullptr);

/// Convenience: capture a snapshot and serialize it in one call.
Status Checkpoint(const ConcurrentPMA& pma, const CheckpointOptions& opts,
                  CheckpointInfo* info = nullptr);
Status Checkpoint(ShardedPMA& pma, const CheckpointOptions& opts,
                  CheckpointInfo* info = nullptr);

/// Identify the checkpoint CURRENT points at, fully verifying its
/// manifest checksum. KeyNotFound when the root holds no checkpoint.
Status LatestCheckpoint(const std::string& dir, CheckpointInfo* info);

/// Read and checksum-verify every item of the CURRENT checkpoint.
/// Items arrive in chunk order (globally sorted for single-PMA and
/// range-sharded checkpoints). Any mismatch — manifest CRC, chunk size,
/// whole-file CRC, record CRC, truncation — refuses the checkpoint with
/// Internal (naming the failing artifact) and bumps
/// restore_verify_failures.
Status ReadCheckpointItems(const std::string& dir, std::vector<Item>* items,
                           CheckpointInfo* info = nullptr);

/// Rebuild `pma` (must be empty) from the CURRENT checkpoint: verified
/// read, batched re-insertion, Flush. The sharded variant re-routes
/// through the live router, so the restored fleet may have a different
/// shard count than the writer's.
Status Restore(const std::string& dir, ConcurrentPMA* pma,
               CheckpointInfo* info = nullptr);
Status Restore(const std::string& dir, ShardedPMA* pma,
               CheckpointInfo* info = nullptr);

/// Process-global durability counters (bench JSON; monotone).
struct PersistCounters {
  std::atomic<uint64_t> checkpoints_written{0};
  std::atomic<uint64_t> checkpoint_bytes{0};  // chunk+manifest bytes, cumulative
  std::atomic<uint64_t> restores{0};
  std::atomic<uint64_t> restore_verify_failures{0};
};
PersistCounters& Counters();

}  // namespace persist
}  // namespace cpma
