#include "persist/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/failpoint.h"
#include "common/hotpath/crc32c.h"
#include "concurrent/concurrent_pma.h"
#include "concurrent/snapshot.h"
#include "sharded/sharded_pma.h"

namespace cpma {
namespace persist {

namespace {

constexpr char kMagic[8] = {'C', 'P', 'M', 'A', 'C', 'K', 'P', 'T'};
constexpr size_t kRecordItems = 4096;  // 64 KiB payloads

Status ErrnoStatus(const char* what, const std::string& path) {
  return Status::Internal(std::string(what) + " " + path + ": " +
                          std::strerror(errno));
}

Status Failpoint(const char* site) {
  return Status::Internal(std::string("failpoint: ") + site);
}

/// Any verification mismatch funnels through here so
/// restore_verify_failures counts every refused checkpoint artifact.
Status VerifyFail(std::string msg) {
  Counters().restore_verify_failures.fetch_add(1, std::memory_order_relaxed);
  return Status::Internal(std::move(msg));
}

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);  // little-endian on every supported target
  out->append(b, 4);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

/// Streams one chunk file: header + CRC-framed item records, keeping a
/// running whole-file CRC for the manifest. All writes go through the
/// EINTR-safe WriteFully and are fronted by the persist.chunk_write /
/// persist.chunk_fsync failpoints (each a `!crash` site for the
/// crash-recovery harness).
class ChunkWriter {
 public:
  Status Open(const std::string& path, uint32_t shard_index) {
    path_ = path;
    fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
    if (fd_ < 0) return ErrnoStatus("open", path);
    std::string header(kMagic, sizeof(kMagic));
    PutU32(&header, kFormatVersion);
    PutU32(&header, shard_index);
    return WriteRaw(header);
  }

  Status Add(const Item& it) {
    buf_.push_back(it);
    if (buf_.size() >= kRecordItems) return FlushRecord();
    return Status::OK();
  }

  /// Flush the tail record, fsync and close. Returns bytes/CRC for the
  /// manifest line.
  Status Finish(uint64_t* bytes, uint32_t* crc) {
    Status st = FlushRecord();
    if (!st.ok()) return st;
    if (CPMA_FAILPOINT("persist.chunk_fsync")) {
      return Failpoint("persist.chunk_fsync");
    }
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
    if (::close(fd_) != 0) {
      fd_ = -1;
      return ErrnoStatus("close", path_);
    }
    fd_ = -1;
    *bytes = bytes_;
    *crc = crc_;
    return Status::OK();
  }

  ~ChunkWriter() {
    if (fd_ >= 0) ::close(fd_);
  }

 private:
  Status FlushRecord() {
    if (buf_.empty()) return Status::OK();
    const size_t len = buf_.size() * sizeof(Item);
    std::string rec;
    rec.reserve(8 + len);
    PutU32(&rec, static_cast<uint32_t>(len));
    PutU32(&rec, hotpath::Crc32c(buf_.data(), len));
    rec.append(reinterpret_cast<const char*>(buf_.data()), len);
    buf_.clear();
    return WriteRaw(rec);
  }

  Status WriteRaw(const std::string& bytes) {
    if (CPMA_FAILPOINT("persist.chunk_write")) {
      return Failpoint("persist.chunk_write");
    }
    Status st = WriteFully(fd_, bytes.data(), bytes.size());
    if (!st.ok()) return st;
    crc_ = hotpath::Crc32cExtend(crc_, bytes.data(), bytes.size());
    bytes_ += bytes.size();
    return Status::OK();
  }

  std::string path_;
  int fd_ = -1;
  std::vector<Item> buf_;
  uint64_t bytes_ = 0;
  uint32_t crc_ = 0;
};

/// write-temp -> fsync -> atomic-rename publication of a small file
/// (MANIFEST inside the staging dir, CURRENT at the root).
Status PublishFile(const std::string& dir, const std::string& name,
                   const std::string& contents, const char* write_site,
                   const char* rename_site) {
  const std::string tmp = dir + "/" + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  if (CPMA_FAILPOINT(write_site)) return Failpoint(write_site);
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);
  Status st = WriteFully(fd, contents.data(), contents.size());
  if (st.ok() && ::fsync(fd) != 0) st = ErrnoStatus("fsync", tmp);
  if (::close(fd) != 0 && st.ok()) st = ErrnoStatus("close", tmp);
  if (!st.ok()) return st;
  if (CPMA_FAILPOINT(rename_site)) return Failpoint(rename_site);
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return ErrnoStatus("rename", final_path);
  }
  return Status::OK();
}

Status ResolveDir(const CheckpointOptions& opts, std::string* dir) {
  *dir = opts.dir;
  if (dir->empty()) {
    const char* env = std::getenv("CPMA_CHECKPOINT_DIR");
    if (env != nullptr) *dir = env;
  }
  if (dir->empty()) {
    return Status::InvalidArgument(
        "checkpoint dir not set (CheckpointOptions::dir or "
        "CPMA_CHECKPOINT_DIR)");
  }
  return Status::OK();
}

bool ParseSeq(const char* name, uint64_t* seq) {
  // Accepts exactly "ckpt-<decimal>".
  if (std::strncmp(name, "ckpt-", 5) != 0) return false;
  const char* p = name + 5;
  if (*p == '\0') return false;
  uint64_t v = 0;
  for (; *p; ++p) {
    if (*p < '0' || *p > '9') return false;
    v = v * 10 + static_cast<uint64_t>(*p - '0');
  }
  *seq = v;
  return true;
}

/// Best-effort recursive removal of one checkpoint/staging directory
/// (flat layout: files only).
void RemoveDirTree(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (struct dirent* e = ::readdir(d)) {
      if (std::strcmp(e->d_name, ".") == 0 || std::strcmp(e->d_name, "..") == 0)
        continue;
      ::unlink((dir + "/" + e->d_name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

/// Drop completed checkpoints beyond the newest `keep` plus any stale
/// staging directories. Best effort by design: a GC failure must never
/// fail (or crash after) an already-published checkpoint, except via the
/// explicit persist.gc_unlink crash site.
void GarbageCollect(const std::string& root, uint64_t current_seq,
                    size_t keep) {
  std::vector<uint64_t> seqs;
  std::vector<std::string> stale_tmp;
  DIR* d = ::opendir(root.c_str());
  if (d == nullptr) return;
  while (struct dirent* e = ::readdir(d)) {
    uint64_t seq = 0;
    if (ParseSeq(e->d_name, &seq)) {
      if (seq != current_seq) seqs.push_back(seq);
    } else if (std::strncmp(e->d_name, "ckpt-", 5) == 0 &&
               std::strstr(e->d_name, ".tmp") != nullptr) {
      stale_tmp.push_back(root + "/" + e->d_name);
    }
  }
  ::closedir(d);
  std::sort(seqs.begin(), seqs.end());
  // current_seq occupies one keep slot; older ones fill the rest.
  const size_t keep_old = keep > 0 ? keep - 1 : 0;
  const size_t drop = seqs.size() > keep_old ? seqs.size() - keep_old : 0;
  for (size_t i = 0; i < drop; ++i) {
    if (CPMA_FAILPOINT("persist.gc_unlink")) return;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "ckpt-%" PRIu64, seqs[i]);
    RemoveDirTree(root + "/" + buf);
  }
  for (const std::string& tmp : stale_tmp) {
    if (CPMA_FAILPOINT("persist.gc_unlink")) return;
    RemoveDirTree(tmp);
  }
}

uint64_t NextSeq(const std::string& root) {
  uint64_t max_seq = 0;
  DIR* d = ::opendir(root.c_str());
  if (d != nullptr) {
    while (struct dirent* e = ::readdir(d)) {
      uint64_t seq = 0;
      // Staging dirs ("ckpt-<n>.tmp") fail ParseSeq, so a crashed
      // writer's leftovers never advance the sequence.
      if (ParseSeq(e->d_name, &seq)) max_seq = std::max(max_seq, seq);
    }
    ::closedir(d);
  }
  return max_seq + 1;
}

struct ChunkMeta {
  std::string file;
  uint64_t bytes = 0;
  uint32_t crc = 0;
};

/// The shared writer core: `shards` item streams -> one published
/// checkpoint. Each stream is a callable invoking its callback per item
/// in the order the chunk should store them.
using ItemStream = std::function<void(const std::function<void(const Item&)>&)>;

Status WriteCheckpointImpl(const std::vector<ItemStream>& streams,
                           const CheckpointOptions& opts,
                           CheckpointInfo* info) {
  std::string root;
  Status st = ResolveDir(opts, &root);
  if (!st.ok()) return st;
  if (::mkdir(root.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir", root);
  }

  const uint64_t seq = NextSeq(root);
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%" PRIu64, seq);
  const std::string final_dir = root + "/" + name;
  const std::string tmp_dir = final_dir + ".tmp";
  RemoveDirTree(tmp_dir);  // stale staging from a crashed writer
  if (::mkdir(tmp_dir.c_str(), 0755) != 0) return ErrnoStatus("mkdir", tmp_dir);

  // 1. Chunk files, one per stream, inside the staging dir.
  uint64_t total_items = 0;
  uint64_t total_bytes = 0;
  std::vector<ChunkMeta> chunks;
  for (size_t s = 0; s < streams.size(); ++s) {
    char file[32];
    std::snprintf(file, sizeof(file), "shard-%zu.dat", s);
    ChunkWriter w;
    st = w.Open(tmp_dir + "/" + file, static_cast<uint32_t>(s));
    if (!st.ok()) return st;
    Status add_st;
    streams[s]([&](const Item& it) {
      ++total_items;
      if (add_st.ok()) add_st = w.Add(it);
    });
    if (!add_st.ok()) return add_st;
    ChunkMeta meta;
    meta.file = file;
    st = w.Finish(&meta.bytes, &meta.crc);
    if (!st.ok()) return st;
    total_bytes += meta.bytes;
    chunks.push_back(std::move(meta));
  }

  // 2. Self-checksummed MANIFEST, published atomically inside staging.
  std::string manifest;
  char line[128];
  std::snprintf(line, sizeof(line), "cpma-checkpoint %u\n", kFormatVersion);
  manifest += line;
  std::snprintf(line, sizeof(line), "seq %" PRIu64 "\n", seq);
  manifest += line;
  std::snprintf(line, sizeof(line), "app_stamp %" PRIu64 "\n", opts.app_stamp);
  manifest += line;
  std::snprintf(line, sizeof(line), "shards %zu\n", streams.size());
  manifest += line;
  std::snprintf(line, sizeof(line), "items %" PRIu64 "\n", total_items);
  manifest += line;
  for (const ChunkMeta& c : chunks) {
    std::snprintf(line, sizeof(line), "chunk %s %" PRIu64 " %08x\n",
                  c.file.c_str(), c.bytes, c.crc);
    manifest += line;
  }
  std::snprintf(line, sizeof(line), "crc %08x\n",
                hotpath::Crc32c(manifest.data(), manifest.size()));
  manifest += line;
  st = PublishFile(tmp_dir, "MANIFEST", manifest, "persist.manifest_write",
                   "persist.manifest_rename");
  if (!st.ok()) return st;
  st = FsyncDir(tmp_dir);
  if (!st.ok()) return st;

  // 3. Make the checkpoint directory appear, durably.
  if (CPMA_FAILPOINT("persist.manifest_rename")) {
    return Failpoint("persist.manifest_rename");
  }
  if (::rename(tmp_dir.c_str(), final_dir.c_str()) != 0) {
    return ErrnoStatus("rename", final_dir);
  }
  if (CPMA_FAILPOINT("persist.dir_fsync")) return Failpoint("persist.dir_fsync");
  st = FsyncDir(root);
  if (!st.ok()) return st;

  // 4. Flip CURRENT. Until this rename lands, CURRENT still names the
  // previous checkpoint, so a crash anywhere above loses nothing.
  st = PublishFile(root, "CURRENT", std::string(name) + "\n",
                   "persist.current_write", "persist.current_rename");
  if (!st.ok()) return st;
  st = FsyncDir(root);
  if (!st.ok()) return st;

  Counters().checkpoints_written.fetch_add(1, std::memory_order_relaxed);
  Counters().checkpoint_bytes.fetch_add(total_bytes + manifest.size(),
                                        std::memory_order_relaxed);
  GarbageCollect(root, seq, opts.keep);

  if (info != nullptr) {
    info->seq = seq;
    info->app_stamp = opts.app_stamp;
    info->items = total_items;
    info->shards = streams.size();
    info->path = final_dir;
  }
  return Status::OK();
}

struct Manifest {
  CheckpointInfo info;
  std::vector<ChunkMeta> chunks;
};

Status ReadWholeFile(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", path);
  struct stat sb;
  if (::fstat(fd, &sb) != 0) {
    Status st = ErrnoStatus("fstat", path);
    ::close(fd);
    return st;
  }
  out->resize(static_cast<size_t>(sb.st_size));
  Status st = sb.st_size > 0 ? ReadFully(fd, &(*out)[0], out->size())
                             : Status::OK();
  ::close(fd);
  return st;
}

/// Resolve CURRENT and fully verify the manifest it names. Everything
/// that can be wrong with the pointer chain — unreadable files, bad
/// magic, CRC mismatch, malformed or inconsistent fields — refuses the
/// checkpoint through VerifyFail.
Status LoadManifest(const std::string& root, Manifest* m) {
  std::string current;
  {
    int fd = ::open((root + "/CURRENT").c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) {
        return Status::KeyNotFound("no checkpoint under " + root);
      }
      return ErrnoStatus("open", root + "/CURRENT");
    }
    ::close(fd);
  }
  Status st = ReadWholeFile(root + "/CURRENT", &current);
  if (!st.ok()) return st;
  while (!current.empty() && (current.back() == '\n' || current.back() == '\r'))
    current.pop_back();
  uint64_t seq = 0;
  if (!ParseSeq(current.c_str(), &seq)) {
    return VerifyFail("CURRENT is garbage: \"" + current + "\"");
  }
  const std::string dir = root + "/" + current;

  std::string text;
  st = ReadWholeFile(dir + "/MANIFEST", &text);
  if (!st.ok()) {
    Counters().restore_verify_failures.fetch_add(1, std::memory_order_relaxed);
    return st;
  }

  // The last line must be "crc <hex>" over every byte before it.
  size_t crc_line = text.rfind("crc ");
  if (crc_line == std::string::npos ||
      (crc_line != 0 && text[crc_line - 1] != '\n') ||
      text.find('\n', crc_line) != text.size() - 1) {
    return VerifyFail("MANIFEST missing trailing crc line: " + dir);
  }
  uint32_t stored = 0;
  if (std::sscanf(text.c_str() + crc_line, "crc %x", &stored) != 1) {
    return VerifyFail("MANIFEST crc line malformed: " + dir);
  }
  const uint32_t actual = hotpath::Crc32c(text.data(), crc_line);
  if (actual != stored) {
    return VerifyFail("MANIFEST checksum mismatch: " + dir);
  }

  m->info = CheckpointInfo();
  m->info.path = dir;
  m->chunks.clear();
  uint64_t version = 0, shards = 0;
  bool saw_magic = false;
  size_t pos = 0;
  while (pos < crc_line) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos || eol > crc_line) eol = crc_line;
    const std::string l = text.substr(pos, eol - pos);
    pos = eol + 1;
    char fname[64];
    uint64_t v = 0;
    uint32_t crc = 0;
    if (std::sscanf(l.c_str(), "cpma-checkpoint %" SCNu64, &version) == 1) {
      saw_magic = true;
    } else if (std::sscanf(l.c_str(), "seq %" SCNu64, &v) == 1) {
      m->info.seq = v;
    } else if (std::sscanf(l.c_str(), "app_stamp %" SCNu64, &v) == 1) {
      m->info.app_stamp = v;
    } else if (std::sscanf(l.c_str(), "shards %" SCNu64, &shards) == 1) {
      m->info.shards = static_cast<size_t>(shards);
    } else if (std::sscanf(l.c_str(), "items %" SCNu64, &v) == 1) {
      m->info.items = v;
    } else if (std::sscanf(l.c_str(), "chunk %63s %" SCNu64 " %x", fname, &v,
                           &crc) == 3) {
      ChunkMeta c;
      c.file = fname;
      c.bytes = v;
      c.crc = crc;
      m->chunks.push_back(std::move(c));
    } else {
      return VerifyFail("MANIFEST unknown line \"" + l + "\": " + dir);
    }
  }
  if (!saw_magic || version != kFormatVersion) {
    return VerifyFail("MANIFEST bad format version: " + dir);
  }
  if (m->info.seq != seq || m->chunks.size() != m->info.shards) {
    return VerifyFail("MANIFEST inconsistent with CURRENT: " + dir);
  }
  return Status::OK();
}

Status ReadChunk(const std::string& dir, const ChunkMeta& meta, size_t index,
                 std::vector<Item>* items) {
  const std::string path = dir + "/" + meta.file;
  std::string data;
  Status st = ReadWholeFile(path, &data);
  if (!st.ok()) {
    Counters().restore_verify_failures.fetch_add(1, std::memory_order_relaxed);
    return st;
  }
  if (data.size() != meta.bytes) {
    return VerifyFail("chunk size mismatch (torn write?): " + path);
  }
  if (hotpath::Crc32c(data.data(), data.size()) != meta.crc) {
    return VerifyFail("chunk checksum mismatch: " + path);
  }
  const size_t header = sizeof(kMagic) + 8;
  if (data.size() < header || std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return VerifyFail("chunk bad magic: " + path);
  }
  if (GetU32(data.data() + sizeof(kMagic)) != kFormatVersion) {
    return VerifyFail("chunk bad format version: " + path);
  }
  if (GetU32(data.data() + sizeof(kMagic) + 4) != index) {
    return VerifyFail("chunk shard index mismatch: " + path);
  }
  size_t pos = header;
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      return VerifyFail("chunk truncated record header: " + path);
    }
    const uint32_t len = GetU32(data.data() + pos);
    const uint32_t crc = GetU32(data.data() + pos + 4);
    pos += 8;
    if (len == 0 || len % sizeof(Item) != 0 || data.size() - pos < len) {
      return VerifyFail("chunk bad record length: " + path);
    }
    if (hotpath::Crc32c(data.data() + pos, len) != crc) {
      return VerifyFail("chunk record checksum mismatch: " + path);
    }
    const size_t n = len / sizeof(Item);
    const size_t base = items->size();
    items->resize(base + n);
    std::memcpy(items->data() + base, data.data() + pos, len);
    pos += len;
  }
  return Status::OK();
}

}  // namespace

PersistCounters& Counters() {
  static PersistCounters counters;
  return counters;
}

Status WriteCheckpoint(const PMASnapshot& snap, const CheckpointOptions& opts,
                       CheckpointInfo* info) {
  std::vector<ItemStream> streams;
  streams.push_back([&snap](const std::function<void(const Item&)>& emit) {
    snap.Scan(kKeyMin, kKeyMax, [&emit](Key k, Value v) {
      emit(Item{k, v});
      return true;
    });
  });
  return WriteCheckpointImpl(streams, opts, info);
}

Status WriteCheckpoint(const ShardedSnapshot& snap,
                       const CheckpointOptions& opts, CheckpointInfo* info) {
  std::vector<ItemStream> streams;
  for (size_t s = 0; s < snap.num_shards(); ++s) {
    const PMASnapshot& shard = snap.shard_snapshot(s);
    streams.push_back([&shard](const std::function<void(const Item&)>& emit) {
      shard.Scan(kKeyMin, kKeyMax, [&emit](Key k, Value v) {
        emit(Item{k, v});
        return true;
      });
    });
  }
  return WriteCheckpointImpl(streams, opts, info);
}

Status Checkpoint(const ConcurrentPMA& pma, const CheckpointOptions& opts,
                  CheckpointInfo* info) {
  std::unique_ptr<PMASnapshot> snap = pma.Snapshot();
  return WriteCheckpoint(*snap, opts, info);
}

Status Checkpoint(ShardedPMA& pma, const CheckpointOptions& opts,
                  CheckpointInfo* info) {
  std::unique_ptr<ShardedSnapshot> snap = pma.Snapshot();
  return WriteCheckpoint(*snap, opts, info);
}

Status LatestCheckpoint(const std::string& dir, CheckpointInfo* info) {
  std::string root = dir;
  if (root.empty()) {
    CheckpointOptions opts;
    Status st = ResolveDir(opts, &root);
    if (!st.ok()) return st;
  }
  Manifest m;
  Status st = LoadManifest(root, &m);
  if (!st.ok()) return st;
  if (info != nullptr) *info = m.info;
  return Status::OK();
}

Status ReadCheckpointItems(const std::string& dir, std::vector<Item>* items,
                           CheckpointInfo* info) {
  std::string root = dir;
  if (root.empty()) {
    CheckpointOptions opts;
    Status st = ResolveDir(opts, &root);
    if (!st.ok()) return st;
  }
  Manifest m;
  Status st = LoadManifest(root, &m);
  if (!st.ok()) return st;
  items->clear();
  items->reserve(m.info.items);
  for (size_t c = 0; c < m.chunks.size(); ++c) {
    st = ReadChunk(m.info.path, m.chunks[c], c, items);
    if (!st.ok()) return st;
  }
  if (items->size() != m.info.items) {
    return VerifyFail("item count mismatch vs manifest: " + m.info.path);
  }
  if (info != nullptr) *info = m.info;
  return Status::OK();
}

Status Restore(const std::string& dir, ConcurrentPMA* pma,
               CheckpointInfo* info) {
  if (pma->Size() != 0) {
    return Status::InvalidArgument("Restore target must be empty");
  }
  std::vector<Item> items;
  CheckpointInfo local;
  Status st = ReadCheckpointItems(dir, &items, &local);
  if (!st.ok()) return st;
  // Batched re-insertion: one enqueue-stamp reservation per block.
  constexpr size_t kBlock = 8192;
  std::vector<GateOp> ops;
  for (size_t base = 0; base < items.size(); base += kBlock) {
    const size_t n = std::min(kBlock, items.size() - base);
    ops.clear();
    ops.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      GateOp op;
      op.type = GateOp::Type::kInsert;
      op.key = items[base + i].key;
      op.value = items[base + i].value;
      ops.push_back(op);
    }
    pma->UpdateBatch(ops.data(), ops.size());
  }
  pma->Flush();
  Counters().restores.fetch_add(1, std::memory_order_relaxed);
  if (info != nullptr) *info = local;
  return Status::OK();
}

Status Restore(const std::string& dir, ShardedPMA* pma, CheckpointInfo* info) {
  if (pma->Size() != 0) {
    return Status::InvalidArgument("Restore target must be empty");
  }
  std::vector<Item> items;
  CheckpointInfo local;
  Status st = ReadCheckpointItems(dir, &items, &local);
  if (!st.ok()) return st;
  // Inserts re-route through the live router (and its coalescing front
  // door), so the restored fleet's shard count/partitioning may differ
  // from the writer's.
  for (const Item& it : items) pma->Insert(it.key, it.value);
  pma->Flush();
  Counters().restores.fetch_add(1, std::memory_order_relaxed);
  if (info != nullptr) *info = local;
  return Status::OK();
}

}  // namespace persist
}  // namespace cpma
