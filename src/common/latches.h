// Latch primitives used across the library.
//
// - SpinLock: tiny test-and-test-and-set lock for very short critical
//   sections (baseline internals, free lists).
// - SeqVersion: sequence-lock version word for the gates' optimistic
//   read path (§3.1 extension, ISSUE 4). Unlike OptimisticLock below it
//   carries no lock/obsolete bits — the gate's mutex-based state machine
//   stays the writer-side arbiter; the version word only *publishes*
//   whether a mutator holds the chunk.
// - OptimisticLock: version-based latch for Optimistic Lock Coupling
//   (Leis et al., DaMoN'16); used by the ART and Masstree baselines.
//   Readers snapshot a version, do their work, then validate; writers
//   bump the version. The low bit encodes "locked", the second bit
//   "obsolete" (node logically deleted).

#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace cpma {

class SpinLock {
 public:
  void lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

 private:
  std::atomic<bool> flag_{false};
};

/// Sequence-lock version word (ISSUE 4): even = no mutator, odd = a
/// mutator (gate writer or rebalancer master) owns the protected data.
/// Optimistic readers snapshot an even version, read the data with
/// tagged accesses (common/tagged.h), then validate that the version is
/// unchanged; mutators wrap their critical section in BeginMutate /
/// EndMutate.
///
/// Memory-ordering argument (the classic seqlock recipe, Boehm MSPC'12):
///
///  - BeginMutate is a fetch_add(1, acq_rel). Its acquire half forbids
///    the mutator's subsequent data stores from being reordered before
///    the word turns odd, so no reader can observe new data under an old
///    even version.
///  - EndMutate is a fetch_add(1, release): all data stores are visible
///    before the word turns even again.
///  - ReadBegin is an acquire load: the reader's data loads cannot float
///    above it. If it returns the value EndMutate published, it
///    synchronizes-with that release, so the mutator's stores are
///    visible.
///  - Validate issues an acquire fence *before* re-loading the word:
///    the fence orders every data load before the re-load (LoadLoad |
///    LoadStore), so a data load cannot be satisfied after a mutation
///    that the equality check then misses. Equality of the exact value
///    (not just parity) rejects any intervening mutation.
class SeqVersion {
 public:
  /// Snapshot for an optimistic read; check Stable() before using data.
  uint64_t ReadBegin() const {
    return v_.load(std::memory_order_acquire);
  }

  static bool Stable(uint64_t v) { return (v & 1) == 0; }

  /// True iff no mutation started or completed since `expected` was
  /// returned by ReadBegin (callers pass a Stable value).
  bool Validate(uint64_t expected) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return v_.load(std::memory_order_relaxed) == expected;
  }

  /// Mutator protocol: the caller must already hold exclusive ownership
  /// of the data (gate state machine); these only publish that fact.
  void BeginMutate() { v_.fetch_add(1, std::memory_order_acq_rel); }
  void EndMutate() { v_.fetch_add(1, std::memory_order_release); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Writer-preferring shared/exclusive spin latch.
///
/// glibc's std::shared_mutex is reader-preferring: under a continuous
/// stream of scanners a hot node's writer can starve indefinitely (we
/// measured a 1000x collapse in the skewed benchmarks). This latch
/// blocks *new* readers as soon as a writer announces itself.
/// Interface-compatible with std::shared_mutex.
class FairSharedMutex {
 public:
  void lock() {
    // Announce; only one announcer proceeds to take the write bit.
    for (;;) {
      uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & kWriterWaiting) == 0 &&
          state_.compare_exchange_weak(s, s | kWriterWaiting,
                                       std::memory_order_acquire)) {
        break;
      }
      SpinLock::CpuRelax();
    }
    // Wait for readers and any active writer to drain, then activate.
    for (;;) {
      uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & ~kWriterWaiting) == 0 &&
          state_.compare_exchange_weak(s, kWriterActive,
                                       std::memory_order_acquire)) {
        return;
      }
      SpinLock::CpuRelax();
    }
  }

  void unlock() { state_.store(0, std::memory_order_release); }

  void lock_shared() {
    for (;;) {
      uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & (kWriterActive | kWriterWaiting)) == 0 &&
          state_.compare_exchange_weak(s, s + 1,
                                       std::memory_order_acquire)) {
        return;
      }
      SpinLock::CpuRelax();
    }
  }

  void unlock_shared() {
    state_.fetch_sub(1, std::memory_order_release);
  }

 private:
  static constexpr uint32_t kWriterActive = 1u << 31;
  static constexpr uint32_t kWriterWaiting = 1u << 30;
  std::atomic<uint32_t> state_{0};
};

/// Version latch for optimistic lock coupling.
///
/// Version layout: bit 0 = locked, bit 1 = obsolete, bits 2.. = counter.
class OptimisticLock {
 public:
  static constexpr uint64_t kLockedBit = 1ull;
  static constexpr uint64_t kObsoleteBit = 2ull;

  /// Spin until unlocked, return the (even) version for later validation.
  /// Returns false via `ok` if the node is obsolete and the caller must
  /// restart its traversal.
  uint64_t ReadLockOrRestart(bool& ok) const {
    uint64_t v = AwaitUnlocked();
    ok = (v & kObsoleteBit) == 0;
    return v;
  }

  /// True iff the version did not change since `v` was read.
  bool CheckOrRestart(uint64_t v) const {
    return version_.load(std::memory_order_acquire) == v;
  }

  /// Upgrade a validated read to a write lock. Fails (restart) if the
  /// version moved.
  bool UpgradeToWriteLock(uint64_t v) {
    return version_.compare_exchange_strong(v, v + kLockedBit,
                                            std::memory_order_acquire);
  }

  /// Blocking write lock (spins through concurrent writers).
  /// Returns false if the node became obsolete.
  bool WriteLock() {
    for (;;) {
      uint64_t v = AwaitUnlocked();
      if (v & kObsoleteBit) return false;
      if (version_.compare_exchange_weak(v, v + kLockedBit,
                                         std::memory_order_acquire)) {
        return true;
      }
    }
  }

  void WriteUnlock() {
    // +1 releases the lock bit and bumps the counter (1 -> 4 increments
    // of the counter domain: locked v+1 becomes even v+2... we add 3 so
    // the version stays even with the lock bit clear).
    version_.fetch_add(3, std::memory_order_release);
  }

  /// Unlock and mark the node obsolete (logically deleted).
  void WriteUnlockObsolete() {
    version_.fetch_add(kObsoleteBit + 3, std::memory_order_release);
  }

  bool IsObsolete() const {
    return (version_.load(std::memory_order_acquire) & kObsoleteBit) != 0;
  }

 private:
  uint64_t AwaitUnlocked() const {
    uint64_t v = version_.load(std::memory_order_acquire);
    while (v & kLockedBit) {
      SpinLock::CpuRelax();
      v = version_.load(std::memory_order_acquire);
    }
    return v;
  }

  // Starts even (unlocked, not obsolete).
  std::atomic<uint64_t> version_{4};
};

}  // namespace cpma
