// Epoch-based reclamation (paper §3.4).
//
// Protocol — observe, don't advance. A client thread entering a logical
// operation *observes* the global epoch and publishes it into its own
// cache-line-aligned slot:
//
//   Enter:  e = global_epoch.load(acquire)
//           slot->epoch.store(e, release)     // private cacheline
//   Exit:   slot->epoch.store(kIdle, release)
//
// Unlike the earlier design (global fetch_add per Enter), the read path
// performs ZERO atomic read-modify-writes on shared cachelines — and,
// when the kernel provides membarrier(PRIVATE_EXPEDITED), zero fences:
// the only store lands on the thread's own slot line with plain release
// ordering, so a lookup's epoch pin costs a load and a store. Concurrent
// readers never bounce a shared line between cores. Epoch advancement is
// decoupled from the operation path: `TryAdvanceEpoch` CASes global
// E -> E+1 only when every active slot has caught up to E (bounding
// reader skew to one epoch), and is driven by retire-side watermarks
// plus the background collector — never by readers.
//
// Retire side. Each registered thread owns a private limbo list of
// intrusive `GarbageNode`s (one small node per retirement; no per-item
// `std::function` allocation on the pointer path). A retiring thread
// stamps the node with the current global epoch and appends it to its own
// list; since the global epoch only grows, each list is sorted by epoch
// and the collector drains a prefix. Both a count watermark and a bytes
// watermark (`Retire(ptr, bytes)`) trigger advancement + collection, so
// retired memory is bounded even when retirements are few but huge
// (snapshot retirement during resize) or many but tiny (BwTree deltas).
//
// Reclamation safety — the memory-ordering argument. Garbage stamped with
// epoch `e` is freed only when `min_active > e`, where `min_active` is
// the minimum over the global epoch and every non-idle slot epoch, and
// the collector executes a HEAVY fence before scanning slots. Consider a
// reader R and an unlinking writer W racing on object O:
//
//   R: slot.store(e, release);  ... p = load pointer to O ...
//   W: unlink O; fence(seq_cst); stamp = global.load(seq_cst); retire(O)
//   C: HeavyFence(); scan slots; free O if stamp < min_active
//
// The heavy fence is the asymmetric-barrier trick (hazard pointers, RCU:
// Linux membarrier(PRIVATE_EXPEDITED) interrupts every running thread of
// the process with a full barrier). When it returns, each reader thread
// has either (a) made its slot store visible — the scan sees the pin at
// epoch e, and O (stamped >= e) survives while R runs — or (b) not yet
// executed the publish, in which case R's subsequent pointer load is
// ordered after the barrier, hence after W's unlink (which was globally
// visible before C reached the fence: W's retire and C's drain
// synchronize on the slot's limbo mutex), so R reads the new pointer and
// never dereferences O. Either way no freed memory is reachable. The
// reader pays nothing; the collector pays one syscall per pass. Where
// membarrier is unavailable, Enter falls back to a seq_cst publish and
// the collector to a seq_cst fence, and the same argument runs through
// the seq_cst total order S. Because `TryAdvanceEpoch` only moves
// E -> E+1 when every active slot is at E, a reader pinned at e keeps
// `min_active == e` and wedges nothing newer: garbage stamped < e still
// drains, and garbage stamped >= e drains as soon as the reader exits.
//
// Threads and slots. Slots live in pointer-stable chunks; registration
// beyond the preallocated capacity grows the chunk table (no abort, no
// slot ever moves). A thread's slot is cached thread_local per
// (thread, GC instance) and recycled on thread exit; pending garbage in a
// recycled slot is still epoch-ordered because append order follows the
// monotone global epoch.
//
// Knobs (env overrides, parsed once per EpochGC instance):
//   CPMA_EBR_COUNT_WATERMARK  per-thread pending retirements that trigger
//                             advance+collect (default 512)
//   CPMA_EBR_BYTES_WATERMARK  per-thread pending retired bytes that
//                             trigger advance+collect (default 8 MiB)
//   CPMA_EBR_COLLECT_MS       background collector period in ms
//                             (default 10)

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace cpma {

class EpochGC;

/// One retired object: intrusive singly-linked node, stamped with the
/// epoch current at retirement. `free_fn(object)` releases the object.
struct GarbageNode {
  uint64_t epoch;
  size_t bytes;
  void (*free_fn)(void*);
  void* object;
  GarbageNode* next;
};

/// Per-thread registration slot. The epoch word readers publish into sits
/// alone on its own cacheline (no false sharing between client threads,
/// and the owner's limbo-list traffic never dirties the line the
/// collector scans). The limbo list is owner-appended / collector-drained
/// under a per-slot mutex that is uncontended in steady state.
struct alignas(64) EpochSlot {
  // kIdle when the thread is not inside an operation.
  static constexpr uint64_t kIdle = UINT64_MAX;
  alignas(64) std::atomic<uint64_t> epoch{kIdle};
  std::atomic<bool> in_use{false};

  alignas(64) std::mutex limbo_mu;
  GarbageNode* limbo_head = nullptr;
  GarbageNode* limbo_tail = nullptr;
  size_t limbo_count = 0;
  size_t limbo_bytes = 0;
};

/// Counters surfaced through ConcurrentPMA::ebr_stats() into bench JSON
/// and the nightly soak artifact. All values are monotonically increasing
/// except pending_count/pending_bytes (current) and global_epoch.
struct EpochGCStats {
  uint64_t pending_count = 0;       // retired, not yet freed
  uint64_t pending_bytes = 0;       // bytes retired, not yet freed
  uint64_t retired_count = 0;       // total Retire() calls
  uint64_t retired_bytes = 0;       // total bytes ever retired
  uint64_t retired_bytes_hwm = 0;   // high-water mark of pending_bytes
  uint64_t freed_count = 0;         // nodes reclaimed
  uint64_t freed_bytes = 0;         // bytes reclaimed
  uint64_t epoch_advances = 0;      // successful TryAdvanceEpoch CASes
  uint64_t collections = 0;         // Collect() passes
  uint64_t global_epoch = 0;        // current epoch
};

class EpochGC {
 public:
  struct Options {
    /// Slots preallocated at construction; registration beyond this grows
    /// chunk-by-chunk (pointer-stable) instead of aborting.
    size_t initial_threads = 64;
    /// Per-thread pending retirements that trigger advance + collect.
    size_t count_watermark = 512;
    /// Per-thread pending retired bytes that trigger advance + collect.
    size_t bytes_watermark = size_t{8} << 20;  // 8 MiB
    /// Background collector wake period.
    std::chrono::milliseconds collector_period{10};
  };

  /// Applies CPMA_EBR_* env overrides on top of `opts`.
  explicit EpochGC(const Options& opts);
  EpochGC() : EpochGC(Options{}) {}
  ~EpochGC();

  EpochGC(const EpochGC&) = delete;
  EpochGC& operator=(const EpochGC&) = delete;

  /// True iff `gc` still exists *and* is the same instance (a new GC can
  /// be allocated at a recycled address; the id disambiguates). Used by
  /// thread-local slot caches that may outlive the GC.
  static bool IsAlive(EpochGC* gc, uint64_t instance_id);

  uint64_t instance_id() const { return instance_id_; }

  /// Acquire a slot for the calling thread. Threads keep their slot for
  /// their lifetime (thread_local caching via LocalSlot). Never aborts:
  /// slot storage grows in pointer-stable chunks on demand.
  EpochSlot* RegisterThread();

  /// Release a slot for reuse. Pending garbage in its limbo list stays
  /// and is drained by the collector as epochs pass.
  void UnregisterThread(EpochSlot* slot) {
    slot->epoch.store(EpochSlot::kIdle, std::memory_order_release);
    slot->in_use.store(false, std::memory_order_release);
  }

  /// The calling thread's cached slot for this GC (registering on first
  /// use). Shared by EpochGuard and Retire so a thread occupies one slot.
  EpochSlot* LocalSlot() {
    struct Entry {
      EpochGC* gc;
      uint64_t instance_id;
      EpochSlot* slot;
    };
    // One cached slot per (thread, GC instance). A thread uses at most a
    // handful of GC instances (one per data structure), so a tiny linear
    // cache suffices and avoids unordered_map in the hot path.
    struct Cache {
      std::vector<Entry> entries;
      ~Cache() {
        for (auto& e : entries) {
          if (EpochGC::IsAlive(e.gc, e.instance_id)) {
            e.gc->UnregisterThread(e.slot);
          }
        }
      }
    };
    thread_local Cache cache;
    for (auto it = cache.entries.begin(); it != cache.entries.end();) {
      if (it->gc == this && it->instance_id == instance_id_) {
        return it->slot;
      }
      // Purge entries whose GC died (their slot storage is gone).
      if (!EpochGC::IsAlive(it->gc, it->instance_id)) {
        it = cache.entries.erase(it);
      } else {
        ++it;
      }
    }
    EpochSlot* slot = RegisterThread();
    cache.entries.push_back({this, instance_id_, slot});
    return slot;
  }

  /// Observe the current epoch and publish it in the slot: one load plus
  /// one release store to the thread's own cacheline — no shared-line
  /// RMW, and no fence when the collector's membarrier discharges the
  /// ordering (see the protocol comment; without membarrier the publish
  /// must be seq_cst so the collector's plain fence orders against it).
  uint64_t Enter(EpochSlot* slot) {
    const uint64_t e = global_epoch_.load(std::memory_order_acquire);
    if (kAsymmetricFence) {
      slot->epoch.store(e, std::memory_order_release);
    } else {
      slot->epoch.store(e, std::memory_order_seq_cst);
    }
    return e;
  }

  void Exit(EpochSlot* slot) {
    slot->epoch.store(EpochSlot::kIdle, std::memory_order_release);
  }

  /// Retire a heap object for `delete` once no client can still hold a
  /// reference. `bytes` feeds the bytes watermark; pass a better estimate
  /// than sizeof(T) when the object owns external memory.
  template <typename T>
  void Retire(T* ptr, size_t bytes = sizeof(T)) {
    static_assert(!std::is_void<T>::value,
                  "use Retire(free_fn, object, bytes) for void*");
    RetireImpl([](void* p) { delete static_cast<T*>(p); }, ptr, bytes);
  }

  /// Retire with an explicit non-capturing free function (type-erased
  /// call sites, e.g. delta-chain walkers).
  void Retire(void (*free_fn)(void*), void* object, size_t bytes) {
    RetireImpl(free_fn, object, bytes);
  }

  /// Retire an arbitrary deleter. Allocates a std::function holder —
  /// keep off hot paths; prefer the pointer overloads.
  void Retire(std::function<void()> deleter, size_t bytes = 0);

  /// Advance + drain every per-thread limbo prefix older than the min
  /// active epoch. Returns the number of items freed.
  size_t Collect();

  /// Free everything unconditionally (destruction path).
  size_t CollectAll();

  /// CAS global E -> E+1 iff every active slot has observed E. Returns
  /// true on a successful advance.
  bool TryAdvanceEpoch();

  size_t PendingGarbage() const {
    return pending_count_.load(std::memory_order_relaxed);
  }

  EpochGCStats Stats() const;

  uint64_t MinActiveEpoch() const;

  /// Start the periodic collector thread (paper: "a background thread,
  /// the garbage collector, runs periodically"). Zero period uses the
  /// configured (or env-overridden) default.
  void StartBackgroundCollector(
      std::chrono::milliseconds period = std::chrono::milliseconds(0));

  void StopBackgroundCollector();

  /// Wake the background collector now (watermark crossings use this so
  /// a parked reader's backlog is drained the moment it exits).
  void KickCollector();

  /// Completed background collector passes. Pair with
  /// WaitForCollectorPasses for deterministic tests: read p = passes(),
  /// retire, then WaitForCollectorPasses(p + 2) — the +2 covers a pass
  /// that was mid-flight (and may have missed the retirement) when it
  /// was read.
  uint64_t CollectorPasses() const;

  /// Block until the collector has completed `target` passes, kicking it
  /// as needed. Requires a running background collector.
  void WaitForCollectorPasses(uint64_t target);

 private:
  // Slots live in fixed-size chunks that are allocated once and never
  // moved, so EpochSlot* stays valid across growth (satellite of ISSUE 6:
  // replaces the fixed-capacity abort).
  static constexpr size_t kSlotsPerChunk = 32;
  static constexpr size_t kMaxChunks = 1024;  // 32768 threads
  struct SlotChunk {
    EpochSlot slots[kSlotsPerChunk];
  };

  static std::mutex& AliveMutex();
  static std::vector<EpochGC*>& AliveSet();
  static uint64_t NextInstanceId();

  /// True when membarrier(PRIVATE_EXPEDITED) registered successfully at
  /// process start: readers publish with plain release stores and the
  /// collector issues the heavy fence. Written once before main.
  static const bool kAsymmetricFence;
  /// membarrier(PRIVATE_EXPEDITED) when available, else a seq_cst fence.
  static void HeavyFence();

  void RetireImpl(void (*free_fn)(void*), void* object, size_t bytes);
  EpochSlot* TryClaimSlot();

  template <typename Fn>
  void ForEachSlot(Fn&& fn) const {
    const size_t n = num_chunks_.load(std::memory_order_acquire);
    for (size_t c = 0; c < n; ++c) {
      SlotChunk* chunk = chunks_[c].load(std::memory_order_acquire);
      for (auto& s : chunk->slots) fn(s);
    }
  }

  const uint64_t instance_id_;
  Options opts_;

  std::atomic<uint64_t> global_epoch_{1};

  std::atomic<SlotChunk*> chunks_[kMaxChunks] = {};
  std::atomic<size_t> num_chunks_{0};
  std::mutex grow_mu_;

  // Degradation reserve for RegisterThread: when growing the chunk table
  // fails (real bad_alloc or the epoch_gc.slot_chunk failpoint), this
  // embedded chunk is installed instead so registration still succeeds
  // once under memory pressure; after that, registration waits for a
  // recycled slot rather than aborting. Must not be delete'd (~EpochGC).
  SlotChunk emergency_chunk_;
  bool emergency_chunk_used_ = false;  // guarded by grow_mu_

  // Aggregate stats (per-slot pending counts are also tracked here so
  // Stats() needs no slot walk).
  std::atomic<uint64_t> pending_count_{0};
  std::atomic<uint64_t> pending_bytes_{0};
  std::atomic<uint64_t> pending_bytes_hwm_{0};
  std::atomic<uint64_t> retired_count_{0};
  std::atomic<uint64_t> retired_bytes_{0};
  std::atomic<uint64_t> freed_count_{0};
  std::atomic<uint64_t> freed_bytes_{0};
  std::atomic<uint64_t> epoch_advances_{0};
  std::atomic<uint64_t> collections_{0};

  mutable std::mutex collector_mutex_;
  std::condition_variable collector_cv_;  // collector wake (stop/kick)
  std::condition_variable pass_cv_;       // WaitForCollectorPasses waiters
  std::thread collector_;
  bool collector_stop_ = false;
  bool collector_kick_ = false;
  uint64_t collector_passes_ = 0;
};

/// RAII epoch scope for one logical operation.
class EpochGuard {
 public:
  explicit EpochGuard(EpochGC& gc) : gc_(gc), slot_(gc.LocalSlot()) {
    gc_.Enter(slot_);
  }
  ~EpochGuard() { gc_.Exit(slot_); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  /// Re-enter a fresh epoch mid-operation (after detecting a resize the
  /// client "restarts its operation after having entered in a new epoch").
  void Refresh() {
    gc_.Exit(slot_);
    gc_.Enter(slot_);
  }

 private:
  EpochGC& gc_;
  EpochSlot* slot_;
};

}  // namespace cpma
