// Epoch-based garbage collection (paper §3.4).
//
// Clients enter an epoch at the start of each logical operation (the
// paper uses the CPU timestamp counter; we use a monotonically increasing
// global counter which gives the same ordering guarantees without TSC
// portability concerns). To retire memory, a producer appends the pointer
// plus the current global epoch to a garbage list. The collector — either
// the background thread started by StartBackgroundCollector or an
// explicit Collect() call — frees every retired item whose epoch precedes
// the minimum epoch across all active clients.

#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace cpma {

class EpochGC;

/// Per-thread registration slot. Cache-line sized to avoid false sharing
/// between client threads publishing their epochs.
struct alignas(64) EpochSlot {
  // kIdle when the thread is not inside an operation.
  static constexpr uint64_t kIdle = UINT64_MAX;
  std::atomic<uint64_t> epoch{kIdle};
  std::atomic<bool> in_use{false};
};

class EpochGC {
 public:
  explicit EpochGC(size_t max_threads = 256)
      : instance_id_(NextInstanceId()), slots_(max_threads) {
    std::lock_guard<std::mutex> g(AliveMutex());
    AliveSet().push_back(this);
  }

  ~EpochGC() {
    StopBackgroundCollector();
    // Free everything left; no clients may be active at destruction.
    CollectAll();
    std::lock_guard<std::mutex> g(AliveMutex());
    auto& alive = AliveSet();
    alive.erase(std::remove(alive.begin(), alive.end(), this), alive.end());
  }

  /// True iff `gc` still exists *and* is the same instance (a new GC can
  /// be allocated at a recycled address; the id disambiguates). Used by
  /// thread-local slot caches that may outlive the GC.
  static bool IsAlive(EpochGC* gc, uint64_t instance_id) {
    std::lock_guard<std::mutex> g(AliveMutex());
    auto& alive = AliveSet();
    return std::find(alive.begin(), alive.end(), gc) != alive.end() &&
           gc->instance_id_ == instance_id;
  }

  uint64_t instance_id() const { return instance_id_; }

  EpochGC(const EpochGC&) = delete;
  EpochGC& operator=(const EpochGC&) = delete;

  /// Acquire a slot for the calling thread. Threads keep their slot for
  /// their lifetime (thread_local caching in EpochGuard).
  EpochSlot* RegisterThread() {
    for (auto& s : slots_) {
      bool expected = false;
      if (s.in_use.compare_exchange_strong(expected, true)) return &s;
    }
    CPMA_CHECK_MSG(false, "EpochGC: too many threads");
    return nullptr;
  }

  void UnregisterThread(EpochSlot* slot) {
    slot->epoch.store(EpochSlot::kIdle, std::memory_order_release);
    slot->in_use.store(false, std::memory_order_release);
  }

  /// Enter a new epoch; the returned value is published in the slot.
  uint64_t Enter(EpochSlot* slot) {
    uint64_t e = global_epoch_.fetch_add(1, std::memory_order_acq_rel);
    slot->epoch.store(e, std::memory_order_release);
    return e;
  }

  void Exit(EpochSlot* slot) {
    slot->epoch.store(EpochSlot::kIdle, std::memory_order_release);
  }

  /// Retire `deleter` to run once all epochs older than now have drained.
  void Retire(std::function<void()> deleter) {
    uint64_t e = global_epoch_.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> g(garbage_mutex_);
    garbage_.push_back({e, std::move(deleter)});
  }

  /// Free retired items older than every active client. Returns the
  /// number of items freed.
  size_t Collect() {
    const uint64_t min_epoch = MinActiveEpoch();
    std::vector<Garbage> to_free;
    {
      std::lock_guard<std::mutex> g(garbage_mutex_);
      size_t keep = 0;
      for (auto& item : garbage_) {
        if (item.epoch < min_epoch) {
          to_free.push_back(std::move(item));
        } else {
          garbage_[keep++] = std::move(item);
        }
      }
      garbage_.resize(keep);
    }
    for (auto& item : to_free) item.deleter();
    return to_free.size();
  }

  /// Free everything unconditionally (destruction path).
  size_t CollectAll() {
    std::vector<Garbage> to_free;
    {
      std::lock_guard<std::mutex> g(garbage_mutex_);
      to_free.swap(garbage_);
    }
    for (auto& item : to_free) item.deleter();
    return to_free.size();
  }

  size_t PendingGarbage() {
    std::lock_guard<std::mutex> g(garbage_mutex_);
    return garbage_.size();
  }

  /// Start the periodic collector thread (paper: "a background thread,
  /// the garbage collector, runs periodically").
  void StartBackgroundCollector(
      std::chrono::milliseconds period = std::chrono::milliseconds(10)) {
    std::lock_guard<std::mutex> g(collector_mutex_);
    if (collector_.joinable()) return;
    collector_stop_ = false;
    collector_ = std::thread([this, period] {
      std::unique_lock<std::mutex> lk(collector_mutex_);
      while (!collector_stop_) {
        collector_cv_.wait_for(lk, period);
        if (collector_stop_) break;
        lk.unlock();
        Collect();
        lk.lock();
      }
    });
  }

  void StopBackgroundCollector() {
    {
      std::lock_guard<std::mutex> g(collector_mutex_);
      if (!collector_.joinable()) return;
      collector_stop_ = true;
    }
    collector_cv_.notify_all();
    collector_.join();
  }

  uint64_t MinActiveEpoch() const {
    // Snapshot the global epoch first: anything retired after this point
    // is newer than what we will free.
    uint64_t min_epoch = global_epoch_.load(std::memory_order_acquire);
    for (const auto& s : slots_) {
      if (!s.in_use.load(std::memory_order_acquire)) continue;
      uint64_t e = s.epoch.load(std::memory_order_acquire);
      if (e != EpochSlot::kIdle && e < min_epoch) min_epoch = e;
    }
    return min_epoch;
  }

 private:
  static std::mutex& AliveMutex() {
    static std::mutex m;
    return m;
  }
  static uint64_t NextInstanceId() {
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1);
  }
  static std::vector<EpochGC*>& AliveSet() {
    static std::vector<EpochGC*> v;
    return v;
  }

  struct Garbage {
    uint64_t epoch;
    std::function<void()> deleter;
  };

  const uint64_t instance_id_;
  std::atomic<uint64_t> global_epoch_{1};
  std::vector<EpochSlot> slots_;

  std::mutex garbage_mutex_;
  std::vector<Garbage> garbage_;

  std::mutex collector_mutex_;
  std::condition_variable collector_cv_;
  std::thread collector_;
  bool collector_stop_ = false;
};

/// RAII epoch scope for one logical operation.
class EpochGuard {
 public:
  explicit EpochGuard(EpochGC& gc) : gc_(gc), slot_(SlotFor(gc)) {
    gc_.Enter(slot_);
  }
  ~EpochGuard() { gc_.Exit(slot_); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  /// Re-enter a fresh epoch mid-operation (after detecting a resize the
  /// client "restarts its operation after having entered in a new epoch").
  void Refresh() {
    gc_.Exit(slot_);
    gc_.Enter(slot_);
  }

 private:
  // One cached slot per (thread, GC instance). A thread uses at most a
  // handful of GC instances (one per data structure), so a tiny linear
  // cache suffices and avoids unordered_map in the hot path.
  static EpochSlot* SlotFor(EpochGC& gc) {
    struct Entry {
      EpochGC* gc;
      uint64_t instance_id;
      EpochSlot* slot;
    };
    struct Cache {
      std::vector<Entry> entries;
      ~Cache() {
        for (auto& e : entries) {
          if (EpochGC::IsAlive(e.gc, e.instance_id)) {
            e.gc->UnregisterThread(e.slot);
          }
        }
      }
    };
    thread_local Cache cache;
    for (auto it = cache.entries.begin(); it != cache.entries.end();) {
      if (it->gc == &gc && it->instance_id == gc.instance_id()) {
        return it->slot;
      }
      // Purge entries whose GC died (their slot storage is gone).
      if (!EpochGC::IsAlive(it->gc, it->instance_id)) {
        it = cache.entries.erase(it);
      } else {
        ++it;
      }
    }
    EpochSlot* slot = gc.RegisterThread();
    cache.entries.push_back({&gc, gc.instance_id(), slot});
    return slot;
  }

  EpochGC& gc_;
  EpochSlot* slot_;
};

}  // namespace cpma
