// Fast deterministic pseudo-random number generation for workloads and
// tests. Not cryptographic. Each thread owns its own generator.

#pragma once

#include <cstdint>

namespace cpma {

/// splitmix64: used to seed and to scramble sequential ids into keys.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit generator.
class Random {
 public:
  explicit Random(uint64_t seed = 0x853c49e6748fea9bull) {
    uint64_t sm = seed;
    for (auto& w : s_) w = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection-free approximation is fine for
    // workload generation; modulo bias is negligible for bound << 2^64.
    return Next() % bound;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace cpma
