// Run-length merge kernels for merged spreads (ISSUE 3, paper §3.5).
//
// Batch processing folds a sorted batch of updates into a window during
// the rebalance. The old implementation pulled the merged stream through
// a per-item iterator: one compare + one 16-byte store per element, even
// though a typical batch touches a handful of keys in a window holding
// thousands — almost the whole output is unbroken runs of existing
// elements. These kernels make the run the unit of work:
//
//  - MergeRunWithOps gallops: the dispatched segment lower bound
//    (cpu_dispatch.h) finds how many input items precede the next op's
//    key in O(log B), and that whole run moves with one streaming copy
//    (copy.h). Deletions are skipped runs — an op consumes its matching
//    input item and emits nothing. Per-item work remains only for the
//    ops themselves.
//  - SegmentedRunWriter splits emitted runs across fixed-capacity output
//    segments (the plan's target cardinalities), so the merge loop never
//    deals with segment boundaries.
//
// The writer targets raw (base, stride) storage so the same kernels
// serve window spreads (output = storage buffer) and resizes (output =
// fresh region); see pma/spread.cc for both drivers.

#pragma once

#include <cstddef>
#include <cstdint>

#include "common/hotpath/copy.h"
#include "common/hotpath/cpu_dispatch.h"
#include "common/status.h"
#include "pma/item.h"

namespace cpma::hotpath {

/// Appends a merged element stream into consecutive output segments:
/// segment j lives at base + j * stride and receives exactly targets[j]
/// items. Overflowing the planned layout is a checked logic error.
class SegmentedRunWriter {
 public:
  SegmentedRunWriter(Item* base, size_t stride, const uint32_t* targets,
                     size_t num_segments, bool stream)
      : base_(base),
        stride_(stride),
        targets_(targets),
        num_segments_(num_segments),
        stream_(stream) {
    SkipFilledSegments();
  }

  /// Append a run of `n` already-sorted items.
  void Emit(const Item* run, size_t n) {
    while (n > 0) {
      CPMA_CHECK_MSG(seg_ < num_segments_, "merge stream overflows plan");
      const size_t room = targets_[seg_] - filled_;
      const size_t take = n < room ? n : room;
      CopyItems(base_ + seg_ * stride_ + filled_, run, take, stream_);
      filled_ += static_cast<uint32_t>(take);
      run += take;
      n -= take;
      written_ += take;
      SkipFilledSegments();
    }
  }

  /// Append one item (a batch insertion or upsert).
  void Emit1(Key key, Value value) {
    CPMA_CHECK_MSG(seg_ < num_segments_, "merge stream overflows plan");
    base_[seg_ * stride_ + filled_] = {key, value};
    ++filled_;
    ++written_;
    SkipFilledSegments();
  }

  size_t written() const { return written_; }

 private:
  void SkipFilledSegments() {
    while (seg_ < num_segments_ && filled_ >= targets_[seg_]) {
      ++seg_;
      filled_ = 0;
    }
  }

  Item* base_;
  size_t stride_;
  const uint32_t* targets_;
  size_t num_segments_;
  bool stream_;
  size_t seg_ = 0;
  uint32_t filled_ = 0;
  size_t written_ = 0;
};

/// Merge one sorted input run (a segment's live elements) with the
/// sorted batch, emitting the merged stream. Consumes every op whose key
/// sorts at or below in[n-1].key (ops between two segments are emitted
/// by the next segment's call, or by EmitRemainingOps after the last);
/// *op_idx advances accordingly. Keys are unique on both sides; an equal
/// key means the op supersedes the stored element (upsert or deletion).
inline void MergeRunWithOps(const Item* in, uint32_t n, const BatchEntry* ops,
                            size_t num_ops, size_t* op_idx,
                            SegmentedRunWriter* w) {
  uint32_t i = 0;
  while (i < n) {
    if (*op_idx >= num_ops || ops[*op_idx].key > in[n - 1].key) {
      w->Emit(in + i, n - i);  // no further op lands in this run
      return;
    }
    const BatchEntry& op = ops[*op_idx];
    // Gallop: everything strictly below the op's key is one run.
    const uint32_t run =
        static_cast<uint32_t>(SegmentLowerBound(in + i, n - i, op.key));
    w->Emit(in + i, run);
    i += run;
    ++*op_idx;
    if (i < n && in[i].key == op.key) ++i;  // op supersedes the element
    if (!op.is_delete) w->Emit1(op.key, op.value);
  }
}

/// Emit the batch tail — ops whose keys sort above every stored key.
/// Deletions of absent keys are no-ops.
inline void EmitRemainingOps(const BatchEntry* ops, size_t num_ops,
                             size_t* op_idx, SegmentedRunWriter* w) {
  for (; *op_idx < num_ops; ++*op_idx) {
    if (!ops[*op_idx].is_delete) {
      w->Emit1(ops[*op_idx].key, ops[*op_idx].value);
    }
  }
}

}  // namespace cpma::hotpath
