// Hot-path search kernels (ISSUE 2): the PMA's segment and routing
// searches, deduplicated out of the two anonymous-namespace copies that
// used to live in sequential_pma.cc / concurrent_pma.cc, plus the
// software-prefetch helpers used by the scan loops.
//
// Two kernels, chosen by what FOLLOWS the search (all choices A/B'd on
// the dev box, min-CPU-time over interleaved runs; see BENCH_PR2.json):
//
//  - Read paths (Find, scan cursor placement) call the dispatched
//    SegmentLowerBound (cpu_dispatch.h): a branchless halving loop whose
//    step compiles to a conditional move — log2(n) data-dependent loads,
//    zero branch mispredictions — or its AVX2 widening (search_avx2.h).
//    Nothing depends on the result but a compare, so the serial chain is
//    the whole cost and removing mispredicts wins outright (-40% on
//    BM_SequentialPmaFind).
//
//  - Update paths (Insert/Remove) call SegmentLowerBoundForUpdate: an
//    append fast path plus a deliberately BRANCHY binary search. The
//    element shift that follows depends on the result; a predicted
//    branchy search lets the CPU speculate `pos` and start the memmove's
//    loads early, while a cmov chain stalls them behind every level of
//    the search. Branchless lost ~14% on BM_SequentialPmaInsertUniform
//    in the A/B; the ascending pattern additionally gets the fast path
//    (one always-taken branch instead of any search at all).

#pragma once

#include <algorithm>
#include <cstddef>

#include "common/hotpath/cpu_dispatch.h"
#include "pma/item.h"

namespace cpma::hotpath {

/// Branchless lower bound over the keys of the sorted array seg[0..n):
/// index of the first item with key >= `key`, n if none. Read-path
/// kernel; reached via the SegmentLowerBound dispatch on CPUs without
/// AVX2 (or with CPMA_DISABLE_AVX2 set).
inline size_t ScalarItemLowerBound(const Item* seg, size_t n, Key key) {
  const Item* base = seg;
  size_t len = n;
  while (len > 1) {
    const size_t half = len / 2;
    base += static_cast<size_t>(base[half - 1].key < key) * half;
    len -= half;
  }
  return static_cast<size_t>(base - seg) +
         ((n > 0 && base->key < key) ? 1 : 0);
}

/// Lower bound for update call sites (see file comment for why this one
/// is branchy). The append fast path reads the segment's last item — for
/// updates that line is touched by the shift anyway, so it costs nothing
/// (which is why Find must NOT use this wrapper: there the tail read
/// would be a wasted cold miss).
inline size_t SegmentLowerBoundForUpdate(const Item* seg, uint32_t card,
                                         Key key) {
  if (card == 0 || seg[card - 1].key < key) return card;
  size_t lo = 0, hi = card;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (seg[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Prefetch the head of a segment into all cache levels — issued for
/// segment s+1 while a scan consumes segment s (the B+-tree baseline
/// prefetches its next leaf the same way; see btree.cc). Only the first
/// few lines are touched explicitly; the hardware prefetcher keeps up
/// once the scan streams sequentially inside the segment.
inline void PrefetchSegment(const Item* seg, uint32_t card) {
#if defined(__GNUC__) || defined(__clang__)
  constexpr size_t kLine = 64;
  constexpr size_t kMaxBytes = 4 * kLine;
  const size_t bytes =
      std::min(static_cast<size_t>(card) * sizeof(Item), kMaxBytes);
  const char* p = reinterpret_cast<const char*>(seg);
  for (size_t off = 0; off < bytes; off += kLine) {
    __builtin_prefetch(p + off, /*rw=*/0, /*locality=*/3);
  }
#else
  (void)seg;
  (void)card;
#endif
}

}  // namespace cpma::hotpath
