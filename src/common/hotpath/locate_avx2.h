// AVX2 gate-locate kernel (ISSUE 3): see locate.h for the contract and
// why the mask is scanned for its highest set bit instead of counted.
// Per-function target attribute keeps the binary -march portable;
// cpu_dispatch.cc selects this via CPUID.
//
// Four routes per 256-bit compare (routes are a dense Key array — no
// unpacking needed, unlike the Item-strided search kernel). AVX2 only
// has signed 64-bit compares; flipping the sign bit of both sides maps
// unsigned order onto signed order, keeping the kKeySentinel entries of
// empty segments correctly "greater than everything storable".

#pragma once

#include <cstddef>

#include "common/hotpath/locate.h"
#include "pma/item.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CPMA_HAVE_AVX2_LOCATE_IMPL 1

#include <immintrin.h>

namespace cpma::hotpath {

__attribute__((target("avx2"))) inline size_t Avx2LocateRoute(
    const Key* routes, size_t n, Key key) {
  if (n < 4 || n > 64) {
    // Below one vector there is nothing to vectorize; above 64 the
    // one-bit-per-route mask below would overflow (gates that wide do
    // not occur — spg is 8 in the paper — but the kernel stays total).
    return ScalarLocateRoute(routes, n, key);
  }
  const __m256i sign =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  const __m256i target =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(key)), sign);
  uint64_t mask = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i r = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(routes + i)),
        sign);
    const unsigned gt = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(r, target))));
    mask |= static_cast<uint64_t>(~gt & 0xFu) << i;
  }
  for (; i < n; ++i) {  // tail (n not a multiple of 4)
    mask |= static_cast<uint64_t>(routes[i] <= key) << i;
  }
  if (mask == 0) return kNoRoute;
  return 63 - static_cast<size_t>(__builtin_clzll(mask));
}

}  // namespace cpma::hotpath

#else
#define CPMA_HAVE_AVX2_LOCATE_IMPL 0
#endif
