// Tagged kernels for the optimistic gate read path (ISSUE 4): the same
// segment search / gate locate / item accesses the latched paths use,
// but safe to run on storage a latched writer is mutating concurrently.
//
// Production builds forward straight to the dispatched SIMD kernels —
// the reads race, the per-word tearing they can observe is bounded
// (every load is a whole key or value), and the gate's SeqVersion
// validation discards any window that overlapped a mutation. Under TSan
// (CPMA_TSAN, see common/tagged.h) the bulk/SIMD reads are replaced by
// per-word relaxed-atomic equivalents so the race is expressed as
// atomics and `ctest -L concurrent` stays clean without suppressions.

#pragma once

#include "common/hotpath/locate.h"
#include "common/hotpath/search.h"
#include "common/tagged.h"
#include "pma/item.h"

namespace cpma::hotpath {

/// One racing item, loaded word-by-word (two plain movs in production).
inline Item TaggedLoadItem(const Item* p) {
  return Item{TaggedLoad(&p->key), TaggedLoad(&p->value)};
}

/// Writer-side single-item store under an odd gate version.
inline void TaggedStoreItem(Item* p, Item v) {
  TaggedStore(&p->key, v.key);
  TaggedStore(&p->value, v.value);
}

/// Writer-side segment shift (the insert/remove memmove) under an odd
/// gate version; overlap-safe.
inline void TaggedMoveItems(Item* dst, const Item* src, size_t n) {
  TaggedMoveWords(dst, src, n * sizeof(Item));
}

/// Reader-side copy of a racing segment into private memory (optimistic
/// scans stage a chunk before validating).
inline void TaggedReadItems(Item* dst, const Item* src, size_t n) {
  TaggedReadWords(dst, src, n * sizeof(Item));
}

/// Optimistic-path segment lower bound: the dispatched SIMD kernel in
/// production, the branchless scalar loop with tagged loads under TSan.
inline size_t TaggedSegmentLowerBound(const Item* seg, uint32_t card,
                                      Key key) {
#if CPMA_TSAN
  const Item* base = seg;
  size_t len = card;
  while (len > 1) {
    const size_t half = len / 2;
    base += static_cast<size_t>(TaggedLoad(&base[half - 1].key) < key) * half;
    len -= half;
  }
  return static_cast<size_t>(base - seg) +
         ((card > 0 && TaggedLoad(&base->key) < key) ? 1 : 0);
#else
  return SegmentLowerBound(seg, card, key);
#endif
}

/// Optimistic-path gate locate: rightmost route <= key over the chunk's
/// routing-key slice (see locate.h), tagged under TSan.
inline size_t TaggedLocateRoute(const Key* routes, size_t n, Key key) {
#if CPMA_TSAN
  size_t best = kNoRoute;
  for (size_t i = 0; i < n; ++i) {
    best = TaggedLoad(routes + i) <= key ? i : best;  // cmov
  }
  return best;
#else
  return LocateRoute(routes, n, key);
#endif
}

}  // namespace cpma::hotpath
