// AVX2 lower bound over Item arrays (ISSUE 2), compiled with a
// per-function target attribute so the translation unit — and the whole
// binary — needs no -mavx2; cpu_dispatch.cc selects it via CPUID.
//
// Shape: the branchless scalar halving narrows the window to <= 16
// items (3 cmov steps for the paper's B = 128), then a FIXED 16-item
// window aligned to stay inside the array is counted with exactly four
// unconditional 256-bit compares. Two design points matter, both
// measured on the dev box against random probe keys:
//
//  - No early exit in the vector tail. A data-dependent exit branch
//    mispredicts roughly once per lookup and costs more than the two
//    compare blocks it saves; the fixed trip count keeps the whole
//    kernel free of unpredictable branches, and the four blocks are
//    independent, so they overlap in the pipeline (unlike the serially
//    dependent scalar halving steps they replace).
//  - Keys sit at qword stride 2 inside the 16-byte Item, so two
//    unaligned loads + one unpacklo_epi64 pick out four keys per block —
//    cheaper across AVX2 microarchitectures than a vpgatherqq, whose
//    latency on many parts exceeds the loads it replaces. unpacklo
//    scrambles element order inside the vector, which a population
//    count does not care about.
//
// AVX2 has only signed 64-bit compares; flipping the sign bit of both
// sides maps unsigned order onto signed order, keeping keys near the
// kKeySentinel boundary correct.

#pragma once

#include <cstddef>

#include "common/hotpath/search.h"
#include "pma/item.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CPMA_HAVE_AVX2_IMPL 1

#include <immintrin.h>

namespace cpma::hotpath {

static_assert(offsetof(Item, key) == 0, "AVX2 kernel assumes key-first");

__attribute__((target("avx2"))) inline size_t Avx2ItemLowerBound(
    const Item* seg, size_t n, Key key) {
  constexpr size_t kWindow = 16;
  if (n < kWindow) {
    // Too small for a full vector window (and in the PMA, rare: only a
    // nearly empty array has segments this sparse).
    return ScalarItemLowerBound(seg, n, key);
  }
  const Item* base = seg;
  size_t len = n;
  while (len > kWindow) {
    const size_t half = len / 2;
    base += static_cast<size_t>(base[half - 1].key < key) * half;
    len -= half;
  }
  // The answer lies in [base, base + len] with len <= 16. Slide the
  // window left so it is 16 wide yet stays inside the array: items the
  // slide prepends are all < key (they precede `base`), so counting
  // them keeps the arithmetic exact.
  const Item* w = seg + n - kWindow < base ? seg + n - kWindow : base;
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i target = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(key)), sign);
  size_t cnt = 0;
  for (size_t b = 0; b < kWindow / 4; ++b) {
    const __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(w + 4 * b));      // items 0,1
    const __m256i c = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(w + 4 * b + 2));  // items 2,3
    const __m256i keys =
        _mm256_xor_si256(_mm256_unpacklo_epi64(a, c), sign);
    const unsigned lt = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(
            _mm256_cmpgt_epi64(target, keys))));
    cnt += static_cast<size_t>(__builtin_popcount(lt));
  }
  return static_cast<size_t>(w - seg) + cnt;
}

}  // namespace cpma::hotpath

#else
#define CPMA_HAVE_AVX2_IMPL 0
#endif
