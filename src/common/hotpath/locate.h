// Gate-locate kernel (ISSUE 3): pick the segment inside a gate's chunk
// that may hold a key, from the chunk's slice of the routing-key array.
//
// Storage::route(s) doubles as the gate's first-keys array: the first
// key of a non-empty segment, kKeySentinel for an empty one (> every
// valid key, so empties are transparently skipped), kKeyMin for global
// segment 0. The answer is the RIGHTMOST route <= key. Because empty
// segments may sit anywhere inside a chunk (deletions under the relaxed
// lower threshold), the routes slice is not monotone — sentinels
// interleave — so the count-of-separators trick from StaticIndex::Lookup
// does not apply verbatim; instead both kernels build the full <=-mask
// and take its highest set bit, which needs no monotonicity at all.
//
// The scalar kernel replaces the old early-exit scan in
// ConcurrentPMA::LocateSegment: its select compiles to a conditional
// move, so the per-gate walk (spg iterations, spg = 8 in the paper) has
// no data-dependent branch for the predictor to miss — the same
// reasoning as the read-path search kernels (search.h). The AVX2
// widening (locate_avx2.h) compares four routes per instruction.

#pragma once

#include <cstddef>
#include <cstdint>

#include "common/hotpath/cpu_dispatch.h"
#include "pma/item.h"

namespace cpma::hotpath {

/// Returned when every route is greater than the key (the key precedes
/// all stored keys of the chunk).
constexpr size_t kNoRoute = SIZE_MAX;

/// Branchless rightmost route <= key; kNoRoute if none.
inline size_t ScalarLocateRoute(const Key* routes, size_t n, Key key) {
  size_t best = kNoRoute;
  for (size_t i = 0; i < n; ++i) {
    best = routes[i] <= key ? i : best;  // cmov
  }
  return best;
}

/// Dispatched entry point (CPUID + CPMA_DISABLE_AVX2, like
/// SegmentLowerBound).
inline size_t LocateRoute(const Key* routes, size_t n, Key key) {
  return detail::g_locate_route.load(std::memory_order_relaxed)(routes, n,
                                                                key);
}

}  // namespace cpma::hotpath
