#include "common/hotpath/crc32c.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define CPMA_HAVE_SSE42_IMPL 1
#endif

namespace cpma {
namespace hotpath {

namespace {

// ----------------------------------------------------------- scalar
// Slice-by-1 table kernel. Not fast, but portable, branch-light, and
// the ground truth the SIMD kernel is property-tested against. The
// table is built once at first use (function-local static init is
// thread-safe) from the reflected polynomial.
struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

uint32_t ScalarKernel(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint32_t* t = Table().t;
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ----------------------------------------------------------- sse4.2
#if defined(CPMA_HAVE_SSE42_IMPL)
__attribute__((target("sse4.2")))
uint32_t Sse42Kernel(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c32 = crc ^ 0xFFFFFFFFu;
  // Byte-align to 8 so the u64 loop reads aligned words.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    c32 = _mm_crc32_u8(c32, *p++);
    --n;
  }
#if defined(__x86_64__)
  uint64_t c = c32;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    c = _mm_crc32_u64(c, word);
    p += 8;
    n -= 8;
  }
  c32 = static_cast<uint32_t>(c);
#endif
  while (n > 0) {
    c32 = _mm_crc32_u8(c32, *p++);
    --n;
  }
  return c32 ^ 0xFFFFFFFFu;
}
#endif  // CPMA_HAVE_SSE42_IMPL

bool Sse42DisabledByEnv() {
  const char* env = std::getenv("CPMA_DISABLE_SSE42");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

bool HaveSse42() {
#if defined(CPMA_HAVE_SSE42_IMPL)
  return __builtin_cpu_supports("sse4.2") != 0;
#else
  return false;
#endif
}

using Crc32cFn = uint32_t (*)(uint32_t, const void*, size_t);

uint32_t ResolveCrc32c(uint32_t crc, const void* data, size_t n);

// Constant-initialized: safe to call from any static initializer.
std::atomic<Crc32cFn> g_crc32c{&ResolveCrc32c};

Crc32cFn PickCrc32c() {
#if defined(CPMA_HAVE_SSE42_IMPL)
  if (HaveSse42() && !Sse42DisabledByEnv()) return &Sse42Kernel;
#endif
  return &ScalarKernel;
}

uint32_t ResolveCrc32c(uint32_t crc, const void* data, size_t n) {
  Crc32cFn fn = PickCrc32c();
  g_crc32c.store(fn, std::memory_order_relaxed);
  return fn(crc, data, n);
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  return g_crc32c.load(std::memory_order_relaxed)(crc, data, n);
}

uint32_t Crc32c(const void* data, size_t n) { return Crc32cExtend(0, data, n); }

uint32_t ScalarCrc32c(uint32_t crc, const void* data, size_t n) {
  return ScalarKernel(crc, data, n);
}

bool Crc32cHaveSse42() { return HaveSse42(); }

#if defined(CPMA_HAVE_SSE42_IMPL)
uint32_t Sse42Crc32c(uint32_t crc, const void* data, size_t n) {
  return Sse42Kernel(crc, data, n);
}
#endif

const char* ActiveCrc32cDispatchName() {
  Crc32cFn fn = g_crc32c.load(std::memory_order_relaxed);
  if (fn == &ResolveCrc32c) fn = PickCrc32c();
#if defined(CPMA_HAVE_SSE42_IMPL)
  if (fn == &Sse42Kernel) return "sse42";
#endif
  return "scalar";
}

}  // namespace hotpath
}  // namespace cpma
