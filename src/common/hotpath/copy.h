// Streaming copy kernels for the rebalance engine (ISSUE 3).
//
// Rebalances move every live element of a window: spreads copy segment
// runs into the storage buffer, resizes repack the whole array into a
// fresh region. Two regimes, chosen by the *window* size (not the run
// size — one spread issues many runs and they should all take the same
// path):
//
//  - Cache-resident windows use plain memcpy. The compiler inlines small
//    fixed-size copies and libc's dispatch already vectorizes large
//    ones; beating it in-cache is not possible, so the scalar kernel IS
//    memcpy.
//  - Windows larger than the last-level cache use AVX2 non-temporal
//    stores (copy_avx2.h, runtime-dispatched like the search kernels).
//    A rebalance writes the buffer exactly once and publishes it with
//    SwapWindow; for a window that cannot fit in LLC anyway, regular
//    stores would evict the *live* array (which concurrent readers are
//    still scanning) to make room for buffer lines that will not be
//    re-read before DRAM evicts them. NT stores keep the copy out of
//    the cache entirely.
//
// The threshold is 2x the OS-reported LLC size (resolved once at
// startup, see cpu_dispatch.cc): a window that big cannot stay resident
// even with a perfectly warm cache, so evicting live data to cache its
// lines is pure loss. CPMA_STREAM_BYTES overrides it for A/B runs and
// for forcing the streaming path through tests on any host.

#pragma once

#include <cstddef>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#include "common/hotpath/cpu_dispatch.h"
#include "pma/item.h"

namespace cpma::hotpath {

/// Portable streaming kernel: plain memcpy (see file comment). Reached
/// via the dispatch on CPUs without AVX2 or with CPMA_DISABLE_AVX2 set.
/// n == 0 is allowed even with null pointers (an empty segment's run) —
/// memcpy itself is not (UB per the standard, and UBSan flags it).
inline void ScalarCopyItems(Item* dst, const Item* src, size_t n) {
  if (n == 0) return;
  std::memcpy(dst, src, n * sizeof(Item));
}

/// Window size in bytes above which rebalance copies switch to the
/// streaming (non-temporal) kernel: 2x the detected LLC, or the
/// CPMA_STREAM_BYTES env override (resolved once; cpu_dispatch.cc).
size_t StreamWindowBytes();

/// Decide once per rebalance whether its copies should stream.
inline bool StreamCopyPreferred(size_t window_bytes) {
  return window_bytes >= StreamWindowBytes();
}

/// Copy `n` items (non-overlapping). `stream` selects the dispatched
/// non-temporal kernel and should be the StreamCopyPreferred() verdict
/// for the whole window this run belongs to.
inline void CopyItems(Item* dst, const Item* src, size_t n, bool stream) {
  if (n == 0) return;
  if (stream) {
    detail::g_stream_copy.load(std::memory_order_relaxed)(dst, src, n);
  } else {
    std::memcpy(dst, src, n * sizeof(Item));
  }
}

/// Publish barrier for a batch of streaming copies: call once per
/// partition/window after its CopyItems runs, before the buffer is made
/// visible to other threads. Non-temporal stores are weakly ordered —
/// neither a mutex unlock nor a release store is guaranteed to drain
/// the write-combining buffers, only sfence is. One fence per window
/// (not per run) keeps the streamed stores overlapped.
inline void StreamCopyFlush(bool stream) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (stream) _mm_sfence();
#else
  (void)stream;
#endif
}

}  // namespace cpma::hotpath
