// CRC32C (Castagnoli) with runtime SSE4.2 dispatch — the checksum under
// every persist-layer chunk and manifest (ISSUE 9).
//
// Same dispatch shape as cpu_dispatch.h: a constant-initialized atomic
// function pointer starts at a resolver trampoline that probes the CPU
// once and self-replaces, so steady-state cost is one relaxed load plus
// an indirect call. CPMA_DISABLE_SSE42=1 forces the scalar table kernel
// (the property tests drive both and cross-check them).
//
// Polynomial 0x1EDC6F41 (reflected 0x82F63B78), init/final XOR
// 0xFFFFFFFF — i.e. the iSCSI/RocksDB/ext4 CRC32C, bit-identical to the
// x86 `crc32` instruction family.

#pragma once

#include <cstddef>
#include <cstdint>

namespace cpma {
namespace hotpath {

/// One-shot convenience: Crc32cExtend(0, data, n).
uint32_t Crc32c(const void* data, size_t n);

/// Streaming form: feed chunks left to right. `crc` is the value
/// returned by the previous call (0 to start). The init/final XOR is
/// folded inside, so partial results are already valid CRCs of the
/// prefix — callers can both persist and keep extending them.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// Direct kernel access for the property tests (both are always
/// compiled; Sse42Crc32c aborts if called on a CPU without SSE4.2 —
/// check Crc32cHaveSse42() first).
uint32_t ScalarCrc32c(uint32_t crc, const void* data, size_t n);
bool Crc32cHaveSse42();
#if defined(__x86_64__) || defined(__i386__)
uint32_t Sse42Crc32c(uint32_t crc, const void* data, size_t n);
#endif

/// "sse42" or "scalar" — which kernel the next Crc32cExtend call uses.
const char* ActiveCrc32cDispatchName();

}  // namespace hotpath
}  // namespace cpma
