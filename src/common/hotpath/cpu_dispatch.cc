#include "common/hotpath/cpu_dispatch.h"

#include <cstdlib>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "common/hotpath/copy.h"
#include "common/hotpath/copy_avx2.h"
#include "common/hotpath/locate.h"
#include "common/hotpath/locate_avx2.h"
#include "common/hotpath/search.h"
#include "common/hotpath/search_avx2.h"

namespace cpma::hotpath {

namespace {
size_t ResolveTrampoline(const Item* seg, size_t n, Key key);
void ResolveCopyTrampoline(Item* dst, const Item* src, size_t n);
size_t ResolveLocateTrampoline(const Key* routes, size_t n, Key key);
}  // namespace

namespace detail {
// Constant-initialized, so a lookup issued from another TU's dynamic
// initializer still resolves correctly instead of racing static init.
std::atomic<ItemLowerBoundFn> g_item_lower_bound{&ResolveTrampoline};
std::atomic<ItemCopyFn> g_stream_copy{&ResolveCopyTrampoline};
std::atomic<LocateRouteFn> g_locate_route{&ResolveLocateTrampoline};
}  // namespace detail

bool Avx2Supported() {
#if CPMA_HAVE_AVX2_IMPL
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool Avx2DisabledByEnv() {
  const char* env = std::getenv("CPMA_DISABLE_AVX2");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

namespace {
// One CPUID + env decision shared by every kernel family.
bool UseAvx2() { return Avx2Supported() && !Avx2DisabledByEnv(); }
}  // namespace

ItemLowerBoundFn ResolveItemLowerBound() {
#if CPMA_HAVE_AVX2_IMPL
  if (UseAvx2()) return &Avx2ItemLowerBound;
#endif
  return &ScalarItemLowerBound;
}

ItemCopyFn ResolveStreamCopy() {
#if CPMA_HAVE_AVX2_COPY_IMPL
  if (UseAvx2()) return &Avx2StreamCopyItems;
#endif
  return &ScalarCopyItems;
}

LocateRouteFn ResolveLocateRoute() {
#if CPMA_HAVE_AVX2_LOCATE_IMPL
  if (UseAvx2()) return &Avx2LocateRoute;
#endif
  return &ScalarLocateRoute;
}

namespace {
// Concurrent first calls all store the same pointer; relaxed is fine
// (for all three trampolines).
size_t ResolveTrampoline(const Item* seg, size_t n, Key key) {
  const ItemLowerBoundFn fn = ResolveItemLowerBound();
  detail::g_item_lower_bound.store(fn, std::memory_order_relaxed);
  return fn(seg, n, key);
}

void ResolveCopyTrampoline(Item* dst, const Item* src, size_t n) {
  const ItemCopyFn fn = ResolveStreamCopy();
  detail::g_stream_copy.store(fn, std::memory_order_relaxed);
  fn(dst, src, n);
}

size_t ResolveLocateTrampoline(const Key* routes, size_t n, Key key) {
  const LocateRouteFn fn = ResolveLocateRoute();
  detail::g_locate_route.store(fn, std::memory_order_relaxed);
  return fn(routes, n, key);
}
}  // namespace

size_t StreamWindowBytes() {
  static const size_t bytes = [] {
    constexpr size_t kFallback = size_t{32} << 20;
    if (const char* env = std::getenv("CPMA_STREAM_BYTES")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && v > 0) return static_cast<size_t>(v);
    }
    long llc = -1;
#if defined(__linux__) && defined(_SC_LEVEL3_CACHE_SIZE)
    llc = sysconf(_SC_LEVEL3_CACHE_SIZE);
    if (llc <= 0) llc = sysconf(_SC_LEVEL2_CACHE_SIZE);
#endif
    if (llc <= 0) return kFallback;
    // 2x LLC: below that a warm cache could still hold the window, and
    // evicting it for a one-shot copy might pay off on the next scan.
    return static_cast<size_t>(llc) * 2;
  }();
  return bytes;
}

const char* ActiveDispatchName() {
  ItemLowerBoundFn fn =
      detail::g_item_lower_bound.load(std::memory_order_relaxed);
  if (fn == &ResolveTrampoline) {
    fn = ResolveItemLowerBound();
    detail::g_item_lower_bound.store(fn, std::memory_order_relaxed);
  }
#if CPMA_HAVE_AVX2_IMPL
  if (fn == &Avx2ItemLowerBound) return "avx2";
#endif
  return "scalar";
}

const char* ActiveCopyDispatchName() {
  ItemCopyFn fn = detail::g_stream_copy.load(std::memory_order_relaxed);
  if (fn == &ResolveCopyTrampoline) {
    fn = ResolveStreamCopy();
    detail::g_stream_copy.store(fn, std::memory_order_relaxed);
  }
#if CPMA_HAVE_AVX2_COPY_IMPL
  if (fn == &Avx2StreamCopyItems) return "avx2";
#endif
  return "scalar";
}

const char* ActiveLocateDispatchName() {
  LocateRouteFn fn = detail::g_locate_route.load(std::memory_order_relaxed);
  if (fn == &ResolveLocateTrampoline) {
    fn = ResolveLocateRoute();
    detail::g_locate_route.store(fn, std::memory_order_relaxed);
  }
#if CPMA_HAVE_AVX2_LOCATE_IMPL
  if (fn == &Avx2LocateRoute) return "avx2";
#endif
  return "scalar";
}

}  // namespace cpma::hotpath
