#include "common/hotpath/cpu_dispatch.h"

#include <cstdlib>

#include "common/hotpath/search.h"
#include "common/hotpath/search_avx2.h"

namespace cpma::hotpath {

namespace {
size_t ResolveTrampoline(const Item* seg, size_t n, Key key);
}  // namespace

namespace detail {
// Constant-initialized, so a lookup issued from another TU's dynamic
// initializer still resolves correctly instead of racing static init.
std::atomic<ItemLowerBoundFn> g_item_lower_bound{&ResolveTrampoline};
}  // namespace detail

bool Avx2Supported() {
#if CPMA_HAVE_AVX2_IMPL
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool Avx2DisabledByEnv() {
  const char* env = std::getenv("CPMA_DISABLE_AVX2");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

ItemLowerBoundFn ResolveItemLowerBound() {
#if CPMA_HAVE_AVX2_IMPL
  if (Avx2Supported() && !Avx2DisabledByEnv()) {
    return &Avx2ItemLowerBound;
  }
#endif
  return &ScalarItemLowerBound;
}

namespace {
size_t ResolveTrampoline(const Item* seg, size_t n, Key key) {
  // Concurrent first calls all store the same pointer; relaxed is fine.
  const ItemLowerBoundFn fn = ResolveItemLowerBound();
  detail::g_item_lower_bound.store(fn, std::memory_order_relaxed);
  return fn(seg, n, key);
}
}  // namespace

const char* ActiveDispatchName() {
  ItemLowerBoundFn fn =
      detail::g_item_lower_bound.load(std::memory_order_relaxed);
  if (fn == &ResolveTrampoline) {
    fn = ResolveItemLowerBound();
    detail::g_item_lower_bound.store(fn, std::memory_order_relaxed);
  }
#if CPMA_HAVE_AVX2_IMPL
  if (fn == &Avx2ItemLowerBound) return "avx2";
#endif
  return "scalar";
}

}  // namespace cpma::hotpath
