// AVX2 non-temporal streaming copy (ISSUE 3), compiled with a
// per-function target attribute so the binary stays -march portable;
// cpu_dispatch.cc selects it via CPUID for windows larger than LLC
// (see copy.h for when streaming wins).
//
// Shape: Items are 16 bytes, so every run pointer is at least 16-byte
// aligned. vmovntdq needs 32-byte-aligned destinations; at most one
// half-vector head copy aligns dst, then the body streams four cache
// lines per iteration (independent load/store pairs overlap in the
// pipeline), and the tail falls back to memcpy.
//
// Deliberately NO sfence here: a spread issues one call per segment
// run, and draining the write-combining buffers per run would serialize
// exactly the stores this path exists to overlap. The caller publishes
// the whole window with one StreamCopyFlush (copy.h) before any other
// thread may observe the buffer.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "pma/item.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CPMA_HAVE_AVX2_COPY_IMPL 1

#include <immintrin.h>

namespace cpma::hotpath {

__attribute__((target("avx2"))) inline void Avx2StreamCopyItems(
    Item* dst, const Item* src, size_t n) {
  if (n == 0) return;  // null data() of an empty run is legal here
  char* d = reinterpret_cast<char*>(dst);
  const char* s = reinterpret_cast<const char*>(src);
  size_t bytes = n * sizeof(Item);
  if (bytes < 256) {
    // Short runs (sparse segments): alignment + fence overhead exceeds
    // any bandwidth saving.
    std::memcpy(d, s, bytes);
    return;
  }
  const size_t head = (32 - (reinterpret_cast<uintptr_t>(d) & 31)) & 31;
  if (head != 0) {  // 0 or 16 (Item alignment)
    std::memcpy(d, s, head);
    d += head;
    s += head;
    bytes -= head;
  }
  while (bytes >= 128) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 32));
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 64));
    const __m256i e =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 96));
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d), a);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d + 32), b);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d + 64), c);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d + 96), e);
    s += 128;
    d += 128;
    bytes -= 128;
  }
  while (bytes >= 32) {
    _mm256_stream_si256(
        reinterpret_cast<__m256i*>(d),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s)));
    s += 32;
    d += 32;
    bytes -= 32;
  }
  if (bytes != 0) std::memcpy(d, s, bytes);
}

}  // namespace cpma::hotpath

#else
#define CPMA_HAVE_AVX2_COPY_IMPL 0
#endif
