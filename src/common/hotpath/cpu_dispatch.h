// Runtime CPU dispatch for the hot-path search kernels (ISSUE 2).
//
// The binary stays -march portable: the AVX2 kernel is compiled with a
// per-function target attribute (search_avx2.h) and selected once at
// startup via CPUID. The selection is published through a relaxed atomic
// function pointer that starts out as a self-replacing resolver, so the
// very first call from any thread installs the final kernel; every later
// call is a plain indirect call (one relaxed load, free on x86).
//
// Forcing the portable path: set CPMA_DISABLE_AVX2 to any value other
// than "" or "0" in the environment before the first lookup. CI runs the
// unit label once per path (see .github/workflows/ci.yml).

#pragma once

#include <atomic>
#include <cstddef>

#include "pma/item.h"

namespace cpma::hotpath {

/// Signature shared by the scalar and SIMD lower-bound kernels: position
/// of the first item in the sorted array `seg[0..n)` whose key is >= key.
using ItemLowerBoundFn = size_t (*)(const Item* seg, size_t n, Key key);

/// Signature of the rebalance streaming-copy kernels (ISSUE 3): copy
/// `n` items src -> dst; dst and src never overlap (spreads write the
/// buffer, resizes a fresh region).
using ItemCopyFn = void (*)(Item* dst, const Item* src, size_t n);

/// Signature of the gate-locate kernels (ISSUE 3): index of the
/// rightmost entry of `routes[0..n)` that is <= key, or SIZE_MAX when
/// every entry is greater.
using LocateRouteFn = size_t (*)(const Key* routes, size_t n, Key key);

/// True when the CPU supports AVX2 (ignores the env override).
bool Avx2Supported();

/// True when CPMA_DISABLE_AVX2 forces the scalar path.
bool Avx2DisabledByEnv();

/// Kernel the dispatcher picks (CPUID + env override). Idempotent.
ItemLowerBoundFn ResolveItemLowerBound();
ItemCopyFn ResolveStreamCopy();
LocateRouteFn ResolveLocateRoute();

/// "avx2" or "scalar" — which kernel the hot paths use. Forces
/// resolution so the answer matches subsequent SegmentLowerBound calls.
/// All kernels share one CPUID + env decision, so the per-kernel names
/// below can only ever disagree with this one if a test swapped a
/// pointer behind the dispatcher's back.
const char* ActiveDispatchName();
const char* ActiveCopyDispatchName();
const char* ActiveLocateDispatchName();

namespace detail {
extern std::atomic<ItemLowerBoundFn> g_item_lower_bound;
extern std::atomic<ItemCopyFn> g_stream_copy;
extern std::atomic<LocateRouteFn> g_locate_route;
}  // namespace detail

/// Position of `key` in a sorted segment (lower bound). The single entry
/// point replacing the scalar copies that used to live in anonymous
/// namespaces in sequential_pma.cc and concurrent_pma.cc.
inline size_t SegmentLowerBound(const Item* seg, uint32_t card, Key key) {
  return detail::g_item_lower_bound.load(std::memory_order_relaxed)(
      seg, card, key);
}

}  // namespace cpma::hotpath
