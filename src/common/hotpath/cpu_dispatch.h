// Runtime CPU dispatch for the hot-path search kernels (ISSUE 2).
//
// The binary stays -march portable: the AVX2 kernel is compiled with a
// per-function target attribute (search_avx2.h) and selected once at
// startup via CPUID. The selection is published through a relaxed atomic
// function pointer that starts out as a self-replacing resolver, so the
// very first call from any thread installs the final kernel; every later
// call is a plain indirect call (one relaxed load, free on x86).
//
// Forcing the portable path: set CPMA_DISABLE_AVX2 to any value other
// than "" or "0" in the environment before the first lookup. CI runs the
// unit label once per path (see .github/workflows/ci.yml).

#pragma once

#include <atomic>
#include <cstddef>

#include "pma/item.h"

namespace cpma::hotpath {

/// Signature shared by the scalar and SIMD lower-bound kernels: position
/// of the first item in the sorted array `seg[0..n)` whose key is >= key.
using ItemLowerBoundFn = size_t (*)(const Item* seg, size_t n, Key key);

/// True when the CPU supports AVX2 (ignores the env override).
bool Avx2Supported();

/// True when CPMA_DISABLE_AVX2 forces the scalar path.
bool Avx2DisabledByEnv();

/// Kernel the dispatcher picks (CPUID + env override). Idempotent.
ItemLowerBoundFn ResolveItemLowerBound();

/// "avx2" or "scalar" — which kernel the hot paths use. Forces
/// resolution so the answer matches subsequent SegmentLowerBound calls.
const char* ActiveDispatchName();

namespace detail {
extern std::atomic<ItemLowerBoundFn> g_item_lower_bound;
}  // namespace detail

/// Position of `key` in a sorted segment (lower bound). The single entry
/// point replacing the scalar copies that used to live in anonymous
/// namespaces in sequential_pma.cc and concurrent_pma.cc.
inline size_t SegmentLowerBound(const Item* seg, uint32_t card, Key key) {
  return detail::g_item_lower_bound.load(std::memory_order_relaxed)(
      seg, card, key);
}

}  // namespace cpma::hotpath
