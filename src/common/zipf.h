// Zipfian key distribution over the range [1, n], with skew parameter
// alpha (the paper uses alpha in {1, 1.5, 2} over n = 2^27).
//
// Uses the rejection-inversion method of Hörmann & Derflinger (1996),
// which samples in O(1) without precomputing the harmonic table, so large
// ranges (2^27) initialise instantly. The same algorithm underlies
// std::zipf-like generators in YCSB-style harnesses.

#pragma once

#include <cmath>
#include <cstdint>
#include <optional>

#include "common/random.h"
#include "common/status.h"

namespace cpma {

class ZipfDistribution {
 public:
  /// n: number of distinct values (>= 1); alpha: skew exponent (> 0).
  ZipfDistribution(uint64_t n, double alpha) : n_(n), alpha_(alpha) {
    CPMA_CHECK(n >= 1);
    CPMA_CHECK(alpha > 0.0);
    h_x1_ = H(1.5) - 1.0;
    h_n_ = H(static_cast<double>(n_) + 0.5);
    s_ = 2.0 - HInverse(H(2.5) - HIntegerApprox(2.0));
    if (!(s_ > 0)) s_ = 1e-8;
  }

  /// Returns a value in [1, n]; value 1 is the most frequent.
  uint64_t Sample(Random& rng) const {
    // Rejection-inversion loop; expected < 2 iterations.
    for (;;) {
      const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
      const double x = HInverse(u);
      uint64_t k = static_cast<uint64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      const double kd = static_cast<double>(k);
      if (kd - x <= s_ || u >= H(kd + 0.5) - HIntegerApprox(kd)) {
        return k;
      }
    }
  }

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  // H(x) = integral of x^-alpha: (x^(1-alpha) - 1)/(1-alpha), with the
  // alpha == 1 limit log(x).
  double H(double x) const {
    if (std::fabs(alpha_ - 1.0) < 1e-9) return std::log(x);
    return (std::pow(x, 1.0 - alpha_) - 1.0) / (1.0 - alpha_);
  }

  double HInverse(double u) const {
    if (std::fabs(alpha_ - 1.0) < 1e-9) return std::exp(u);
    return std::pow(1.0 + u * (1.0 - alpha_), 1.0 / (1.0 - alpha_));
  }

  // x^-alpha, the probability mass (unnormalised) at integer x.
  double HIntegerApprox(double x) const { return std::pow(x, -alpha_); }

  uint64_t n_;
  double alpha_;
  double h_x1_;
  double h_n_;
  double s_;
};

/// Uniform distribution over [1, n]; shares ZipfDistribution's interface
/// so workload code can hold either behind KeyDistribution.
class UniformDistribution {
 public:
  explicit UniformDistribution(uint64_t n) : n_(n) { CPMA_CHECK(n >= 1); }
  uint64_t Sample(Random& rng) const { return 1 + rng.NextBounded(n_); }
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
};

/// Tagged union over the two workload distributions used in the paper.
class KeyDistribution {
 public:
  static KeyDistribution Uniform(uint64_t n) {
    KeyDistribution d;
    d.uniform_ = UniformDistribution(n);
    d.is_zipf_ = false;
    return d;
  }
  static KeyDistribution Zipf(uint64_t n, double alpha) {
    KeyDistribution d;
    d.zipf_.emplace(n, alpha);
    d.is_zipf_ = true;
    return d;
  }

  uint64_t Sample(Random& rng) const {
    return is_zipf_ ? zipf_->Sample(rng) : uniform_.Sample(rng);
  }
  bool is_zipf() const { return is_zipf_; }

 private:
  KeyDistribution() : uniform_(1) {}

  UniformDistribution uniform_;
  // Optional because ZipfDistribution has no default constructor.
  std::optional<ZipfDistribution> zipf_;
  bool is_zipf_ = false;
};

}  // namespace cpma
