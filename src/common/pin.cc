#include "common/pin.h"

#include <algorithm>
#include <cstdio>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace cpma {

namespace {

#if defined(__linux__)

/// Read a small non-negative integer from a sysfs file; -1 on any
/// failure (file absent, unreadable, not a number). Topology files hold
/// one decimal id per file.
int ReadSysfsInt(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return -1;
  int v = -1;
  const int got = std::fscanf(f, "%d", &v);
  std::fclose(f);
  return (got == 1 && v >= 0) ? v : -1;
}

CpuTopology DetectTopology() {
  CpuTopology topo;
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) {
    return topo;  // no affinity control: empty pin order, no-op pinning
  }

  struct CpuInfo {
    int cpu;
    int package;
    int core;
  };
  std::vector<CpuInfo> cpus;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (!CPU_ISSET(c, &allowed)) continue;
    char path[128];
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/cpu/cpu%d/topology/core_id", c);
    const int core = ReadSysfsInt(path);
    std::snprintf(
        path, sizeof(path),
        "/sys/devices/system/cpu/cpu%d/topology/physical_package_id", c);
    const int pkg = ReadSysfsInt(path);
    // Unreadable topology (sysfs not mounted, exotic container): treat
    // the CPU as its own core so it still participates in the pin order
    // and never aliases a real (package, core) pair.
    if (core < 0 || pkg < 0) {
      cpus.push_back({c, -1, c});
    } else {
      cpus.push_back({c, pkg, core});
    }
  }
  topo.num_cpus = static_cast<int>(cpus.size());
  if (cpus.empty()) return topo;

  // Group SMT siblings: stable-sort by (package, core) keeps the
  // enumeration order *within* a core (cpu id ascending), then a sweep
  // assigns each CPU its sibling rank. Pin order = rank-0 CPUs of every
  // core first, then rank-1, ... — i.e. all distinct physical cores
  // before any hyperthread pair shares one.
  std::stable_sort(cpus.begin(), cpus.end(),
                   [](const CpuInfo& a, const CpuInfo& b) {
                     if (a.package != b.package) return a.package < b.package;
                     if (a.core != b.core) return a.core < b.core;
                     return a.cpu < b.cpu;
                   });
  std::vector<int> rank(cpus.size(), 0);
  int max_rank = 0;
  for (size_t i = 1; i < cpus.size(); ++i) {
    if (cpus[i].package == cpus[i - 1].package &&
        cpus[i].core == cpus[i - 1].core) {
      rank[i] = rank[i - 1] + 1;
      max_rank = std::max(max_rank, rank[i]);
    } else {
      rank[i] = 0;
    }
  }
  int cores = 0;
  for (size_t i = 0; i < cpus.size(); ++i) {
    if (rank[i] == 0) ++cores;
  }
  topo.num_cores = cores;
  topo.smt = max_rank > 0;
  topo.pin_order.reserve(cpus.size());
  for (int r = 0; r <= max_rank; ++r) {
    for (size_t i = 0; i < cpus.size(); ++i) {
      if (rank[i] == r) topo.pin_order.push_back(cpus[i].cpu);
    }
  }
  return topo;
}

#else  // !__linux__

CpuTopology DetectTopology() { return CpuTopology{}; }

#endif

}  // namespace

const CpuTopology& Topology() {
  // Magic-static: detection runs once, first use; concurrent first
  // callers are serialized by the C++ static-init guarantee.
  static const CpuTopology topo = DetectTopology();
  return topo;
}

bool PinThisThread(unsigned slot) {
#if defined(__linux__)
  const CpuTopology& topo = Topology();
  if (topo.pin_order.empty()) return false;
  const int cpu =
      topo.pin_order[slot % static_cast<unsigned>(topo.pin_order.size())];
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)slot;
  return false;
#endif
}

bool PinToCpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

int PinCpuForSlot(unsigned slot) {
  const CpuTopology& topo = Topology();
  if (topo.pin_order.empty()) return -1;
  return topo.pin_order[slot % static_cast<unsigned>(topo.pin_order.size())];
}

std::string TopologySummary() {
  const CpuTopology& topo = Topology();
  std::string s = "cpus=" + std::to_string(topo.num_cpus) +
                  " cores=" + std::to_string(topo.num_cores) +
                  " smt=" + (topo.smt ? "on" : "off");
  if (!topo.pin_order.empty()) {
    s += " order=";
    const size_t shown = std::min<size_t>(topo.pin_order.size(), 16);
    for (size_t i = 0; i < shown; ++i) {
      if (i > 0) s += ',';
      s += std::to_string(topo.pin_order[i]);
    }
    if (shown < topo.pin_order.size()) s += ",...";
  }
  return s;
}

}  // namespace cpma
