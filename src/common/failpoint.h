// Deterministic failpoint framework (tentpole of the robustness PR).
//
// A failpoint is a named site in fallible code (syscall wrappers,
// allocations, spawn paths) that can be armed to report failure without
// the underlying operation actually failing. Sites are evaluated with
//
//     if (CPMA_FAILPOINT("rewiring.memfd") || real_memfd_failed) { ... }
//
// so the degraded path downstream of the site is exactly the one a real
// failure would take. Policies per site:
//
//     off          never fires (same as not configured)
//     always       fires on every hit
//     once         fires on the first hit only (= times:1)
//     times:N      fires on the first N hits, then recovers
//     nth:N        fires on every Nth hit (hit N, 2N, 3N, ...)
//     prob:P[:S]   fires with probability P in [0,1], seeded with S
//                  (default seed 0) — deterministic given the per-site
//                  hit sequence
//
// Any policy may carry a `!crash` action suffix ("site=nth:3!crash"):
// when the site fires, instead of reporting failure to the caller the
// process terminates immediately via _exit(kCrashExitCode) — no atexit
// handlers, no stdio flush, no destructors, i.e. the closest userspace
// approximation of pulling the plug at that instruction. This turns
// every instrumented site (remap publication, region creation, each
// persist-layer syscall) into a crash site for the fork-based
// crash-recovery harness (ISSUE 9). '!' is used because ';' and ','
// are both clause separators in this grammar.
//
// Configuration comes from the CPMA_FAILPOINTS environment variable
// ("site=spec;site=spec", parsed once at first evaluation; ',' also
// accepted as a separator) or from the programmatic API below (tests,
// chaos soak conductor). Both may target sites that do not exist — the
// spec simply never matches a hit.
//
// Cost model: every site first checks a single relaxed atomic counter of
// armed sites (one load + predicted-not-taken branch); the registry
// lookup happens only while at least one site is armed. All instrumented
// sites are slow paths (region creation, remap publication, rebalance
// allocation, thread spawn, GC slot growth) — nothing per-element.
//
// The whole subsystem is compiled out when the build sets
// -DCPMA_FAILPOINTS_ENABLED=0 (CMake option CPMA_ENABLE_FAILPOINTS=OFF):
// CPMA_FAILPOINT(site) becomes a constant false and the API below turns
// into no-op inlines, so shipping binaries carry no registry at all.

#pragma once

#include <cstdint>

#ifndef CPMA_FAILPOINTS_ENABLED
#define CPMA_FAILPOINTS_ENABLED 1
#endif

#if CPMA_FAILPOINTS_ENABLED

#include <atomic>
#include <string>
#include <vector>

namespace cpma {
namespace failpoint {

/// True in builds that carry the registry (tests GTEST_SKIP otherwise).
inline constexpr bool kCompiledIn = true;

/// Exit code used by the `!crash` action; the crash harness parent
/// asserts on it to distinguish an injected crash from a real abort.
inline constexpr int kCrashExitCode = 87;

namespace internal {
// Number of currently armed sites; the fast-path gate for every
// CPMA_FAILPOINT evaluation.
extern std::atomic<int> g_armed;
}  // namespace internal

inline bool Armed() {
  return internal::g_armed.load(std::memory_order_relaxed) != 0;
}

/// Slow path: look up `site` in the registry and apply its policy.
/// Returns true iff the site should report failure for this hit.
bool Evaluate(const char* site);

/// Arm `site` with a policy spec (grammar above). Returns false and
/// leaves the site unchanged if the spec does not parse.
bool Set(const char* site, const char* spec);

/// Disarm one site / all sites. Hit and fire counters are kept (they
/// describe history, not configuration); ClearAll() resets them too.
void Clear(const char* site);
void ClearAll();

/// Parse a full "site=spec;site=spec" config string (the CPMA_FAILPOINTS
/// grammar). Returns false if any clause failed to parse; valid clauses
/// before and after a bad one are still applied.
bool ConfigureFromString(const char* config);

/// Times `site` fired (reported failure) / was evaluated.
uint64_t Fires(const char* site);
uint64_t Hits(const char* site);

/// Total fires across all sites since process start (bench observability
/// — a fault-free run must report 0).
uint64_t TotalFires();

/// Name of the most recent site that fired on the calling thread, or
/// nullptr. The CPMA_CHECK abort handler prints this so a crash in a
/// fault-injection run is attributable to the injected fault.
const char* LastFired();

/// Names of all sites ever configured or evaluated (diagnostics).
std::vector<std::string> KnownSites();

}  // namespace failpoint
}  // namespace cpma

#define CPMA_FAILPOINT(site) \
  (::cpma::failpoint::Armed() && ::cpma::failpoint::Evaluate(site))

#else  // !CPMA_FAILPOINTS_ENABLED

#include <string>
#include <vector>

namespace cpma {
namespace failpoint {

inline constexpr bool kCompiledIn = false;
inline constexpr int kCrashExitCode = 87;

inline bool Armed() { return false; }
inline bool Evaluate(const char*) { return false; }
inline bool Set(const char*, const char*) { return false; }
inline void Clear(const char*) {}
inline void ClearAll() {}
inline bool ConfigureFromString(const char*) { return false; }
inline uint64_t Fires(const char*) { return 0; }
inline uint64_t Hits(const char*) { return 0; }
inline uint64_t TotalFires() { return 0; }
inline const char* LastFired() { return nullptr; }
inline std::vector<std::string> KnownSites() { return {}; }

}  // namespace failpoint
}  // namespace cpma

#define CPMA_FAILPOINT(site) (false)

#endif  // CPMA_FAILPOINTS_ENABLED
