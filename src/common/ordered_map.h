// Common interface implemented by the concurrent PMA and by every
// competitor baseline, mirroring the paper's evaluation contract:
// 8-byte integer keys and values, point updates, point lookups and
// full sorted scans, all callable concurrently from many threads.

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"

namespace cpma {

using Key = uint64_t;
using Value = uint64_t;

/// Minimum/maximum usable keys (inclusive). UINT64_MAX is reserved as an
/// internal sentinel (routing tables and fence keys), so user keys span
/// [0, UINT64_MAX - 1]. The paper's workloads use keys in [1, 2^27].
constexpr Key kKeyMin = 0;
constexpr Key kKeyMax = UINT64_MAX - 1;

/// Callback for range scans: invoked per element in ascending key order;
/// return false to stop early.
using ScanCallback = std::function<bool(Key, Value)>;

class OrderedMap {
 public:
  virtual ~OrderedMap() = default;

  /// Insert key -> value. Duplicate keys overwrite (upsert), matching the
  /// paper's key/value pair workload. May be asynchronous for structures
  /// with combining enabled; Flush() forces completion.
  virtual void Insert(Key key, Value value) = 0;

  /// Remove key if present. Asynchronous like Insert.
  virtual void Remove(Key key) = 0;

  /// Point lookup. Returns true and sets *value if found.
  virtual bool Find(Key key, Value* value) const = 0;

  /// Scan all elements in ascending key order. Returns the sum of the
  /// visited values (the paper's scan workload folds all elements; the
  /// sum also defeats dead-code elimination in benchmarks).
  virtual uint64_t SumAll() const = 0;

  /// Scan [min, max] inclusive in ascending key order.
  virtual void Scan(Key min, Key max, const ScanCallback& cb) const = 0;

  /// Number of elements (post-Flush exact; otherwise approximate for
  /// asynchronous structures).
  virtual size_t Size() const = 0;

  /// Wait until all asynchronously queued updates are applied. No-op for
  /// synchronous structures.
  virtual void Flush() {}

  virtual std::string Name() const = 0;
};

}  // namespace cpma
