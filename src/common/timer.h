// Wall-clock timing helpers for the benchmark harness.

#pragma once

#include <chrono>
#include <cstdint>

namespace cpma {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  uint64_t ElapsedMillis() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Monotonic milliseconds since an arbitrary origin; used for the
/// t_delay throttle on global rebalances (paper §3.5).
inline int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace cpma
