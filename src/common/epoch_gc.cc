#include "common/epoch_gc.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/failpoint.h"

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace cpma {

namespace {

// Asymmetric heavy fence (hazard-pointer / RCU style): registering for
// membarrier(PRIVATE_EXPEDITED) lets the collector interrupt every
// running thread of the process with a full barrier, so readers can
// publish their epoch pins with plain release stores instead of paying
// a seq_cst fence per operation. Values from <linux/membarrier.h>,
// spelled out so the build needs no kernel headers.
#if defined(__linux__) && defined(__NR_membarrier)
constexpr int kMembarrierRegisterPrivateExpedited = 1 << 4;
constexpr int kMembarrierPrivateExpedited = 1 << 3;

bool RegisterAsymmetricFence() {
  return syscall(__NR_membarrier, kMembarrierRegisterPrivateExpedited, 0,
                 0) == 0;
}
#else
bool RegisterAsymmetricFence() { return false; }
#endif

// Strict env parse (same contract as CPMA_OPTIMISTIC_RETRIES in
// concurrent_pma.cc): malformed values warn once on stderr and fall back
// to the built-in default rather than silently misconfiguring.
size_t EnvSizeOr(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0') {
    std::fprintf(stderr, "[cpma] ignoring malformed %s=\"%s\"\n", name, env);
    return fallback;
  }
  return static_cast<size_t>(v);
}

}  // namespace

const bool EpochGC::kAsymmetricFence = RegisterAsymmetricFence();

void EpochGC::HeavyFence() {
#if defined(__linux__) && defined(__NR_membarrier)
  if (kAsymmetricFence) {
    if (syscall(__NR_membarrier, kMembarrierPrivateExpedited, 0, 0) == 0) {
      return;
    }
  }
#endif
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

std::mutex& EpochGC::AliveMutex() {
  static std::mutex m;
  return m;
}

std::vector<EpochGC*>& EpochGC::AliveSet() {
  static std::vector<EpochGC*> v;
  return v;
}

uint64_t EpochGC::NextInstanceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1);
}

bool EpochGC::IsAlive(EpochGC* gc, uint64_t instance_id) {
  std::lock_guard<std::mutex> g(AliveMutex());
  auto& alive = AliveSet();
  return std::find(alive.begin(), alive.end(), gc) != alive.end() &&
         gc->instance_id_ == instance_id;
}

EpochGC::EpochGC(const Options& opts)
    : instance_id_(NextInstanceId()), opts_(opts) {
  opts_.count_watermark =
      EnvSizeOr("CPMA_EBR_COUNT_WATERMARK", opts_.count_watermark);
  opts_.bytes_watermark =
      EnvSizeOr("CPMA_EBR_BYTES_WATERMARK", opts_.bytes_watermark);
  opts_.collector_period = std::chrono::milliseconds(EnvSizeOr(
      "CPMA_EBR_COLLECT_MS",
      static_cast<size_t>(opts_.collector_period.count())));
  if (opts_.count_watermark == 0) opts_.count_watermark = 1;
  if (opts_.bytes_watermark == 0) opts_.bytes_watermark = 1;
  if (opts_.collector_period.count() <= 0) {
    opts_.collector_period = std::chrono::milliseconds(10);
  }
  size_t chunks =
      (std::max<size_t>(opts_.initial_threads, 1) + kSlotsPerChunk - 1) /
      kSlotsPerChunk;
  chunks = std::min(chunks, kMaxChunks);
  for (size_t c = 0; c < chunks; ++c) {
    chunks_[c].store(new SlotChunk(), std::memory_order_release);
  }
  num_chunks_.store(chunks, std::memory_order_release);
  std::lock_guard<std::mutex> g(AliveMutex());
  AliveSet().push_back(this);
}

EpochGC::~EpochGC() {
  StopBackgroundCollector();
  // Free everything left; no clients may be active at destruction.
  CollectAll();
  {
    std::lock_guard<std::mutex> g(AliveMutex());
    auto& alive = AliveSet();
    alive.erase(std::remove(alive.begin(), alive.end(), this), alive.end());
  }
  const size_t n = num_chunks_.load(std::memory_order_acquire);
  for (size_t c = 0; c < n; ++c) {
    SlotChunk* chunk = chunks_[c].load(std::memory_order_acquire);
    if (chunk != &emergency_chunk_) delete chunk;
  }
}

EpochSlot* EpochGC::TryClaimSlot() {
  EpochSlot* claimed = nullptr;
  ForEachSlot([&](EpochSlot& s) {
    if (claimed != nullptr) return;
    bool expected = false;
    if (s.in_use.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
      claimed = &s;
    }
  });
  return claimed;
}

EpochSlot* EpochGC::RegisterThread() {
  if (EpochSlot* s = TryClaimSlot()) return s;
  for (;;) {
    {
      std::lock_guard<std::mutex> g(grow_mu_);
      // Another thread may have grown the table while we waited for the
      // lock.
      if (EpochSlot* s = TryClaimSlot()) return s;
      const size_t n = num_chunks_.load(std::memory_order_relaxed);
      SlotChunk* chunk = nullptr;
      if (n < kMaxChunks) {
        if (!CPMA_FAILPOINT("epoch_gc.slot_chunk")) {
          chunk = new (std::nothrow) SlotChunk();
        }
        if (chunk == nullptr && !emergency_chunk_used_) {
          // Chunk allocation failed (real bad_alloc or injected fault):
          // install the embedded reserve so registration still succeeds
          // under memory pressure.
          std::fprintf(stderr,
                       "cpma: EpochGC slot-chunk allocation failed; "
                       "installing emergency reserve chunk\n");
          chunk = &emergency_chunk_;
          emergency_chunk_used_ = true;
        }
      }
      if (chunk != nullptr) {
        chunk->slots[0].in_use.store(true, std::memory_order_relaxed);
        chunks_[n].store(chunk, std::memory_order_release);
        num_chunks_.store(n + 1, std::memory_order_release);
        return &chunk->slots[0];
      }
    }
    // Last rung: the table is at capacity (or growth keeps failing with
    // the reserve spent). Wait for an exiting thread to recycle its slot
    // instead of aborting — registration is a slow path and the process
    // staying up beats a crash at the thread ceiling.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (EpochSlot* s = TryClaimSlot()) return s;
  }
}

void EpochGC::Retire(std::function<void()> deleter, size_t bytes) {
  auto* holder = new std::function<void()>(std::move(deleter));
  if (bytes == 0) bytes = sizeof(std::function<void()>);
  RetireImpl(
      [](void* p) {
        auto* fn = static_cast<std::function<void()>*>(p);
        (*fn)();
        delete fn;
      },
      holder, bytes);
}

void EpochGC::RetireImpl(void (*free_fn)(void*), void* object, size_t bytes) {
  EpochSlot* slot = LocalSlot();
  auto* node = new GarbageNode;
  node->bytes = bytes;
  node->free_fn = free_fn;
  node->object = object;
  node->next = nullptr;
  // The fence orders the caller's unlink (making `object` unreachable)
  // before the epoch stamp: any reader that misses the unlink must have
  // published a slot epoch <= the stamp (see header protocol comment).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  node->epoch = global_epoch_.load(std::memory_order_seq_cst);

  size_t local_count, local_bytes;
  {
    std::lock_guard<std::mutex> g(slot->limbo_mu);
    if (slot->limbo_tail != nullptr) {
      slot->limbo_tail->next = node;
    } else {
      slot->limbo_head = node;
    }
    slot->limbo_tail = node;
    local_count = ++slot->limbo_count;
    local_bytes = slot->limbo_bytes += bytes;
  }

  pending_count_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t now_pending =
      pending_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t hwm = pending_bytes_hwm_.load(std::memory_order_relaxed);
  while (now_pending > hwm &&
         !pending_bytes_hwm_.compare_exchange_weak(
             hwm, now_pending, std::memory_order_relaxed)) {
  }
  retired_count_.fetch_add(1, std::memory_order_relaxed);
  retired_bytes_.fetch_add(bytes, std::memory_order_relaxed);

  if (local_count >= opts_.count_watermark ||
      local_bytes >= opts_.bytes_watermark) {
    // Watermark crossed: advance (so this backlog becomes reclaimable the
    // moment readers drain) and hand the drain to the collector thread,
    // or do it inline when none is running.
    TryAdvanceEpoch();
    bool collector_running;
    {
      std::lock_guard<std::mutex> g(collector_mutex_);
      collector_running = collector_.joinable();
    }
    if (collector_running) {
      KickCollector();
    } else {
      Collect();
    }
  }
}

bool EpochGC::TryAdvanceEpoch() {
  uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  bool lagging = false;
  ForEachSlot([&](EpochSlot& s) {
    if (!s.in_use.load(std::memory_order_acquire)) return;
    const uint64_t se = s.epoch.load(std::memory_order_acquire);
    if (se != EpochSlot::kIdle && se < e) lagging = true;
  });
  if (lagging) return false;
  if (global_epoch_.compare_exchange_strong(e, e + 1,
                                            std::memory_order_seq_cst)) {
    epoch_advances_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

uint64_t EpochGC::MinActiveEpoch() const {
  // Snapshot the global epoch first: anything retired after this point
  // is newer than what we will free.
  uint64_t min_epoch = global_epoch_.load(std::memory_order_seq_cst);
  ForEachSlot([&](EpochSlot& s) {
    if (!s.in_use.load(std::memory_order_acquire)) return;
    const uint64_t e = s.epoch.load(std::memory_order_acquire);
    if (e != EpochSlot::kIdle && e < min_epoch) min_epoch = e;
  });
  return min_epoch;
}

size_t EpochGC::Collect() {
  // Opportunistic advance first so garbage stamped at the current epoch
  // becomes reclaimable in this very pass when no reader lags.
  TryAdvanceEpoch();
  // Order the slot scan after any reader's pin publication — the
  // asymmetric half of the argument in the header comment (membarrier
  // when available, seq_cst fence otherwise).
  HeavyFence();
  const uint64_t min_epoch = MinActiveEpoch();

  GarbageNode* out_head = nullptr;
  GarbageNode* out_tail = nullptr;
  ForEachSlot([&](EpochSlot& s) {
    std::lock_guard<std::mutex> g(s.limbo_mu);
    GarbageNode* n = s.limbo_head;
    if (n == nullptr || n->epoch >= min_epoch) return;
    // Detach the freeable prefix (the list is epoch-sorted by
    // construction: appends stamp the monotone global epoch).
    GarbageNode* first = n;
    GarbageNode* last = nullptr;
    size_t count = 0, bytes = 0;
    while (n != nullptr && n->epoch < min_epoch) {
      last = n;
      ++count;
      bytes += n->bytes;
      n = n->next;
    }
    s.limbo_head = n;
    if (n == nullptr) s.limbo_tail = nullptr;
    s.limbo_count -= count;
    s.limbo_bytes -= bytes;
    last->next = nullptr;
    if (out_tail != nullptr) {
      out_tail->next = first;
    } else {
      out_head = first;
    }
    out_tail = last;
  });

  // Free outside every lock: deleters may be arbitrarily expensive
  // (delta-chain walks, multi-MB snapshot frees).
  size_t freed = 0, freed_bytes = 0;
  for (GarbageNode* n = out_head; n != nullptr;) {
    GarbageNode* next = n->next;
    n->free_fn(n->object);
    freed_bytes += n->bytes;
    delete n;
    n = next;
    ++freed;
  }
  if (freed != 0) {
    pending_count_.fetch_sub(freed, std::memory_order_relaxed);
    pending_bytes_.fetch_sub(freed_bytes, std::memory_order_relaxed);
    freed_count_.fetch_add(freed, std::memory_order_relaxed);
    freed_bytes_.fetch_add(freed_bytes, std::memory_order_relaxed);
  }
  collections_.fetch_add(1, std::memory_order_relaxed);
  return freed;
}

size_t EpochGC::CollectAll() {
  GarbageNode* out_head = nullptr;
  GarbageNode* out_tail = nullptr;
  ForEachSlot([&](EpochSlot& s) {
    std::lock_guard<std::mutex> g(s.limbo_mu);
    if (s.limbo_head == nullptr) return;
    if (out_tail != nullptr) {
      out_tail->next = s.limbo_head;
    } else {
      out_head = s.limbo_head;
    }
    out_tail = s.limbo_tail;
    s.limbo_head = nullptr;
    s.limbo_tail = nullptr;
    s.limbo_count = 0;
    s.limbo_bytes = 0;
  });
  size_t freed = 0, freed_bytes = 0;
  for (GarbageNode* n = out_head; n != nullptr;) {
    GarbageNode* next = n->next;
    n->free_fn(n->object);
    freed_bytes += n->bytes;
    delete n;
    n = next;
    ++freed;
  }
  if (freed != 0) {
    pending_count_.fetch_sub(freed, std::memory_order_relaxed);
    pending_bytes_.fetch_sub(freed_bytes, std::memory_order_relaxed);
    freed_count_.fetch_add(freed, std::memory_order_relaxed);
    freed_bytes_.fetch_add(freed_bytes, std::memory_order_relaxed);
  }
  return freed;
}

EpochGCStats EpochGC::Stats() const {
  EpochGCStats s;
  s.pending_count = pending_count_.load(std::memory_order_relaxed);
  s.pending_bytes = pending_bytes_.load(std::memory_order_relaxed);
  s.retired_count = retired_count_.load(std::memory_order_relaxed);
  s.retired_bytes = retired_bytes_.load(std::memory_order_relaxed);
  s.retired_bytes_hwm = pending_bytes_hwm_.load(std::memory_order_relaxed);
  s.freed_count = freed_count_.load(std::memory_order_relaxed);
  s.freed_bytes = freed_bytes_.load(std::memory_order_relaxed);
  s.epoch_advances = epoch_advances_.load(std::memory_order_relaxed);
  s.collections = collections_.load(std::memory_order_relaxed);
  s.global_epoch = global_epoch_.load(std::memory_order_relaxed);
  return s;
}

void EpochGC::StartBackgroundCollector(std::chrono::milliseconds period) {
  std::lock_guard<std::mutex> g(collector_mutex_);
  if (collector_.joinable()) return;
  if (period.count() <= 0) period = opts_.collector_period;
  collector_stop_ = false;
  collector_kick_ = false;
  collector_ = std::thread([this, period] {
    std::unique_lock<std::mutex> lk(collector_mutex_);
    while (!collector_stop_) {
      collector_cv_.wait_for(lk, period, [this] {
        return collector_stop_ || collector_kick_;
      });
      if (collector_stop_) break;
      collector_kick_ = false;
      lk.unlock();
      Collect();
      lk.lock();
      ++collector_passes_;
      pass_cv_.notify_all();
    }
  });
}

void EpochGC::StopBackgroundCollector() {
  {
    std::lock_guard<std::mutex> g(collector_mutex_);
    if (!collector_.joinable()) return;
    collector_stop_ = true;
  }
  collector_cv_.notify_all();
  collector_.join();
  std::lock_guard<std::mutex> g(collector_mutex_);
  collector_ = std::thread();
  pass_cv_.notify_all();
}

void EpochGC::KickCollector() {
  {
    std::lock_guard<std::mutex> g(collector_mutex_);
    if (!collector_.joinable()) return;
    collector_kick_ = true;
  }
  collector_cv_.notify_all();
}

uint64_t EpochGC::CollectorPasses() const {
  std::lock_guard<std::mutex> g(collector_mutex_);
  return collector_passes_;
}

void EpochGC::WaitForCollectorPasses(uint64_t target) {
  std::unique_lock<std::mutex> lk(collector_mutex_);
  CPMA_CHECK_MSG(collector_.joinable(),
                 "WaitForCollectorPasses: background collector not running");
  while (collector_passes_ < target) {
    if (!collector_.joinable()) break;  // stopped mid-wait: best effort
    collector_kick_ = true;
    collector_cv_.notify_all();
    pass_cv_.wait(lk);
  }
}

}  // namespace cpma
