// Tagged memory accesses for the optimistic (seqlock) read path (§3.1
// extension, ISSUE 4).
//
// An optimistic reader runs on storage that a latched writer may be
// mutating at the same time; the gate's version word decides afterwards
// whether the data it read was stable. Two requirements follow:
//
//  1. Every racing access must be *word-atomic* so a torn read yields
//     some previously-stored word, never a wild value — indices computed
//     from it stay bounded and the version check discards the result.
//  2. The race must be visible to ThreadSanitizer as a pair of atomic
//     accesses, not silenced with suppressions: `ctest -L concurrent`
//     under the tsan preset runs with the optimistic path enabled.
//
// TaggedLoad/TaggedStore are always compiled as relaxed atomics: on every
// target we support a relaxed word load/store is the same instruction as
// a plain one, so the production binary is unchanged and TSan sees
// atomics. The *bulk* helpers (copy/move) cannot stay word-atomic and
// fast at once, so they are memcpy/memmove in production — the validated
// retry makes torn data harmless, and per-word tearing is exactly what
// the word-aligned copies produce — and per-word atomic loops under TSan
// so the instrumented build is data-race-free by the letter of the
// memory model. The memory-ordering argument for the surrounding
// version-word protocol lives in common/latches.h (SeqVersion).

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

// CPMA_TSAN: 1 when compiling under ThreadSanitizer (gcc defines
// __SANITIZE_THREAD__; clang exposes __has_feature(thread_sanitizer)).
#if defined(__SANITIZE_THREAD__)
#define CPMA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CPMA_TSAN 1
#endif
#endif
#ifndef CPMA_TSAN
#define CPMA_TSAN 0
#endif

namespace cpma {

/// Relaxed atomic load of a word that may be concurrently stored by a
/// latched mutator. Compiles to a plain load.
template <typename T>
inline T TaggedLoad(const T* p) {
  static_assert(std::is_trivially_copyable<T>::value && sizeof(T) <= 8,
                "tagged accesses are single words");
  return __atomic_load_n(p, __ATOMIC_RELAXED);
}

/// Relaxed atomic store paired with TaggedLoad. Compiles to a plain
/// store; callers must hold the location's gate in WRITE/REBAL state so
/// the gate version word is odd while the store is in flight.
template <typename T>
inline void TaggedStore(T* p, T v) {
  static_assert(std::is_trivially_copyable<T>::value && sizeof(T) <= 8,
                "tagged accesses are single words");
  __atomic_store_n(p, v, __ATOMIC_RELAXED);
}

/// Bulk copy dst <- src of `bytes` (multiple of 8, ranges disjoint) that
/// an optimistic reader may be reading. memcpy in production (see file
/// comment), per-word atomic stores under TSan.
inline void TaggedCopyWords(void* dst, const void* src, size_t bytes) {
#if CPMA_TSAN
  auto* d = static_cast<uint64_t*>(dst);
  const auto* s = static_cast<const uint64_t*>(src);
  for (size_t i = 0; i < bytes / 8; ++i) {
    __atomic_store_n(d + i, s[i], __ATOMIC_RELAXED);
  }
#else
  std::memcpy(dst, src, bytes);
#endif
}

/// Overlap-safe variant (segment shifts). memmove in production,
/// direction-aware per-word atomic loop under TSan.
inline void TaggedMoveWords(void* dst, const void* src, size_t bytes) {
#if CPMA_TSAN
  auto* d = static_cast<uint64_t*>(dst);
  const auto* s = static_cast<const uint64_t*>(src);
  const size_t n = bytes / 8;
  if (d < s) {
    for (size_t i = 0; i < n; ++i) {
      __atomic_store_n(d + i, s[i], __ATOMIC_RELAXED);
    }
  } else {
    for (size_t i = n; i-- > 0;) {
      __atomic_store_n(d + i, s[i], __ATOMIC_RELAXED);
    }
  }
#else
  std::memmove(dst, src, bytes);
#endif
}

/// Reader-side bulk copy out of racing storage into private memory
/// (optimistic scans staging a chunk before validation). memcpy in
/// production, per-word atomic loads under TSan.
inline void TaggedReadWords(void* dst, const void* src, size_t bytes) {
#if CPMA_TSAN
  auto* d = static_cast<uint64_t*>(dst);
  const auto* s = static_cast<const uint64_t*>(src);
  for (size_t i = 0; i < bytes / 8; ++i) {
    d[i] = __atomic_load_n(s + i, __ATOMIC_RELAXED);
  }
#else
  std::memcpy(dst, src, bytes);
#endif
}

}  // namespace cpma
