// Thread-to-core pinning (best effort). The paper pins all threads to a
// single NUMA node; in a container we pin to distinct logical CPUs when
// the OS allows it and silently continue otherwise.

#pragma once

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace cpma {

/// Pin the calling thread to logical CPU `cpu` (mod hardware concurrency).
/// Returns true on success.
inline bool PinThisThread(unsigned cpu) {
#if defined(__linux__)
  unsigned n = std::thread::hardware_concurrency();
  if (n == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % n, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace cpma
