// Thread-to-core pinning (best effort), topology-aware since ISSUE 8.
//
// The paper pins all threads to a single NUMA node; in a container we
// must work with whatever CPU set the OS grants. The old implementation
// pinned slot s to logical CPU `s % hardware_concurrency()`, which is
// wrong twice over on restricted or non-contiguous CPU sets (cgroup
// cpusets, taskset, offlined cores): hardware_concurrency() reports the
// machine, not the allowed mask, and the raw modulo can land on a CPU
// the process may not run on — pthread_setaffinity_np then fails and
// every "pinned" thread silently floats.
//
// The upgrade reads the actually-allowed mask (sched_getaffinity) and
// the sysfs topology (core_id / physical_package_id per logical CPU),
// then builds a *pin order*: one logical CPU per distinct physical core
// first — round-robin across packages — and only then the remaining SMT
// siblings. Slot s pins to pin_order[s % n], so the first `num_cores`
// bench/worker threads each own a physical core before any two share
// one. The detected placement is exposed for bench JSON records
// (TopologySummary / PinCpuForSlot), so a measurement on a weird host
// carries the evidence of where its threads actually ran.

#pragma once

#include <string>
#include <vector>

namespace cpma {

/// The process' CPU placement universe, detected once (first use) from
/// sched_getaffinity + /sys/devices/system/cpu/*/topology. Immutable
/// afterwards; cheap to hand around by reference.
struct CpuTopology {
  /// Logical CPU ids the process may run on, in pin order: distinct
  /// physical cores first (round-robin over packages), SMT siblings
  /// after. Empty when affinity control is unavailable (non-Linux, or
  /// sched_getaffinity failed) — pinning is then a silent no-op.
  std::vector<int> pin_order;
  /// Allowed logical CPUs (== pin_order.size() when available).
  int num_cpus = 0;
  /// Distinct (package, core) pairs among the allowed CPUs. Equal to
  /// num_cpus on non-SMT hosts or when sysfs topology is unreadable
  /// (every CPU then counts as its own core — the pre-topology
  /// behaviour, just restricted to the allowed mask).
  int num_cores = 0;
  /// True when at least two allowed CPUs share a physical core.
  bool smt = false;
};

/// Cached process topology (thread-safe; detected on first call).
const CpuTopology& Topology();

/// Pin the calling thread to the pin-order slot `slot` (mod the number
/// of allowed CPUs). Returns true on success; false (and no affinity
/// change) when the platform offers no affinity control.
bool PinThisThread(unsigned slot);

/// Logical CPU id slot `slot` pins to, or -1 when pinning is
/// unavailable. Placement observability for bench JSON.
int PinCpuForSlot(unsigned slot);

/// Pin the calling thread to the exact logical CPU `cpu` (no pin-order
/// indirection) — for callers that already resolved placement, like the
/// rebalancer honouring ConcurrentConfig::worker_cpus. Returns false
/// when the CPU is not in the allowed set or affinity is unavailable.
bool PinToCpu(int cpu);

/// One-line placement summary for bench records / logs, e.g.
/// "cpus=8 cores=4 smt=on order=0,2,4,6,1,3,5,7" (order truncated on
/// wide hosts). "cpus=0" means pinning is unavailable.
std::string TopologySummary();

}  // namespace cpma
