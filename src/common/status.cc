#include "common/status.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace cpma {

namespace {

// One errno-carrying Status for every wrapper below; `op` names the
// syscall so persist-layer errors read "pwrite failed: ..." verbatim.
Status ErrnoStatus(const char* op, int err) {
  return Status::Internal(std::string(op) + " failed: errno " +
                          std::to_string(err) + " (" + std::strerror(err) +
                          ")");
}

}  // namespace

Status WriteFully(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", errno);
    }
    if (w == 0) return Status::Internal("write returned 0");
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status PwriteFully(int fd, const void* buf, size_t n, uint64_t off) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t w = ::pwrite(fd, p, n, static_cast<off_t>(off));
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite", errno);
    }
    if (w == 0) return Status::Internal("pwrite returned 0");
    p += w;
    off += static_cast<uint64_t>(w);
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status ReadFully(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("read", errno);
    }
    if (r == 0) return Status::Internal("short read: unexpected EOF");
    p += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status PreadFully(int fd, void* buf, size_t n, uint64_t off) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::pread(fd, p, n, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread", errno);
    }
    if (r == 0) return Status::Internal("short pread: unexpected EOF");
    p += r;
    off += static_cast<uint64_t>(r);
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  int fd;
  do {
    fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return ErrnoStatus("open(dir)", errno);
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  const int err = errno;
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync(dir)", err);
  return Status::OK();
}

void CheckFailed(const char* condition, const char* message, const char* file,
                 int line) {
  // Capture errno before any stdio call can clobber it.
  const int err = errno;
  if (message != nullptr) {
    std::fprintf(stderr, "CPMA_CHECK failed: %s (%s) at %s:%d\n", condition,
                 message, file, line);
  } else {
    std::fprintf(stderr, "CPMA_CHECK failed: %s at %s:%d\n", condition, file,
                 line);
  }
  if (err != 0) {
    std::fprintf(stderr, "  errno: %d (%s)\n", err, std::strerror(err));
  }
  const char* fp = failpoint::LastFired();
  if (fp != nullptr) {
    std::fprintf(stderr, "  last failpoint fired on this thread: %s\n", fp);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace cpma
