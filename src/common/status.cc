#include "common/status.h"

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace cpma {

void CheckFailed(const char* condition, const char* message, const char* file,
                 int line) {
  // Capture errno before any stdio call can clobber it.
  const int err = errno;
  if (message != nullptr) {
    std::fprintf(stderr, "CPMA_CHECK failed: %s (%s) at %s:%d\n", condition,
                 message, file, line);
  } else {
    std::fprintf(stderr, "CPMA_CHECK failed: %s at %s:%d\n", condition, file,
                 line);
  }
  if (err != 0) {
    std::fprintf(stderr, "  errno: %d (%s)\n", err, std::strerror(err));
  }
  const char* fp = failpoint::LastFired();
  if (fp != nullptr) {
    std::fprintf(stderr, "  last failpoint fired on this thread: %s\n", fp);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace cpma
