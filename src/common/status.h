// Status: lightweight error propagation without exceptions.
//
// Follows the Arrow/RocksDB convention of returning a Status object from
// fallible operations instead of throwing. Internal invariant violations
// use CPMA_CHECK (assert-like, always on).

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace cpma {

/// Result of a fallible operation. Cheap to copy when OK (no allocation).
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kKeyAlreadyExists,
    kKeyNotFound,
    kInvalidArgument,
    kResourceExhausted,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status KeyAlreadyExists(std::string msg = "") {
    return Status(Code::kKeyAlreadyExists, std::move(msg));
  }
  static Status KeyNotFound(std::string msg = "") {
    return Status(Code::kKeyNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsKeyAlreadyExists() const { return code_ == Code::kKeyAlreadyExists; }
  bool IsKeyNotFound() const { return code_ == Code::kKeyNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    switch (code_) {
      case Code::kOk: return "OK";
      case Code::kKeyAlreadyExists: return "KeyAlreadyExists: " + message_;
      case Code::kKeyNotFound: return "KeyNotFound: " + message_;
      case Code::kInvalidArgument: return "InvalidArgument: " + message_;
      case Code::kResourceExhausted: return "ResourceExhausted: " + message_;
      case Code::kInternal: return "Internal: " + message_;
    }
    return "Unknown";
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

// ------------------------------------------------------------------ io
// EINTR-safe syscall wrappers (ISSUE 9 satellite). Every read/write loop
// in the tree goes through these instead of a bare syscall: short
// transfers are resumed, EINTR retries, and a real failure comes back as
// a Status carrying the errno text — so a durability-path error report
// names the failing call instead of surfacing as a mystery CHECK later.

/// Write all `n` bytes of `buf` to `fd`, retrying short writes and EINTR.
Status WriteFully(int fd, const void* buf, size_t n);

/// pwrite variant: write all `n` bytes at absolute offset `off`.
Status PwriteFully(int fd, const void* buf, size_t n, uint64_t off);

/// Read exactly `n` bytes into `buf`, retrying short reads and EINTR.
/// EOF before `n` bytes is an error (kInternal, "short read") — callers
/// reading framed formats want truncation to be loud.
Status ReadFully(int fd, void* buf, size_t n);

/// pread variant of ReadFully.
Status PreadFully(int fd, void* buf, size_t n, uint64_t off);

/// fsync the directory itself so a rename inside it is durable (the
/// write-temp -> fsync -> rename protocol's last step).
Status FsyncDir(const std::string& dir);

/// Terminal handler behind CPMA_CHECK/CPMA_CHECK_MSG (status.cc). Prints
/// the failed condition, optional detail message, file:line, the calling
/// thread's errno (checks often guard syscalls, and the raw abort used to
/// discard the reason), and the most recent failpoint that fired on this
/// thread — so a crash inside a fault-injection run is attributable to
/// the injected fault rather than mistaken for a real invariant break.
[[noreturn]] void CheckFailed(const char* condition, const char* message,
                              const char* file, int line);

}  // namespace cpma

/// Always-on invariant check; aborts with location info on failure.
#define CPMA_CHECK(cond)                                        \
  do {                                                          \
    if (!(cond)) {                                              \
      ::cpma::CheckFailed(#cond, nullptr, __FILE__, __LINE__);  \
    }                                                           \
  } while (0)

#define CPMA_CHECK_MSG(cond, msg)                               \
  do {                                                          \
    if (!(cond)) {                                              \
      ::cpma::CheckFailed(#cond, msg, __FILE__, __LINE__);      \
    }                                                           \
  } while (0)
