#include "common/failpoint.h"

#if CPMA_FAILPOINTS_ENABLED

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

namespace cpma {
namespace failpoint {

namespace internal {
std::atomic<int> g_armed{0};
}  // namespace internal

namespace {

enum class Policy : unsigned char {
  kOff = 0,
  kAlways,
  kTimes,  // fire on the first n_ hits, then recover (once = times:1)
  kNth,    // fire on every n_-th hit
  kProb,   // fire with probability prob_, seeded rng
};

struct Site {
  Policy policy = Policy::kOff;
  bool crash = false;      // `!crash` action: _exit the process on fire
  uint64_t n = 0;          // times/nth parameter
  double prob = 0.0;       // prob parameter
  uint64_t rng = 0;        // splitmix64 state (prob policy)
  uint64_t hits = 0;       // evaluations since this site was first seen
  uint64_t fires = 0;      // reported failures
};

// Keyed by interned site name; std::map nodes are pointer-stable, so the
// key's c_str() is a safe thread_local LastFired value for the process
// lifetime.
struct Registry {
  std::mutex mu;
  std::map<std::string, Site> sites;
  std::atomic<uint64_t> total_fires{0};
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

thread_local const char* t_last_fired = nullptr;

// splitmix64: tiny, seedable, deterministic — policy evaluation must be
// reproducible from (seed, per-site hit sequence) alone.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Parses "spec" into `out`. Grammar in failpoint.h.
bool ParseSpec(const char* spec, Site* out) {
  if (spec == nullptr) return false;
  std::string s(spec);
  // Action suffix first: "policy!crash". ';' and ',' are clause
  // separators, so the action rides on the policy with '!'.
  const size_t bang = s.find('!');
  if (bang != std::string::npos) {
    if (s.substr(bang + 1) != "crash") return false;
    out->crash = true;
    s.erase(bang);
  }
  auto starts_with = [&](const char* p) {
    return s.rfind(p, 0) == 0;
  };
  if (s == "off") {
    out->policy = Policy::kOff;
    return true;
  }
  if (s == "always") {
    out->policy = Policy::kAlways;
    return true;
  }
  if (s == "once") {
    out->policy = Policy::kTimes;
    out->n = 1;
    return true;
  }
  if (starts_with("times:") || starts_with("nth:")) {
    const bool times = starts_with("times:");
    const char* num = s.c_str() + (times ? 6 : 4);
    char* end = nullptr;
    unsigned long long v = std::strtoull(num, &end, 10);
    if (end == num || *end != '\0' || v == 0) return false;
    out->policy = times ? Policy::kTimes : Policy::kNth;
    out->n = static_cast<uint64_t>(v);
    return true;
  }
  if (starts_with("prob:")) {
    const char* rest = s.c_str() + 5;
    char* end = nullptr;
    double p = std::strtod(rest, &end);
    if (end == rest || p < 0.0 || p > 1.0) return false;
    uint64_t seed = 0;
    if (*end == ':') {
      const char* seed_str = end + 1;
      char* seed_end = nullptr;
      seed = std::strtoull(seed_str, &seed_end, 10);
      if (seed_end == seed_str || *seed_end != '\0') return false;
    } else if (*end != '\0') {
      return false;
    }
    out->policy = Policy::kProb;
    out->prob = p;
    out->rng = seed;
    return true;
  }
  return false;
}

bool IsArmed(const Site& s) { return s.policy != Policy::kOff; }

// One-time CPMA_FAILPOINTS env parse, folded into the first registry
// access so programmatic Set() before first Evaluate() still wins (env
// is applied first, Set overwrites).
void LoadEnvOnce() {
  static bool done = [] {
    const char* env = std::getenv("CPMA_FAILPOINTS");
    if (env != nullptr && env[0] != '\0') {
      if (!ConfigureFromString(env)) {
        std::fprintf(stderr,
                     "cpma: warning: malformed clause in CPMA_FAILPOINTS "
                     "(\"%s\"); valid clauses were applied\n",
                     env);
      }
    }
    return true;
  }();
  (void)done;
}

void RecountArmed(Registry& reg) {
  int armed = 0;
  for (const auto& kv : reg.sites) {
    if (IsArmed(kv.second)) ++armed;
  }
  internal::g_armed.store(armed, std::memory_order_relaxed);
}

}  // namespace

bool Evaluate(const char* site) {
  LoadEnvOnce();
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lk(reg.mu);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end()) {
    // Record the hit so KnownSites()/Hits() see unarmed sites too.
    it = reg.sites.emplace(site, Site{}).first;
  }
  Site& s = it->second;
  s.hits++;
  bool fire = false;
  switch (s.policy) {
    case Policy::kOff:
      break;
    case Policy::kAlways:
      fire = true;
      break;
    case Policy::kTimes:
      if (s.n > 0) {
        fire = true;
        if (--s.n == 0) {
          s.policy = Policy::kOff;  // recovered
          RecountArmed(reg);
        }
      }
      break;
    case Policy::kNth:
      fire = (s.hits % s.n) == 0;
      break;
    case Policy::kProb: {
      const double u =
          static_cast<double>(SplitMix64(s.rng) >> 11) * 0x1.0p-53;
      fire = u < s.prob;
      break;
    }
  }
  if (fire) {
    s.fires++;
    reg.total_fires.fetch_add(1, std::memory_order_relaxed);
    t_last_fired = it->first.c_str();
    if (s.crash) {
      // Simulated power cut: no atexit, no flush, no unwinding. The one
      // stderr line is best-effort (unbuffered fd write) so a surprised
      // CI log still names the site that pulled the plug.
      char buf[160];
      const int len = std::snprintf(buf, sizeof(buf),
                                    "cpma: failpoint %s fired with !crash; "
                                    "_exit(%d)\n",
                                    it->first.c_str(), kCrashExitCode);
      if (len > 0) {
        ssize_t ignored = ::write(2, buf, static_cast<size_t>(len));
        (void)ignored;
      }
      ::_exit(kCrashExitCode);
    }
  }
  return fire;
}

bool Set(const char* site, const char* spec) {
  if (site == nullptr || site[0] == '\0') return false;
  Site parsed;
  if (!ParseSpec(spec, &parsed)) return false;
  LoadEnvOnce();
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lk(reg.mu);
  Site& s = reg.sites[site];
  // Keep history counters; replace the policy.
  s.policy = parsed.policy;
  s.crash = parsed.crash;
  s.n = parsed.n;
  s.prob = parsed.prob;
  s.rng = parsed.rng;
  RecountArmed(reg);
  return true;
}

void Clear(const char* site) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lk(reg.mu);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return;
  it->second.policy = Policy::kOff;
  RecountArmed(reg);
}

void ClearAll() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lk(reg.mu);
  for (auto& kv : reg.sites) {
    kv.second = Site{};
  }
  reg.total_fires.store(0, std::memory_order_relaxed);
  internal::g_armed.store(0, std::memory_order_relaxed);
}

bool ConfigureFromString(const char* config) {
  if (config == nullptr) return false;
  bool all_ok = true;
  const char* p = config;
  while (*p != '\0') {
    const char* end = p;
    while (*end != '\0' && *end != ';' && *end != ',') ++end;
    std::string clause(p, end);
    p = (*end == '\0') ? end : end + 1;
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      all_ok = false;
      continue;
    }
    const std::string site = clause.substr(0, eq);
    const std::string spec = clause.substr(eq + 1);
    if (!Set(site.c_str(), spec.c_str())) all_ok = false;
  }
  return all_ok;
}

uint64_t Fires(const char* site) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lk(reg.mu);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.fires;
}

uint64_t Hits(const char* site) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lk(reg.mu);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

uint64_t TotalFires() {
  return GetRegistry().total_fires.load(std::memory_order_relaxed);
}

const char* LastFired() { return t_last_fired; }

std::vector<std::string> KnownSites() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lk(reg.mu);
  std::vector<std::string> out;
  out.reserve(reg.sites.size());
  for (const auto& kv : reg.sites) out.push_back(kv.first);
  return out;
}

}  // namespace failpoint
}  // namespace cpma

#else  // !CPMA_FAILPOINTS_ENABLED

// Keep the TU non-empty in disabled builds; everything is inline in the
// header. A process started with CPMA_FAILPOINTS set but the framework
// compiled out would otherwise silently ignore the request, so warn once
// from a static initializer.
#include <cstdio>
#include <cstdlib>

namespace cpma {
namespace failpoint {
namespace {
const bool g_warned = [] {
  if (std::getenv("CPMA_FAILPOINTS") != nullptr) {
    std::fprintf(stderr,
                 "cpma: warning: CPMA_FAILPOINTS is set but this build was "
                 "configured with CPMA_ENABLE_FAILPOINTS=OFF; no faults will "
                 "be injected\n");
  }
  return true;
}();
}  // namespace
}  // namespace failpoint
}  // namespace cpma

#endif  // CPMA_FAILPOINTS_ENABLED
