// Fixed-size thread pool. Used by the rebalancer's worker threads and by
// the parallel resize path. Tasks are std::function thunks; WaitGroup
// gives callers a count-down barrier to join a batch of tasks.
//
// Spawn failures (std::system_error from std::thread, or the
// threadpool.spawn failpoint) degrade the pool instead of killing the
// process: the pool runs with however many threads it got, and when it
// got none at all Submit() executes tasks inline on the caller — slower,
// still correct.

#pragma once

#include <condition_variable>
#include <cstdio>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

#include "common/failpoint.h"

namespace cpma {

/// Count-down latch: Add(n) before submitting, Done() in each task,
/// Wait() to join. Reusable after Wait() returns.
class WaitGroup {
 public:
  void Add(int n) {
    std::lock_guard<std::mutex> g(m_);
    count_ += n;
  }

  void Done() {
    std::lock_guard<std::mutex> g(m_);
    if (--count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> g(m_);
    cv_.wait(g, [&] { return count_ == 0; });
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  int count_ = 0;
};

class ThreadPool {
 public:
  /// `thread_init`, when set, runs once in each worker thread before it
  /// starts taking tasks, with the worker's index — the per-shard
  /// affinity hook (ISSUE 8: the sharded front end pins each shard's
  /// rebalancer workers to that shard's CPUs). It is NOT invoked for
  /// tasks that execute inline on the caller after a fully degraded
  /// spawn: the caller's placement belongs to the caller.
  explicit ThreadPool(size_t num_threads,
                      std::function<void(size_t)> thread_init = nullptr)
      : thread_init_(std::move(thread_init)) {
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      if (CPMA_FAILPOINT("threadpool.spawn")) {
        ++spawn_failures_;
        continue;
      }
      try {
        threads_.emplace_back([this, i] {
          if (thread_init_) thread_init_(i);
          WorkerLoop();
        });
      } catch (const std::system_error&) {
        // Resource exhaustion (EAGAIN et al.): run degraded with the
        // threads we have rather than dying.
        ++spawn_failures_;
      }
    }
    if (spawn_failures_ > 0) {
      std::fprintf(stderr,
                   "cpma: ThreadPool spawned %zu/%zu threads (%zu failures); "
                   "running degraded%s\n",
                   threads_.size(), num_threads, spawn_failures_,
                   threads_.empty() ? " (tasks execute inline)" : "");
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> g(m_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task) {
    if (threads_.empty()) {
      // Fully degraded pool: execute on the caller so submitted work
      // (and any WaitGroup::Done inside it) still completes.
      task();
      return;
    }
    {
      std::lock_guard<std::mutex> g(m_);
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  size_t num_threads() const { return threads_.size(); }

  /// Threads requested at construction that could not be spawned
  /// (observability for degraded-mode tests and diagnostics).
  size_t num_spawn_failures() const { return spawn_failures_; }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> g(m_);
        cv_.wait(g, [&] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  std::function<void(size_t)> thread_init_;
  bool stop_ = false;
  size_t spawn_failures_ = 0;  // written only during construction
};

}  // namespace cpma
