// Fixed-size thread pool. Used by the rebalancer's worker threads and by
// the parallel resize path. Tasks are std::function thunks; WaitGroup
// gives callers a count-down barrier to join a batch of tasks.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cpma {

/// Count-down latch: Add(n) before submitting, Done() in each task,
/// Wait() to join. Reusable after Wait() returns.
class WaitGroup {
 public:
  void Add(int n) {
    std::lock_guard<std::mutex> g(m_);
    count_ += n;
  }

  void Done() {
    std::lock_guard<std::mutex> g(m_);
    if (--count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> g(m_);
    cv_.wait(g, [&] { return count_ == 0; });
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  int count_ = 0;
};

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> g(m_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> g(m_);
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> g(m_);
        cv_.wait(g, [&] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

}  // namespace cpma
